module threads

go 1.22
