// Command larchfmt parses and pretty-prints specifications written in the
// paper's extended-Larch notation, and can print the embedded specification
// of the Threads interface.
//
// Usage:
//
//	larchfmt -spec              # print the paper's Threads specification
//	larchfmt file.larch         # parse and reformat a file
//	larchfmt -check file.larch  # parse + typecheck only; exit non-zero on error
package main

import (
	"flag"
	"fmt"
	"os"

	"threads/internal/larch"
)

func main() {
	var (
		printSpec = flag.Bool("spec", false, "print the embedded Threads specification")
		checkOnly = flag.Bool("check", false, "parse only, reporting errors")
	)
	flag.Parse()

	if *printSpec {
		emit(larch.Spec())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: larchfmt [-check] file.larch | larchfmt -spec")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "larchfmt:", err)
		os.Exit(1)
	}
	doc, err := larch.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "larchfmt:", err)
		os.Exit(1)
	}
	if errs := larch.Check(doc); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "larchfmt:", e)
		}
		os.Exit(1)
	}
	if *checkOnly {
		fmt.Printf("%s: %d declarations OK\n", flag.Arg(0), len(doc.Decls))
		return
	}
	emit(doc)
}

func emit(doc *larch.Document) {
	for i, d := range doc.Decls {
		if i > 0 {
			fmt.Println()
		}
		fmt.Println(d)
	}
}
