// Command threadsbench regenerates every experiment in EXPERIMENTS.md: the
// reproductions of the paper's quantitative and behavioral claims (E1–E13),
// and maintains the benchmark-regression baseline (BENCH_<n>.json).
//
// Usage:
//
//	threadsbench                 # run everything, full-size sweeps
//	threadsbench -quick          # small sweeps (seconds, CI-friendly)
//	threadsbench -exp e1,e7      # a subset
//	threadsbench -list           # list experiments
//	threadsbench -csv dir        # also write each table as dir/<id>.csv
//	threadsbench -json BENCH_1.json        # collect metrics, write baseline
//	threadsbench -baseline BENCH_1.json    # collect metrics, compare; exit 1
//	                                       # on any >10% regression
//	threadsbench -baseline BENCH_1.json -timed -maxregress 0.25
//	                                       # also enforce wall-clock metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"threads/internal/bench"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run reduced sweeps")
		exp        = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list       = flag.Bool("list", false, "list experiments and exit")
		csvDir     = flag.String("csv", "", "directory to write per-table CSV files into")
		jsonOut    = flag.String("json", "", "collect regression metrics and write them to this file")
		baseline   = flag.String("baseline", "", "collect regression metrics and compare against this baseline")
		maxRegress = flag.Float64("maxregress", 0.10, "relative tolerance before a metric counts as regressed")
		timed      = flag.Bool("timed", false, "also enforce wall-clock metrics (same-machine comparisons only)")
	)
	flag.Parse()

	if *jsonOut != "" || *baseline != "" {
		runRegression(*jsonOut, *baseline, *maxRegress, *timed, *quick)
		return
	}

	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	want := map[string]bool{}
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	opts := bench.Options{Quick: *quick}
	ran := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		tables := e.Run(opts)
		for _, t := range tables {
			fmt.Println(t)
			if *csvDir != "" {
				name := filepath.Join(*csvDir, strings.ToLower(t.ID)+".csv")
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("  (%s completed in %v)\n\n", strings.ToUpper(e.ID), time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "threadsbench: no experiment matched %q (use -list)\n", *exp)
		os.Exit(2)
	}
}

// runRegression handles -json (write a fresh baseline) and -baseline
// (compare against a committed one); both collect the same metric set.
func runRegression(jsonOut, baselinePath string, tol float64, timed, quick bool) {
	fmt.Fprintln(os.Stderr, "threadsbench: collecting regression metrics...")
	cur := bench.CollectRegressionMetrics(quick)
	for _, m := range cur.Metrics {
		kind := "stable"
		if !m.Stable {
			kind = "timed "
		}
		fmt.Printf("  %-28s %12.4g  (%s, %s is better)\n", m.Name, m.Value, kind, m.Better)
	}
	if jsonOut != "" {
		if err := bench.WriteBaseline(jsonOut, cur); err != nil {
			fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d metrics)\n", jsonOut, len(cur.Metrics))
	}
	if baselinePath == "" {
		return
	}
	base, err := bench.ReadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
		os.Exit(1)
	}
	regs := bench.Compare(base, cur, tol, timed)
	if len(regs) == 0 {
		fmt.Printf("no regressions against %s (tol %.0f%%, timed=%v)\n", baselinePath, tol*100, timed)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "threadsbench: REGRESSION %s\n", r)
	}
	os.Exit(1)
}
