// Command threadsbench regenerates every experiment in EXPERIMENTS.md: the
// reproductions of the paper's quantitative and behavioral claims (E1–E16),
// and maintains the benchmark-regression baseline (BENCH_<n>.json).
//
// Usage:
//
//	threadsbench                 # run everything, full-size sweeps
//	threadsbench -quick          # small sweeps (seconds, CI-friendly)
//	threadsbench -exp e1,e7      # a subset
//	threadsbench -list           # list experiments
//	threadsbench -csv dir        # also write each table as dir/<id>.csv
//	threadsbench -json BENCH_1.json        # collect metrics, write baseline
//	threadsbench -baseline BENCH_1.json    # collect metrics, compare; exit 1
//	                                       # on any >10% regression
//	threadsbench -baseline BENCH_1.json -timed -maxregress 0.25
//	                                       # also enforce wall-clock metrics
//
// The -sweep flag extends -json/-baseline with per-core-count scaling
// curves: the E11–E13 contended workloads are re-run at each GOMAXPROCS
// value in -cores (default: doubling up to NumCPU), best of -samples runs
// per point, and the comparator additionally enforces curve *shape*
// (internal/bench.CompareCurves):
//
//	threadsbench -sweep -json BENCH_2.json             # collect curves
//	threadsbench -sweep -baseline BENCH_2.json         # enforce stable curves
//	threadsbench -sweep -cores 1,2 -samples 1 -quick -baseline BENCH_2.json
//	                                                   # CI smoke: prefix only
//
// The profiling flags apply to any mode, so a sweep knee can be diagnosed
// with pprof instead of guesswork:
//
//	threadsbench -sweep -cores 8 -cpuprofile cpu.pb.gz -json /dev/null
//	threadsbench -exp e16 -mutexprofile mutex.pb.gz -blockprofile block.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"threads/internal/bench"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		quick      = flag.Bool("quick", false, "run reduced sweeps")
		exp        = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list       = flag.Bool("list", false, "list experiments and exit")
		csvDir     = flag.String("csv", "", "directory to write per-table CSV files into")
		jsonOut    = flag.String("json", "", "collect regression metrics and write them to this file")
		baseline   = flag.String("baseline", "", "collect regression metrics and compare against this baseline")
		maxRegress = flag.Float64("maxregress", 0.10, "relative tolerance before a metric counts as regressed")
		timed      = flag.Bool("timed", false, "also enforce wall-clock metrics (same-machine comparisons only)")
		sweep      = flag.Bool("sweep", false, "with -json/-baseline: also collect per-core-count scaling curves")
		coresFlag  = flag.String("cores", "", "comma-separated GOMAXPROCS values for -sweep (default: 1,2,4,... up to NumCPU)")
		samples    = flag.Int("samples", 3, "runs per core count in -sweep; the best is kept")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
		blockProf  = flag.String("blockprofile", "", "write a goroutine-blocking profile to this file")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProf, *mutexProf, *blockProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
		return 1
	}
	defer stopProfiles()

	if *jsonOut != "" || *baseline != "" {
		cores, err := parseCores(*coresFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
			return 2
		}
		return runRegression(regressRun{
			jsonOut: *jsonOut, baselinePath: *baseline,
			tol: *maxRegress, timed: *timed, quick: *quick,
			sweep: *sweep, cores: cores, samples: *samples,
		})
	}

	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return 0
	}
	want := map[string]bool{}
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	opts := bench.Options{Quick: *quick}
	ran := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		tables := e.Run(opts)
		for _, t := range tables {
			fmt.Println(t)
			if *csvDir != "" {
				name := filepath.Join(*csvDir, strings.ToLower(t.ID)+".csv")
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
					return 1
				}
			}
		}
		fmt.Printf("  (%s completed in %v)\n\n", strings.ToUpper(e.ID), time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "threadsbench: no experiment matched %q (use -list)\n", *exp)
		return 2
	}
	return 0
}

// parseCores parses the -cores flag; empty means the default doubling set.
func parseCores(s string) ([]int, error) {
	if s == "" {
		return bench.DefaultSweepCores(), nil
	}
	var cores []int
	for _, f := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("-cores: %q is not a positive core count", f)
		}
		cores = append(cores, k)
	}
	return cores, nil
}

type regressRun struct {
	jsonOut, baselinePath string
	tol                   float64
	timed, quick, sweep   bool
	cores                 []int
	samples               int
}

// runRegression handles -json (write a fresh baseline) and -baseline
// (compare against a committed one); both collect the same metric set, and
// with -sweep the same curve set.
func runRegression(p regressRun) int {
	fmt.Fprintln(os.Stderr, "threadsbench: collecting regression metrics...")
	cur := bench.CollectRegressionMetrics(p.quick)
	if p.sweep {
		fmt.Fprintf(os.Stderr, "threadsbench: sweeping cores %v x %d samples (NumCPU=%d)...\n",
			p.cores, p.samples, runtime.NumCPU())
		cur.Curves = bench.CollectSweep(p.cores, p.samples, p.quick)
		cur.Schema = 2
		cur.Note += "; schema 2: curves are per-GOMAXPROCS scaling measurements"
	}
	for _, m := range cur.Metrics {
		kind := "stable"
		if !m.Stable {
			kind = "timed "
		}
		fmt.Printf("  %-28s %12.4g  (%s, %s is better)\n", m.Name, m.Value, kind, m.Better)
	}
	for _, c := range cur.Curves {
		var pts []string
		for _, pt := range c.Points {
			pts = append(pts, fmt.Sprintf("%dc %.4g", pt.Cores, pt.Value))
		}
		fmt.Printf("  %-28s %s\n", c.Name, strings.Join(pts, " | "))
	}
	if p.jsonOut != "" {
		if err := bench.WriteBaseline(p.jsonOut, cur); err != nil {
			fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s (%d metrics, %d curves)\n", p.jsonOut, len(cur.Metrics), len(cur.Curves))
	}
	if p.baselinePath == "" {
		return 0
	}
	base, err := bench.ReadBaseline(p.baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
		return 1
	}
	regs := bench.Compare(base, cur, p.tol, p.timed)
	if p.sweep {
		regs = append(regs, bench.CompareCurves(base.Curves, cur.Curves, p.cores, p.tol, p.timed)...)
	}
	if len(regs) == 0 {
		fmt.Printf("no regressions against %s (tol %.0f%%, timed=%v, sweep=%v)\n",
			p.baselinePath, p.tol*100, p.timed, p.sweep)
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "threadsbench: REGRESSION %s\n", r)
	}
	return 1
}

// startProfiles arms the requested pprof profiles and returns the function
// that writes them out; profiles cover everything between the two calls.
func startProfiles(cpu, mutex, block string) (func(), error) {
	var stops []func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "threadsbench: wrote CPU profile to %s\n", cpu)
		})
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
		stops = append(stops, func() { writeProfile("mutex", mutex) })
	}
	if block != "" {
		runtime.SetBlockProfileRate(1)
		stops = append(stops, func() { writeProfile("block", block) })
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}, nil
}

func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
		return
	}
	defer f.Close()
	if p := pprof.Lookup(name); p != nil {
		if err := p.WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "threadsbench: %s profile: %v\n", name, err)
			return
		}
		fmt.Fprintf(os.Stderr, "threadsbench: wrote %s profile to %s\n", name, path)
	}
}
