// Command threadsbench regenerates every experiment in EXPERIMENTS.md: the
// reproductions of the paper's quantitative and behavioral claims (E1–E10).
//
// Usage:
//
//	threadsbench                 # run everything, full-size sweeps
//	threadsbench -quick          # small sweeps (seconds, CI-friendly)
//	threadsbench -exp e1,e7      # a subset
//	threadsbench -list           # list experiments
//	threadsbench -csv dir        # also write each table as dir/<id>.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"threads/internal/bench"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "run reduced sweeps")
		exp    = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list   = flag.Bool("list", false, "list experiments and exit")
		csvDir = flag.String("csv", "", "directory to write per-table CSV files into")
	)
	flag.Parse()

	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	want := map[string]bool{}
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	opts := bench.Options{Quick: *quick}
	ran := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		tables := e.Run(opts)
		for _, t := range tables {
			fmt.Println(t)
			if *csvDir != "" {
				name := filepath.Join(*csvDir, strings.ToLower(t.ID)+".csv")
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "threadsbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("  (%s completed in %v)\n\n", strings.ToUpper(e.ID), time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "threadsbench: no experiment matched %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
