package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) (*config, error) {
	t.Helper()
	return parseFlags(args, io.Discard)
}

func TestParseDefaultsToContention(t *testing.T) {
	c, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if c.mode != modeWorkload || c.workload != "contention" || c.procs != 5 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestParseModes(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want mode
	}{
		{[]string{"-workload", "prodcons", "-producers", "2"}, modeWorkload},
		{[]string{"-workload", "priority", "-pi", "-med", "3"}, modeWorkload},
		{[]string{"-workload", "priority", "-iters", "50", "-procs", "2"}, modeWorkload},
		{[]string{"-trace", "-record", "out.jsonl"}, modeTrace},
		{[]string{"-replay", "x.json"}, modeReplay},
		{[]string{"-explore", "-maxk", "1", "-litmus", "mutex"}, modeExplore},
		{[]string{"-explore", "-maxk", "1", "-litmus", "deadline, phaser,mpsc"}, modeExplore},
		{[]string{"-explore", "-maxk", "2", "-litmus", "priority-inversion"}, modeExplore},
		{[]string{"-explore", "-litmus", "priority-inversion,priority-inversion-broken"}, modeExplore},
		{[]string{"-explore", "-summary", "sum.md"}, modeExplore},
		{[]string{"-fuzz", "-runs", "10", "-seed", "3"}, modeFuzz},
		{[]string{"-fuzz", "-litmus", "priority-inversion-broken", "-runs", "10"}, modeFuzz},
		{[]string{"-explore", "-budget", "90s", "-cert", "out"}, modeExplore},
	} {
		c, err := parse(t, tc.args...)
		if err != nil {
			t.Errorf("%v: unexpected error %v", tc.args, err)
			continue
		}
		if c.mode != tc.want {
			t.Errorf("%v: mode = %v, want %v", tc.args, c.mode, tc.want)
		}
	}
}

func TestParseRejectsCrossModeFlags(t *testing.T) {
	for _, tc := range []struct {
		args    []string
		wantErr string
	}{
		// The ISSUE's canonical example: a prodcons run with
		// contention-only flags must fail loudly, not silently ignore them.
		{[]string{"-workload", "prodcons", "-threads", "8"}, "-threads only applies to -workload contention"},
		{[]string{"-workload", "prodcons", "-iters", "10"}, "-iters only applies"},
		{[]string{"-workload", "prodcons", "-cswork", "5"}, "-cswork only applies"},
		{[]string{"-workload", "contention", "-producers", "2"}, "-producers only applies to -workload prodcons"},
		{[]string{"-capacity", "4"}, "-capacity only applies"},
		// Priority knobs are rejected everywhere but the priority workload —
		// in particular in replay mode, where they could silently suggest
		// the replay honors them.
		{[]string{"-pi"}, "-pi only applies to -workload priority"},
		{[]string{"-med", "2"}, "-med only applies to -workload priority"},
		{[]string{"-workload", "prodcons", "-pi"}, "-pi only applies to -workload priority"},
		{[]string{"-workload", "priority", "-threads", "4"}, "-threads only applies to -workload contention"},
		{[]string{"-workload", "priority", "-cswork", "9"}, "-cswork only applies to -workload contention"},
		{[]string{"-replay", "x", "-pi"}, "-pi cannot be used with -replay"},
		{[]string{"-replay", "x", "-med", "2"}, "-med cannot be used with -replay"},
		{[]string{"-explore", "-pi"}, "-pi cannot be used with -explore"},
		{[]string{"-fuzz", "-runs", "5", "-med", "2"}, "-med cannot be used with -fuzz"},
		{[]string{"-summary", "s.md"}, "-summary cannot be used with -workload"},
		{[]string{"-fuzz", "-runs", "5", "-summary", "s.md"}, "-summary cannot be used with -fuzz"},
		{[]string{"-replay", "x", "-summary", "s.md"}, "-summary cannot be used with -replay"},
		{[]string{"-workload", "nosuch"}, "unknown workload"},
		{[]string{"-explore", "-threads", "4"}, "-threads cannot be used with -explore"},
		{[]string{"-fuzz", "-maxk", "2"}, "-maxk cannot be used with -fuzz"},
		{[]string{"-explore", "-runs", "5"}, "-runs cannot be used with -explore"},
		{[]string{"-explore", "-record", "f"}, "-record cannot be used with -explore"},
		{[]string{"-record", "f"}, "-record cannot be used with -workload"},
		{[]string{"-replay", "x", "-litmus", "mutex"}, "-litmus cannot be used with -replay"},
		{[]string{"-explore", "-fuzz"}, "mutually exclusive"},
		{[]string{"-trace", "-replay", "x"}, "mutually exclusive"},
		{[]string{"-explore", "-litmus", "nosuch"}, "unknown litmus"},
		{[]string{"-explore", "-litmus", "mutex,nosuch"}, "unknown litmus"},
		{[]string{"-explore", "-maxk", "-1"}, "-maxk must be nonnegative"},
		{[]string{"-por", "off"}, "-por cannot be used with -workload"},
		{[]string{"-fuzz", "-workers", "2"}, "-workers cannot be used with -fuzz"},
		{[]string{"-trace", "-statecache", "d"}, "-statecache cannot be used with -trace"},
		{[]string{"-explore", "-por", "nosuch"}, "-por must be off or sleepsets"},
		{[]string{"-explore", "-workers", "0"}, "-workers must be at least 1"},
		{[]string{"-fuzz", "-runs", "0"}, "-fuzz needs -runs or -budget"},
		{[]string{"-procs", "0"}, "-procs must be at least 1"},
		{[]string{"extra"}, "unexpected arguments"},
		{[]string{"-nosuchflag"}, "flag provided but not defined"},
	} {
		_, err := parse(t, tc.args...)
		if err == nil {
			t.Errorf("%v: no error, want %q", tc.args, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%v: error %q does not contain %q", tc.args, err, tc.wantErr)
		}
	}
}

func TestParseSharedFlagsStayLegal(t *testing.T) {
	// -seed is shared between workload, trace and fuzz modes; -procs
	// between workload and trace; -budget between explore and fuzz.
	for _, args := range [][]string{
		{"-seed", "9"},
		{"-trace", "-seed", "9", "-procs", "3"},
		{"-fuzz", "-seed", "9"},
		{"-fuzz", "-budget", "1s", "-runs", "0"},
	} {
		if _, err := parse(t, args...); err != nil {
			t.Errorf("%v: unexpected error %v", args, err)
		}
	}
}

func TestParseExploreValues(t *testing.T) {
	c, err := parse(t, "-explore", "-maxk", "3", "-litmus", "prodcons", "-budget", "2m", "-cert", "certs",
		"-por", "off", "-workers", "2", "-statecache", "cachedir")
	if err != nil {
		t.Fatal(err)
	}
	if c.maxK != 3 || c.litmus != "prodcons" || c.budget != 2*time.Minute || c.certDir != "certs" {
		t.Fatalf("parsed %+v", c)
	}
	if c.por != "off" || c.workers != 2 || c.stateCache != "cachedir" {
		t.Fatalf("parsed %+v", c)
	}
	if d, err := parse(t, "-explore"); err != nil || d.por != "sleepsets" || d.workers < 1 {
		t.Fatalf("explore defaults: %+v, %v", d, err)
	}
}
