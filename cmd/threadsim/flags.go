package main

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"threads/internal/checker"
)

// mode is what one threadsim invocation does. Exactly one is selected;
// mixing mode flags (or passing a flag that belongs to another mode) is a
// usage error — a silently ignored flag means the user measured something
// other than what they asked for.
type mode int

const (
	modeWorkload mode = iota // run a workload and print statistics
	modeTrace                // run the mixed traced workload, check conformance
	modeReplay               // replay a certificate or re-check a recorded trace
	modeExplore              // bounded-exhaustive schedule enumeration
	modeFuzz                 // weighted-random schedule sampling
)

func (m mode) String() string {
	switch m {
	case modeTrace:
		return "-trace"
	case modeReplay:
		return "-replay"
	case modeExplore:
		return "-explore"
	case modeFuzz:
		return "-fuzz"
	default:
		return "-workload"
	}
}

// config is a fully validated invocation.
type config struct {
	mode mode

	// Workload mode.
	workload  string
	procs     int
	threads   int
	iters     int
	csWork    int
	think     int
	producers int
	consumers int
	items     int
	capacity  int
	med       int
	pi        bool
	seed      int64

	// Trace mode.
	record string

	// Replay mode.
	replayPath string

	// Explore / fuzz modes.
	litmus     string // registry name, or "all"
	maxK       int
	budget     time.Duration
	runs       int
	certDir    string
	por        string // off or sleepsets
	workers    int
	stateCache string // directory for fingerprint snapshots
	summary    string // markdown summary file (-explore), e.g. $GITHUB_STEP_SUMMARY
}

// flagOwner maps each flag to the only modes allowed to set it.
var flagOwner = map[string][]mode{
	"workload":   {modeWorkload},
	"threads":    {modeWorkload},
	"iters":      {modeWorkload},
	"cswork":     {modeWorkload},
	"think":      {modeWorkload},
	"producers":  {modeWorkload},
	"consumers":  {modeWorkload},
	"items":      {modeWorkload},
	"capacity":   {modeWorkload},
	"med":        {modeWorkload},
	"pi":         {modeWorkload},
	"procs":      {modeWorkload, modeTrace},
	"seed":       {modeWorkload, modeTrace, modeFuzz},
	"record":     {modeTrace},
	"litmus":     {modeExplore, modeFuzz},
	"budget":     {modeExplore, modeFuzz},
	"cert":       {modeExplore, modeFuzz},
	"maxk":       {modeExplore},
	"por":        {modeExplore},
	"workers":    {modeExplore},
	"statecache": {modeExplore},
	"summary":    {modeExplore},
	"runs":       {modeFuzz},
}

// workloadOwner maps each workload-specific flag to the workloads that
// accept it; flags absent here (-think, -procs, -seed) are shared by all
// workloads. The same strictness as flagOwner: a priority knob on a
// contention run would be silently ignored, so it is an error instead.
var workloadOwner = map[string][]string{
	"threads":   {"contention"},
	"iters":     {"contention", "priority"},
	"cswork":    {"contention"},
	"producers": {"prodcons"},
	"consumers": {"prodcons"},
	"items":     {"prodcons"},
	"capacity":  {"prodcons"},
	"med":       {"priority"},
	"pi":        {"priority"},
}

// parseFlags parses and validates an argument list (without the program
// name). It returns a usage error — never calls os.Exit — so main can
// exit nonzero and tests can assert on the message.
func parseFlags(args []string, usageOut io.Writer) (*config, error) {
	c := &config{}
	fs := flag.NewFlagSet("threadsim", flag.ContinueOnError)
	fs.SetOutput(usageOut)

	fs.StringVar(&c.workload, "workload", "contention", "contention, prodcons or priority")
	fs.IntVar(&c.procs, "procs", 5, "simulated processors (the Firefly had 5)")
	fs.IntVar(&c.threads, "threads", 8, "threads (contention workload)")
	fs.IntVar(&c.iters, "iters", 500, "critical sections per thread (contention)")
	fs.IntVar(&c.csWork, "cswork", 20, "instructions inside the critical section (contention)")
	fs.IntVar(&c.think, "think", 200, "instructions outside the critical section")
	fs.IntVar(&c.producers, "producers", 4, "producers (prodcons workload)")
	fs.IntVar(&c.consumers, "consumers", 4, "consumers (prodcons workload)")
	fs.IntVar(&c.items, "items", 200, "items per producer (prodcons)")
	fs.IntVar(&c.capacity, "capacity", 8, "buffer capacity (prodcons)")
	fs.IntVar(&c.med, "med", 0, "medium-priority compute threads (priority workload); 0 = one per processor")
	fs.BoolVar(&c.pi, "pi", false, "enable priority inheritance on the mutex (priority workload)")
	fs.Int64Var(&c.seed, "seed", 1, "scheduling seed (workload/trace) or base fuzz seed")
	traced := fs.Bool("trace", false, "run the mixed workload, record the action trace, check it against the formal specification")
	fs.StringVar(&c.record, "record", "", "with -trace: also write the trace to this file (JSON Lines)")
	fs.StringVar(&c.replayPath, "replay", "", "replay a schedule certificate (or re-check a recorded trace) and exit")
	explore := fs.Bool("explore", false, "bounded-exhaustive schedule exploration of the litmus registry")
	fuzz := fs.Bool("fuzz", false, "weighted-random schedule sampling of the litmus registry")
	fs.StringVar(&c.litmus, "litmus", "all", "litmus program(s) to explore/fuzz, comma-separated, or \"all\": "+strings.Join(checker.LitmusNames(), ", "))
	fs.IntVar(&c.maxK, "maxk", 2, "context bound: explore all schedules with at most this many preemptions")
	fs.DurationVar(&c.budget, "budget", 0, "wall-clock budget for -explore/-fuzz (0 = none)")
	fs.IntVar(&c.runs, "runs", 2000, "schedules to sample per litmus (-fuzz)")
	fs.StringVar(&c.certDir, "cert", "", "directory to write failing schedule certificates to (-explore/-fuzz)")
	fs.StringVar(&c.por, "por", "sleepsets", "partial-order reduction for -explore: off or sleepsets")
	fs.IntVar(&c.workers, "workers", runtime.GOMAXPROCS(0), "parallel exploration workers (-explore); 1 = serial")
	fs.StringVar(&c.stateCache, "statecache", "", "directory for state-fingerprint snapshots (-explore): resume pruning across runs")
	fs.StringVar(&c.summary, "summary", "", "append a markdown exploration summary to this file (-explore); point it at $GITHUB_STEP_SUMMARY in CI")

	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	// Exactly one mode. The mode flags themselves are mutually exclusive.
	var modes []string
	if *traced {
		c.mode = modeTrace
		modes = append(modes, "-trace")
	}
	if c.replayPath != "" {
		c.mode = modeReplay
		modes = append(modes, "-replay")
	}
	if *explore {
		c.mode = modeExplore
		modes = append(modes, "-explore")
	}
	if *fuzz {
		c.mode = modeFuzz
		modes = append(modes, "-fuzz")
	}
	if len(modes) > 1 {
		return nil, fmt.Errorf("%s are mutually exclusive", strings.Join(modes, " and "))
	}

	// Every explicitly set flag must belong to the selected mode.
	var stray []string
	for name := range set {
		owners, owned := flagOwner[name]
		if !owned {
			continue // the mode selector flags themselves
		}
		ok := false
		for _, m := range owners {
			if m == c.mode {
				ok = true
			}
		}
		if !ok {
			stray = append(stray, "-"+name)
		}
	}
	if len(stray) > 0 {
		sort.Strings(stray)
		return nil, fmt.Errorf("%s cannot be used with %s", strings.Join(stray, " "), c.mode)
	}

	switch c.mode {
	case modeWorkload:
		switch c.workload {
		case "contention", "prodcons", "priority":
		default:
			return nil, fmt.Errorf("unknown workload %q (want contention, prodcons or priority)", c.workload)
		}
		var strayWl []string
		for name, wls := range workloadOwner {
			if !set[name] {
				continue
			}
			ok := false
			for _, wl := range wls {
				if wl == c.workload {
					ok = true
				}
			}
			if !ok {
				strayWl = append(strayWl, name)
			}
		}
		if len(strayWl) > 0 {
			sort.Strings(strayWl)
			name := strayWl[0]
			return nil, fmt.Errorf("-%s only applies to -workload %s", name, strings.Join(workloadOwner[name], " or "))
		}
		if c.procs < 1 {
			return nil, fmt.Errorf("-procs must be at least 1")
		}
	case modeExplore, modeFuzz:
		if c.litmus != "all" {
			for _, name := range strings.Split(c.litmus, ",") {
				if checker.LitmusByName(strings.TrimSpace(name)) == nil {
					return nil, fmt.Errorf("unknown litmus %q (want all, %s)", strings.TrimSpace(name), strings.Join(checker.LitmusNames(), ", "))
				}
			}
		}
		if c.mode == modeExplore && c.maxK < 0 {
			return nil, fmt.Errorf("-maxk must be nonnegative")
		}
		if c.mode == modeExplore {
			if c.por != "off" && c.por != "sleepsets" {
				return nil, fmt.Errorf("-por must be off or sleepsets, not %q", c.por)
			}
			if c.workers < 1 {
				return nil, fmt.Errorf("-workers must be at least 1")
			}
		}
		if c.mode == modeFuzz && c.runs < 1 && c.budget <= 0 {
			return nil, fmt.Errorf("-fuzz needs -runs or -budget")
		}
	}
	return c, nil
}
