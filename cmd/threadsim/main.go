// Command threadsim runs workloads on the simulated Firefly multiprocessor
// and prints instruction-level statistics: makespan, fast-path rates, Nub
// entries, parks, signal behavior. It is the interactive companion to the
// E2/E10 sweeps in threadsbench.
//
// Usage:
//
//	threadsim -workload contention -procs 5 -threads 8 -iters 500
//	threadsim -workload prodcons -procs 5 -producers 4 -consumers 4
//	threadsim -workload contention -trace   # check the trace against the spec
//	threadsim -trace -record run.jsonl      # also save the trace (JSON Lines)
//	threadsim -replay run.jsonl             # re-check a recorded trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"threads/internal/sim"
	"threads/internal/simthreads"
	"threads/internal/spec"
	"threads/internal/trace"
	"threads/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "contention", "contention or prodcons")
		procs     = flag.Int("procs", 5, "simulated processors (the Firefly had 5)")
		threads   = flag.Int("threads", 8, "threads (contention workload)")
		iters     = flag.Int("iters", 500, "critical sections per thread")
		csWork    = flag.Int("cswork", 20, "instructions inside the critical section")
		think     = flag.Int("think", 200, "instructions outside")
		producers = flag.Int("producers", 4, "producers (prodcons workload)")
		consumers = flag.Int("consumers", 4, "consumers (prodcons workload)")
		items     = flag.Int("items", 200, "items per producer")
		capacity  = flag.Int("capacity", 8, "buffer capacity")
		seed      = flag.Int64("seed", 1, "scheduling seed")
		traced    = flag.Bool("trace", false, "record the action trace and check it against the formal specification")
		record    = flag.String("record", "", "with -trace: also write the trace to this file (JSON Lines)")
		replay    = flag.String("replay", "", "check a previously recorded trace file and exit")
	)
	flag.Parse()

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		events, err := trace.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		n, err := trace.CheckAll(events)
		if err != nil {
			fmt.Printf("CONFORMANCE VIOLATION after %d events:\n  %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("%s: all %d actions conform to the formal specification\n", *replay, n)
		return
	}

	if *traced {
		runTraced(*seed, *procs, *record)
		return
	}

	switch *wl {
	case "contention":
		res, err := workload.SimMutexContention(workload.SimContentionConfig{
			Procs: *procs, Threads: *threads, Iters: *iters,
			CSWork: *csWork, Think: *think, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		ops := float64((*threads) * (*iters))
		fmt.Printf("contention: %d procs, %d threads, %d iterations each\n", *procs, *threads, *iters)
		fmt.Printf("  makespan          %d instructions (%.0f µs MicroVAX II)\n", res.Makespan, res.Micros)
		fmt.Printf("  per operation     %.2f µs\n", res.Micros/ops)
		fmt.Printf("  fast-path rate    %.1f%%\n", res.FastPathRate()*100)
		fmt.Printf("  acquire fast/nub  %d / %d (parks %d)\n",
			res.Stats.AcquireFast, res.Stats.AcquireNub, res.Stats.AcquirePark)
		fmt.Printf("  release fast/nub  %d / %d\n", res.Stats.ReleaseFast, res.Stats.ReleaseNub)
		fmt.Printf("  processor util    %s\n", formatUtil(res.Utilization))
	case "prodcons":
		res, err := workload.SimProducerConsumer(workload.SimPCConfig{
			Procs: *procs, Producers: *producers, Consumers: *consumers,
			ItemsPerProducer: *items, Capacity: *capacity, Work: *think, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		fmt.Printf("prodcons: %d procs, %d producers, %d consumers, %d items\n",
			*procs, *producers, *consumers, res.Items)
		fmt.Printf("  makespan        %d instructions (%.0f µs MicroVAX II)\n", res.Makespan, res.Micros)
		fmt.Printf("  throughput      %.0f items per simulated second\n", res.ItemsPerSecond())
		fmt.Printf("  waits parked    %d, elided %d\n", res.Stats.WaitPark, res.Stats.WaitElided)
		fmt.Printf("  signals         fast %d, nub %d, woke %d\n",
			res.Stats.SignalFast, res.Stats.SignalNub, res.Stats.SignalWoke)
		fmt.Printf("  broadcasts      fast %d, nub %d, woke %d\n",
			res.Stats.BcastFast, res.Stats.BcastNub, res.Stats.BcastWoke)
	default:
		fmt.Fprintf(os.Stderr, "threadsim: unknown workload %q\n", *wl)
		os.Exit(2)
	}
}

// formatUtil renders per-processor utilizations compactly.
func formatUtil(u []float64) string {
	parts := make([]string, len(u))
	for i, v := range u {
		parts[i] = fmt.Sprintf("p%d %.0f%%", i, v*100)
	}
	return strings.Join(parts, "  ")
}

// runTraced runs a mixed workload with tracing and replays the actions
// through the specification, optionally recording them to a file.
func runTraced(seed int64, procs int, record string) {
	var events []trace.Event
	cfg := sim.Config{
		Procs: procs, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 10_000_000,
		Trace: func(ev sim.Event) {
			if a, ok := ev.Payload.(spec.Action); ok {
				events = append(events, trace.Event{Seq: ev.Seq, Thread: ev.Thread.Name(), Action: a})
			}
		},
	}
	w, k := simthreads.NewWorld(cfg)
	m := w.NewMutex()
	c := w.NewCondition()
	var queue, consumed sim.Word
	const total = 60
	for i := 0; i < 3; i++ {
		k.Spawn("producer", func(e *sim.Env) {
			for n := 0; n < total/3; n++ {
				m.Acquire(e)
				e.Add(&queue, 1)
				m.Release(e)
				c.Signal(e)
			}
		})
	}
	for i := 0; i < 3; i++ {
		k.Spawn("consumer", func(e *sim.Env) {
			for {
				m.Acquire(e)
				for e.Load(&queue) == 0 {
					if e.Load(&consumed) >= total {
						m.Release(e)
						c.Broadcast(e)
						return
					}
					c.Wait(e, m)
				}
				e.Add(&queue, ^uint64(0))
				n := e.Add(&consumed, 1)
				m.Release(e)
				if n >= total {
					c.Broadcast(e)
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "threadsim:", err)
		os.Exit(1)
	}
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		if err := trace.Write(f, events); err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", record)
	}
	n, err := trace.CheckAll(events)
	fmt.Printf("traced run: %d linearized actions recorded\n", len(events))
	if err != nil {
		fmt.Printf("CONFORMANCE VIOLATION after %d events:\n  %v\n", n, err)
		os.Exit(1)
	}
	fmt.Printf("all %d actions conform to the formal specification\n", n)
}
