// Command threadsim runs workloads on the simulated Firefly multiprocessor
// and prints instruction-level statistics, and fronts the schedule-space
// model checker in internal/explore.
//
// Usage:
//
//	threadsim -workload contention -procs 5 -threads 8 -iters 500
//	threadsim -workload prodcons -procs 5 -producers 4 -consumers 4
//	threadsim -trace -record run.jsonl      # run traced, save + spec-check the trace
//	threadsim -explore -maxk 2              # enumerate all ≤2-preemption schedules
//	threadsim -fuzz -runs 5000 -cert out/   # sample random schedules, save failures
//	threadsim -replay out/mutex.cert.json   # replay a schedule certificate
//	threadsim -replay run.jsonl             # re-check a recorded trace
//
// Flag combinations are validated strictly: a flag belonging to another
// mode (for example -producers with -workload contention, or -maxk with
// -fuzz) is rejected with a usage error and exit status 2.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"threads/internal/checker"
	"threads/internal/explore"
	"threads/internal/sim"
	"threads/internal/simthreads"
	"threads/internal/spec"
	"threads/internal/trace"
	"threads/internal/workload"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "threadsim:", err)
		fmt.Fprintln(os.Stderr, "run threadsim -h for usage")
		os.Exit(2)
	}
	switch cfg.mode {
	case modeReplay:
		os.Exit(runReplay(cfg))
	case modeExplore:
		os.Exit(runExplore(cfg))
	case modeFuzz:
		os.Exit(runFuzz(cfg))
	case modeTrace:
		runTraced(cfg.seed, cfg.procs, cfg.record)
	default:
		runWorkload(cfg)
	}
}

// selected returns the litmus programs an explore/fuzz invocation covers:
// the whole registry, or a comma-separated -litmus list in the order given.
func selected(c *config) []*checker.Litmus {
	if c.litmus == "all" {
		return checker.Registry()
	}
	var lits []*checker.Litmus
	for _, name := range strings.Split(c.litmus, ",") {
		lits = append(lits, checker.LitmusByName(strings.TrimSpace(name)))
	}
	return lits
}

// remaining splits a total wall-clock budget across the remaining
// litmuses; zero means unbudgeted.
func remaining(deadline time.Time, left int) time.Duration {
	if deadline.IsZero() {
		return 0
	}
	d := time.Until(deadline)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d / time.Duration(left)
}

// writeCert saves a failing schedule certificate, returning its path.
func writeCert(dir string, cert *explore.Certificate) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := cert.Encode()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, cert.Litmus+".cert.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// summaryRow pairs a litmus with its exploration report for the -summary
// markdown writer.
type summaryRow struct {
	lit *checker.Litmus
	rep *explore.Report
}

func runExplore(c *config) int {
	lits := selected(c)
	var deadline time.Time
	if c.budget > 0 {
		deadline = time.Now().Add(c.budget)
	}
	por := explore.POROff
	if c.por == "sleepsets" {
		por = explore.PORSleepSets
	}
	fail := 0
	var rows []summaryRow
	for i, lit := range lits {
		opts := explore.Options{
			MaxPreemptions: c.maxK,
			Budget:         remaining(deadline, len(lits)-i),
			POR:            por,
			Workers:        c.workers,
		}
		if c.stateCache != "" {
			cache, err := explore.LoadStateCache(explore.CachePath(c.stateCache, lit.Name), lit.Name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "threadsim:", err)
				return 1
			}
			opts.Cache = cache
		}
		rep := explore.Explore(lit, opts)
		if opts.Cache != nil {
			if err := opts.Cache.Save(explore.CachePath(c.stateCache, lit.Name), lit.Name); err != nil {
				fmt.Fprintln(os.Stderr, "threadsim:", err)
				return 1
			}
		}
		rows = append(rows, summaryRow{lit, rep})
		// The schedule cap firing means the space was not exhausted and
		// the "explored clean" claim is hollow — that is a failure, unlike
		// an explicit wall-clock -budget, which the caller asked for.
		status := "ok"
		if !rep.Ok() || rep.SchedCapHit {
			status = "FAIL"
			fail++
		}
		rate := float64(rep.Runs) / rep.Elapsed.Seconds()
		fmt.Printf("%-14s %-4s %7d schedules, %9d decisions, %8.0f sched/s, %v\n",
			lit.Name, status, rep.Runs, rep.Decisions, rate, rep.Elapsed.Round(time.Millisecond))
		for _, ks := range rep.PerK {
			fmt.Printf("    k=%d: %6d schedules, deepest %d decision points, %d pruned, %d cache hits\n",
				ks.K, ks.Schedules, ks.MaxDepth, ks.Pruned, ks.CacheHits)
		}
		if rep.Pruned > 0 || opts.Cache != nil || rep.Workers > 1 {
			fmt.Printf("    por pruned %d, cache hits %d (loaded %d, now %d entries), %d workers\n",
				rep.Pruned, rep.CacheHits, rep.CacheLoaded, rep.CacheEntries, rep.Workers)
		}
		if rep.BudgetHit {
			fmt.Printf("    partial: wall-clock budget exhausted before the space\n")
		}
		if rep.SchedCapHit {
			fmt.Printf("    FAIL: per-bound schedule cap hit before the space was exhausted\n")
		}
		if rep.Violation != nil {
			fmt.Printf("    violation (%s): %s\n", rep.Violation.Kind, rep.Violation.Detail)
			if rep.Certificate != nil {
				fmt.Printf("    certificate: %d forced decisions (minimized from %d)\n",
					len(rep.Certificate.Choices), rep.MinimizedFrom)
				if c.certDir != "" {
					path, err := writeCert(c.certDir, rep.Certificate)
					if err != nil {
						fmt.Fprintln(os.Stderr, "threadsim:", err)
						return 1
					}
					fmt.Printf("    saved: %s (threadsim -replay %s)\n", path, path)
				}
			}
			if lit.ExpectViolation {
				fmt.Printf("    expected: this litmus is intentionally broken; the checker has teeth\n")
			}
		} else if lit.ExpectViolation {
			fmt.Printf("    FAIL: intentionally broken litmus explored clean — checker regression\n")
		}
	}
	if c.summary != "" {
		if err := writeSummary(c.summary, c.maxK, rows, fail); err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			return 1
		}
	}
	if fail > 0 {
		fmt.Printf("explore: %d of %d litmus programs FAILED\n", fail, len(lits))
		return 1
	}
	fmt.Printf("explore: all %d litmus programs ok at k<=%d\n", len(lits), c.maxK)
	return 0
}

// writeSummary appends a markdown exploration report to path — the format
// GitHub renders when the path is $GITHUB_STEP_SUMMARY.
func writeSummary(path string, maxK int, rows []summaryRow, fail int) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "## Schedule exploration (k ≤ %d)\n\n", maxK)
	fmt.Fprintf(f, "| litmus | status | schedules | decisions | per bound | elapsed | notes |\n")
	fmt.Fprintf(f, "|---|---|---:|---:|---|---:|---|\n")
	totalRuns := 0
	for _, r := range rows {
		rep := r.rep
		totalRuns += rep.Runs
		status := "ok"
		if !rep.Ok() || rep.SchedCapHit {
			status = "**FAIL**"
		}
		var perK []string
		for _, ks := range rep.PerK {
			perK = append(perK, fmt.Sprintf("k%d: %d", ks.K, ks.Schedules))
		}
		var notes []string
		if rep.Violation != nil {
			note := fmt.Sprintf("%s violation", rep.Violation.Kind)
			if r.lit.ExpectViolation {
				note += " (expected)"
			}
			notes = append(notes, note)
		} else if r.lit.ExpectViolation {
			notes = append(notes, "broken litmus explored clean")
		}
		if rep.BudgetHit {
			notes = append(notes, "partial: budget hit")
		}
		if rep.SchedCapHit {
			notes = append(notes, "partial: schedule cap hit")
		}
		fmt.Fprintf(f, "| %s | %s | %d | %d | %s | %s | %s |\n",
			r.lit.Name, status, rep.Runs, rep.Decisions,
			strings.Join(perK, ", "), rep.Elapsed.Round(time.Millisecond),
			strings.Join(notes, "; "))
	}
	if fail > 0 {
		fmt.Fprintf(f, "\n**%d of %d litmus programs failed.**\n\n", fail, len(rows))
	} else {
		fmt.Fprintf(f, "\n%d schedules visited; all %d litmus programs ok.\n\n", totalRuns, len(rows))
	}
	return nil
}

func runFuzz(c *config) int {
	lits := selected(c)
	var deadline time.Time
	if c.budget > 0 {
		deadline = time.Now().Add(c.budget)
	}
	fail := 0
	for i, lit := range lits {
		rep := explore.Fuzz(lit, explore.FuzzOptions{
			Runs:   c.runs,
			Budget: remaining(deadline, len(lits)-i),
			Seed:   c.seed,
		})
		status := "ok"
		if !rep.Ok() {
			status = "FAIL"
			fail++
		}
		rate := float64(rep.Runs) / rep.Elapsed.Seconds()
		fmt.Printf("%-14s %-4s %7d schedules, %9d decisions, %8.0f sched/s, %v\n",
			lit.Name, status, rep.Runs, rep.Decisions, rate, rep.Elapsed.Round(time.Millisecond))
		if rep.Violation != nil {
			fmt.Printf("    violation (%s) at seed %d: %s\n", rep.Violation.Kind, rep.FailingSeed, rep.Violation.Detail)
			if rep.Certificate != nil {
				fmt.Printf("    certificate: %d forced decisions (minimized from %d)\n",
					len(rep.Certificate.Choices), rep.MinimizedFrom)
				if c.certDir != "" {
					path, err := writeCert(c.certDir, rep.Certificate)
					if err != nil {
						fmt.Fprintln(os.Stderr, "threadsim:", err)
						return 1
					}
					fmt.Printf("    saved: %s (threadsim -replay %s)\n", path, path)
				}
			}
			if lit.ExpectViolation {
				fmt.Printf("    expected: this litmus is intentionally broken; the sampler has teeth\n")
			}
		} else if lit.ExpectViolation {
			fmt.Printf("    FAIL: intentionally broken litmus sampled clean — increase -runs\n")
		}
	}
	if fail > 0 {
		fmt.Printf("fuzz: %d of %d litmus programs FAILED\n", fail, len(lits))
		return 1
	}
	fmt.Printf("fuzz: all %d litmus programs ok\n", len(lits))
	return 0
}

// runReplay handles -replay for both artifact kinds: a schedule
// certificate re-executes its litmus under the recorded schedule and must
// reproduce the recorded violation; a JSON-Lines trace is re-checked
// against the specification.
func runReplay(c *config) int {
	data, err := os.ReadFile(c.replayPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "threadsim:", err)
		return 1
	}
	if explore.IsCertificate(data) {
		cert, _ := explore.DecodeCertificate(data)
		lit := checker.LitmusByName(cert.Litmus)
		if lit == nil {
			fmt.Fprintf(os.Stderr, "threadsim: certificate names unknown litmus %q\n", cert.Litmus)
			return 1
		}
		res := explore.Replay(lit, cert)
		fmt.Printf("%s: litmus %s, %d forced decisions, %d decision points, %d instructions\n",
			c.replayPath, cert.Litmus, len(cert.Choices), len(res.Decisions), res.Steps)
		switch {
		case res.Violation == nil && cert.Violation == "":
			fmt.Printf("schedule replayed clean\n")
			return 0
		case res.Violation != nil && res.Violation.Kind == cert.Violation:
			fmt.Printf("reproduced the recorded %s violation:\n  %s\n", res.Violation.Kind, res.Violation.Detail)
			return 0
		case res.Violation != nil:
			fmt.Printf("violation (%s), but the certificate recorded %q:\n  %s\n",
				res.Violation.Kind, cert.Violation, res.Violation.Detail)
			return 1
		default:
			fmt.Printf("FAILED to reproduce the recorded %q violation (litmus changed since recording?)\n", cert.Violation)
			return 1
		}
	}
	events, err := trace.Read(strings.NewReader(string(data)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "threadsim:", err)
		return 1
	}
	n, err := trace.CheckAll(events)
	if err != nil {
		fmt.Printf("CONFORMANCE VIOLATION after %d events:\n  %v\n", n, err)
		return 1
	}
	fmt.Printf("%s: all %d actions conform to the formal specification\n", c.replayPath, n)
	return 0
}

func runWorkload(c *config) {
	switch c.workload {
	case "contention":
		res, err := workload.SimMutexContention(workload.SimContentionConfig{
			Procs: c.procs, Threads: c.threads, Iters: c.iters,
			CSWork: c.csWork, Think: c.think, Seed: c.seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		ops := float64(c.threads * c.iters)
		fmt.Printf("contention: %d procs, %d threads, %d iterations each\n", c.procs, c.threads, c.iters)
		fmt.Printf("  makespan          %d instructions (%.0f µs MicroVAX II)\n", res.Makespan, res.Micros)
		fmt.Printf("  per operation     %.2f µs\n", res.Micros/ops)
		fmt.Printf("  fast-path rate    %.1f%%\n", res.FastPathRate()*100)
		fmt.Printf("  acquire fast/nub  %d / %d (parks %d)\n",
			res.Stats.AcquireFast, res.Stats.AcquireNub, res.Stats.AcquirePark)
		fmt.Printf("  release fast/nub  %d / %d\n", res.Stats.ReleaseFast, res.Stats.ReleaseNub)
		fmt.Printf("  processor util    %s\n", formatUtil(res.Utilization))
	case "prodcons":
		res, err := workload.SimProducerConsumer(workload.SimPCConfig{
			Procs: c.procs, Producers: c.producers, Consumers: c.consumers,
			ItemsPerProducer: c.items, Capacity: c.capacity, Work: c.think, Seed: c.seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		fmt.Printf("prodcons: %d procs, %d producers, %d consumers, %d items\n",
			c.procs, c.producers, c.consumers, res.Items)
		fmt.Printf("  makespan        %d instructions (%.0f µs MicroVAX II)\n", res.Makespan, res.Micros)
		fmt.Printf("  throughput      %.0f items per simulated second\n", res.ItemsPerSecond())
		fmt.Printf("  waits parked    %d, elided %d\n", res.Stats.WaitPark, res.Stats.WaitElided)
		fmt.Printf("  signals         fast %d, nub %d, woke %d\n",
			res.Stats.SignalFast, res.Stats.SignalNub, res.Stats.SignalWoke)
		fmt.Printf("  broadcasts      fast %d, nub %d, woke %d\n",
			res.Stats.BcastFast, res.Stats.BcastNub, res.Stats.BcastWoke)
	case "priority":
		pcfg := workload.DefaultPriorityConfig(c.pi)
		pcfg.Procs = c.procs
		pcfg.Med = c.med
		if pcfg.Med == 0 {
			// The band must cover every processor or the holder is never
			// starved and the run measures nothing.
			pcfg.Med = c.procs
		}
		pcfg.Iters = c.iters
		pcfg.Seed = c.seed
		res, err := workload.SimPriorityTail(pcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		inh := "off"
		if c.pi {
			inh = "on"
		}
		fmt.Printf("priority: %d procs, %d medium threads, %d acquisitions, inheritance %s\n",
			pcfg.Procs, pcfg.Med, res.Samples, inh)
		fmt.Printf("  high-priority acquire latency (sim instructions):\n")
		fmt.Printf("  p50  %8d\n  p99  %8d\n  p999 %8d\n  max  %8d\n", res.P50, res.P99, res.P999, res.Max)
		fmt.Printf("  makespan          %d instructions\n", res.Makespan)
		fmt.Printf("  acquire fast/nub  %d / %d (parks %d)\n",
			res.Stats.AcquireFast, res.Stats.AcquireNub, res.Stats.AcquirePark)
	}
}

// formatUtil renders per-processor utilizations compactly.
func formatUtil(u []float64) string {
	parts := make([]string, len(u))
	for i, v := range u {
		parts[i] = fmt.Sprintf("p%d %.0f%%", i, v*100)
	}
	return strings.Join(parts, "  ")
}

// runTraced runs a mixed workload with tracing and replays the actions
// through the specification, optionally recording them to a file.
func runTraced(seed int64, procs int, record string) {
	var events []trace.Event
	cfg := sim.Config{
		Procs: procs, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 10_000_000,
		Trace: func(ev sim.Event) {
			if a, ok := ev.Payload.(spec.Action); ok {
				events = append(events, trace.Event{Seq: ev.Seq, Thread: ev.Thread.Name(), Action: a})
			}
		},
	}
	w, k := simthreads.NewWorld(cfg)
	m := w.NewMutex()
	c := w.NewCondition()
	var queue, consumed sim.Word
	const total = 60
	for i := 0; i < 3; i++ {
		k.Spawn("producer", func(e *sim.Env) {
			for n := 0; n < total/3; n++ {
				m.Acquire(e)
				e.Add(&queue, 1)
				m.Release(e)
				c.Signal(e)
			}
		})
	}
	for i := 0; i < 3; i++ {
		k.Spawn("consumer", func(e *sim.Env) {
			for {
				m.Acquire(e)
				for e.Load(&queue) == 0 {
					if e.Load(&consumed) >= total {
						m.Release(e)
						c.Broadcast(e)
						return
					}
					c.Wait(e, m)
				}
				e.Add(&queue, ^uint64(0))
				n := e.Add(&consumed, 1)
				m.Release(e)
				if n >= total {
					c.Broadcast(e)
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "threadsim:", err)
		os.Exit(1)
	}
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		if err := trace.Write(f, events); err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "threadsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", record)
	}
	n, err := trace.CheckAll(events)
	fmt.Printf("traced run: %d linearized actions recorded\n", len(events))
	if err != nil {
		fmt.Printf("CONFORMANCE VIOLATION after %d events:\n  %v\n", n, err)
		os.Exit(1)
	}
	fmt.Printf("all %d actions conform to the formal specification\n", n)
}
