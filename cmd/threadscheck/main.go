// Command threadscheck checks the specification and the implementation.
//
// In its model-checking modes it explores every interleaving of the litmus
// scenarios against a chosen historical variant of the AlertWait
// specification and reports violations with their shortest counterexample
// traces. In -runtime mode it runs the real concurrent runtime
// (internal/core) with conformance tracing enabled and replays the recorded
// linearization-point trace through the specification's state machine —
// experiment E9 extended from the simulator to the implementation.
//
// Usage:
//
//	threadscheck                     # check all scenarios × all variants
//	threadscheck -variant no-m-nil   # one variant
//	threadscheck -bug mnil           # just the E7a scenario
//	threadscheck -bug unchangedc     # just the E7b scenario
//	threadscheck -mutex 3,2          # mutual-exclusion litmus: 3 threads × 2 CS
//	threadscheck -mutex 3,2 -variant no-m-nil   # same, with the injected bug
//	threadscheck -runtime            # trace & replay the real runtime
//	threadscheck -runtime -events 2000000       # larger replay target
//
// Exit status is nonzero whenever a checked property fails: any violation in
// -mutex or -runtime mode (the user asked about that exact configuration),
// and any violation under the final specification variant in the scenario
// modes (the historical variants are expected to violate — that is the
// demonstration — so only final-variant failures are regressions).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"threads/internal/baselines"
	"threads/internal/checker"
	"threads/internal/core"
	"threads/internal/spec"
	"threads/internal/trace"
	"threads/internal/workload"
)

func main() {
	var (
		variantFlag = flag.String("variant", "", "spec variant: final, no-m-nil, unchanged-c (default: all; -mutex default: final)")
		bug         = flag.String("bug", "", "scenario: mnil (E7a), unchangedc (E7b) (default: both)")
		mutex       = flag.String("mutex", "", "run the mutual-exclusion litmus: THREADS,ITERS")
		runtimeCk   = flag.Bool("runtime", false, "trace the real runtime and replay it through the spec")
		events      = flag.Uint64("events", 1_200_000, "minimum linearized events to replay in -runtime mode")
	)
	flag.Parse()

	if *mutex != "" {
		parts := strings.Split(*mutex, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "threadscheck: -mutex wants THREADS,ITERS")
			os.Exit(2)
		}
		n, err1 := strconv.Atoi(parts[0])
		iters, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || n < 1 || iters < 1 {
			fmt.Fprintln(os.Stderr, "threadscheck: bad -mutex arguments")
			os.Exit(2)
		}
		// -mutex checks the configuration the user named, so any violation
		// is a nonzero exit — this branch previously discarded the result
		// and always exited 0, which let a failing run look clean in CI.
		v := spec.VariantFinal
		if *variantFlag != "" {
			var err error
			if v, err = parseVariant(*variantFlag); err != nil {
				fmt.Fprintln(os.Stderr, "threadscheck:", err)
				os.Exit(2)
			}
		}
		bad := report(fmt.Sprintf("mutual exclusion, %d threads × %d critical sections", n, iters),
			checker.Run(checker.MutualExclusion(n, iters)))
		bad = report(fmt.Sprintf("mutual exclusion with AlertWait, %d threads × %d critical sections [variant %s]", n, iters, v),
			checker.Run(checker.MutualExclusionAlert(v, n, iters))) || bad
		if bad {
			os.Exit(1)
		}
		return
	}

	if *runtimeCk {
		if err := runRuntime(*events); err != nil {
			fmt.Fprintln(os.Stderr, "threadscheck:", err)
			os.Exit(1)
		}
		return
	}

	variants := []spec.Variant{spec.VariantNoMNil, spec.VariantUnchangedC, spec.VariantFinal}
	if *variantFlag != "" {
		v, err := parseVariant(*variantFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadscheck:", err)
			os.Exit(2)
		}
		variants = []spec.Variant{v}
	}
	runMNil := *bug == "" || *bug == "mnil"
	runUnchanged := *bug == "" || *bug == "unchangedc"
	if !runMNil && !runUnchanged {
		fmt.Fprintf(os.Stderr, "threadscheck: unknown -bug %q (want mnil or unchangedc)\n", *bug)
		os.Exit(2)
	}
	bad := false
	for _, v := range variants {
		if runMNil {
			violated := report(fmt.Sprintf("E7a mutual exclusion under AlertWait [variant %s]", v),
				checker.Run(checker.AlertSeizesHeldMutex(v)))
			bad = bad || (v == spec.VariantFinal && violated)
		}
		if runUnchanged {
			violated := report(fmt.Sprintf("E7b absorbed signal [variant %s]", v),
				checker.Run(checker.SignalAbsorbedByDepartedThread(v)))
			bad = bad || (v == spec.VariantFinal && violated)
		}
	}
	if bad {
		// The final specification must be clean; anything else is a
		// regression in this repository.
		os.Exit(1)
	}
}

// runRuntime runs the producer-consumer and alert-storm workloads on the
// real runtime with conformance tracing on, episodically: run a bounded
// burst, quiesce (all workers joined), collect the sharded rings, merge by
// stamp and feed the checker, until at least target events have replayed.
// Episodic collection bounds memory while the global stamp counter keeps
// the stream strictly ordered across episodes.
func runRuntime(target uint64) error {
	const perShardCap = 1 << 17
	core.StartTracing(perShardCap)
	defer core.StopTracing()

	ck := trace.New()
	var replayed uint64
	episode := 0
	for replayed < target {
		episode++
		pcRes := workload.ProducerConsumer(baselines.NewThreadsMonitor(), workload.PCConfig{
			Producers: 4, Consumers: 4, ItemsPerProducer: 4000, Capacity: 8, Work: 0,
		})
		asRes := workload.AlertStorm(workload.AlertStormConfig{
			Victims: 8, Stormers: 2, Episodes: 200,
		})
		shards, dropped := core.CollectTrace()
		if dropped > 0 {
			return fmt.Errorf("episode %d overflowed the trace rings (%d records dropped): raise perShardCap or shrink the burst", episode, dropped)
		}
		evs, err := trace.FromCore(trace.Merge(shards))
		if err != nil {
			return err
		}
		if err := ck.Feed(evs); err != nil {
			return err
		}
		replayed += uint64(len(evs))
		fmt.Printf("episode %2d: %7d events (pc %d items, storm %d alerts/%d raised) — %d/%d replayed, clean\n",
			episode, len(evs), pcRes.Items, asRes.Alerts, asRes.Raised, replayed, target)
	}
	fmt.Printf("runtime conformance: %d linearized events replayed through the specification, zero violations\n", replayed)
	return nil
}

func parseVariant(s string) (spec.Variant, error) {
	switch s {
	case "final":
		return spec.VariantFinal, nil
	case "no-m-nil", "nomnil", "mnil":
		return spec.VariantNoMNil, nil
	case "unchanged-c", "unchangedc":
		return spec.VariantUnchangedC, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (want final, no-m-nil, unchanged-c)", s)
	}
}

// report prints one model-checking result and returns whether it violated
// its property — the caller decides what that means for the exit status.
func report(title string, res checker.Result) bool {
	fmt.Printf("== %s\n", title)
	fmt.Printf("   states %d, transitions %d, terminal %d\n", res.States, res.Transitions, res.Terminal)
	if res.Violation == nil {
		fmt.Printf("   property holds over the full state space\n\n")
		return false
	}
	fmt.Printf("   %s VIOLATION: %s\n", strings.ToUpper(res.Violation.Kind), res.Violation.Msg)
	fmt.Printf("   shortest counterexample (%d steps):\n", len(res.Violation.Trace))
	for i, step := range res.Violation.Trace {
		fmt.Printf("     %2d. %s\n", i+1, step)
	}
	fmt.Println()
	return true
}
