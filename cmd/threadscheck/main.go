// Command threadscheck model-checks the formal specification: it explores
// every interleaving of the litmus scenarios against a chosen historical
// variant of the AlertWait specification and reports violations with their
// shortest counterexample traces.
//
// Usage:
//
//	threadscheck                     # check all scenarios × all variants
//	threadscheck -variant no-m-nil   # one variant
//	threadscheck -bug mnil           # just the E7a scenario
//	threadscheck -bug unchangedc     # just the E7b scenario
//	threadscheck -mutex 3,2          # mutual-exclusion litmus: 3 threads × 2 CS
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"threads/internal/checker"
	"threads/internal/spec"
)

func main() {
	var (
		variantFlag = flag.String("variant", "", "spec variant: final, no-m-nil, unchanged-c (default: all)")
		bug         = flag.String("bug", "", "scenario: mnil (E7a), unchangedc (E7b) (default: both)")
		mutex       = flag.String("mutex", "", "run the mutual-exclusion litmus: THREADS,ITERS")
	)
	flag.Parse()

	if *mutex != "" {
		parts := strings.Split(*mutex, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "threadscheck: -mutex wants THREADS,ITERS")
			os.Exit(2)
		}
		n, err1 := strconv.Atoi(parts[0])
		iters, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || n < 1 || iters < 1 {
			fmt.Fprintln(os.Stderr, "threadscheck: bad -mutex arguments")
			os.Exit(2)
		}
		report(fmt.Sprintf("mutual exclusion, %d threads × %d critical sections", n, iters),
			checker.Run(checker.MutualExclusion(n, iters)))
		return
	}

	variants := []spec.Variant{spec.VariantNoMNil, spec.VariantUnchangedC, spec.VariantFinal}
	if *variantFlag != "" {
		v, err := parseVariant(*variantFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "threadscheck:", err)
			os.Exit(2)
		}
		variants = []spec.Variant{v}
	}
	runMNil := *bug == "" || *bug == "mnil"
	runUnchanged := *bug == "" || *bug == "unchangedc"
	if !runMNil && !runUnchanged {
		fmt.Fprintf(os.Stderr, "threadscheck: unknown -bug %q (want mnil or unchangedc)\n", *bug)
		os.Exit(2)
	}
	bad := false
	for _, v := range variants {
		if runMNil {
			res := checker.Run(checker.AlertSeizesHeldMutex(v))
			report(fmt.Sprintf("E7a mutual exclusion under AlertWait [variant %s]", v), res)
			bad = bad || (v == spec.VariantFinal && res.Violation != nil)
		}
		if runUnchanged {
			res := checker.Run(checker.SignalAbsorbedByDepartedThread(v))
			report(fmt.Sprintf("E7b absorbed signal [variant %s]", v), res)
			bad = bad || (v == spec.VariantFinal && res.Violation != nil)
		}
	}
	if bad {
		// The final specification must be clean; anything else is a
		// regression in this repository.
		os.Exit(1)
	}
}

func parseVariant(s string) (spec.Variant, error) {
	switch s {
	case "final":
		return spec.VariantFinal, nil
	case "no-m-nil", "nomnil", "mnil":
		return spec.VariantNoMNil, nil
	case "unchanged-c", "unchangedc":
		return spec.VariantUnchangedC, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (want final, no-m-nil, unchanged-c)", s)
	}
}

func report(title string, res checker.Result) {
	fmt.Printf("== %s\n", title)
	fmt.Printf("   states %d, transitions %d, terminal %d\n", res.States, res.Transitions, res.Terminal)
	if res.Violation == nil {
		fmt.Printf("   property holds over the full state space\n\n")
		return
	}
	fmt.Printf("   %s VIOLATION: %s\n", strings.ToUpper(res.Violation.Kind), res.Violation.Msg)
	fmt.Printf("   shortest counterexample (%d steps):\n", len(res.Violation.Trace))
	for i, step := range res.Violation.Trace {
		fmt.Printf("     %2d. %s\n", i+1, step)
	}
	fmt.Println()
}
