// Command threadsvet runs the static usage-discipline checks for the
// threads API (internal/analysis) over package patterns, in the style of
// go vet:
//
//	threadsvet ./...
//	threadsvet -only waitloop,lockpair ./internal/workload
//	threadsvet -lockorder.interprocedural -report vet.txt ./...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors. Findings silenced by //threadsvet:ignore directives are
// counted in the summary but do not fail the run; a malformed, unknown or
// stale directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"threads/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("threadsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only   = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip   = fs.String("skip", "", "comma-separated analyzers to skip")
		tests  = fs.Bool("tests", false, "also analyze _test.go files")
		inter  = fs.Bool("lockorder.interprocedural", false, "close lock-order edges through same-package calls (slower; CI runs this nightly)")
		report = fs.String("report", "", "also write every finding (suppressed included) to this file")
		list   = fs.Bool("list", false, "list the analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: threadsvet [flags] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "threadsvet: %v\n", err)
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "threadsvet: %v\n", err)
		return 2
	}
	loader.IncludeTests = *tests

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := loader.ExpandPatterns(".", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "threadsvet: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "threadsvet: no packages match %v\n", patterns)
		return 2
	}

	opts := map[string]string{}
	if *inter {
		opts["lockorder.interprocedural"] = "true"
	}
	driver := &analysis.Driver{Analyzers: analyzers, Options: opts}

	cwd, _ := os.Getwd()
	var reportLines []string
	total, suppressed := 0, 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "threadsvet: %v\n", err)
			return 2
		}
		findings, err := driver.Run(pkg)
		if err != nil {
			fmt.Fprintf(stderr, "threadsvet: %v\n", err)
			return 2
		}
		for _, f := range findings {
			f.Pos.Filename = relPath(cwd, f.Pos.Filename)
			if f.Suppressed {
				suppressed++
				reportLines = append(reportLines,
					fmt.Sprintf("suppressed: %s: reason: %s", f, f.Reason))
				continue
			}
			total++
			fmt.Fprintln(stdout, f)
			reportLines = append(reportLines, f.String())
		}
	}

	if *report != "" {
		body := strings.Join(reportLines, "\n")
		if body != "" {
			body += "\n"
		}
		if err := os.WriteFile(*report, []byte(body), 0o644); err != nil {
			fmt.Fprintf(stderr, "threadsvet: %v\n", err)
			return 2
		}
	}
	fmt.Fprintf(stderr, "threadsvet: %d packages, %d findings, %d suppressed\n",
		len(dirs), total, suppressed)
	if total > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -only and -skip to the suite.
func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	chosen := analysis.All()
	if only != "" {
		chosen = nil
		for _, name := range splitNames(only) {
			a, ok := analysis.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			chosen = append(chosen, a)
		}
	}
	if skip != "" {
		drop := make(map[string]bool)
		for _, name := range splitNames(skip) {
			if _, ok := analysis.ByName(name); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			drop[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range chosen {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		chosen = kept
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].Name < chosen[j].Name })
	return chosen, nil
}

func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// relPath shortens absolute finding positions relative to the working
// directory when that makes them shorter (go vet prints relative paths).
func relPath(cwd, path string) string {
	if cwd == "" {
		return path
	}
	if rel, err := filepath.Rel(cwd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}
