// Command threadsvet runs the static usage-discipline checks for the
// threads API (internal/analysis) over package patterns, in the style of
// go vet:
//
//	threadsvet ./...
//	threadsvet -only waitloop,lockpair ./internal/workload
//	threadsvet -lockorder.interprocedural -report vet.txt ./...
//	threadsvet -report=github -report vet.txt ./...   # CI annotations + artifact
//	threadsvet -guardedby.suggest ./...
//
// All matched packages are analyzed as one program, so the
// interprocedural analyzers (guardedby, lockpair, nubdiscipline, and
// lockorder's -lockorder.interprocedural mode) see function summaries
// across package boundaries.
//
// -report takes a file path, or the special value "github" to emit
// GitHub Actions workflow commands (::error file=…,line=…::message) that
// annotate the offending lines in pull-request diffs; the flag repeats,
// so CI can emit annotations and keep the artifact file.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors. Findings silenced by //threadsvet:ignore directives are
// counted in the summary but do not fail the run; a malformed, unknown or
// stale directive is itself a finding. Advisory findings (the
// -guardedby.suggest proposals) are printed but never fail the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"threads/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("threadsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var reports reportFlags
	var (
		only    = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = fs.String("skip", "", "comma-separated analyzers to skip")
		tests   = fs.Bool("tests", false, "also analyze _test.go files")
		inter   = fs.Bool("lockorder.interprocedural", false, "close lock-order edges through calls, across packages (slower; CI runs this nightly)")
		suggest = fs.Bool("guardedby.suggest", false, "print advisory //threads:guardedby annotation suggestions for consistently guarded fields")
		list    = fs.Bool("list", false, "list the analyzers and exit")
	)
	fs.Var(&reports, "report", "write every finding (suppressed included) to this file, or \"github\" to emit GitHub Actions ::error annotations on stdout (repeatable)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: threadsvet [flags] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "threadsvet: %v\n", err)
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "threadsvet: %v\n", err)
		return 2
	}
	loader.IncludeTests = *tests

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := loader.ExpandPatterns(".", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "threadsvet: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "threadsvet: no packages match %v\n", patterns)
		return 2
	}

	opts := map[string]string{}
	if *inter {
		opts["lockorder.interprocedural"] = "true"
	}
	if *suggest {
		opts["guardedby.suggest"] = "true"
	}
	driver := &analysis.Driver{Analyzers: analyzers, Options: opts}

	// Load every matched package, then analyze them together: the Program is
	// what lets summaries cross package boundaries.
	pkgs := make([]*analysis.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "threadsvet: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := driver.RunProgram(analysis.NewProgram(pkgs))
	if err != nil {
		fmt.Fprintf(stderr, "threadsvet: %v\n", err)
		return 2
	}

	cwd, _ := os.Getwd()
	var reportLines []string
	total, suppressed, advisory := 0, 0, 0
	for _, f := range findings {
		f.Pos.Filename = relPath(cwd, f.Pos.Filename)
		if f.Suppressed {
			suppressed++
			reportLines = append(reportLines,
				fmt.Sprintf("suppressed: %s: reason: %s", f, f.Reason))
			continue
		}
		if f.Info {
			advisory++
		} else {
			total++
		}
		fmt.Fprintln(stdout, f)
		for _, r := range f.Related {
			r.Filename = relPath(cwd, r.Filename)
			fmt.Fprintf(stdout, "\t%s: related\n", r)
		}
		if reports.github {
			fmt.Fprintln(stdout, githubCommand(f))
		}
		reportLines = append(reportLines, f.String())
	}

	for _, file := range reports.files {
		body := strings.Join(reportLines, "\n")
		if body != "" {
			body += "\n"
		}
		if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
			fmt.Fprintf(stderr, "threadsvet: %v\n", err)
			return 2
		}
	}
	fmt.Fprintf(stderr, "threadsvet: %d packages, %d findings, %d suppressed, %d advisory\n",
		len(dirs), total, suppressed, advisory)
	if total > 0 {
		return 1
	}
	return 0
}

// reportFlags collects repeated -report values: file paths plus the
// special "github" mode.
type reportFlags struct {
	files  []string
	github bool
}

func (r *reportFlags) String() string { return strings.Join(r.files, ",") }

func (r *reportFlags) Set(v string) error {
	if v == "github" {
		r.github = true
		return nil
	}
	r.files = append(r.files, v)
	return nil
}

// githubCommand renders a finding as a GitHub Actions workflow command, so
// CI annotates the offending line in the pull-request diff. Property
// values and the message use the Actions escaping rules (%, CR, LF; plus
// ',' and ':' inside properties).
func githubCommand(f analysis.Finding) string {
	level := "error"
	if f.Info {
		level = "notice"
	}
	msg := f.Message + " (" + f.Analyzer + ")"
	return fmt.Sprintf("::%s file=%s,line=%d,col=%d::%s",
		level, escapeProperty(f.Pos.Filename), f.Pos.Line, f.Pos.Column, escapeData(msg))
}

func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	return strings.ReplaceAll(s, "\n", "%0A")
}

func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	return strings.ReplaceAll(s, ",", "%2C")
}

// selectAnalyzers applies -only and -skip to the suite.
func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	chosen := analysis.All()
	if only != "" {
		chosen = nil
		for _, name := range splitNames(only) {
			a, ok := analysis.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			chosen = append(chosen, a)
		}
	}
	if skip != "" {
		drop := make(map[string]bool)
		for _, name := range splitNames(skip) {
			if _, ok := analysis.ByName(name); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			drop[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range chosen {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		chosen = kept
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].Name < chosen[j].Name })
	return chosen, nil
}

func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// relPath shortens absolute finding positions relative to the working
// directory when that makes them shorter (go vet prints relative paths).
func relPath(cwd, path string) string {
	if cwd == "" {
		return path
	}
	if rel, err := filepath.Rel(cwd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}
