package main

import (
	"bytes"
	"strings"
	"testing"

	"threads/internal/analysis"
)

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(all))
	}

	only, err := selectAnalyzers("waitloop, lockpair", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 2 || only[0].Name != "lockpair" || only[1].Name != "waitloop" {
		t.Errorf("-only selection = %v", names(only))
	}

	skipped, err := selectAnalyzers("", "lockorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 7 {
		t.Errorf("-skip lockorder left %v", names(skipped))
	}
	for _, a := range skipped {
		if a.Name == "lockorder" {
			t.Errorf("-skip did not drop lockorder: %v", names(skipped))
		}
	}

	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Error("-only nosuch: want error")
	}
	if _, err := selectAnalyzers("", "nosuch"); err == nil {
		t.Error("-skip nosuch: want error")
	}
	if _, err := selectAnalyzers("waitloop", "waitloop"); err == nil {
		t.Error("selecting then skipping everything: want error")
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"waitloop", "condmutex", "lockpair", "alerted", "lockorder", "nubdiscipline"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "bogus", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown -only analyzer exited %d, want 2", code)
	}
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
}

// TestRunCleanPackage drives the whole pipeline over a small package that
// must be clean (internal/spinlock: nubdiscipline exempts the lock's own
// implementation and nothing else applies).
func TestRunCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"../../internal/spinlock"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected findings:\n%s", stdout.String())
	}
}

func names(as []*analysis.Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}
