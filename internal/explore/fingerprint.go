package explore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// StateCache is the persistent state-fingerprint cache: it maps the
// 128-bit fingerprint of a machine state at a decision point
// (sim.Kernel.Fingerprint) to the largest remaining preemption budget with
// which that state's subtree has been completely explored. A run reaching
// a cached state with no more budget than the cached value can stop: every
// schedule below it was already enumerated. Budgets are absolute, so
// entries written at one context bound stay valid at every other, and a
// cache persisted to disk lets the next nightly run resume where the last
// one stopped.
//
// Entries are inserted only when the depth-first search backtracks past a
// fully-explored node (never on budget or schedule-cap exhaustion), so a
// cached budget is always a completed-subtree guarantee. A persisted cache
// is trusted only if its executable stamp and its root fingerprint (the
// depth-0 state, identical for every run of a litmus) both match — any
// change to the litmus, the simulator, or the hash function discards the
// snapshot instead of silently corrupting the search.
type StateCache struct {
	shards [cacheShards]cacheShard

	rootMu     sync.Mutex
	haveRoot   bool
	root       [2]uint64
	loadedRoot [2]uint64
	loaded     int
}

const cacheShards = 16

// cacheCapPerShard bounds the cache to ~16M entries total (~1 GB of map
// overhead, ~270 MB on disk — prodcons alone completes k<=3 with 11.6M
// distinct states). Deep bounds on the larger litmuses can visit more
// states than that; once a shard is full, new states are simply not
// cached — pruning weakens, soundness does not, and memory stays
// bounded.
const cacheCapPerShard = (16 << 20) / cacheShards

type cacheShard struct {
	mu sync.RWMutex
	m  map[[2]uint64]uint8
}

// NewStateCache returns an empty in-memory cache.
func NewStateCache() *StateCache { return &StateCache{} }

// Len returns the number of cached states.
func (c *StateCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Loaded returns how many entries were restored from disk (before any
// root-mismatch invalidation).
func (c *StateCache) Loaded() int {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	return c.loaded
}

func (c *StateCache) get(h1, h2 uint64) (uint8, bool) {
	s := &c.shards[h1&(cacheShards-1)]
	s.mu.RLock()
	v, ok := s.m[[2]uint64{h1, h2}]
	s.mu.RUnlock()
	return v, ok
}

func (c *StateCache) put(h1, h2 uint64, budget int) {
	if budget < 0 {
		return
	}
	b := uint8(min(budget, 255))
	s := &c.shards[h1&(cacheShards-1)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[[2]uint64]uint8)
	}
	if old, ok := s.m[[2]uint64{h1, h2}]; ok {
		if old < b {
			s.m[[2]uint64{h1, h2}] = b
		}
	} else if len(s.m) < cacheCapPerShard {
		s.m[[2]uint64{h1, h2}] = b
	}
	s.mu.Unlock()
}

// validateRoot is called with the depth-0 fingerprint of each run. The
// first call establishes the cache's root; if a persisted snapshot carried
// a different root, the snapshot is for a different decision tree and is
// dropped wholesale.
func (c *StateCache) validateRoot(h1, h2 uint64) {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	if c.haveRoot {
		return
	}
	c.haveRoot = true
	c.root = [2]uint64{h1, h2}
	if c.loaded > 0 && c.loadedRoot != c.root {
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			s.m = nil
			s.mu.Unlock()
		}
		c.loaded = 0
	}
}

// cacheMagic versions the on-disk format; bump it on any layout change.
var cacheMagic = [8]byte{'T', 'S', 'C', 'A', 'C', 'H', 'E', '1'}

// CachePath returns the snapshot file for one litmus under dir.
func CachePath(dir, litmus string) string {
	return filepath.Join(dir, litmus+".scache")
}

// LoadStateCache restores a snapshot written by Save. A missing file, a
// stamp from a different build of this executable, or a snapshot for a
// different litmus all yield an empty cache (resuming is an optimisation;
// a stale snapshot must never steer the search). Corrupt files return an
// error.
func LoadStateCache(path, litmus string) (*StateCache, error) {
	c := NewStateCache()
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("explore: state cache %s: %w", path, err)
	}
	if magic != cacheMagic {
		return c, nil // older format: start fresh
	}
	var hdr [4]uint64 // stamp, rootHi, rootLo, name length
	if err := binary.Read(f, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("explore: state cache %s: %w", path, err)
	}
	if hdr[3] > 1<<16 {
		return nil, fmt.Errorf("explore: state cache %s: implausible litmus name length", path)
	}
	name := make([]byte, hdr[3])
	if _, err := io.ReadFull(f, name); err != nil {
		return nil, fmt.Errorf("explore: state cache %s: %w", path, err)
	}
	if hdr[0] != exeStamp() || string(name) != litmus {
		return c, nil
	}
	var count uint64
	if err := binary.Read(f, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("explore: state cache %s: %w", path, err)
	}
	rec := make([]byte, 17) // h1, h2, budget
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(f, rec); err != nil {
			return nil, fmt.Errorf("explore: state cache %s: truncated at entry %d: %w", path, i, err)
		}
		h1 := binary.LittleEndian.Uint64(rec)
		h2 := binary.LittleEndian.Uint64(rec[8:])
		c.put(h1, h2, int(rec[16]))
	}
	c.loadedRoot = [2]uint64{hdr[1], hdr[2]}
	c.loaded = c.Len()
	return c, nil
}

// Save writes the cache as a snapshot for litmus, atomically (temp file +
// rename), creating the directory if needed.
func (c *StateCache) Save(path, litmus string) error {
	c.rootMu.Lock()
	root := c.root
	if !c.haveRoot {
		root = c.loadedRoot
	}
	c.rootMu.Unlock()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".scache-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if _, err := f.Write(cacheMagic[:]); err != nil {
		f.Close()
		return err
	}
	hdr := [4]uint64{exeStamp(), root[0], root[1], uint64(len(litmus))}
	if err := binary.Write(f, binary.LittleEndian, hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := io.WriteString(f, litmus); err != nil {
		f.Close()
		return err
	}
	entries := make([]byte, 0, 17*c.Len())
	var rec [17]byte
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, b := range s.m {
			binary.LittleEndian.PutUint64(rec[:], k[0])
			binary.LittleEndian.PutUint64(rec[8:], k[1])
			rec[16] = b
			entries = append(entries, rec[:]...)
		}
		s.mu.RUnlock()
	}
	if err := binary.Write(f, binary.LittleEndian, uint64(len(entries)/17)); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(entries); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

// exeStamp hashes the running executable so persisted fingerprints are
// trusted only by the exact build that produced them — any code change can
// change decision-tree semantics or the hash itself.
var (
	exeStampOnce sync.Once
	exeStampVal  uint64
)

func exeStamp() uint64 {
	exeStampOnce.Do(func() {
		path, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(path)
		if err != nil {
			return
		}
		defer f.Close()
		h := fnv.New64a()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		exeStampVal = h.Sum64()
	})
	return exeStampVal
}
