package explore

import (
	"math/rand"
	"time"

	"threads/internal/checker"
)

// FuzzOptions parameterizes swarm scheduling: weighted-random sampling
// from the same decision tree the exhaustive mode enumerates, for the
// deep-preemption tail no practical context bound reaches.
type FuzzOptions struct {
	// Runs is the number of schedules to sample (0 with a Budget means
	// run until the budget expires).
	Runs int
	// Budget, if positive, stops sampling after that much wall-clock time.
	Budget time.Duration
	// Seed seeds the sampler; run i uses Seed+i, so any failing run is
	// independently reproducible from (litmus, seed, index) — though the
	// certificate is the preferred witness.
	Seed int64
	// PreemptProb is the per-decision probability of preempting a thread
	// that could have kept running; 0 selects the default of 0.2.
	PreemptProb float64
}

// FuzzReport summarizes a fuzzing campaign over one litmus program.
type FuzzReport struct {
	Litmus          string
	ExpectViolation bool
	Runs            int
	Decisions       int
	Violation       *Violation
	Certificate     *Certificate // minimized witness, when a violation was found
	MinimizedFrom   int
	FailingSeed     int64 // the rng seed of the violating run
	Elapsed         time.Duration
}

// Ok mirrors Report.Ok: broken litmuses must fail, clean ones must not.
// A clean fuzz pass over a broken litmus is weaker evidence than a clean
// exhaustive pass (sampling can miss), so broken litmuses should also be
// covered by Explore; Ok still holds them to finding the bug.
func (r *FuzzReport) Ok() bool {
	if r.ExpectViolation {
		return r.Violation != nil
	}
	return r.Violation == nil
}

// Fuzz samples weighted-random schedules of lit until a violation, the
// run count, or the budget is reached. The first violating schedule is
// minimized into a replayable certificate.
func Fuzz(lit *checker.Litmus, o FuzzOptions) *FuzzReport {
	start := time.Now()
	if o.PreemptProb <= 0 {
		o.PreemptProb = 0.2
	}
	rep := &FuzzReport{Litmus: lit.Name, ExpectViolation: lit.ExpectViolation}
	for i := 0; ; i++ {
		if o.Runs > 0 && i >= o.Runs {
			break
		}
		if o.Budget > 0 && time.Since(start) > o.Budget {
			break
		}
		if o.Runs <= 0 && o.Budget <= 0 {
			break // refuse to run unbounded
		}
		seed := o.Seed + int64(i)
		rec := &recorder{rng: rand.New(rand.NewSource(seed)), preemptProb: o.PreemptProb}
		res := runProgram(lit, rec)
		rep.Runs++
		rep.Decisions += len(res.Decisions)
		if res.Violation != nil {
			rep.Violation = res.Violation
			rep.FailingSeed = seed
			cert := certificateFromRun(lit, res)
			rep.MinimizedFrom = len(cert.Choices)
			rep.Certificate = Minimize(lit, cert)
			break
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}
