package explore

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"threads/internal/checker"
)

// testBudget keeps a single test from hanging CI if an enumeration
// regression blows up the schedule space; the k<=1 spaces all finish in
// a few seconds.
const testBudget = 60 * time.Second

// TestExploreCleanLitmusesK1 is the headline soundness check: exhaustive
// enumeration of every schedule with at most one preemption, for every
// correct litmus in the registry, finds zero violations — no spec
// divergence, no deadlock, no livelock, no wrong outcome.
func TestExploreCleanLitmusesK1(t *testing.T) {
	for _, lit := range checker.Registry() {
		if lit.ExpectViolation {
			continue
		}
		lit := lit
		t.Run(lit.Name, func(t *testing.T) {
			rep := Explore(lit, Options{MaxPreemptions: 1, Budget: testBudget})
			if rep.Partial {
				t.Fatalf("exploration hit the budget after %d runs; not exhaustive", rep.Runs)
			}
			if rep.Violation != nil {
				t.Fatalf("violation in a correct litmus: %v", rep.Violation)
			}
			if len(rep.PerK) != 2 || rep.PerK[0].Schedules == 0 || rep.PerK[1].Schedules == 0 {
				t.Fatalf("coverage table malformed: %+v", rep.PerK)
			}
			t.Logf("%d schedules, %d decisions, %v", rep.Runs, rep.Decisions, rep.Elapsed)
		})
	}
}

// TestExploreBrokenAlertK1 is the checker-has-teeth regression: the
// no-m-nil AlertWait bug must be caught within one preemption, as a
// conformance divergence from the specification, and the certificate must
// be minimized and must reproduce the same violation on replay.
func TestExploreBrokenAlertK1(t *testing.T) {
	lit := checker.LitmusByName("alert-broken")
	if lit == nil {
		t.Fatal("alert-broken missing from the registry")
	}
	rep := Explore(lit, Options{MaxPreemptions: 1, Budget: testBudget})
	if rep.Violation == nil {
		t.Fatalf("no violation found in %d runs; the explorer lost its teeth", rep.Runs)
	}
	if rep.Violation.Kind != "conformance" {
		t.Fatalf("violation kind = %q (%s), want conformance", rep.Violation.Kind, rep.Violation.Detail)
	}
	if !strings.Contains(rep.Violation.Detail, "no-m-nil") {
		t.Errorf("violation detail does not name the no-m-nil variant: %s", rep.Violation.Detail)
	}
	if !rep.Ok() {
		t.Error("Report.Ok() = false for a broken litmus with a violation")
	}
	cert := rep.Certificate
	if cert == nil {
		t.Fatal("violation reported without a certificate")
	}
	if len(cert.Choices) > rep.MinimizedFrom {
		t.Errorf("minimization grew the certificate: %d > %d", len(cert.Choices), rep.MinimizedFrom)
	}
	res := Replay(lit, cert)
	if res.Violation == nil || res.Violation.Kind != cert.Violation {
		t.Fatalf("certificate replay got %v, want kind %q", res.Violation, cert.Violation)
	}
}

// TestDeterministicReplay: the same certificate produces byte-identical
// linearization traces on every replay.
func TestDeterministicReplay(t *testing.T) {
	lit := checker.LitmusByName("alert-broken")
	rep := Explore(lit, Options{MaxPreemptions: 1, Budget: testBudget})
	if rep.Certificate == nil {
		t.Fatal("no certificate to replay")
	}
	first, res1, err := ReplayTraceBytes(lit, rep.Certificate)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("replay produced an empty trace")
	}
	for i := 0; i < 3; i++ {
		again, res2, err := ReplayTraceBytes(lit, rep.Certificate)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("replay %d diverged: %d vs %d trace bytes", i, len(first), len(again))
		}
		if res1.Steps != res2.Steps || len(res1.Decisions) != len(res2.Decisions) {
			t.Fatalf("replay %d: steps %d/%d decisions %d/%d", i,
				res1.Steps, res2.Steps, len(res1.Decisions), len(res2.Decisions))
		}
	}
}

// TestCertificateRoundTrip: encode/decode preserves the certificate, and
// non-certificate JSON (such as a trace line) is rejected.
func TestCertificateRoundTrip(t *testing.T) {
	lit := checker.LitmusByName("alert-broken")
	rep := Explore(lit, Options{MaxPreemptions: 1, Budget: testBudget})
	if rep.Certificate == nil {
		t.Fatal("no certificate")
	}
	data, err := rep.Certificate.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Litmus != rep.Certificate.Litmus || len(back.Choices) != len(rep.Certificate.Choices) {
		t.Fatalf("round trip changed the certificate: %+v vs %+v", back, rep.Certificate)
	}
	if !IsCertificate(data) {
		t.Error("IsCertificate rejected a valid certificate")
	}
	for _, bad := range []string{
		`{"seq":1,"thread":"t1","action":{}}`, // a trace line
		`not json`,
		`{"kind":"schedule-certificate","version":99,"litmus":"mutex","choices":[]}`,
		`{"kind":"schedule-certificate","version":1,"choices":[]}`, // no litmus
	} {
		if IsCertificate([]byte(bad)) {
			t.Errorf("IsCertificate accepted %q", bad)
		}
	}
}

// TestMinimizeShrinks: a violating schedule found by heavy random
// preemption carries many incidental forced decisions; minimization must
// strip them while the failure still reproduces.
func TestMinimizeShrinks(t *testing.T) {
	lit := checker.LitmusByName("alert-broken")
	rep := Fuzz(lit, FuzzOptions{Runs: 500, Seed: 1, PreemptProb: 0.5})
	if rep.Violation == nil {
		t.Fatalf("fuzz found no violation in %d runs", rep.Runs)
	}
	if rep.MinimizedFrom < 2 {
		t.Skipf("failing schedule had only %d non-default choices; nothing to shrink", rep.MinimizedFrom)
	}
	if got := len(rep.Certificate.Choices); got >= rep.MinimizedFrom {
		t.Fatalf("minimizer did not shrink: %d choices, started from %d", got, rep.MinimizedFrom)
	}
	res := Replay(lit, rep.Certificate)
	if res.Violation == nil || res.Violation.Kind != rep.Violation.Kind {
		t.Fatalf("minimized certificate replays to %v, want kind %q", res.Violation, rep.Violation.Kind)
	}
	t.Logf("minimized %d -> %d choices", rep.MinimizedFrom, len(rep.Certificate.Choices))
}

// TestFuzzCleanMutex: random schedules of a correct litmus stay clean.
func TestFuzzCleanMutex(t *testing.T) {
	lit := checker.LitmusByName("mutex")
	rep := Fuzz(lit, FuzzOptions{Runs: 200, Seed: 42})
	if rep.Violation != nil {
		t.Fatalf("fuzz violation in a correct litmus (seed %d): %v", rep.FailingSeed, rep.Violation)
	}
	if rep.Runs != 200 {
		t.Fatalf("ran %d schedules, want 200", rep.Runs)
	}
	if !rep.Ok() {
		t.Error("FuzzReport.Ok() = false for a clean pass")
	}
}

// TestExploreK0IsSingleSchedulePerChain: with no preemptions allowed the
// enumeration still branches at free (blocking/exit) decision points, so
// the k=0 space is small but not trivial, and every litmus has one.
func TestExploreK0(t *testing.T) {
	for _, lit := range checker.Registry() {
		lit := lit
		t.Run(lit.Name, func(t *testing.T) {
			rep := Explore(lit, Options{MaxPreemptions: 0, Budget: testBudget})
			if rep.Partial {
				t.Fatal("k=0 exploration hit the budget")
			}
			if rep.Runs == 0 {
				t.Fatal("no schedules enumerated")
			}
			if lit.Sim.Procs == 1 {
				// Single-processor scheduler litmuses have no interleaving
				// decisions at all: the kernel's priority dispatch fixes the
				// whole schedule, which is precisely what they test.
				return
			}
			for _, ks := range rep.PerK {
				if ks.MaxDepth == 0 {
					t.Errorf("k=%d recorded no decision points", ks.K)
				}
			}
		})
	}
}
