package explore

import "threads/internal/sim"

// This file is the partial-order reduction core: an independence relation
// over scheduling steps derived from the footprints the simulator declares
// (internal/sim/footprint.go), and the sleep-set bookkeeping that exploits
// it (Godefroid's sleep sets, adapted to the odometer enumeration in
// enumerate.go).
//
// Two steps are independent when executing them in either order reaches the
// same state AND emits spec-level events whose relative order the
// conformance checker cannot distinguish. The footprint over-approximation:
//
//   - two data accesses conflict if they share a word and at least one
//     writes;
//   - a scheduling step (Sched: a Nub critical section entry, or any step
//     declared while non-preemptible) conflicts with every other scheduling
//     step — both may mutate ready pools, wake sets and thread queues;
//   - a scheduling step also conflicts with any step whose emission scope
//     is non-empty: Nub windows emit actions naming arbitrary objects
//     (Signal, Alert, direct hand-off), so commuting one past a fast-path
//     emitter (Wait's committed-counter increment emits Enqueue) could
//     reorder events on the same object;
//   - two steps with intersecting emission scopes conflict for the same
//     reason.
//
// Everything else commutes. Sleep sets built from this relation prune only
// schedules Mazurkiewicz-equivalent to ones still explored, so the set of
// reachable states, deadlocks, outcomes and checkable event orders is
// preserved. The interaction with the preemption bound is the usual CHESS
// caveat (a pruned schedule and its representative can differ in preemption
// count); the cross-validation tests in crossval_test.go hold the optimized
// explorer to naive verdicts on every registry litmus.

// PORMode selects the partial-order reduction applied during enumeration.
type PORMode int

const (
	// POROff explores the decision tree naively (the zero value).
	POROff PORMode = iota
	// PORSleepSets prunes schedule interleavings that commute with ones
	// already explored, using per-node sleep sets over step footprints.
	PORSleepSets
)

// edgeFP accumulates the footprints of every step executed between two
// consecutive decision points: the "edge" of the decision tree. Small and
// value-copied; an overflow past the word array degrades to conflicting
// with everything (soundness over pruning).
type edgeFP struct {
	n     int
	wide  bool
	sched bool
	scope uint64
	words [8]uint32
	write [8]bool
}

func (e *edgeFP) add(fp sim.Footprint) {
	e.sched = e.sched || fp.Sched
	e.scope |= fp.Scope
	w := fp.Kind == sim.AccessWrite
	for s := 0; s < 2; s++ {
		id := fp.Words[s]
		if id == 0 {
			continue
		}
		seen := false
		for i := 0; i < e.n; i++ {
			if e.words[i] == id {
				e.write[i] = e.write[i] || w
				seen = true
				break
			}
		}
		if !seen {
			if e.n == len(e.words) {
				e.wide = true
			} else {
				e.words[e.n] = id
				e.write[e.n] = w
				e.n++
			}
		}
	}
}

// conflicts reports whether a candidate's declared next step is dependent
// on the given edge — if not, running the candidate before or after the
// edge reaches the same state with an indistinguishable event order.
func conflicts(c sim.Footprint, e *edgeFP) bool {
	if e.wide {
		return true
	}
	if c.Sched && (e.sched || e.scope != 0) {
		return true
	}
	if c.Scope != 0 && (e.sched || c.Scope&e.scope != 0) {
		return true
	}
	cw := c.Kind == sim.AccessWrite
	for s := 0; s < 2; s++ {
		id := c.Words[s]
		if id == 0 {
			continue
		}
		for i := 0; i < e.n; i++ {
			if e.words[i] == id && (cw || e.write[i]) {
				return true
			}
		}
	}
	return false
}

// nodeState is the per-decision-point enumeration state: which threads are
// asleep (their subtrees are redundant — an equivalent interleaving is
// explored elsewhere) and which are done (their subtrees completed).
// Threads are tracked as ID bitmasks; litmus programs use a handful of
// threads, and idBit refuses IDs past 63 loudly rather than aliasing.
type nodeState struct {
	sleep uint64
	done  uint64
}

func idBit(id int) uint64 {
	if id < 0 || id >= 64 {
		panic("explore: thread id out of range for sleep-set bitmasks")
	}
	return 1 << uint(id)
}

// inheritSleep computes a child node's sleep set from its parent: every
// thread asleep or completed at the parent stays asleep below, unless its
// pending step conflicts with the edge just executed (the parent's chosen
// step and the free steps that followed it). The chosen thread itself is
// never asleep in its own subtree.
func inheritSleep(parent nodeState, d *Decision) uint64 {
	s := parent.sleep | parent.done
	s &^= idBit(d.CandIDs[d.Chosen])
	if s == 0 {
		return 0
	}
	var out uint64
	for i, id := range d.CandIDs {
		b := idBit(id)
		if s&b != 0 && !conflicts(d.CandFPs[i], &d.Edge) {
			out |= b
		}
	}
	return out
}

// earlierSiblings reconstructs the done set a node had when the serial
// depth-first search descended into d.Chosen: the default choice (always
// explored first, at preemption cost 0) plus every affordable, non-slept
// alternative ordered before it. The parallel frontier uses this so a
// worker handed a forced prefix computes the same sleep sets — and thus
// the same schedule counts — as a serial run would at that point.
func earlierSiblings(d *Decision, ns nodeState, k int) uint64 {
	if d.Chosen == d.Default {
		return 0
	}
	bits := idBit(d.CandIDs[d.Default])
	for i := 0; i < d.Chosen; i++ {
		if i == d.Default {
			continue
		}
		if ns.sleep&idBit(d.CandIDs[i]) != 0 {
			continue
		}
		cost := 0
		if d.PrevRunnable {
			cost = 1
		}
		if d.CumPre+cost > k {
			continue
		}
		bits |= idBit(d.CandIDs[i])
	}
	return bits
}

// countSlept counts the affordable alternatives a node never explored
// because they were asleep — the schedules (at least one each) the
// reduction pruned.
func countSlept(d *Decision, ns nodeState, k int) int {
	n := 0
	for i, id := range d.CandIDs {
		b := idBit(id)
		if ns.sleep&b == 0 || ns.done&b != 0 {
			continue
		}
		cost := 0
		if d.PrevRunnable && i != d.Default {
			cost = 1
		}
		if d.CumPre+cost <= k {
			n++
		}
	}
	return n
}
