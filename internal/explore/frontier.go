package explore

import (
	"sync"

	"threads/internal/checker"
)

// This file shards one context bound's schedule space across a worker
// pool. A single serial "probe" engine expands the root into work items —
// forced prefixes whose subtrees partition the space — until there are
// several per worker; workers then exhaust the subtrees independently with
// engine.dfs, a shared atomic counter enforces MaxSchedules, and the first
// violation cancels the rest of the pool through boundShared.done.
//
// Determinism: a probe run that still branches is not counted as a
// schedule (the worker owning the chosen child re-runs and counts it), so
// every maximal path is counted by exactly one engine and the merged
// per-bound schedule counts are independent of the worker count. With
// sleep sets on, workers rebuild the sleep/done state of their prefix
// (engine.buildPrefixPath), so pruning decisions — and therefore counts —
// also match the serial search. A shared state cache stays sound but makes
// hit counts (and so schedule counts) timing-dependent. Which violation is
// reported can vary with scheduling; replay and minimization of the one
// reported stay single-threaded and deterministic.

// exploreBoundParallel runs one context bound on a worker pool.
func exploreBoundParallel(lit *checker.Litmus, o *Options, sh *boundShared, k, workers int) boundResult {
	var out boundResult
	probe := newEngine(lit, o, sh, k)
	queue := [][]int{nil} // work items: forced prefixes partitioning the space
	var work [][]int
	target := workers * 4
	for len(queue) > 0 && len(queue)+len(work) < target {
		if sh.expired() {
			out.budgetHit = true
			break
		}
		prefix := queue[0]
		queue = queue[1:]
		probe.rec.reset(prefix)
		res := runProgram(lit, &probe.rec)
		out.runs++
		out.decisions += len(res.Decisions)
		if res.Violation != nil {
			r := res
			out.violation = &r
			sh.countSchedule()
			out.ks.Schedules++
			out.ks.MaxDepth = max(out.ks.MaxDepth, len(res.Decisions))
			sh.signalStop()
			return out
		}
		if res.Aborted {
			out.ks.CacheHits++
			continue // the whole subtree is cache-covered
		}
		dec := res.Decisions
		if len(dec) <= len(prefix) {
			// The prefix forces the entire run: a single-schedule subtree.
			sh.countSchedule()
			out.ks.Schedules++
			out.ks.MaxDepth = max(out.ks.MaxDepth, len(dec))
			continue
		}
		// Split at the first decision past the prefix. The probe followed
		// the default there; each affordable, non-slept alternative
		// (default included) becomes a child item. This run itself is NOT
		// counted: the worker owning the default child will re-run it.
		n := len(prefix)
		ns := probe.expansionNode(dec, n)
		d := &dec[n]
		// Count this node's sleep-pruned alternatives here (its children
		// are split into separate items, so no worker scans it). The
		// chosen/default child counts as done, exactly as it would be at
		// exhaustion in the serial search.
		ns.done = idBit(d.CandIDs[d.Chosen])
		out.ks.Pruned += countSlept(d, ns, k)
		for _, c := range expandChoices(d, ns, k) {
			child := make([]int, n+1)
			copy(child, prefix)
			child[n] = c
			queue = append(queue, child)
		}
	}
	work = append(work, queue...)
	if len(work) == 0 {
		return out
	}

	itemCh := make(chan []int)
	results := make([]boundResult, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			en := newEngine(lit, o, sh, k)
			var acc boundResult
			for prefix := range itemCh {
				r := en.dfs(prefix)
				acc.merge(r)
				if r.violation != nil {
					break // the engine's arenas now back the violation
				}
			}
			results[wi] = acc
		}(wi)
	}
	for _, prefix := range work {
		select {
		case itemCh <- prefix:
		case <-sh.done:
		}
		if sh.stopped() {
			break
		}
	}
	close(itemCh)
	wg.Wait()
	for _, r := range results {
		out.merge(r)
	}
	return out
}

// expansionNode reconstructs the sleep state at depth n of the probe's
// latest run (the node whose children become work items).
func (en *engine) expansionNode(dec []Decision, n int) nodeState {
	if !en.rec.por {
		return nodeState{}
	}
	en.path = en.path[:0]
	en.buildPrefixPath(dec, n)
	var ns nodeState
	if n > 0 {
		ns.sleep = inheritSleep(en.path[n-1], &dec[n-1])
	}
	return ns
}

// expandChoices lists the children the serial search would explore at an
// expansion node, in exploration order: the probe's (default) choice
// first, then every affordable, non-slept alternative in canonical order.
func expandChoices(d *Decision, ns nodeState, k int) []int {
	out := []int{d.Chosen}
	for i := range d.CandIDs {
		if i == d.Chosen {
			continue
		}
		if ns.sleep&idBit(d.CandIDs[i]) != 0 {
			continue
		}
		cost := 0
		if d.PrevRunnable && i != d.Default {
			cost = 1
		}
		if d.CumPre+cost <= k {
			out = append(out, i)
		}
	}
	return out
}
