package explore

import (
	"time"

	"threads/internal/checker"
)

// Options parameterizes bounded-exhaustive exploration.
type Options struct {
	// MaxPreemptions is the context bound: Explore widens k = 0, 1, …,
	// MaxPreemptions, enumerating at each bound every schedule with at
	// most k preemptions.
	MaxPreemptions int
	// Budget, if positive, stops exploration (marking the report partial)
	// once that much wall-clock time has elapsed.
	Budget time.Duration
	// MaxSchedules, if positive, caps the schedules run per bound.
	MaxSchedules int
}

// KStats is one row of the context-bound coverage table.
type KStats struct {
	K         int
	Schedules int // complete schedules enumerated at this bound (cost ≤ K)
	MaxDepth  int // decision points in the deepest schedule
}

// Report summarizes an exploration of one litmus program.
type Report struct {
	Litmus          string
	ExpectViolation bool
	PerK            []KStats
	Runs            int // total runs (bounds re-cover their predecessors)
	Decisions       int // decision points evaluated across all runs
	Violation       *Violation
	Certificate     *Certificate // minimized witness, when a violation was found
	MinimizedFrom   int          // certificate choices before minimization
	Partial         bool         // budget or schedule cap hit
	Elapsed         time.Duration
}

// Ok reports whether the exploration's verdict matches the litmus's
// expectation: clean programs must have no violation, intentionally broken
// ones must have one (a broken litmus explored cleanly means the checker
// lost its teeth). A partial clean result is not Ok for a broken litmus.
func (r *Report) Ok() bool {
	if r.ExpectViolation {
		return r.Violation != nil
	}
	return r.Violation == nil
}

// Explore enumerates lit's schedule space depth-first with iterative
// context-bound widening, stopping at the first violating schedule (which
// it returns as a minimized certificate).
//
// The enumeration is an odometer over the decision tree: each run replays
// a forced prefix of choices and extends it with the default policy; the
// next prefix is found by scanning the recorded decisions backwards for
// the deepest point with an untried alternative whose preemption cost
// still fits the bound. Every maximal path with at most k preemptions is
// visited exactly once per bound.
func Explore(lit *checker.Litmus, o Options) *Report {
	start := time.Now()
	rep := &Report{Litmus: lit.Name, ExpectViolation: lit.ExpectViolation}
	for k := 0; k <= o.MaxPreemptions; k++ {
		ks := KStats{K: k}
		var forced []int
		for {
			if o.Budget > 0 && time.Since(start) > o.Budget {
				rep.Partial = true
				break
			}
			if o.MaxSchedules > 0 && ks.Schedules >= o.MaxSchedules {
				rep.Partial = true
				break
			}
			rec := &recorder{forced: forced}
			res := runProgram(lit, rec)
			rep.Runs++
			rep.Decisions += len(res.Decisions)
			ks.Schedules++
			if d := len(res.Decisions); d > ks.MaxDepth {
				ks.MaxDepth = d
			}
			if res.Violation != nil {
				rep.Violation = res.Violation
				cert := certificateFromRun(lit, res)
				rep.MinimizedFrom = len(cert.Choices)
				rep.Certificate = Minimize(lit, cert)
				rep.PerK = append(rep.PerK, ks)
				rep.Elapsed = time.Since(start)
				return rep
			}
			next, ok := nextPrefix(res.Decisions, k)
			if !ok {
				break
			}
			forced = next
		}
		rep.PerK = append(rep.PerK, ks)
		if rep.Partial {
			break
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// nextPrefix computes the next forced prefix in the depth-first
// enumeration of all schedules with at most k preemptions, or ok=false
// when the bound's space is exhausted. decisions is the full decision
// record of the run just completed.
func nextPrefix(decisions []Decision, k int) (forced []int, ok bool) {
	// cum[i] = preemptions spent strictly before decision i.
	cum := make([]int, len(decisions)+1)
	for i, d := range decisions {
		c := 0
		if d.Preempted() {
			c = 1
		}
		cum[i+1] = cum[i] + c
	}
	for i := len(decisions) - 1; i >= 0; i-- {
		d := decisions[i]
		for alt, more := nextAlt(d.Cands, d.Default, d.Chosen); more; alt, more = nextAlt(d.Cands, d.Default, alt) {
			cost := 0
			if d.PrevRunnable && alt != d.Default {
				cost = 1
			}
			if cum[i]+cost > k {
				continue
			}
			forced = make([]int, i+1)
			for j := 0; j < i; j++ {
				forced[j] = decisions[j].Chosen
			}
			forced[i] = alt
			return forced, true
		}
	}
	return nil, false
}

// nextAlt returns the alternative after cur in a decision point's
// exploration order — the default choice first, then the remaining
// candidates in canonical order — or more=false when exhausted.
func nextAlt(cands []string, def, cur int) (next int, more bool) {
	ord := make([]int, 0, len(cands))
	ord = append(ord, def)
	for i := range cands {
		if i != def {
			ord = append(ord, i)
		}
	}
	for p, idx := range ord {
		if idx == cur {
			if p+1 < len(ord) {
				return ord[p+1], true
			}
			return 0, false
		}
	}
	return 0, false
}
