package explore

import (
	"sync"
	"sync/atomic"
	"time"

	"threads/internal/checker"
)

// Options parameterizes bounded-exhaustive exploration.
type Options struct {
	// MaxPreemptions is the context bound: Explore widens k = 0, 1, …,
	// MaxPreemptions, enumerating at each bound every schedule with at
	// most k preemptions.
	MaxPreemptions int
	// Budget, if positive, stops exploration (marking the report partial)
	// once that much wall-clock time has elapsed.
	Budget time.Duration
	// MaxSchedules, if positive, caps the schedules run per bound.
	MaxSchedules int
	// POR selects the partial-order reduction (see dpor.go). The zero
	// value explores naively.
	POR PORMode
	// Cache, if non-nil, prunes subtrees whose state fingerprint was
	// already explored with at least as much remaining preemption budget,
	// within this call and — via LoadStateCache/Save — across processes.
	Cache *StateCache
	// Workers shards the schedule space across a worker pool; 0 or 1
	// explores serially. With Cache nil the merged per-bound schedule
	// counts are identical for every worker count (threadsim passes
	// GOMAXPROCS by default). Replay and minimization always run
	// single-threaded.
	Workers int
}

// KStats is one row of the context-bound coverage table.
type KStats struct {
	K         int
	Schedules int // complete schedules enumerated at this bound (cost ≤ K)
	MaxDepth  int // decision points in the deepest schedule
	Pruned    int // alternatives skipped by sleep-set pruning
	CacheHits int // runs cut short because the state was already covered
}

// Report summarizes an exploration of one litmus program.
type Report struct {
	Litmus          string
	ExpectViolation bool
	PerK            []KStats
	Runs            int // total runs (bounds re-cover their predecessors)
	Decisions       int // decision points evaluated across all runs
	Violation       *Violation
	Certificate     *Certificate // minimized witness, when a violation was found
	MinimizedFrom   int          // certificate choices before minimization
	Partial         bool         // BudgetHit || SchedCapHit
	BudgetHit       bool         // the wall-clock Budget expired
	SchedCapHit     bool         // the per-bound MaxSchedules cap fired
	Pruned          int          // total sleep-set prunes
	CacheHits       int          // total state-cache subtree prunes
	CacheLoaded     int          // cache entries restored from a snapshot
	CacheEntries    int          // cache entries after exploration
	Workers         int          // worker count actually used
	Elapsed         time.Duration
}

// Ok reports whether the exploration's verdict matches the litmus's
// expectation: clean programs must have no violation, intentionally broken
// ones must have one (a broken litmus explored cleanly means the checker
// lost its teeth). A partial clean result is not Ok for a broken litmus.
func (r *Report) Ok() bool {
	if r.ExpectViolation {
		return r.Violation != nil
	}
	return r.Violation == nil
}

// Explore enumerates lit's schedule space depth-first with iterative
// context-bound widening, stopping at the first violating schedule (which
// it returns as a minimized certificate).
//
// The enumeration is an odometer over the decision tree: each run replays
// a forced prefix of choices and extends it with the default policy; the
// next prefix is found by scanning the recorded decisions backwards for
// the deepest point with an untried alternative whose preemption cost
// still fits the bound. Every maximal path with at most k preemptions is
// visited exactly once per bound — minus the subtrees the optional
// sleep-set reduction and state cache prove redundant.
func Explore(lit *checker.Litmus, o Options) *Report {
	start := time.Now()
	workers := max(o.Workers, 1)
	rep := &Report{Litmus: lit.Name, ExpectViolation: lit.ExpectViolation, Workers: workers}
	if o.Cache != nil {
		rep.CacheLoaded = o.Cache.Loaded()
	}
	var deadline time.Time
	if o.Budget > 0 {
		deadline = start.Add(o.Budget)
	}
	for k := 0; k <= o.MaxPreemptions; k++ {
		sh := &boundShared{deadline: deadline, maxSched: o.MaxSchedules, done: make(chan struct{})}
		var br boundResult
		if workers > 1 {
			br = exploreBoundParallel(lit, &o, sh, k, workers)
		} else {
			en := newEngine(lit, &o, sh, k)
			br = en.dfs(nil)
		}
		br.ks.K = k
		rep.Runs += br.runs
		rep.Decisions += br.decisions
		rep.Pruned += br.ks.Pruned
		rep.CacheHits += br.ks.CacheHits
		rep.PerK = append(rep.PerK, br.ks)
		if br.violation != nil {
			rep.Violation = br.violation.Violation
			cert := certificateFromRun(lit, *br.violation)
			rep.MinimizedFrom = len(cert.Choices)
			rep.Certificate = Minimize(lit, cert)
			break
		}
		rep.BudgetHit = rep.BudgetHit || br.budgetHit
		rep.SchedCapHit = rep.SchedCapHit || br.capHit
		if rep.BudgetHit || rep.SchedCapHit {
			break
		}
	}
	rep.Partial = rep.BudgetHit || rep.SchedCapHit
	if o.Cache != nil {
		rep.CacheEntries = o.Cache.Len()
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// boundShared is the state one context bound's engines share: the clock,
// the schedule cap, and the stop signal a violation raises.
type boundShared struct {
	deadline  time.Time
	maxSched  int
	sched     atomic.Int64
	stop      atomic.Bool
	done      chan struct{}
	closeOnce sync.Once
}

func (sh *boundShared) expired() bool {
	return !sh.deadline.IsZero() && time.Now().After(sh.deadline)
}

func (sh *boundShared) capped() bool {
	return sh.maxSched > 0 && sh.sched.Load() >= int64(sh.maxSched)
}

func (sh *boundShared) countSchedule() { sh.sched.Add(1) }

func (sh *boundShared) stopped() bool { return sh.stop.Load() }

func (sh *boundShared) signalStop() {
	sh.stop.Store(true)
	sh.closeOnce.Do(func() { close(sh.done) })
}

// boundResult is one engine's (or the whole bound's, once merged)
// contribution to a context bound.
type boundResult struct {
	ks        KStats
	runs      int
	decisions int
	violation *RunResult
	budgetHit bool
	capHit    bool
}

func (a *boundResult) merge(b boundResult) {
	a.ks.Schedules += b.ks.Schedules
	a.ks.MaxDepth = max(a.ks.MaxDepth, b.ks.MaxDepth)
	a.ks.Pruned += b.ks.Pruned
	a.ks.CacheHits += b.ks.CacheHits
	a.runs += b.runs
	a.decisions += b.decisions
	a.budgetHit = a.budgetHit || b.budgetHit
	a.capHit = a.capHit || b.capHit
	a.violation = betterViolation(a.violation, b.violation)
}

// betterViolation picks the violation with the shorter, lexicographically
// smaller decision sequence, so the merged pick is as stable as the set of
// violations the workers found before cancellation.
func betterViolation(a, b *RunResult) *RunResult {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if len(a.Decisions) != len(b.Decisions) {
		if len(b.Decisions) < len(a.Decisions) {
			return b
		}
		return a
	}
	for i := range a.Decisions {
		if a.Decisions[i].Chosen != b.Decisions[i].Chosen {
			if b.Decisions[i].Chosen < a.Decisions[i].Chosen {
				return b
			}
			return a
		}
	}
	return a
}

// engine is one depth-first enumerator: a reusable recorder plus the
// per-decision-point sleep/done bookkeeping along the current path.
type engine struct {
	lit    *checker.Litmus
	o      *Options
	sh     *boundShared
	k      int
	rec    recorder
	path   []nodeState
	forced []int
}

func newEngine(lit *checker.Litmus, o *Options, sh *boundShared, k int) *engine {
	en := &engine{lit: lit, o: o, sh: sh, k: k}
	en.rec.por = o.POR == PORSleepSets
	en.rec.cache = o.Cache
	en.rec.bound = k
	return en
}

// dfs exhausts the subtree rooted at the forced prefix: every maximal
// schedule extending prefix with at most k preemptions total, backtracking
// only at depths ≥ len(prefix). A nil prefix explores the whole bound.
//
// After a violation the engine must not run again (the violating
// RunResult aliases the recorder's arenas).
func (en *engine) dfs(prefix []int) boundResult {
	var out boundResult
	floor := len(prefix)
	en.forced = append(en.forced[:0], prefix...)
	en.path = en.path[:0]
	for {
		if en.sh.stopped() {
			break
		}
		if en.sh.expired() {
			out.budgetHit = true
			break
		}
		if en.sh.capped() {
			out.capHit = true
			break
		}
		en.rec.reset(en.forced)
		res := runProgram(en.lit, &en.rec)
		out.runs++
		out.decisions += len(res.Decisions)
		switch {
		case res.Violation != nil:
			r := res
			out.violation = &r
			en.sh.signalStop()
			return out
		case res.Aborted:
			out.ks.CacheHits++
		default:
			en.sh.countSchedule()
			out.ks.Schedules++
			out.ks.MaxDepth = max(out.ks.MaxDepth, len(res.Decisions))
		}
		dec := res.Decisions
		if len(en.path) > len(dec) {
			en.path = en.path[:len(dec)] // aborted above the old frontier
		}
		if en.rec.por {
			if len(en.path) == 0 && floor > 0 {
				en.buildPrefixPath(dec, min(floor, len(dec)))
			}
			for i := len(en.path); i < len(dec); i++ {
				var ns nodeState
				if i > 0 {
					ns.sleep = inheritSleep(en.path[i-1], &dec[i-1])
				}
				en.path = append(en.path, ns)
			}
		} else {
			for len(en.path) < len(dec) {
				en.path = append(en.path, nodeState{})
			}
		}
		advanced := false
		for i := len(dec) - 1; i >= floor; i-- {
			d := &dec[i]
			en.path[i].done |= idBit(d.CandIDs[d.Chosen])
			if alt := en.nextAlt(d, en.path[i]); alt >= 0 {
				en.forced = en.forced[:0]
				for j := 0; j < i; j++ {
					en.forced = append(en.forced, dec[j].Chosen)
				}
				en.forced = append(en.forced, alt)
				en.path = en.path[:i+1]
				advanced = true
				break
			}
			// The node is exhausted: its subtree is completely explored
			// (within budget k − CumPre), which is exactly what a cache
			// entry promises.
			out.ks.Pruned += countSlept(d, en.path[i], en.k)
			if en.rec.cache != nil && !res.Diverged {
				en.rec.cache.put(d.H1, d.H2, en.k-d.CumPre)
			}
			en.path = en.path[:i]
		}
		if !advanced {
			break
		}
	}
	return out
}

// buildPrefixPath reconstructs sleep/done state for the first n forced
// nodes of a work item's prefix, top-down, so a parallel worker prunes
// exactly as a serial search arriving here would (see earlierSiblings).
func (en *engine) buildPrefixPath(dec []Decision, n int) {
	for i := 0; i < n; i++ {
		var ns nodeState
		if i > 0 {
			ns.sleep = inheritSleep(en.path[i-1], &dec[i-1])
		}
		ns.done = earlierSiblings(&dec[i], ns, en.k)
		en.path = append(en.path, ns)
	}
}

// nextAlt returns the next unexplored, affordable, non-slept alternative
// at a decision point — default first, then canonical order — or −1 when
// the node is exhausted.
func (en *engine) nextAlt(d *Decision, ns nodeState) int {
	try := func(idx int) bool {
		if (ns.done|ns.sleep)&idBit(d.CandIDs[idx]) != 0 {
			return false
		}
		cost := 0
		if d.PrevRunnable && idx != d.Default {
			cost = 1
		}
		return d.CumPre+cost <= en.k
	}
	if try(d.Default) {
		return d.Default
	}
	for i := range d.CandIDs {
		if i != d.Default && try(i) {
			return i
		}
	}
	return -1
}
