// Package explore is a schedule-space model checker for the simulated
// implementation: it drives internal/sim's kernel through controlled
// scheduling decisions instead of seeded randomness, enumerating or
// sampling the interleavings of the litmus programs registered in
// internal/checker and replaying every explored schedule's linearization
// trace through the formal specification (internal/trace).
//
// The simulator executes exactly one thread between yield points, and
// every shared-memory access is a yield point, so a run is a deterministic
// function of the sequence of scheduling decisions — "which runnable
// thread executes its next instruction". That sequence is the package's
// object of study:
//
//   - Explore performs bounded-exhaustive enumeration with iterative
//     context-bound widening: all schedules with at most k preemptions (a
//     switch away from a thread that could have kept running), for
//     k = 0, 1, 2, … — the CHESS insight that real concurrency bugs
//     almost always need only a few preemptions.
//   - Fuzz samples weighted-random schedules from the same decision tree,
//     for the tail the bound does not reach.
//
// A failing schedule — a conformance divergence from the specification, a
// deadlock, a livelock, or a wrong outcome — is serialized as a replayable
// Certificate: the sparse list of decisions that differed from the default
// policy. Certificates are automatically minimized (decision points are
// dropped while the failure still reproduces) and replay byte-identically,
// so a CI failure travels as a small JSON file that reproduces locally
// with `threadsim -replay`.
package explore

import (
	"errors"
	"math/rand"

	"threads/internal/checker"
	"threads/internal/sim"
	"threads/internal/simthreads"
	"threads/internal/spec"
	"threads/internal/trace"
)

// Violation is one failing schedule's diagnosis.
type Violation struct {
	// Kind is "conformance" (the linearization trace diverges from the
	// formal specification), "deadlock", "livelock" (step limit), or
	// "outcome" (the litmus's own post-run check failed).
	Kind   string
	Detail string
}

func (v *Violation) Error() string { return v.Kind + ": " + v.Detail }

// Decision records one controlled scheduling decision: the runnable
// candidates (thread names in canonical ascending-ID order), which the
// default policy would have picked, and which was picked. The enumeration
// engine additionally records what its optimisations need: candidate
// thread IDs and declared next-step footprints (sleep-set pruning), the
// footprint of the edge executed after the decision, the machine-state
// fingerprint at the decision point (state cache), and the preemptions
// spent strictly before it.
type Decision struct {
	Cands        []string
	Chosen       int
	Default      int
	PrevRunnable bool // the previously-running thread was a candidate

	CandIDs []int           // candidate thread IDs (parallel to Cands)
	CandFPs []sim.Footprint // declared next steps, when POR is on
	Edge    edgeFP          // steps executed between this decision and the next
	H1, H2  uint64          // state fingerprint, when a cache is attached
	CumPre  int             // preemptions spent strictly before this decision
}

// Preempted reports whether this decision switched away from a thread
// that could have kept running — the context switches the k-bound counts.
func (d Decision) Preempted() bool { return d.PrevRunnable && d.Chosen != d.Default }

// recorder implements sim.Config.Choose for one run, recording every
// decision and delegating the choice to whichever mode is set: a forced
// prefix of canonical indices (exhaustive enumeration), per-step thread
// name overrides (certificate replay), or a seeded sampler (fuzzing).
// Past or absent all modes, the default policy applies: keep running the
// previous thread if it is still runnable, else the lowest-ID candidate.
//
// The enumeration engine reuses one recorder across millions of runs, so
// per-decision slices are carved out of append-only arenas reset between
// runs; the zero-value recorder (replay, fuzzing) works identically, just
// without reuse.
type recorder struct {
	forced      []int
	overrides   map[int]string
	rng         *rand.Rand
	preemptProb float64

	// engine extensions (all off for replay/fuzz recorders).
	por   bool        // record footprints and edges for sleep sets
	cache *StateCache // fingerprint decision points, abort on cache hit
	bound int         // the context bound k; remaining budget = bound − preempts
	kern  *sim.Kernel // the run's kernel, set by runProgram before Run

	decisions []Decision
	diverged  bool // a forced index exceeded the candidate count
	aborted   bool // the state cache cut this run short
	preempts  int
	curEdge   edgeFP

	nameArena []string
	idArena   []int
	fpArena   []sim.Footprint
}

// reset prepares the recorder for another run under a new forced prefix,
// retaining arena capacity.
func (r *recorder) reset(forced []int) {
	r.forced = forced
	r.decisions = r.decisions[:0]
	r.nameArena = r.nameArena[:0]
	r.idArena = r.idArena[:0]
	r.fpArena = r.fpArena[:0]
	r.diverged = false
	r.aborted = false
	r.preempts = 0
	r.curEdge = edgeFP{}
	r.kern = nil
}

// onStep is the sim.Config.OnStep hook: it accumulates the footprints of
// the steps executed since the last decision point into the current edge.
func (r *recorder) onStep(_ *sim.T, fp sim.Footprint) {
	r.curEdge.add(fp)
}

func (r *recorder) choose(prev *sim.T, cands []*sim.T) int {
	step := len(r.decisions)
	if r.por && step > 0 {
		r.decisions[step-1].Edge = r.curEdge
		r.curEdge = edgeFP{}
	}
	var h1, h2 uint64
	if r.cache != nil {
		h1, h2 = r.kern.Fingerprint()
		if step == 0 {
			r.cache.validateRoot(h1, h2)
		}
		if b, ok := r.cache.get(h1, h2); ok && int(b) >= r.bound-r.preempts {
			// This exact machine state was already explored with at least
			// as much remaining preemption budget: every schedule below is
			// covered. Cut the run; it is not counted as a schedule.
			r.aborted = true
			r.kern.Abort()
			return 0
		}
	}
	nb, ib, fb := len(r.nameArena), len(r.idArena), len(r.fpArena)
	for _, t := range cands {
		r.nameArena = append(r.nameArena, t.Name())
		r.idArena = append(r.idArena, t.ID())
	}
	names := r.nameArena[nb:len(r.nameArena):len(r.nameArena)]
	ids := r.idArena[ib:len(r.idArena):len(r.idArena)]
	def := 0
	prevRunnable := false
	if prev != nil {
		for i, t := range cands {
			if t == prev {
				def, prevRunnable = i, true
				break
			}
		}
	}
	chosen := def
	switch {
	case step < len(r.forced):
		chosen = r.forced[step]
		if chosen < 0 || chosen >= len(cands) {
			// The decision tree changed under a stale prefix; this never
			// happens for prefixes recorded from the same litmus, and is
			// surfaced as a diagnostic rather than a crash.
			r.diverged = true
			chosen = def
		}
	case r.overrides != nil:
		if name, ok := r.overrides[step]; ok {
			for i, n := range names {
				if n == name {
					chosen = i
					break
				}
			}
		}
	case r.rng != nil:
		if prevRunnable {
			if len(cands) > 1 && r.rng.Float64() < r.preemptProb {
				o := r.rng.Intn(len(cands) - 1)
				if o >= def {
					o++
				}
				chosen = o
			}
		} else {
			chosen = r.rng.Intn(len(cands))
		}
	}
	d := Decision{
		Cands:        names,
		Chosen:       chosen,
		Default:      def,
		PrevRunnable: prevRunnable,
		CandIDs:      ids,
		H1:           h1,
		H2:           h2,
		CumPre:       r.preempts,
	}
	if r.por {
		for _, t := range cands {
			r.fpArena = append(r.fpArena, t.PendingFootprint())
		}
		d.CandFPs = r.fpArena[fb:len(r.fpArena):len(r.fpArena)]
	}
	if prevRunnable && chosen != def {
		r.preempts++
	}
	r.decisions = append(r.decisions, d)
	return chosen
}

// RunResult is one controlled run of a litmus program.
type RunResult struct {
	Decisions   []Decision
	Preemptions int
	Events      []trace.Event // the linearization trace
	RunErr      error
	Violation   *Violation
	Steps       uint64
	Diverged    bool
	Aborted     bool // the state cache cut the run short (suffix already covered)
}

// maxRunSteps cuts off livelocked schedules; litmus runs are a few
// thousand instructions, so the margin is enormous.
const maxRunSteps = 2_000_000

// runProgram executes lit's simulator program once under rec's schedule,
// replays the linearization trace through the specification, and applies
// the litmus's own outcome check.
func runProgram(lit *checker.Litmus, rec *recorder) RunResult {
	var events []trace.Event
	opts := lit.Sim.Opts
	opts.NubAwait = true // finite decision tree; see WorldOptions.NubAwait
	cfg := sim.Config{
		Procs:    lit.Sim.Procs,
		Quantum:  lit.Sim.Quantum,
		MaxSteps: maxRunSteps,
		Choose:   rec.choose,
		Trace: func(ev sim.Event) {
			if a, ok := ev.Payload.(spec.Action); ok {
				events = append(events, trace.Event{Seq: ev.Seq, Thread: ev.Thread.Name(), Action: a})
			}
		},
	}
	if rec.por {
		cfg.OnStep = rec.onStep
	}
	w, k := simthreads.NewWorldOpts(cfg, opts)
	rec.kern = k
	check := lit.Sim.Build(w, k)
	err := k.Run()
	res := RunResult{
		Decisions: rec.decisions,
		Events:    events,
		RunErr:    err,
		Steps:     k.Steps(),
		Diverged:  rec.diverged,
		Aborted:   rec.aborted,
	}
	for _, d := range rec.decisions {
		if d.Preempted() {
			res.Preemptions++
		}
	}
	if _, verr := trace.CheckAll(events); verr != nil {
		res.Violation = &Violation{Kind: "conformance", Detail: verr.Error()}
	} else if errors.Is(err, sim.ErrAborted) {
		// Cut short by the state cache; the trace prefix above was still
		// conformance-checked, and the unexplored suffix is covered by the
		// earlier visit that populated the cache entry.
	} else if err != nil {
		kind := "deadlock"
		if errors.Is(err, sim.ErrStepLimit) {
			kind = "livelock"
		}
		res.Violation = &Violation{Kind: kind, Detail: err.Error()}
	} else if check != nil {
		if cerr := check(); cerr != nil {
			res.Violation = &Violation{Kind: "outcome", Detail: cerr.Error()}
		}
	}
	return res
}
