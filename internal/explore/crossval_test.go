package explore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"threads/internal/checker"
)

// This file cross-validates the explorer's optimisations against the
// naive enumeration they must never out-argue: sleep-set partial-order
// reduction, the state-fingerprint cache, and the parallel frontier each
// claim to skip only redundant work, so on every registry litmus the
// verdict — and for broken litmuses the reproducibility of the
// certificate — must be identical to the unoptimized explorer's.

// crossValK returns the context bound a litmus is cross-validated at: 2,
// except for prodcons, phaser and mpsc, whose naive k=2 spaces alone take
// minutes (the optimized explorer covers them at k=2 in seconds, but the
// naive reference side would dominate the whole test suite), and except
// in -short mode.
func crossValK(lit *checker.Litmus) int {
	if testing.Short() || lit.Name == "prodcons" || lit.Name == "phaser" || lit.Name == "mpsc" {
		return 1
	}
	return 2
}

// optimizedConfigs are the option sets cross-validated against naive
// exploration. Cache configurations get a fresh cache per litmus run.
func optimizedConfigs() []struct {
	name  string
	por   PORMode
	cache bool
} {
	return []struct {
		name  string
		por   PORMode
		cache bool
	}{
		{"por", PORSleepSets, false},
		{"cache", POROff, true},
		{"por+cache", PORSleepSets, true},
	}
}

// TestCrossValidation holds every optimized configuration to the naive
// verdict on every registry litmus: clean programs stay clean, broken
// ones stay caught, and the reductions only ever shrink the per-bound
// schedule counts — never the set of distinguishable behaviors.
func TestCrossValidation(t *testing.T) {
	for _, lit := range checker.Registry() {
		lit := lit
		t.Run(lit.Name, func(t *testing.T) {
			k := crossValK(lit)
			naive := Explore(lit, Options{MaxPreemptions: k, Budget: testBudget})
			if naive.Partial {
				t.Fatalf("naive exploration partial after %d runs", naive.Runs)
			}
			for _, cfg := range optimizedConfigs() {
				cfg := cfg
				t.Run(cfg.name, func(t *testing.T) {
					o := Options{MaxPreemptions: k, Budget: testBudget, POR: cfg.por}
					if cfg.cache {
						o.Cache = NewStateCache()
					}
					rep := Explore(lit, o)
					if rep.Partial {
						t.Fatalf("optimized exploration partial after %d runs", rep.Runs)
					}
					if (rep.Violation == nil) != (naive.Violation == nil) {
						t.Fatalf("verdict diverged: optimized %v, naive %v", rep.Violation, naive.Violation)
					}
					if rep.Violation != nil {
						if rep.Violation.Kind != naive.Violation.Kind {
							t.Errorf("violation kind diverged: %q vs naive %q", rep.Violation.Kind, naive.Violation.Kind)
						}
						assertCertificateReproduces(t, lit, rep)
						return // counts are incomparable: both stopped early
					}
					for i, ks := range rep.PerK {
						if i >= len(naive.PerK) {
							break
						}
						if ks.Schedules == 0 {
							t.Errorf("k=%d: optimized explorer enumerated nothing", ks.K)
						}
						if ks.Schedules > naive.PerK[i].Schedules {
							t.Errorf("k=%d: optimized explored MORE schedules than naive: %d > %d",
								ks.K, ks.Schedules, naive.PerK[i].Schedules)
						}
					}
					if cfg.por == PORSleepSets && rep.Pruned == 0 && naive.Runs > len(naive.PerK) {
						t.Logf("note: sleep sets pruned nothing on %s at k<=%d", lit.Name, k)
					}
				})
			}
		})
	}
}

// assertCertificateReproduces checks a violating report's certificate: it
// exists, replays to the recorded violation kind, and its trace bytes are
// replay-deterministic.
func assertCertificateReproduces(t *testing.T, lit *checker.Litmus, rep *Report) {
	t.Helper()
	if rep.Certificate == nil {
		t.Fatal("violation reported without a certificate")
	}
	if len(rep.Certificate.Choices) > rep.MinimizedFrom {
		t.Errorf("minimization grew the certificate: %d > %d", len(rep.Certificate.Choices), rep.MinimizedFrom)
	}
	first, res, err := ReplayTraceBytes(lit, rep.Certificate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Kind != rep.Certificate.Violation {
		t.Fatalf("certificate replay got %v, want kind %q", res.Violation, rep.Certificate.Violation)
	}
	again, _, err := ReplayTraceBytes(lit, rep.Certificate)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Fatalf("certificate replay is not byte-deterministic: %d vs %d trace bytes", len(first), len(again))
	}
}

// TestWorkerDeterminism: with no state cache, the merged per-bound
// coverage table is identical for every worker count — the parallel
// frontier partitions the space, it does not re-slice it.
func TestWorkerDeterminism(t *testing.T) {
	for _, name := range []string{"mutex", "sem", "alert"} {
		lit := checker.LitmusByName(name)
		if lit == nil {
			t.Fatalf("litmus %s missing", name)
		}
		for _, por := range []PORMode{POROff, PORSleepSets} {
			serial := Explore(lit, Options{MaxPreemptions: 2, Budget: testBudget, POR: por, Workers: 1})
			parallel := Explore(lit, Options{MaxPreemptions: 2, Budget: testBudget, POR: por, Workers: 4})
			if serial.Partial || parallel.Partial {
				t.Fatalf("%s por=%d: partial exploration", name, por)
			}
			if len(serial.PerK) != len(parallel.PerK) {
				t.Fatalf("%s por=%d: PerK length %d vs %d", name, por, len(serial.PerK), len(parallel.PerK))
			}
			for i := range serial.PerK {
				s, p := serial.PerK[i], parallel.PerK[i]
				if s.Schedules != p.Schedules || s.MaxDepth != p.MaxDepth || s.Pruned != p.Pruned {
					t.Errorf("%s por=%d k=%d: serial %+v vs 4 workers %+v", name, por, i, s, p)
				}
			}
		}
	}
}

// TestBrokenLitmusEveryConfig: the intentionally broken litmuses must be
// caught — with a minimized, byte-identically replayable certificate —
// under every combination of reduction, cache and worker count.
func TestBrokenLitmusEveryConfig(t *testing.T) {
	for _, lit := range checker.Registry() {
		if !lit.ExpectViolation {
			continue
		}
		lit := lit
		for _, por := range []PORMode{POROff, PORSleepSets} {
			for _, withCache := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					o := Options{MaxPreemptions: 1, Budget: testBudget, POR: por, Workers: workers}
					if withCache {
						o.Cache = NewStateCache()
					}
					rep := Explore(lit, o)
					if rep.Violation == nil {
						t.Fatalf("%s por=%d cache=%v workers=%d: violation missed",
							lit.Name, por, withCache, workers)
					}
					assertCertificateReproduces(t, lit, rep)
				}
			}
		}
	}
}

// TestStateCacheResume: a persisted cache snapshot makes a repeat
// exploration of an unchanged clean litmus trivial (the root state is
// already covered), while a broken litmus is still re-caught — violating
// subtrees never complete, so they are never cached away.
func TestStateCacheResume(t *testing.T) {
	dir := t.TempDir()
	lit := checker.LitmusByName("mutex")
	path := filepath.Join(dir, "mutex.scache")

	cache := NewStateCache()
	first := Explore(lit, Options{MaxPreemptions: 1, Budget: testBudget, Cache: cache})
	if first.Violation != nil || first.Partial {
		t.Fatalf("first pass: %+v", first)
	}
	if cache.Len() == 0 {
		t.Fatal("exploration populated no cache entries")
	}
	if err := cache.Save(path, "mutex"); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadStateCache(path, "mutex")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Loaded() != cache.Len() {
		t.Fatalf("loaded %d entries, saved %d", loaded.Loaded(), cache.Len())
	}
	second := Explore(lit, Options{MaxPreemptions: 1, Budget: testBudget, Cache: loaded})
	if second.Violation != nil {
		t.Fatalf("resumed pass found a violation in a clean litmus: %v", second.Violation)
	}
	if second.CacheHits == 0 {
		t.Fatal("resumed exploration had no cache hits")
	}
	if second.Runs >= first.Runs {
		t.Fatalf("resume did not shrink the search: %d runs vs %d", second.Runs, first.Runs)
	}

	// A snapshot for the wrong litmus must be ignored, not trusted.
	other, err := LoadStateCache(path, "sem")
	if err != nil {
		t.Fatal(err)
	}
	if other.Loaded() != 0 {
		t.Fatalf("snapshot for mutex was accepted for sem: %d entries", other.Loaded())
	}

	// A broken litmus resumed from its own snapshot still fails.
	broken := checker.LitmusByName("alert-broken")
	bcache := NewStateCache()
	b1 := Explore(broken, Options{MaxPreemptions: 1, Budget: testBudget, Cache: bcache})
	if b1.Violation == nil {
		t.Fatal("first broken pass missed the violation")
	}
	bpath := filepath.Join(dir, "alert-broken.scache")
	if err := bcache.Save(bpath, "alert-broken"); err != nil {
		t.Fatal(err)
	}
	bloaded, err := LoadStateCache(bpath, "alert-broken")
	if err != nil {
		t.Fatal(err)
	}
	b2 := Explore(broken, Options{MaxPreemptions: 1, Budget: testBudget, Cache: bloaded})
	if b2.Violation == nil {
		t.Fatal("resumed broken pass lost the violation")
	}
	if b2.Violation.Kind != b1.Violation.Kind {
		t.Fatalf("resumed violation kind %q, first %q", b2.Violation.Kind, b1.Violation.Kind)
	}
}

// TestStateCacheCorruptFile: truncated snapshots error instead of loading
// garbage.
func TestStateCacheCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.scache")
	good := NewStateCache()
	good.put(1, 2, 1)
	good.validateRoot(7, 8)
	if err := good.Save(path, "mutex"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStateCache(path, "mutex"); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
	// A missing file is not an error: the first nightly run has no snapshot.
	c, err := LoadStateCache(filepath.Join(dir, "absent.scache"), "mutex")
	if err != nil || c.Loaded() != 0 {
		t.Fatalf("missing snapshot: cache %v err %v", c.Loaded(), err)
	}
}
