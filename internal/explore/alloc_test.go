package explore

import (
	"testing"

	"threads/internal/checker"
)

// scanDecisions exercises the per-run enumeration bookkeeping — the
// done-marking and next-alternative search the depth-first odometer runs
// after every schedule — over a recorded decision sequence. This used to
// allocate an order slice and a cumulative-preemption slice per decision
// point (the hot loop of the whole checker); it must now be free of
// allocations.
func scanDecisions(en *engine, dec []Decision) int {
	found := 0
	for j := range en.path {
		en.path[j] = nodeState{}
	}
	for j := len(dec) - 1; j >= 0; j-- {
		d := &dec[j]
		en.path[j].done |= idBit(d.CandIDs[d.Chosen])
		for {
			alt := en.nextAlt(d, en.path[j])
			if alt < 0 {
				break
			}
			en.path[j].done |= idBit(d.CandIDs[alt])
			found++
		}
	}
	return found
}

func recordedDecisions(t testing.TB, name string) []Decision {
	lit := checker.LitmusByName(name)
	if lit == nil {
		t.Fatalf("litmus %s missing", name)
	}
	var rec recorder
	rec.reset(nil)
	res := runProgram(lit, &rec)
	if len(res.Decisions) == 0 {
		t.Fatal("run recorded no decisions")
	}
	return res.Decisions
}

// TestEnumerationScanAllocationFree pins the property the scratch-buffer
// rework bought: enumerating every untried alternative across a full
// decision record allocates nothing.
func TestEnumerationScanAllocationFree(t *testing.T) {
	dec := recordedDecisions(t, "mutex")
	en := &engine{k: 1, path: make([]nodeState, len(dec))}
	if scanDecisions(en, dec) == 0 {
		t.Fatal("scan found no alternatives; the fixture is degenerate")
	}
	allocs := testing.AllocsPerRun(100, func() {
		scanDecisions(en, dec)
	})
	if allocs != 0 {
		t.Errorf("enumeration scan allocates %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkBacktrackScan measures the same loop; with -benchmem it shows
// 0 B/op where the slice-per-decision implementation paid two allocations
// per decision point per schedule.
func BenchmarkBacktrackScan(b *testing.B) {
	dec := recordedDecisions(b, "mutex")
	en := &engine{k: 1, path: make([]nodeState, len(dec))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanDecisions(en, dec)
	}
}

// BenchmarkExploreMutexK1 is the end-to-end figure: one complete k<=1
// bounded-exhaustive exploration of the mutex litmus per iteration.
func BenchmarkExploreMutexK1(b *testing.B) {
	lit := checker.LitmusByName("mutex")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := Explore(lit, Options{MaxPreemptions: 1})
		if rep.Violation != nil {
			b.Fatalf("violation: %v", rep.Violation)
		}
	}
}

// BenchmarkExploreMutexK1POR is the same exploration with sleep sets on.
func BenchmarkExploreMutexK1POR(b *testing.B) {
	lit := checker.LitmusByName("mutex")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := Explore(lit, Options{MaxPreemptions: 1, POR: PORSleepSets})
		if rep.Violation != nil {
			b.Fatalf("violation: %v", rep.Violation)
		}
	}
}
