package explore

import (
	"bytes"
	"encoding/json"
	"fmt"

	"threads/internal/checker"
	"threads/internal/trace"
)

// CertKind identifies a schedule certificate file (and distinguishes it
// from a JSON-Lines trace recording, whose lines are also JSON objects).
const CertKind = "schedule-certificate"

// Certificate is a replayable witness of one schedule: the sparse list of
// scheduling decisions that differed from the default policy. Replaying it
// re-runs the litmus program deterministically — equal certificates
// produce byte-identical linearization traces.
type Certificate struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	Litmus  string `json:"litmus"`
	// Violation/Detail record the failure this certificate witnesses.
	Violation string   `json:"violation,omitempty"`
	Detail    string   `json:"detail,omitempty"`
	Choices   []Choice `json:"choices"`
}

// Choice forces one decision: at decision point Step, run Thread (by
// name). Unlisted decision points follow the default policy.
type Choice struct {
	Step   int    `json:"step"`
	Thread string `json:"thread"`
}

// certificateFromRun captures res's schedule as a certificate.
func certificateFromRun(lit *checker.Litmus, res RunResult) *Certificate {
	c := &Certificate{Kind: CertKind, Version: 1, Litmus: lit.Name}
	if res.Violation != nil {
		c.Violation = res.Violation.Kind
		c.Detail = res.Violation.Detail
	}
	for i, d := range res.Decisions {
		if d.Chosen != d.Default {
			c.Choices = append(c.Choices, Choice{Step: i, Thread: d.Cands[d.Chosen]})
		}
	}
	return c
}

// Encode serializes the certificate as indented JSON.
func (c *Certificate) Encode() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// DecodeCertificate parses data, reporting an error if it is not a
// schedule certificate this version understands.
func DecodeCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("explore: not a schedule certificate: %w", err)
	}
	if c.Kind != CertKind {
		return nil, fmt.Errorf("explore: not a schedule certificate (kind %q)", c.Kind)
	}
	if c.Version != 1 {
		return nil, fmt.Errorf("explore: unsupported certificate version %d", c.Version)
	}
	if c.Litmus == "" {
		return nil, fmt.Errorf("explore: certificate names no litmus program")
	}
	return &c, nil
}

// IsCertificate reports whether data looks like a schedule certificate
// (used by threadsim -replay to distinguish certificates from traces).
func IsCertificate(data []byte) bool {
	_, err := DecodeCertificate(data)
	return err == nil
}

// Replay runs the certificate's schedule on its litmus program.
func Replay(lit *checker.Litmus, c *Certificate) RunResult {
	ov := make(map[int]string, len(c.Choices))
	for _, ch := range c.Choices {
		ov[ch.Step] = ch.Thread
	}
	return runProgram(lit, &recorder{overrides: ov})
}

// ReplayTraceBytes replays the certificate and serializes the resulting
// linearization trace (JSON Lines). The bytes are a deterministic function
// of the certificate.
func ReplayTraceBytes(lit *checker.Litmus, c *Certificate) ([]byte, RunResult, error) {
	res := Replay(lit, c)
	var buf bytes.Buffer
	if err := trace.Write(&buf, res.Events); err != nil {
		return nil, res, err
	}
	return buf.Bytes(), res, nil
}

// Minimize shrinks a violating certificate by dropping forced decisions —
// first in halving chunks, then one at a time to a fixpoint — keeping a
// drop only while a violation of the same kind still reproduces. The
// result replays to the recorded failure with as few forced decisions as
// the greedy search finds (not necessarily the global minimum).
func Minimize(lit *checker.Litmus, c *Certificate) *Certificate {
	reproduces := func(choices []Choice) (*Violation, bool) {
		t := *c
		t.Choices = choices
		res := Replay(lit, &t)
		return res.Violation, res.Violation != nil && res.Violation.Kind == c.Violation
	}
	if c.Violation == "" {
		return c
	}
	if _, ok := reproduces(c.Choices); !ok {
		// Certificates are recorded from deterministic runs, so this
		// indicates the litmus changed since recording; keep as-is.
		return c
	}
	cur := append([]Choice(nil), c.Choices...)
	size := len(cur) / 2
	if size < 1 {
		size = 1
	}
	var last *Violation
	for {
		removed := false
		for lo := 0; lo < len(cur); {
			hi := lo + size
			if hi > len(cur) {
				hi = len(cur)
			}
			trial := append(append([]Choice{}, cur[:lo]...), cur[hi:]...)
			if v, ok := reproduces(trial); ok {
				cur = trial
				last = v
				removed = true
				// Do not advance lo: the next chunk shifted into place.
			} else {
				lo = hi
			}
		}
		if size > 1 {
			size /= 2
			continue
		}
		if !removed {
			break
		}
	}
	out := *c
	out.Choices = cur
	if last != nil {
		out.Detail = last.Detail
	}
	return &out
}
