package explore

import (
	"os"
	"path/filepath"
	"testing"

	"threads/internal/checker"
)

// TestExploreBrokenPriorityInversion: without priority inheritance the
// explorer must find the inversion — the medium-priority spinner starving
// the lock holder on the single processor — and the certificate must
// reproduce it on replay.
func TestExploreBrokenPriorityInversion(t *testing.T) {
	lit := checker.LitmusByName("priority-inversion-broken")
	if lit == nil {
		t.Fatal("priority-inversion-broken missing from the registry")
	}
	rep := Explore(lit, Options{MaxPreemptions: 2, Budget: testBudget})
	if rep.Violation == nil {
		t.Fatalf("no violation found in %d runs; priority inheritance is not being exercised", rep.Runs)
	}
	if rep.Violation.Kind != "outcome" {
		t.Fatalf("violation kind = %q (%s), want outcome", rep.Violation.Kind, rep.Violation.Detail)
	}
	if !rep.Ok() {
		t.Error("Report.Ok() = false for a broken litmus with a violation")
	}
	cert := rep.Certificate
	if cert == nil {
		t.Fatal("violation reported without a certificate")
	}
	res := Replay(lit, cert)
	if res.Violation == nil || res.Violation.Kind != cert.Violation {
		t.Fatalf("certificate replay got %v, want kind %q", res.Violation, cert.Violation)
	}
}

// TestExploreCleanPriorityInversionK2: with inheritance on, exploration at
// k<=2 must come up clean — every schedule boosts the holder past the
// spinner in time.
func TestExploreCleanPriorityInversionK2(t *testing.T) {
	lit := checker.LitmusByName("priority-inversion")
	if lit == nil {
		t.Fatal("priority-inversion missing from the registry")
	}
	rep := Explore(lit, Options{MaxPreemptions: 2, Budget: testBudget})
	if rep.Partial {
		t.Fatalf("exploration hit the budget after %d runs; not exhaustive", rep.Runs)
	}
	if rep.Violation != nil {
		t.Fatalf("violation with inheritance on: %v", rep.Violation)
	}
}

// TestPriorityInversionCertificateRegression replays the committed
// minimized certificate of the inversion, so the failure mode stays pinned
// even if future registry or scheduler changes would otherwise mask it.
func TestPriorityInversionCertificateRegression(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "priority-inversion-broken.cert.json"))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := DecodeCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	lit := checker.LitmusByName(cert.Litmus)
	if lit == nil {
		t.Fatalf("certificate names unknown litmus %q", cert.Litmus)
	}
	res := Replay(lit, cert)
	if res.Violation == nil || res.Violation.Kind != cert.Violation {
		t.Fatalf("committed certificate replays to %v, want kind %q", res.Violation, cert.Violation)
	}
}
