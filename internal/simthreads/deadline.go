package simthreads

import "threads/internal/sim"

// DeadlineTimer models one armed timer-wheel entry (internal/core's
// timerEntry) on the simulated multiprocessor, in virtual time: the wheel's
// runner goroutine becomes an explicit "timer" thread whose single Fire
// step the explorer places anywhere in the schedule. Where the step lands
// IS the firing time — before the wait (a pending alert), during it (the
// deadline path), or after the wait is satisfied (the stale-alert race) —
// so bounded-exhaustive exploration model-checks every deadline/completion
// interleaving without any clock.
//
// The claim word carries the core entry's armed→{firing,cancelled} CAS: the
// first TAS wins, exactly one of Fire and Cancel takes effect.
type DeadlineTimer struct {
	w     *World
	claim sim.Word // 0 = armed; 1 = claimed by Fire or by a cancel
	fired sim.Word // set by Fire after the Alert is delivered
}

// NewDeadlineTimer creates an armed timer (the simulated analogue of
// core's armDeadline).
func (w *World) NewDeadlineTimer() *DeadlineTimer {
	return &DeadlineTimer{w: w}
}

// Fire delivers the deadline to t: the timer thread's one step, placed by
// the explored schedule. A cancel that already claimed the entry makes
// Fire a no-op.
func (dt *DeadlineTimer) Fire(e *sim.Env, t *sim.T) {
	if e.TAS(&dt.claim) != 0 {
		return // cancelled first: the deadline never fires
	}
	dt.w.Alert(e, t)
	e.Store(&dt.fired, 1)
}

// CancelAndDrain is the deadline epilogue run by the owning thread on every
// exit path (core's cancelAndDrain + finishDeadline drain): claim the entry
// or, if Fire won, wait out the delivery and drain the alert so it cannot
// poison a later wait. Reports whether the deadline fired.
func (dt *DeadlineTimer) CancelAndDrain(e *sim.Env) (fired bool) {
	if e.TAS(&dt.claim) == 0 {
		return false // cancel won: the entry never alerted and never will
	}
	for {
		v := e.Load(&dt.fired)
		if v != 0 {
			break
		}
		e.AwaitChange(sim.WordVal{W: &dt.fired, Old: v})
	}
	_ = dt.w.TestAlert(e) // drain; false if the wait consumed the alert itself
	return true
}

// CancelBroken models the hand-rolled pattern this package's deadline
// variants replace: timer.Stop with no drain. A Stop that loses the race
// (Fire already claimed) leaves the delivered alert pending — the
// stale-alert bug the "deadline-broken" litmus expects exploration to
// expose.
func (dt *DeadlineTimer) CancelBroken(e *sim.Env) {
	e.TAS(&dt.claim)
}
