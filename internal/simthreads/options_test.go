package simthreads

import (
	"testing"

	"threads/internal/sim"
)

// TestAblationNoUserFastPathCost: without the user-space layer, the
// uncontended pair costs several times the paper's 5 instructions.
func TestAblationNoUserFastPathCost(t *testing.T) {
	w, k := NewWorldOpts(sim.Config{Procs: 1}, WorldOptions{NoUserFastPath: true})
	m := w.NewMutex()
	var pair uint64
	k.Spawn("solo", func(e *sim.Env) {
		before := e.Instret()
		m.Acquire(e)
		m.Release(e)
		pair = e.Instret() - before
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pair <= 5 {
		t.Fatalf("nub-only pair = %d instructions; ablation should cost more than the fast path's 5", pair)
	}
	if w.Stats.AcquireFast != 0 {
		t.Fatal("ablated world still took the user fast path")
	}
	t.Logf("ablation: nub-only Acquire-Release pair = %d instructions (fast path: 5)", pair)
}

// TestAblationNoUserFastPathStillCorrect: the ablated implementation is
// slower but must remain mutually exclusive and lose no wakeups.
func TestAblationNoUserFastPathStillCorrect(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		w, k := NewWorldOpts(sim.Config{
			Procs: 4, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 2_000_000,
		}, WorldOptions{NoUserFastPath: true})
		m := w.NewMutex()
		var counter, inside, overlap sim.Word
		for i := 0; i < 4; i++ {
			k.Spawn("", func(e *sim.Env) {
				for n := 0; n < 25; n++ {
					m.Acquire(e)
					if v := e.Add(&inside, 1); v != 1 {
						e.Add(&overlap, 1)
					}
					e.Add(&counter, 1)
					e.Add(&inside, ^uint64(0))
					m.Release(e)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if overlap.Peek() != 0 || counter.Peek() != 100 {
			t.Fatalf("seed %d: overlap=%d counter=%d", seed, overlap.Peek(), counter.Peek())
		}
	}
}

// TestAblationNoSignalFastPath: signalling an empty condition costs nothing
// with the optimization, a spin-lock round trip without.
func TestAblationNoSignalFastPath(t *testing.T) {
	measure := func(opts WorldOptions) (uint64, Stats) {
		w, k := NewWorldOpts(sim.Config{Procs: 1}, opts)
		c := w.NewCondition()
		var cost uint64
		k.Spawn("solo", func(e *sim.Env) {
			before := e.Instret()
			for i := 0; i < 100; i++ {
				c.Signal(e)
			}
			cost = e.Instret() - before
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return cost, w.Stats
	}
	fast, fastStats := measure(WorldOptions{})
	slow, slowStats := measure(WorldOptions{NoSignalFastPath: true})
	if fastStats.SignalFast != 100 || fastStats.SignalNub != 0 {
		t.Fatalf("optimized world stats: %+v", fastStats)
	}
	if slowStats.SignalNub != 100 {
		t.Fatalf("ablated world stats: %+v", slowStats)
	}
	if slow <= fast {
		t.Fatalf("ablation did not cost: fast=%d slow=%d instructions", fast, slow)
	}
	t.Logf("ablation: 100 empty Signals cost %d instructions optimized, %d nub-only", fast, slow)
}

// TestAblationSemaphoreNubOnly: P/V correctness under the ablation.
func TestAblationSemaphoreNubOnly(t *testing.T) {
	w, k := NewWorldOpts(sim.Config{Procs: 2, MaxSteps: 500_000}, WorldOptions{NoUserFastPath: true})
	s := w.NewSemaphore()
	var handled uint64
	k.Spawn("handler", func(e *sim.Env) {
		s.P(e)
		for i := 0; i < 5; i++ {
			s.P(e)
			handled++
		}
	})
	k.Spawn("device", func(e *sim.Env) {
		for i := 0; i < 5; i++ {
			e.Work(50)
			s.V(e)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 5 {
		t.Fatalf("handled %d, want 5", handled)
	}
}

// TestDirectHandoffTransfersAndStaysCorrect: with DirectHandoff on, a
// contended world must resolve some releases by transfer (the stat guards
// the option against silently becoming a no-op) while mutual exclusion and
// the final count stay intact across random schedules.
func TestDirectHandoffTransfersAndStaysCorrect(t *testing.T) {
	var handoffs uint64
	for seed := int64(0); seed < 20; seed++ {
		w, k := NewWorldOpts(sim.Config{
			Procs: 4, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 2_000_000,
		}, WorldOptions{DirectHandoff: true})
		m := w.NewMutex()
		var counter, inside, overlap sim.Word
		for i := 0; i < 4; i++ {
			k.Spawn("", func(e *sim.Env) {
				for n := 0; n < 25; n++ {
					m.Acquire(e)
					if v := e.Add(&inside, 1); v != 1 {
						e.Add(&overlap, 1)
					}
					e.Add(&counter, 1)
					e.Add(&inside, ^uint64(0))
					m.Release(e)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if overlap.Peek() != 0 || counter.Peek() != 100 {
			t.Fatalf("seed %d: overlap=%d counter=%d", seed, overlap.Peek(), counter.Peek())
		}
		handoffs += w.Stats.ReleaseHandoff
	}
	if handoffs == 0 {
		t.Fatal("no release ever handed off across 20 contended random schedules")
	}
	t.Logf("%d hand-offs across 20 seeds", handoffs)
}
