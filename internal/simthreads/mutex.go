package simthreads

import (
	"strconv"

	"threads/internal/sim"
	"threads/internal/spec"
)

// Mutex is the simulated Threads mutex: a (lock bit, queue) pair with no
// recorded holder.
type Mutex struct {
	w  *World
	id spec.MutexID
	g  gate
}

// NewMutex creates a mutex (INITIALLY NIL). With the world's
// PriorityInheritance option on, the mutex donates blocked acquirers'
// priorities to its holder.
func (w *World) NewMutex() *Mutex {
	w.nextMutex++
	m := &Mutex{w: w, id: w.nextMutex}
	m.g.w = w
	m.g.pi = w.opts.PriorityInheritance
	w.registerGate(&m.g)
	return m
}

// ID returns the spec-level identity used in emitted actions.
func (m *Mutex) ID() spec.MutexID { return m.id }

// Acquire blocks until the mutex is free and takes it. The uncontended
// path is 2 instructions (test-and-set, branch).
func (m *Mutex) Acquire(e *sim.Env) {
	self := m.w.state(e.Self()).id
	onAcquired := func() { m.w.emit(e, spec.Acquire{T: self, M: m.id}) }
	if m.w.opts.NoUserFastPath {
		m.g.acquireNubOnly(e, "Acquire(m"+strconv.Itoa(int(m.id))+")", onAcquired)
		return
	}
	if m.g.tryAcquire(e, onAcquired) {
		m.w.Stats.AcquireFast++
		return
	}
	m.w.Stats.AcquireNub++
	m.g.acquireSlow(e, "Acquire(m"+strconv.Itoa(int(m.id))+")", onAcquired)
}

// acquireSilent reacquires the mutex inside Wait/AlertWait; the
// linearization event is the Resume/AlertResume emitted by the caller.
func (m *Mutex) acquireSilent(e *sim.Env, onAcquired func()) {
	if m.g.tryAcquire(e, onAcquired) {
		m.w.Stats.AcquireFast++
		return
	}
	m.w.Stats.AcquireNub++
	m.g.acquireSlow(e, "Resume(m"+strconv.Itoa(int(m.id))+")", onAcquired)
}

// Release frees the mutex and, if threads are queued, moves one to the
// ready pool. The uncontended path is 3 instructions (clear, queue test,
// branch).
func (m *Mutex) Release(e *sim.Env) {
	self := m.w.state(e.Self()).id
	onReleased := func() { m.w.emit(e, spec.Release{T: self, M: m.id}) }
	if m.w.opts.NoUserFastPath {
		m.g.releaseNubOnly(e, onReleased)
		return
	}
	if m.g.release(e, onReleased) {
		m.w.Stats.ReleaseNub++
	} else {
		m.w.Stats.ReleaseFast++
	}
}

// releaseSilent releases inside Wait/AlertWait (the Enqueue event covers
// the m' = NIL transition).
func (m *Mutex) releaseSilent(e *sim.Env) {
	if m.g.release(e, nil) {
		m.w.Stats.ReleaseNub++
	} else {
		m.w.Stats.ReleaseFast++
	}
}

// Held reports the lock bit without simulating an access (assertions only).
func (m *Mutex) Held() bool { return m.g.lockBit.Peek() != 0 }

// Semaphore is the simulated binary semaphore — the identical mechanism
// under a different specification.
type Semaphore struct {
	w  *World
	id spec.SemID
	g  gate
}

// NewSemaphore creates a semaphore (INITIALLY available).
func (w *World) NewSemaphore() *Semaphore {
	w.nextSem++
	s := &Semaphore{w: w, id: w.nextSem}
	s.g.w = w
	w.registerGate(&s.g)
	return s
}

// ID returns the spec-level identity used in emitted actions.
func (s *Semaphore) ID() spec.SemID { return s.id }

// P blocks until the semaphore is available and takes it.
func (s *Semaphore) P(e *sim.Env) {
	self := s.w.state(e.Self()).id
	onAcquired := func() { s.w.emit(e, spec.P{T: self, S: s.id}) }
	if s.w.opts.NoUserFastPath {
		s.g.acquireNubOnly(e, "P(s"+strconv.Itoa(int(s.id))+")", onAcquired)
		return
	}
	if s.g.tryAcquire(e, onAcquired) {
		return
	}
	s.g.acquireSlow(e, "P(s"+strconv.Itoa(int(s.id))+")", onAcquired)
}

// V makes the semaphore available, waking one queued thread if any.
func (s *Semaphore) V(e *sim.Env) {
	self := s.w.state(e.Self()).id
	onReleased := func() { s.w.emit(e, spec.V{T: self, S: s.id}) }
	if s.w.opts.NoUserFastPath {
		s.g.releaseNubOnly(e, onReleased)
		return
	}
	s.g.release(e, onReleased)
}

// AlertP is P, except that it may report the caller's pending alert
// instead of acquiring; it returns true if alerted. When both outcomes are
// possible the implementation chooses arbitrarily (experiment E8).
func (s *Semaphore) AlertP(e *sim.Env) (alerted bool) {
	self := s.w.state(e.Self()).id
	onAcquired := func() { s.w.emit(e, spec.AlertPReturn{T: self, S: s.id}) }
	onAlerted := func() { s.w.emit(e, spec.AlertPRaise{T: self, S: s.id}) }
	if s.g.tryAcquire(e, onAcquired) {
		// Both WHEN clauses may have been enabled; the fast path chooses
		// RETURNS, as the Firefly implementation did.
		return false
	}
	return s.g.alertableAcquireSlow(e, "AlertP(s"+strconv.Itoa(int(s.id))+")", onAcquired, onAlerted)
}

// Available reports the lock bit without simulating an access.
func (s *Semaphore) Available() bool { return s.g.lockBit.Peek() == 0 }
