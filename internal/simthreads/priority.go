package simthreads

import "threads/internal/sim"

// Priority inheritance in the simulated Nub, mirroring internal/core's
// protocol: a blocked Acquire donates its priority to the gate's holder
// (keyed by the gate, so nested holds compose), and the release removes the
// donation. The effective priority — what the kernel's ready pool schedules
// by — is max(basePri, donations); piRecalc pushes it into the ready heap
// through Env.SetPriorityOf.
//
// All three helpers run inside Nub critical sections (the holder hint is
// additionally written at fast-path linearization points) and add no yield
// points: the simulator serializes execution, so plain Go state is sound,
// and the schedule explorer sees the donation as part of the surrounding
// step, exactly as core's donLock work is invisible between its gate-word
// accesses.

// piDonate donates waiter's priority to g's holder if that would raise it.
// Called under the Nub spin lock with waiter about to park on g's queue.
func (w *World) piDonate(e *sim.Env, g *gate, waiter *sim.T) {
	if !g.pi {
		return
	}
	h := g.holder
	if h == nil || h == waiter {
		return
	}
	pri := waiter.Priority()
	if pri <= h.Priority() {
		return
	}
	hs := w.state(h)
	if hs.donations == nil {
		hs.donations = make(map[int]int)
	}
	if d, ok := hs.donations[g.q.id]; ok && d >= pri {
		return
	}
	hs.donations[g.q.id] = pri
	w.piRecalc(e, h)
}

// piUndonate removes t's donation keyed by g (t released the gate) and
// restores its effective priority.
func (w *World) piUndonate(e *sim.Env, g *gate, t *sim.T) {
	if !g.pi || t == nil {
		return
	}
	hs := w.state(t)
	if _, ok := hs.donations[g.q.id]; !ok {
		return
	}
	delete(hs.donations, g.q.id)
	w.piRecalc(e, t)
}

// piRecalc recomputes t's effective priority and installs it in the kernel.
func (w *World) piRecalc(e *sim.Env, t *sim.T) {
	hs := w.state(t)
	eff := hs.basePri
	for _, p := range hs.donations {
		if p > eff {
			eff = p
		}
	}
	if eff != t.Priority() {
		e.SetPriorityOf(t, eff)
	}
}
