package simthreads

import "threads/internal/sim"

// WorldOptions disable individual optimizations of the paper's
// implementation, for the ablation experiments: each option removes one
// design decision §Implementation motivates, so its cost can be measured in
// isolation.
type WorldOptions struct {
	// NoUserFastPath removes the user-space layer entirely: every
	// Acquire/Release/P/V enters the Nub and runs under the global spin
	// lock, as a naive single-layer implementation would. The paper's
	// point: "The user code avoids the overhead of calling the Nub in
	// these cases" — this option restores that overhead.
	NoUserFastPath bool
	// NoSignalFastPath makes Signal and Broadcast always call the Nub,
	// even when no thread is committed to waiting (removing "Signal and
	// Broadcast avoid calling the Nub if there are no threads to
	// unblock").
	NoSignalFastPath bool
	// NubAwait makes the Nub spin lock block on the lock word (an await)
	// instead of busy-waiting on test-and-set. Acquisition order and
	// visible behavior are unchanged — a spinning thread makes no progress
	// either way — but the schedule explorer (internal/explore) needs the
	// blocking form so its controlled decision tree is finite; a busy-wait
	// under an adversarial scheduler is an unbounded chain of decision
	// points. Leave it off for performance experiments: awaits are not
	// charged the spin instructions.
	NubAwait bool
	// DirectHandoff makes Release/V transfer the gate straight to a queued
	// waiter (lock bit never cleared) instead of the paper's clear-and-wake
	// protocol — the same fairness fix internal/core ships (see
	// core.HandoffMode). The simulated form is unconditional (no adaptive
	// threshold: the simulator has no starvation clock) and applies only to
	// the fast-path release; the NoUserFastPath ablation composes with it
	// by simply never reaching the hand-off.
	DirectHandoff bool
	// PriorityInheritance enables priority inheritance on every mutex the
	// world creates, mirroring core.Mutex.SetPriorityInheritance: a blocked
	// Acquire donates its priority to the holder, and the release removes
	// the donation. The priority-inversion litmus runs once with this off
	// (the explorer must find the inversion) and once with it on (the
	// explorer must come up clean).
	PriorityInheritance bool
	// BuggyAlertSeize reintroduces, at the implementation level, the bug
	// the first released specification permitted (spec.VariantNoMNil):
	// AlertWait's Raise path returns without waiting for the mutex to be
	// free — the alerted thread barges into the region the mutex guards
	// even while another thread holds it. The schedule explorer uses it as
	// the known-broken litmus whose violation every exploration must
	// rediscover (experiment E7 at the schedule level).
	BuggyAlertSeize bool
}

// NewWorldOpts is NewWorld with ablation options.
func NewWorldOpts(cfg sim.Config, opts WorldOptions) (*World, *Kernel) {
	w, k := NewWorld(cfg)
	w.opts = opts
	return w, k
}

// acquireNubOnly is the ablated Acquire: the whole operation runs under the
// Nub spin lock — test the bit, take it or queue and deschedule.
func (g *gate) acquireNubOnly(e *sim.Env, reason string, onAcquired func()) {
	w := g.w
	self := e.Self()
	st := w.state(self)
	for {
		e.Work(callCost)
		w.nubLock(e)
		if e.Load(&g.lockBit) == 0 {
			e.Store(&g.lockBit, 1)
			if g.pi {
				g.holder = self
			}
			if onAcquired != nil {
				onAcquired()
			}
			w.nubUnlock(e)
			w.Stats.AcquireNub++
			return
		}
		g.q.push(e, self)
		e.Store(&g.qne, 1)
		w.piDonate(e, g, self)
		w.nubUnlock(e)
		w.Stats.AcquireNub++
		w.Stats.AcquirePark++
		e.Deschedule(reason)
		st.wakeup = wakeNone
	}
}

// releaseNubOnly is the ablated Release: clear the bit and wake a waiter,
// all under the spin lock.
func (g *gate) releaseNubOnly(e *sim.Env, onReleased func()) {
	w := g.w
	e.Work(callCost)
	w.nubLock(e)
	var prevHolder *sim.T
	if g.pi {
		prevHolder = g.holder
		g.holder = nil
	}
	e.Store(&g.lockBit, 0)
	if onReleased != nil {
		onReleased()
	}
	for {
		t := g.q.pop(e)
		if t == nil {
			e.Store(&g.qne, 0)
			break
		}
		if g.q.empty() {
			e.Store(&g.qne, 0)
		}
		st := w.state(t)
		if st.wakeup == wakeNone {
			st.wakeup = wakeTransfer
			e.MakeReady(t)
			break
		}
	}
	w.piUndonate(e, g, prevHolder)
	w.nubUnlock(e)
	w.Stats.ReleaseNub++
}
