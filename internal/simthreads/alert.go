package simthreads

import (
	"threads/internal/sim"
	"threads/internal/spec"
)

// Alert requests that thread t raise Alerted: it inserts t into the alerts
// set and, if t is blocked in AlertWait or AlertP, claims and wakes it. A
// thread blocked in plain Acquire, Wait or P is not disturbed.
func (w *World) Alert(e *sim.Env, t *sim.T) {
	e.Work(callCost)
	w.nubLock(e)
	st := w.state(t)
	st.alerted = true
	w.emit(e, spec.Alert{T: w.state(e.Self()).id, Target: st.id})
	if st.alertTgt != nil && st.wakeup == wakeNone {
		st.wakeup = wakeAlert
		e.MakeReady(t)
	}
	w.nubUnlock(e)
}

// TestAlert reports whether the calling thread has a pending alert,
// consuming it.
func (w *World) TestAlert(e *sim.Env) bool {
	e.Work(callCost)
	w.nubLock(e)
	st := w.state(e.Self())
	b := st.alerted
	st.alerted = false
	w.emit(e, spec.TestAlert{T: st.id, Result: b})
	w.nubUnlock(e)
	return b
}

// AlertPending reports t's alert flag without simulating an access
// (assertions only).
func (w *World) AlertPending(t *sim.T) bool { return w.state(t).alerted }
