package simthreads

import "threads/internal/sim"

// gate is the shared (lock bit, queue) mechanism behind the simulated Mutex
// and Semaphore, as in the paper: "The implementation of semaphores is the
// same as mutexes: P is the same as Acquire and V is the same as Release."
type gate struct {
	w *World
	// lockBit is 1 iff held/unavailable; it is the word the user-code
	// test-and-set operates on.
	lockBit sim.Word
	// qne is the queue-non-empty hint the user code of Release tests; it
	// is maintained under the Nub spin lock.
	qne sim.Word
	q   tqueue
	// pi enables priority inheritance on this gate (set at construction;
	// mutexes only).
	pi bool
	// holder is the donation target while pi: the thread currently holding
	// the gate. A plain Go field, not a sim.Word — it adds no yield points,
	// and it is a heuristic hint with the same misses internal/core's
	// piHolder has (cleared before the lock-bit store on a plain release,
	// so a donor arriving mid-release skips its donation).
	holder *sim.T
}

// tryAcquire is the user-code fast path: one test-and-set and one branch —
// 2 instructions. onAcquired runs at the linearization point (immediately
// after the winning test-and-set, in the same execution slice).
func (g *gate) tryAcquire(e *sim.Env, onAcquired func()) bool {
	won := e.TAS(&g.lockBit) == 0
	if won {
		if g.pi {
			g.holder = e.Self()
		}
		if onAcquired != nil {
			onAcquired()
		}
	}
	e.Work(branchCost)
	return won
}

// acquireSlow is the Nub subroutine for Acquire/P (SRC Report 20,
// §Implementation): under the spin lock, add the caller to the queue and
// test the lock bit again. If still set, deschedule; if clear, back out and
// retry the whole operation from the test-and-set.
func (g *gate) acquireSlow(e *sim.Env, reason string, onAcquired func()) {
	w := g.w
	self := e.Self()
	st := w.state(self)
	e.Work(callCost)
	for {
		w.nubLock(e)
		g.q.push(e, self)
		e.Store(&g.qne, 1)
		if e.Load(&g.lockBit) == 0 {
			// A Release slipped in before we enqueued: back out and
			// retry from the test-and-set. We still hold the spin lock,
			// so the releaser cannot have dequeued us.
			g.q.remove(e, self)
			if g.q.empty() {
				e.Store(&g.qne, 0)
			}
			w.nubUnlock(e)
		} else {
			// Stash the acquisition action so a direct hand-off can emit it
			// in the releaser's slice; must precede the unlock, since a
			// releaser may pop us the instant the spin lock drops.
			st.handoffEmit = onAcquired
			// Donate before parking, while the holder is still visible
			// under the spin lock.
			w.piDonate(e, g, self)
			w.nubUnlock(e)
			w.Stats.AcquirePark++
			e.Deschedule(reason)
			// The releaser dequeued us before the wakeup; consume the
			// claim and retry.
			woke := st.wakeup
			st.wakeup = wakeNone
			st.handoffEmit = nil
			if woke == wakeHandoff {
				// The releaser transferred the gate: the lock bit was never
				// cleared and our acquisition is already emitted. Nothing
				// left to retry.
				return
			}
		}
		if g.tryAcquire(e, onAcquired) {
			return
		}
	}
}

// alertableAcquireSlow is acquireSlow for AlertP: the wait can also be
// ended by Alert, in which case the caller reports the alert and the gate
// is left untouched. onAcquired/onAlerted run at the respective
// linearization points.
func (g *gate) alertableAcquireSlow(e *sim.Env, reason string, onAcquired, onAlerted func()) (alerted bool) {
	w := g.w
	self := e.Self()
	st := w.state(self)
	e.Work(callCost)
	for {
		w.nubLock(e)
		if st.alerted {
			// WHEN SELF IN alerts already holds: take the RAISES path.
			st.alerted = false
			onAlerted()
			w.nubUnlock(e)
			return true
		}
		g.q.push(e, self)
		e.Store(&g.qne, 1)
		st.alertTgt = &alertTarget{q: &g.q}
		if e.Load(&g.lockBit) == 0 {
			g.q.remove(e, self)
			if g.q.empty() {
				e.Store(&g.qne, 0)
			}
			st.alertTgt = nil
			w.nubUnlock(e)
			if g.tryAcquire(e, onAcquired) {
				return false
			}
			continue
		}
		st.handoffEmit = onAcquired
		w.piDonate(e, g, self)
		w.nubUnlock(e)
		e.Deschedule(reason)
		// Woken: find out by whom, under the spin lock.
		w.nubLock(e)
		woke := st.wakeup
		st.wakeup = wakeNone
		st.alertTgt = nil
		st.handoffEmit = nil
		if woke == wakeHandoff {
			w.nubUnlock(e)
			return false
		}
		if woke == wakeAlert {
			// Leave the queue before reporting the alert, so a later V
			// is not absorbed by this departed thread.
			g.q.remove(e, self)
			if g.q.empty() {
				e.Store(&g.qne, 0)
			}
			st.alerted = false
			onAlerted()
			w.nubUnlock(e)
			return true
		}
		w.nubUnlock(e)
		if g.tryAcquire(e, onAcquired) {
			return false
		}
	}
}

// release is the user code for Release/V: clear the lock bit (1
// instruction), test whether the queue is non-empty (1), branch (1) — and
// only then call the Nub. onReleased runs at the clearing store.
func (g *gate) release(e *sim.Env, onReleased func()) (tookNub bool) {
	if g.w.opts.DirectHandoff && e.Load(&g.qne) != 0 && g.releaseHandoffSlow(e, onReleased) {
		return true
	}
	// The next holder is unknown until someone wins the test-and-set, so a
	// plain release clears the donation target first. Its own donation is
	// removed only AFTER the queued successor (if any) is in the ready pool:
	// dropping the boost first would let a medium-priority thread preempt
	// this thread inside releaseSlow's Nub critical section — with the
	// successor still stranded on the gate queue — recreating the very
	// inversion the donation existed to prevent.
	var prevHolder *sim.T
	if g.pi {
		prevHolder = g.holder
		g.holder = nil
	}
	e.Store(&g.lockBit, 0)
	if onReleased != nil {
		onReleased()
	}
	nonEmpty := e.Load(&g.qne) != 0
	e.Work(branchCost)
	if !nonEmpty {
		g.w.piUndonate(e, g, prevHolder)
		return false
	}
	g.releaseSlow(e)
	g.w.piUndonate(e, g, prevHolder)
	return true
}

// releaseSlow is the Nub subroutine for Release/V: take one thread from the
// queue, claim it, and move it to the ready pool.
func (g *gate) releaseSlow(e *sim.Env) {
	w := g.w
	e.Work(callCost)
	w.nubLock(e)
	for {
		t := g.q.pop(e)
		if t == nil {
			e.Store(&g.qne, 0)
			break
		}
		if g.q.empty() {
			e.Store(&g.qne, 0)
		}
		st := w.state(t)
		if st.wakeup == wakeNone {
			st.wakeup = wakeTransfer
			e.MakeReady(t)
			break
		}
		// Already claimed by Alert: it no longer needs this wakeup; give
		// it to the next thread.
	}
	w.nubUnlock(e)
}

// releaseHandoffSlow is the direct hand-off variant of releaseSlow: instead
// of clearing the lock bit and letting the woken thread race barging
// acquirers, transfer the gate to a queued waiter with the bit still set.
// Both linearization points — the release and the recipient's acquisition —
// are emitted here, back to back in the releaser's slice, because the
// transfer makes them adjacent in the abstract state: no concurrently
// scheduled operation on this gate can fall between them. Returns false
// (emitting nothing) if no eligible waiter exists or the bit is already
// clear (a semaphore V with no token in hand cannot gift one); the caller
// then runs the ordinary clear-and-wake protocol.
func (g *gate) releaseHandoffSlow(e *sim.Env, onReleased func()) bool {
	w := g.w
	e.Work(callCost)
	w.nubLock(e)
	if e.Load(&g.lockBit) == 0 {
		w.nubUnlock(e)
		return false
	}
	for {
		t := g.q.pop(e)
		if t == nil {
			e.Store(&g.qne, 0)
			w.nubUnlock(e)
			return false
		}
		if g.q.empty() {
			e.Store(&g.qne, 0)
		}
		st := w.state(t)
		if st.wakeup == wakeNone {
			if onReleased != nil {
				onReleased()
			}
			if st.handoffEmit != nil {
				st.handoffEmit()
				st.handoffEmit = nil
			}
			var old *sim.T
			if g.pi {
				// A transfer names its recipient: install it as the new
				// donation target. The releaser's own boost is dropped only
				// after the recipient is ready (see release).
				old = g.holder
				g.holder = t
			}
			st.wakeup = wakeHandoff
			e.MakeReady(t)
			if g.pi {
				w.piUndonate(e, g, old)
			}
			w.nubUnlock(e)
			w.Stats.ReleaseHandoff++
			return true
		}
		// Already claimed by Alert; it no longer wants the gate.
	}
}
