package simthreads

import (
	"testing"

	"threads/internal/sim"
)

// TestE1UncontendedPairIsFiveInstructions reproduces the paper's headline
// implementation number: "an Acquire-Release pair executes a total of 5
// instructions, taking 10 microseconds on a MicroVAX II".
func TestE1UncontendedPairIsFiveInstructions(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 1})
	m := w.NewMutex()
	var pair uint64
	k.Spawn("solo", func(e *sim.Env) {
		// Warm nothing: the fast path has no warmup. Measure one pair.
		before := e.Instret()
		m.Acquire(e)
		m.Release(e)
		pair = e.Instret() - before
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pair != 5 {
		t.Fatalf("uncontended Acquire-Release pair = %d instructions, want 5", pair)
	}
	micros := float64(pair) * sim.MicroVAXII().MicrosPerInstr
	if micros != 10 {
		t.Fatalf("pair = %v µs, want 10 µs", micros)
	}
	if w.Stats.AcquireFast != 1 || w.Stats.AcquireNub != 0 {
		t.Fatalf("fast path not taken: %+v", w.Stats)
	}
}

// TestE1SemaphorePairMatchesMutex: P/V is the identical mechanism, so the
// uncontended pair costs the same 5 instructions.
func TestE1SemaphorePairMatchesMutex(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 1})
	s := w.NewSemaphore()
	var pair uint64
	k.Spawn("solo", func(e *sim.Env) {
		before := e.Instret()
		s.P(e)
		s.V(e)
		pair = e.Instret() - before
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pair != 5 {
		t.Fatalf("uncontended P-V pair = %d instructions, want 5", pair)
	}
}

func TestSimMutexMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		w, k := NewWorld(sim.Config{
			Procs: 4, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 2_000_000,
		})
		m := w.NewMutex()
		var counter, inside, overlap sim.Word
		for i := 0; i < 4; i++ {
			k.Spawn("", func(e *sim.Env) {
				for n := 0; n < 30; n++ {
					m.Acquire(e)
					if v := e.Add(&inside, 1); v != 1 {
						e.Add(&overlap, 1)
					}
					e.Add(&counter, 1)
					e.Add(&inside, ^uint64(0))
					m.Release(e)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if overlap.Peek() != 0 {
			t.Fatalf("seed %d: %d overlapping critical sections", seed, overlap.Peek())
		}
		if counter.Peek() != 120 {
			t.Fatalf("seed %d: counter = %d, want 120", seed, counter.Peek())
		}
	}
}

func TestSimMutexBlocksAndHandsOff(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 2, MaxSteps: 100_000})
	m := w.NewMutex()
	var order []string
	k.Spawn("first", func(e *sim.Env) {
		m.Acquire(e)
		e.Work(50) // hold long enough that the second must block
		order = append(order, "first-release")
		m.Release(e)
	})
	k.Spawn("second", func(e *sim.Env) {
		e.Work(5)
		m.Acquire(e) // must block in the Nub
		order = append(order, "second-acquired")
		m.Release(e)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first-release" || order[1] != "second-acquired" {
		t.Fatalf("order = %v", order)
	}
	if w.Stats.AcquireNub == 0 || w.Stats.AcquirePark == 0 {
		t.Fatalf("second acquire did not take the Nub path: %+v", w.Stats)
	}
}

func TestSimWaitSignal(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 2, MaxSteps: 500_000})
	m := w.NewMutex()
	c := w.NewCondition()
	var ready sim.Word
	var observed uint64
	k.Spawn("waiter", func(e *sim.Env) {
		m.Acquire(e)
		for e.Load(&ready) == 0 {
			c.Wait(e, m)
		}
		observed = e.Load(&ready)
		m.Release(e)
	})
	k.Spawn("setter", func(e *sim.Env) {
		e.Work(40)
		m.Acquire(e)
		e.Store(&ready, 7)
		m.Release(e)
		c.Signal(e)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != 7 {
		t.Fatalf("waiter observed %d, want 7", observed)
	}
}

// TestSimNoLostWakeup sweeps seeds over the wakeup-waiting window (E4): the
// signal may land anywhere between the eventcount read and the Block, and
// the waiter must never sleep forever.
func TestSimNoLostWakeup(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		w, k := NewWorld(sim.Config{
			Procs: 2, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 200_000,
		})
		m := w.NewMutex()
		c := w.NewCondition()
		var ready sim.Word
		k.Spawn("waiter", func(e *sim.Env) {
			m.Acquire(e)
			for e.Load(&ready) == 0 {
				c.Wait(e, m)
			}
			m.Release(e)
		})
		k.Spawn("signaller", func(e *sim.Env) {
			m.Acquire(e)
			e.Store(&ready, 1)
			m.Release(e)
			c.Signal(e)
		})
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v (lost wakeup)", seed, err)
		}
	}
}

// TestSimSignalMayUnblockSeveral drives many waiters into the race window
// and checks that, across seeds, at least one Signal releases more than one
// thread (the elided-Block path) — the reason Signal's postcondition cannot
// be strengthened (E3).
func TestSimSignalMayUnblockSeveral(t *testing.T) {
	multiUnblockSeen := false
	for seed := int64(0); seed < 300 && !multiUnblockSeen; seed++ {
		w, k := NewWorld(sim.Config{
			Procs: 4, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 500_000,
		})
		m := w.NewMutex()
		c := w.NewCondition()
		var ready sim.Word
		const waiters = 3
		for i := 0; i < waiters; i++ {
			k.Spawn("waiter", func(e *sim.Env) {
				m.Acquire(e)
				for e.Load(&ready) == 0 {
					c.Wait(e, m)
				}
				m.Release(e)
			})
		}
		k.Spawn("signaller", func(e *sim.Env) {
			e.Work(10)
			m.Acquire(e)
			e.Store(&ready, 1)
			m.Release(e)
			c.Signal(e)
			// Flush any waiters the Signal did not release.
			for {
				m.Acquire(e)
				n := c.Waiters()
				m.Release(e)
				if n == 0 {
					break
				}
				c.Broadcast(e)
				e.Work(5)
			}
		})
		if err := k.Run(); err != nil {
			// Some stragglers may still be mid-protocol when the flush
			// loop last looked; a deadlock here would be a real bug.
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The signal "unblocked several" if at least one waiter took the
		// elided path (it was released by the same eventcount advance
		// that released the popped waiter).
		if w.Stats.WaitElided >= 1 && w.Stats.SignalWoke >= 1 {
			multiUnblockSeen = true
		}
	}
	if !multiUnblockSeen {
		t.Fatal("no seed exhibited a Signal releasing several threads (E3)")
	}
}

func TestSimBroadcastReleasesAll(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 2, MaxSteps: 500_000})
	m := w.NewMutex()
	c := w.NewCondition()
	var gate sim.Word
	var resumed uint64
	const waiters = 6
	for i := 0; i < waiters; i++ {
		k.Spawn("waiter", func(e *sim.Env) {
			m.Acquire(e)
			for e.Load(&gate) == 0 {
				c.Wait(e, m)
			}
			resumed++
			m.Release(e)
		})
	}
	k.Spawn("broadcaster", func(e *sim.Env) {
		// Let all the waiters block first.
		e.Work(2000)
		m.Acquire(e)
		e.Store(&gate, 1)
		m.Release(e)
		c.Broadcast(e)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != waiters {
		t.Fatalf("resumed %d of %d waiters", resumed, waiters)
	}
}

func TestSimSemaphoreInterruptHandoff(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 2, MaxSteps: 200_000})
	s := w.NewSemaphore()
	var handled uint64
	k.Spawn("handler", func(e *sim.Env) {
		s.P(e) // consume the initial availability
		for i := 0; i < 5; i++ {
			s.P(e) // wait for "interrupt"
			handled++
		}
	})
	k.Spawn("device", func(e *sim.Env) {
		for i := 0; i < 5; i++ {
			e.Work(50)
			s.V(e)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 5 {
		t.Fatalf("handled %d interrupts, want 5", handled)
	}
}

func TestSimAlertWaitRaises(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 2, MaxSteps: 200_000})
	m := w.NewMutex()
	c := w.NewCondition()
	var gotAlert bool
	var target *sim.T
	target = k.Spawn("waiter", func(e *sim.Env) {
		m.Acquire(e)
		gotAlert = c.AlertWait(e, m)
		if !m.Held() {
			t.Error("mutex not held after AlertWait")
		}
		m.Release(e)
	})
	k.Spawn("alerter", func(e *sim.Env) {
		e.Work(200) // let the waiter block
		w.Alert(e, target)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotAlert {
		t.Fatal("AlertWait did not report the alert")
	}
	if w.AlertPending(target) {
		t.Fatal("alert flag not consumed by the Alerted return")
	}
}

// TestSimAlertedThreadDoesNotAbsorbSignal is E7b at the implementation
// level, across seeds: after t1 is alerted out of AlertWait, one Signal
// must still release the live plain waiter.
func TestSimAlertedThreadDoesNotAbsorbSignal(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		w, k := NewWorld(sim.Config{
			Procs: 3, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 500_000,
		})
		m := w.NewMutex()
		c := w.NewCondition()
		var ready sim.Word
		var alertee *sim.T
		alertee = k.Spawn("alertee", func(e *sim.Env) {
			m.Acquire(e)
			for e.Load(&ready) == 0 {
				if c.AlertWait(e, m) {
					break // alerted
				}
			}
			m.Release(e)
		})
		k.Spawn("live-waiter", func(e *sim.Env) {
			m.Acquire(e)
			for e.Load(&ready) == 0 {
				c.Wait(e, m)
			}
			m.Release(e)
		})
		k.Spawn("driver", func(e *sim.Env) {
			e.Work(500) // let both block
			w.Alert(e, alertee)
			e.Work(500) // let the alertee depart
			m.Acquire(e)
			e.Store(&ready, 1)
			m.Release(e)
			c.Signal(e) // must reach the live waiter
			// Defensive flush for schedules where the alertee raced.
			for i := 0; i < 10; i++ {
				e.Work(200)
				c.Broadcast(e)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v (signal absorbed by departed thread?)", seed, err)
		}
	}
}

func TestSimAlertPRaisesAndLeavesSemaphoreUntouched(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 2, MaxSteps: 200_000})
	s := w.NewSemaphore()
	var gotAlert bool
	var target *sim.T
	target = k.Spawn("waiter", func(e *sim.Env) {
		s.P(e) // make it unavailable so AlertP blocks
		gotAlert = s.AlertP(e)
	})
	k.Spawn("alerter", func(e *sim.Env) {
		e.Work(200)
		w.Alert(e, target)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotAlert {
		t.Fatal("AlertP did not report the alert")
	}
	if s.Available() {
		t.Fatal("AlertP's Alerted path changed the semaphore (UNCHANGED [s] violated)")
	}
}

func TestSimTestAlert(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 2, MaxSteps: 100_000})
	var results []bool
	var target *sim.T
	target = k.Spawn("t", func(e *sim.Env) {
		e.Work(500) // wait for the alert to arrive
		results = append(results, w.TestAlert(e), w.TestAlert(e))
	})
	k.Spawn("alerter", func(e *sim.Env) {
		w.Alert(e, target)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !results[0] || results[1] {
		t.Fatalf("TestAlert sequence = %v, want [true false]", results)
	}
}

// TestSimFastPathAvoidsNub (E2 shape): a single thread's operations never
// enter the Nub; heavy contention does.
func TestSimFastPathAvoidsNub(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 1})
	m := w.NewMutex()
	k.Spawn("solo", func(e *sim.Env) {
		for i := 0; i < 100; i++ {
			m.Acquire(e)
			m.Release(e)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Stats.AcquireNub != 0 || w.Stats.ReleaseNub != 0 {
		t.Fatalf("uncontended run entered the Nub: %+v", w.Stats)
	}
	if w.Stats.AcquireFast != 100 || w.Stats.ReleaseFast != 100 {
		t.Fatalf("fast-path counts wrong: %+v", w.Stats)
	}

	w2, k2 := NewWorld(sim.Config{Procs: 4, Seed: 1, Policy: sim.PolicyRandom, MaxSteps: 2_000_000})
	m2 := w2.NewMutex()
	for i := 0; i < 4; i++ {
		k2.Spawn("", func(e *sim.Env) {
			for n := 0; n < 50; n++ {
				m2.Acquire(e)
				e.Work(20) // long critical section forces contention
				m2.Release(e)
			}
		})
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if w2.Stats.AcquireNub == 0 {
		t.Fatal("contended run never entered the Nub")
	}
}

// TestCoroutineSingleProcessor: the paper's other implementation "runs
// within any single process on a normal Unix system ... using a co-routine
// mechanism for blocking one thread and resuming another." With one
// simulated processor the kernel is exactly that coroutine scheduler, and
// every protocol must still work.
func TestCoroutineSingleProcessor(t *testing.T) {
	w, k := NewWorld(sim.Config{Procs: 1, Quantum: 50, MaxSteps: 5_000_000})
	m := w.NewMutex()
	c := w.NewCondition()
	s := w.NewSemaphore()
	var queue, handled sim.Word
	const items = 40
	k.Spawn("producer", func(e *sim.Env) {
		for i := 0; i < items; i++ {
			m.Acquire(e)
			e.Add(&queue, 1)
			m.Release(e)
			c.Signal(e)
		}
	})
	k.Spawn("consumer", func(e *sim.Env) {
		for got := 0; got < items; got++ {
			m.Acquire(e)
			for e.Load(&queue) == 0 {
				c.Wait(e, m)
			}
			e.Add(&queue, ^uint64(0))
			m.Release(e)
		}
		s.V(e) // hand off to the semaphore waiter below
	})
	k.Spawn("sem-waiter", func(e *sim.Env) {
		s.P(e) // initial availability
		s.P(e) // waits for the consumer's V
		e.Add(&handled, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled.Peek() != 1 {
		t.Fatal("semaphore hand-off failed under coroutine scheduling")
	}
}
