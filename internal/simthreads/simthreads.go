// Package simthreads is the paper's Firefly implementation of the Threads
// synchronization primitives, reproduced instruction-for-instruction on the
// internal/sim multiprocessor.
//
// Layering follows §Implementation of SRC Report 20 exactly:
//
//   - User code runs in the calling thread and handles the cases where no
//     one blocks or wakes: Acquire is test-and-set + branch (2
//     instructions), Release is clear + queue test + branch (3
//     instructions) — 5 instructions for the uncontended pair, 10 µs at the
//     MicroVAX II's 2 µs/instruction (experiment E1).
//
//   - Nub code runs under a single global spin lock (one shared bit,
//     acquired by busy-waiting test-and-set). Nub subroutines maintain the
//     queues of threads blocked by Acquire, Wait and P, deschedule threads,
//     and move woken threads to the simulator's ready pool. Nub critical
//     sections run non-preemptible, as kernel code did on the Firefly.
//
// A mutex is (lock bit, queue); a semaphore is identical. A condition
// variable is (eventcount, queue): Wait reads the eventcount, releases the
// mutex, and calls Block(c, i), which under the spin lock compares i with
// the count and either returns (a Signal or Broadcast intervened — this is
// how one Signal can unblock several racing threads, experiment E3) or
// deschedules the caller. The eventcount, not a semaphore bit, is what lets
// Broadcast release arbitrarily many threads caught in the wakeup-waiting
// window (experiments E4, E5).
//
// When a World is traced, every primitive emits a spec-level action at its
// linearization point (always inside the spin lock, or at the fast-path
// atomic instruction), so internal/trace can replay the run against the
// formal specification (experiment E9).
package simthreads

import (
	"threads/internal/sim"
	"threads/internal/spec"
)

// instruction costs of the non-memory parts of the user code, calibrated so
// the uncontended Acquire-Release pair is the paper's 5 instructions.
const (
	branchCost  = 1 // conditional branch after a test
	callCost    = 2 // calling into a Nub subroutine
	queueOpCost = 2 // linking/unlinking a queue element
)

// World ties a set of primitives to one simulated machine and carries the
// per-thread synchronization state (alert flags, wake reasons).
type World struct {
	k *Kernel
	// nub is the global spin-lock bit protecting all Nub data structures.
	nub sim.Word
	// states maps each simulated thread to its synchronization state.
	states map[*sim.T]*tstate
	// traced enables spec-action emission.
	traced bool
	// ids hands out spec-level object identities for tracing.
	nextMutex spec.MutexID
	nextCond  spec.CondID
	nextSem   spec.SemID
	// stats mirror the contention counters of internal/core.
	Stats Stats
	// opts disables optimizations for the ablation experiments.
	opts WorldOptions
	// queues registers every thread queue for state digests, and the
	// nGates/nConds counters allocate emission-scope bits (see digest.go).
	// gates lists every gate so digests can fold the priority-inheritance
	// holder hints.
	queues []*tqueue
	gates  []*gate
	nGates int
	nConds int
}

// Kernel is re-exported so callers need only import simthreads for common
// use.
type Kernel = sim.Kernel

// Stats counts fast-path and Nub-path executions in the simulated world.
type Stats struct {
	AcquireFast, AcquireNub, AcquirePark uint64
	ReleaseFast, ReleaseNub              uint64
	ReleaseHandoff                       uint64
	WaitElided, WaitPark                 uint64
	SignalFast, SignalNub, SignalWoke    uint64
	BcastFast, BcastNub, BcastWoke       uint64
}

// tstate is one thread's synchronization state, protected by the Nub spin
// lock (except alerted's pending-read in user code, which is racy in the
// same benign way the real flag read is).
type tstate struct {
	id       spec.ThreadID
	alerted  bool
	wakeup   wakeReason
	alertTgt *alertTarget // non-nil while blocked alertably
	// handoffEmit is the blocked acquisition's linearization-point action,
	// stashed (under the Nub spin lock, before descheduling) so a direct
	// hand-off can run it in the RELEASER's slice: the release and the
	// recipient's acquisition are then adjacent in the emitted history,
	// exactly as the transfer makes them adjacent in the abstract state.
	// Emitting at the recipient's wakeup instead would let a concurrent
	// V+P pair overtake the recorded order and fail conformance.
	handoffEmit func()
	// basePri and donations implement priority inheritance (priority.go):
	// the thread's effective priority — what the kernel schedules by — is
	// max(basePri, donations values). basePri is captured at first contact,
	// before any donation can have landed.
	basePri   int
	donations map[int]int // gate queue id -> donated priority
}

type wakeReason int

const (
	wakeNone     wakeReason = iota
	wakeTransfer            // woken by Release/V/Signal/Broadcast
	wakeAlert               // woken by Alert
	wakeHandoff             // woken holding: the releaser transferred the gate
)

// alertTarget records where an alertably-blocked thread can be found so
// Alert can remove it; q is the queue it sleeps on.
type alertTarget struct {
	q *tqueue
}

// tqueue is a FIFO of simulated threads, manipulated only under the Nub
// spin lock; each operation charges queueOpCost instructions. The id
// names the queue in state digests (see digest.go).
type tqueue struct {
	id    int
	items []*sim.T
}

func (q *tqueue) push(e *sim.Env, t *sim.T) {
	e.Work(queueOpCost)
	q.items = append(q.items, t)
}

func (q *tqueue) pop(e *sim.Env) *sim.T {
	e.Work(queueOpCost)
	if len(q.items) == 0 {
		return nil
	}
	// The Nub "does priority scheduling": the most urgent waiter leaves
	// first, FIFO within a band. The scan keeps the first of equals, so
	// priority-free programs dequeue exactly as the plain FIFO did.
	best := 0
	for i := 1; i < len(q.items); i++ {
		if q.items[i].Priority() > q.items[best].Priority() {
			best = i
		}
	}
	t := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	return t
}

func (q *tqueue) remove(e *sim.Env, t *sim.T) bool {
	e.Work(queueOpCost)
	for i, x := range q.items {
		if x == t {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

func (q *tqueue) empty() bool { return len(q.items) == 0 }

// NewWorld creates a World over a fresh kernel built from cfg.
func NewWorld(cfg sim.Config) (*World, *Kernel) {
	k := sim.NewKernel(cfg)
	w := &World{
		k:      k,
		states: make(map[*sim.T]*tstate),
		traced: cfg.Trace != nil,
	}
	// Anything may be emitted under the Nub spin lock, so its word carries
	// every scope bit; the digester folds queue and tstate contents into
	// explorer state fingerprints.
	k.SetWordScope(&w.nub, ^uint64(0))
	k.AddDigester(w.digest)
	return w, k
}

// state returns (creating on demand) the synchronization state of t.
// Creation is safe anywhere: the simulator serializes all execution.
func (w *World) state(t *sim.T) *tstate {
	st, ok := w.states[t]
	if !ok {
		// spec IDs are 1-based; 0 is NIL. basePri is the thread's priority
		// at first contact: no donation can target a thread before it has a
		// tstate, so the current priority is the undonated base.
		st = &tstate{id: spec.ThreadID(t.ID() + 1), basePri: t.Priority()}
		w.states[t] = st
	}
	return st
}

// SpecID returns the spec-level thread id used in emitted actions.
func (w *World) SpecID(t *sim.T) spec.ThreadID { return w.state(t).id }

// nubLock busy-waits on the global spin-lock bit and disables preemption
// for the critical section, mirroring kernel-mode execution. Under
// WorldOptions.NubAwait the busy-wait is replaced by a blocking await with
// identical semantics (see the option's comment).
func (w *World) nubLock(e *sim.Env) {
	if w.opts.NubAwait {
		e.TASAwait(&w.nub)
	} else {
		for e.TAS(&w.nub) != 0 {
			// spin: each iteration is one TAS instruction
		}
	}
	e.SetPreemptible(false)
}

func (w *World) nubUnlock(e *sim.Env) {
	e.SetPreemptible(true)
	e.Store(&w.nub, 0)
}

func (w *World) emit(e *sim.Env, a spec.Action) {
	if w.traced {
		e.Emit(a)
	}
}
