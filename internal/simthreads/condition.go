package simthreads

import (
	"strconv"

	"threads/internal/sim"
	"threads/internal/spec"
)

// Condition is the simulated condition variable: an (eventcount, queue)
// pair, per §Implementation of the paper.
type Condition struct {
	w  *World
	id spec.CondID
	// ec is the eventcount: an atomically-readable, monotonically
	// increasing counter (Reed 77).
	ec sim.Word
	// committed counts threads that have entered the Wait protocol; the
	// user code of Signal/Broadcast tests it to avoid Nub calls.
	committed sim.Word
	q         tqueue
}

// NewCondition creates a condition variable (INITIALLY {}).
func (w *World) NewCondition() *Condition {
	w.nextCond++
	c := &Condition{w: w, id: w.nextCond}
	w.registerCond(c)
	return c
}

// ID returns the spec-level identity used in emitted actions.
func (c *Condition) ID() spec.CondID { return c.id }

// Wait atomically leaves m's critical section and suspends the caller on c;
// it returns inside a new critical section on m. The user code follows the
// paper: read the eventcount, Release(m), call the Nub's Block(c, i),
// Acquire(m).
func (c *Condition) Wait(e *sim.Env, m *Mutex) {
	self := c.w.state(e.Self()).id
	// Committing to the wait is the Enqueue linearization: the counter
	// increment is the last instruction after which a Signal is obliged
	// to consider us waiting.
	e.Add(&c.committed, 1)
	c.w.emit(e, spec.Enqueue{T: self, M: m.id, C: c.id})
	i := e.Load(&c.ec)
	m.releaseSilent(e)
	c.block(e, i, "Wait(c"+strconv.Itoa(int(c.id))+")")
	e.Add(&c.committed, ^uint64(0)) // -1
	m.acquireSilent(e, func() {
		c.w.emit(e, spec.Resume{T: self, M: m.id, C: c.id})
	})
}

// block is the Nub's Block(c, i): under the spin lock, compare i with the
// eventcount; if they differ a Signal or Broadcast intervened and Block
// just returns, otherwise the thread is queued and descheduled.
func (c *Condition) block(e *sim.Env, i uint64, reason string) {
	w := c.w
	self := e.Self()
	st := w.state(self)
	e.Work(callCost)
	w.nubLock(e)
	if e.Load(&c.ec) != i {
		w.nubUnlock(e)
		w.Stats.WaitElided++
		return
	}
	c.q.push(e, self)
	w.nubUnlock(e)
	w.Stats.WaitPark++
	e.Deschedule(reason)
	st.wakeup = wakeNone
}

// blockAlertable is block for AlertWait; it reports whether the wait ended
// with an alert.
func (c *Condition) blockAlertable(e *sim.Env, i uint64, reason string) (alerted bool) {
	w := c.w
	self := e.Self()
	st := w.state(self)
	e.Work(callCost)
	w.nubLock(e)
	if st.alerted {
		// Pending alert: the RAISES WHEN clause already holds; skip the
		// queue entirely. (The alert flag is consumed at the
		// AlertResume linearization, in the caller.)
		w.nubUnlock(e)
		return true
	}
	if e.Load(&c.ec) != i {
		w.nubUnlock(e)
		w.Stats.WaitElided++
		return false
	}
	c.q.push(e, self)
	st.alertTgt = &alertTarget{q: &c.q}
	w.nubUnlock(e)
	w.Stats.WaitPark++
	e.Deschedule(reason)
	w.nubLock(e)
	woke := st.wakeup
	st.wakeup = wakeNone
	st.alertTgt = nil
	if woke == wakeAlert {
		// The corrected AlertWait semantics: leave c before raising, so
		// a later Signal is not absorbed by this departed thread.
		c.q.remove(e, self)
	}
	w.nubUnlock(e)
	return woke == wakeAlert
}

// Signal makes one waiting thread ready, if any thread is committed to
// waiting; threads racing between the eventcount read and Block are
// released as well (they observe the advanced count), which is why Signal
// may unblock more than one thread (experiment E3).
func (c *Condition) Signal(e *sim.Env) {
	w := c.w
	// User code: no Nub call when no thread is committed to waiting.
	if !w.opts.NoSignalFastPath {
		if e.Load(&c.committed) == 0 {
			e.Work(branchCost)
			w.Stats.SignalFast++
			return
		}
		e.Work(branchCost)
	}
	w.Stats.SignalNub++
	e.Work(callCost)
	w.nubLock(e)
	e.Add(&c.ec, 1)
	self := w.state(e.Self()).id
	var woken *sim.T
	for {
		t := c.q.pop(e)
		if t == nil {
			break
		}
		st := w.state(t)
		if st.wakeup == wakeNone {
			st.wakeup = wakeTransfer
			woken = t
			break
		}
		// Claimed by Alert; its wakeup belongs to the next thread.
	}
	var removed []spec.ThreadID
	if woken != nil {
		removed = []spec.ThreadID{w.state(woken).id}
	}
	w.emit(e, spec.Signal{T: self, C: c.id, Removed: removed})
	if woken != nil {
		e.MakeReady(woken)
		w.Stats.SignalWoke++
	}
	w.nubUnlock(e)
}

// Broadcast makes all waiting threads ready.
func (c *Condition) Broadcast(e *sim.Env) {
	w := c.w
	if !w.opts.NoSignalFastPath {
		if e.Load(&c.committed) == 0 {
			e.Work(branchCost)
			w.Stats.BcastFast++
			return
		}
		e.Work(branchCost)
	}
	w.Stats.BcastNub++
	e.Work(callCost)
	w.nubLock(e)
	e.Add(&c.ec, 1)
	self := w.state(e.Self()).id
	var woken []*sim.T
	for {
		t := c.q.pop(e)
		if t == nil {
			break
		}
		st := w.state(t)
		if st.wakeup == wakeNone {
			st.wakeup = wakeTransfer
			woken = append(woken, t)
		}
	}
	w.emit(e, spec.Broadcast{T: self, C: c.id})
	for _, t := range woken {
		e.MakeReady(t)
		w.Stats.BcastWoke++
	}
	w.nubUnlock(e)
}

// AlertWait is Wait, except it reports true (Alerted) if the wait was ended
// by Alert; in that case the thread was removed from c, the alert was
// consumed, and the mutex was still reacquired before returning.
func (c *Condition) AlertWait(e *sim.Env, m *Mutex) (alerted bool) {
	self := c.w.state(e.Self()).id
	e.Add(&c.committed, 1)
	c.w.emit(e, spec.Enqueue{T: self, M: m.id, C: c.id})
	i := e.Load(&c.ec)
	m.releaseSilent(e)
	alerted = c.blockAlertable(e, i, "AlertWait(c"+strconv.Itoa(int(c.id))+")")
	e.Add(&c.committed, ^uint64(0))
	st := c.w.state(e.Self())
	if alerted && c.w.opts.BuggyAlertSeize {
		// The first released specification's Raise path (VariantNoMNil):
		// no "m = NIL &" guard, so the alerted thread returns — believing
		// it holds m — without waiting for the holder. It barges into the
		// guarded region, and its later Release clears a lock bit it
		// never owned.
		st.alerted = false
		c.w.emit(e, spec.AlertResumeRaise{T: self, M: m.id, C: c.id, Variant: spec.VariantNoMNil})
		e.Work(branchCost)
		return true
	}
	m.acquireSilent(e, func() {
		if alerted {
			st.alerted = false
			c.w.emit(e, spec.AlertResumeRaise{T: self, M: m.id, C: c.id, Variant: spec.VariantFinal})
		} else {
			c.w.emit(e, spec.AlertResumeReturn{T: self, M: m.id, C: c.id})
		}
	})
	return alerted
}

// Waiters reports the queue length without simulating accesses (assertions
// and reporting only).
func (c *Condition) Waiters() int { return len(c.q.items) }
