package simthreads

import "threads/internal/sim"

// This file is the simthreads side of the explorer contract (see
// internal/sim/footprint.go and DESIGN.md "Independence and state
// fingerprints"):
//
//   - every shared word a primitive owns is registered with an
//     emission-scope mask, so the explorer knows which steps may emit
//     spec actions on which objects and never commutes two steps whose
//     event order the conformance checker could observe;
//   - a digester folds the state the kernel cannot see — thread queues and
//     per-thread Nub state — into state fingerprints, so the explorer's
//     cache never identifies two machine states that differ in queued
//     waiters or pending wake reasons.
//
// Scope masks: bit 0 is unused; bits 1..31 name individual gates (mutexes
// and semaphores), bits 32..62 name individual conditions. A condition's
// words additionally carry the whole gate band, because condition windows
// emit actions naming a mutex (Wait's Enqueue, AlertWait's Raise). The Nub
// spin-lock word carries all bits: anything can be emitted under it. If a
// world ever outgrows the bands, later primitives degrade to the full mask
// — pruning weakens, soundness does not.

const gateScopeBand = (uint64(1)<<32 - 1) &^ 1 // bits 1..31

// registerGate gives a gate's words their scope mask and its queue a
// digest identity.
func (w *World) registerGate(g *gate) {
	w.gates = append(w.gates, g)
	w.nGates++
	scope := ^uint64(0)
	if w.nGates <= 31 {
		scope = 1 << w.nGates
	}
	w.k.SetWordScope(&g.lockBit, scope)
	w.k.SetWordScope(&g.qne, scope)
	w.registerQueue(&g.q)
}

// registerCond gives a condition's words their scope mask (own bit plus
// the whole gate band) and its queue a digest identity.
func (w *World) registerCond(c *Condition) {
	w.nConds++
	scope := ^uint64(0)
	if w.nConds <= 31 {
		scope = 1<<(31+w.nConds) | gateScopeBand
	}
	w.k.SetWordScope(&c.ec, scope)
	w.k.SetWordScope(&c.committed, scope)
	w.registerQueue(&c.q)
}

func (w *World) registerQueue(q *tqueue) {
	q.id = len(w.queues) + 1
	w.queues = append(w.queues, q)
}

// digest folds World state invisible to the kernel into a fingerprint:
// queue contents in order, and each thread's alert flag, wake reason,
// alertable-block target and stashed hand-off emission. Iteration orders
// are structural (creation order, thread-ID order), never map order.
func (w *World) digest(h *sim.Hash128) {
	for _, q := range w.queues {
		h.Add(0xa5a5<<16 | uint64(q.id))
		for _, t := range q.items {
			h.Add(uint64(t.ID()) + 1)
		}
	}
	for _, g := range w.gates {
		// The holder hint steers future donations, so two states differing
		// only in it must not be identified.
		if g.holder != nil {
			h.Add(0xb0b0<<16 | uint64(g.holder.ID()) + 1)
		} else {
			h.Add(0xb0b0 << 16)
		}
	}
	for _, t := range w.k.Threads() {
		// Effective priority orders the ready pool and the gate queues.
		h.Add(0x9d9d<<32 | uint64(uint32(int32(t.Priority()))))
		st, ok := w.states[t]
		if !ok {
			h.Add(0)
			continue
		}
		f := uint64(1)
		if st.alerted {
			f |= 2
		}
		f |= uint64(st.wakeup) << 2
		if st.alertTgt != nil {
			f |= uint64(st.alertTgt.q.id) << 8
		}
		if st.handoffEmit != nil {
			f |= 1 << 32
		}
		h.Add(f)
		// Donations, in gate-queue registration order (never map order).
		for _, q := range w.queues {
			if d, ok := st.donations[q.id]; ok {
				h.Add(0xd0d0<<32 | uint64(q.id)<<16 | uint64(uint16(int16(d))))
			}
		}
	}
}
