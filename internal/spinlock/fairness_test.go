package spinlock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withQueued runs f with the package-wide queued mode set, restoring the
// previous mode afterwards. Tests that toggle the mode must not run in
// parallel with each other (they don't: Go runs tests in one package
// sequentially unless t.Parallel is called).
func withQueued(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := SetQueued(on)
	defer SetQueued(prev)
	f()
}

// TestMCSMutualExclusion is the basic safety check in queued mode: no two
// goroutines inside the critical section at once, no lost update.
func TestMCSMutualExclusion(t *testing.T) {
	withQueued(t, true, func() {
		var l Lock
		var counter int // deliberately non-atomic: the lock must protect it
		var inCS atomic.Int32
		const goroutines, iters = 8, 2000
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					l.Lock()
					if inCS.Add(1) != 1 {
						t.Error("two goroutines inside the MCS critical section")
					}
					counter++
					inCS.Add(-1)
					l.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != goroutines*iters {
			t.Fatalf("lost update under MCS: counter = %d, want %d", counter, goroutines*iters)
		}
		if l.Held() {
			t.Fatal("lock still held after all goroutines finished")
		}
	})
}

// TestMCSTryLock checks the empty-queue-only TryLock in queued mode.
func TestMCSTryLock(t *testing.T) {
	withQueued(t, true, func() {
		var l Lock
		if !l.TryLock() {
			t.Fatal("TryLock failed on a free MCS lock")
		}
		if l.TryLock() {
			t.Fatal("TryLock succeeded on a held MCS lock")
		}
		l.Unlock()
		if !l.TryLock() {
			t.Fatal("TryLock failed after Unlock")
		}
		l.Unlock()
	})
}

// TestMCSModeSwitchMidHold releases correctly when the mode flag flips
// between an acquire and its release: Unlock dispatches on how the lock was
// acquired, not on the current mode.
func TestMCSModeSwitchMidHold(t *testing.T) {
	prev := SetQueued(true)
	defer SetQueued(prev)
	var l Lock
	l.Lock() // MCS acquisition
	SetQueued(false)
	l.Unlock() // must go down the MCS release path
	if l.Held() {
		t.Fatal("lock held after cross-mode Unlock")
	}
	l.Lock() // TAS acquisition
	SetQueued(true)
	l.Unlock()
	if l.Held() {
		t.Fatal("lock held after cross-mode Unlock (TAS→MCS)")
	}
}

// acquisitionCounts runs one "pinned" spinner and n-1 contenders hammering
// the same lock for the given duration and returns each goroutine's
// acquisition count (index 0 is the pinned spinner). The pinned spinner
// re-acquires immediately with no pause between its critical sections — the
// adversarial pattern under which a TAS lock, whose hand-off goes to
// whichever processor wins the next bus transaction (usually the one that
// just released, with the line still exclusive in its cache), can starve
// everyone else indefinitely.
func acquisitionCounts(n int, d time.Duration) []uint64 {
	var l Lock
	counts := make([]uint64, n)
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for !stop.Load() {
				l.Lock()
				counts[g]++
				l.Unlock()
				if g != 0 {
					// Contenders do a little work outside the critical
					// section; the pinned spinner (g = 0) does not.
					Pause(pauseIters)
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return counts
}

// TestMCSFairness is the starvation test the TAS lock cannot pass in
// general: with one goroutine re-acquiring in a tight loop, every contender
// must still make progress, and under MCS's FIFO hand-off no goroutine can
// be served disproportionately — each acquisition waits behind every
// earlier arrival exactly once.
//
// The assertion is deliberately loose (every goroutine acquires at least
// once, and the pinned spinner cannot take essentially the whole lock) so
// scheduler noise cannot flake it; TAS runs on a single line routinely give
// the spinner >99.9% of acquisitions, two orders of magnitude past the
// bound.
func TestMCSFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based stress test")
	}
	withQueued(t, true, func() {
		n := runtime.GOMAXPROCS(0) + 2 // oversubscribe: hand-off must tolerate descheduled successors
		counts := acquisitionCounts(n, 200*time.Millisecond)
		var total, min uint64
		min = ^uint64(0)
		for _, c := range counts {
			total += c
			if c < min {
				min = c
			}
		}
		if min == 0 {
			t.Fatalf("a contender was starved outright under MCS: counts = %v", counts)
		}
		if frac := float64(counts[0]) / float64(total); frac > 0.90 {
			t.Fatalf("pinned spinner took %.1f%% of %d acquisitions under MCS (counts = %v)",
				frac*100, total, counts)
		}
	})
}

// TestTASProgress documents what the TAS lock does guarantee (and all it
// guarantees): someone always makes progress. No per-goroutine fairness is
// asserted — the unfairness is the motivation for the MCS mode, and E16
// measures it rather than asserting it, since on a lightly loaded machine
// the Go scheduler's preemption can accidentally rescue the contenders.
func TestTASProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based stress test")
	}
	withQueued(t, false, func() {
		counts := acquisitionCounts(4, 50*time.Millisecond)
		var total uint64
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			t.Fatalf("no acquisitions at all under TAS: counts = %v", counts)
		}
	})
}
