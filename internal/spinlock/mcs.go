package spinlock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Queued-lock mode. The paper's spin lock is a single globally shared bit,
// and under heavy contention that bit becomes a cache-line storm: every
// waiter's test-and-set invalidates every other waiter's copy of the line,
// and the hand-off goes to whichever processor wins the next bus
// transaction — unbounded unfairness (the process-algebra analysis of
// mutual exclusion by signals makes the same observation abstractly). The
// MCS lock (Mellor-Crummey & Scott) fixes both: each waiter spins on a flag
// in its own queue node, so the only cross-processor traffic is the single
// hand-off store, and waiters are served in strict arrival (FIFO) order.
//
// The mode is selected for the whole package: the Nub's spin locks (gate,
// condition, thread registry) all share the choice, exactly as the paper's
// single lock discipline would. MCS was chosen over CLH because an MCS
// Unlock with no successor restores tail to nil, which keeps TryLock a
// single compare-and-swap; a CLH TryLock must install a fresh node and
// leaves the old tail reachable, an ABA hazard under node reuse.

// queued selects the MCS algorithm for all Locks. It must only be toggled
// while every Lock is quiescent (no holder, no waiter): the two algorithms
// use disjoint state, so a lock acquired in one mode must be released
// before the mode changes. Unlock itself dispatches on how the lock was
// acquired, so a release in flight across the toggle stays correct.
var queued atomic.Bool

// SetQueued selects (true) or deselects (false) the MCS queued lock for
// every Lock in the process and returns the previous setting. Callers must
// quiesce all locks first; the intended use is configuration at startup
// (threadsbench -nublock=mcs) or between benchmark phases.
func SetQueued(on bool) bool { return queued.Swap(on) }

// Queued reports whether the MCS queued mode is selected.
func Queued() bool { return queued.Load() }

// qnode is one waiter's private spin flag plus the queue link. Nodes are
// cache-line padded so two waiters never spin on the same line — the whole
// point of the queued lock.
type qnode struct {
	next   atomic.Pointer[qnode]
	locked atomic.Uint32
	_      [64 - 8 - 4]byte
}

var qnodePool = sync.Pool{New: func() any { return new(qnode) }}

// lockMCS acquires the lock by appending a node to the tail and spinning on
// the node's private flag until the predecessor hands off.
func (l *Lock) lockMCS() {
	n := qnodePool.Get().(*qnode)
	n.next.Store(nil)
	n.locked.Store(1)
	prev := l.tail.Swap(n)
	if prev != nil {
		l.contention.Add(1)
		prev.next.Store(n)
		spins := 0
		for n.locked.Load() != 0 {
			// Local spinning: this flag lives in our own node's cache
			// line; the only writer is the predecessor's hand-off store.
			// The yield escalation mirrors the TAS loop — on the Go
			// runtime the predecessor may be descheduled, and strict FIFO
			// hand-off makes waiting for it mandatory.
			spins++
			if spins > activeSpin {
				runtime.Gosched()
			} else {
				Pause(pauseIters)
			}
		}
	}
	l.holder = n
}

// tryLockMCS acquires only if the queue is empty. Unlock restores tail to
// nil when there is no successor, so an empty queue really is the unlocked
// state (this is what MCS has over CLH).
func (l *Lock) tryLockMCS() bool {
	n := qnodePool.Get().(*qnode)
	n.next.Store(nil)
	n.locked.Store(1)
	if l.tail.CompareAndSwap(nil, n) {
		l.holder = n
		return true
	}
	qnodePool.Put(n)
	return false
}

// unlockMCS hands the lock to the successor, or restores tail to nil if
// none. The holder's node returns to the pool only once no other processor
// can reach it: after the tail CAS succeeds (nobody saw the node), or after
// the successor link is read (the successor's last touch of our node was
// writing that link).
func (l *Lock) unlockMCS(n *qnode) {
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			qnodePool.Put(n)
			return
		}
		// A waiter swapped itself onto the tail but has not linked yet;
		// the link write is a few instructions away.
		for {
			if next = n.next.Load(); next != nil {
				break
			}
			Pause(pauseIters)
		}
	}
	next.locked.Store(0)
	qnodePool.Put(n)
}
