package spinlock

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestLockUnlock(t *testing.T) {
	var l Lock
	l.Lock()
	if !l.Held() {
		t.Fatal("lock should be held after Lock")
	}
	l.Unlock()
	if l.Held() {
		t.Fatal("lock should not be held after Unlock")
	}
}

func TestTryLock(t *testing.T) {
	var l Lock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock should succeed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock should fail")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock should succeed")
	}
	l.Unlock()
}

// TestMutualExclusion hammers a shared counter from many goroutines; any
// exclusion failure shows up as a lost increment.
func TestMutualExclusion(t *testing.T) {
	const (
		goroutines = 8
		iters      = 20000
	)
	var (
		l       Lock
		counter int
		wg      sync.WaitGroup
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("lost updates: got %d, want %d", counter, goroutines*iters)
	}
}

// TestCriticalSectionOverlap verifies directly that two critical sections
// never overlap, using an inside flag rather than counter arithmetic.
func TestCriticalSectionOverlap(t *testing.T) {
	var (
		l      Lock
		inside int32
		wg     sync.WaitGroup
	)
	fail := make(chan struct{}, 1)
	wg.Add(4)
	for g := 0; g < 4; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				l.Lock()
				inside++
				if inside != 1 {
					select {
					case fail <- struct{}{}:
					default:
					}
				}
				inside--
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	select {
	case <-fail:
		t.Fatal("two goroutines were inside the critical section at once")
	default:
	}
}

func TestContentionCounter(t *testing.T) {
	var l Lock
	l.Lock()
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	// Give the contender time to fail its first test-and-set.
	for i := 0; l.Contention() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if l.Contention() == 0 {
		t.Fatal("contention counter never incremented while lock was held")
	}
	l.Unlock()
	<-done
}

func TestZeroValueIsUnlocked(t *testing.T) {
	var l Lock
	if l.Held() {
		t.Fatal("zero-value lock reports held")
	}
	if !l.TryLock() {
		t.Fatal("zero-value lock cannot be acquired")
	}
	l.Unlock()
}

// TestHolderProgress checks that a spinner does not permanently starve the
// holder on a single-processor configuration (the Gosched in the spin loop).
func TestHolderProgress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var l Lock
	l.Lock()
	released := make(chan struct{})
	go func() {
		l.Lock() // spins until main releases
		l.Unlock()
		close(released)
	}()
	// Let the spinner get going, then release on the same processor.
	time.Sleep(5 * time.Millisecond)
	l.Unlock()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("spinner never acquired the lock after release (livelock)")
	}
}
