// Package spinlock implements the primitive mutual-exclusion mechanism the
// paper's Nub subroutines execute under: a test-and-set spin lock.
//
// The paper (SRC Report 20, §Implementation) describes it as "a globally
// shared bit: it is acquired by a processor busy-waiting in a test-and-set
// loop; it is released by clearing the bit". On the Go runtime a pure
// busy-wait can starve the holder of a CPU, so the loop yields to the
// scheduler with exponentially increasing eagerness; the observable
// semantics (mutual exclusion, no queuing, no fairness guarantee) are those
// of the hardware spin lock.
package spinlock

import (
	"runtime"
	"sync/atomic"
)

// Lock is a spin lock. The zero value is an unlocked Lock. A Lock must not
// be copied after first use.
//
// Two algorithms share the type, selected process-wide by SetQueued: the
// paper's test-and-set loop on a shared bit (the default), and the MCS
// queued lock (mcs.go), under which each waiter spins on a private,
// cache-line-padded queue node and acquisitions are served FIFO. The
// observable semantics — mutual exclusion, Unlock by the holder only — are
// identical; what changes is the contention behavior the scaling sweep
// measures.
type Lock struct {
	bit atomic.Uint32
	// contention counts failed first test-and-set attempts (TAS mode) or
	// enqueues behind a predecessor (MCS mode); it feeds the contention
	// statistics the paper mentions collecting.
	contention atomic.Uint64
	// tail is the MCS queue tail; nil means unlocked in queued mode.
	tail atomic.Pointer[qnode]
	// holder is the acquiring node of the current MCS holder. It is
	// written only by the holder (set under the lock, cleared by Unlock
	// before the hand-off), so plain accesses are ordered by the lock's
	// own happens-before chain; non-holders never touch it. Unlock
	// dispatches on it, which keeps a release correct even if the mode
	// toggles between an acquire and its release.
	holder *qnode
}

// active spin iterations before the acquirer starts yielding its processor.
// On a multiprocessor the holder is usually running, so a short busy wait
// wins; past that, the holder is likely descheduled and spinning is waste.
const activeSpin = 16

// pauseIters is how much Pause delay one active-spin iteration inserts
// between observations of the lock bit.
const pauseIters = 8

// Lock acquires the spin lock, busy-waiting until the bit is clear (or, in
// queued mode, until the predecessor hands off).
func (l *Lock) Lock() {
	if queued.Load() {
		l.lockMCS()
		return
	}
	if l.bit.CompareAndSwap(0, 1) {
		return // the common, uncontended path: one test-and-set
	}
	l.contention.Add(1)
	for {
		// The spin budget resets every round: it measures how long the
		// *current* holder has kept us waiting. (Carrying it across
		// rounds meant one long first wait degraded every later round
		// to an immediate Gosched, even against holders that release
		// within a few cycles.)
		spins := 0
		// Test before test-and-set: spin on a plain load so the
		// cache line is not bounced by failed RMW operations.
		for l.bit.Load() != 0 {
			spins++
			if spins > activeSpin {
				runtime.Gosched()
			} else {
				Pause(pauseIters)
			}
		}
		if l.bit.CompareAndSwap(0, 1) {
			return
		}
	}
}

// pauseBeacon is always zero; reading it gives Pause a side effect the
// compiler cannot delete without the loop itself doing any shared-memory
// writes (which would defeat the point by bouncing a cache line).
var pauseBeacon atomic.Uint32

// Pause burns a few cycles off the processor's speculation budget between
// polls of a contended location — the software stand-in for the PAUSE /
// YIELD hint the hardware spin loop in the paper would use. Unlike
// runtime.Gosched it does not deschedule the caller.
func Pause(iters int) {
	for i := 0; i < iters; i++ {
		if pauseBeacon.Load() != 0 {
			runtime.Gosched() // unreachable; keeps the loop material
		}
	}
}

// TryLock acquires the lock if it is free and reports whether it did.
func (l *Lock) TryLock() bool {
	if queued.Load() {
		return l.tryLockMCS()
	}
	return l.bit.CompareAndSwap(0, 1)
}

// Unlock releases the spin lock. It must only be called by the holder; the
// lock does not record holding threads (just as the paper's mutex
// implementation records no holder), so misuse is not detected. The release
// path matches the acquire path: a non-nil holder node means this
// acquisition went through MCS, whatever the mode flag says now.
func (l *Lock) Unlock() {
	if n := l.holder; n != nil {
		l.holder = nil
		l.unlockMCS(n)
		return
	}
	l.bit.Store(0)
}

// Held reports whether the lock is currently held by some processor. It is
// advisory: the answer may be stale by the time the caller inspects it.
func (l *Lock) Held() bool {
	return l.bit.Load() != 0 || l.tail.Load() != nil
}

// Contention returns the number of Lock calls that did not succeed on their
// first test-and-set.
func (l *Lock) Contention() uint64 {
	return l.contention.Load()
}
