package checker

import (
	"fmt"

	"threads/internal/sim"
	"threads/internal/simthreads"
)

// simDeadline is the deadline/completion race in virtual time: an owner
// whose first wait carries a deadline (a DeadlineTimer fired by a dedicated
// timer thread — the explored position of that one step IS the firing
// time), a signaler that satisfies both of the owner's waits, and a second,
// deadline-less alertable wait that detects poisoning. The owner's epilogue
// is CancelAndDrain, the construction core's deadline variants use; with
// broken=true it is CancelBroken — the timer.Stop-with-no-drain pattern —
// and the schedule that fires the timer after the first wait is satisfied
// leaks the alert into the second wait (the violation the broken litmus
// expects exploration to find).
func simDeadline(broken bool) SimProgram {
	return SimProgram{
		Procs: 3,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			c := w.NewCondition()
			dt := w.NewDeadlineTimer()
			// stage advances 0→1→2 as the signaler ends each of the
			// owner's waits; the detectors record outcomes.
			var stage, wait1Alerted, fired, poisoned sim.Word
			owner := k.Spawn("owner", func(e *sim.Env) {
				m.Acquire(e)
				// First wait, with a deadline: ended by the signaler
				// (stage 1) or by the timer's alert.
				for e.Load(&stage) == 0 {
					if c.AlertWait(e, m) {
						e.Store(&wait1Alerted, 1)
						break
					}
				}
				if broken {
					// The buggy epilogue: Stop without draining. Whether
					// the timer already fired is unknowable here — that is
					// the bug.
					dt.CancelBroken(e)
				} else if dt.CancelAndDrain(e) {
					e.Store(&fired, 1)
				}
				// Second wait, no deadline: only the signaler may end it.
				// An Alerted return here is the stale alert leaking in.
				for e.Load(&stage) < 2 {
					if c.AlertWait(e, m) {
						e.Store(&poisoned, 1)
						break
					}
				}
				m.Release(e)
			})
			k.Spawn("signaler", func(e *sim.Env) {
				m.Acquire(e)
				e.Store(&stage, 1)
				m.Release(e)
				c.Broadcast(e)
				m.Acquire(e)
				e.Store(&stage, 2)
				m.Release(e)
				c.Broadcast(e)
			})
			k.Spawn("timer", func(e *sim.Env) {
				dt.Fire(e, owner)
			})
			return func() error {
				if poisoned.Peek() != 0 {
					return fmt.Errorf("stale deadline alert poisoned the second wait")
				}
				if !broken && wait1Alerted.Peek() != 0 && fired.Peek() == 0 {
					return fmt.Errorf("first wait alerted but the timer never fired (no other alerter exists)")
				}
				return nil
			}
		},
	}
}
