package checker

import (
	"testing"

	"threads/internal/analysis"
)

// TestPrimitiveRegistryClosed is the growth test: every registered
// primitive must be fully wired — a spec face, at least one litmus that
// resolves and gives it explorer coverage, and at least one threadsvet
// obligation naming a real analyzer — and conversely every litmus must be
// claimed by some primitive. A new derived primitive therefore cannot ship
// half-wired: adding it to Primitives() without a litmus fails here, and
// adding a litmus without declaring whose behavior it checks fails too.
func TestPrimitiveRegistryClosed(t *testing.T) {
	analyzers := make(map[string]bool)
	for _, a := range analysis.All() {
		analyzers[a.Name] = true
	}
	layers := map[string]bool{"paper": true, "internal": true, "derived": true}

	claimed := make(map[string]string) // litmus name -> claiming primitive
	seen := make(map[string]bool)
	for _, p := range Primitives() {
		if p.Name == "" {
			t.Fatal("primitive with empty name")
		}
		if seen[p.Name] {
			t.Errorf("%s: registered twice", p.Name)
		}
		seen[p.Name] = true
		if !layers[p.Layer] {
			t.Errorf("%s: unknown layer %q", p.Name, p.Layer)
		}
		if p.SpecFace == "" {
			t.Errorf("%s: no spec face", p.Name)
		}
		if len(p.Litmuses) == 0 {
			t.Errorf("%s: no litmus — the primitive has no explorer coverage", p.Name)
		}
		for _, name := range p.Litmuses {
			lit := LitmusByName(name)
			if lit == nil {
				t.Errorf("%s: litmus %q is not in the registry", p.Name, name)
				continue
			}
			// Explorer coverage means the sim face exists: the explorer
			// and both CI pipelines iterate Registry() and drive Sim.
			if lit.Sim.Build == nil || lit.Sim.Procs <= 0 {
				t.Errorf("%s: litmus %q has no sim face, so the explorer cannot cover it", p.Name, name)
			}
			if prev, dup := claimed[name]; dup && prev != p.Name {
				// Shared litmuses are fine (e.g. alert scenarios exercise
				// the condition too) but must be intentional; today each
				// litmus has one owning primitive.
				t.Errorf("litmus %q claimed by both %s and %s", name, prev, p.Name)
			}
			claimed[name] = p.Name
		}
		if len(p.VetObligations) == 0 {
			t.Errorf("%s: no threadsvet obligation", p.Name)
		}
		for _, ob := range p.VetObligations {
			if !analyzers[ob] {
				t.Errorf("%s: vet obligation %q names no analyzer in analysis.All()", p.Name, ob)
			}
		}
	}

	for _, lit := range Registry() {
		if claimed[lit.Name] == "" {
			t.Errorf("litmus %q is claimed by no primitive — declare whose behavior it checks in Primitives()", lit.Name)
		}
	}
}
