package checker

import (
	"fmt"

	"threads/internal/spec"
)

// SignalOne refines spec.Signal to what the implementation's Signal does
// with a fully-blocked waiter set: remove exactly one member of c (any one
// — the specification does not say which), or nothing when c is empty. The
// refinement is sound — every outcome satisfies (c' = {}) | (c' ⊆ c) — and
// it is the resolution under which the paper's operational argument for the
// AlertWait bug ("Signal ... chooses to remove t from c") plays out.
type SignalOne struct {
	T spec.ThreadID
	C spec.CondID
}

func (a SignalOne) Kind() string               { return "SignalOne" }
func (a SignalOne) Self() spec.ThreadID        { return a.T }
func (a SignalOne) Requires(*spec.State) error { return nil }
func (a SignalOne) When(*spec.State) bool      { return true }
func (a SignalOne) Apply(s *spec.State) {
	// Deterministic replay removes the smallest member; exploration uses
	// Outcomes.
	members := s.Cond(a.C).Members()
	if len(members) > 0 {
		s.Cond(a.C).Delete(members[0])
	}
}
func (a SignalOne) Outcomes(s *spec.State) []*spec.State {
	members := s.Conds[a.C].Members()
	if len(members) == 0 {
		return []*spec.State{s.Clone()}
	}
	var out []*spec.State
	for _, t := range members {
		post := s.Clone()
		post.Cond(a.C).Delete(t)
		out = append(out, post)
	}
	return out
}
func (a SignalOne) String() string { return fmt.Sprintf("SignalOne(t%d, c%d)", a.T, a.C) }

// ---------------------------------------------------------------------------
// Litmus builders
// ---------------------------------------------------------------------------

// MutualExclusion builds n threads each performing iters critical sections
// on one mutex, with the "cs" region label, plus the invariant that at most
// one thread is inside a critical section and that the abstract holder
// agrees.
func MutualExclusion(n, iters int) Config {
	const m = spec.MutexID(1)
	prog := Program{Name: fmt.Sprintf("mutex-%dx%d", n, iters)}
	for i := 0; i < n; i++ {
		tid := spec.ThreadID(i + 1)
		th := Thread{ID: tid, Name: fmt.Sprintf("t%d", tid)}
		for j := 0; j < iters; j++ {
			th.Steps = append(th.Steps,
				DoLabeled("cs", spec.Acquire{T: tid, M: m}),
				Do(spec.Release{T: tid, M: m}),
			)
		}
		prog.Threads = append(prog.Threads, th)
	}
	return Config{
		Program:         prog,
		Invariant:       ExclusionInvariant("cs", m),
		RequireProgress: true, // Acquire's WHEN guarantees someone can always proceed
	}
}

// MutualExclusionAlert is MutualExclusion with the alerting facility in the
// loop — the litmus that makes -mutex sensitive to the specification
// Variant. Thread 1 enters its critical sections through AlertWait's resume
// (Enqueue, then AlertResume), threads 2..n through plain Acquire, and an
// extra thread supplies the Alerts that enable the Raise path. Under
// spec.VariantNoMNil the Raise's missing "m = NIL &" guard lets thread 1
// seize the mutex while a worker is inside — the ExclusionInvariant
// violation the first released specification permitted; under the final
// variant the state space is clean.
//
// Alerts form a set, so two Alerts delivered before one is consumed
// collapse into one and thread 1 can starve in a later round; those are
// ordinary terminal states, which is why the config does not require
// progress (same as AlertSeizesHeldMutex).
func MutualExclusionAlert(v spec.Variant, n, iters int) Config {
	const (
		m = spec.MutexID(1)
		c = spec.CondID(1)
	)
	prog := Program{Name: fmt.Sprintf("mutex-alert-%dx%d-%s", n, iters, v)}
	alertee := Thread{ID: 1, Name: "t1"}
	for j := 0; j < iters; j++ {
		alertee.Steps = append(alertee.Steps,
			Do(spec.Acquire{T: 1, M: m}),
			Do(spec.Enqueue{T: 1, M: m, C: c}),
			Step{Label: "cs", Alternatives: []spec.Action{
				spec.AlertResumeReturn{T: 1, M: m, C: c},
				spec.AlertResumeRaise{T: 1, M: m, C: c, Variant: v},
			}},
			Do(spec.Release{T: 1, M: m}),
		)
	}
	prog.Threads = append(prog.Threads, alertee)
	for i := 1; i < n; i++ {
		tid := spec.ThreadID(i + 1)
		th := Thread{ID: tid, Name: fmt.Sprintf("t%d", tid)}
		for j := 0; j < iters; j++ {
			th.Steps = append(th.Steps,
				DoLabeled("cs", spec.Acquire{T: tid, M: m}),
				Do(spec.Release{T: tid, M: m}),
			)
		}
		prog.Threads = append(prog.Threads, th)
	}
	alerter := Thread{ID: spec.ThreadID(n + 1), Name: "alerter"}
	for j := 0; j < iters; j++ {
		alerter.Steps = append(alerter.Steps, Do(spec.Alert{T: spec.ThreadID(n + 1), Target: 1}))
	}
	prog.Threads = append(prog.Threads, alerter)
	return Config{
		Program:   prog,
		Invariant: ExclusionInvariant("cs", m),
	}
}

// ExclusionInvariant returns an invariant: at most one thread occupies the
// labeled region, and it is exactly the abstract holder of m.
func ExclusionInvariant(label string, m spec.MutexID) func(Snapshot) error {
	return func(s Snapshot) error {
		inside := -1
		for i := range s.PC {
			if s.InRegion(i, label) {
				if inside >= 0 {
					return fmt.Errorf("threads %s and %s are both inside %q (mutual exclusion violated; m%d = %d)",
						s.prog.Threads[inside].Name, s.prog.Threads[i].Name, label, m, s.State.Mutex(m))
				}
				inside = i
			}
		}
		if inside >= 0 {
			if h := s.State.Mutex(m); h != s.prog.Threads[inside].ID {
				return fmt.Errorf("thread %s in %q but m%d = %d", s.prog.Threads[inside].Name, label, m, h)
			}
		}
		return nil
	}
}

// SemaphoreHandshake builds the always-completing P/V handshake: the
// semaphore starts unavailable; t1 blocks in P, t2 performs V. The
// wakeup-waiting race is covered by the semaphore bit, so RequireProgress
// holds in every interleaving.
func SemaphoreHandshake() Config {
	const s0 = spec.SemID(1)
	init := spec.NewState()
	init.SetSemAvailable(s0, false)
	prog := Program{
		Name: "sem-handshake",
		Threads: []Thread{
			{ID: 1, Name: "waiter", Steps: []Step{Do(spec.P{T: 1, S: s0})}},
			{ID: 2, Name: "poster", Steps: []Step{Do(spec.V{T: 2, S: s0})}},
		},
	}
	return Config{Program: prog, Initial: init, RequireProgress: true}
}

// AlertSeizesHeldMutex is the E7a litmus: under spec.VariantNoMNil, an
// alerted AlertWait may "resume" while another thread holds the mutex,
// violating mutual exclusion. t1 performs AlertWait(m, c); t2 takes a plain
// critical section on m; t3 alerts t1.
func AlertSeizesHeldMutex(v spec.Variant) Config {
	const (
		m = spec.MutexID(1)
		c = spec.CondID(1)
	)
	prog := Program{
		Name: "alertwait-m-nil-" + v.String(),
		Threads: []Thread{
			{ID: 1, Name: "alertee", Steps: []Step{
				Do(spec.Acquire{T: 1, M: m}),
				Do(spec.Enqueue{T: 1, M: m, C: c}),
				Step{Label: "cs", Alternatives: []spec.Action{
					spec.AlertResumeReturn{T: 1, M: m, C: c},
					spec.AlertResumeRaise{T: 1, M: m, C: c, Variant: v},
				}},
				Do(spec.Release{T: 1, M: m}),
			}},
			{ID: 2, Name: "worker", Steps: []Step{
				DoLabeled("cs", spec.Acquire{T: 2, M: m}),
				Do(spec.Release{T: 2, M: m}),
			}},
			{ID: 3, Name: "alerter", Steps: []Step{
				Do(spec.Alert{T: 3, Target: 1}),
			}},
		},
	}
	return Config{
		Program:   prog,
		Invariant: ExclusionInvariant("cs", m),
	}
}

// SignalAbsorbedByDepartedThread is the E7b litmus — Greg Nelson's
// scenario. t1 performs AlertWait and is alerted; t2 performs a plain Wait;
// t3 alerts t1; t4 signals once. The transition property fails if a Signal
// removes a thread that has already departed its wait (a "ghost") while a
// live waiter remains blocked in c — that Signal wakes nobody.
//
// Under spec.VariantUnchangedC the Alerted path leaves t1 in c, so the bad
// transition is reachable; under spec.VariantFinal it never is.
func SignalAbsorbedByDepartedThread(v spec.Variant) Config {
	const (
		m = spec.MutexID(1)
		c = spec.CondID(1)
	)
	prog := Program{
		Name: "alertwait-unchanged-c-" + v.String(),
		Threads: []Thread{
			{ID: 1, Name: "alertee", Steps: []Step{
				Do(spec.Acquire{T: 1, M: m}),
				Do(spec.Enqueue{T: 1, M: m, C: c}),
				Choose(
					spec.AlertResumeReturn{T: 1, M: m, C: c},
					spec.AlertResumeRaise{T: 1, M: m, C: c, Variant: v},
				),
				Do(spec.Release{T: 1, M: m}),
			}},
			{ID: 2, Name: "waiter", Steps: []Step{
				Do(spec.Acquire{T: 2, M: m}),
				Do(spec.Enqueue{T: 2, M: m, C: c}),
				Do(spec.Resume{T: 2, M: m, C: c}),
				Do(spec.Release{T: 2, M: m}),
			}},
			{ID: 3, Name: "alerter", Steps: []Step{
				Do(spec.Alert{T: 3, Target: 1}),
			}},
			{ID: 4, Name: "signaller", Steps: []Step{
				Do(SignalOne{T: 4, C: c}),
			}},
		},
	}
	// Thread i is "blocked in its wait on c" when its next step is the
	// Resume/AlertResume (pc == 2 for both waiter threads here).
	blockedInWait := func(s Snapshot, i int) bool { return s.PC[i] == 2 }
	return Config{
		Program: prog,
		TransitionCheck: func(tr Transition) error {
			sig, ok := tr.Action.(SignalOne)
			if !ok {
				return nil
			}
			// Which member did this outcome remove?
			var removed spec.ThreadID
			for _, t := range tr.Pre.State.Cond(sig.C).Members() {
				if !tr.Post.State.CondHas(sig.C, t) {
					removed = t
				}
			}
			if removed == 0 {
				return nil // empty c: nothing absorbed
			}
			// Find the program thread with that ID and ask if it is
			// still blocked in its wait.
			removedLive := false
			liveWaiterRemains := false
			for i, th := range tr.Pre.prog.Threads {
				if th.ID == removed && blockedInWait(tr.Pre, i) {
					removedLive = true
				}
				if th.ID != removed && blockedInWait(tr.Pre, i) && tr.Post.State.CondHas(sig.C, th.ID) {
					liveWaiterRemains = true
				}
			}
			if !removedLive && liveWaiterRemains {
				return fmt.Errorf(
					"Signal absorbed by departed thread t%d while a live waiter remains blocked on c%d (the Signal woke nobody)",
					removed, sig.C)
			}
			return nil
		},
	}
}

// AlertPOverlap explores AlertP with both WHEN clauses enabled (semaphore
// available and alert pending) and records which outcomes were reachable,
// demonstrating the specification's deliberate non-determinism (E8).
// It returns the config plus a pointer to the outcome set that Run fills.
func AlertPOverlap() (Config, *map[string]bool) {
	const s0 = spec.SemID(1)
	outcomes := map[string]bool{}
	init := spec.NewState()
	init.Alerts.Insert(1)
	prog := Program{
		Name: "alertp-overlap",
		Threads: []Thread{
			{ID: 1, Name: "caller", Steps: []Step{
				Choose(
					spec.AlertPReturn{T: 1, S: s0},
					spec.AlertPRaise{T: 1, S: s0},
				),
			}},
		},
	}
	cfg := Config{
		Program: prog,
		Initial: init,
		TransitionCheck: func(tr Transition) error {
			outcomes[tr.Action.Kind()] = true
			return nil
		},
	}
	return cfg, &outcomes
}

// SemaphoreMutualExclusion builds n threads each performing iters critical
// sections guarded by P/V on one binary semaphore, with the exclusion
// invariant. The paper notes mutexes and semaphores share one mechanism;
// this litmus shows the *specification* of P/V also provides exclusion —
// what differs from Mutex is only the absence of Release's REQUIRES.
func SemaphoreMutualExclusion(n, iters int) Config {
	const s = spec.SemID(1)
	prog := Program{Name: fmt.Sprintf("sem-mutex-%dx%d", n, iters)}
	for i := 0; i < n; i++ {
		tid := spec.ThreadID(i + 1)
		th := Thread{ID: tid, Name: fmt.Sprintf("t%d", tid)}
		for j := 0; j < iters; j++ {
			th.Steps = append(th.Steps,
				DoLabeled("cs", spec.P{T: tid, S: s}),
				Do(spec.V{T: tid, S: s}),
			)
		}
		prog.Threads = append(prog.Threads, th)
	}
	return Config{
		Program: prog,
		Invariant: func(snap Snapshot) error {
			inside := -1
			for i := range snap.PC {
				if snap.InRegion(i, "cs") {
					if inside >= 0 {
						return fmt.Errorf("threads %s and %s both inside the P/V critical section",
							prog.Threads[inside].Name, prog.Threads[i].Name)
					}
					inside = i
				}
			}
			if inside >= 0 && snap.State.SemAvailable(s) {
				return fmt.Errorf("thread %s inside the critical section while s%d is available",
					prog.Threads[inside].Name, s)
			}
			return nil
		},
		RequireProgress: true,
	}
}

// PrivateSemaphoreChain builds Dijkstra's "private semaphore" pattern the
// paper's footnote quotes: each thread blocks on its own semaphore and is
// released individually by its predecessor, forming a strict pipeline.
// Every interleaving completes (semaphores remember their V), and the
// completion order is fully determined.
func PrivateSemaphoreChain(n int) Config {
	prog := Program{Name: fmt.Sprintf("private-sem-chain-%d", n)}
	init := spec.NewState()
	for i := 0; i < n; i++ {
		tid := spec.ThreadID(i + 1)
		mine := spec.SemID(i + 1)
		th := Thread{ID: tid, Name: fmt.Sprintf("stage%d", i+1)}
		if i > 0 {
			// Private semaphores start unavailable; stage 1 runs freely.
			init.SetSemAvailable(mine, false)
			th.Steps = append(th.Steps, Do(spec.P{T: tid, S: mine}))
		}
		th.Steps = append(th.Steps, Step{Label: "work", Alternatives: []spec.Action{
			spec.TestAlert{T: tid, Result: false}, // a harmless visible "work" action
		}})
		if i+1 < n {
			th.Steps = append(th.Steps, Do(spec.V{T: tid, S: spec.SemID(i + 2)}))
		}
		prog.Threads = append(prog.Threads, th)
	}
	return Config{
		Program:         prog,
		Initial:         init,
		RequireProgress: true,
		// The pipeline must be strictly ordered: stage k may not be in
		// (or past) its work step before stage k-1 has finished its own.
		Invariant: func(snap Snapshot) error {
			for i := 1; i < len(snap.PC); i++ {
				// Stage i's work step index is 1 (after its P); stage
				// 0's is 0.
				prevDone := snap.PC[i-1] > workIndex(i-1)
				atOrPast := snap.PC[i] > workIndex(i)
				if atOrPast && !prevDone {
					return fmt.Errorf("stage%d finished work before stage%d", i+1, i)
				}
			}
			return nil
		},
	}
}

// workIndex returns the step index of the "work" step for chain stage i.
func workIndex(i int) int {
	if i == 0 {
		return 0
	}
	return 1
}
