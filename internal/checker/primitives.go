package checker

// This file is the primitive registry: the table that ties every
// synchronization primitive this repository ships — the paper's four, the
// internal extensions, and the derived/ toolkit — to the verification
// machinery that covers it. Each entry declares
//
//   - SpecFace: which part of the formal specification gives the primitive
//     its meaning (a paper section for the core four; the derivation for
//     everything built on top — derived primitives inherit the spec through
//     trace replay, since every explored schedule's linearization is run
//     through the spec state machine);
//   - Litmuses: the registry scenarios (see Registry) that model-check and
//     schedule-explore it — being listed here is what the growth test
//     enforces, so a primitive cannot ship without explorer coverage;
//   - VetObligations: the threadsvet analyzers whose usage discipline the
//     primitive's callers are held to (cmd/threadsvet names match
//     internal/analysis).
//
// Growing the toolkit is therefore one entry here plus one litmus builder:
// TestPrimitiveRegistryClosed fails until both exist and resolve, and fails
// again if a litmus is added without a primitive claiming it.

// Primitive is one row of the table.
type Primitive struct {
	// Name identifies the primitive (kebab-case).
	Name string
	// Layer is where it lives: "paper" (the four from the specification),
	// "internal" (extensions inside internal/core), or "derived" (package
	// derived, built only on the public interface).
	Layer string
	// SpecFace says which formal text defines it.
	SpecFace string
	// Litmuses are registry scenario names covering it (≥ 1).
	Litmuses []string
	// VetObligations are threadsvet analyzer names its users are held to
	// (≥ 1).
	VetObligations []string
}

// Primitives returns the primitive table, in layer-then-dependency order.
func Primitives() []*Primitive {
	return []*Primitive{
		{
			Name:           "mutex",
			Layer:          "paper",
			SpecFace:       "Mutex module: Acquire/Release over thread-owned locks (spec §ReleaseAcquire); deadline variant consumes its timer alert before returning",
			Litmuses:       []string{"mutex", "mutex-handoff"},
			VetObligations: []string{"lockpair", "lockorder"},
		},
		{
			Name:           "condition",
			Layer:          "paper",
			SpecFace:       "Condition module: Wait is a hint (may return early), Signal/Broadcast over waiters (spec §WaitSignal); AlertWaitDeadline adds the timer-alert epilogue",
			Litmuses:       []string{"prodcons"},
			VetObligations: []string{"waitloop", "condmutex"},
		},
		{
			Name:           "semaphore",
			Layer:          "paper",
			SpecFace:       "Semaphore module: binary P/V with wakeup-waiting (spec §PV); AlertPDeadline degenerates to TryP at an expired deadline",
			Litmuses:       []string{"sem", "sem-handoff"},
			VetObligations: []string{"alerted"},
		},
		{
			Name:           "alert",
			Layer:          "paper",
			SpecFace:       "Alert module: Alert/TestAlert/AlertWait with the corrected no-seize semantics (spec §Alerts, VariantFinal vs VariantNoMNil)",
			Litmuses:       []string{"alert", "alert-broken"},
			VetObligations: []string{"alerted"},
		},
		{
			Name:           "deadline",
			Layer:          "internal",
			SpecFace:       "derived from Alert: a timer wheel alerts the blocked thread at its deadline; cancel-and-drain on every exit path is the invariant the deadline litmuses check",
			Litmuses:       []string{"deadline", "deadline-broken"},
			VetObligations: []string{"alerted"},
		},
		{
			Name:           "spinlock",
			Layer:          "internal",
			SpecFace:       "below the paper's interface: raw shared memory under sequential consistency (Peterson's algorithm is its litmus)",
			Litmuses:       []string{"peterson"},
			VetObligations: []string{"nubdiscipline"},
		},
		{
			Name:           "counting-semaphore",
			Layer:          "derived",
			SpecFace:       "derived from Mutex+Condition: sharded token cells with optimistic P and repair; traces replay through the spec state machine",
			Litmuses:       []string{"csem"},
			VetObligations: []string{"waitloop"},
		},
		{
			Name:           "rwlock",
			Layer:          "derived",
			SpecFace:       "derived from Mutex+Condition: reader count and writer flag guarded by one mutex; traces replay through the spec state machine",
			Litmuses:       []string{"rwlock"},
			VetObligations: []string{"waitloop", "condmutex"},
		},
		{
			Name:           "monitor",
			Layer:          "derived",
			SpecFace:       "derived from Mutex+Condition: Hoare-style monitor face (Enter/Exit/Do, bound conditions); traces replay through the spec state machine",
			Litmuses:       []string{"monitor"},
			VetObligations: []string{"waitloop", "condmutex"},
		},
		{
			Name:           "barrier-phaser",
			Layer:          "derived",
			SpecFace:       "derived from Mutex+Condition: generation-counted cyclic barrier with separable arrive/await; traces replay through the spec state machine",
			Litmuses:       []string{"phaser"},
			VetObligations: []string{"waitloop"},
		},
		{
			Name:           "latch",
			Layer:          "derived",
			SpecFace:       "derived from Mutex+Condition: one-shot gate opened by Broadcast; traces replay through the spec state machine",
			Litmuses:       []string{"latch"},
			VetObligations: []string{"waitloop"},
		},
		{
			Name:           "future",
			Layer:          "derived",
			SpecFace:       "derived from Mutex+Condition+Alert: single-assignment cell with alertable Get; traces replay through the spec state machine",
			Litmuses:       []string{"future"},
			VetObligations: []string{"waitloop", "alerted"},
		},
		{
			Name:           "priority",
			Layer:          "internal",
			SpecFace:       "below the paper's interface: the Nub's priority scheduling (SRC Report 20 §Implementation) with priority inheritance on mutexes; boost/restore stamps replay through spec §Priorities",
			Litmuses:       []string{"priority-inversion", "priority-inversion-broken"},
			VetObligations: []string{"prioritydiscipline"},
		},
		{
			Name:           "mpsc-ring",
			Layer:          "derived",
			SpecFace:       "derived from Mutex+Condition: bounded circular buffer, one condition per direction; traces replay through the spec state machine",
			Litmuses:       []string{"mpsc"},
			VetObligations: []string{"waitloop"},
		},
	}
}

// PrimitiveByName returns the named primitive, or nil.
func PrimitiveByName(name string) *Primitive {
	for _, p := range Primitives() {
		if p.Name == name {
			return p
		}
	}
	return nil
}
