package checker

import (
	"fmt"

	"threads/internal/sim"
	"threads/internal/simthreads"
)

// The builders in this file are the sim faces of the derived/ toolkit:
// each expresses a derived primitive's protocol with the simulated
// paper primitives, so registering it here is what gives the primitive
// explorer coverage (see primitives.go for the wiring contract).

// simMonitor is derived.Monitor's shape: a guarded counter plus one bound
// condition. Producers increment inside the monitor; a drainer waits on the
// predicate count > 0 and consumes. The detectors are mutual exclusion on
// the guarded state (monitor regions must not overlap) and conservation
// (every increment is drained).
func simMonitor(producers, iters int) SimProgram {
	return SimProgram{
		Procs: producers + 1,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			nonZero := w.NewCondition()
			var count, inCS, overlap, drained sim.Word
			enter := func(e *sim.Env) {
				if e.Add(&inCS, 1) != 1 {
					e.Store(&overlap, 1)
				}
			}
			exit := func(e *sim.Env) { e.Add(&inCS, ^uint64(0)) }
			for i := 0; i < producers; i++ {
				k.Spawn(fmt.Sprintf("prod%d", i+1), func(e *sim.Env) {
					for n := 0; n < iters; n++ {
						m.Acquire(e)
						enter(e)
						e.Add(&count, 1)
						exit(e)
						m.Release(e)
						nonZero.Signal(e)
					}
				})
			}
			total := uint64(producers * iters)
			k.Spawn("drainer", func(e *sim.Env) {
				taken := uint64(0)
				m.Acquire(e)
				for taken < total {
					for e.Load(&count) == 0 {
						nonZero.Wait(e, m)
					}
					enter(e)
					taken += e.Load(&count)
					e.Store(&count, 0)
					exit(e)
				}
				m.Release(e)
				e.Store(&drained, taken)
			})
			return func() error {
				if overlap.Peek() != 0 {
					return fmt.Errorf("monitor regions overlapped")
				}
				if got := drained.Peek(); got != total {
					return fmt.Errorf("drained %d increments, want %d", got, total)
				}
				return nil
			}
		},
	}
}

// simMPSC is derived.Ring's protocol: a bounded circular buffer with a
// condition per direction, multiple producers, one consumer. The detectors
// are conservation (the consumed sum identifies lost or duplicated items)
// and per-producer FIFO (each producer's values must arrive in its push
// order — the property the ring's single head/tail discipline provides).
func simMPSC(producers, items, capacity int) SimProgram {
	return SimProgram{
		Procs: producers + 1,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			nonEmpty := w.NewCondition()
			nonFull := w.NewCondition()
			buf := make([]sim.Word, capacity)
			var head, n sim.Word // ring state, guarded by m
			var sum, fifoBad sim.Word
			for i := 0; i < producers; i++ {
				base := uint64((i + 1) * 100)
				k.Spawn(fmt.Sprintf("prod%d", i+1), func(e *sim.Env) {
					for v := uint64(0); v < uint64(items); v++ {
						m.Acquire(e)
						for e.Load(&n) == uint64(capacity) {
							nonFull.Wait(e, m)
						}
						slot := (e.Load(&head) + e.Load(&n)) % uint64(capacity)
						e.Store(&buf[slot], base+v)
						e.Add(&n, 1)
						m.Release(e)
						nonEmpty.Signal(e)
					}
				})
			}
			lastSeen := make([]sim.Word, producers)
			k.Spawn("cons", func(e *sim.Env) {
				for got := 0; got < producers*items; got++ {
					m.Acquire(e)
					for e.Load(&n) == 0 {
						nonEmpty.Wait(e, m)
					}
					h := e.Load(&head)
					v := e.Load(&buf[h])
					e.Store(&buf[h], 0)
					e.Store(&head, (h+1)%uint64(capacity))
					e.Add(&n, ^uint64(0))
					m.Release(e)
					nonFull.Signal(e)
					e.Add(&sum, v)
					who := int(v/100) - 1
					seq := v%100 + 1 // 1-based so "nothing seen" is 0
					if seq <= e.Load(&lastSeen[who]) {
						e.Store(&fifoBad, 1)
					}
					e.Store(&lastSeen[who], seq)
				}
			})
			var want uint64
			for i := 0; i < producers; i++ {
				for v := 0; v < items; v++ {
					want += uint64((i+1)*100 + v)
				}
			}
			return func() error {
				if fifoBad.Peek() != 0 {
					return fmt.Errorf("per-producer FIFO order broken")
				}
				if got := sum.Peek(); got != want {
					return fmt.Errorf("consumed sum %d, want %d (item lost or duplicated)", got, want)
				}
				if left := n.Peek(); left != 0 {
					return fmt.Errorf("%d items left in the ring at quiescence", left)
				}
				return nil
			}
		},
	}
}

// simFuture is derived.Future's protocol — a single-assignment cell with
// Broadcast on Set and an alertable Get — plus the timeout composition the
// type documents: one getter carries a deadline (a DeadlineTimer), the
// other waits indefinitely. Detectors: both getters that complete must see
// the set value, and the alerted getter must not have consumed anyone
// else's wakeup.
func simFuture() SimProgram {
	return SimProgram{
		Procs: 3,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			set := w.NewCondition()
			dt := w.NewDeadlineTimer()
			var done, value sim.Word // future state, guarded by m
			var got1, got2, bad sim.Word
			deadlineGetter := k.Spawn("getterD", func(e *sim.Env) {
				m.Acquire(e)
				alerted := false
				for e.Load(&done) == 0 {
					if set.AlertWait(e, m) {
						alerted = true
						break
					}
				}
				if !alerted {
					if v := e.Load(&value); v != 7 {
						e.Store(&bad, 1)
					}
					e.Store(&got1, 1)
				}
				m.Release(e)
				dt.CancelAndDrain(e)
			})
			k.Spawn("getter", func(e *sim.Env) {
				m.Acquire(e)
				for e.Load(&done) == 0 {
					set.Wait(e, m)
				}
				if v := e.Load(&value); v != 7 {
					e.Store(&bad, 1)
				}
				m.Release(e)
				e.Store(&got2, 1)
			})
			k.Spawn("setter", func(e *sim.Env) {
				dt.Fire(e, deadlineGetter)
				m.Acquire(e)
				e.Store(&value, 7)
				e.Store(&done, 1)
				m.Release(e)
				set.Broadcast(e)
			})
			return func() error {
				if bad.Peek() != 0 {
					return fmt.Errorf("a getter observed the wrong value")
				}
				if got2.Peek() == 0 {
					return fmt.Errorf("the plain getter never completed")
				}
				return nil
			}
		},
	}
}

// simLatch is derived.Latch's protocol: a one-shot gate opened by
// Broadcast. openers CountDown-style threads open it once; waiters must
// not pass while it is closed.
func simLatch(waiters int) SimProgram {
	return SimProgram{
		Procs: waiters + 1,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			opened := w.NewCondition()
			var open, passedEarly, passed sim.Word
			for i := 0; i < waiters; i++ {
				k.Spawn(fmt.Sprintf("w%d", i+1), func(e *sim.Env) {
					m.Acquire(e)
					for e.Load(&open) == 0 {
						opened.Wait(e, m)
					}
					m.Release(e)
					if e.Load(&open) == 0 {
						e.Store(&passedEarly, 1)
					}
					e.Add(&passed, 1)
				})
			}
			k.Spawn("opener", func(e *sim.Env) {
				m.Acquire(e)
				e.Store(&open, 1)
				m.Release(e)
				opened.Broadcast(e)
			})
			return func() error {
				if passedEarly.Peek() != 0 {
					return fmt.Errorf("a waiter passed the latch before it opened")
				}
				if got := passed.Peek(); got != uint64(waiters) {
					return fmt.Errorf("%d waiters passed, want %d (lost wakeup)", got, waiters)
				}
				return nil
			}
		},
	}
}
