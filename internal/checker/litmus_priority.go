package checker

import (
	"fmt"

	"threads/internal/sim"
	"threads/internal/simthreads"
)

// simPriorityInversion is the classic three-thread priority-inversion
// scenario (the Mars Pathfinder shape) on a SINGLE processor with time
// slicing — the one litmus where the kernel's priority dispatch, not the
// explorer, decides who runs:
//
//   - low (priority 1) takes the mutex, signals high to start, then holds
//     the lock across a long computation;
//   - high (priority 3) releases medium and blocks on the mutex;
//   - medium (priority 2) is pure CPU-bound work: it never touches the
//     mutex, it just spins until it sees high finish or its budget runs out.
//
// Without priority inheritance, medium (2) outranks the lock-holding low
// (1) on the single processor, so low never runs, the mutex is never
// released, and high — the most urgent thread in the system — waits behind
// a thread that doesn't even share its lock. Medium's budget expires with
// high still blocked: inversion, flagged by the `starved` detector.
//
// With inheritance, high's blocked Acquire donates priority 3 to low; low
// (effective 3) now outranks medium, finishes the critical section,
// releases — restoring its base priority — and high completes before
// medium's spin budget is half spent.
//
// The quantum is sized so low is preempted inside its critical section
// (after the signalling store wakes high), which is what puts the lock
// holder at the ready pool's mercy. Medium's spin budget comfortably
// exceeds the with-inheritance wait, so the clean face has slack, while
// the broken face starves deterministically.
func simPriorityInversion(pi bool) SimProgram {
	return SimProgram{
		Procs:   1,
		Quantum: 6,
		Opts:    simthreads.WorldOptions{PriorityInheritance: pi},
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			// Start gates are raw words watched via AwaitChange (the
			// simPeterson idiom): a simthreads Semaphore is INITIALLY
			// available, so P would not gate anything.
			var startHigh, startMed, highDone, starved sim.Word
			k.SpawnPri("low", 1, func(e *sim.Env) {
				m.Acquire(e)
				e.Store(&startHigh, 1)
				e.Work(8) // long critical section; the quantum expires here
				m.Release(e)
			})
			k.SpawnPri("high", 3, func(e *sim.Env) {
				e.AwaitChange(sim.WordVal{W: &startHigh, Old: 0})
				e.Store(&startMed, 1)
				m.Acquire(e)
				e.Store(&highDone, 1)
				m.Release(e)
			})
			k.SpawnPri("med", 2, func(e *sim.Env) {
				e.AwaitChange(sim.WordVal{W: &startMed, Old: 0})
				// CPU-bound medium-priority work, bounded so every schedule
				// terminates: give up after `budget` spins and report
				// whether high ever got through.
				const budget = 40
				for spun := 0; e.Load(&highDone) == 0 && spun < budget; spun++ {
					e.Work(1)
				}
				if e.Load(&highDone) == 0 {
					e.Store(&starved, 1)
				}
			})
			return func() error {
				if starved.Peek() != 0 {
					return fmt.Errorf("priority inversion: medium-priority compute starved the lock holder while the high-priority thread was blocked on the mutex")
				}
				if highDone.Peek() == 0 {
					return fmt.Errorf("the high-priority thread never completed its critical section")
				}
				return nil
			}
		},
	}
}
