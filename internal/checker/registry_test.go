package checker

import (
	"fmt"
	"testing"

	"threads/internal/sim"
	"threads/internal/simthreads"
)

// TestRegistryShape: names are unique and resolvable, every entry has a
// sim face, and the lookup helpers agree with the table.
func TestRegistryShape(t *testing.T) {
	seen := map[string]bool{}
	for _, lit := range Registry() {
		if lit.Name == "" {
			t.Fatal("litmus with empty name")
		}
		if seen[lit.Name] {
			t.Fatalf("duplicate litmus name %q", lit.Name)
		}
		seen[lit.Name] = true
		if lit.Sim.Build == nil || lit.Sim.Procs < 1 {
			t.Errorf("%s: malformed sim program", lit.Name)
		}
		if got := LitmusByName(lit.Name); got == nil || got.Name != lit.Name {
			t.Errorf("LitmusByName(%q) did not resolve", lit.Name)
		}
	}
	if LitmusByName("no-such-litmus") != nil {
		t.Error("LitmusByName returned an entry for an unknown name")
	}
	if len(LitmusNames()) != len(Registry()) {
		t.Error("LitmusNames and Registry disagree on entry count")
	}
}

// TestRegistrySimPrograms runs each litmus's sim face once under the
// default (seeded) scheduler: correct programs must terminate and pass
// their own outcome check on an arbitrary fair schedule; thread names must
// be unique because schedule certificates address threads by name.
func TestRegistrySimPrograms(t *testing.T) {
	for _, lit := range Registry() {
		lit := lit
		t.Run(lit.Name, func(t *testing.T) {
			opts := lit.Sim.Opts
			opts.NubAwait = true
			cfg := sim.Config{Procs: lit.Sim.Procs, Seed: 7, MaxSteps: 2_000_000}
			w, k := simthreads.NewWorldOpts(cfg, opts)
			check := lit.Sim.Build(w, k)
			if err := dupThreadNames(k); err != nil {
				t.Fatal(err)
			}
			if err := k.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			// A single arbitrary schedule may or may not trip a broken
			// litmus; only correct ones are held to a clean outcome.
			if check != nil && !lit.ExpectViolation {
				if err := check(); err != nil {
					t.Fatalf("outcome: %v", err)
				}
			}
		})
	}
}

func dupThreadNames(k *simthreads.Kernel) error {
	seen := map[string]bool{}
	for _, th := range k.Threads() {
		if seen[th.Name()] {
			return fmt.Errorf("duplicate thread name %q", th.Name())
		}
		seen[th.Name()] = true
	}
	return nil
}

// TestRegistrySpecFaces model-checks the spec face of each litmus that has
// one, asserting the expected verdict: correct scenarios verify, broken
// ones yield a counterexample.
func TestRegistrySpecFaces(t *testing.T) {
	for _, lit := range Registry() {
		if lit.Spec == nil {
			continue
		}
		lit := lit
		t.Run(lit.Name, func(t *testing.T) {
			res := Run(lit.Spec())
			if lit.ExpectViolation && res.Violation == nil {
				t.Fatalf("spec-level checker found no violation (%d states)", res.States)
			}
			if !lit.ExpectViolation && res.Violation != nil {
				t.Fatalf("spec-level violation in a correct scenario: %v", res.Violation)
			}
		})
	}
}
