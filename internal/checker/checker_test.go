package checker

import (
	"strings"
	"testing"

	"threads/internal/spec"
)

func TestMutualExclusionHolds(t *testing.T) {
	res := Run(MutualExclusion(3, 2))
	if res.Violation != nil {
		t.Fatalf("mutual exclusion violated by the final spec: %v", res.Violation)
	}
	if res.States < 10 {
		t.Fatalf("suspiciously small exploration: %d states", res.States)
	}
	if res.Terminal == 0 {
		t.Fatal("no terminal state reached")
	}
}

func TestMutualExclusionDetectsSeededViolation(t *testing.T) {
	// Sanity-check the invariant machinery itself: start from a corrupted
	// state where the mutex is free but a thread is marked as holding it.
	cfg := MutualExclusion(2, 1)
	// Replace the program with one whose first thread releases a mutex it
	// does not hold — a REQUIRES violation the checker must flag.
	cfg.Program.Threads[0].Steps = []Step{Do(spec.Release{T: 1, M: 1})}
	res := Run(cfg)
	if res.Violation == nil || res.Violation.Kind != "requires" {
		t.Fatalf("REQUIRES violation not detected: %+v", res.Violation)
	}
}

func TestSemaphoreHandshakeAlwaysCompletes(t *testing.T) {
	res := Run(SemaphoreHandshake())
	if res.Violation != nil {
		t.Fatalf("P/V handshake deadlocked: %v", res.Violation)
	}
	if res.Terminal == 0 {
		t.Fatal("handshake never completed")
	}
}

func TestSemaphoreHandshakeWithoutVDeadlocks(t *testing.T) {
	// Drop the V: the checker must report the deadlock (P blocked forever).
	cfg := SemaphoreHandshake()
	cfg.Program.Threads = cfg.Program.Threads[:1]
	res := Run(cfg)
	if res.Violation == nil || res.Violation.Kind != "deadlock" {
		t.Fatalf("missing V not reported as deadlock: %+v", res.Violation)
	}
	if !strings.Contains(res.Violation.Msg, "waiter") {
		t.Fatalf("deadlock message does not name the stuck thread: %s", res.Violation.Msg)
	}
}

// TestE7aMissingMNil reproduces the first published spec bug: without
// "m = NIL &" in AlertResume's RAISES clause, mutual exclusion fails.
func TestE7aMissingMNil(t *testing.T) {
	res := Run(AlertSeizesHeldMutex(spec.VariantNoMNil))
	if res.Violation == nil {
		t.Fatal("no-m-nil variant: mutual-exclusion violation not found")
	}
	if res.Violation.Kind != "invariant" {
		t.Fatalf("violation kind = %s, want invariant", res.Violation.Kind)
	}
	if !strings.Contains(res.Violation.Msg, "mutual exclusion") {
		t.Fatalf("unexpected violation: %s", res.Violation.Msg)
	}
	// The counterexample must actually include the buggy raise.
	found := false
	for _, step := range res.Violation.Trace {
		if strings.Contains(step, "AlertResume.Raise[no-m-nil]") {
			found = true
		}
	}
	if !found {
		t.Fatalf("counterexample does not exercise the buggy clause:\n%v", res.Violation.Trace)
	}
}

// TestE7aFinalVariantSafe: with the corrected guard the same scenario is
// exclusion-safe across the whole state space.
func TestE7aFinalVariantSafe(t *testing.T) {
	res := Run(AlertSeizesHeldMutex(spec.VariantFinal))
	if res.Violation != nil {
		t.Fatalf("final variant violated exclusion: %v", res.Violation)
	}
}

// TestE7aUnchangedCVariantStillExclusionSafe: the year-long bug did NOT
// break mutual exclusion — which is part of why it went unnoticed.
func TestE7aUnchangedCVariantStillExclusionSafe(t *testing.T) {
	res := Run(AlertSeizesHeldMutex(spec.VariantUnchangedC))
	if res.Violation != nil {
		t.Fatalf("unchanged-c variant violated exclusion (unexpectedly): %v", res.Violation)
	}
}

// TestE7bUnchangedC reproduces Greg Nelson's scenario: under the
// UNCHANGED [c] specification a Signal can be absorbed by a thread that
// already raised Alerted, waking nobody while a live waiter stays blocked.
func TestE7bUnchangedC(t *testing.T) {
	res := Run(SignalAbsorbedByDepartedThread(spec.VariantUnchangedC))
	if res.Violation == nil {
		t.Fatal("unchanged-c variant: absorbed-signal scenario not found")
	}
	if res.Violation.Kind != "transition" {
		t.Fatalf("violation kind = %s, want transition", res.Violation.Kind)
	}
	if !strings.Contains(res.Violation.Msg, "absorbed by departed thread") {
		t.Fatalf("unexpected violation: %s", res.Violation.Msg)
	}
	// The shortest counterexample should follow Nelson's operational
	// argument: an alert, the Alerted raise, then the wasted signal.
	joined := strings.Join(res.Violation.Trace, " → ")
	for _, needle := range []string{"Alert(", "AlertResume.Raise[unchanged-c]", "SignalOne"} {
		if !strings.Contains(joined, needle) {
			t.Fatalf("counterexample missing %q:\n%s", needle, joined)
		}
	}
	t.Logf("E7b counterexample (%d states explored):\n  %s", res.States, joined)
}

// TestE7bFinalVariantSafe: with c' = delete(c, SELF) the absorbed-signal
// transition is unreachable.
func TestE7bFinalVariantSafe(t *testing.T) {
	res := Run(SignalAbsorbedByDepartedThread(spec.VariantFinal))
	if res.Violation != nil {
		t.Fatalf("final variant: absorbed signal reported (should be unreachable): %v", res.Violation)
	}
	if res.Terminal == 0 {
		t.Fatal("scenario never completed under the final variant")
	}
}

// TestE8AlertPOverlapNonDeterminism: with both WHEN clauses enabled the
// checker reaches both the RETURNS and the RAISES outcome.
func TestE8AlertPOverlapNonDeterminism(t *testing.T) {
	cfg, outcomes := AlertPOverlap()
	res := Run(cfg)
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if !(*outcomes)["AlertP.Return"] || !(*outcomes)["AlertP.Raise"] {
		t.Fatalf("both outcomes should be reachable, got %v", *outcomes)
	}
}

// TestSignalMayUnblockManyIsAdmitted (E3, spec side): the specification
// admits a Signal emptying the whole waiting set, so no implementation that
// occasionally unblocks several threads can be rejected.
func TestSignalMayUnblockManyIsAdmitted(t *testing.T) {
	s := spec.NewState()
	s.Cond(1).Insert(1)
	s.Cond(1).Insert(2)
	s.Cond(1).Insert(3)
	outs := (spec.Signal{T: 9, C: 1}).Outcomes(s)
	emptied := false
	for _, post := range outs {
		if post.Cond(1).Empty() {
			emptied = true
		}
	}
	if !emptied {
		t.Fatal("spec's Signal must admit c' = {} (unblocking all racers)")
	}
}

func TestBFSCounterexampleIsShortest(t *testing.T) {
	// In the no-m-nil litmus the shortest path to a violation needs
	// t1: Acquire,Enqueue + t2: Acquire + t3: Alert + t1: Raise = 5 steps.
	res := Run(AlertSeizesHeldMutex(spec.VariantNoMNil))
	if res.Violation == nil {
		t.Fatal("no violation")
	}
	if got := len(res.Violation.Trace); got != 5 {
		t.Fatalf("counterexample length = %d, want 5 (BFS should minimize):\n%v",
			got, res.Violation.Trace)
	}
}

func TestMaxStatesBounds(t *testing.T) {
	cfg := MutualExclusion(3, 3)
	cfg.MaxStates = 10
	res := Run(cfg)
	if res.States > 11 {
		t.Fatalf("explored %d states with MaxStates=10", res.States)
	}
}

func TestStateSpaceIsDeduplicated(t *testing.T) {
	// Two independent threads, 2 steps each: naive tree has up to
	// 4!/2!2! interleavings but only 3*3 = 9 (pc1,pc2) nodes.
	const m1, m2 = spec.MutexID(1), spec.MutexID(2)
	prog := Program{Name: "dedup", Threads: []Thread{
		{ID: 1, Name: "a", Steps: []Step{Do(spec.Acquire{T: 1, M: m1}), Do(spec.Release{T: 1, M: m1})}},
		{ID: 2, Name: "b", Steps: []Step{Do(spec.Acquire{T: 2, M: m2}), Do(spec.Release{T: 2, M: m2})}},
	}}
	res := Run(Config{Program: prog, RequireProgress: true})
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	if res.States > 9 {
		t.Fatalf("states = %d, want ≤ 9 (memoization broken)", res.States)
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	res := Run(SemaphoreMutualExclusion(3, 2))
	if res.Violation != nil {
		t.Fatalf("P/V critical sections violated exclusion: %v", res.Violation)
	}
	if res.Terminal == 0 {
		t.Fatal("no terminal state")
	}
}

func TestSemaphoreExclusionDetectsMissingP(t *testing.T) {
	// A thread that enters the region without P must trip the invariant.
	cfg := SemaphoreMutualExclusion(2, 1)
	cfg.Program.Threads[0].Steps = []Step{
		DoLabeled("cs", spec.TestAlert{T: 1, Result: false}), // barges in
		Do(spec.V{T: 1, S: 1}),
	}
	res := Run(cfg)
	if res.Violation == nil {
		t.Fatal("barging thread not detected")
	}
}

func TestPrivateSemaphoreChain(t *testing.T) {
	res := Run(PrivateSemaphoreChain(4))
	if res.Violation != nil {
		t.Fatalf("private-semaphore chain failed: %v", res.Violation)
	}
	if res.Terminal == 0 {
		t.Fatal("chain never completed")
	}
}

func TestPrivateSemaphoreChainDetectsBrokenOrder(t *testing.T) {
	// Pre-post the middle semaphore: stage 3 can now run early, breaking
	// the pipeline order.
	cfg := PrivateSemaphoreChain(3)
	cfg.Initial.SetSemAvailable(3, true)
	res := Run(cfg)
	if res.Violation == nil || res.Violation.Kind != "invariant" {
		t.Fatalf("broken ordering not detected: %+v", res.Violation)
	}
}
