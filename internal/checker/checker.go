// Package checker is an explicit-state model checker for the formal
// specification: it explores every interleaving of small "litmus" programs
// whose steps are the specification's atomic actions, checking invariants,
// transition properties and deadlock-freedom.
//
// This mechanizes the way the paper's specification was actually debugged.
// Both published specification errors were found by people reasoning
// operationally about short scenarios — "suppose a thread t raises Alerted,
// then a thread invokes Signal, which chooses to remove t from c ..." — and
// the checker runs exactly such scenarios against the three historical
// AlertWait variants (experiment E7):
//
//   - With spec.VariantNoMNil, mutual exclusion is violated (an alerted
//     thread seizes a held mutex);
//   - with spec.VariantUnchangedC, a Signal can be absorbed by a departed
//     thread while a live waiter stays blocked;
//   - with spec.VariantFinal, both properties hold over the full state
//     space.
//
// The checker is breadth-first, so reported counterexamples are shortest.
package checker

import (
	"fmt"
	"strings"

	"threads/internal/spec"
)

// Step is one program point of a litmus thread: a set of alternative atomic
// actions (usually one; two for procedures like AlertResume that may either
// RETURN or RAISE). The thread advances past the step when any enabled
// alternative fires.
type Step struct {
	Alternatives []spec.Action
	// Label annotates the step for invariants ("cs" marks a critical
	// section region, for example); see Snapshot.InRegion.
	Label string
}

// Do makes a single-action step.
func Do(a spec.Action) Step { return Step{Alternatives: []spec.Action{a}} }

// DoLabeled makes a single-action step with a label.
func DoLabeled(label string, a spec.Action) Step {
	return Step{Alternatives: []spec.Action{a}, Label: label}
}

// Choose makes a step that fires whichever alternative is enabled (both may
// be; the checker branches on each).
func Choose(as ...spec.Action) Step { return Step{Alternatives: as} }

// Thread is one litmus thread: an identity and a straight-line sequence of
// steps.
type Thread struct {
	ID    spec.ThreadID
	Name  string
	Steps []Step
}

// Program is a set of litmus threads sharing the specification state.
type Program struct {
	Name    string
	Threads []Thread
}

// Snapshot is a point in an execution: the abstract state plus every
// thread's program counter.
type Snapshot struct {
	State *spec.State
	PC    []int // program counter per thread, len(Threads) entries
	prog  *Program
}

// Done reports whether thread i has finished its program.
func (s Snapshot) Done(i int) bool { return s.PC[i] >= len(s.prog.Threads[i].Steps) }

// InRegion reports whether thread i's *previous* step (the one it has
// completed and not yet followed) carries the given label — i.e. the thread
// is "inside" the region the label opens. A thread that has completed a
// step labeled "cs" and not yet executed the next step is inside its
// critical section.
func (s Snapshot) InRegion(i int, label string) bool {
	pc := s.PC[i]
	if pc == 0 || pc > len(s.prog.Threads[i].Steps) {
		return false
	}
	return s.prog.Threads[i].Steps[pc-1].Label == label
}

// Transition is one fired action between two snapshots.
type Transition struct {
	Pre, Post Snapshot
	Action    spec.Action
	Thread    int // index into Program.Threads
}

// Violation is a property failure with its shortest counterexample.
type Violation struct {
	Kind  string // "invariant", "transition", "requires", "deadlock"
	Msg   string
	Trace []string // action strings from the initial state
}

func (v *Violation) Error() string {
	return fmt.Sprintf("%s violation: %s\n  trace:\n    %s",
		v.Kind, v.Msg, strings.Join(v.Trace, "\n    "))
}

// Config parameterizes a check.
type Config struct {
	Program Program
	// Initial seeds the abstract state (nil = the initial state of every
	// variable).
	Initial *spec.State
	// Invariant, if non-nil, is checked at every reachable snapshot.
	Invariant func(Snapshot) error
	// TransitionCheck, if non-nil, is checked at every fired transition.
	TransitionCheck func(Transition) error
	// RequireProgress treats a reachable global deadlock (no enabled
	// action, some thread unfinished) as a violation. Because the
	// specification makes no liveness guarantees, use this only with
	// programs whose environment actions (Signals, Alerts) have been
	// restricted to resolutions that model "the implementation does
	// something" — see the litmus builders.
	RequireProgress bool
	// MaxStates bounds exploration (0 = 1<<20).
	MaxStates int
}

// Result summarizes an exploration.
type Result struct {
	States      int // distinct (state, pcs) nodes visited
	Transitions int // transitions fired
	Terminal    int // nodes where every thread had finished
	Violation   *Violation
}

// node is an element of the BFS frontier.
type node struct {
	state  *spec.State
	pcs    []int
	parent int // index into nodes; -1 for root
	action string
}

// Run explores the program's full interleaving space (up to MaxStates) and
// returns the first (shortest-trace) violation, if any.
func Run(cfg Config) Result {
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 20
	}
	init := cfg.Initial
	if init == nil {
		init = spec.NewState()
	}
	prog := &cfg.Program
	res := Result{}

	root := node{state: init.Clone(), pcs: make([]int, len(prog.Threads)), parent: -1}
	nodes := []node{root}
	seen := map[string]bool{key(root.state, root.pcs): true}

	snapshotOf := func(n *node) Snapshot {
		return Snapshot{State: n.state, PC: n.pcs, prog: prog}
	}

	if cfg.Invariant != nil {
		if err := cfg.Invariant(snapshotOf(&root)); err != nil {
			res.Violation = &Violation{Kind: "invariant", Msg: err.Error(), Trace: nil}
			res.States = 1
			return res
		}
	}

	for head := 0; head < len(nodes); head++ {
		cur := nodes[head]
		res.States++
		if res.States > maxStates {
			break
		}
		snap := snapshotOf(&cur)

		fired := false
		allDone := true
		for ti := range prog.Threads {
			if snap.Done(ti) {
				continue
			}
			allDone = false
			step := prog.Threads[ti].Steps[cur.pcs[ti]]
			for _, act := range step.Alternatives {
				if err := act.Requires(cur.state); err != nil {
					res.Violation = &Violation{
						Kind:  "requires",
						Msg:   fmt.Sprintf("%s: %v", act, err),
						Trace: append(trace(nodes, head), act.String()),
					}
					return res
				}
				outs := act.Outcomes(cur.state)
				for _, post := range outs {
					fired = true
					res.Transitions++
					npcs := append([]int(nil), cur.pcs...)
					npcs[ti]++
					child := node{state: post, pcs: npcs, parent: head, action: act.String()}
					csnap := snapshotOf(&child)
					if cfg.TransitionCheck != nil {
						tr := Transition{Pre: snap, Post: csnap, Action: act, Thread: ti}
						if err := cfg.TransitionCheck(tr); err != nil {
							res.Violation = &Violation{
								Kind:  "transition",
								Msg:   err.Error(),
								Trace: append(trace(nodes, head), act.String()),
							}
							return res
						}
					}
					if cfg.Invariant != nil {
						if err := cfg.Invariant(csnap); err != nil {
							res.Violation = &Violation{
								Kind:  "invariant",
								Msg:   err.Error(),
								Trace: append(trace(nodes, head), act.String()),
							}
							return res
						}
					}
					k := key(post, npcs)
					if !seen[k] {
						seen[k] = true
						nodes = append(nodes, child)
					}
				}
			}
		}
		if allDone {
			res.Terminal++
			continue
		}
		if !fired && cfg.RequireProgress {
			res.Violation = &Violation{
				Kind:  "deadlock",
				Msg:   deadlockMsg(snap),
				Trace: trace(nodes, head),
			}
			return res
		}
	}
	return res
}

func deadlockMsg(snap Snapshot) string {
	var stuck []string
	for i, th := range snap.prog.Threads {
		if !snap.Done(i) {
			step := th.Steps[snap.PC[i]]
			var alts []string
			for _, a := range step.Alternatives {
				alts = append(alts, a.String())
			}
			stuck = append(stuck, fmt.Sprintf("%s blocked at %s", th.Name, strings.Join(alts, " | ")))
		}
	}
	return fmt.Sprintf("no enabled action in state %s: %s", snap.State, strings.Join(stuck, "; "))
}

func key(s *spec.State, pcs []int) string {
	var b strings.Builder
	b.WriteString(s.Key())
	b.WriteByte('#')
	for _, pc := range pcs {
		fmt.Fprintf(&b, "%d,", pc)
	}
	return b.String()
}

func trace(nodes []node, at int) []string {
	var out []string
	for i := at; i > 0; i = nodes[i].parent {
		out = append(out, nodes[i].action)
	}
	// reverse
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
