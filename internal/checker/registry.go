package checker

import (
	"fmt"
	"sort"

	"threads/internal/sim"
	"threads/internal/simthreads"
	"threads/internal/spec"
)

// This file is the litmus registry: the table of named scenarios that both
// verification engines draw from. Each Litmus has up to two faces:
//
//   - Spec: a spec-level Config this package's explicit-state checker
//     explores exhaustively (every interleaving of the abstract atomic
//     actions);
//   - Sim: an implementation-level program internal/explore drives through
//     the simulated Firefly under controlled scheduling, replaying every
//     schedule's linearization trace through internal/trace.
//
// Registering a scenario here is all it takes to have it model-checked and
// schedule-explored: the checker tests, `threadsim -explore`, `threadsim
// -fuzz` and the CI pipelines all iterate the registry. A new derived
// primitive gets coverage by adding one entry whose Build expresses it with
// the simulated primitives (see "rwlock" below for the pattern).

// SimProgram is the implementation-level face of a litmus: a program on the
// simulated multiprocessor, sized so bounded-exhaustive schedule
// enumeration stays tractable.
type SimProgram struct {
	// Procs is the processor count to run with — usually at least the
	// thread count, so every ready thread is a scheduling candidate and the
	// explorer controls the full interleaving space. Scheduler litmuses
	// (priority inversion) instead run with FEWER processors than threads,
	// so the kernel's priority dispatch — the subject under test — decides
	// who runs.
	Procs int
	// Quantum is the time-slice length in cost units (0 disables time
	// slicing). Scheduler litmuses need it so a compute-bound thread can be
	// preempted by a higher-priority wakeup.
	Quantum uint64
	// Opts configures the World (the broken litmus turns on
	// BuggyAlertSeize). The explorer adds NubAwait itself.
	Opts simthreads.WorldOptions
	// Build creates the program's primitives and threads (each thread
	// must have a unique name — schedule certificates refer to threads by
	// name) and returns a check run after the kernel stops: nil means the
	// outcome is correct. Check functions use Peek only.
	Build func(w *simthreads.World, k *simthreads.Kernel) (check func() error)
}

// Litmus is one named scenario in the registry.
type Litmus struct {
	Name string
	Desc string
	// ExpectViolation marks intentionally broken scenarios: exploration
	// MUST find a violation (not finding one is a checker regression).
	ExpectViolation bool
	// Spec returns the spec-level model-checking config; nil if the
	// scenario only exists at the implementation level.
	Spec func() Config
	Sim  SimProgram
}

// Registry returns the litmus table, in deterministic order.
func Registry() []*Litmus {
	return []*Litmus{
		{
			Name: "mutex",
			Desc: "3 threads x 2 critical sections on one mutex; lost-update and overlap detectors",
			Spec: func() Config { return MutualExclusion(3, 2) },
			Sim:  simMutex(3, 2),
		},
		{
			Name: "sem",
			Desc: "2 threads x 2 critical sections guarded by P/V on one binary semaphore",
			Spec: func() Config { return SemaphoreMutualExclusion(2, 2) },
			Sim:  simSemMutex(2, 2),
		},
		{
			Name: "prodcons",
			Desc: "2 producers x 2 items, 1 consumer, capacity-1 bounded buffer (Wait/Signal both directions)",
			Sim:  simProdCons(2, 2, 1),
		},
		{
			Name: "alert",
			Desc: "AlertWait ended by Alert while a worker contends for the mutex (corrected semantics)",
			Spec: func() Config { return AlertSeizesHeldMutex(spec.VariantFinal) },
			Sim:  simAlert(false),
		},
		{
			Name:            "alert-broken",
			Desc:            "the no-m-nil AlertWait bug: an alerted thread seizes a held mutex (violation expected)",
			ExpectViolation: true,
			Spec:            func() Config { return MutualExclusionAlert(spec.VariantNoMNil, 2, 1) },
			Sim:             simAlert(true),
		},
		{
			Name: "rwlock",
			Desc: "readers-writer lock derived from mutex+condition: 2 readers, 1 writer",
			Sim:  simRWLock(2),
		},
		{
			// The spec face of the hand-off litmuses is the unmodified
			// mutex/semaphore spec — hand-off is an implementation policy,
			// and re-exploring an identical spec would prove nothing new —
			// so Spec is nil and all the checking weight is on the sim face:
			// every schedule's linearization trace must still replay through
			// the specification state machine with transfers in the mix.
			Name: "mutex-handoff",
			Desc: "the mutex litmus with direct hand-off: Release transfers the gate, lock bit never clears",
			Sim:  directHandoff(simMutex(3, 2)),
		},
		{
			Name: "sem-handoff",
			Desc: "the sem litmus with direct hand-off: V gifts its token to a queued P",
			Sim:  directHandoff(simSemMutex(2, 2)),
		},
		{
			Name: "csem",
			Desc: "sharded counting semaphore: per-cell optimistic P with repair, mutex+condition fallback",
			Sim:  simCSem(1, 3, 2),
		},
		{
			Name: "peterson",
			Desc: "Peterson's 2-thread mutual exclusion over raw shared words, entry spin via AwaitChange",
			Sim:  simPeterson(2),
		},
		{
			Name: "phaser",
			Desc: "cyclic barrier from mutex+condition: 3 threads x 2 phases, Broadcast on the last arrival",
			Sim:  simPhaser(3, 2),
		},
		{
			Name: "deadline",
			Desc: "deadline wait via timer-thread Alert (virtual time): cancel-and-drain epilogue; a late fire must not poison the next wait",
			Sim:  simDeadline(false),
		},
		{
			Name:            "deadline-broken",
			Desc:            "the stale-alert timeout race: cancel without drain (the timer.Stop pattern) lets a late fire poison the next wait (violation expected)",
			ExpectViolation: true,
			Sim:             simDeadline(true),
		},
		{
			Name: "monitor",
			Desc: "monitor (mutex + bound condition): 2 producers x 1 increment, drainer on count>0; overlap and conservation detectors",
			Sim:  simMonitor(2, 1),
		},
		{
			Name: "mpsc",
			Desc: "bounded MPSC ring, capacity 1: 2 producers x 2 items, 1 consumer; conservation and per-producer FIFO detectors",
			Sim:  simMPSC(2, 2, 1),
		},
		{
			Name: "future",
			Desc: "single-assignment future: a deadline-carrying getter and a plain getter race one Set (timer via DeadlineTimer)",
			Sim:  simFuture(),
		},
		{
			Name: "latch",
			Desc: "one-shot latch: 2 waiters must not pass before the opener's Broadcast",
			Sim:  simLatch(2),
		},
		{
			// Like the hand-off litmuses, priority scheduling is an
			// implementation policy with no spec face: the checking weight is
			// on conformance replay (boost/restore stamps) and the outcome
			// detectors.
			Name: "priority-inversion",
			Desc: "low/med/high on one processor with time slicing: inheritance boosts the lock holder past the medium-priority spinner",
			Sim:  simPriorityInversion(true),
		},
		{
			Name:            "priority-inversion-broken",
			Desc:            "the same program without priority inheritance: the medium spinner starves the lock holder and the high-priority thread behind it (violation expected)",
			ExpectViolation: true,
			Sim:             simPriorityInversion(false),
		},
	}
}

// directHandoff returns p with the DirectHandoff World option set.
func directHandoff(p SimProgram) SimProgram {
	p.Opts.DirectHandoff = true
	return p
}

// LitmusByName returns the named litmus, or nil.
func LitmusByName(name string) *Litmus {
	for _, l := range Registry() {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// LitmusNames returns the sorted registry names.
func LitmusNames() []string {
	var out []string
	for _, l := range Registry() {
		out = append(out, l.Name)
	}
	sort.Strings(out)
	return out
}

// simMutex: each thread performs iters critical sections incrementing a
// shared counter with a non-atomic load-work-store — the update a mutex
// exists to protect — plus an in-region occupancy counter that catches
// overlap the moment it happens.
func simMutex(threads, iters int) SimProgram {
	return SimProgram{
		Procs: threads,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			var counter, inCS, overlap sim.Word
			for i := 0; i < threads; i++ {
				k.Spawn(fmt.Sprintf("t%d", i+1), func(e *sim.Env) {
					for n := 0; n < iters; n++ {
						m.Acquire(e)
						if e.Add(&inCS, 1) != 1 {
							e.Store(&overlap, 1)
						}
						v := e.Load(&counter)
						e.Work(1)
						e.Store(&counter, v+1)
						e.Add(&inCS, ^uint64(0))
						m.Release(e)
					}
				})
			}
			total := uint64(threads * iters)
			return func() error {
				if overlap.Peek() != 0 {
					return fmt.Errorf("two threads inside the mutex critical section")
				}
				if got := counter.Peek(); got != total {
					return fmt.Errorf("lost update: counter = %d, want %d", got, total)
				}
				return nil
			}
		},
	}
}

// simSemMutex is simMutex with P/V on a binary semaphore as the guard.
func simSemMutex(threads, iters int) SimProgram {
	return SimProgram{
		Procs: threads,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			s := w.NewSemaphore()
			var counter, inCS, overlap sim.Word
			for i := 0; i < threads; i++ {
				k.Spawn(fmt.Sprintf("t%d", i+1), func(e *sim.Env) {
					for n := 0; n < iters; n++ {
						s.P(e)
						if e.Add(&inCS, 1) != 1 {
							e.Store(&overlap, 1)
						}
						v := e.Load(&counter)
						e.Store(&counter, v+1)
						e.Add(&inCS, ^uint64(0))
						s.V(e)
					}
				})
			}
			total := uint64(threads * iters)
			return func() error {
				if overlap.Peek() != 0 {
					return fmt.Errorf("two threads inside the P/V critical section")
				}
				if got := counter.Peek(); got != total {
					return fmt.Errorf("lost update: counter = %d, want %d", got, total)
				}
				return nil
			}
		},
	}
}

// simProdCons is the bounded buffer with a condition per direction; the
// consumer drains exactly producers*items items, so every schedule must
// terminate — a deadlock is a lost wakeup.
func simProdCons(producers, items, capacity int) SimProgram {
	return SimProgram{
		Procs: producers + 1,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			nonEmpty := w.NewCondition()
			nonFull := w.NewCondition()
			var queue sim.Word
			total := producers * items
			for i := 0; i < producers; i++ {
				k.Spawn(fmt.Sprintf("prod%d", i+1), func(e *sim.Env) {
					for n := 0; n < items; n++ {
						m.Acquire(e)
						for e.Load(&queue) == uint64(capacity) {
							nonFull.Wait(e, m)
						}
						e.Add(&queue, 1)
						m.Release(e)
						nonEmpty.Signal(e)
					}
				})
			}
			k.Spawn("cons", func(e *sim.Env) {
				for got := 0; got < total; got++ {
					m.Acquire(e)
					for e.Load(&queue) == 0 {
						nonEmpty.Wait(e, m)
					}
					e.Add(&queue, ^uint64(0))
					m.Release(e)
					nonFull.Signal(e)
				}
			})
			return func() error {
				if q := queue.Peek(); q != 0 {
					return fmt.Errorf("%d items left in the buffer after all threads finished", q)
				}
				return nil
			}
		},
	}
}

// simAlert is the MutualExclusionAlert scenario on the simulator: the
// alertee's critical section is entered through AlertWait's resume, a
// worker takes plain critical sections, an alerter supplies the Alert that
// enables the Raise path. With buggy=true the World runs the no-m-nil
// semantics and some schedule lets the alertee seize the worker's held
// mutex — the violation the first released specification permitted.
func simAlert(buggy bool) SimProgram {
	return SimProgram{
		Procs: 3,
		Opts:  simthreads.WorldOptions{BuggyAlertSeize: buggy},
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			c := w.NewCondition()
			var inCS, overlap, sawAlert sim.Word
			enter := func(e *sim.Env) {
				if e.Add(&inCS, 1) != 1 {
					e.Store(&overlap, 1)
				}
			}
			exit := func(e *sim.Env) { e.Add(&inCS, ^uint64(0)) }
			alertee := k.Spawn("alertee", func(e *sim.Env) {
				m.Acquire(e)
				//threadsvet:ignore waitloop: single-shot litmus; the conformance schedule observes the Wait-is-a-hint semantics directly
				alerted := c.AlertWait(e, m)
				enter(e)
				e.Work(2)
				exit(e)
				m.Release(e)
				if alerted {
					e.Store(&sawAlert, 1)
				}
			})
			k.Spawn("worker", func(e *sim.Env) {
				m.Acquire(e)
				enter(e)
				e.Work(2)
				exit(e)
				m.Release(e)
			})
			k.Spawn("alerter", func(e *sim.Env) {
				w.Alert(e, alertee)
			})
			return func() error {
				if overlap.Peek() != 0 {
					return fmt.Errorf("alertee and worker overlapped inside the mutex critical section")
				}
				if sawAlert.Peek() == 0 {
					return fmt.Errorf("the alert was never delivered")
				}
				return nil
			}
		},
	}
}

// simCSem models internal/core's sharded CountingSemaphore on the
// simulator: the token count lives in per-cell words, P optimistically
// fetch-adds -1 on its home cell and repairs on underflow before falling
// back to a mutex+condition slow path that scans every cell, and V adds to
// a DIFFERENT cell than its thread's P takes from — so tokens migrate and
// every schedule exercises the cross-cell scan. The detectors are the
// abstract ones: never more than `tokens` threads between P and V, and the
// cells must sum back to `tokens` at quiescence (a double-granted or
// stranded token shows up here). The transient-negative window — a cell
// driven below zero by an optimistic P racing a V — is precisely what
// bounded-exhaustive exploration covers that unit tests only sample.
func simCSem(tokens, threads, shards int) SimProgram {
	return SimProgram{
		Procs: threads,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			nonEmpty := w.NewCondition()
			cells := make([]sim.Word, shards)
			for i := 0; i < tokens; i++ {
				cells[i%shards].Poke(cells[i%shards].Peek() + 1)
			}
			var waiters sim.Word
			// Cells are uint64 two's-complement; "negative" is the wrapped
			// range a repair is in flight for.
			neg := func(v uint64) bool { return v >= 1<<63 }
			takeAny := func(e *sim.Env) bool {
				for i := range cells {
					if v := e.Load(&cells[i]); v != 0 && !neg(v) {
						if !neg(e.Add(&cells[i], ^uint64(0))) {
							return true
						}
						e.Add(&cells[i], 1)
					}
				}
				return false
			}
			p := func(e *sim.Env, cell int) {
				if !neg(e.Add(&cells[cell], ^uint64(0))) {
					return
				}
				e.Add(&cells[cell], 1) // repair: the cell had nothing to give
				m.Acquire(e)
				e.Add(&waiters, 1)
				for !takeAny(e) {
					nonEmpty.Wait(e, m)
				}
				e.Add(&waiters, ^uint64(0))
				m.Release(e)
			}
			v := func(e *sim.Env, cell int) {
				e.Add(&cells[cell], 1)
				if e.Load(&waiters) != 0 {
					m.Acquire(e)
					nonEmpty.Signal(e)
					m.Release(e)
				}
			}
			var inCS, overlap sim.Word
			for i := 0; i < threads; i++ {
				home, away := i%shards, (i+1)%shards
				k.Spawn(fmt.Sprintf("t%d", i+1), func(e *sim.Env) {
					p(e, home)
					if e.Add(&inCS, 1) > uint64(tokens) {
						e.Store(&overlap, 1)
					}
					e.Work(1)
					e.Add(&inCS, ^uint64(0))
					v(e, away)
				})
			}
			return func() error {
				if overlap.Peek() != 0 {
					return fmt.Errorf("more than %d threads inside the counting-semaphore region", tokens)
				}
				var sum uint64
				for i := range cells {
					sum += cells[i].Peek()
				}
				if sum != uint64(tokens) {
					return fmt.Errorf("cells sum to %d at quiescence, want %d (token granted twice or stranded)", sum, tokens)
				}
				return nil
			}
		},
	}
}

// simPeterson is Peterson's classic 2-thread mutual exclusion built from
// nothing but raw shared words — no Threads primitives at all, so it
// exercises the explorer's handling of algorithms below the paper's
// interface. The simulated memory is sequentially consistent, which is
// exactly the model Peterson's algorithm is correct under; the entry
// protocol's spin ("while flag[j] and turn == j") uses AwaitChange on
// both words at once so the decision tree stays finite. Detectors are the
// mutex litmus's: region occupancy and a load-work-store counter.
func simPeterson(iters int) SimProgram {
	return SimProgram{
		Procs: 2,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			var flag [2]sim.Word
			var turn sim.Word
			var counter, inCS, overlap sim.Word
			for i := 0; i < 2; i++ {
				i := i
				j := 1 - i
				k.Spawn(fmt.Sprintf("t%d", i+1), func(e *sim.Env) {
					for n := 0; n < iters; n++ {
						e.Store(&flag[i], 1)
						e.Store(&turn, uint64(j))
						for {
							fj := e.Load(&flag[j])
							if fj == 0 {
								break
							}
							tv := e.Load(&turn)
							if tv != uint64(j) {
								break
							}
							e.AwaitChange(
								sim.WordVal{W: &flag[j], Old: fj},
								sim.WordVal{W: &turn, Old: tv},
							)
						}
						if e.Add(&inCS, 1) != 1 {
							e.Store(&overlap, 1)
						}
						v := e.Load(&counter)
						e.Work(1)
						e.Store(&counter, v+1)
						e.Add(&inCS, ^uint64(0))
						e.Store(&flag[i], 0)
					}
				})
			}
			total := uint64(2 * iters)
			return func() error {
				if overlap.Peek() != 0 {
					return fmt.Errorf("both threads inside Peterson's critical section")
				}
				if got := counter.Peek(); got != total {
					return fmt.Errorf("lost update: counter = %d, want %d", got, total)
				}
				return nil
			}
		},
	}
}

// simPhaser is a cyclic barrier (a phaser) derived from one mutex and one
// condition: each arrival increments a count under the mutex; the last
// arrival of a generation resets the count, advances the generation and
// Broadcasts, while the others Wait until the generation moves. The
// detector is the barrier property itself: a thread observing fewer than
// `parties` arrivals for phase p after passing the phase-p barrier means
// someone got through before everyone arrived.
func simPhaser(parties, phases int) SimProgram {
	return SimProgram{
		Procs: parties,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			cv := w.NewCondition()
			var count, gen, bad sim.Word
			arrived := make([]sim.Word, phases)
			arrive := func(e *sim.Env) {
				m.Acquire(e)
				g := e.Load(&gen)
				if e.Add(&count, 1) == uint64(parties) {
					e.Store(&count, 0)
					e.Add(&gen, 1)
					m.Release(e)
					cv.Broadcast(e)
					return
				}
				for e.Load(&gen) == g {
					cv.Wait(e, m)
				}
				m.Release(e)
			}
			for i := 0; i < parties; i++ {
				k.Spawn(fmt.Sprintf("t%d", i+1), func(e *sim.Env) {
					for p := 0; p < phases; p++ {
						e.Add(&arrived[p], 1)
						arrive(e)
						if e.Load(&arrived[p]) != uint64(parties) {
							e.Store(&bad, 1)
						}
					}
				})
			}
			return func() error {
				if bad.Peek() != 0 {
					return fmt.Errorf("a thread passed a phase barrier before all %d parties arrived", parties)
				}
				if g := gen.Peek(); g != uint64(phases) {
					return fmt.Errorf("generation %d at quiescence, want %d", g, phases)
				}
				if c := count.Peek(); c != 0 {
					return fmt.Errorf("arrival count %d at quiescence, want 0", c)
				}
				return nil
			}
		},
	}
}

// simRWLock derives a readers-writer lock from one mutex and one condition
// — the registry's demonstration that new primitives built on the paper's
// interface get schedule-explored by adding a table entry.
func simRWLock(readers int) SimProgram {
	return SimProgram{
		Procs: readers + 1,
		Build: func(w *simthreads.World, k *simthreads.Kernel) func() error {
			m := w.NewMutex()
			cv := w.NewCondition()
			var nreaders, writing sim.Word // guarded state
			var inR, inW, bad sim.Word     // detectors
			for i := 0; i < readers; i++ {
				k.Spawn(fmt.Sprintf("r%d", i+1), func(e *sim.Env) {
					m.Acquire(e)
					for e.Load(&writing) != 0 {
						cv.Wait(e, m)
					}
					e.Add(&nreaders, 1)
					m.Release(e)
					// Read region: no writer may be inside.
					e.Add(&inR, 1)
					if e.Load(&inW) != 0 {
						e.Store(&bad, 1)
					}
					e.Add(&inR, ^uint64(0))
					m.Acquire(e)
					last := e.Add(&nreaders, ^uint64(0)) == 0
					m.Release(e)
					if last {
						cv.Broadcast(e)
					}
				})
			}
			k.Spawn("writer", func(e *sim.Env) {
				m.Acquire(e)
				for e.Load(&nreaders) != 0 || e.Load(&writing) != 0 {
					cv.Wait(e, m)
				}
				e.Store(&writing, 1)
				m.Release(e)
				// Write region: no reader may be inside.
				e.Store(&inW, 1)
				if e.Load(&inR) != 0 {
					e.Store(&bad, 1)
				}
				e.Store(&inW, 0)
				m.Acquire(e)
				e.Store(&writing, 0)
				m.Release(e)
				cv.Broadcast(e)
			})
			return func() error {
				if bad.Peek() != 0 {
					return fmt.Errorf("reader and writer overlapped")
				}
				return nil
			}
		},
	}
}
