package core

import (
	"sync"
	"testing"
)

// TestStatsCrossCounterInvariantsAtQuiescence asserts the relationships
// between counters that SnapshotStats documents as meaningful only at
// quiescence: the test joins every worker before snapshotting, so each
// completed operation has incremented exactly one counter of its outcome
// partition. (A mid-run snapshot can legitimately violate all of these —
// see the SnapshotStats doc comment — which is why the assertions live
// after the joins and why no other stats test samples while workers run.)
func TestStatsCrossCounterInvariantsAtQuiescence(t *testing.T) {
	defer EnableStats(EnableStats(true))
	ResetStats()

	const (
		goroutines = 8
		iters      = 2000
		waiters    = 6
	)
	var (
		m  Mutex
		wg sync.WaitGroup
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		Fork(func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Acquire()
				m.Release()
			}
		})
	}

	var (
		cm   Mutex
		c    Condition
		gate bool
		cwg  sync.WaitGroup
	)
	cwg.Add(waiters)
	for i := 0; i < waiters; i++ {
		Fork(func() {
			defer cwg.Done()
			cm.Acquire()
			for !gate {
				c.Wait(&cm)
			}
			cm.Release()
		})
	}
	wg.Wait()
	for {
		cm.Acquire()
		if c.Waiters() == waiters {
			gate = true
			c.Broadcast()
			cm.Release()
			break
		}
		cm.Release()
	}
	cwg.Wait() // quiesce: every worker joined before the snapshot

	s := SnapshotStats()
	acquires := uint64(goroutines*iters) + s.WaitCount // each Wait reacquires
	if got := s.AcquireFast + s.AcquireSpin + s.AcquireNub; got < acquires {
		t.Errorf("fast+spin+nub = %d, want >= %d completed Acquires", got, acquires)
	}
	if s.AcquireBackout+s.AcquirePark < s.AcquireNub {
		t.Errorf("backout(%d)+park(%d) < nub entries(%d): a Nub round resolved without an outcome",
			s.AcquireBackout, s.AcquirePark, s.AcquireNub)
	}
	if s.ReleaseFast+s.ReleaseNub+s.ReleaseHandoff < uint64(goroutines*iters) {
		t.Errorf("releases fast(%d)+nub(%d)+handoff(%d) < %d completed Releases",
			s.ReleaseFast, s.ReleaseNub, s.ReleaseHandoff, goroutines*iters)
	}
	if s.WaitSpin+s.WaitElided+s.WaitPark != s.WaitCount {
		t.Errorf("wait outcomes spin(%d)+elided(%d)+park(%d) != WaitCount(%d)",
			s.WaitSpin, s.WaitElided, s.WaitPark, s.WaitCount)
	}
	if s.SignalWoke > s.SignalNub {
		t.Errorf("SignalWoke(%d) > SignalNub(%d)", s.SignalWoke, s.SignalNub)
	}
	if s.WaitCount < waiters {
		t.Errorf("WaitCount = %d, want >= %d", s.WaitCount, waiters)
	}
}
