package core

import "errors"

// Alerted is the exception of the alerting facility. AlertWait and AlertP
// return it (RAISES Alerted) when they take the alerted path.
//
// Specification:
//
//	VAR alerts: SET OF Thread INITIALLY {}
//	EXCEPTION Alerted
var Alerted = errors.New("threads: alerted")

// Alert requests that thread t raise the exception Alerted. Alerting is a
// polite form of interrupt, used with both semaphores and condition
// variables, typically for timeouts and aborts: the decision to interrupt
// is made at a higher abstraction level than the one in which the thread is
// blocked, where the relevant condition variable or semaphore is not
// readily accessible.
//
//	ATOMIC PROCEDURE Alert(t: Thread)
//	  MODIFIES AT MOST [alerts]   ENSURES alerts' = insert(alerts, t)
//
// Alert never blocks. If t is currently blocked in AlertWait or AlertP,
// Alert also makes it ready; if not, the alert stays pending until t calls
// TestAlert, AlertWait or AlertP. Alerting a thread blocked in plain Wait,
// P or Acquire does not disturb it — only the alertable operations respond.
//
// Drain obligation: an alert, once inserted, persists until t consumes it.
// A caller using Alert for a timeout that can RACE the awaited event
// (time.AfterFunc firing against normal completion, say) therefore owns a
// cleanup obligation — if the event wins, the now-stale alert must be
// drained (TestAlert on t, by t) before t's next alertable wait, or it will
// poison that wait. Cancelling the timer is not enough: a Stop after the
// function has run does not retract the Alert. The deadline variants
// (AlertWaitDeadline, AlertPDeadline, AcquireDeadline) discharge this
// obligation internally and should be preferred for timeouts.
func Alert(t *Thread) {
	statIncT(t, statAlerts)
	traced := traceOn.Load()
	var seq, tid uint64
	if traced {
		tid = Self().id
	} else {
		// Setting the flag before taking the lock narrows the window in
		// which a concurrent blocking path tests it; traced, the store
		// moves under the lock so the stamp and the insertion are one
		// critical section (the flag is also re-stored below, which is
		// idempotent — alerts is a set).
		t.alerted.Store(true)
	}
	t.alertLock.Lock()
	if traced {
		t.alerted.Store(true)
		seq = nextTraceSeq()
	}
	// The claim happens under alertLock, which every blocking path holds
	// while registering and unregistering its waiter: while the lock is
	// held and alertW is non-nil, the registered episode cannot end, so
	// the claim cannot leak onto a reused waiter's later episode.
	w := t.alertW
	if w != nil && w.claim(reasonAlert) {
		t.alertLock.Unlock()
		if traced {
			traceEmit(seq, TraceAlert, tid, 0, t.id, false)
		}
		w.wake()
		statIncT(t, statAlertWakes)
		return
	}
	t.alertLock.Unlock()
	if traced {
		traceEmit(seq, TraceAlert, tid, 0, t.id, false)
	}
}

// TestAlert reports whether there is a pending request for the calling
// thread to raise Alerted, consuming it.
//
//	ATOMIC PROCEDURE TestAlert() RETURNS (b: bool)
//	  MODIFIES AT MOST [alerts]
//	  ENSURES (b = (SELF IN alerts)) & (alerts' = delete(alerts, SELF))
func TestAlert() bool { return testAlertT(Self()) }

// testAlertT is TestAlert with SELF already recovered. The deadline
// epilogue (finishDeadline) uses it so one deadline operation computes SELF
// once — the runtime.Stack header parse behind Self dominates the cost of
// every alertable operation, so the variants must not pay it twice.
func testAlertT(t *Thread) bool {
	var b bool
	if traceOn.Load() {
		// Stamp the read-and-delete under alertLock so it cannot straddle a
		// concurrent Alert's insertion: the trace shows either the alert
		// consumed (Alert before TestAlert) or pending (after), never both.
		t.alertLock.Lock()
		b = t.alerted.Swap(false)
		seq := nextTraceSeq()
		t.alertLock.Unlock()
		traceEmit(seq, TraceTestAlert, t.id, 0, 0, b)
	} else {
		b = t.alerted.Swap(false)
	}
	if b {
		statIncT(t, statTestAlertTrue)
	}
	return b
}

// AlertPending reports whether t has an undelivered alert, without
// consuming it (advisory; an extension used by monitoring code and tests).
func AlertPending(t *Thread) bool { return t.alerted.Load() }

// setAlertWaiter publishes w as the waiter Alert should wake. It is set
// before the alerted flag is tested in the blocking paths, and Alert sets
// the flag before reading the registration, so at least one side always
// observes the other: no alert can slip between the test and the park.
func (t *Thread) setAlertWaiter(w *waiter) {
	t.alertLock.Lock()
	t.alertW = w
	t.alertLock.Unlock()
}

func (t *Thread) clearAlertWaiter() {
	t.alertLock.Lock()
	t.alertW = nil
	t.alertLock.Unlock()
}

// consumeAlertEmit deletes SELF from the alerts set on an Alerted return
// (AlertP.Raise, AlertResume.Raise) and, when tracing, stamps the deletion
// under t's alertLock — the lock that serializes every transition of this
// thread's membership bit — so the Raise event cannot invert with a
// concurrent Alert or TestAlert.
func (t *Thread) consumeAlertEmit(kind TraceKind, obj, obj2 uint64) {
	if !traceOn.Load() {
		t.alerted.Store(false)
		return
	}
	t.alertLock.Lock()
	t.alerted.Store(false)
	seq := nextTraceSeq()
	t.alertLock.Unlock()
	traceEmit(seq, kind, t.id, obj, obj2, false)
}
