package core

import (
	"runtime"

	"threads/internal/spinlock"
)

// Adaptive spinning policy for the blocking slow paths, mirroring the
// sync.Mutex runtime_canSpin discipline: a caller that just missed the
// fast path briefly busy-waits for the holder to leave before paying for a
// Nub enqueue and a park/wake round-trip — but only when the spin has a
// chance of being useful (more than one processor, so the holder can be
// running right now) and polite (no thread is already queued; spinning
// past a queue would just widen the barging window the woken thread
// already faces).
//
// The spin is bounded and entirely below the specification: a thread that
// acquires while spinning is indistinguishable from one whose WHEN clause
// was satisfied a little later, which the specification already permits
// ("the WHEN clause may impose a delay").
const (
	// acquireSpinRounds bounds the polls of the lock bit before giving up
	// and entering the Nub; spinPauseIters is the Pause between polls.
	// 4×30 Pause iterations lands in the same few-hundred-nanosecond
	// region as sync.Mutex's 4×30 PAUSE budget.
	acquireSpinRounds = 4
	spinPauseIters    = 30
)

// canSpin reports whether active spinning can be useful at all: with a
// single processor the lock holder cannot be running concurrently, so
// every spin iteration is stolen from the holder.
func canSpin() bool {
	return runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1
}

// spinAcquire polls the gate's lock bit a bounded number of times,
// returning true if it won the test-and-set while spinning. It bails out
// as soon as a thread is queued.
func (g *gate) spinAcquire(tc traceCtx) bool {
	if !canSpin() {
		return false
	}
	for r := 0; r < acquireSpinRounds; r++ {
		if g.qlen.Load() != 0 {
			return false
		}
		spinlock.Pause(spinPauseIters)
		if !g.locked() && g.tryAcquire(tc) {
			return true
		}
	}
	return false
}
