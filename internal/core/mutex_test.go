package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMutexZeroValueIsNIL(t *testing.T) {
	var m Mutex
	if m.Held() {
		t.Fatal("zero-value Mutex reports held; INITIALLY NIL violated")
	}
	m.Acquire()
	if !m.Held() {
		t.Fatal("mutex not held after Acquire")
	}
	m.Release()
	if m.Held() {
		t.Fatal("mutex held after Release")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	const (
		threads = 8
		iters   = 5000
	)
	var (
		m       Mutex
		counter int
		wg      sync.WaitGroup
	)
	wg.Add(threads)
	for i := 0; i < threads; i++ {
		Fork(func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				m.Acquire()
				counter++
				m.Release()
			}
		})
	}
	wg.Wait()
	if counter != threads*iters {
		t.Fatalf("critical sections not serialized: counter=%d want %d", counter, threads*iters)
	}
}

// TestMutexAtomicActions checks the serialization property directly: the
// bracketed sections are critical sections (no two threads inside at once).
func TestMutexAtomicActions(t *testing.T) {
	var (
		m      Mutex
		inside int32
		bad    int32
		wg     sync.WaitGroup
	)
	wg.Add(6)
	for i := 0; i < 6; i++ {
		Fork(func() {
			defer wg.Done()
			for j := 0; j < 3000; j++ {
				m.Acquire()
				inside++
				if inside != 1 {
					bad++
				}
				inside--
				m.Release()
			}
		})
	}
	wg.Wait()
	if bad != 0 {
		t.Fatalf("%d overlapping critical sections observed", bad)
	}
}

func TestMutexBlocksUntilRelease(t *testing.T) {
	var m Mutex
	m.Acquire()
	entered := make(chan struct{})
	Fork(func() {
		m.Acquire()
		close(entered)
		m.Release()
	})
	select {
	case <-entered:
		t.Fatal("second Acquire succeeded while mutex was held: WHEN m = NIL violated")
	case <-time.After(50 * time.Millisecond):
	}
	m.Release()
	waitDone(t, entered, "blocked acquirer after Release")
}

// TestMutexReleaseWakesExactlyOneWinner: with several blocked acquirers,
// each Release admits one thread into the critical section.
func TestMutexReleaseWakesExactlyOneWinner(t *testing.T) {
	const waiters = 5
	var m Mutex
	m.Acquire()
	var inCS int32
	var maxIn int32
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		Fork(func() {
			defer wg.Done()
			m.Acquire()
			n := atomicAdd(&inCS, 1)
			if n > atomicLoad(&maxIn) {
				atomicStore(&maxIn, n)
			}
			<-proceed
			atomicAdd(&inCS, -1)
			m.Release()
		})
	}
	// Let the waiters pile up, then open the gate one Release at a time.
	time.Sleep(50 * time.Millisecond)
	m.Release()
	done := make(chan struct{})
	go func() {
		for i := 0; i < waiters; i++ {
			proceed <- struct{}{}
		}
		wg.Wait()
		close(done)
	}()
	waitDone(t, done, "all waiters through the critical section")
	if maxIn != 1 {
		t.Fatalf("observed %d threads in the critical section at once", maxIn)
	}
}

func TestTryAcquire(t *testing.T) {
	var m Mutex
	if !m.TryAcquire() {
		t.Fatal("TryAcquire on NIL mutex failed")
	}
	if m.TryAcquire() {
		t.Fatal("TryAcquire on held mutex succeeded")
	}
	m.Release()
	if !m.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
	m.Release()
}

func TestLockBracketsAndReleasesOnPanic(t *testing.T) {
	var m Mutex
	func() {
		defer func() { recover() }()
		Lock(&m, func() {
			if !m.Held() {
				t.Error("mutex not held inside Lock body")
			}
			panic("exception inside LOCK clause")
		})
	}()
	if m.Held() {
		t.Fatal("Lock did not Release after a panic (TRY...FINALLY semantics violated)")
	}
	// And the normal path.
	ran := false
	Lock(&m, func() { ran = true })
	if !ran || m.Held() {
		t.Fatal("Lock normal path broken")
	}
}

func TestWaitersCount(t *testing.T) {
	var m Mutex
	m.Acquire()
	const n = 3
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		Fork(func() {
			defer wg.Done()
			m.Acquire()
			m.Release()
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("Waiters = %d, want %d", m.Waiters(), n)
		}
		time.Sleep(time.Millisecond)
	}
	m.Release()
	wg.Wait()
	if m.Waiters() != 0 {
		t.Fatalf("Waiters = %d after all released", m.Waiters())
	}
}

func TestCheckingModeDetectsBadRelease(t *testing.T) {
	defer SetChecking(SetChecking(true))
	var m Mutex
	m.Acquire()
	defer m.Release()
	errs := make(chan interface{}, 1)
	th := Fork(func() {
		defer func() { errs <- recover() }()
		m.Release() // REQUIRES m = SELF violated
	})
	Join(th)
	if <-errs == nil {
		t.Fatal("checking mode did not detect Release by non-holder")
	}
}

func TestCheckingModeDetectsRecursiveAcquire(t *testing.T) {
	defer SetChecking(SetChecking(true))
	var m Mutex
	m.Acquire()
	defer m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("checking mode did not detect recursive Acquire")
		}
	}()
	m.Acquire()
}

func TestCheckingModeAllowsCorrectUse(t *testing.T) {
	defer SetChecking(SetChecking(true))
	var m Mutex
	var counter int
	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		Fork(func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				Lock(&m, func() { counter++ })
			}
		})
	}
	wg.Wait()
	if counter != 800 {
		t.Fatalf("counter = %d, want 800", counter)
	}
}

func TestFastPathStats(t *testing.T) {
	defer EnableStats(EnableStats(true))
	ResetStats()
	var m Mutex
	for i := 0; i < 100; i++ {
		m.Acquire()
		m.Release()
	}
	s := SnapshotStats()
	if s.AcquireFast != 100 || s.AcquireNub != 0 {
		t.Fatalf("uncontended acquires: fast=%d nub=%d, want 100/0", s.AcquireFast, s.AcquireNub)
	}
	if s.ReleaseFast != 100 || s.ReleaseNub != 0 {
		t.Fatalf("uncontended releases: fast=%d nub=%d, want 100/0", s.ReleaseFast, s.ReleaseNub)
	}
}

// Tiny atomic helpers so the tests above read clearly.
func atomicAdd(p *int32, d int32) int32 { return atomic.AddInt32(p, d) }
func atomicLoad(p *int32) int32         { return atomic.LoadInt32(p) }
func atomicStore(p *int32, v int32)     { atomic.StoreInt32(p, v) }
