package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"threads/internal/spinlock"
)

// Thread identifies a thread of control to the synchronization primitives.
// The specification's SELF is the Thread of the calling goroutine, and the
// global "alerts : SET OF Thread" is represented by one alerted bit per
// Thread.
//
// Threads are created with Fork. A goroutine that was not created by Fork
// (the main goroutine, for example) is adopted on its first call to Self,
// TestAlert, AlertWait or AlertP.
type Thread struct {
	id   uint64
	gid  uint64
	name string

	// alerted is this thread's membership in the specification's global
	// alerts set: Alert inserts, TestAlert and the Alerted returns of
	// AlertWait/AlertP delete.
	alerted atomic.Bool

	// alertLock protects alertW. Alert reads alertW under it to find a
	// blocked alertable waiter to wake; AlertWait/AlertP register and
	// unregister their waiter under it.
	alertLock spinlock.Lock
	alertW    *waiter //threads:guardedby alertLock

	// parkW is the thread's cached waiter, reused by every blocking
	// episode so the slow paths allocate nothing per park. Only threads
	// created by Fork get one; adopted goroutines may be transient, so
	// their episodes draw from the shared waiter pool instead.
	parkW *waiter

	// done is closed when a forked thread's function returns. Join
	// receives on it. Adopted threads have a nil done channel.
	done chan struct{}

	// timerE is the thread's cached timer-wheel entry, reused by every
	// deadline wait so arming allocates nothing in steady state. Only the
	// owning thread touches the field (see timerwheel.go).
	timerE *timerEntry

	// basePri is the thread's assigned scheduling priority (ForkPri /
	// SetPriority; larger is more urgent, default 0). effPri caches the
	// effective priority — the max of basePri and every live mutex
	// donation — which the park paths read to stamp waiters.
	basePri atomic.Int32
	effPri  atomic.Int32

	// donLock guards the donation table and serializes every effective-
	// priority transition of this thread, so the PriBoost/PriRestore
	// conformance stamps drawn under it are totally ordered per thread.
	// Lock order: a gate's nub spin lock may be held when donLock is
	// taken (gate.piDonate); donLock acquires nothing, so no cycle.
	donLock   spinlock.Lock
	donations [maxDonations]donation //threads:guardedby donLock
}

// donation records one priority-inheritance boost: while this thread holds
// the mutex whose gate is g, it runs at least at pri.
type donation struct {
	g   *gate
	pri int32
}

// maxDonations bounds the donation table. The table lives inline in the
// Thread and is scanned under spin locks, where the Nub discipline forbids
// allocation — so it cannot grow. A thread holding more than maxDonations
// PI mutexes with boosting waiters drops the overflow donations: a missed
// boost only weakens the scheduling heuristic, never correctness.
const maxDonations = 4

// prioInUse flips (permanently) when any thread is given a nonzero
// priority. Until then the park paths skip priority capture entirely, so
// programs that never touch priorities pay one atomic load per park.
var prioInUse atomic.Bool

// Priority returns the thread's assigned (base) priority.
func (t *Thread) Priority() int { return int(t.basePri.Load()) }

// EffectivePriority returns the thread's current effective priority: its
// base priority or the highest live priority-inheritance donation,
// whichever is larger (advisory).
func (t *Thread) EffectivePriority() int { return int(t.effPri.Load()) }

// SetPriority assigns the thread's base priority. Larger values are more
// urgent; the default is 0. The new priority governs wakeup ordering for
// waits that park after the change (queued waiters keep the priority they
// were enqueued with, matching the paper's Nub, which orders its ready
// pool by the priority in effect when the thread was made ready).
//
// SetPriority must not be called while holding a spin lock (threadsvet's
// prioritydiscipline analyzer enforces this): it takes the target's
// donation lock and may emit a conformance stamp.
func (t *Thread) SetPriority(pri int) {
	if pri != 0 {
		prioInUse.Store(true)
	}
	t.donLock.Lock()
	t.basePri.Store(int32(pri))
	t.recalcPriLocked()
	t.donLock.Unlock()
}

// donate records that t (a mutex holder) inherits at least pri while it
// holds the mutex whose gate is g. Called with g's nub spin lock held, so
// it allocates nothing and calls nothing that blocks.
func (t *Thread) donate(g *gate, pri int32) {
	t.donLock.Lock()
	slot := -1
	for i := range t.donations {
		if t.donations[i].g == g {
			if t.donations[i].pri >= pri {
				t.donLock.Unlock()
				return
			}
			slot = i
			break
		}
		if slot < 0 && t.donations[i].g == nil {
			slot = i
		}
	}
	if slot < 0 {
		// Table full: drop the boost (heuristic miss, see maxDonations).
		t.donLock.Unlock()
		return
	}
	t.donations[slot] = donation{g: g, pri: pri}
	t.recalcPriLocked()
	t.donLock.Unlock()
}

// undonate removes the donation keyed by g (the holder released that
// mutex) and restores the effective priority.
func (t *Thread) undonate(g *gate) {
	t.donLock.Lock()
	for i := range t.donations {
		if t.donations[i].g == g {
			t.donations[i] = donation{}
			t.recalcPriLocked()
			break
		}
	}
	t.donLock.Unlock()
}

// recalcPriLocked recomputes the effective priority and, when it changed,
// counts the transition and emits its conformance stamp. Called with
// donLock held (possibly under a gate's nub spin lock): no allocation, no
// blocking, no indirect calls.
func (t *Thread) recalcPriLocked() {
	eff := t.basePri.Load()
	for i := range t.donations {
		if t.donations[i].g != nil && t.donations[i].pri > eff {
			eff = t.donations[i].pri
		}
	}
	old := t.effPri.Load()
	if eff == old {
		return
	}
	t.effPri.Store(eff)
	kind := TracePriRestore
	stat := statPriRestore
	if eff > old {
		kind = TracePriBoost
		stat = statPriBoost
	}
	statIncT(t, stat)
	if traceOn.Load() {
		// The stamp is drawn and recorded under donLock: per-thread
		// priority transitions are totally ordered, which is exactly the
		// REQUIRES the spec face checks (a boost strictly raises, a
		// restore strictly lowers).
		traceEmit(nextTraceSeq(), kind, t.id, uint64(int64(eff)), uint64(int64(old)), false)
	}
}

// ID returns a process-unique identifier for the thread.
func (t *Thread) ID() uint64 { return t.id }

// Name returns the thread's name ("thread-<id>" unless set by ForkNamed).
func (t *Thread) Name() string { return t.name }

// String implements fmt.Stringer.
func (t *Thread) String() string {
	if t == nil {
		return "NIL"
	}
	return t.name
}

var threadIDs atomic.Uint64

// ---------------------------------------------------------------------------
// Goroutine → Thread registry.
//
// The primitives need SELF without threading a handle through every call.
// The goroutine id is recovered from the runtime.Stack header (the only
// stdlib-visible identity a goroutine has) and mapped to its Thread in a
// sharded registry guarded by spin locks, so the core depends on nothing
// heavier than the primitives it itself implements.
// ---------------------------------------------------------------------------

const registryShards = 64

type registryShard struct {
	lock spinlock.Lock // 32 bytes (bit+contention+MCS tail+holder)
	m    map[uint64]*Thread
	_    [24]byte // round to 64: keep shards on separate cache lines
}

var registry [registryShards]*registryShard

func init() {
	for i := range registry {
		registry[i] = &registryShard{m: make(map[uint64]*Thread)}
	}
}

func shardFor(gid uint64) *registryShard {
	return registry[gid%registryShards]
}

func registerThread(gid uint64, t *Thread) {
	s := shardFor(gid)
	s.lock.Lock()
	s.m[gid] = t
	s.lock.Unlock()
}

func unregisterThread(gid uint64) {
	s := shardFor(gid)
	s.lock.Lock()
	delete(s.m, gid)
	s.lock.Unlock()
}

func lookupThread(gid uint64) *Thread {
	s := shardFor(gid)
	s.lock.Lock()
	t := s.m[gid]
	s.lock.Unlock()
	return t
}

// goidBufPool recycles the header buffers goid hands to runtime.Stack.
// runtime.Stack stores its argument in the g (writebuf), so a local array
// would escape and cost one heap allocation per Self() — pooling keeps the
// identity lookup allocation-free in steady state.
var goidBufPool = sync.Pool{New: func() any { return new([64]byte) }}

// goid returns the current goroutine's id, parsed from the
// "goroutine N [state]:" header runtime.Stack emits.
func goid() uint64 {
	buf := goidBufPool.Get().(*[64]byte)
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	goidBufPool.Put(buf)
	return id
}

// Self returns the Thread executing the caller, adopting the goroutine into
// the registry if it was not created by Fork.
func Self() *Thread {
	gid := goid()
	if t := lookupThread(gid); t != nil {
		return t
	}
	t := newThread("adopted")
	t.gid = gid
	registerThread(gid, t)
	return t
}

func newThread(kind string) *Thread {
	id := threadIDs.Add(1)
	return &Thread{id: id, name: fmt.Sprintf("%s-%d", kind, id)}
}

// Fork runs fn as a new thread and returns its handle immediately. The
// thread's registry entry is removed when fn returns, and Join unblocks.
func Fork(fn func()) *Thread {
	return forkNamedPri("", 0, fn)
}

// ForkNamed is Fork with an explicit thread name (used in traces and
// diagnostics).
func ForkNamed(name string, fn func()) *Thread {
	return forkNamedPri(name, 0, fn)
}

// ForkPri is Fork with an initial base priority, installed before the
// thread's function runs so its very first wait is ordered correctly.
func ForkPri(pri int, fn func()) *Thread {
	return forkNamedPri("", pri, fn)
}

// ForkNamedPri combines ForkNamed and ForkPri.
func ForkNamedPri(name string, pri int, fn func()) *Thread {
	return forkNamedPri(name, pri, fn)
}

func forkNamedPri(name string, pri int, fn func()) *Thread {
	t := newThread("thread")
	if name != "" {
		t.name = name
	}
	if pri != 0 {
		prioInUse.Store(true)
		t.basePri.Store(int32(pri))
		t.effPri.Store(int32(pri))
		if traceOn.Load() {
			// The thread is not yet visible to donors, so this initial
			// transition is trivially ordered before any later one.
			kind := TracePriBoost
			if pri < 0 {
				kind = TracePriRestore
			}
			traceEmit(nextTraceSeq(), kind, t.id, uint64(int64(pri)), 0, false)
		}
	}
	t.parkW = newWaiter()
	t.done = make(chan struct{})
	ready := make(chan struct{})
	go func() {
		gid := goid()
		t.gid = gid
		registerThread(gid, t)
		close(ready)
		defer func() {
			unregisterThread(gid)
			close(t.done)
		}()
		fn()
	}()
	// Wait until the child is registered so an immediate Alert(t) followed
	// by the child's AlertWait observes a consistent registry.
	<-ready
	return t
}

// Join blocks until the forked thread's function has returned. Join on an
// adopted thread panics: the package did not create it and cannot observe
// its termination.
func Join(t *Thread) {
	if t.done == nil {
		panic("core: Join on a thread not created by Fork")
	}
	<-t.done
}

// Detach removes an adopted goroutine's registry entry. Long-lived programs
// that adopt many transient goroutines call this before the goroutine
// exits; threads created by Fork clean up automatically.
func Detach() {
	unregisterThread(goid())
}
