package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The stress tests raise GOMAXPROCS so the runtime timeslices aggressively
// even on small machines, widening the interleaving space the primitives
// are exposed to.

func TestStressMixedPrimitives(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		workers = 10
		rounds  = 3000
	)
	var (
		m       Mutex
		c       Condition
		tokens  int
		sem     Semaphore
		counter int64
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		Fork(func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				switch r.Intn(4) {
				case 0: // monitor producer
					m.Acquire()
					tokens++
					m.Release()
					c.Signal()
				case 1: // monitor consumer (bounded wait via broadcast flush)
					m.Acquire()
					for tokens == 0 && i < rounds-1 {
						// Don't sleep forever near the end of the run:
						// producers may all have finished.
						break
					}
					if tokens > 0 {
						tokens--
					}
					m.Release()
				case 2: // semaphore critical section
					sem.P()
					atomic.AddInt64(&counter, 1)
					sem.V()
				case 3: // alert churn against self
					Alert(Self())
					TestAlert()
				}
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "mixed-primitive stress workers")
	// Flush any waiter stuck from the tail of the run.
	c.Broadcast()
}

// TestStressAlertWaitChurn hammers the alert/signal arbitration: waiters
// continuously AlertWait, while one goroutine signals and another alerts.
// Every wait must terminate one way or the other and account exactly once.
func TestStressAlertWaitChurn(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		waiters = 6
		perWait = 400
	)
	var (
		m Mutex
		c Condition
	)
	var normals, alerts int64
	var wg sync.WaitGroup
	wg.Add(waiters)
	handles := make([]*Thread, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		handles[i] = Fork(func() {
			defer wg.Done()
			for n := 0; n < perWait; n++ {
				m.Acquire()
				err := c.AlertWait(&m)
				m.Release()
				if err == nil {
					atomic.AddInt64(&normals, 1)
				} else if errors.Is(err, Alerted) {
					atomic.AddInt64(&alerts, 1)
				} else {
					t.Errorf("unexpected error %v", err)
					return
				}
			}
		})
	}
	stop := make(chan struct{})
	var drivers sync.WaitGroup
	drivers.Add(2)
	go func() {
		defer drivers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Signal()
				runtime.Gosched()
			}
		}
	}()
	go func() {
		defer drivers.Done()
		r := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
				Alert(handles[r.Intn(waiters)])
				runtime.Gosched()
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "alert/signal churn waiters")
	close(stop)
	drivers.Wait()
	total := atomic.LoadInt64(&normals) + atomic.LoadInt64(&alerts)
	if total != waiters*perWait {
		t.Fatalf("accounted %d wait outcomes, want %d", total, waiters*perWait)
	}
	t.Logf("churn outcomes: %d normal, %d alerted", normals, alerts)
}

// TestStressBroadcastStorm: repeated broadcasts to rotating waiter
// populations; no waiter may be left behind.
func TestStressBroadcastStorm(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const generations = 150
	var (
		m   Mutex
		c   Condition
		gen int
	)
	for g := 0; g < generations; g++ {
		const pop = 5
		var wg sync.WaitGroup
		wg.Add(pop)
		for i := 0; i < pop; i++ {
			Fork(func() {
				defer wg.Done()
				m.Acquire()
				target := gen + 1
				for gen < target {
					c.Wait(&m)
				}
				m.Release()
			})
		}
		// Give the population a moment to block, then advance.
		time.Sleep(time.Millisecond)
		m.Acquire()
		gen++
		m.Release()
		c.Broadcast()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		waitDone(t, done, "broadcast generation")
	}
}

// TestStressSemaphorePingPong: two threads strictly alternating through two
// semaphores — any lost V deadlocks.
func TestStressSemaphorePingPong(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	var a, b Semaphore
	b.P() // B starts unavailable: A goes first
	const rounds = 20000
	var turns int64
	done := make(chan struct{})
	Fork(func() {
		for i := 0; i < rounds; i++ {
			a.P()
			atomic.AddInt64(&turns, 1)
			b.V()
		}
	})
	Fork(func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			b.P()
			atomic.AddInt64(&turns, 1)
			a.V()
		}
	})
	waitDone(t, done, "semaphore ping-pong")
	if got := atomic.LoadInt64(&turns); got != 2*rounds {
		t.Fatalf("turns = %d, want %d", got, 2*rounds)
	}
}

// TestStressManyMutexes: a fuzz over a pool of mutexes, each protecting a
// counter; totals must balance.
func TestStressManyMutexes(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		pools   = 16
		workers = 8
		ops     = 4000
	)
	mus := make([]Mutex, pools)
	counts := make([]int, pools)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		Fork(func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) * 7))
			for i := 0; i < ops; i++ {
				k := r.Intn(pools)
				mus[k].Acquire()
				counts[k]++
				mus[k].Release()
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "mutex pool workers")
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != workers*ops {
		t.Fatalf("total = %d, want %d (lost increments)", total, workers*ops)
	}
}
