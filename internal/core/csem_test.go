package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCountingSemaphoreInit(t *testing.T) {
	c := NewCountingSemaphoreShards(5, 4)
	if got := c.Tokens(); got != 5 {
		t.Fatalf("Tokens = %d after init with 5, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if !c.TryP() {
			t.Fatalf("TryP %d failed with tokens remaining", i)
		}
	}
	if c.TryP() {
		t.Fatal("TryP succeeded on an empty semaphore")
	}
	c.V()
	if !c.TryP() {
		t.Fatal("TryP failed after V")
	}
}

// TestCountingSemaphoreBound is the abstract-state check: with K initial
// tokens, at most K threads may be between P and V at any instant, no
// matter how the count is sharded or how threads migrate across cells.
func TestCountingSemaphoreBound(t *testing.T) {
	const (
		tokens     = 3
		goroutines = 8
		iters      = 2000
	)
	for _, shards := range []int{1, 4} {
		c := NewCountingSemaphoreShards(tokens, shards)
		var inside, peak atomic.Int64
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer wg.Done()
				defer Detach()
				for i := 0; i < iters; i++ {
					c.P()
					n := inside.Add(1)
					if n > tokens {
						t.Errorf("%d threads inside with %d tokens", n, tokens)
					}
					for p := peak.Load(); n > p && !peak.CompareAndSwap(p, n); p = peak.Load() {
					}
					yieldHeld(i) // overlap the held windows even on one P
					inside.Add(-1)
					c.V()
				}
			}()
		}
		wg.Wait()
		if got := c.Tokens(); got != tokens {
			t.Fatalf("shards=%d: Tokens = %d at quiescence, want %d", shards, got, tokens)
		}
		t.Logf("shards=%d: peak concurrency %d/%d", shards, peak.Load(), tokens)
	}
}

// TestCountingSemaphoreBlocksAtZero pins the slow path end to end: a P on
// an empty semaphore parks, and a V from another thread releases exactly
// it.
func TestCountingSemaphoreBlocksAtZero(t *testing.T) {
	c := NewCountingSemaphoreShards(0, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer Detach()
		c.P()
	}()
	for c.Waiters() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	select {
	case <-done:
		t.Fatal("P returned on an empty semaphore")
	default:
	}
	c.V()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("P never returned after V")
	}
	if got := c.Tokens(); got != 0 {
		t.Fatalf("Tokens = %d after paired P/V, want 0", got)
	}
}

// TestCountingSemaphoreMigration forces cross-cell traffic: every token
// lives in cells the consumers' hash does not pick first, so P's fast path
// misses, repairs, and the slow-path scan must find the token in a foreign
// cell.
func TestCountingSemaphoreMigration(t *testing.T) {
	c := NewCountingSemaphoreShards(0, 8)
	// Deposit tokens directly into specific cells, bypassing the V hash.
	c.shards[3].tokens.Add(1)
	c.shards[6].tokens.Add(1)
	if !c.TryP() {
		t.Fatal("TryP missed a token parked in a foreign cell")
	}
	c.P() // must find the second foreign token without blocking
	if got := c.Tokens(); got != 0 {
		t.Fatalf("Tokens = %d, want 0", got)
	}
}

// TestCountingSemaphoreHiding hammers the transient-negative window: with
// zero steady-state tokens and every P racing a V, optimistic decrements
// constantly drive cells negative and repair them. The invariant is that
// the hider's debt never eats a real token — every V admits exactly one P,
// so the producer/consumer pairing below always drains.
func TestCountingSemaphoreHiding(t *testing.T) {
	const (
		pairs = 4
		iters = 2000
	)
	c := NewCountingSemaphoreShards(0, 2)
	var wg sync.WaitGroup
	wg.Add(2 * pairs)
	for g := 0; g < pairs; g++ {
		go func() {
			defer wg.Done()
			defer Detach()
			for i := 0; i < iters; i++ {
				c.V()
			}
		}()
		go func() {
			defer wg.Done()
			defer Detach()
			for i := 0; i < iters; i++ {
				c.P()
			}
		}()
	}
	donec := make(chan struct{})
	go func() { wg.Wait(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(60 * time.Second):
		t.Fatal("P/V pairing deadlocked: a token was stranded or a wakeup lost")
	}
	if got := c.Tokens(); got != 0 {
		t.Fatalf("Tokens = %d after balanced P/V traffic, want 0", got)
	}
}

// TestCountingSemaphoreHandoffModes re-runs the bound check under each
// hand-off policy: the slow path rides the internal Mutex/Condition, so
// direct hand-off and wait morphing must preserve the token bound too.
func TestCountingSemaphoreHandoffModes(t *testing.T) {
	for _, mode := range []HandoffMode{HandoffOff, HandoffAlways} {
		prev := SetHandoffMode(mode)
		c := NewCountingSemaphoreShards(2, 2)
		var inside atomic.Int64
		var wg sync.WaitGroup
		wg.Add(6)
		for g := 0; g < 6; g++ {
			go func() {
				defer wg.Done()
				defer Detach()
				for i := 0; i < 1000; i++ {
					c.P()
					if n := inside.Add(1); n > 2 {
						t.Errorf("mode %d: %d threads inside with 2 tokens", mode, n)
					}
					yieldHeld(i)
					inside.Add(-1)
					c.V()
				}
			}()
		}
		wg.Wait()
		SetHandoffMode(prev)
		if got := c.Tokens(); got != 2 {
			t.Fatalf("mode %d: Tokens = %d at quiescence, want 2", mode, got)
		}
	}
}
