package core

import (
	"sync/atomic"

	"threads/internal/eventcount"
	"threads/internal/queue"
	"threads/internal/spinlock"
)

// Condition is a condition variable. In the specification a Condition is a
// SET OF Thread, INITIALLY {} — the set of threads enqueued and not yet
// resumed; the zero value of this type is that initial state.
//
// Specification (SRC Report 20):
//
//	PROCEDURE Wait(VAR m: Mutex; VAR c: Condition) =
//	  COMPOSITION OF Enqueue; Resume END
//	  REQUIRES m = SELF
//	  MODIFIES AT MOST [m, c]
//	  ATOMIC ACTION Enqueue ENSURES (c' = insert(c, SELF)) & (m' = NIL)
//	  ATOMIC ACTION Resume WHEN (m = NIL) & NOT (SELF IN c)
//	    ENSURES (m' = SELF) & UNCHANGED [c]
//
//	ATOMIC PROCEDURE Signal(VAR c: Condition)
//	  MODIFIES AT MOST [c]   ENSURES (c' = {}) | (c' <= c)
//
//	ATOMIC PROCEDURE Broadcast(VAR c: Condition)
//	  MODIFIES AT MOST [c]   ENSURES c' = {}
//
// Signal's postcondition cannot be strengthened to "removes exactly one":
// when several threads race between Enqueue's release of the mutex and the
// Nub's Block, one Signal unblocks all of them (experiment E3). Return from
// Wait is therefore only a hint; callers re-evaluate their predicate and
// Wait again if it does not hold.
//
// Representation, per the paper: a pair (Eventcount, Queue). Wait reads the
// eventcount, releases the mutex, and calls the Nub's Block(c, i); Block
// compares i with the current count under the spin lock and either
// deschedules the caller or — if a Signal or Broadcast intervened — returns
// immediately. Signal and Broadcast increment the eventcount and then move
// one (respectively all) queued threads to the ready pool. The eventcount
// is what lets Broadcast release arbitrarily many racing threads, which a
// semaphore-based implementation cannot do (experiment E5).
type Condition struct {
	nub spinlock.Lock
	ec  eventcount.Count
	// q orders waiters by effective priority, FIFO within a band, so
	// Signal wakes (or morphs) the most urgent waiter first; with no
	// nonzero priorities in the process the order is exactly FIFO.
	q queue.PriorityQueue[*waiter]
	// committed counts threads that have entered the Wait protocol (read
	// the eventcount) and not yet left it. The user code for Signal and
	// Broadcast avoids calling the Nub when it is zero. It is incremented
	// before the eventcount is read, so any Signal issued after a thread
	// commits to waiting either sees the commitment or advances the
	// eventcount that the thread's Block will re-check — no wakeup is
	// lost in the window (the "wakeup-waiting race", experiment E4).
	committed atomic.Int32
	traceID   atomic.Uint64 // conformance-trace identity, assigned lazily
}

// enqueueTraced is the traced prologue shared by Wait and AlertWait: it
// reads the eventcount and draws the Enqueue stamp in one Nub critical
// section (so the stamp orders against every Signal/Broadcast advance),
// emits the Enqueue event, and releases the mutex with the stamp embedded
// in its word — Enqueue's ENSURES covers m' = NIL, so no separate Release
// event is emitted, and the embedded stamp keeps the mutex word's
// never-repeating regime (a plain 0 would reopen the ABA window the
// stamping scheme closes; see trace.go).
func (c *Condition) enqueueTraced(m *Mutex, t *Thread) (i, mObj, cObj uint64) {
	mObj = traceObjID(&m.g.traceID)
	cObj = traceObjID(&c.traceID)
	c.nub.Lock()
	i = c.ec.Read()
	seq := nextTraceSeq()
	c.nub.Unlock()
	traceEmit(seq, TraceEnqueue, t.id, mObj, cObj, false)
	m.releaseEnqueue(seq)
	return i, mObj, cObj
}

// Wait atomically ends the caller's critical section on m and suspends the
// calling thread on c (the Enqueue action); once the thread has been
// removed from c by Signal or Broadcast and the mutex is free, it
// re-enters a new critical section (the Resume action) and Wait returns.
//
// REQUIRES m = SELF. Return is a hint: the associated predicate must be
// re-evaluated, and Wait called again if it does not hold.
func (c *Condition) Wait(m *Mutex) {
	statInc(statWaitCount)
	if traceOn.Load() {
		t := Self()
		c.committed.Add(1)
		i, mObj, cObj := c.enqueueTraced(m, t)
		reason, hseq := c.block(i, nil, &m.g)
		c.committed.Add(-1)
		if reason == reasonHandoff && hseq != 0 {
			// A Release handed this (morphed) waiter the mutex directly;
			// hseq is the stamp its second CAS certified for our
			// resumption, so the Resume event is emitted here and the
			// reacquisition is already done. (A demoted hand-off arrives
			// with hseq 0 and reacquires below like a plain wake.)
			traceEmit(hseq, TraceResume, t.id, mObj, cObj, false)
			if checking.Load() {
				m.holder.Store(t.id)
			}
			return
		}
		// The Resume action (WHEN m = NIL & NOT SELF IN c, ENSURES
		// m' = SELF) is stamped at the reacquiring CAS.
		m.acquireResume(t, traceCtx{kind: TraceResume, tid: t.id, obj2: cObj})
		return
	}
	c.committed.Add(1)
	i := c.ec.Read()
	m.Release() //threadsvet:ignore lockpair: Wait itself: the specification releases the caller-held mutex, blocks, reacquires (paper, Wait(m, c))
	reason, _ := c.block(i, nil, &m.g)
	c.committed.Add(-1)
	if reason == reasonHandoff {
		// Untraced hand-off: the mutex bit never cleared; we hold it.
		if checking.Load() {
			m.holder.Store(Self().id)
		}
		return
	}
	m.Acquire() //threadsvet:ignore lockpair: Wait itself: reacquire on resumption; the caller holds m across Wait
}

// spinBlock is Block's analogue of the gate's adaptive spin: before paying
// for the Nub lock and a park/wake round-trip, briefly poll the eventcount
// for the Signal or Broadcast that short critical sections deliver within
// a few hundred nanoseconds. Returns true if the count advanced — the same
// condition Block checks under the lock — so the wait is elided without
// ever touching the queue. Skipped whenever another thread is committed to
// the Wait protocol (the lock-free proxy for "the queue may be nonempty"):
// an eventcount advance would resume that thread too, so spinning past it
// cannot starve anyone, but it would make the spinner steal wakeups the
// queued thread was closer to; lone-waiter spinning mirrors sync.Mutex's
// empty-queue policy.
func (c *Condition) spinBlock(i uint64) bool {
	if !canSpin() {
		return false
	}
	for r := 0; r < acquireSpinRounds; r++ {
		if c.committed.Load() > 1 { // the caller itself is committed
			return false
		}
		spinlock.Pause(spinPauseIters)
		if c.ec.AdvancedSince(i) {
			return true
		}
	}
	return false
}

// block is the Nub's Block(c, i) subroutine plus the descheduling: under
// the spin lock it compares i with the current eventcount; if unequal (an
// intervening Signal or Broadcast) it returns at once, otherwise the
// calling thread is added to c's queue and descheduled.
//
// For alertable waits, t carries the thread so Alert can claim the wait;
// block returns the wake reason (reasonWake for signal/broadcast or elided
// waits, reasonAlert when Alert won, reasonHandoff when a Release handed
// the morphed waiter the mutex directly — hseq is then the certified
// resume stamp, or 0 for an untraced or demoted hand-off).
//
// For plain waits, mg names the mutex gate Signal may morph this waiter
// onto (wait morphing); alertable waits pass nil — a morphed waiter parks
// on the mutex queue where Alert's claim could not honor the corrected
// c' = delete(c, SELF) semantics without chasing the node across queues.
func (c *Condition) block(i uint64, t *Thread, mg *gate) (reason, hseq uint64) {
	if t == nil && c.spinBlock(i) {
		// The eventcount advanced while spinning: the wait is elided
		// before the waiter is even prepared. Alertable waits skip the
		// spin — they must register for Alert before any waiting, else
		// a pending alert would sit undelivered for the spin's
		// duration.
		statInc(statWaitSpin)
		return reasonWake, 0
	}
	w := getWaiter(t)
	w.capturePri(t)
	if t != nil {
		t.setAlertWaiter(w)
		// A pending alert satisfies the RAISES WHEN clause already;
		// claim it and skip the queue entirely.
		if t.alerted.Load() && w.claim(reasonAlert) {
			t.clearAlertWaiter()
			w.endEpisode()
			return reasonAlert, 0
		}
	} else if mg != nil && CurrentHandoffMode() != HandoffOff {
		w.morphGate = mg
	}
	w.parkStart = handoffNanos()
	c.nub.Lock()
	if c.ec.AdvancedSince(i) {
		c.nub.Unlock()
		statInc(statWaitElided)
		if t != nil {
			t.clearAlertWaiter()
			if w.reason() == reasonAlert {
				// Alert claimed us in the window; both outcomes are
				// specification-conformant, and honoring the alert
				// keeps delivery prompt. Alert owes a wake token;
				// consume it before the waiter can be reused.
				w.drain()
				w.endEpisode()
				return reasonAlert, 0
			}
		}
		w.endEpisode()
		return reasonWake, 0
	}
	c.q.Push(&w.item)
	c.nub.Unlock()
	statInc(statWaitPark)
	reason = w.park()
	if t != nil {
		t.clearAlertWaiter()
	}
	if reason == reasonAlert {
		// Remove ourselves from c — the corrected AlertWait semantics:
		// c' = delete(c, SELF) on the Alerted path, so a later Signal
		// is never absorbed by this departed thread. A racing Signal
		// may have popped us already; Remove is then a no-op and that
		// Signal has re-popped another waiter.
		c.nub.Lock()
		c.q.Remove(&w.item)
		c.nub.Unlock()
	}
	hseq = w.handoffSeq
	w.endEpisode()
	return reason, hseq
}

// Signal unblocks at least one thread waiting on c, if any thread is; it
// may unblock more (every thread racing in the Enqueue→Block window plus
// one queued thread). Using Signal rather than Broadcast is an efficiency
// hint, permissible only when all waiters wait for the same predicate.
func (c *Condition) Signal() {
	if c.committed.Load() == 0 {
		// User-code optimization: no thread is committed to waiting, so
		// no Nub call. (Any thread that commits later will re-check the
		// predicate before blocking — under the mutex its change is
		// visible — so nothing is lost.) No trace event either: this path
		// neither advances the eventcount nor touches the queue, so it can
		// unblock nothing, and Signal with c' = c is always admitted.
		statInc(statSignalFast)
		return
	}
	statInc(statSignalNub)
	var tid uint64
	traced := traceOn.Load()
	if traced {
		tid = Self().id
	}
	c.nub.Lock()
	c.ec.Advance()
	if traced {
		// Stamped inside the same critical section as the advance, so the
		// Signal orders correctly against every Enqueue stamp (drawn under
		// this lock at the eventcount read) and every other advance.
		traceEmit(nextTraceSeq(), TraceSignal, tid, traceObjID(&c.traceID), 0, false)
	}
	for {
		n := c.q.Pop()
		if n == nil {
			break
		}
		w := n.Value
		if mg := w.morphGate; mg != nil && c.morph(w, mg) {
			return
		}
		// Claim under the Nub lock: a popped waiter's episode cannot end
		// (its alerted path must reacquire this lock to leave c) before
		// the claim resolves, so the claim addresses the right episode.
		if w.claim(reasonWake) {
			c.nub.Unlock()
			w.wake()
			statInc(statSignalWoke)
			return
		}
		// This waiter was already claimed by Alert; its wakeup belongs
		// to another thread.
		statInc(statSignalRepop)
	}
	c.nub.Unlock()
}

// morph is Signal's wait morphing: instead of waking the popped waiter —
// which would run only to block again on the mutex — move its node
// straight onto the mutex gate's queue and let the eventual Release wake
// it (or hand it the mutex directly). One park/wake round trip per
// signaled waiter disappears, and the thundering re-acquisition herd after
// a burst of Signals with it.
//
// Called with c.nub held, and returns with it released when the morph
// succeeds (true). The nesting c.nub → mg.nub is one of the package's
// spin-lock nestings (the other is a gate's nub → a thread's donLock,
// gate.piDonate) and nothing acquires in the other order; composed, the
// deepest chain is c.nub → mg.nub → donLock, still cycle-free.
//
// The spec face is untouched: a morphed waiter is still, abstractly, a
// member of c until its Resume; its Resume event is emitted at the
// reacquiring CAS (or with the hand-off's certified stamp) as for any
// woken waiter, and the thin-air check is satisfied by the Signal stamped
// above. Only plain Waits morph (block sets morphGate only when t == nil),
// so the waiter on the mutex queue is unclaimed and cannot be raced by
// Alert; the gate pops it like any Acquire waiter.
func (c *Condition) morph(w *waiter, mg *gate) bool {
	mg.nub.Lock()
	mg.q.Push(&w.item)
	mg.qlen.Add(1)
	if !mg.locked() {
		// The mutex is free: no future Release is obliged to pop the
		// queue, and a parked waiter nobody wakes is a deadlock. Back
		// out and wake it the ordinary way. (If a releaser cleared the
		// bit after our push, its qlen check — a sequentially consistent
		// load after its clearing store — sees our increment and enters
		// releaseNub, so the node is never stranded in the window.)
		mg.q.Remove(&w.item)
		mg.qlen.Add(-1)
		mg.nub.Unlock()
		return false
	}
	// The morphed waiter is now an Acquire waiter in every respect,
	// including priority inheritance: donate its priority to the holder
	// whose Release it awaits.
	mg.piDonate(w)
	mg.nub.Unlock()
	c.nub.Unlock()
	statInc(statSignalMorph)
	return true
}

// Broadcast unblocks all threads waiting on c. Broadcast is necessary (for
// correctness) when multiple waiting threads may have different predicates
// or may all proceed; any implementation satisfying Broadcast's
// specification also satisfies Signal's.
func (c *Condition) Broadcast() {
	if c.committed.Load() == 0 {
		statInc(statBcastFast)
		return
	}
	statInc(statBcastNub)
	var tid uint64
	traced := traceOn.Load()
	if traced {
		tid = Self().id
	}
	var woke uint64
	c.nub.Lock()
	c.ec.Advance()
	if traced {
		traceEmit(nextTraceSeq(), TraceBroadcast, tid, traceObjID(&c.traceID), 0, false)
	}
	// Claim and wake under the Nub lock: wake never blocks (the parking
	// place is buffered), claims stay within the popped episodes, and the
	// drain allocates nothing — where the old PopAll built a slice per
	// Broadcast.
	//threadsvet:ignore nubdiscipline: the drain closure is inlined into Broadcast (go build -gcflags=-m: no heap allocation, no indirect call survives)
	c.q.Drain(func(n *queue.PItem[*waiter]) {
		w := n.Value
		if w.claim(reasonWake) {
			w.wake()
			woke++
		}
	})
	c.nub.Unlock()
	statAdd(statBcastWoke, woke)
}

// AlertWait is Wait, except that it may return Alerted rather than nil.
// The choice between AlertWait and Wait depends on whether the calling
// thread is to respond to an Alert at this point.
//
// Specification (the corrected version — see experiment E7):
//
//	PROCEDURE AlertWait(VAR m: Mutex; VAR c: Condition) RAISES {Alerted} =
//	  COMPOSITION OF Enqueue; AlertResume END
//	  REQUIRES m = SELF
//	  MODIFIES AT MOST [m, c, alerts]
//	  ATOMIC ACTION Enqueue
//	    ENSURES (c' = insert(c, SELF)) & (m' = NIL) & UNCHANGED [alerts]
//	  ATOMIC ACTION AlertResume
//	    RETURNS WHEN (m = NIL) & NOT (SELF IN c)
//	      ENSURES (m' = SELF) & UNCHANGED [c, alerts]
//	    RAISES Alerted WHEN (m = NIL) & (SELF IN alerts)
//	      ENSURES (m' = SELF) & (c' = delete(c, SELF)) &
//	              (alerts' = delete(alerts, SELF))
//
// On the Alerted path the thread is deleted from c (the original
// specification's UNCHANGED [c] here was the error found after a year of
// use) and the mutex is reacquired before the exception is reported, so the
// caller is in a critical section either way. The RETURNS and RAISES WHEN
// clauses overlap; when a Signal and an Alert race, either outcome may be
// observed (experiment E8).
func (c *Condition) AlertWait(m *Mutex) error { return c.alertWait(m, Self()) }

// alertWait is AlertWait with SELF already recovered, so AlertWaitDeadline
// pays the identity lookup once per operation rather than once per layer.
func (c *Condition) alertWait(m *Mutex, t *Thread) error {
	statIncT(t, statWaitCount)
	c.committed.Add(1)
	if traceOn.Load() {
		i, mObj, cObj := c.enqueueTraced(m, t)
		reason, _ := c.block(i, t, nil)
		c.committed.Add(-1)
		if reason == reasonAlert {
			// AlertResume's RAISES case is stamped in the alerts domain
			// (under t's alertLock, where the alerts-set deletion is
			// serialized), not at the mutex CAS, so the reacquisition
			// itself is silent. That is safe: between this thread's
			// winning CAS and the Raise stamp no other thread can emit a
			// mutex event — Acquire/Resume CASes fail while the mutex is
			// held, and only the holder may Release — so the Raise still
			// lands between the previous holder's event and this thread's
			// next one in stamp order.
			m.acquireResume(t, traceCtx{})
			t.consumeAlertEmit(TraceAlertResumeRaise, mObj, cObj)
			statIncT(t, statAlertedWait)
			return Alerted
		}
		m.acquireResume(t, traceCtx{kind: TraceAlertResumeReturn, tid: t.id, obj2: cObj})
		return nil
	}
	i := c.ec.Read()
	m.Release() //threadsvet:ignore lockpair: AlertWait itself: releases the caller-held mutex before blocking (paper, AlertWait(m, c))
	reason, _ := c.block(i, t, nil)
	c.committed.Add(-1)
	m.Acquire() //threadsvet:ignore lockpair: AlertWait itself: reacquire on resumption; the caller holds m across AlertWait
	if reason == reasonAlert {
		t.alerted.Store(false)
		statIncT(t, statAlertedWait)
		return Alerted
	}
	return nil
}

// Waiters returns the number of threads currently enqueued on c (advisory;
// threads racing in the Enqueue→Block window are not counted).
func (c *Condition) Waiters() int {
	c.nub.Lock()
	n := c.q.Len()
	c.nub.Unlock()
	return n
}
