package core

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// CountingSemaphore is the counting generalization of Semaphore, built for
// core-count scaling (extension; the paper's Semaphore is binary). The
// abstract state is a single token count:
//
//	ATOMIC PROCEDURE P(VAR s: CountingSemaphore)
//	  MODIFIES AT MOST [s]   WHEN s > 0   ENSURES s' = s - 1
//
//	ATOMIC PROCEDURE V(VAR s: CountingSemaphore)
//	  MODIFIES AT MOST [s]   ENSURES s' = s + 1
//
// A single shared counter satisfies that specification and becomes the
// scalability wall: every P and V bounces one cache line between all
// processors. The representation here shards the count into per-core
// cache-line-padded cells; an uncontended P/V pair touches only the
// caller's cell, so disjoint cores proceed with no coherence traffic at
// all. The specification face is unchanged — only the sum of the cells is
// abstract state, and every operation moves it by exactly one.
//
// The fast P is optimistic: fetch-and-add -1 on the caller's cell and keep
// the token if the result is non-negative. A negative result means the
// cell had no token; the debt is repaired (+1) and the operation falls
// back to the slow path, which serializes through an internal Mutex and
// Condition — the package's own primitives, so the fallback inherits their
// Nub discipline, their conformance tracing, and (when enabled) direct
// hand-off on the internal mutex. The transient negative a repair leaves
// visible cannot strand a token: the hider itself enters the serialized
// slow path next, where it either takes the token it re-published or
// leaves it for a signalled waiter (see TestCountingSemaphoreHiding).
//
// The V side is an unconditional fetch-and-add +1 followed by a
// waiter-wakeup check. The check is one shared-line load, but the line is
// written only when the slow path is entered — at saturation, not in the
// scaling regime the sharding exists for.
//
// Unlike the binary Semaphore's V, CountingSemaphore.V may block briefly
// (on the internal mutex, when waiters exist), so it must not be called
// from interrupt routines; the binary Semaphore remains the primitive for
// that (see Semaphore).
type CountingSemaphore struct {
	shards []csemShard
	mask   uintptr
	// waiters counts threads committed to the slow path; V consults it to
	// skip the mutex entirely when nobody can be blocked. Incremented
	// under m before the first slow-path scan (the Dekker ordering against
	// V's token-store/waiters-load; see vSlow).
	waiters  atomic.Int32
	m        Mutex
	nonEmpty Condition
}

// csemShard is one cache-line-padded cell of the token count. Cells may go
// transiently negative (an optimistic P that found no token, before its
// repair); the abstract count is the sum over cells of max(cell, 0) — a
// negative cell is exactly balanced by its owner's in-flight repair.
type csemShard struct {
	tokens atomic.Int64
	_      [cacheLineSize - 8]byte
}

// NewCountingSemaphore returns a counting semaphore holding tokens, with
// one counter cell per processor (rounded up to a power of two).
func NewCountingSemaphore(tokens int) *CountingSemaphore {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return NewCountingSemaphoreShards(tokens, n)
}

// NewCountingSemaphoreShards is NewCountingSemaphore with an explicit cell
// count (rounded up to a power of two), so tests can exercise multi-cell
// migration and contention on a single-processor box.
func NewCountingSemaphoreShards(tokens, shards int) *CountingSemaphore {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &CountingSemaphore{shards: make([]csemShard, n), mask: uintptr(n - 1)}
	// Spread the initial tokens so the zero-contention fast path works
	// from every cell immediately.
	for i := 0; i < tokens; i++ {
		c.shards[i&int(c.mask)].tokens.Add(1)
	}
	return c
}

// cell picks the caller's counter cell by the same thread-identity hash
// the statistics shards use: the address of a stack variable, stable
// within a goroutine and spread across them.
func (c *CountingSemaphore) cell() *csemShard {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return &c.shards[((p>>10)^(p>>16))&c.mask]
}

// P blocks until the semaphore's count is positive and decrements it.
func (c *CountingSemaphore) P() {
	s := c.cell()
	if s.tokens.Add(-1) >= 0 {
		return
	}
	s.tokens.Add(1) // repair the debt; the cell had nothing to give
	c.pSlow()
}

// pSlow takes a token under the internal mutex: scan every cell, and if
// all are empty wait for a V to signal. The scan itself still uses the
// optimistic take — fast-path P's on other cells proceed untouched while
// the slow path runs.
func (c *CountingSemaphore) pSlow() {
	c.m.Acquire()
	c.waiters.Add(1)
	for !c.takeAny() {
		// The eventcount commitment inside Wait closes the window against
		// signals racing this thread's failed scan (the wakeup-waiting
		// race); the waiters counter above closes the wider one against
		// V's skip-the-mutex fast path, because V stores its token before
		// loading waiters (vSlow) while this thread stored waiters before
		// scanning — one of the two must see the other.
		c.nonEmpty.Wait(&c.m)
	}
	c.waiters.Add(-1)
	c.m.Release()
}

// takeAny scans all cells for a token, optimistically. Callers hold c.m;
// concurrent fast-path activity can make a cell transiently negative, in
// which case the repair is that thread's obligation, not ours.
func (c *CountingSemaphore) takeAny() bool {
	for i := range c.shards {
		s := &c.shards[i]
		if s.tokens.Load() > 0 {
			if s.tokens.Add(-1) >= 0 {
				return true
			}
			s.tokens.Add(1)
		}
	}
	return false
}

// TryP decrements the count if it is positive and reports whether it did.
func (c *CountingSemaphore) TryP() bool {
	s := c.cell()
	if s.tokens.Add(-1) >= 0 {
		return true
	}
	s.tokens.Add(1)
	c.m.Acquire()
	ok := c.takeAny()
	c.m.Release()
	return ok
}

// V increments the count and, if threads are blocked in P, wakes one.
func (c *CountingSemaphore) V() {
	c.cell().tokens.Add(1)
	// Dekker against pSlow: our token store above is sequenced before this
	// waiters load, and a slow-path P stores waiters before scanning the
	// cells. If we miss its increment here, its scan sees our token; if
	// its scan missed our token, we see its increment and signal.
	if c.waiters.Load() != 0 {
		c.vSlow()
	}
}

func (c *CountingSemaphore) vSlow() {
	c.m.Acquire()
	c.nonEmpty.Signal()
	c.m.Release()
}

// Tokens returns the current count (advisory: the sum over cells races
// in-flight operations and may transiently undercount by in-flight
// repairs).
func (c *CountingSemaphore) Tokens() int64 {
	var n int64
	for i := range c.shards {
		if t := c.shards[i].tokens.Load(); t > 0 {
			n += t
		}
	}
	return n
}

// Waiters returns the number of threads blocked in P (advisory).
func (c *CountingSemaphore) Waiters() int { return int(c.waiters.Load()) }
