package core

import (
	"sort"
	"sync"
	"testing"
)

// The stamping-scheme tests replay collected TraceRecords through a minimal
// in-package checker (internal/trace imports this package, so these tests
// cannot; the full-spec replay lives in internal/trace's conformance
// tests). The property checked is the one the CAS-embedded stamp exists
// for: sorted by stamp, per-object transitions alternate legally — no
// Acquire of a held mutex, no Release by a non-holder, no P of an
// unavailable semaphore. A stamp taken after (or before, rather than at)
// the winning CAS inverts with a concurrent transition under contention
// and fails exactly these checks.

// replayGateTrace validates mutex/semaphore transitions in stamp order.
func replayGateTrace(t *testing.T, shards [][]TraceRecord) (n int) {
	t.Helper()
	var recs []TraceRecord
	for _, s := range shards {
		recs = append(recs, s...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	holders := map[uint64]uint64{} // mutex obj -> tid
	taken := map[uint64]bool{}     // semaphore obj -> unavailable
	lastSeq := uint64(0)
	for _, r := range recs {
		if r.Seq <= lastSeq {
			t.Fatalf("stamp %d not strictly increasing after %d (duplicate or unsorted)", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		switch r.Kind {
		case TraceAcquire:
			if h := holders[r.Obj]; h != 0 {
				t.Fatalf("stamp %d: Acquire(t%d, m%d) while held by t%d — stamp order diverged from transition order", r.Seq, r.TID, r.Obj, h)
			}
			holders[r.Obj] = r.TID
		case TraceRelease:
			if h := holders[r.Obj]; h != r.TID {
				t.Fatalf("stamp %d: Release(t%d, m%d) but holder is t%d", r.Seq, r.TID, r.Obj, h)
			}
			holders[r.Obj] = 0
		case TraceP:
			if taken[r.Obj] {
				t.Fatalf("stamp %d: P(t%d, s%d) while unavailable — stamp order diverged from transition order", r.Seq, r.TID, r.Obj)
			}
			taken[r.Obj] = true
		case TraceV:
			taken[r.Obj] = false
		default:
			t.Fatalf("stamp %d: unexpected kind %d in a gate-only workload", r.Seq, r.Kind)
		}
		n++
	}
	return n
}

// TestTraceStampMutexOrder hammers one mutex from many goroutines with
// tracing on: the recorded Acquire/Release stream, sorted by stamp, must be
// a legal alternation. This is the direct test of the fast-path ordering
// hazard — the Acquire CAS racing the Release transition.
func TestTraceStampMutexOrder(t *testing.T) {
	const (
		goroutines = 8
		iters      = 5000
	)
	StartTracing(1 << 18)
	defer StopTracing()
	var m Mutex
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			defer Detach()
			for i := 0; i < iters; i++ {
				m.Acquire()
				m.Release()
			}
		}()
	}
	wg.Wait()
	shards, dropped := CollectTrace()
	if dropped > 0 {
		t.Fatalf("rings overflowed: %d dropped", dropped)
	}
	if n := replayGateTrace(t, shards); n != goroutines*iters*2 {
		t.Fatalf("replayed %d events, want %d", n, goroutines*iters*2)
	}
}

// TestTraceStampSemaphoreOrder is the semaphore variant: concurrent V's
// race each other and P's (V has no REQUIRES clause, so the release CAS
// loop genuinely contends), which is the overtaking scenario that breaks
// draw-stamp-before-instruction schemes.
func TestTraceStampSemaphoreOrder(t *testing.T) {
	const (
		goroutines = 8
		iters      = 5000
	)
	StartTracing(1 << 18)
	defer StopTracing()
	var s Semaphore
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			defer Detach()
			for i := 0; i < iters; i++ {
				s.P()
				s.V()
			}
		}()
	}
	wg.Wait()
	shards, dropped := CollectTrace()
	if dropped > 0 {
		t.Fatalf("rings overflowed: %d dropped", dropped)
	}
	if n := replayGateTrace(t, shards); n != goroutines*iters*2 {
		t.Fatalf("replayed %d events, want %d", n, goroutines*iters*2)
	}
}

// TestTraceRingOverflowIsReported pins CollectTrace's drop accounting: a
// ring smaller than the burst must report exactly the excess as dropped —
// overflow may never pass silently into a conformance verdict.
func TestTraceRingOverflowIsReported(t *testing.T) {
	StartTracing(8) // tiny rings
	defer StopTracing()
	var m Mutex
	const ops = 1000
	for i := 0; i < ops; i++ {
		m.Acquire()
		m.Release()
	}
	shards, dropped := CollectTrace()
	var kept uint64
	for _, s := range shards {
		kept += uint64(len(s))
	}
	if kept+dropped != 2*ops {
		t.Fatalf("kept %d + dropped %d != %d written", kept, dropped, 2*ops)
	}
	if dropped == 0 {
		t.Fatalf("expected overflow with 8-record rings and %d events", 2*ops)
	}
}

// TestTraceCollectResetsPositions pins episodic collection: a second
// collect after more traffic returns only the new records.
func TestTraceCollectResetsPositions(t *testing.T) {
	StartTracing(1 << 10)
	defer StopTracing()
	var m Mutex
	m.Acquire()
	m.Release()
	_, dropped := CollectTrace()
	if dropped > 0 {
		t.Fatal("unexpected drop")
	}
	m.Acquire()
	m.Release()
	shards, _ := CollectTrace()
	var n int
	for _, s := range shards {
		n += len(s)
	}
	if n != 2 {
		t.Fatalf("second episode collected %d records, want 2", n)
	}
}

// Benchmarks measuring the cost of conformance tracing, quoted in
// EXPERIMENTS.md E9: the disabled case is the tax every build pays for
// having the instrumentation compiled in (one atomic-bool load per
// operation); the enabled case adds the stamp fetch-add and the ring
// store.

func benchMutexPair(b *testing.B, traced bool) {
	if traced {
		StartTracing(1 << 20)
		defer StopTracing()
		defer CollectTrace() // keep the rings from carrying into other tests
	}
	var m Mutex
	b.RunParallel(func(pb *testing.PB) {
		defer Detach()
		for pb.Next() {
			m.Acquire()
			m.Release()
		}
	})
	if traced {
		b.StopTimer()
		if _, dropped := CollectTrace(); dropped > 0 {
			b.Logf("note: %d records dropped (ring wrap during benchmark)", dropped)
		}
	}
}

func BenchmarkMutexPairTracingOff(b *testing.B) { benchMutexPair(b, false) }
func BenchmarkMutexPairTracingOn(b *testing.B)  { benchMutexPair(b, true) }

// The serial pair isolates the per-operation instrumentation cost from the
// contention the shared stamp counter adds under parallel load.
func benchMutexPairSerial(b *testing.B, traced bool) {
	if traced {
		StartTracing(1 << 20)
		defer StopTracing()
		defer CollectTrace()
	}
	var m Mutex
	for i := 0; i < b.N; i++ {
		m.Acquire()
		m.Release()
	}
}

func BenchmarkMutexPairSerialTracingOff(b *testing.B) { benchMutexPairSerial(b, false) }
func BenchmarkMutexPairSerialTracingOn(b *testing.B)  { benchMutexPairSerial(b, true) }

// TestDisabledFastPathClearsStaleStamps pins the regime change: after a
// traced period leaves stamp bits in a gate word, the untraced fast path
// must still acquire (via its fallback CAS) and return the word to the
// plain 0/1 regime rather than spinning or blocking forever.
func TestDisabledFastPathClearsStaleStamps(t *testing.T) {
	StartTracing(1 << 10)
	var m Mutex
	var s Semaphore
	m.Acquire()
	m.Release() // word now holds a stamp with the lock bit clear
	s.P()
	s.V()
	StopTracing()
	CollectTrace()
	if !m.TryAcquire() {
		t.Fatal("TryAcquire failed on a free mutex carrying stale stamp bits")
	}
	m.Release()
	if !m.g.word.CompareAndSwap(0, 0) && m.g.word.Load() != 0 {
		t.Fatalf("untraced release left word %#x, want 0", m.g.word.Load())
	}
	if !s.TryP() {
		t.Fatal("TryP failed on an available semaphore carrying stale stamp bits")
	}
	s.V()
}
