package core

import (
	"sync"
	"testing"
)

// registrySize counts live goroutine→Thread registry entries across all
// shards.
func registrySize() int {
	n := 0
	for _, s := range registry {
		s.lock.Lock()
		n += len(s.m)
		s.lock.Unlock()
	}
	return n
}

// TestAdoptedGoroutinesDetachWithoutRegistryGrowth is the regression test
// for the Detach audit: every raw goroutine that touches a primitive is
// adopted into the registry by Self(), and without a matching Detach those
// entries outlive the goroutine — goroutine ids are not reused promptly, so
// a long-lived program leaks an entry (and pins a Thread) per worker. The
// test adopts a burst of transient goroutines, verifies they really were
// registered while alive, and asserts the registry returns to its baseline
// once they Detach.
func TestAdoptedGoroutinesDetachWithoutRegistryGrowth(t *testing.T) {
	base := registrySize()
	const n = 128
	var (
		m       Mutex
		adopted sync.WaitGroup
		release = make(chan struct{})
		wg      sync.WaitGroup
	)
	adopted.Add(n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			defer Detach()
			Self() // adopt (uncontended Acquire never computes SELF)
			m.Acquire()
			m.Release()
			adopted.Done()
			<-release // hold the registration until the mid-flight count
		}()
	}
	adopted.Wait()
	if got := registrySize(); got < base+n {
		t.Fatalf("registry holds %d entries with %d adopted goroutines alive, want >= %d", got, n, base+n)
	}
	close(release)
	wg.Wait()
	if got := registrySize(); got > base {
		t.Fatalf("registry grew from %d to %d after all adopted goroutines detached", base, got)
	}
}
