package core

import (
	"sync/atomic"
)

// Runtime conformance tracing (experiment E9, extended from the simulator to
// this implementation). When enabled, every operation records one TraceRecord
// at its linearization point, stamped with a value from a single global
// atomic sequence counter. Records land in sharded, cache-line-padded ring
// buffers; internal/trace merges the shards by stamp and replays the result
// through the specification's state machine.
//
// Cost model: disabled, tracing is one predictable branch per operation (the
// same discipline as the contention counters). Enabled, every record is a
// plain struct store into a preallocated ring — no allocation per event.
//
// # The stamping scheme (the fast-path ordering hazard)
//
// A stamp taken *after* a linearization instruction can invert with a
// concurrent operation on the same object: Release stores the cleared lock
// word, Acquire's CAS wins on it, Acquire draws stamp 5, Release draws stamp
// 6 — and the merged trace replays an Acquire of a held mutex. Symmetrically,
// a stamp drawn *before* the instruction can be overtaken (two concurrent V's
// draw 5 and 6; the 6 lands first; a P slips between them and the trace shows
// its successor P taking an unavailable semaphore).
//
// The scheme used here makes the stamp and the transition one atomic step:
//
//   - The gate's lock word is 64 bits: bit 0 is the lock bit, bits 1..63
//     carry the stamp of the transition that produced the current value.
//     Every traced transition is load word → draw stamp → CAS(old, new).
//     A successful CAS certifies that no other transition touched the word
//     between the load (hence the draw) and the effect, so for any two
//     successful transitions on one gate, stamp order equals CAS order.
//     Stamps never repeat, so the CAS is ABA-proof while tracing. The stamp
//     is therefore taken at — not after — the winning CAS, in the sense that
//     the CAS fails unless the stamp is still fresh.
//
//   - Condition events (Enqueue's commitment point, Signal/Broadcast's
//     eventcount advance) draw their stamps under the condition's Nub spin
//     lock, which already serializes exactly those transitions. Wait draws
//     its Enqueue stamp under the Nub lock at the eventcount read — the
//     commitment after which no Signal can be missed — and embeds that stamp
//     in the mutex word when it releases the mutex (Enqueue subsumes the
//     release; no separate Release event is emitted), so any later Acquire
//     of the mutex outranks the Enqueue.
//
//   - Alert-set events (Alert, TestAlert, and the Alerted returns of
//     AlertWait/AlertP, which delete SELF from alerts) draw their stamps
//     under the target thread's alertLock, which serializes every access to
//     that thread's membership bit.
//
// Cross-domain order needs no extra machinery: if operation A's effect is
// observed by operation B (a CAS reading a store, a flag read after a store
// under a lock), then A drew its stamp before its effect completed and B drew
// its stamp after observing it, and a single fetch-add counter allocates in
// real-time order. TestTraceStampMutexOrder and TestTraceStampSemaphoreOrder
// exercise the two gate-side races directly.
//
// Enable/disable transitions must happen while the primitives are quiesced
// (no operation in flight); a mid-operation flip loses that operation's
// events, though it cannot corrupt the primitives themselves.

// TraceKind discriminates TraceRecord events. The values mirror the
// specification's atomic procedures and actions; internal/trace maps them
// onto spec.Action values.
type TraceKind uint8

const (
	TraceNone              TraceKind = iota
	TraceAcquire                     // Obj = mutex
	TraceRelease                     // Obj = mutex
	TraceEnqueue                     // Obj = mutex, Obj2 = condition
	TraceResume                      // Obj = mutex, Obj2 = condition
	TraceSignal                      // Obj = condition
	TraceBroadcast                   // Obj = condition
	TraceP                           // Obj = semaphore
	TraceV                           // Obj = semaphore
	TraceAlert                       // Obj2 = target thread
	TraceTestAlert                   // Result = returned value
	TraceAlertPReturn                // Obj = semaphore
	TraceAlertPRaise                 // Obj = semaphore
	TraceAlertResumeReturn           // Obj = mutex, Obj2 = condition
	TraceAlertResumeRaise            // Obj = mutex, Obj2 = condition
	TracePriBoost                    // TID = boosted thread, Obj = new effective priority, Obj2 = previous
	TracePriRestore                  // TID = restored thread, Obj = new effective priority, Obj2 = previous
)

// TraceRecord is one linearized action. TID is the executing thread's ID
// (the specification's SELF); Obj and Obj2 identify the primitives involved
// (see the TraceKind comments); stamps from the global counter are unique
// but not dense — failed CAS attempts discard their stamps.
type TraceRecord struct {
	Seq    uint64
	TID    uint64
	Obj    uint64
	Obj2   uint64
	Kind   TraceKind
	Result bool
}

// traceCtx carries the event a gate transition should emit at its winning
// CAS. A zero traceCtx (Kind == TraceNone) means tracing is off for this
// operation — the gate then uses the untraced single-CAS fast path.
type traceCtx struct {
	kind TraceKind
	tid  uint64
	obj2 uint64
}

var (
	// traceOn is the package-level enable flag; every operation's first
	// tracing decision is one load of it.
	traceOn atomic.Bool
	// traceSeq is the global stamp counter. Stamps fit in 63 bits so they
	// can share the gate word with the lock bit.
	traceSeq atomic.Uint64
	// traceObjIDs allocates identities for traced primitives, lazily on
	// first event. IDs are dense-ish and shared across mutexes, semaphores
	// and conditions (distinct objects never collide).
	traceObjIDs atomic.Uint64
	// traceShards holds the per-CPU rings; nil until StartTracing.
	traceShards []traceShard
	// traceRingMask is the per-shard capacity minus one (capacity is a
	// power of two).
	traceRingMask uint64
)

// traceShard is one padded ring. pos counts every record ever written to
// this shard; the low bits index the ring, so pos > len(buf) means the ring
// wrapped and oldest records were overwritten.
type traceShard struct {
	pos atomic.Uint64
	buf []TraceRecord
	_   [cacheLineSize - 8 - 24]byte
}

// TracingEnabled reports whether conformance tracing is recording.
func TracingEnabled() bool { return traceOn.Load() }

// StartTracing allocates the sharded rings (one per statistics shard, each
// holding perShardCap records rounded up to a power of two) and enables
// recording. It must be called while the primitives are quiesced. Any
// previously collected shards are discarded.
func StartTracing(perShardCap int) {
	if perShardCap < 1 {
		perShardCap = 1
	}
	n := 1
	for n < perShardCap {
		n <<= 1
	}
	traceShards = make([]traceShard, len(statShards))
	for i := range traceShards {
		traceShards[i].buf = make([]TraceRecord, n)
	}
	traceRingMask = uint64(n - 1)
	traceOn.Store(true)
}

// StopTracing disables recording. Records already written remain available
// to CollectTrace. Must be called while the primitives are quiesced.
func StopTracing() { traceOn.Store(false) }

// CollectTrace drains the shards: it returns one slice per shard in write
// order, plus the count of records lost to ring wrap-around (a conformance
// run requires zero — grow perShardCap or collect more often). Shard
// positions reset, so episodic collection composes: run, quiesce, collect,
// feed, repeat, with the stamp counter still increasing across episodes.
// The caller must quiesce the primitives first; within a shard, records are
// nearly stamp-sorted (two operations can draw stamps and write to the same
// shard in opposite orders), which is why internal/trace re-sorts on merge.
func CollectTrace() (shards [][]TraceRecord, dropped uint64) {
	for i := range traceShards {
		sh := &traceShards[i]
		pos := sh.pos.Load()
		n := pos
		if n > uint64(len(sh.buf)) {
			dropped += n - uint64(len(sh.buf))
			n = uint64(len(sh.buf))
		}
		out := make([]TraceRecord, n)
		copy(out, sh.buf[:n])
		shards = append(shards, out)
		sh.pos.Store(0)
	}
	return shards, dropped
}

// nextTraceSeq draws a fresh stamp.
func nextTraceSeq() uint64 { return traceSeq.Add(1) }

// traceEmit records one event. Allocation-free: a struct store into the
// caller's shard ring.
func traceEmit(seq uint64, kind TraceKind, tid, obj, obj2 uint64, result bool) {
	if traceShards == nil {
		return
	}
	sh := &traceShards[statShardIdx()]
	i := sh.pos.Add(1) - 1
	sh.buf[i&traceRingMask] = TraceRecord{
		Seq: seq, TID: tid, Obj: obj, Obj2: obj2, Kind: kind, Result: result,
	}
}

// traceObjID returns the object identity stored in id, assigning one on
// first use.
func traceObjID(id *atomic.Uint64) uint64 {
	v := id.Load()
	for v == 0 {
		id.CompareAndSwap(0, traceObjIDs.Add(1))
		v = id.Load()
	}
	return v
}

// traceAcquireCtx builds the traceCtx for a gate acquisition path: kind and
// the calling thread, resolved only when tracing is on (Self costs a
// runtime.Stack header parse, which the untraced fast paths never pay).
func traceAcquireCtx(kind TraceKind) traceCtx {
	if !traceOn.Load() {
		return traceCtx{}
	}
	return traceCtx{kind: kind, tid: Self().id}
}
