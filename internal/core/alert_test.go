package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTestAlertConsumesPending(t *testing.T) {
	result := make(chan [3]bool, 1)
	th := Fork(func() {
		// Wait until the alert arrives.
		for !AlertPending(Self()) {
			time.Sleep(time.Millisecond)
		}
		a := TestAlert() // true, consumes
		b := TestAlert() // false, already consumed
		c := TestAlert() // still false
		result <- [3]bool{a, b, c}
	})
	Alert(th)
	Join(th)
	r := <-result
	if r != [3]bool{true, false, false} {
		t.Fatalf("TestAlert sequence = %v, want [true false false]", r)
	}
}

func TestTestAlertWithoutAlert(t *testing.T) {
	th := Fork(func() {
		if TestAlert() {
			t.Error("TestAlert true with no pending alert")
		}
	})
	Join(th)
}

func TestAlertWaitRaisesWhenBlocked(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	errCh := make(chan error, 1)
	th := Fork(func() {
		m.Acquire()
		err := c.AlertWait(&m)
		if !m.Held() {
			t.Error("mutex not held after AlertWait (m' = SELF violated)")
		}
		m.Release()
		errCh <- err
	})
	// Let it block, then alert.
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked in AlertWait")
		}
		time.Sleep(time.Millisecond)
	}
	Alert(th)
	Join(th)
	if err := <-errCh; !errors.Is(err, Alerted) {
		t.Fatalf("AlertWait returned %v, want Alerted", err)
	}
}

func TestAlertWaitPendingAlertRaisesImmediately(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	errCh := make(chan error, 1)
	th := Fork(func() {
		// Ensure the alert is pending before AlertWait is called.
		for !AlertPending(Self()) {
			time.Sleep(time.Millisecond)
		}
		m.Acquire()
		err := c.AlertWait(&m)
		m.Release()
		errCh <- err
	})
	Alert(th)
	Join(th)
	if err := <-errCh; !errors.Is(err, Alerted) {
		t.Fatalf("AlertWait with pending alert returned %v, want Alerted", err)
	}
}

func TestAlertWaitConsumesAlert(t *testing.T) {
	// alerts' = delete(alerts, SELF): after the Alerted return, the flag
	// is gone.
	var (
		m Mutex
		c Condition
	)
	th := Fork(func() {
		m.Acquire()
		if err := c.AlertWait(&m); !errors.Is(err, Alerted) {
			t.Error("expected Alerted")
		}
		m.Release()
		if TestAlert() {
			t.Error("alert flag survived the Alerted return")
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	Alert(th)
	Join(th)
}

func TestAlertWaitNormalReturnOnSignal(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	errCh := make(chan error, 1)
	Fork(func() {
		m.Acquire()
		err := c.AlertWait(&m)
		m.Release()
		errCh <- err
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	c.Signal()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("AlertWait after Signal returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AlertWait never returned after Signal")
	}
}

// TestAlertedThreadDoesNotAbsorbSignal is the operational argument for the
// corrected specification (experiment E7b, Greg Nelson's scenario): thread
// t is alerted out of AlertWait; a subsequent Signal must wake a live
// waiter, not be absorbed by the departed t.
func TestAlertedThreadDoesNotAbsorbSignal(t *testing.T) {
	for round := 0; round < 50; round++ {
		var (
			m Mutex
			c Condition
		)
		alertedErr := make(chan error, 1)
		tAlerted := Fork(func() {
			m.Acquire()
			err := c.AlertWait(&m)
			m.Release()
			alertedErr <- err
		})
		liveDone := make(chan struct{})
		Fork(func() {
			m.Acquire()
			c.Wait(&m)
			m.Release()
			close(liveDone)
		})
		// Both blocked.
		deadline := time.Now().Add(5 * time.Second)
		for c.Waiters() < 2 {
			if time.Now().After(deadline) {
				t.Fatal("waiters never blocked")
			}
			time.Sleep(time.Millisecond)
		}
		Alert(tAlerted)
		if err := <-alertedErr; !errors.Is(err, Alerted) {
			t.Fatalf("round %d: alerted thread returned %v", round, err)
		}
		// t has left AlertWait. One Signal must now wake the live waiter.
		c.Signal()
		waitDone(t, liveDone, "live waiter (signal absorbed by departed thread?)")
	}
}

// TestSignalAlertRace drives Signal and Alert concurrently against one
// AlertWait and checks that (a) every outcome is one of the two permitted
// ones and (b) nothing deadlocks. Over many rounds both outcomes should
// occur (E8's non-determinism) — but the test only *requires* validity,
// not any particular mix, since scheduling may legitimately skew it.
func TestSignalAlertRace(t *testing.T) {
	var normal, alerted int
	for round := 0; round < 200; round++ {
		var (
			m Mutex
			c Condition
		)
		errCh := make(chan error, 1)
		th := Fork(func() {
			m.Acquire()
			err := c.AlertWait(&m)
			m.Release()
			if err == nil {
				// Normal return: pending alert (if the alert lost the
				// race it is still pending) must remain for TestAlert.
				errCh <- nil
				return
			}
			errCh <- err
		})
		deadline := time.Now().Add(5 * time.Second)
		for c.Waiters() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("waiter never blocked")
			}
			time.Sleep(time.Millisecond)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); c.Signal() }()
		go func() { defer wg.Done(); Alert(th) }()
		wg.Wait()
		err := <-errCh
		switch {
		case err == nil:
			normal++
		case errors.Is(err, Alerted):
			alerted++
		default:
			t.Fatalf("unexpected error %v", err)
		}
		Join(th)
	}
	t.Logf("signal/alert race outcomes: %d normal, %d alerted", normal, alerted)
	if normal+alerted != 200 {
		t.Fatalf("accounted %d outcomes, want 200", normal+alerted)
	}
}

func TestAlertPRaisesWhenBlocked(t *testing.T) {
	var s Semaphore
	s.P() // make unavailable so AlertP blocks
	errCh := make(chan error, 1)
	th := Fork(func() {
		errCh <- s.AlertP()
	})
	deadline := time.Now().Add(5 * time.Second)
	for s.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked in AlertP")
		}
		time.Sleep(time.Millisecond)
	}
	Alert(th)
	Join(th)
	if err := <-errCh; !errors.Is(err, Alerted) {
		t.Fatalf("AlertP returned %v, want Alerted", err)
	}
	// UNCHANGED [s]: the semaphore must still be unavailable.
	if s.Available() {
		t.Fatal("AlertP's Alerted path changed the semaphore")
	}
	s.V()
}

func TestAlertPNormalPath(t *testing.T) {
	var s Semaphore
	th := Fork(func() {
		if err := s.AlertP(); err != nil {
			t.Errorf("AlertP on available semaphore returned %v", err)
		}
		// ENSURES s' = unavailable & UNCHANGED [alerts].
		if s.Available() {
			t.Error("semaphore still available after AlertP returned normally")
		}
		s.V()
	})
	Join(th)
}

// TestAlertPDoesNotStealV: when an alerted thread leaves the semaphore
// queue, a V must still reach a live P waiter.
func TestAlertPDoesNotStealV(t *testing.T) {
	for round := 0; round < 50; round++ {
		var s Semaphore
		s.P()
		errCh := make(chan error, 1)
		alertee := Fork(func() { errCh <- s.AlertP() })
		liveDone := make(chan struct{})
		Fork(func() {
			s.P()
			close(liveDone)
		})
		deadline := time.Now().Add(5 * time.Second)
		for s.Waiters() < 2 {
			if time.Now().After(deadline) {
				t.Fatal("waiters never blocked")
			}
			time.Sleep(time.Millisecond)
		}
		Alert(alertee)
		if err := <-errCh; !errors.Is(err, Alerted) {
			t.Fatalf("alertee returned %v", err)
		}
		s.V()
		waitDone(t, liveDone, "live P waiter (V absorbed by departed thread?)")
	}
}

// TestAlertToRunningThreadStaysPending: alerting a thread that is not in an
// alertable wait just inserts it into the alerts set.
func TestAlertToRunningThreadStaysPending(t *testing.T) {
	var hit int32
	stop := make(chan struct{})
	th := Fork(func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if TestAlert() {
				atomic.AddInt32(&hit, 1)
				close(stop)
				return
			}
		}
	})
	time.Sleep(10 * time.Millisecond)
	Alert(th)
	Join(th)
	if hit != 1 {
		t.Fatal("pending alert never observed by TestAlert")
	}
}

// TestAlertDoesNotDisturbPlainWait: plain Wait is not alertable; the thread
// stays blocked until a Signal arrives, then finds its alert pending.
func TestAlertDoesNotDisturbPlainWait(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	done := make(chan bool, 1)
	th := Fork(func() {
		m.Acquire()
		c.Wait(&m)
		m.Release()
		done <- TestAlert()
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	Alert(th)
	select {
	case <-done:
		t.Fatal("Alert woke a thread blocked in plain Wait")
	case <-time.After(50 * time.Millisecond):
	}
	c.Signal()
	Join(th)
	if pending := <-done; !pending {
		t.Fatal("alert was lost while thread was in plain Wait")
	}
}
