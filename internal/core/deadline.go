package core

import (
	"context"
	"time"
)

// DeadlineExceeded is returned by the deadline variants (AlertWaitDeadline,
// AlertPDeadline, AcquireDeadline) when the wait ended because its own
// deadline fired. It matches context.DeadlineExceeded under errors.Is, so
// callers mixing the two cancellation worlds need one test.
var DeadlineExceeded error = deadlineError{}

type deadlineError struct{}

func (deadlineError) Error() string { return "threads: deadline exceeded" }

func (deadlineError) Is(target error) bool { return target == context.DeadlineExceeded }

// testDeadlineRaceWindow, when non-nil, runs between the inner wait's
// return and the timer cancel on every deadline variant. Tests use it to
// deterministically lose the completion/deadline race: sleeping here until
// the deadline has fired proves the drain makes a late-firing timer
// harmless (TestDeadlineFiresAfterSatisfiedWait).
var testDeadlineRaceWindow func()

// finishDeadline is the shared epilogue of the deadline variants: every
// exit path cancels its own timer entry and drains a late-delivered alert,
// so a deadline that fires after the wait is satisfied can never poison the
// thread's next alertable wait — the stale-alert race is fixed here, by
// construction, rather than at every call site.
//
// waitErr is the inner alertable wait's result (nil or Alerted, with the
// alert flag already consumed on the Alerted path). The mapping:
//
//	wait satisfied, timer never fired   → nil
//	wait satisfied, timer fired late    → nil (stale alert drained)
//	wait alerted,   timer fired         → DeadlineExceeded
//	wait alerted,   timer did not fire  → Alerted (a genuine user Alert)
//
// The drain is a literal TestAlert — an operation the specification admits
// at any point — so with conformance tracing on, the consumed alert appears
// honestly in the trace instead of vanishing. One caveat is inherited from
// the spec's single-bit alerts set: a user Alert that merges with the
// timer's (both insert SELF into alerts; the set has one bit per thread)
// is consumed by the same drain, exactly as if the thread had called
// TestAlert itself between the two. Callers needing lossless user alerts
// should re-Alert on a channel of their own, as the paper's higher layers
// do.
func finishDeadline(t *Thread, e *timerEntry, waitErr error) error {
	if testDeadlineRaceWindow != nil {
		testDeadlineRaceWindow()
	}
	fired := e.cancelAndDrain()
	if fired {
		// The timer's Alert was delivered, but the wait may not have
		// consumed it: the wait could have been satisfied first, or ended
		// by a user Alert before the timer's landed. Either way the flag
		// may still be pending on this thread — consume it now, while it
		// is provably ours, so it cannot leak into a later wait.
		if testAlertT(t) {
			statIncT(t, statTimerDrain)
		}
		if waitErr != nil {
			return DeadlineExceeded
		}
		return nil
	}
	return waitErr
}

// AlertWaitDeadline is AlertWait with a deadline: it returns nil when the
// wait was satisfied, DeadlineExceeded when the deadline passed first, and
// Alerted when another thread alerted the caller. On every return the
// calling thread is inside a new critical section on m, and — unlike the
// time.AfterFunc + Alert pattern this replaces — no stale alert from this
// deadline can survive into a later wait.
//
// A deadline already in the past does not wait and does not leave the
// critical section: the caller still holds m and DeadlineExceeded is
// returned immediately.
func (c *Condition) AlertWaitDeadline(m *Mutex, deadline time.Time) error {
	if !time.Now().Before(deadline) {
		return DeadlineExceeded
	}
	t := Self()
	e := t.armDeadline(deadline)
	return finishDeadline(t, e, c.alertWait(m, t))
}

// AlertPDeadline is AlertP with a deadline: nil when the semaphore was
// acquired, DeadlineExceeded when the deadline passed first, Alerted on a
// genuine user alert. A deadline already in the past degenerates to TryP.
func (s *Semaphore) AlertPDeadline(deadline time.Time) error {
	if !time.Now().Before(deadline) {
		if s.TryP() {
			return nil
		}
		return DeadlineExceeded
	}
	t := Self()
	e := t.armDeadline(deadline)
	return finishDeadline(t, e, s.alertP(t))
}

// AcquireDeadline is Acquire with a deadline: nil when the mutex was
// acquired (the caller is the holder and must Release), DeadlineExceeded
// when the deadline passed first, Alerted on a genuine user alert. A
// deadline already in the past degenerates to TryAcquire.
//
// The paper's Acquire is not alertable — only AlertWait and AlertP respond
// to alerts — so this is an extension: it blocks with AlertP's discipline
// on the mutex gate (the two representations are identical) and consumes
// the alert with TestAlert, an operation the specification admits anywhere.
func (m *Mutex) AcquireDeadline(deadline time.Time) error {
	t := Self()
	check := checking.Load()
	if check && m.holder.Load() == t.id {
		panic("threads: recursive AcquireDeadline would deadlock: " + t.name + " already holds the mutex")
	}
	if !time.Now().Before(deadline) {
		//threadsvet:ignore lockpair: returning as holder is AcquireDeadline's contract (nil means acquired); the caller Releases
		if m.TryAcquire() {
			return nil
		}
		return DeadlineExceeded
	}
	e := t.armDeadline(deadline)
	var waitErr error
	if m.g.alertableAcquire(t, &mutexGateStats, traceAcquireCtx(TraceAcquire)) {
		// Unlike AlertP there is no Raise trace action for a mutex, so
		// the alerts-set deletion is a TestAlert: spec-admissible at any
		// point, and stamped honestly when tracing.
		_ = testAlertT(t) // consumes the alert that ended the wait; finishDeadline maps it to DeadlineExceeded or Alerted
		waitErr = Alerted
	} else {
		if check {
			m.holder.Store(t.id)
		}
		if m.g.pi.Load() {
			m.g.piSetHolder(t)
		}
	}
	return finishDeadline(t, e, waitErr)
}
