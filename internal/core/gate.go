package core

import (
	"sync/atomic"

	"threads/internal/queue"
	"threads/internal/spinlock"
)

// gate is the shared mechanism behind Mutex and Semaphore. The paper is
// explicit that "the implementation of semaphores is identical to mutexes:
// P is the same as Acquire and V is the same as Release"; the two public
// types differ only in specification (Release has a REQUIRES clause, V does
// not, and only semaphores have AlertP).
//
// Representation, per the paper: a pair (lock bit, queue). Bit 0 of word is
// 1 iff a thread is inside (mutex held / semaphore unavailable); with
// conformance tracing enabled, bits 1..63 carry the stamp of the transition
// that produced the current value (see trace.go for the full argument). The
// queue holds threads blocked awaiting their WHEN condition, and is
// manipulated only under the Nub spin lock.
type gate struct {
	word atomic.Uint64
	qlen atomic.Int32 // mirror of q.Len(), readable outside the spin lock
	nub  spinlock.Lock
	// q orders blocked threads by effective priority, FIFO within a band —
	// the Nub's priority scheduling applied to wakeup selection. While no
	// thread has a nonzero priority every waiter is enqueued at 0 and the
	// order is exactly the old FIFO.
	q       queue.PriorityQueue[*waiter]
	traceID atomic.Uint64 // conformance-trace identity, assigned lazily

	// pi enables priority inheritance (Mutex.SetPriorityInheritance): a
	// blocked Acquire donates its priority to the holder, restored at
	// Release. piHolder is the thread currently inside the gate, guarded
	// by nub; nil when the holder is unknown (anonymous acquisition before
	// priorities were in use) — donors then skip, a heuristic miss.
	pi       atomic.Bool
	piHolder *Thread //threads:guardedby nub
}

// gateLockedBit is bit 0 of the gate word.
const gateLockedBit = 1

// gateStats routes the shared mechanism's counters to the mutex or
// semaphore columns of Stats, and its trace events to the mutex or
// semaphore action kinds.
type gateStats struct {
	fast, spin, nubEnter, backout, park statID
	relFast, relNub, relHandoff         statID
	tkRel                               TraceKind // Release or V
}

var mutexGateStats = gateStats{
	fast: statAcquireFast, spin: statAcquireSpin, nubEnter: statAcquireNub,
	backout: statAcquireBackout, park: statAcquirePark,
	relFast: statReleaseFast, relNub: statReleaseNub, relHandoff: statReleaseHandoff,
	tkRel: TraceRelease,
}

var semGateStats = gateStats{
	fast: statPFast, spin: statPSpin, nubEnter: statPNub,
	backout: statPBackout, park: statPPark,
	relFast: statVFast, relNub: statVNub, relHandoff: statVHandoff,
	tkRel: TraceV,
}

// tryAcquire is the user-code fast path: a single test-and-set when
// untraced. Traced, the transition is load → draw stamp → CAS, so the stamp
// is certified against any concurrent transition on this gate (trace.go).
func (g *gate) tryAcquire(tc traceCtx) bool {
	if tc.kind == TraceNone {
		if g.word.CompareAndSwap(0, gateLockedBit) {
			return true
		}
		// The word may carry stale stamp bits from a traced period; one
		// successful untraced transition returns it to the plain 0/1
		// regime.
		w := g.word.Load()
		return w != 0 && w&gateLockedBit == 0 && g.word.CompareAndSwap(w, gateLockedBit)
	}
	w := g.word.Load()
	if w&gateLockedBit != 0 {
		return false
	}
	seq := nextTraceSeq()
	if !g.word.CompareAndSwap(w, seq<<1|gateLockedBit) {
		return false
	}
	traceEmit(seq, tc.kind, tc.tid, traceObjID(&g.traceID), tc.obj2, false)
	return true
}

// acquire implements Acquire/P. The user code test-and-sets the lock bit,
// then briefly spins for the holder to leave, and calls the Nub subroutine
// only if the bit stays set. t carries the calling thread when the caller
// already knows it (PI mutexes, alertable paths); nil lets the slow path
// recover it lazily, and only when priorities are in use.
func (g *gate) acquire(t *Thread, st *gateStats, tc traceCtx) {
	if g.tryAcquire(tc) {
		statInc(st.fast)
		return
	}
	if g.spinAcquire(tc) {
		statInc(st.spin)
		return
	}
	g.acquireNub(t, st, tc)
}

// acquireNub is the Nub subroutine for Acquire. Under the spin lock it adds
// the calling thread to the queue and tests the lock bit again. If the bit
// is still set the thread is descheduled; otherwise it removes itself and
// the entire Acquire operation — beginning at the test-and-set — is
// retried. (SRC Report 20, §Implementation: Mutexes and semaphores.)
//
// One waiter serves every round of the retry loop; the enqueue and the
// back-out happen under a single hold of the Nub lock, so a backed-out
// waiter was never visible to releaseNub and its episode ends unclaimed.
func (g *gate) acquireNub(t *Thread, st *gateStats, tc traceCtx) {
	statInc(st.nubEnter)
	w := getWaiter(t)
	t = w.capturePri(t)
	w.parkStart = handoffNanos()
	for {
		g.nub.Lock()
		g.q.Push(&w.item)
		g.qlen.Add(1)
		if !g.locked() {
			// A Release slipped in before we enqueued; back out and
			// retry from the test-and-set.
			g.q.Remove(&w.item)
			g.qlen.Add(-1)
			g.nub.Unlock()
			statInc(st.backout)
		} else {
			g.piDonate(w)
			g.nub.Unlock()
			statInc(st.park)
			if w.park() == reasonHandoff && g.finishHandoff(w, tc) {
				return
			}
		}
		if g.tryAcquire(tc) {
			w.endEpisode()
			return
		}
		w.begin()
	}
}

// release implements Release/V. The user code clears the lock bit and calls
// the Nub subroutine only if the queue is not empty. Traced, the clearing
// transition draws a stamp inside its CAS window and emits the
// Release/V event; the loop only retries when a concurrent transition
// intervened (possible for semaphores, whose V has no REQUIRES clause).
func (g *gate) release(st *gateStats, tc traceCtx) {
	if g.qlen.Load() != 0 && g.releaseHandoff(st, tc) {
		return
	}
	if tc.kind == TraceNone {
		g.word.Store(0)
	} else {
		for {
			w := g.word.Load()
			seq := nextTraceSeq()
			if g.word.CompareAndSwap(w, seq<<1) {
				traceEmit(seq, tc.kind, tc.tid, traceObjID(&g.traceID), 0, false)
				break
			}
		}
	}
	g.releaseCommon(st)
}

// releaseEmbed is release for Wait's mutex hand-off: the caller has already
// emitted an Enqueue event (which subsumes the specification-level Release)
// with the given stamp, and the stamp is embedded in the word so any later
// Acquire of this mutex outranks the Enqueue. seq == 0 means untraced.
// Only mutex holders call this, so the CAS cannot race another transition.
func (g *gate) releaseEmbed(st *gateStats, seq uint64) {
	if seq == 0 {
		g.word.Store(0)
	} else {
		for {
			w := g.word.Load()
			if g.word.CompareAndSwap(w, seq<<1) {
				break
			}
		}
	}
	g.releaseCommon(st)
}

func (g *gate) releaseCommon(st *gateStats) {
	if g.qlen.Load() == 0 {
		statInc(st.relFast)
		return
	}
	g.releaseNub(st)
}

// releaseNub is the Nub subroutine for Release: take one thread from the
// queue and make it ready. The woken thread retries its test-and-set and
// may lose to a barging acquirer; the specification does not say which of
// the blocked threads runs next, nor when.
//
// The claim happens while the Nub lock is still held: a popped waiter
// cannot finish its episode (and be reused) before its thread reacquires
// this lock on the alerted path, so the claim always addresses the episode
// the pop belonged to.
func (g *gate) releaseNub(st *gateStats) {
	statInc(st.relNub)
	g.nub.Lock()
	for {
		n := g.q.Pop()
		if n == nil {
			g.nub.Unlock()
			return
		}
		g.qlen.Add(-1)
		w := n.Value
		if w.claim(reasonWake) {
			if g.pi.Load() {
				// Not a transfer — the woken thread retries its
				// test-and-set and may lose — but the holder identity is
				// unknown until someone wins, so clear it rather than
				// leave a stale target for donations.
				g.piHolder = nil
			}
			g.nub.Unlock()
			w.wake()
			return
		}
		// The waiter was claimed by Alert after enqueueing; it no
		// longer needs this wakeup. Give it to the next thread.
	}
}

// releaseHandoff hands the gate directly to a queued waiter instead of
// clearing the lock bit and letting the woken thread race barging
// acquirers (see handoff.go for the policy). Returns true if the release
// was consumed by a transfer; false sends the caller down the ordinary
// clear-and-wake path.
//
// Untraced, the transfer touches the word not at all: the bit stays set
// and ownership passes to the recipient on the wake's happens-before edge.
// That requires the bit to BE set — the caller's token is what is being
// gifted. For a mutex it always is (only the holder releases); for a
// semaphore a V with the bit already clear has no token in hand, and
// handing one off anyway would let a later P acquire the cleared word and
// admit two threads on one token.
//
// Traced, the transfer must appear in the linearized trace as the release
// followed immediately by the recipient's acquisition, with no event on
// this gate in between. Two certified transitions arrange that: the first
// CAS is the ordinary stamped release (seqR); the second CAS re-takes the
// word for the recipient with a fresh stamp (seqA). The second CAS can
// fail only if some other transition intervened (a barging acquirer's CAS,
// a concurrent V) — exactly the case in which a pre-drawn stamp would have
// replayed as an acquisition of an unavailable gate — and then the
// transfer is demoted: the recipient wakes with handoffSeq 0 and retries
// its test-and-set like any woken thread. Stamp order equals CAS order for
// every certified transition (trace.go), so the replay sees
// ... Release(seqR), Acquire(seqA) ... and stays clean.
func (g *gate) releaseHandoff(st *gateStats, tc traceCtx) bool {
	mode := HandoffMode(handoffMode.Load())
	if mode == HandoffOff || !g.locked() {
		return false
	}
	var cutoff int64
	if mode == HandoffAdaptive {
		cutoff = handoffNanos() - handoffStarveNs
	}
	g.nub.Lock()
	if mode == HandoffAdaptive {
		// Adaptive policy: hand off only once the queue's head has
		// starved past the threshold. parkStart was written before the
		// waiter was published to the queue, so reading it under the Nub
		// lock is ordered; 0 means the head has not committed to parking
		// yet and certainly is not starving.
		n := g.q.Peek()
		if n == nil || n.Value.parkStart == 0 || n.Value.parkStart > cutoff {
			g.nub.Unlock()
			return false
		}
	}
	var w *waiter
	for {
		n := g.q.Pop()
		if n == nil {
			g.nub.Unlock()
			return false
		}
		g.qlen.Add(-1)
		w = n.Value
		if w.claim(reasonHandoff) {
			break
		}
		// Claimed by Alert after enqueueing; it no longer wants the gate.
	}
	if g.pi.Load() {
		// The transfer makes w's thread the holder the moment the wake
		// lands; install it while the nub lock still serializes donors.
		g.piHolder = w.owner
	}
	g.nub.Unlock()
	statInc(st.relHandoff)
	if tc.kind == TraceNone {
		w.handoffSeq = 0
		w.wake()
		return true
	}
	for {
		old := g.word.Load()
		seqR := nextTraceSeq()
		if !g.word.CompareAndSwap(old, seqR<<1) {
			continue
		}
		traceEmit(seqR, st.tkRel, tc.tid, traceObjID(&g.traceID), 0, false)
		seqA := nextTraceSeq()
		if g.word.CompareAndSwap(seqR<<1, seqA<<1|gateLockedBit) {
			w.handoffSeq = seqA
		} else {
			w.handoffSeq = 0 // demoted: a concurrent transition intervened
		}
		w.wake()
		return true
	}
}

// finishHandoff completes a direct hand-off on the recipient side, after
// its park returned reasonHandoff. Untraced, the gate is already ours (the
// bit never cleared). Traced, a nonzero handoffSeq is the certified stamp
// of our acquisition and we emit the event the winning CAS would have; a
// zero handoffSeq is a demoted transfer and the caller must retry its
// test-and-set (the episode is then left open for the retry loop).
func (g *gate) finishHandoff(w *waiter, tc traceCtx) bool {
	seq := w.handoffSeq
	if tc.kind != TraceNone && seq == 0 {
		return false
	}
	w.endEpisode()
	if tc.kind != TraceNone {
		traceEmit(seq, tc.kind, tc.tid, traceObjID(&g.traceID), tc.obj2, false)
	}
	return true
}

// alertableAcquire implements AlertP's blocking discipline: like acquire,
// but the wait can be claimed by Alert(t), in which case the thread leaves
// the queue and reports the alert instead of acquiring. tc carries the
// normal-return event (AlertP.Return); on the alerted paths no gate event
// is emitted — the caller records AlertP.Raise under t's alertLock, where
// the alerts-set deletion is serialized against Alert and TestAlert.
func (g *gate) alertableAcquire(t *Thread, st *gateStats, tc traceCtx) (alerted bool) {
	if g.tryAcquire(tc) {
		// Both WHEN clauses of AlertP may be enabled at once (s
		// available and SELF in alerts); the implementation is free to
		// choose, and the fast path chooses to return normally.
		statIncT(t, st.fast)
		return false
	}
	if !t.alerted.Load() && g.spinAcquire(tc) {
		statIncT(t, st.spin)
		return false
	}
	statIncT(t, st.nubEnter)
	w := getWaiter(t)
	w.capturePri(t)
	w.parkStart = handoffNanos()
	for {
		t.setAlertWaiter(w)
		// A pending alert claims the wait immediately: the WHEN clause
		// of the RAISES case is already true. (If the self-claim loses
		// to a concurrent Alert, the Alert's wake token is consumed by
		// the park or drain below.)
		if t.alerted.Load() && w.claim(reasonAlert) {
			t.clearAlertWaiter()
			w.endEpisode()
			return true
		}
		g.nub.Lock()
		g.q.Push(&w.item)
		g.qlen.Add(1)
		if !g.locked() {
			g.q.Remove(&w.item)
			g.qlen.Add(-1)
			g.nub.Unlock()
			statIncT(t, st.backout)
			t.clearAlertWaiter()
			if w.reason() == reasonAlert {
				// Alert claimed us while we backed out; honor it. The
				// enqueue and back-out were one critical section, so
				// only Alert can have claimed — and it owes a wake
				// token, which must be consumed before reuse.
				w.drain()
				w.endEpisode()
				return true
			}
			if g.tryAcquire(tc) {
				w.endEpisode()
				return false
			}
			w.begin()
			continue
		}
		g.piDonate(w)
		g.nub.Unlock()
		statIncT(t, st.park)
		reason := w.park()
		t.clearAlertWaiter()
		if reason == reasonAlert {
			// Leave the queue before reporting the alert so a later V
			// is not absorbed by a departed thread.
			g.nub.Lock()
			if g.q.Remove(&w.item) {
				g.qlen.Add(-1)
			}
			g.nub.Unlock()
			w.endEpisode()
			return true
		}
		if reason == reasonHandoff && g.finishHandoff(w, tc) {
			// A racing Alert that lost the claim stays pending for the
			// next alertable point — the implementation chose RETURNS,
			// as the fast path does.
			return false
		}
		if g.tryAcquire(tc) {
			w.endEpisode()
			return false
		}
		w.begin()
	}
}

// ---------------------------------------------------------------------------
// Priority inheritance (Mutex opt-in).
//
// A blocked Acquire on a PI gate donates its effective priority to the
// holder; the holder's Release removes the donation. Donation and holder
// maintenance are serialized by the gate's nub spin lock: donors read
// piHolder and donate while holding it, and the releaser clears piHolder
// under it before undonating, so no donation can land on a thread that has
// already left the gate — a boost can therefore never outlive the hold it
// compensates for. The nesting nub → donLock is one of the package's two
// spin-lock nestings (the other is Signal's c.nub → mg.nub); donLock
// acquires nothing, so no cycle is possible.
//
// The boost itself is a scheduling heuristic on this backend: the Go
// scheduler does not expose thread priorities, so inheritance acts through
// wakeup ordering (the boosted holder's own subsequent waits outrank the
// medium band) rather than preemption. The simulated Firefly
// (internal/simthreads) implements the exact form, where the boost
// reorders the ready pool retroactively; the priority-inversion litmus
// model-checks that form, and the conformance stamps emitted here hold
// both backends to the same boost/restore discipline.
// ---------------------------------------------------------------------------

// piDonate donates the enqueued waiter's priority to the gate's holder.
// Called with g.nub held, after the waiter committed to parking. No-ops
// unless PI is on, the holder is known, and the donation would raise it.
func (g *gate) piDonate(w *waiter) {
	if !g.pi.Load() {
		return
	}
	h := g.piHolder
	if h == nil || h == w.owner {
		return
	}
	pri := int32(w.item.Priority)
	if pri > h.effPri.Load() {
		h.donate(g, pri)
	}
}

// piSetHolder records t as the gate's current occupant for donation
// targeting. Called by every PI-mutex acquisition path once it holds the
// gate.
func (g *gate) piSetHolder(t *Thread) {
	g.nub.Lock()
	g.piHolder = t
	g.nub.Unlock()
}

// piClearHolder removes and returns the recorded occupant; the caller (the
// releasing holder) then undonates. Clearing under nub before the lock
// word transitions means a donor serialized after us sees nil and skips.
func (g *gate) piClearHolder() *Thread {
	g.nub.Lock()
	h := g.piHolder
	g.piHolder = nil
	g.nub.Unlock()
	return h
}

// locked reports the lock bit (true = held/unavailable).
func (g *gate) locked() bool { return g.word.Load()&gateLockedBit != 0 }

// waiters returns the current queue length (advisory).
func (g *gate) waiters() int { return int(g.qlen.Load()) }
