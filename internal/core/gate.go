package core

import (
	"sync/atomic"

	"threads/internal/queue"
	"threads/internal/spinlock"
)

// gate is the shared mechanism behind Mutex and Semaphore. The paper is
// explicit that "the implementation of semaphores is identical to mutexes:
// P is the same as Acquire and V is the same as Release"; the two public
// types differ only in specification (Release has a REQUIRES clause, V does
// not, and only semaphores have AlertP).
//
// Representation, per the paper: a pair (lock bit, queue). The lock bit is
// 1 iff a thread is inside (mutex held / semaphore unavailable). The queue
// holds threads blocked awaiting their WHEN condition, and is manipulated
// only under the Nub spin lock.
type gate struct {
	lockBit atomic.Uint32
	qlen    atomic.Int32 // mirror of q.Len(), readable outside the spin lock
	nub     spinlock.Lock
	q       queue.FIFO[*waiter]
}

// gateStats routes the shared mechanism's counters to the mutex or
// semaphore columns of Stats.
type gateStats struct {
	fast, nubEnter, park *atomic.Uint64
	relFast, relNub      *atomic.Uint64
}

var mutexGateStats = gateStats{
	fast: &stats.acquireFast, nubEnter: &stats.acquireNub, park: &stats.acquirePark,
	relFast: &stats.releaseFast, relNub: &stats.releaseNub,
}

var semGateStats = gateStats{
	fast: &stats.pFast, nubEnter: &stats.pNub, park: &stats.pPark,
	relFast: &stats.vFast, relNub: &stats.vNub,
}

// tryAcquire is the user-code fast path: a single test-and-set.
func (g *gate) tryAcquire() bool {
	return g.lockBit.CompareAndSwap(0, 1)
}

// acquire implements Acquire/P. The user code test-and-sets the lock bit
// and calls the Nub subroutine only if the bit was already set.
func (g *gate) acquire(st *gateStats) {
	if g.tryAcquire() {
		statInc(st.fast)
		return
	}
	g.acquireNub(st)
}

// acquireNub is the Nub subroutine for Acquire. Under the spin lock it adds
// the calling thread to the queue and tests the lock bit again. If the bit
// is still set the thread is descheduled; otherwise it removes itself and
// the entire Acquire operation — beginning at the test-and-set — is
// retried. (SRC Report 20, §Implementation: Mutexes and semaphores.)
func (g *gate) acquireNub(st *gateStats) {
	statInc(st.nubEnter)
	for {
		w := newWaiter(nil)
		g.nub.Lock()
		g.q.Push(&w.node)
		g.qlen.Add(1)
		if g.lockBit.Load() == 0 {
			// A Release slipped in before we enqueued; back out and
			// retry from the test-and-set.
			g.q.Remove(&w.node)
			g.qlen.Add(-1)
			g.nub.Unlock()
		} else {
			g.nub.Unlock()
			statInc(st.park)
			w.park()
		}
		if g.tryAcquire() {
			return
		}
	}
}

// release implements Release/V. The user code clears the lock bit and calls
// the Nub subroutine only if the queue is not empty.
func (g *gate) release(st *gateStats) {
	g.lockBit.Store(0)
	if g.qlen.Load() == 0 {
		statInc(st.relFast)
		return
	}
	g.releaseNub(st)
}

// releaseNub is the Nub subroutine for Release: take one thread from the
// queue and make it ready. The woken thread retries its test-and-set and
// may lose to a barging acquirer; the specification does not say which of
// the blocked threads runs next, nor when.
func (g *gate) releaseNub(st *gateStats) {
	statInc(st.relNub)
	g.nub.Lock()
	for {
		n := g.q.Pop()
		if n == nil {
			g.nub.Unlock()
			return
		}
		g.qlen.Add(-1)
		w := n.Value
		if w.claim(reasonWake) {
			g.nub.Unlock()
			w.wake()
			return
		}
		// The waiter was claimed by Alert after enqueueing; it no
		// longer needs this wakeup. Give it to the next thread.
	}
}

// alertableAcquire implements AlertP's blocking discipline: like acquire,
// but the wait can be claimed by Alert(t), in which case the thread leaves
// the queue and reports the alert instead of acquiring.
func (g *gate) alertableAcquire(t *Thread, st *gateStats) (alerted bool) {
	if g.tryAcquire() {
		// Both WHEN clauses of AlertP may be enabled at once (s
		// available and SELF in alerts); the implementation is free to
		// choose, and the fast path chooses to return normally.
		statInc(st.fast)
		return false
	}
	statInc(st.nubEnter)
	for {
		w := newWaiter(t)
		t.setAlertWaiter(w)
		// A pending alert claims the wait immediately: the WHEN clause
		// of the RAISES case is already true.
		if t.alerted.Load() && w.claim(reasonAlert) {
			t.clearAlertWaiter()
			return true
		}
		g.nub.Lock()
		g.q.Push(&w.node)
		g.qlen.Add(1)
		if g.lockBit.Load() == 0 {
			g.q.Remove(&w.node)
			g.qlen.Add(-1)
			g.nub.Unlock()
			t.clearAlertWaiter()
			if w.reason.Load() == reasonAlert {
				// Alert claimed us while we backed out; honor it.
				return true
			}
			if g.tryAcquire() {
				return false
			}
			continue
		}
		g.nub.Unlock()
		statInc(st.park)
		reason := w.park()
		t.clearAlertWaiter()
		if reason == reasonAlert {
			// Leave the queue before reporting the alert so a later V
			// is not absorbed by a departed thread.
			g.nub.Lock()
			if g.q.Remove(&w.node) {
				g.qlen.Add(-1)
			}
			g.nub.Unlock()
			return true
		}
		if g.tryAcquire() {
			return false
		}
	}
}

// locked reports the lock bit (true = held/unavailable).
func (g *gate) locked() bool { return g.lockBit.Load() != 0 }

// waiters returns the current queue length (advisory).
func (g *gate) waiters() int { return int(g.qlen.Load()) }
