package core

import (
	"sync/atomic"

	"threads/internal/queue"
	"threads/internal/spinlock"
)

// gate is the shared mechanism behind Mutex and Semaphore. The paper is
// explicit that "the implementation of semaphores is identical to mutexes:
// P is the same as Acquire and V is the same as Release"; the two public
// types differ only in specification (Release has a REQUIRES clause, V does
// not, and only semaphores have AlertP).
//
// Representation, per the paper: a pair (lock bit, queue). Bit 0 of word is
// 1 iff a thread is inside (mutex held / semaphore unavailable); with
// conformance tracing enabled, bits 1..63 carry the stamp of the transition
// that produced the current value (see trace.go for the full argument). The
// queue holds threads blocked awaiting their WHEN condition, and is
// manipulated only under the Nub spin lock.
type gate struct {
	word    atomic.Uint64
	qlen    atomic.Int32 // mirror of q.Len(), readable outside the spin lock
	nub     spinlock.Lock
	q       queue.FIFO[*waiter]
	traceID atomic.Uint64 // conformance-trace identity, assigned lazily
}

// gateLockedBit is bit 0 of the gate word.
const gateLockedBit = 1

// gateStats routes the shared mechanism's counters to the mutex or
// semaphore columns of Stats, and its trace events to the mutex or
// semaphore action kinds.
type gateStats struct {
	fast, spin, nubEnter, backout, park statID
	relFast, relNub                     statID
	tkRel                               TraceKind // Release or V
}

var mutexGateStats = gateStats{
	fast: statAcquireFast, spin: statAcquireSpin, nubEnter: statAcquireNub,
	backout: statAcquireBackout, park: statAcquirePark,
	relFast: statReleaseFast, relNub: statReleaseNub,
	tkRel: TraceRelease,
}

var semGateStats = gateStats{
	fast: statPFast, spin: statPSpin, nubEnter: statPNub,
	backout: statPBackout, park: statPPark,
	relFast: statVFast, relNub: statVNub,
	tkRel: TraceV,
}

// tryAcquire is the user-code fast path: a single test-and-set when
// untraced. Traced, the transition is load → draw stamp → CAS, so the stamp
// is certified against any concurrent transition on this gate (trace.go).
func (g *gate) tryAcquire(tc traceCtx) bool {
	if tc.kind == TraceNone {
		if g.word.CompareAndSwap(0, gateLockedBit) {
			return true
		}
		// The word may carry stale stamp bits from a traced period; one
		// successful untraced transition returns it to the plain 0/1
		// regime.
		w := g.word.Load()
		return w != 0 && w&gateLockedBit == 0 && g.word.CompareAndSwap(w, gateLockedBit)
	}
	w := g.word.Load()
	if w&gateLockedBit != 0 {
		return false
	}
	seq := nextTraceSeq()
	if !g.word.CompareAndSwap(w, seq<<1|gateLockedBit) {
		return false
	}
	traceEmit(seq, tc.kind, tc.tid, traceObjID(&g.traceID), tc.obj2, false)
	return true
}

// acquire implements Acquire/P. The user code test-and-sets the lock bit,
// then briefly spins for the holder to leave, and calls the Nub subroutine
// only if the bit stays set.
func (g *gate) acquire(st *gateStats, tc traceCtx) {
	if g.tryAcquire(tc) {
		statInc(st.fast)
		return
	}
	if g.spinAcquire(tc) {
		statInc(st.spin)
		return
	}
	g.acquireNub(st, tc)
}

// acquireNub is the Nub subroutine for Acquire. Under the spin lock it adds
// the calling thread to the queue and tests the lock bit again. If the bit
// is still set the thread is descheduled; otherwise it removes itself and
// the entire Acquire operation — beginning at the test-and-set — is
// retried. (SRC Report 20, §Implementation: Mutexes and semaphores.)
//
// One waiter serves every round of the retry loop; the enqueue and the
// back-out happen under a single hold of the Nub lock, so a backed-out
// waiter was never visible to releaseNub and its episode ends unclaimed.
func (g *gate) acquireNub(st *gateStats, tc traceCtx) {
	statInc(st.nubEnter)
	w := getWaiter(nil)
	for {
		g.nub.Lock()
		g.q.Push(&w.node)
		g.qlen.Add(1)
		if !g.locked() {
			// A Release slipped in before we enqueued; back out and
			// retry from the test-and-set.
			g.q.Remove(&w.node)
			g.qlen.Add(-1)
			g.nub.Unlock()
			statInc(st.backout)
		} else {
			g.nub.Unlock()
			statInc(st.park)
			w.park()
		}
		if g.tryAcquire(tc) {
			w.endEpisode()
			return
		}
		w.begin()
	}
}

// release implements Release/V. The user code clears the lock bit and calls
// the Nub subroutine only if the queue is not empty. Traced, the clearing
// transition draws a stamp inside its CAS window and emits the
// Release/V event; the loop only retries when a concurrent transition
// intervened (possible for semaphores, whose V has no REQUIRES clause).
func (g *gate) release(st *gateStats, tc traceCtx) {
	if tc.kind == TraceNone {
		g.word.Store(0)
	} else {
		for {
			w := g.word.Load()
			seq := nextTraceSeq()
			if g.word.CompareAndSwap(w, seq<<1) {
				traceEmit(seq, tc.kind, tc.tid, traceObjID(&g.traceID), 0, false)
				break
			}
		}
	}
	g.releaseCommon(st)
}

// releaseEmbed is release for Wait's mutex hand-off: the caller has already
// emitted an Enqueue event (which subsumes the specification-level Release)
// with the given stamp, and the stamp is embedded in the word so any later
// Acquire of this mutex outranks the Enqueue. seq == 0 means untraced.
// Only mutex holders call this, so the CAS cannot race another transition.
func (g *gate) releaseEmbed(st *gateStats, seq uint64) {
	if seq == 0 {
		g.word.Store(0)
	} else {
		for {
			w := g.word.Load()
			if g.word.CompareAndSwap(w, seq<<1) {
				break
			}
		}
	}
	g.releaseCommon(st)
}

func (g *gate) releaseCommon(st *gateStats) {
	if g.qlen.Load() == 0 {
		statInc(st.relFast)
		return
	}
	g.releaseNub(st)
}

// releaseNub is the Nub subroutine for Release: take one thread from the
// queue and make it ready. The woken thread retries its test-and-set and
// may lose to a barging acquirer; the specification does not say which of
// the blocked threads runs next, nor when.
//
// The claim happens while the Nub lock is still held: a popped waiter
// cannot finish its episode (and be reused) before its thread reacquires
// this lock on the alerted path, so the claim always addresses the episode
// the pop belonged to.
func (g *gate) releaseNub(st *gateStats) {
	statInc(st.relNub)
	g.nub.Lock()
	for {
		n := g.q.Pop()
		if n == nil {
			g.nub.Unlock()
			return
		}
		g.qlen.Add(-1)
		w := n.Value
		if w.claim(reasonWake) {
			g.nub.Unlock()
			w.wake()
			return
		}
		// The waiter was claimed by Alert after enqueueing; it no
		// longer needs this wakeup. Give it to the next thread.
	}
}

// alertableAcquire implements AlertP's blocking discipline: like acquire,
// but the wait can be claimed by Alert(t), in which case the thread leaves
// the queue and reports the alert instead of acquiring. tc carries the
// normal-return event (AlertP.Return); on the alerted paths no gate event
// is emitted — the caller records AlertP.Raise under t's alertLock, where
// the alerts-set deletion is serialized against Alert and TestAlert.
func (g *gate) alertableAcquire(t *Thread, st *gateStats, tc traceCtx) (alerted bool) {
	if g.tryAcquire(tc) {
		// Both WHEN clauses of AlertP may be enabled at once (s
		// available and SELF in alerts); the implementation is free to
		// choose, and the fast path chooses to return normally.
		statIncT(t, st.fast)
		return false
	}
	if !t.alerted.Load() && g.spinAcquire(tc) {
		statIncT(t, st.spin)
		return false
	}
	statIncT(t, st.nubEnter)
	w := getWaiter(t)
	for {
		t.setAlertWaiter(w)
		// A pending alert claims the wait immediately: the WHEN clause
		// of the RAISES case is already true. (If the self-claim loses
		// to a concurrent Alert, the Alert's wake token is consumed by
		// the park or drain below.)
		if t.alerted.Load() && w.claim(reasonAlert) {
			t.clearAlertWaiter()
			w.endEpisode()
			return true
		}
		g.nub.Lock()
		g.q.Push(&w.node)
		g.qlen.Add(1)
		if !g.locked() {
			g.q.Remove(&w.node)
			g.qlen.Add(-1)
			g.nub.Unlock()
			statIncT(t, st.backout)
			t.clearAlertWaiter()
			if w.reason() == reasonAlert {
				// Alert claimed us while we backed out; honor it. The
				// enqueue and back-out were one critical section, so
				// only Alert can have claimed — and it owes a wake
				// token, which must be consumed before reuse.
				w.drain()
				w.endEpisode()
				return true
			}
			if g.tryAcquire(tc) {
				w.endEpisode()
				return false
			}
			w.begin()
			continue
		}
		g.nub.Unlock()
		statIncT(t, st.park)
		reason := w.park()
		t.clearAlertWaiter()
		if reason == reasonAlert {
			// Leave the queue before reporting the alert so a later V
			// is not absorbed by a departed thread.
			g.nub.Lock()
			if g.q.Remove(&w.node) {
				g.qlen.Add(-1)
			}
			g.nub.Unlock()
			w.endEpisode()
			return true
		}
		if g.tryAcquire(tc) {
			w.endEpisode()
			return false
		}
		w.begin()
	}
}

// locked reports the lock bit (true = held/unavailable).
func (g *gate) locked() bool { return g.word.Load()&gateLockedBit != 0 }

// waiters returns the current queue length (advisory).
func (g *gate) waiters() int { return int(g.qlen.Load()) }
