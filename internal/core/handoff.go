package core

import (
	"sync/atomic"
	"time"
)

// Direct hand-off policy. The paper's Release wakes a queued thread and
// lets it retry its test-and-set, so a woken thread races every barging
// acquirer and usually loses to one whose cache already holds the line —
// under sustained contention the queue's head can wait unboundedly (the
// same pathology sync.Mutex calls starvation). Direct hand-off transfers
// the gate to the dequeued waiter without ever clearing the lock bit: no
// barging window, one fewer round trip through the ready pool.
//
// Hand-off is strictly below the specification: an execution with a
// hand-off is indistinguishable from one in which the Release's m' = NIL
// was immediately followed by the waiter's Acquire — exactly the ordering
// the traced two-CAS scheme certifies (gate.releaseHandoff).
//
// The catch is throughput at low contention: a barging acquirer is already
// running, while the hand-off recipient must be rescheduled, so always
// handing off serializes the gate at the park/wake latency. The adaptive
// default therefore mirrors sync.Mutex's starvation mode: barging stays
// allowed until the queue's head has waited handoffStarveNs, then releases
// hand off directly until the backlog drains.

// HandoffMode selects the Release/V/Signal hand-off policy.
type HandoffMode int32

const (
	// HandoffAdaptive (the default) hands off only to waiters that have
	// been queued longer than handoffStarveNs; fresh waiters take their
	// chances with the barging race, which is faster when critical
	// sections are short.
	HandoffAdaptive HandoffMode = iota
	// HandoffOff never hands off: the paper's wake-and-retry protocol.
	HandoffOff
	// HandoffAlways hands off on every Release/V with a queued waiter.
	// Tests and conformance runs use it to drive the hand-off paths hard;
	// as a production policy it trades throughput for strict FIFO.
	HandoffAlways
)

// handoffMode holds the current HandoffMode; the zero value is
// HandoffAdaptive.
var handoffMode atomic.Int32

// SetHandoffMode selects the hand-off policy for every Mutex, Semaphore
// and Condition in the process and returns the previous one. The policy is
// consulted per release, so it may be changed at any time; conformance
// tracing transitions still require quiescence for their own reasons.
func SetHandoffMode(m HandoffMode) HandoffMode {
	return HandoffMode(handoffMode.Swap(int32(m)))
}

// CurrentHandoffMode reports the hand-off policy in effect.
func CurrentHandoffMode() HandoffMode { return HandoffMode(handoffMode.Load()) }

// handoffStarveNs is the adaptive threshold: a queue head older than this
// switches releases to direct hand-off. 1ms, as in sync.Mutex's
// starvationThresholdNs.
const handoffStarveNs = int64(time.Millisecond)

// handoffEpoch anchors handoffNanos: time.Since carries the monotonic
// clock, so the values never jump with wall-clock adjustments.
var handoffEpoch = time.Now()

// handoffNanos is the coarse monotonic clock behind parkStart. It is
// called only on slow paths that are about to park (and by releaseHandoff
// before taking the Nub lock), never inside a spin-lock critical section.
func handoffNanos() int64 { return int64(time.Since(handoffEpoch)) }
