package core

import (
	"sync"
	"testing"
	"time"
)

// waitDone fails the test if ch does not close within the deadline; every
// potentially-blocking assertion in this package goes through it so a
// synchronization bug surfaces as a test failure, not a hung test binary.
func waitDone(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout waiting for %s", what)
	}
}

func TestForkJoin(t *testing.T) {
	ran := false
	th := Fork(func() { ran = true })
	Join(th)
	if !ran {
		t.Fatal("forked function did not run before Join returned")
	}
}

func TestForkSelfIdentity(t *testing.T) {
	var inside *Thread
	th := Fork(func() { inside = Self() })
	Join(th)
	if inside != th {
		t.Fatalf("Self inside forked thread = %v, want the Fork handle %v", inside, th)
	}
}

func TestSelfStableWithinGoroutine(t *testing.T) {
	a := Self()
	b := Self()
	if a != b {
		t.Fatal("two Self calls on the same goroutine returned different Threads")
	}
}

func TestSelfDistinctAcrossGoroutines(t *testing.T) {
	const n = 16
	var mu sync.Mutex
	seen := map[*Thread]bool{}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		Fork(func() {
			defer wg.Done()
			s := Self()
			mu.Lock()
			if seen[s] {
				t.Error("two threads shared a Self")
			}
			seen[s] = true
			mu.Unlock()
		})
	}
	wg.Wait()
}

func TestForkNamed(t *testing.T) {
	th := ForkNamed("consumer", func() {})
	Join(th)
	if th.Name() != "consumer" {
		t.Fatalf("Name = %q, want consumer", th.Name())
	}
	if th.String() != "consumer" {
		t.Fatalf("String = %q", th.String())
	}
	var nilT *Thread
	if nilT.String() != "NIL" {
		t.Fatalf("nil Thread String = %q, want NIL", nilT.String())
	}
}

func TestThreadIDsUnique(t *testing.T) {
	a := Fork(func() {})
	b := Fork(func() {})
	Join(a)
	Join(b)
	if a.ID() == b.ID() {
		t.Fatal("two forked threads share an ID")
	}
}

func TestJoinAdoptedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Join on adopted thread should panic")
		}
	}()
	Join(Self())
}

func TestRegistryCleanupAfterExit(t *testing.T) {
	var gid uint64
	th := Fork(func() { gid = goid() })
	Join(th)
	if lookupThread(gid) != nil {
		t.Fatal("registry entry survived thread exit")
	}
}

func TestDetach(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := Self() // adopt
		if lookupThread(goid()) != s {
			t.Error("adopted thread not registered")
		}
		Detach()
		if lookupThread(goid()) != nil {
			t.Error("Detach left a registry entry")
		}
	}()
	waitDone(t, done, "detaching goroutine")
}

func TestGoidParses(t *testing.T) {
	if goid() == 0 {
		t.Fatal("goid returned 0; stack header parse failed")
	}
	// Distinct goroutines must report distinct ids.
	var other uint64
	done := make(chan struct{})
	go func() { other = goid(); close(done) }()
	waitDone(t, done, "goid goroutine")
	if other == goid() {
		t.Fatal("two goroutines reported the same goid")
	}
}

func TestManyConcurrentForks(t *testing.T) {
	const n = 200
	var counter int64
	var mu sync.Mutex
	handles := make([]*Thread, n)
	for i := range handles {
		handles[i] = Fork(func() {
			mu.Lock()
			counter++
			mu.Unlock()
		})
	}
	for _, h := range handles {
		Join(h)
	}
	if counter != n {
		t.Fatalf("ran %d bodies, want %d", counter, n)
	}
}
