package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickMutexModel property-tests the mutex against its one-bit abstract
// model under random single-threaded TryAcquire/Release sequences.
func TestQuickMutexModel(t *testing.T) {
	check := func(ops []bool) bool {
		var m Mutex
		held := false
		for _, acquire := range ops {
			if acquire {
				got := m.TryAcquire()
				if got == held {
					// TryAcquire must succeed iff the model says free.
					return false
				}
				if got {
					held = true
				}
			} else if held {
				m.Release()
				held = false
			}
			if m.Held() != held {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(51))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSemaphoreModel: the binary semaphore against its
// (available, unavailable) model; V is unconditional and idempotent on an
// available semaphore.
func TestQuickSemaphoreModel(t *testing.T) {
	check := func(ops []uint8) bool {
		var s Semaphore
		avail := true
		for _, op := range ops {
			switch op % 3 {
			case 0: // TryP
				got := s.TryP()
				if got != avail {
					return false
				}
				if got {
					avail = false
				}
			case 1: // V
				s.V()
				avail = true
			case 2: // observe
				if s.Available() != avail {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(52))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlertFlagModel: Alert/TestAlert as set membership for one
// thread.
func TestQuickAlertFlagModel(t *testing.T) {
	check := func(ops []bool) bool {
		result := true
		th := Fork(func() {
			self := Self()
			pending := false
			for _, alert := range ops {
				if alert {
					Alert(self)
					pending = true
				} else {
					if TestAlert() != pending {
						result = false
						return
					}
					pending = false
				}
			}
			if AlertPending(self) != pending {
				result = false
			}
		})
		Join(th)
		return result
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(53))}); err != nil {
		t.Fatal(err)
	}
}
