package core

import (
	"math"
	"sync/atomic"
	"time"

	"threads/internal/spinlock"
)

// The timer wheel delivers deadlines to blocked threads with Alert — the
// paper's only cancellation mechanism ("typically to implement things such
// as timeouts and aborts"). The deadline variants (AlertWaitDeadline,
// AlertPDeadline, AcquireDeadline) arm an entry before blocking and
// cancel-and-drain it on every exit path, so the classic stale-alert race —
// a deadline that fires after the wait is satisfied poisoning the thread's
// NEXT alertable wait — cannot happen by construction; see deadline.go.
//
// Shape: a hashed wheel of wheelBuckets spin-locked intrusive lists, keyed
// by deadline time; one lazily-started runner goroutine scans the wheel and
// fires expired entries. Arming is O(1) under one bucket lock; the runner
// wakes only for the earliest pending deadline (or a kick when a new entry
// lowers it).

const (
	// wheelBuckets is the hash width. Entries for the same tick land in
	// the same bucket; the runner scans all buckets per wake, so the width
	// only bounds lock contention between concurrent arms, not scan cost.
	wheelBuckets = 64
	// wheelTick is the hashing granularity: deadlines within the same
	// tick share a bucket.
	wheelTick = int64(time.Millisecond)
)

// timerEntry states. An entry is owned by its thread: only the owner arms
// and cancels it, and each Thread reuses one cached entry (Thread.timerE),
// so arming allocates nothing in steady state.
const (
	timerIdle uint32 = iota
	// timerArmed: linked into a bucket, waiting to fire or be cancelled.
	timerArmed
	// timerFiring: the runner won the CAS from armed and is delivering the
	// Alert. A cancel arriving now spins until timerFired — briefly, the
	// firing window is one Alert call — so the owner never races the
	// delivery.
	timerFiring
	// timerFired: the Alert has been delivered. The runner never touches
	// the entry again after this store, so the owner may reuse it.
	timerFired
	// timerCancelled: the owner won the CAS from armed; the entry never
	// fired and never will.
	timerCancelled
)

// timerEntry is one armed deadline. linked, next and prev are guarded by
// the owning bucket's lock; state carries the fire/cancel race; when and t
// are written by the owner before publication and read-only afterwards.
type timerEntry struct {
	state  atomic.Uint32
	t      *Thread
	when   int64 // deadline, ns (time.Time.UnixNano)
	linked bool
	next   *timerEntry
	prev   *timerEntry
	bucket *wheelBucket
}

// wheelBucket is one spin-locked intrusive list, padded so concurrent arms
// on neighbouring buckets do not share a cache line.
type wheelBucket struct {
	lock spinlock.Lock
	head *timerEntry //threads:guardedby lock
	_    [24]byte
}

func (b *wheelBucket) push(e *timerEntry) {
	e.bucket = b
	e.linked = true
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
}

// unlink removes e if it is still linked; callers hold b.lock.
func (b *wheelBucket) unlink(e *timerEntry) {
	if !e.linked {
		return
	}
	e.linked = false
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	e.next, e.prev = nil, nil
}

// timerWheel is the package-global wheel. earliest is the wake deadline the
// runner is committed to honouring: an arm that lowers it must kick the
// runner. The missed-kick window is closed Dekker-style — the runner stores
// earliest = +inf BEFORE scanning the buckets, and an arm publishes its
// entry BEFORE reading earliest, so every new entry is either seen by the
// scan or observes a value of earliest it can lower.
type timerWheel struct {
	buckets  [wheelBuckets]wheelBucket
	earliest atomic.Int64
	kick     chan struct{}
	started  atomic.Bool
}

var wheel = func() *timerWheel {
	tw := &timerWheel{kick: make(chan struct{}, 1)}
	tw.earliest.Store(math.MaxInt64)
	return tw
}()

// armDeadline links a timer entry for t that will Alert(t) at deadline,
// reusing the thread's cached entry. Only t itself may call this, and only
// with the previous episode finished (cancelAndDrain returned).
func (t *Thread) armDeadline(deadline time.Time) *timerEntry {
	e := t.timerE
	if e == nil {
		e = &timerEntry{t: t}
		t.timerE = e
	}
	e.when = deadline.UnixNano()
	e.state.Store(timerArmed)
	statIncT(t, statTimerArm)
	wheel.arm(e)
	return e
}

func (tw *timerWheel) arm(e *timerEntry) {
	b := &tw.buckets[uint64(e.when/wheelTick)%wheelBuckets]
	b.lock.Lock()
	b.push(e)
	b.lock.Unlock()
	tw.ensureRunner()
	// Publish-then-read (the arm side of the Dekker pair): lower earliest
	// if this entry is sooner than the runner's committed wake, and kick
	// it awake to honour the new bound.
	for {
		cur := tw.earliest.Load()
		if e.when >= cur {
			return
		}
		if tw.earliest.CompareAndSwap(cur, e.when) {
			select {
			case tw.kick <- struct{}{}:
			default:
			}
			return
		}
	}
}

func (tw *timerWheel) ensureRunner() {
	if tw.started.Load() {
		return
	}
	if tw.started.CompareAndSwap(false, true) {
		go tw.run()
	}
}

// run is the wheel's runner: scan, fire, sleep until the earliest pending
// deadline. The goroutine is started on first use and runs for the life of
// the process (it is idle — one hour per wake — when no deadlines are
// armed, like the runtime's own timer machinery).
func (tw *timerWheel) run() {
	timer := time.NewTimer(time.Hour)
	for {
		// Store-then-scan (the runner side of the Dekker pair): any entry
		// armed after this store either is seen by the scan below or reads
		// an earliest it can lower (and kicks).
		tw.earliest.Store(math.MaxInt64)
		now := time.Now().UnixNano()
		next := int64(math.MaxInt64)
		var expired *timerEntry
		for i := range tw.buckets {
			b := &tw.buckets[i]
			b.lock.Lock()
			for e := b.head; e != nil; {
				n := e.next
				if e.when <= now {
					b.unlink(e)
					// Chain expired entries through next for firing
					// outside the lock; unlink cleared the pointers and
					// a cancelled entry skips its own unlink once
					// linked is false.
					e.next = expired
					expired = e
				} else if e.when < next {
					next = e.when
				}
				e = n
			}
			b.lock.Unlock()
		}
		for e := expired; e != nil; {
			n := e.next
			e.next = nil
			if e.state.CompareAndSwap(timerArmed, timerFiring) {
				Alert(e.t)
				statIncT(e.t, statTimerFire)
				// The final runner access: after this store the owner's
				// cancelAndDrain may reuse the entry.
				e.state.Store(timerFired)
			}
			e = n
		}
		for {
			cur := tw.earliest.Load()
			if next >= cur || tw.earliest.CompareAndSwap(cur, next) {
				break
			}
		}
		wake := tw.earliest.Load()
		d := time.Hour
		if wake != math.MaxInt64 {
			d = time.Duration(wake - time.Now().UnixNano())
			if d <= 0 {
				continue
			}
		}
		timer.Reset(d)
		select {
		case <-timer.C:
		case <-tw.kick:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
	}
}

// cancelAndDrain ends an armed episode and reports whether the deadline
// fired. Exactly one of two things is true on return:
//
//   - fired == false: the cancel won; the entry never alerted and never
//     will (the runner observed timerCancelled, or never saw the entry).
//   - fired == true: the Alert was delivered before return. Whether it is
//     still pending on the thread depends on whether the wait consumed it;
//     the caller drains it if not (see deadline.go).
//
// Only the owning thread calls this, once per armDeadline.
func (e *timerEntry) cancelAndDrain() (fired bool) {
	if e.state.CompareAndSwap(timerArmed, timerCancelled) {
		b := e.bucket
		b.lock.Lock()
		b.unlink(e)
		b.lock.Unlock()
		statIncT(e.t, statTimerCancel)
		return false
	}
	// The runner won the race: it is between its CAS to timerFiring and
	// its store of timerFired, delivering the Alert. Wait it out so the
	// delivery cannot land after this episode's drain.
	for e.state.Load() != timerFired {
		spinlock.Pause(spinPauseIters)
	}
	return true
}
