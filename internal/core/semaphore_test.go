package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreZeroValueAvailable(t *testing.T) {
	var s Semaphore
	if !s.Available() {
		t.Fatal("zero-value Semaphore not available; INITIALLY available violated")
	}
	s.P()
	if s.Available() {
		t.Fatal("semaphore available after P")
	}
	s.V()
	if !s.Available() {
		t.Fatal("semaphore unavailable after V")
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	var (
		s       Semaphore
		counter int
		wg      sync.WaitGroup
	)
	const threads, iters = 8, 5000
	wg.Add(threads)
	for i := 0; i < threads; i++ {
		Fork(func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				s.P()
				counter++
				s.V()
			}
		})
	}
	wg.Wait()
	if counter != threads*iters {
		t.Fatalf("counter = %d, want %d", counter, threads*iters)
	}
}

// TestVWithoutP: V has no precondition; "calls of P and V need not be
// textually linked" and there is no notion of holding a semaphore.
func TestVWithoutP(t *testing.T) {
	var s Semaphore
	s.V() // idempotent on an available semaphore
	if !s.Available() {
		t.Fatal("V on available semaphore left it unavailable")
	}
	s.P()
	done := make(chan struct{})
	// A different thread performs the V — the private-semaphore pattern.
	Fork(func() {
		s.V()
		close(done)
	})
	waitDone(t, done, "V from another thread")
	if !s.Available() {
		t.Fatal("V from non-acquirer did not release the semaphore")
	}
}

// TestBinarySemaphoreIdempotentV: multiple Vs do not accumulate; the
// semaphore is binary (available, unavailable), not counting.
func TestBinarySemaphoreIdempotentV(t *testing.T) {
	var s Semaphore
	s.V()
	s.V()
	s.V()
	s.P() // consumes the single "available"
	if s.Available() {
		t.Fatal("binary semaphore accumulated multiple Vs")
	}
	got := make(chan struct{})
	Fork(func() {
		s.P() // must block until the next V
		close(got)
	})
	select {
	case <-got:
		t.Fatal("second P succeeded: semaphore behaved as counting")
	case <-time.After(50 * time.Millisecond):
	}
	s.V()
	waitDone(t, got, "second P after V")
	s.V()
}

// TestInterruptStyleSynchronization reproduces the paper's interrupt
// pattern: a thread waits for an interrupt-routine action by calling P, and
// the "interrupt routine" (here a raw goroutine outside any thread,
// forbidden from blocking) unblocks it with V.
func TestInterruptStyleSynchronization(t *testing.T) {
	var sem Semaphore
	sem.P() // drain the initial availability: P now waits for the device
	var interrupts int32
	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			sem.P() // wait for interrupt
			atomic.AddInt32(&interrupts, 1)
		}
	})
	go func() { // the interrupt source: never blocks
		for i := 0; i < 10; i++ {
			time.Sleep(time.Millisecond)
			sem.V()
		}
	}()
	waitDone(t, done, "interrupt handler thread")
	if interrupts != 10 {
		t.Fatalf("handled %d interrupts, want 10", interrupts)
	}
}

func TestTryP(t *testing.T) {
	var s Semaphore
	if !s.TryP() {
		t.Fatal("TryP on available semaphore failed")
	}
	if s.TryP() {
		t.Fatal("TryP on unavailable semaphore succeeded")
	}
	s.V()
	if !s.TryP() {
		t.Fatal("TryP after V failed")
	}
	s.V()
}

func TestSemaphoreWaiters(t *testing.T) {
	var s Semaphore
	s.P()
	const n = 4
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		Fork(func() {
			defer wg.Done()
			s.P()
			s.V()
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("Waiters = %d, want %d", s.Waiters(), n)
		}
		time.Sleep(time.Millisecond)
	}
	s.V()
	wg.Wait()
}
