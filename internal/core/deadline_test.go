package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDeadlineExceededMatchesContext(t *testing.T) {
	if !errors.Is(DeadlineExceeded, context.DeadlineExceeded) {
		t.Fatal("DeadlineExceeded does not match context.DeadlineExceeded under errors.Is")
	}
	if errors.Is(DeadlineExceeded, Alerted) {
		t.Fatal("DeadlineExceeded must not match Alerted")
	}
}

func TestAlertWaitDeadlineTimesOut(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	errCh := make(chan error, 1)
	Fork(func() {
		m.Acquire()
		err := c.AlertWaitDeadline(&m, time.Now().Add(30*time.Millisecond))
		if !m.Held() {
			t.Error("mutex not held after AlertWaitDeadline (m' = SELF violated)")
		}
		m.Release()
		// The deadline's alert must not survive the return.
		if TestAlert() {
			t.Error("stale alert pending after DeadlineExceeded return")
		}
		errCh <- err
	})
	select {
	case err := <-errCh:
		if !errors.Is(err, DeadlineExceeded) {
			t.Fatalf("AlertWaitDeadline returned %v, want DeadlineExceeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AlertWaitDeadline never timed out")
	}
}

func TestAlertWaitDeadlineSatisfied(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	errCh := make(chan error, 1)
	Fork(func() {
		m.Acquire()
		err := c.AlertWaitDeadline(&m, time.Now().Add(10*time.Second))
		m.Release()
		errCh <- err
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	c.Signal()
	if err := <-errCh; err != nil {
		t.Fatalf("satisfied AlertWaitDeadline returned %v, want nil", err)
	}
}

func TestAlertWaitDeadlineUserAlert(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	errCh := make(chan error, 1)
	th := Fork(func() {
		m.Acquire()
		err := c.AlertWaitDeadline(&m, time.Now().Add(10*time.Second))
		m.Release()
		errCh <- err
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	Alert(th)
	if err := <-errCh; !errors.Is(err, Alerted) {
		t.Fatalf("alerted AlertWaitDeadline returned %v, want Alerted", err)
	}
}

func TestAlertWaitDeadlineExpiredOnEntry(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		m.Acquire()
		defer m.Release()
		err := c.AlertWaitDeadline(&m, time.Now().Add(-time.Second))
		if !errors.Is(err, DeadlineExceeded) {
			t.Errorf("expired-on-entry returned %v, want DeadlineExceeded", err)
		}
		if !m.Held() {
			t.Error("mutex released by expired-on-entry AlertWaitDeadline")
		}
		if TestAlert() {
			t.Error("expired-on-entry left an alert pending")
		}
	})
	waitDone(t, done, "expired-on-entry waiter")
}

func TestAlertPDeadline(t *testing.T) {
	var s Semaphore
	s.P() // unavailable: the deadline path must block and time out
	errCh := make(chan error, 1)
	Fork(func() {
		err := s.AlertPDeadline(time.Now().Add(30 * time.Millisecond))
		if TestAlert() {
			t.Error("stale alert pending after AlertPDeadline")
		}
		errCh <- err
	})
	if err := <-errCh; !errors.Is(err, DeadlineExceeded) {
		t.Fatalf("AlertPDeadline on unavailable semaphore returned %v, want DeadlineExceeded", err)
	}
	// UNCHANGED [s] on the deadline path.
	if s.Available() {
		t.Fatal("deadline path changed the semaphore")
	}
	s.V()

	// Available: acquires immediately.
	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		if err := s.AlertPDeadline(time.Now().Add(10 * time.Second)); err != nil {
			t.Errorf("AlertPDeadline on available semaphore returned %v", err)
		}
		if s.Available() {
			t.Error("semaphore still available after AlertPDeadline acquired")
		}
		s.V()
	})
	waitDone(t, done, "available-path AlertPDeadline")

	// Expired on entry degenerates to TryP.
	done2 := make(chan struct{})
	Fork(func() {
		defer close(done2)
		if err := s.AlertPDeadline(time.Now().Add(-time.Second)); err != nil {
			t.Errorf("expired AlertPDeadline on available semaphore returned %v", err)
		}
		if err := s.AlertPDeadline(time.Now().Add(-time.Second)); !errors.Is(err, DeadlineExceeded) {
			t.Errorf("expired AlertPDeadline on unavailable semaphore returned %v", err)
		}
		s.V()
	})
	waitDone(t, done2, "expired-path AlertPDeadline")
}

func TestAcquireDeadline(t *testing.T) {
	var m Mutex
	m.Acquire() // held: the deadline path must block and time out
	errCh := make(chan error, 1)
	Fork(func() {
		err := m.AcquireDeadline(time.Now().Add(30 * time.Millisecond))
		if TestAlert() {
			t.Error("stale alert pending after AcquireDeadline")
		}
		errCh <- err
	})
	if err := <-errCh; !errors.Is(err, DeadlineExceeded) {
		t.Fatalf("AcquireDeadline on held mutex returned %v, want DeadlineExceeded", err)
	}
	if !m.Held() {
		t.Fatal("deadline path changed the mutex")
	}
	m.Release()

	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		if err := m.AcquireDeadline(time.Now().Add(10 * time.Second)); err != nil {
			t.Errorf("AcquireDeadline on free mutex returned %v", err)
		}
		m.Release()
		if err := m.AcquireDeadline(time.Now().Add(-time.Second)); err != nil {
			t.Errorf("expired AcquireDeadline on free mutex returned %v", err)
		}
		m.Release()
	})
	waitDone(t, done, "AcquireDeadline success paths")
}

func TestAcquireDeadlineUserAlert(t *testing.T) {
	var m Mutex
	m.Acquire()
	errCh := make(chan error, 1)
	th := Fork(func() {
		errCh <- m.AcquireDeadline(time.Now().Add(10 * time.Second))
	})
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked in AcquireDeadline")
		}
		time.Sleep(time.Millisecond)
	}
	Alert(th)
	if err := <-errCh; !errors.Is(err, Alerted) {
		t.Fatalf("alerted AcquireDeadline returned %v, want Alerted", err)
	}
	Join(th)
	m.Release()
}

// TestDeadlineFiresAfterSatisfiedWait is the deterministic regression test
// for the stale-alert race the deadline API fixes by construction: the wait
// is satisfied by a Signal, and then — deterministically, via the
// testDeadlineRaceWindow hook — the deadline fires BEFORE the epilogue
// cancels its timer. The old time.AfterFunc + Alert + timer.Stop pattern
// loses exactly this race and leaks the alert into the thread's next
// alertable wait (demonstrated in examples/timeout's regression test); the
// deadline variant must drain it, so the subsequent AlertWait returns
// normally.
func TestDeadlineFiresAfterSatisfiedWait(t *testing.T) {
	defer func() { testDeadlineRaceWindow = nil }()
	var (
		m Mutex
		c Condition
	)
	hookArmed := make(chan struct{}, 1)
	testDeadlineRaceWindow = func() {
		select {
		case <-hookArmed:
			// Lose the race on purpose: hold the epilogue open until the
			// deadline has actually fired and its Alert is pending.
			deadline := time.Now().Add(10 * time.Second)
			for !AlertPending(Self()) {
				if time.Now().After(deadline) {
					t.Error("deadline never fired inside the race window")
					return
				}
				time.Sleep(time.Millisecond)
			}
		default:
			// Not the instrumented call (second wait's epilogue): no-op.
		}
	}

	errs := make(chan error, 2)
	Fork(func() {
		m.Acquire()
		hookArmed <- struct{}{}
		// First wait: satisfied by Signal well before its deadline, but the
		// hook forces the deadline to fire before the cancel runs.
		errs <- c.AlertWaitDeadline(&m, time.Now().Add(250*time.Millisecond))
		// Second wait: alertable, with no deadline. If the first wait's
		// timer alert leaked, this returns Alerted — the poisoning.
		errs <- c.AlertWait(&m)
		m.Release()
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first wait never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	c.Signal() // satisfy the first wait before its deadline
	if err := <-errs; err != nil {
		t.Fatalf("satisfied first wait returned %v, want nil (stale deadline alert must be drained)", err)
	}
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second wait never blocked — stale alert poisoned it?")
		}
		time.Sleep(time.Millisecond)
	}
	c.Signal()
	if err := <-errs; err != nil {
		t.Fatalf("second wait returned %v, want nil: the stale deadline alert leaked", err)
	}
}

// TestDeadlineEntryReuse drives many deadline episodes (mixed outcomes)
// through one thread's cached timer entry.
func TestDeadlineEntryReuse(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	done := make(chan struct{})
	ready := make(chan struct{}, 1)
	Fork(func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			m.Acquire()
			if i%2 == 0 {
				// Time out.
				err := c.AlertWaitDeadline(&m, time.Now().Add(2*time.Millisecond))
				if !errors.Is(err, DeadlineExceeded) {
					t.Errorf("round %d: got %v, want DeadlineExceeded", i, err)
				}
			} else {
				// Satisfied.
				ready <- struct{}{}
				err := c.AlertWaitDeadline(&m, time.Now().Add(10*time.Second))
				if err != nil {
					t.Errorf("round %d: got %v, want nil", i, err)
				}
			}
			m.Release()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for i := 1; i < 50; i += 2 {
		<-ready
		for c.Waiters() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("waiter never blocked")
			}
			time.Sleep(time.Millisecond)
		}
		c.Signal()
	}
	waitDone(t, done, "deadline reuse loop")
}

// TestManyDeadlinesFire arms many concurrent deadlines across the wheel's
// buckets and checks that every one of them fires.
func TestManyDeadlinesFire(t *testing.T) {
	var s Semaphore
	s.P() // never available: every wait must end by deadline
	const n = 32
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		d := time.Duration(5+i*3) * time.Millisecond
		Fork(func() {
			errs <- s.AlertPDeadline(time.Now().Add(d))
		})
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, DeadlineExceeded) {
				t.Fatalf("waiter %d returned %v, want DeadlineExceeded", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("waiter %d never timed out", i)
		}
	}
	s.V()
}

func TestAcquireDeadlineCheckingMode(t *testing.T) {
	prev := SetChecking(true)
	defer SetChecking(prev)
	var m Mutex
	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		if err := m.AcquireDeadline(time.Now().Add(time.Second)); err != nil {
			t.Errorf("AcquireDeadline returned %v", err)
			return
		}
		// Holder tracking must see us, so Release's REQUIRES check passes.
		m.Release()
	})
	waitDone(t, done, "checking-mode AcquireDeadline")
}
