// Package core implements the Threads synchronization primitives of SRC
// Report 20 on the real Go runtime.
//
// The implementation mirrors the paper's two-layer structure
// (§Implementation):
//
//   - The "user code" layer is the fast path executed entirely with atomic
//     instructions in the caller: Acquire is a test-and-set of the lock
//     bit; Release clears the bit and calls the Nub only if the queue of
//     blocked threads is non-empty; Signal and Broadcast return immediately
//     when no thread is committed to waiting.
//
//   - The "nub code" layer runs under a more primitive mutual-exclusion
//     mechanism, a test-and-set spin lock (internal/spinlock). Nub routines
//     acquire the spin lock, perform their visible actions — enqueueing the
//     caller, re-testing the lock bit, moving waiters out of condition
//     queues — and release the spin lock.
//
// A mutex is represented by a pair (lock bit, queue); the lock bit is 0 iff
// the mutex is NIL in the specification's terms, and no holder is recorded
// (the paper notes the debugger cannot tell which thread holds a mutex).
// A semaphore has the identical representation; P is Acquire and V is
// Release. A condition variable is a pair (eventcount, queue); Wait reads
// the eventcount, releases the mutex and calls Block(c, i), which under the
// spin lock compares the count and either deschedules the caller or — if a
// Signal or Broadcast intervened — returns at once. That comparison closes
// the wakeup-waiting race for arbitrarily many racing waiters, which is why
// the implementation uses an eventcount rather than a semaphore bit.
//
// Where the Firefly Nub descheduled a thread and ran its scheduling
// algorithm to reassign the processor, this implementation parks the
// goroutine on a one-shot handoff channel and lets the Go scheduler reuse
// the processor; the paper's specification is explicitly independent of
// processor assignment, so the substitution is behavior-preserving.
//
// Alerting follows the corrected specification: when AlertWait raises
// Alerted the thread is removed from the condition variable, so a later
// Signal is never absorbed by a departed thread (the bug Greg Nelson found
// in the original specification). Wakers arbitrate with a compare-and-swap
// on the waiter's wake reason, so a racing Signal and Alert wake exactly
// one path and Signal re-pops when it loses the race.
package core
