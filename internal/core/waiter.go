package core

import (
	"sync/atomic"

	"threads/internal/queue"
)

// Wake reasons. Wakers claim a parked waiter by compare-and-swapping its
// reason from reasonNone; exactly one waker wins, so each waiter receives
// exactly one wakeup. A Signal that loses the race to an Alert re-pops the
// queue and wakes another thread instead — this is the implementation-level
// counterpart of the corrected AlertWait specification, under which a
// thread that raises Alerted leaves the condition variable rather than
// silently absorbing a later Signal.
const (
	reasonNone  uint32 = iota
	reasonWake         // Release, V, Signal or Broadcast
	reasonAlert        // Alert
)

// waiter represents one blocked occurrence of a thread: a node on a mutex,
// semaphore or condition queue plus a one-shot parking place. A fresh
// waiter is allocated per blocking episode; the blocking paths are the slow
// paths, and per-episode allocation keeps the wake/alert races free of
// reuse hazards (a waker that loses the reason CAS may still hold a
// reference after the blocked call has returned).
type waiter struct {
	node   queue.Node[*waiter]
	reason atomic.Uint32
	parked chan struct{}
	// t is the thread blocked here, set only for alertable waits
	// (AlertWait, AlertP); plain Acquire/Wait/P waiters are anonymous,
	// just as the Firefly implementation records no identities on its
	// queues.
	t *Thread
}

func newWaiter(t *Thread) *waiter {
	w := &waiter{parked: make(chan struct{}, 1), t: t}
	w.node.Value = w
	return w
}

// park blocks until a waker claims and wakes this waiter, then returns the
// claimed reason.
func (w *waiter) park() uint32 {
	<-w.parked
	return w.reason.Load()
}

// claim attempts to claim the waiter for the given reason and reports
// whether the caller won. The winner must subsequently call wake exactly
// once.
func (w *waiter) claim(reason uint32) bool {
	return w.reason.CompareAndSwap(reasonNone, reason)
}

// wake releases the parked thread. It must be called exactly once, by the
// waker whose claim succeeded; the buffered channel makes it non-blocking
// and safe to call before park is reached.
func (w *waiter) wake() {
	w.parked <- struct{}{}
}

// claimed reports whether some waker has already claimed this waiter.
func (w *waiter) claimed() bool {
	return w.reason.Load() != reasonNone
}
