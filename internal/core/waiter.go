package core

import (
	"sync"
	"sync/atomic"

	"threads/internal/queue"
)

// Wake reasons. Wakers claim a parked waiter by compare-and-swapping the
// reason bits of its state word from reasonNone; exactly one waker wins, so
// each waiter receives exactly one wakeup per blocking episode. A Signal
// that loses the race to an Alert re-pops the queue and wakes another
// thread instead — this is the implementation-level counterpart of the
// corrected AlertWait specification, under which a thread that raises
// Alerted leaves the condition variable rather than silently absorbing a
// later Signal.
const (
	reasonNone  uint64 = iota
	reasonWake         // Release, V, Signal or Broadcast
	reasonAlert        // Alert
	// reasonHandoff is a direct hand-off: the releaser transferred
	// ownership of its gate to this waiter instead of clearing the lock
	// bit, so the woken thread returns holding without retrying its
	// test-and-set. (A traced hand-off whose certification failed is
	// demoted: the claim still reads reasonHandoff but handoffSeq is 0
	// and the recipient retries like a plain wake; see gate.releaseHandoff.)
	reasonHandoff
)

const (
	// The low bits of the state word hold the wake reason; the rest is the
	// episode generation. genStep advances the generation while clearing
	// the reason bits.
	reasonMask = 0x3
	genStep    = reasonMask + 1
)

// waiter represents one blocked occurrence of a thread: a node on a mutex,
// semaphore or condition queue plus a one-shot parking place. Waiters are
// reused across blocking episodes — each Fork-created Thread caches one,
// and anonymous or adopted blockers draw from a sync.Pool — so the slow
// paths allocate nothing per park.
//
// Reuse makes the wake/alert claim races that per-episode allocation used
// to paper over explicit: a waker that loses the reason CAS may still hold
// a reference after the blocked call has returned and the waiter has begun
// a new episode. The state word guards against that: it packs a generation
// counter above the reason bits, begin() advances the generation, and a
// claim succeeds only if the state still matches the epoch the claimer
// captured while the waiter was provably current (under the lock guarding
// the queue or alert registration the reference came from). A stale claim
// therefore fails the CAS no matter when it lands.
type waiter struct {
	// item is the intrusive priority-queue element linking this waiter into
	// a gate or condition queue. Priority is the blocking thread's effective
	// priority captured at park time (0 unless some thread in the process
	// has a nonzero priority — see capturePri), so wakeup selection is
	// priority-then-FIFO and degenerates to exactly the old FIFO order when
	// priorities are unused.
	item  queue.PItem[*waiter]
	state atomic.Uint64 // generation<<2 | reason
	// owner is the blocking Thread when known (alertable paths always, any
	// path once priorities are in use); nil for anonymous blockers.
	// releaseHandoff reads it under the gate's Nub lock to install the
	// hand-off recipient as the priority-inheritance holder.
	owner *Thread
	// parked is the one-shot parking place, reused across generations. Per
	// episode at most one token is sent (by the winning claimer) and
	// exactly one is consumed (by park, or by drain on the paths that
	// back out after a claim), so the channel is always empty between
	// episodes.
	parked chan struct{}
	// pooled marks waiters owned by waiterPool rather than cached on a
	// Thread; endEpisode returns only those to the pool.
	pooled bool
	// parkStart records when this episode committed to the slow path
	// (handoffNanos units); 0 until then. releaseHandoff reads it under
	// the gate's Nub lock to apply the adaptive starvation threshold; it
	// is always written before the waiter is published to a queue, so the
	// queue's lock ordering makes the plain field race-free.
	parkStart int64
	// handoffSeq carries the certified acquisition stamp of a traced
	// direct hand-off to the recipient (0 for an untraced hand-off, or a
	// demoted one). Written by the releaser before wake, read by the
	// recipient after park: ordered by the parking channel.
	handoffSeq uint64
	// morphGate, non-nil on a condition-queue waiter, names the mutex
	// gate Signal may morph this waiter onto instead of waking it (wait
	// morphing; see Condition.Signal). Set before the push onto the
	// condition queue, read under the condition's Nub lock.
	morphGate *gate
}

func newWaiter() *waiter {
	w := &waiter{parked: make(chan struct{}, 1)}
	w.item.Value = w
	return w
}

var waiterPool = sync.Pool{New: func() any {
	w := newWaiter()
	w.pooled = true
	return w
}}

// getWaiter returns a waiter ready for a new blocking episode. Fork-created
// threads reuse the waiter cached on the Thread; anonymous blockers (plain
// Acquire/P/Wait never compute SELF) and adopted goroutines take the pool
// path.
func getWaiter(t *Thread) *waiter {
	var w *waiter
	if t != nil && t.parkW != nil {
		w = t.parkW
	} else {
		w = waiterPool.Get().(*waiter)
	}
	w.begin()
	w.parkStart = 0
	w.handoffSeq = 0
	w.morphGate = nil
	w.owner = t
	w.item.Priority = 0
	return w
}

// capturePri stamps the waiter with its thread's effective priority before
// it is published to a queue. While no thread in the process has a nonzero
// priority this is a single atomic load and the anonymous slow paths never
// compute SELF; once priorities are in use, an anonymous blocker pays the
// identity lookup on the park path (never on the fast path) so the queues
// can order it. Returns the (possibly just recovered) thread.
func (w *waiter) capturePri(t *Thread) *Thread {
	if !prioInUse.Load() {
		return t
	}
	if t == nil {
		t = Self()
		w.owner = t
	}
	w.item.Priority = queue.Priority(t.effPri.Load())
	return t
}

// endEpisode declares the current blocking episode over: every claim has
// been resolved and any wake token has been consumed. The waiter may be
// handed out again (possibly to another goroutine, via the pool) at any
// moment after this call.
func (w *waiter) endEpisode() {
	if w.pooled {
		waiterPool.Put(w)
	}
}

// begin opens a new episode: the generation advances and the reason bits
// clear in one store. Safe against stale claimers because their captured
// epochs carry an older generation and their CASes fail; no claim with the
// *current* generation can be in flight here, since the previous episode
// resolved all of them before endEpisode.
func (w *waiter) begin() {
	w.state.Store((w.state.Load() &^ reasonMask) + genStep)
}

// epoch captures the current state word for a later claimAt, and reports
// whether the waiter is still unclaimed. Callers must hold the lock that
// makes their reference to w current (the Nub spin lock for queued
// waiters, the thread's alertLock for alert registrations); the returned
// epoch then stays valid for a claimAt issued after the lock is dropped.
func (w *waiter) epoch() (e uint64, unclaimed bool) {
	e = w.state.Load()
	return e, e&reasonMask == reasonNone
}

// claimAt attempts to claim the waiter for reason against a captured
// epoch, reporting whether the caller won. The winner must subsequently
// call wake exactly once (self-claims, where the blocked thread claims its
// own waiter before parking, skip the wake). A claim against a stale epoch
// — the episode ended and a new one began — fails.
func (w *waiter) claimAt(e uint64, reason uint64) bool {
	return w.state.CompareAndSwap(e, e|reason)
}

// claim is epoch+claimAt for callers whose reference is current for the
// whole call (they hold the guarding lock, or the waiter is their own).
func (w *waiter) claim(reason uint64) bool {
	e, unclaimed := w.epoch()
	return unclaimed && w.claimAt(e, reason)
}

// reason returns the claimed reason bits (reasonNone if unclaimed).
func (w *waiter) reason() uint64 {
	return w.state.Load() & reasonMask
}

// park blocks until a waker claims and wakes this waiter, then returns the
// claimed reason.
func (w *waiter) park() uint64 {
	<-w.parked
	return w.reason()
}

// wake releases the parked thread. It must be called exactly once, by the
// waker whose claim succeeded; the buffered channel makes it non-blocking
// and safe to call before park is reached.
func (w *waiter) wake() {
	w.parked <- struct{}{}
}

// drain consumes the wake token of a claim whose park was never reached —
// the blocked call backed out (or elided the wait) after an Alert claimed
// it. The token may still be in flight; drain blocks until it lands, so
// the episode cannot end with a stray token that would corrupt the next
// park on this (reused) waiter.
func (w *waiter) drain() {
	<-w.parked
}
