package core

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForkThreadsUseCachedWaiter checks the fast half of the parking-reuse
// split: a Fork-created thread owns a cached waiter, and its blocking
// episodes use that waiter rather than the pool.
func TestForkThreadsUseCachedWaiter(t *testing.T) {
	release := make(chan struct{})
	var sawCached atomic.Bool
	th := Fork(func() {
		self := Self()
		w := getWaiter(self)
		sawCached.Store(w == self.parkW && !w.pooled)
		w.endEpisode()
		<-release
	})
	if th.parkW == nil {
		t.Fatal("Fork thread has no cached waiter")
	}
	if th.parkW.pooled {
		t.Fatal("Fork thread's cached waiter is marked pooled")
	}
	close(release)
	Join(th)
	if !sawCached.Load() {
		t.Fatal("getWaiter on a Fork thread did not return its cached waiter")
	}
}

// TestAdoptedThreadsTakePoolPath checks the other half: a goroutine not
// created by Fork is adopted without a cached waiter, and its episodes draw
// from the shared pool (adopted goroutines may be transient, so caching on
// the Thread would leak a waiter per adoption).
func TestAdoptedThreadsTakePoolPath(t *testing.T) {
	done := make(chan struct{})
	var parkWNil, pooled atomic.Bool
	go func() {
		defer close(done)
		defer Detach()
		self := Self()
		parkWNil.Store(self.parkW == nil)
		w := getWaiter(self)
		pooled.Store(w.pooled)
		w.endEpisode()
	}()
	<-done
	if !parkWNil.Load() {
		t.Fatal("adopted goroutine unexpectedly has a cached waiter")
	}
	if !pooled.Load() {
		t.Fatal("getWaiter on an adopted thread did not take the pool path")
	}
}

// TestWaiterReuseGenerationsCondition stresses the Alert-vs-Signal claim
// race on one cached waiter across at least 10k reuse generations: one
// thread loops AlertWait while a signaller and an alerter race to claim
// each episode. Every AlertWait round opens a fresh generation on the
// thread's cached waiter, so a stale claim from round k that landed in
// round k+1 would deliver a double wake — caught here as a stray token
// corrupting a later park (the loop jams) or, under -race (the Makefile's
// tier-1 runs this package with it), as a data race.
func TestWaiterReuseGenerationsCondition(t *testing.T) {
	const rounds = 12000
	var (
		m Mutex
		c Condition
	)
	done := make(chan struct{})
	start := make(chan struct{})
	th := ForkNamed("reuse", func() {
		defer close(done)
		<-start
		for i := 0; i < rounds; i++ {
			m.Acquire()
			_ = c.AlertWait(&m) // both outcomes are fine; the race is the point
			m.Release()
		}
	})
	startGen := th.parkW.state.Load() / genStep
	close(start)
	var alerts, signals atomic.Uint64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				c.Signal()
				signals.Add(1)
				runtime.Gosched()
			}
		}
	}()
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				Alert(th)
				alerts.Add(1)
				runtime.Gosched()
			}
		}
	}()
	<-done
	close(stop)
	Join(th)
	gens := th.parkW.state.Load()/genStep - startGen
	if gens < rounds {
		t.Fatalf("cached waiter advanced %d generations, want >= %d", gens, rounds)
	}
	t.Logf("generations=%d signals=%d alerts=%d", gens, signals.Load(), alerts.Load())
}

// TestWaiterReuseGenerationsGate is the gate-side companion: AlertP rounds
// on a mostly-unavailable semaphore, with V and Alert racing to claim the
// parked waiter. The test asserts both WHEN clauses were actually taken,
// so the claim race is known to have been exercised in both directions.
func TestWaiterReuseGenerationsGate(t *testing.T) {
	const rounds = 10000
	var s Semaphore
	s.P() // start unavailable so AlertP parks
	var acquired, alerted atomic.Uint64
	done := make(chan struct{})
	th := ForkNamed("reuse-gate", func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			if err := s.AlertP(); err != nil {
				alerted.Add(1)
			} else {
				acquired.Add(1)
				// Do not V: keep the semaphore unavailable so the next
				// round parks again; the driver below supplies the Vs.
			}
		}
	})
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.V()
				runtime.Gosched()
			}
		}
	}()
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				Alert(th)
				runtime.Gosched()
			}
		}
	}()
	<-done
	close(stop)
	Join(th)
	if acquired.Load() == 0 || alerted.Load() == 0 {
		t.Fatalf("claim race not exercised both ways: acquired=%d alerted=%d",
			acquired.Load(), alerted.Load())
	}
	t.Logf("acquired=%d alerted=%d", acquired.Load(), alerted.Load())
}

// TestParkPathZeroAlloc measures heap allocations across a run of forced
// park/wake round-trips between two Fork threads: in steady state the
// contended slow path must not allocate (the tentpole property). A small
// absolute budget absorbs runtime-internal noise (GC, scheduler).
func TestParkPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const rounds = 5000
	pingPong := func(rounds int) {
		var a, b Semaphore
		b.P()
		done := make(chan struct{})
		Fork(func() {
			for i := 0; i < rounds; i++ {
				a.P()
				b.V()
			}
		})
		Fork(func() {
			defer close(done)
			for i := 0; i < rounds; i++ {
				b.P()
				a.V()
			}
		})
		<-done
	}
	pingPong(rounds) // warm the pools
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	pingPong(rounds)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	// Setup (two Threads, channels, registry inserts) costs a fixed ~30
	// allocations; 2*rounds parks must add nothing proportional.
	if allocs > 200 {
		t.Fatalf("%d allocations across %d parks; the park path is allocating", allocs, 2*rounds)
	}
	t.Logf("allocs=%d for %d parks", allocs, 2*rounds)
}
