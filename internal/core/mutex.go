package core

import "sync/atomic"

// Mutex is the basic tool enabling threads to cooperate on access to shared
// variables. In the specification a Mutex is a Thread-valued variable,
// INITIALLY NIL; the zero value of this type is that initial state.
//
// Specification (SRC Report 20):
//
//	ATOMIC PROCEDURE Acquire(VAR m: Mutex)
//	  MODIFIES AT MOST [m]   WHEN m = NIL   ENSURES m' = SELF
//
//	ATOMIC PROCEDURE Release(VAR m: Mutex)
//	  REQUIRES m = SELF   MODIFIES AT MOST [m]   ENSURES m' = NIL
//
// The representation records no holder (lock bit + queue only); the
// REQUIRES clause of Release is the caller's obligation. SetChecking
// enables a debugging mode that records holders and panics on violations.
type Mutex struct {
	g gate
	// holder is maintained only in checking mode. 0 means NIL.
	holder atomic.Uint64
}

// checking gates the debug holder-tracking mode. It trades the paper's
// 5-instruction fast path for detection of Release's REQUIRES violations —
// the check the paper's users wished their debugger could do.
var checking atomic.Bool

// SetChecking enables or disables holder tracking on all mutexes and
// returns the previous setting. With checking on, Release panics if the
// calling thread does not hold the mutex, and Acquire panics on attempted
// recursive acquisition (which would otherwise deadlock silently).
func SetChecking(on bool) bool { return checking.Swap(on) }

// Checking reports whether holder tracking is enabled.
func Checking() bool { return checking.Load() }

// Acquire blocks until the mutex is NIL and then makes the calling thread
// its holder. The WHEN clause (m = NIL) may impose a delay until another
// thread's Release makes it true; if several threads are blocked in
// Acquire, exactly one of them proceeds per Release, because the winner's
// ENSURES falsifies the others' WHEN clauses.
func (m *Mutex) Acquire() {
	tc := traceAcquireCtx(TraceAcquire)
	if checking.Load() {
		self := Self()
		if m.holder.Load() == self.id {
			panic("threads: recursive Acquire would deadlock: " + self.name + " already holds the mutex")
		}
		m.g.acquire(self, &mutexGateStats, tc)
		m.holder.Store(self.id)
		if m.g.pi.Load() {
			m.g.piSetHolder(self)
		}
		return
	}
	if m.g.pi.Load() {
		// PI needs the holder's identity for donation targeting, so a PI
		// mutex pays the SELF recovery per acquisition (the same trade
		// checking mode makes).
		self := Self()
		m.g.acquire(self, &mutexGateStats, tc)
		m.g.piSetHolder(self)
		return
	}
	m.g.acquire(nil, &mutexGateStats, tc)
}

// TryAcquire acquires the mutex if it is NIL and reports whether it did.
// (An extension: the Firefly interface had no TryAcquire, but the fast path
// makes it free and tests and examples use it.)
func (m *Mutex) TryAcquire() bool {
	if !m.g.tryAcquire(traceAcquireCtx(TraceAcquire)) {
		return false
	}
	if checking.Load() {
		m.holder.Store(Self().id)
	}
	if m.g.pi.Load() {
		m.g.piSetHolder(Self())
	}
	statInc(statAcquireFast)
	return true
}

// Release makes the mutex NIL and, if threads are blocked in Acquire, makes
// one of them ready. The caller must hold the mutex (REQUIRES m = SELF);
// with checking disabled a violation is not detected, matching the paper's
// implementation, which keeps no holder.
func (m *Mutex) Release() {
	tc := traceAcquireCtx(TraceRelease)
	if checking.Load() {
		self := Self()
		if h := m.holder.Load(); h != self.id {
			panic("threads: Release REQUIRES m = SELF violated by " + self.name)
		}
		m.holder.Store(0)
	}
	m.piRelease()
	m.g.release(&mutexGateStats, tc)
}

// SetPriorityInheritance enables or disables priority inheritance on this
// mutex and returns the previous setting. With PI on, a blocked Acquire
// donates its thread's effective priority to the holder for the duration
// of the hold (gate.piDonate); the donation is removed at Release and the
// boost/restore transitions carry conformance stamps. PI mutexes track
// their holder, which costs a SELF recovery per acquisition — enable it on
// the mutexes whose critical sections priority-sensitive threads contend
// for, not globally. Flip only while the mutex is free.
func (m *Mutex) SetPriorityInheritance(on bool) bool {
	prev := m.g.pi.Swap(on)
	if prev && !on {
		m.g.piSetHolder(nil)
	}
	return prev
}

// PriorityInheritance reports whether priority inheritance is enabled.
func (m *Mutex) PriorityInheritance() bool { return m.g.pi.Load() }

// piRelease clears the PI holder record and drops the donation the hold
// may have accumulated. Runs before the lock word transitions: the clear
// is serialized under the gate's nub lock, so donors ordered after it see
// no holder and skip, and the departing holder can never keep a boost for
// a mutex it no longer holds.
func (m *Mutex) piRelease() {
	if !m.g.pi.Load() {
		return
	}
	if h := m.g.piClearHolder(); h != nil {
		h.undonate(&m.g)
	}
}

// releaseEnqueue is Wait's mutex hand-off: the caller already emitted an
// Enqueue event with stamp seq (0 when untraced), which subsumes the
// specification-level Release. Holder bookkeeping matches Release.
func (m *Mutex) releaseEnqueue(seq uint64) {
	if checking.Load() {
		self := Self()
		if h := m.holder.Load(); h != self.id {
			panic("threads: Wait REQUIRES m = SELF violated by " + self.name)
		}
		m.holder.Store(0)
	}
	m.piRelease()
	m.g.releaseEmbed(&mutexGateStats, seq)
}

// acquireResume is Wait's mutex reacquisition: like Acquire, but the trace
// event (Resume or AlertResume.Return, carrying the condition in obj2) is
// supplied by the caller, who passes the resuming thread (nil lets the
// slow path recover it if priorities demand). A zero tc reacquires
// silently.
func (m *Mutex) acquireResume(t *Thread, tc traceCtx) {
	m.g.acquire(t, &mutexGateStats, tc)
	if checking.Load() {
		m.holder.Store(Self().id)
	}
	if m.g.pi.Load() {
		if t == nil {
			t = Self()
		}
		m.g.piSetHolder(t)
	}
}

// Held reports whether some thread holds the mutex. Advisory: the answer
// may be stale immediately.
func (m *Mutex) Held() bool { return m.g.locked() }

// Waiters returns the number of threads blocked in Acquire (advisory).
func (m *Mutex) Waiters() int { return m.g.waiters() }

// Lock brackets body with Acquire and Release, the Modula-2+
//
//	LOCK m DO statement-sequence END
//
// construct: Release runs even if body panics (the TRY ... FINALLY of the
// expansion), and the bracketing is syntactically enforced.
func Lock(m *Mutex, body func()) {
	m.Acquire()
	defer m.Release()
	body()
}
