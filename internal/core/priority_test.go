package core

import (
	"testing"
	"time"
)

// waitForWaiters spins until the gate reports n blocked threads (the
// waiters must be parked, not merely forked, before the test releases).
func waitForWaiters(t *testing.T, n func() int, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for n() != want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d waiters (have %d)", want, n())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestMutexWakeupPriorityOrder blocks three threads of distinct priorities
// on a held mutex and checks the releases deliver the mutex in priority
// order. HandoffAlways makes every release a direct transfer to the queue
// head, so the observed order is exactly the queue's selection order —
// no barging race to blur it.
func TestMutexWakeupPriorityOrder(t *testing.T) {
	prev := SetHandoffMode(HandoffAlways)
	defer SetHandoffMode(prev)

	var m Mutex
	m.Acquire()
	order := make(chan int, 3)
	var threads []*Thread
	for _, pri := range []int{1, 3, 2} {
		pri := pri
		threads = append(threads, ForkPri(pri, func() {
			m.Acquire()
			order <- pri
			m.Release()
		}))
	}
	waitForWaiters(t, m.Waiters, 3)
	m.Release()
	for _, th := range threads {
		Join(th)
	}
	close(order)
	var got []int
	for p := range order {
		got = append(got, p)
	}
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wakeup order %v, want %v (priority desc)", got, want)
		}
	}
}

// TestConditionSignalPriorityOrder parks three waiters of distinct
// priorities on one condition and checks each Signal wakes the most urgent
// one remaining.
func TestConditionSignalPriorityOrder(t *testing.T) {
	prev := SetHandoffMode(HandoffOff) // no morphing: observe Signal's own pick
	defer SetHandoffMode(prev)

	var m Mutex
	var c Condition
	tickets := 0 // threads allowed to leave; guarded by m
	order := make(chan int, 3)
	var threads []*Thread
	for _, pri := range []int{2, 1, 3} {
		pri := pri
		threads = append(threads, ForkPri(pri, func() {
			m.Acquire()
			for tickets == 0 {
				c.Wait(&m)
			}
			tickets--
			order <- pri
			m.Release()
		}))
	}
	waitForWaiters(t, c.Waiters, 3)
	want := []int{3, 2, 1}
	for i := 0; i < 3; i++ {
		m.Acquire()
		tickets++
		m.Release()
		c.Signal()
		if got := <-order; got != want[i] {
			t.Fatalf("Signal #%d woke priority %d, want %d", i, got, want[i])
		}
		// A multi-unblock straggler re-parks (tickets is 0 again); wait for
		// the queue to settle before the next round.
		waitForWaiters(t, c.Waiters, 2-i)
	}
	for _, th := range threads {
		Join(th)
	}
}

// TestPriorityInheritanceBoostRestore is the PI contract on one mutex: a
// blocked high-priority Acquire boosts the low-priority holder's effective
// priority for the duration of the hold, and Release restores it.
func TestPriorityInheritanceBoostRestore(t *testing.T) {
	defer EnableStats(EnableStats(true))
	base := SnapshotStats()

	var m Mutex
	m.SetPriorityInheritance(true)
	defer m.SetPriorityInheritance(false)

	held := make(chan struct{})
	releaseIt := make(chan struct{})
	low := ForkPri(1, func() {
		m.Acquire()
		close(held)
		<-releaseIt
		m.Release()
	})
	<-held
	high := ForkPri(5, func() {
		m.Acquire()
		m.Release()
	})
	// The boost lands when high's slow path parks; poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for low.EffectivePriority() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("holder effective priority = %d, want boosted to 5", low.EffectivePriority())
		}
		time.Sleep(50 * time.Microsecond)
	}
	if got := low.Priority(); got != 1 {
		t.Fatalf("holder base priority changed to %d, want 1", got)
	}
	close(releaseIt)
	Join(low)
	Join(high)
	if got := low.EffectivePriority(); got != 1 {
		t.Fatalf("after Release, holder effective priority = %d, want restored to 1", got)
	}
	s := SnapshotStats()
	if s.PriBoost-base.PriBoost == 0 || s.PriRestore-base.PriRestore == 0 {
		t.Fatalf("boost/restore counters did not move: boosts %d, restores %d",
			s.PriBoost-base.PriBoost, s.PriRestore-base.PriRestore)
	}
}

// TestSetPriorityRaisesEffective checks SetPriority feeds the effective
// priority and that donations win over a lower base.
func TestSetPriorityRaisesEffective(t *testing.T) {
	done := make(chan struct{})
	th := Fork(func() { <-done })
	defer func() { close(done); Join(th) }()
	if th.Priority() != 0 || th.EffectivePriority() != 0 {
		t.Fatalf("fresh thread priority = %d/%d, want 0/0", th.Priority(), th.EffectivePriority())
	}
	th.SetPriority(4)
	if th.Priority() != 4 || th.EffectivePriority() != 4 {
		t.Fatalf("after SetPriority(4): %d/%d, want 4/4", th.Priority(), th.EffectivePriority())
	}
	th.SetPriority(2)
	if th.EffectivePriority() != 2 {
		t.Fatalf("lowering base: effective = %d, want 2", th.EffectivePriority())
	}
}

// TestPIDonationTableOverflow drops boosts past maxDonations without
// corrupting the restore path: after all mutexes release, the base
// priority is back, whatever was dropped.
func TestPIDonationTableOverflow(t *testing.T) {
	const n = maxDonations + 2
	var ms [n]Mutex
	for i := range ms {
		ms[i].SetPriorityInheritance(true)
	}
	hold := make(chan struct{})
	holder := ForkPri(1, func() {
		for i := range ms {
			ms[i].Acquire()
		}
		<-hold
		for i := range ms {
			ms[i].Release()
		}
	})
	time.Sleep(time.Millisecond) // let the holder take all gates
	var waiters []*Thread
	for i := range ms {
		i := i
		waiters = append(waiters, ForkPri(3+i, func() {
			ms[i].Acquire()
			ms[i].Release()
		}))
	}
	deadline := time.Now().Add(5 * time.Second)
	for holder.EffectivePriority() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("no donation landed; effective = %d", holder.EffectivePriority())
		}
		time.Sleep(50 * time.Microsecond)
	}
	close(hold)
	Join(holder)
	for _, w := range waiters {
		Join(w)
	}
	if got := holder.EffectivePriority(); got != 1 {
		t.Fatalf("after releasing everything, effective = %d, want base 1", got)
	}
}
