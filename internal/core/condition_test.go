package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitSignalBasic(t *testing.T) {
	var (
		m     Mutex
		c     Condition
		ready bool
	)
	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		m.Acquire()
		for !ready {
			c.Wait(&m)
		}
		m.Release()
	})
	time.Sleep(20 * time.Millisecond)
	m.Acquire()
	ready = true
	m.Release()
	c.Signal()
	waitDone(t, done, "waiter after Signal")
}

func TestWaitReleasesMutex(t *testing.T) {
	// The Enqueue action sets m' = NIL: while the waiter is blocked the
	// mutex must be acquirable by others.
	var (
		m Mutex
		c Condition
	)
	waiting := make(chan struct{})
	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		m.Acquire()
		close(waiting)
		c.Wait(&m)
		m.Release()
	})
	waitDone(t, waiting, "waiter to enter critical section")
	acquired := make(chan struct{})
	Fork(func() {
		m.Acquire()
		close(acquired)
		m.Release()
		c.Signal()
	})
	waitDone(t, acquired, "mutex to be released by Wait's Enqueue")
	waitDone(t, done, "waiter to resume")
}

func TestWaitReacquiresMutex(t *testing.T) {
	// The Resume action sets m' = SELF: on return from Wait the thread is
	// in a new critical section.
	var (
		m Mutex
		c Condition
	)
	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		m.Acquire()
		c.Wait(&m)
		if !m.Held() {
			t.Error("mutex not held on return from Wait")
		}
		m.Release()
	})
	time.Sleep(20 * time.Millisecond)
	for c.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Signal()
	waitDone(t, done, "waiter to return from Wait")
}

func TestSignalWithNoWaitersIsNoop(t *testing.T) {
	defer EnableStats(EnableStats(true))
	ResetStats()
	var c Condition
	for i := 0; i < 50; i++ {
		c.Signal()
		c.Broadcast()
	}
	s := SnapshotStats()
	if s.SignalFast != 50 || s.SignalNub != 0 {
		t.Fatalf("Signal with no waiters: fast=%d nub=%d", s.SignalFast, s.SignalNub)
	}
	if s.BcastFast != 50 || s.BcastNub != 0 {
		t.Fatalf("Broadcast with no waiters: fast=%d nub=%d", s.BcastFast, s.BcastNub)
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	const waiters = 10
	var (
		m    Mutex
		c    Condition
		gate bool
		wg   sync.WaitGroup
	)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		Fork(func() {
			defer wg.Done()
			m.Acquire()
			for !gate {
				c.Wait(&m)
			}
			m.Release()
		})
	}
	// Wait for all to block.
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters blocked", c.Waiters(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	m.Acquire()
	gate = true
	m.Release()
	c.Broadcast()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "all broadcast waiters")
}

// TestSignalWakesOneQueuedWaiter: with all waiters fully blocked (not
// racing), one Signal admits exactly one.
func TestSignalWakesOneQueuedWaiter(t *testing.T) {
	const waiters = 6
	var (
		m      Mutex
		c      Condition
		tokens int
		woken  int32
		wg     sync.WaitGroup
	)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		Fork(func() {
			defer wg.Done()
			m.Acquire()
			for tokens == 0 {
				c.Wait(&m)
			}
			tokens--
			atomic.AddInt32(&woken, 1)
			m.Release()
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters blocked", c.Waiters(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	// One token, one Signal: exactly one thread should get through.
	m.Acquire()
	tokens = 1
	m.Release()
	c.Signal()
	time.Sleep(100 * time.Millisecond)
	if n := atomic.LoadInt32(&woken); n != 1 {
		t.Fatalf("%d threads consumed tokens after one Signal with one token", n)
	}
	// Drain the rest.
	m.Acquire()
	tokens = waiters - 1
	m.Release()
	c.Broadcast()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "remaining waiters")
}

// TestProducerConsumer runs the canonical bounded-buffer monitor and checks
// that every item is delivered exactly once in order per producer.
func TestProducerConsumer(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
		capacity  = 8
	)
	var (
		m        Mutex
		nonEmpty Condition
		nonFull  Condition
		buf      []int
		got      = make(map[int]int)
		gotMu    sync.Mutex
		wg       sync.WaitGroup
	)
	produced := 0
	wg.Add(producers + consumers)
	for p := 0; p < producers; p++ {
		p := p
		Fork(func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				item := p*perProd + i
				m.Acquire()
				for len(buf) == capacity {
					nonFull.Wait(&m)
				}
				buf = append(buf, item)
				produced++
				m.Release()
				nonEmpty.Signal()
			}
		})
	}
	total := producers * perProd
	var consumed int32
	for cn := 0; cn < consumers; cn++ {
		Fork(func() {
			defer wg.Done()
			for {
				m.Acquire()
				for len(buf) == 0 {
					if int(atomic.LoadInt32(&consumed)) == total {
						m.Release()
						return
					}
					nonEmpty.Wait(&m)
				}
				item := buf[0]
				buf = buf[1:]
				n := atomic.AddInt32(&consumed, 1)
				m.Release()
				nonFull.Signal()
				gotMu.Lock()
				got[item]++
				gotMu.Unlock()
				if int(n) == total {
					// Wake peers blocked on nonEmpty so they can exit.
					nonEmpty.Broadcast()
					return
				}
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "producer-consumer completion")
	if len(got) != total {
		t.Fatalf("delivered %d distinct items, want %d", len(got), total)
	}
	for item, n := range got {
		if n != 1 {
			t.Fatalf("item %d delivered %d times", item, n)
		}
	}
}

// TestNoLostWakeup hammers the Enqueue window: a signaller that changes the
// predicate under the mutex and signals after releasing must never leave
// the waiter blocked forever. This is the wakeup-waiting race (E4); the
// eventcount in block() is what closes it.
func TestNoLostWakeup(t *testing.T) {
	for round := 0; round < 300; round++ {
		var (
			m     Mutex
			c     Condition
			ready bool
		)
		done := make(chan struct{})
		Fork(func() {
			defer close(done)
			m.Acquire()
			for !ready {
				c.Wait(&m)
			}
			m.Release()
		})
		Fork(func() {
			m.Acquire()
			ready = true
			m.Release()
			c.Signal()
		})
		waitDone(t, done, "waiter (possible lost wakeup)")
	}
}

// TestWaitIsAHint: a third thread may invalidate the predicate between
// Signal and the waiter's Resume, so the waiter must loop. This test
// verifies the program pattern works (and exercises the hint semantics); it
// cannot assert a spurious resume occurs, only that correctness survives.
func TestWaitIsAHint(t *testing.T) {
	var (
		m     Mutex
		c     Condition
		avail int
		taken int32
	)
	const items = 500
	var wg sync.WaitGroup
	// Two greedy consumers and one "thief" racing for each item.
	wg.Add(2)
	for k := 0; k < 2; k++ {
		Fork(func() {
			defer wg.Done()
			for int(atomic.LoadInt32(&taken)) < items {
				m.Acquire()
				for avail == 0 && int(atomic.LoadInt32(&taken)) < items {
					c.Wait(&m)
				}
				if avail > 0 {
					avail--
					atomic.AddInt32(&taken, 1)
				}
				m.Release()
			}
		})
	}
	for i := 0; i < items; i++ {
		m.Acquire()
		avail++
		m.Release()
		c.Signal()
		if i%7 == 0 {
			// Occasionally steal it back immediately, so waiters resume
			// to a false predicate and must Wait again.
			m.Acquire()
			if avail > 0 {
				avail--
				atomic.AddInt32(&taken, 1)
			}
			m.Release()
		}
	}
	// Flush any final waiters.
	for int(atomic.LoadInt32(&taken)) < items {
		c.Broadcast()
		time.Sleep(time.Millisecond)
	}
	c.Broadcast()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "hint-semantics consumers")
}

func TestWaitersAdvisoryCount(t *testing.T) {
	var (
		m Mutex
		c Condition
	)
	if c.Waiters() != 0 {
		t.Fatal("fresh condition reports waiters")
	}
	done := make(chan struct{})
	Fork(func() {
		defer close(done)
		m.Acquire()
		c.Wait(&m)
		m.Release()
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Waiters = %d, want 1", c.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
	c.Signal()
	waitDone(t, done, "single waiter")
}
