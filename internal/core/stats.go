package core

import "sync/atomic"

// Stats is a snapshot of the package's contention counters. The paper
// reports that the underlying implementation was reworked "to make it easy
// to collect statistics on contention" without any specification change;
// these counters are that facility. They also drive experiments E2 and E3:
// the fast-path hit rate and the multi-unblock behavior of Signal.
type Stats struct {
	AcquireFast uint64 // Acquire satisfied by the inline test-and-set
	AcquireNub  uint64 // Acquire entered the Nub subroutine
	AcquirePark uint64 // Acquire descheduled the caller
	ReleaseFast uint64 // Release found the queue empty
	ReleaseNub  uint64 // Release entered the Nub subroutine

	PFast uint64 // P satisfied inline
	PNub  uint64 // P entered the Nub
	PPark uint64 // P descheduled the caller
	VFast uint64 // V found the queue empty
	VNub  uint64 // V entered the Nub

	WaitCount   uint64 // Wait calls
	WaitElided  uint64 // Block returned without descheduling (eventcount advanced)
	WaitPark    uint64 // Block descheduled the caller
	SignalFast  uint64 // Signal with no committed waiters: no Nub call
	SignalNub   uint64 // Signal entered the Nub
	SignalWoke  uint64 // Signal dequeued and woke a thread
	SignalRepop uint64 // Signal re-popped after losing a claim race to Alert
	BcastFast   uint64 // Broadcast with no committed waiters
	BcastNub    uint64 // Broadcast entered the Nub
	BcastWoke   uint64 // threads woken by Broadcast

	Alerts        uint64 // Alert calls
	AlertWakes    uint64 // Alert woke a blocked alertable waiter
	AlertedWait   uint64 // AlertWait returned Alerted
	AlertedP      uint64 // AlertP returned Alerted
	TestAlertTrue uint64 // TestAlert returned true
}

// statsEnabled gates all counter updates; when false the counters cost one
// predictable branch on the fast paths.
var statsEnabled atomic.Bool

var stats struct {
	acquireFast, acquireNub, acquirePark atomic.Uint64
	releaseFast, releaseNub              atomic.Uint64
	pFast, pNub, pPark                   atomic.Uint64
	vFast, vNub                          atomic.Uint64
	waitCount, waitElided, waitPark      atomic.Uint64
	signalFast, signalNub                atomic.Uint64
	signalWoke, signalRepop              atomic.Uint64
	bcastFast, bcastNub, bcastWoke       atomic.Uint64
	alerts, alertWakes                   atomic.Uint64
	alertedWait, alertedP                atomic.Uint64
	testAlertTrue                        atomic.Uint64
}

// EnableStats turns contention statistics on or off and returns the
// previous setting.
func EnableStats(on bool) bool { return statsEnabled.Swap(on) }

// StatsEnabled reports whether statistics are being collected.
func StatsEnabled() bool { return statsEnabled.Load() }

func statAdd(c *atomic.Uint64, n uint64) {
	if statsEnabled.Load() {
		c.Add(n)
	}
}

func statInc(c *atomic.Uint64) { statAdd(c, 1) }

// SnapshotStats returns the current counter values.
func SnapshotStats() Stats {
	return Stats{
		AcquireFast: stats.acquireFast.Load(),
		AcquireNub:  stats.acquireNub.Load(),
		AcquirePark: stats.acquirePark.Load(),
		ReleaseFast: stats.releaseFast.Load(),
		ReleaseNub:  stats.releaseNub.Load(),
		PFast:       stats.pFast.Load(),
		PNub:        stats.pNub.Load(),
		PPark:       stats.pPark.Load(),
		VFast:       stats.vFast.Load(),
		VNub:        stats.vNub.Load(),
		WaitCount:   stats.waitCount.Load(),
		WaitElided:  stats.waitElided.Load(),
		WaitPark:    stats.waitPark.Load(),
		SignalFast:  stats.signalFast.Load(),
		SignalNub:   stats.signalNub.Load(),
		SignalWoke:  stats.signalWoke.Load(),
		SignalRepop: stats.signalRepop.Load(),
		BcastFast:   stats.bcastFast.Load(),
		BcastNub:    stats.bcastNub.Load(),
		BcastWoke:   stats.bcastWoke.Load(),

		Alerts:        stats.alerts.Load(),
		AlertWakes:    stats.alertWakes.Load(),
		AlertedWait:   stats.alertedWait.Load(),
		AlertedP:      stats.alertedP.Load(),
		TestAlertTrue: stats.testAlertTrue.Load(),
	}
}

// ResetStats zeroes all counters.
func ResetStats() {
	stats.acquireFast.Store(0)
	stats.acquireNub.Store(0)
	stats.acquirePark.Store(0)
	stats.releaseFast.Store(0)
	stats.releaseNub.Store(0)
	stats.pFast.Store(0)
	stats.pNub.Store(0)
	stats.pPark.Store(0)
	stats.vFast.Store(0)
	stats.vNub.Store(0)
	stats.waitCount.Store(0)
	stats.waitElided.Store(0)
	stats.waitPark.Store(0)
	stats.signalFast.Store(0)
	stats.signalNub.Store(0)
	stats.signalWoke.Store(0)
	stats.signalRepop.Store(0)
	stats.bcastFast.Store(0)
	stats.bcastNub.Store(0)
	stats.bcastWoke.Store(0)
	stats.alerts.Store(0)
	stats.alertWakes.Store(0)
	stats.alertedWait.Store(0)
	stats.alertedP.Store(0)
	stats.testAlertTrue.Store(0)
}
