package core

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Stats is a snapshot of the package's contention counters. The paper
// reports that the underlying implementation was reworked "to make it easy
// to collect statistics on contention" without any specification change;
// these counters are that facility. They also drive experiments E2 and E3:
// the fast-path hit rate and the multi-unblock behavior of Signal.
type Stats struct {
	AcquireFast    uint64 // Acquire satisfied by the inline test-and-set
	AcquireSpin    uint64 // Acquire satisfied during the bounded active spin
	AcquireNub     uint64 // Acquire entered the Nub subroutine
	AcquireBackout uint64 // Nub enqueue backed out (lock bit observed clear)
	AcquirePark    uint64 // Acquire descheduled the caller
	ReleaseFast    uint64 // Release found the queue empty
	ReleaseNub     uint64 // Release entered the Nub subroutine
	ReleaseHandoff uint64 // Release handed the mutex directly to a waiter

	PFast    uint64 // P satisfied inline
	PSpin    uint64 // P satisfied during the bounded active spin
	PNub     uint64 // P entered the Nub
	PBackout uint64 // Nub enqueue backed out (lock bit observed clear)
	PPark    uint64 // P descheduled the caller
	VFast    uint64 // V found the queue empty
	VNub     uint64 // V entered the Nub
	VHandoff uint64 // V handed the semaphore directly to a waiter

	WaitCount   uint64 // Wait calls
	WaitSpin    uint64 // Block satisfied during the bounded active spin
	WaitElided  uint64 // Block returned without descheduling (eventcount advanced)
	WaitPark    uint64 // Block descheduled the caller
	SignalFast  uint64 // Signal with no committed waiters: no Nub call
	SignalNub   uint64 // Signal entered the Nub
	SignalWoke  uint64 // Signal dequeued and woke a thread
	SignalMorph uint64 // Signal morphed a waiter onto the mutex queue instead of waking it
	SignalRepop uint64 // Signal re-popped after losing a claim race to Alert
	BcastFast   uint64 // Broadcast with no committed waiters
	BcastNub    uint64 // Broadcast entered the Nub
	BcastWoke   uint64 // threads woken by Broadcast

	Alerts        uint64 // Alert calls
	AlertWakes    uint64 // Alert woke a blocked alertable waiter
	AlertedWait   uint64 // AlertWait returned Alerted
	AlertedP      uint64 // AlertP returned Alerted
	TestAlertTrue uint64 // TestAlert returned true

	TimerArm    uint64 // deadline waits that armed a timer-wheel entry
	TimerFire   uint64 // wheel entries that fired (delivered an Alert)
	TimerCancel uint64 // wheel entries cancelled before firing
	TimerDrain  uint64 // stale timer alerts drained after a satisfied wait

	PriBoost   uint64 // effective-priority raises (inheritance donations, SetPriority up)
	PriRestore uint64 // effective-priority drops (donation removed, SetPriority down)
}

// statID names one counter; it indexes into a shard's counter block.
type statID int

const (
	statAcquireFast statID = iota
	statAcquireSpin
	statAcquireNub
	statAcquireBackout
	statAcquirePark
	statReleaseFast
	statReleaseNub
	statReleaseHandoff
	statPFast
	statPSpin
	statPNub
	statPBackout
	statPPark
	statVFast
	statVNub
	statVHandoff
	statWaitCount
	statWaitSpin
	statWaitElided
	statWaitPark
	statSignalFast
	statSignalNub
	statSignalWoke
	statSignalMorph
	statSignalRepop
	statBcastFast
	statBcastNub
	statBcastWoke
	statAlerts
	statAlertWakes
	statAlertedWait
	statAlertedP
	statTestAlertTrue
	statTimerArm
	statTimerFire
	statTimerCancel
	statTimerDrain
	statPriBoost
	statPriRestore
	numStats
)

const cacheLineSize = 64

// statShard is one padded block of counters. Its size is rounded up to a
// whole number of cache lines so counters in different shards never share
// a line: with a single global block, enabling statistics made every fast
// path bounce the same lines between processors.
type statShard struct {
	c [numStats]atomic.Uint64
	_ [(cacheLineSize - (numStats*8)%cacheLineSize) % cacheLineSize]byte
}

// statShards holds one counter block per processor's worth of parallelism.
// Sized (power of two) from GOMAXPROCS at init; a thread-identity hash
// picks the shard, so concurrent updaters usually touch distinct lines.
var (
	statShards    []statShard
	statShardMask uintptr
)

func init() {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	statShards = make([]statShard, n)
	statShardMask = uintptr(n - 1)
}

// statsEnabled gates all counter updates; when false the counters cost one
// predictable branch on the fast paths.
var statsEnabled atomic.Bool

// EnableStats turns contention statistics on or off and returns the
// previous setting.
func EnableStats(on bool) bool { return statsEnabled.Swap(on) }

// StatsEnabled reports whether statistics are being collected.
func StatsEnabled() bool { return statsEnabled.Load() }

// statShardIdx hashes the calling thread's identity to a shard index. The
// hot paths deliberately never compute SELF (recovering the goroutine id
// costs a runtime.Stack call), so the hash input is the next best
// per-thread value: the address of a stack variable. Goroutine stacks are
// distinct multi-kilobyte allocations, so folding the sub-page bits away
// spreads goroutines across shards while staying stable within one
// goroutine. Only the numeric value of the pointer is used.
func statShardIdx() uintptr {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return ((p >> 10) ^ (p >> 16)) & statShardMask
}

func statAdd(id statID, n uint64) {
	if statsEnabled.Load() {
		statShards[statShardIdx()].c[id].Add(n)
	}
}

func statInc(id statID) { statAdd(id, 1) }

// statIncT is statInc for call sites that already hold a Thread: the shard
// index hashes the thread id instead of re-deriving an identity.
func statIncT(t *Thread, id statID) {
	if statsEnabled.Load() {
		statShards[uintptr(t.id*0x9e3779b9)&statShardMask].c[id].Add(1)
	}
}

// SnapshotStats returns the current counter values, aggregated over all
// shards.
//
// The snapshot is atomic per counter but NOT across counters: each shard
// cell is read with an individual atomic load while updaters may be
// running, so a snapshot taken concurrently with work in flight can
// observe one side of a pairing without the other. Cross-counter
// invariants — SignalWoke <= SignalNub, AcquireFast+AcquireSpin+
// AcquireNub equal to the number of Acquire calls, AlertedWait+AlertedP
// <= AlertWakes+TestAlertTrue-adjusted alert deliveries, and so on — are
// therefore only meaningful when the snapshot is taken at quiescence
// (every worker joined, no call in flight). Tests and experiments that
// assert relationships between counters must quiesce first; a snapshot
// taken mid-run is suitable only for monotone progress monitoring of a
// single counter.
func SnapshotStats() Stats {
	var c [numStats]uint64
	for i := range statShards {
		for id := statID(0); id < numStats; id++ {
			c[id] += statShards[i].c[id].Load()
		}
	}
	return Stats{
		AcquireFast:    c[statAcquireFast],
		AcquireSpin:    c[statAcquireSpin],
		AcquireNub:     c[statAcquireNub],
		AcquireBackout: c[statAcquireBackout],
		AcquirePark:    c[statAcquirePark],
		ReleaseFast:    c[statReleaseFast],
		ReleaseNub:     c[statReleaseNub],
		ReleaseHandoff: c[statReleaseHandoff],
		PFast:          c[statPFast],
		PSpin:          c[statPSpin],
		PNub:           c[statPNub],
		PBackout:       c[statPBackout],
		PPark:          c[statPPark],
		VFast:          c[statVFast],
		VNub:           c[statVNub],
		VHandoff:       c[statVHandoff],
		WaitCount:      c[statWaitCount],
		WaitSpin:       c[statWaitSpin],
		WaitElided:     c[statWaitElided],
		WaitPark:       c[statWaitPark],
		SignalFast:     c[statSignalFast],
		SignalNub:      c[statSignalNub],
		SignalWoke:     c[statSignalWoke],
		SignalMorph:    c[statSignalMorph],
		SignalRepop:    c[statSignalRepop],
		BcastFast:      c[statBcastFast],
		BcastNub:       c[statBcastNub],
		BcastWoke:      c[statBcastWoke],
		Alerts:         c[statAlerts],
		AlertWakes:     c[statAlertWakes],
		AlertedWait:    c[statAlertedWait],
		AlertedP:       c[statAlertedP],
		TestAlertTrue:  c[statTestAlertTrue],
		TimerArm:       c[statTimerArm],
		TimerFire:      c[statTimerFire],
		TimerCancel:    c[statTimerCancel],
		TimerDrain:     c[statTimerDrain],
		PriBoost:       c[statPriBoost],
		PriRestore:     c[statPriRestore],
	}
}

// ResetStats zeroes all counters.
func ResetStats() {
	for i := range statShards {
		for id := statID(0); id < numStats; id++ {
			statShards[i].c[id].Store(0)
		}
	}
}
