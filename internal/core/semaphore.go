package core

// Semaphore is a binary semaphore with the traditional P and V operations.
// In the specification a Semaphore is (available, unavailable), INITIALLY
// available; the zero value of this type is available.
//
// Specification (SRC Report 20):
//
//	ATOMIC PROCEDURE P(VAR s: Semaphore)
//	  MODIFIES AT MOST [s]   WHEN s = available   ENSURES s' = unavailable
//
//	ATOMIC PROCEDURE V(VAR s: Semaphore)
//	  MODIFIES AT MOST [s]   ENSURES s' = available
//
// There is no notion of a thread "holding" a semaphore and no precondition
// on executing V, so calls of P and V need not be textually linked. The
// implementation is identical to Mutex — only the specification differs —
// and that identity is deliberate: client programs that rely only on the
// specified properties keep working if the implementations diverge.
//
// Semaphores are required for synchronizing with interrupt routines: an
// interrupt routine cannot protect shared data with a mutex (it might have
// preempted a thread inside a critical section protected by that mutex) and
// Wait/Signal require an associated mutex. Instead a thread waits for an
// interrupt-routine action by calling P, and the interrupt routine unblocks
// it by calling V; V never blocks, so it is safe in interrupt context.
type Semaphore struct {
	g gate
}

// P blocks until the semaphore is available and makes it unavailable.
func (s *Semaphore) P() {
	s.g.acquire(nil, &semGateStats, traceAcquireCtx(TraceP))
}

// TryP makes the semaphore unavailable if it is available and reports
// whether it did (extension, mirroring Mutex.TryAcquire).
func (s *Semaphore) TryP() bool {
	if !s.g.tryAcquire(traceAcquireCtx(TraceP)) {
		return false
	}
	statInc(statPFast)
	return true
}

// V makes the semaphore available and, if threads are blocked in P, makes
// one of them ready. V never blocks and may be called from any context,
// including the simulated interrupt routines in the examples.
func (s *Semaphore) V() {
	s.g.release(&semGateStats, traceAcquireCtx(TraceV))
}

// AlertP is P, except that it may return Alerted instead of acquiring.
//
// Specification:
//
//	ATOMIC PROCEDURE AlertP(VAR s: Semaphore) RAISES {Alerted}
//	  MODIFIES AT MOST [s, alerts]
//	  RETURNS WHEN s = available
//	    ENSURES (s' = unavailable) & UNCHANGED [alerts]
//	  RAISES Alerted WHEN SELF IN alerts
//	    ENSURES (alerts' = delete(alerts, SELF)) & UNCHANGED [s]
//
// The two WHEN clauses are not disjoint; when both are satisfied the
// implementation makes an arbitrary choice (the non-determinism discussed
// in the paper — the original specification required raising if possible,
// and was weakened to match the more efficient implementation).
func (s *Semaphore) AlertP() error { return s.alertP(Self()) }

// alertP is AlertP with SELF already recovered, so AlertPDeadline pays the
// identity lookup once per operation rather than once per layer.
func (s *Semaphore) alertP(t *Thread) error {
	var tc traceCtx
	if traceOn.Load() {
		tc = traceCtx{kind: TraceAlertPReturn, tid: t.id}
	}
	if s.g.alertableAcquire(t, &semGateStats, tc) {
		// The alerts-set deletion is the linearization point of the RAISES
		// case; consume the flag and stamp it under t's alertLock, which
		// serializes it against Alert's insertion.
		var obj uint64
		if tc.kind != TraceNone {
			obj = traceObjID(&s.g.traceID)
		}
		t.consumeAlertEmit(TraceAlertPRaise, obj, 0)
		statIncT(t, statAlertedP)
		return Alerted
	}
	return nil
}

// Available reports whether the semaphore is available (advisory).
func (s *Semaphore) Available() bool { return !s.g.locked() }

// Waiters returns the number of threads blocked in P (advisory).
func (s *Semaphore) Waiters() int { return s.g.waiters() }
