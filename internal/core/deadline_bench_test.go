package core

import (
	"testing"
	"time"
)

// The component costs behind the E18 (root bench_test.go) numbers: a
// deadline operation is SELF recovery + the inner alertable wait + one
// wheel arm/cancel round trip. These isolate the first and last terms so a
// regression in either is attributable.

func BenchmarkSelf(b *testing.B) {
	b.ReportAllocs()
	Self() // adopt once, outside the measured loop
	for i := 0; i < b.N; i++ {
		Self()
	}
}

func BenchmarkTimerArmCancel(b *testing.B) {
	b.ReportAllocs()
	t := Self()
	deadline := time.Now().Add(time.Hour)
	for i := 0; i < b.N; i++ {
		e := t.armDeadline(deadline)
		if e.cancelAndDrain() {
			b.Fatal("hour-out deadline fired")
		}
	}
}
