package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withHandoffMode runs the test with the hand-off policy pinned, restoring
// the previous policy afterwards. The policy is process-global, so tests
// using this helper must not run in parallel with other core tests that
// read it (none of them call t.Parallel).
func withHandoffMode(t *testing.T, m HandoffMode) {
	t.Helper()
	prev := SetHandoffMode(m)
	t.Cleanup(func() { SetHandoffMode(prev) })
}

// statsDelta runs fn with statistics enabled and returns the counter
// movement it caused. Counters are cumulative and process-global, so
// assertions go against the delta, never the snapshot.
func statsDelta(t *testing.T, fn func()) Stats {
	t.Helper()
	prev := EnableStats(true)
	t.Cleanup(func() { EnableStats(prev) })
	before := SnapshotStats()
	fn()
	after := SnapshotStats()
	return Stats{
		ReleaseFast:    after.ReleaseFast - before.ReleaseFast,
		ReleaseNub:     after.ReleaseNub - before.ReleaseNub,
		ReleaseHandoff: after.ReleaseHandoff - before.ReleaseHandoff,
		VFast:          after.VFast - before.VFast,
		VNub:           after.VNub - before.VNub,
		VHandoff:       after.VHandoff - before.VHandoff,
		AcquirePark:    after.AcquirePark - before.AcquirePark,
		PPark:          after.PPark - before.PPark,
		SignalWoke:     after.SignalWoke - before.SignalWoke,
		SignalMorph:    after.SignalMorph - before.SignalMorph,
	}
}

func TestHandoffModeRoundTrip(t *testing.T) {
	prev := SetHandoffMode(HandoffAlways)
	defer SetHandoffMode(prev)
	if got := SetHandoffMode(HandoffOff); got != HandoffAlways {
		t.Fatalf("SetHandoffMode returned %d, want HandoffAlways", got)
	}
	if got := CurrentHandoffMode(); got != HandoffOff {
		t.Fatalf("CurrentHandoffMode = %d, want HandoffOff", got)
	}
}

// yieldHeld deschedules the caller mid-critical-section every few
// iterations. On a single-P runtime goroutines otherwise run their whole
// loop without ever overlapping, and a contention test that never contends
// proves nothing: the yield forces other threads to arrive at a held gate
// and park, so the hand-off path genuinely runs.
func yieldHeld(i int) {
	if i%64 == 0 {
		runtime.Gosched()
	}
}

// TestHandoffAlwaysMutexExclusion hammers a mutex-protected non-atomic
// counter with every release handing off: the transfer path must preserve
// mutual exclusion exactly as clear-and-wake does, and with the queue never
// empty at release time the hand-off counter must actually move.
func TestHandoffAlwaysMutexExclusion(t *testing.T) {
	withHandoffMode(t, HandoffAlways)
	const (
		goroutines = 8
		iters      = 2000
	)
	var m Mutex
	var counter int // protected by m; non-atomic on purpose
	s := statsDelta(t, func() {
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer wg.Done()
				defer Detach()
				for i := 0; i < iters; i++ {
					m.Acquire()
					counter++
					yieldHeld(i)
					m.Release()
				}
			}()
		}
		wg.Wait()
	})
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d: hand-off broke mutual exclusion", counter, goroutines*iters)
	}
	if s.AcquirePark == 0 {
		t.Fatal("no parks: the workload never contended and the hand-off path never ran")
	}
	if s.ReleaseHandoff == 0 {
		t.Fatalf("%d parks but no hand-offs under HandoffAlways", s.AcquirePark)
	}
	t.Logf("releases: fast=%d nub=%d handoff=%d (parks=%d)",
		s.ReleaseFast, s.ReleaseNub, s.ReleaseHandoff, s.AcquirePark)
}

// TestHandoffAlwaysSemaphorePV is the semaphore variant: V's hand-off gifts
// the caller's token, so P/V pairs must still admit exactly one thread at a
// time to the critical section.
func TestHandoffAlwaysSemaphorePV(t *testing.T) {
	withHandoffMode(t, HandoffAlways)
	const (
		goroutines = 8
		iters      = 2000
	)
	var sem Semaphore
	var counter int // protected by sem
	s := statsDelta(t, func() {
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer wg.Done()
				defer Detach()
				for i := 0; i < iters; i++ {
					sem.P()
					counter++
					yieldHeld(i)
					sem.V()
				}
			}()
		}
		wg.Wait()
	})
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d: V hand-off broke the token discipline", counter, goroutines*iters)
	}
	if s.PPark == 0 {
		t.Fatal("no parks: the workload never contended and the hand-off path never ran")
	}
	if s.VHandoff == 0 {
		t.Fatalf("%d parks but no hand-offs under HandoffAlways", s.PPark)
	}
}

// TestHandoffOffNeverHandsOff pins the opt-out: under HandoffOff the same
// contended workload must resolve every release through the paper's
// clear-and-wake protocol.
func TestHandoffOffNeverHandsOff(t *testing.T) {
	withHandoffMode(t, HandoffOff)
	var m Mutex
	var counter int
	s := statsDelta(t, func() {
		var wg sync.WaitGroup
		wg.Add(4)
		for g := 0; g < 4; g++ {
			go func() {
				defer wg.Done()
				defer Detach()
				for i := 0; i < 1000; i++ {
					m.Acquire()
					counter++
					m.Release()
				}
			}()
		}
		wg.Wait()
	})
	if s.ReleaseHandoff != 0 {
		t.Fatalf("ReleaseHandoff = %d under HandoffOff, want 0", s.ReleaseHandoff)
	}
	if counter != 4000 {
		t.Fatalf("counter = %d, want 4000", counter)
	}
}

// TestHandoffAdaptiveStarvation pins the adaptive policy's trigger: a
// waiter parked longer than the starvation threshold receives the mutex
// directly on the next release. (The converse — a fresh waiter NOT being
// handed off — depends on sub-millisecond scheduling and is exercised
// statistically by the benchmarks, not asserted here.)
func TestHandoffAdaptiveStarvation(t *testing.T) {
	withHandoffMode(t, HandoffAdaptive)
	var m Mutex
	m.Acquire()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer Detach()
		m.Acquire()
		m.Release()
	}()
	for m.Waiters() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	// The waiter is on the queue; age it past handoffStarveNs.
	time.Sleep(3 * time.Millisecond)
	s := statsDelta(t, func() {
		m.Release()
		<-done
	})
	if s.ReleaseHandoff != 1 {
		t.Fatalf("ReleaseHandoff = %d releasing to a starved waiter, want 1", s.ReleaseHandoff)
	}
}

// TestHandoffAlwaysAlertP drives the alertable hand-off path: a thread
// blocked in AlertP receives the semaphore by transfer and must return
// normally (holding), not Alerted.
func TestHandoffAlwaysAlertP(t *testing.T) {
	withHandoffMode(t, HandoffAlways)
	var sem Semaphore
	sem.P()
	got := make(chan error, 1)
	th := Fork(func() {
		err := sem.AlertP()
		got <- err
		if err == nil {
			sem.V()
		}
	})
	for sem.Waiters() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	s := statsDelta(t, func() {
		sem.V()
		if err := <-got; err != nil {
			t.Errorf("AlertP = %v after V hand-off, want nil", err)
		}
		Join(th) // quiesce before the snapshot
	})
	if s.VHandoff != 1 {
		t.Fatalf("VHandoff = %d, want 1", s.VHandoff)
	}
}

// TestHandoffAlertBeatsTransfer pins the claim race: a waiter Alert claims
// while it sits on the queue must not be chosen for a hand-off — the
// release skips it (its wakeup belongs to the alert) and, with no other
// waiter, falls back to an ordinary release.
func TestHandoffAlertBeatsTransfer(t *testing.T) {
	withHandoffMode(t, HandoffAlways)
	var sem Semaphore
	sem.P()
	got := make(chan error, 1)
	th := Fork(func() {
		got <- sem.AlertP()
	})
	for sem.Waiters() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	Alert(th)
	if err := <-got; err != Alerted {
		t.Fatalf("AlertP = %v after Alert, want Alerted", err)
	}
	s := statsDelta(t, func() { sem.V() })
	Join(th)
	if s.VHandoff != 0 {
		t.Fatalf("VHandoff = %d releasing past an alerted waiter, want 0", s.VHandoff)
	}
	if !sem.Available() {
		t.Fatal("semaphore unavailable after V with no eligible waiter")
	}
}

// TestSignalMorph pins wait morphing: with the signaller holding the mutex,
// Signal moves the waiter onto the mutex queue instead of waking it, and
// only the subsequent Release lets it run.
func TestSignalMorph(t *testing.T) {
	withHandoffMode(t, HandoffAlways)
	var (
		m     Mutex
		c     Condition
		ready bool // protected by m
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer Detach()
		m.Acquire()
		for !ready {
			c.Wait(&m)
		}
		m.Release()
	}()
	for c.Waiters() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	var morphed int
	s := statsDelta(t, func() {
		m.Acquire()
		ready = true
		c.Signal()
		// The morphed waiter is now queued on m, not runnable: it must not
		// have been woken, and the mutex queue must show it.
		morphed = m.Waiters()
		m.Release()
		<-done
	})
	if s.SignalMorph != 1 {
		t.Fatalf("SignalMorph = %d, want 1 (woke=%d)", s.SignalMorph, s.SignalWoke)
	}
	if s.SignalWoke != 0 {
		t.Fatalf("SignalWoke = %d alongside a morph, want 0", s.SignalWoke)
	}
	if morphed != 1 {
		t.Fatalf("mutex queue length after morphing Signal = %d, want 1", morphed)
	}
}

// TestSignalMorphBacksOutWhenMutexFree pins the stranded-waiter guard: a
// Signal issued without holding the mutex must not park the waiter on a
// queue no Release is obliged to service — the morph backs out and the
// waiter is woken the ordinary way.
func TestSignalMorphBacksOutWhenMutexFree(t *testing.T) {
	withHandoffMode(t, HandoffAlways)
	var (
		m     Mutex
		c     Condition
		ready atomic.Bool
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer Detach()
		m.Acquire()
		for !ready.Load() {
			c.Wait(&m)
		}
		m.Release()
	}()
	for c.Waiters() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	ready.Store(true)
	s := statsDelta(t, func() {
		c.Signal() // mutex free: no holder to morph behind
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("waiter never resumed: morph stranded it on a free mutex's queue")
		}
	})
	if s.SignalMorph != 0 {
		t.Fatalf("SignalMorph = %d with the mutex free, want 0", s.SignalMorph)
	}
	if s.SignalWoke != 1 {
		t.Fatalf("SignalWoke = %d, want 1", s.SignalWoke)
	}
}

// TestHandoffTracedMutexStampOrder is TestTraceStampMutexOrder under
// HandoffAlways: the two-CAS transfer draws its stamps inside certified CAS
// windows, so the collected stream sorted by stamp must still be a legal
// alternation — a pre-drawn or post-drawn stamp inverts here under load.
func TestHandoffTracedMutexStampOrder(t *testing.T) {
	withHandoffMode(t, HandoffAlways)
	const (
		goroutines = 8
		iters      = 5000
	)
	StartTracing(1 << 18)
	defer StopTracing()
	var m Mutex
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			defer Detach()
			for i := 0; i < iters; i++ {
				m.Acquire()
				yieldHeld(i)
				m.Release()
			}
		}()
	}
	wg.Wait()
	shards, dropped := CollectTrace()
	if dropped > 0 {
		t.Fatalf("rings overflowed: %d dropped", dropped)
	}
	if n := replayGateTrace(t, shards); n != goroutines*iters*2 {
		t.Fatalf("replayed %d events, want %d", n, goroutines*iters*2)
	}
}

// TestHandoffTracedSemaphoreStampOrder is the semaphore variant; concurrent
// V's contend on the release CAS, so both the demotion path (second CAS
// loses) and the V-while-available guard get exercised.
func TestHandoffTracedSemaphoreStampOrder(t *testing.T) {
	withHandoffMode(t, HandoffAlways)
	const (
		goroutines = 8
		iters      = 5000
	)
	StartTracing(1 << 18)
	defer StopTracing()
	var s Semaphore
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			defer Detach()
			for i := 0; i < iters; i++ {
				s.P()
				yieldHeld(i)
				s.V()
			}
		}()
	}
	wg.Wait()
	shards, dropped := CollectTrace()
	if dropped > 0 {
		t.Fatalf("rings overflowed: %d dropped", dropped)
	}
	if n := replayGateTrace(t, shards); n != goroutines*iters*2 {
		t.Fatalf("replayed %d events, want %d", n, goroutines*iters*2)
	}
}
