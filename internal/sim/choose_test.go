package sim

import (
	"testing"
)

// TestChooseControlsInterleaving: with Choose set, the external decision
// function sees every point where more than one thread could run, gets
// the candidates in ascending thread-ID order, and its choice determines
// the interleaving exactly.
func TestChooseControlsInterleaving(t *testing.T) {
	run := func(pickLast bool) (order []string, decisions int) {
		k := NewKernel(Config{
			Procs: 2,
			Choose: func(prev *T, cands []*T) int {
				decisions++
				for i := 1; i < len(cands); i++ {
					if cands[i-1].id >= cands[i].id {
						t.Fatalf("candidates not in ascending ID order: %v", cands)
					}
				}
				if pickLast {
					return len(cands) - 1
				}
				return 0
			},
		})
		var w Word
		for _, name := range []string{"a", "b"} {
			name := name
			k.Spawn(name, func(e *Env) {
				for i := 0; i < 3; i++ {
					e.Load(&w)
					order = append(order, name)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order, decisions
	}

	first, d1 := run(false)
	last, d2 := run(true)
	if d1 == 0 || d2 == 0 {
		t.Fatal("Choose was never consulted")
	}
	// Always picking candidate 0 runs thread a to completion first; always
	// picking the highest index runs b first.
	want1 := []string{"a", "a", "a", "b", "b", "b"}
	want2 := []string{"b", "b", "b", "a", "a", "a"}
	if !eqStrings(first, want1) {
		t.Errorf("pick-first order = %v, want %v", first, want1)
	}
	if !eqStrings(last, want2) {
		t.Errorf("pick-last order = %v, want %v", last, want2)
	}
}

// TestChooseSeesPrev: prev is nil at the first decision and afterwards is
// the thread that executed the previous instruction.
func TestChooseSeesPrev(t *testing.T) {
	var prevs []string
	k := NewKernel(Config{
		Procs: 2,
		Choose: func(prev *T, cands []*T) int {
			if prev == nil {
				prevs = append(prevs, "<nil>")
			} else {
				prevs = append(prevs, prev.Name())
			}
			return 0
		},
	})
	var w Word
	for _, name := range []string{"a", "b"} {
		k.Spawn(name, func(e *Env) {
			e.Load(&w)
			e.Load(&w)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(prevs) == 0 || prevs[0] != "<nil>" {
		t.Fatalf("first decision saw prev %v, want <nil>", prevs)
	}
	for _, p := range prevs[1:] {
		if p != "a" && p != "b" {
			t.Errorf("prev = %q, want a thread name", p)
		}
	}
}

// TestChoosePanicsOnBadIndex: an out-of-range index is a harness bug and
// must fail loudly, not corrupt the schedule.
func TestChoosePanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range Choose index")
		}
	}()
	k := NewKernel(Config{
		Procs:  2,
		Choose: func(prev *T, cands []*T) int { return len(cands) },
	})
	var w Word
	for _, name := range []string{"a", "b"} {
		k.Spawn(name, func(e *Env) { e.Load(&w); e.Load(&w) })
	}
	_ = k.Run()
}

// TestTASAwaitBlocksUntilClear: TASAwait acquires a clear word like TAS,
// blocks instead of spinning while it is set, and wakes when the holder
// stores zero — so a TASAwait-based lock cannot livelock and its waiters
// make no progress (and burn no steps) while blocked.
func TestTASAwaitBlocksUntilClear(t *testing.T) {
	k := NewKernel(Config{Procs: 2, MaxSteps: 10_000})
	var lock Word
	var order []string
	hold := func(name string) func(*Env) {
		return func(e *Env) {
			e.TASAwait(&lock)
			order = append(order, name+"+")
			e.Work(3)
			order = append(order, name+"-")
			e.Store(&lock, 0)
		}
	}
	k.Spawn("a", hold("a"))
	k.Spawn("b", hold("b"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order = %v, want 4 entries", order)
	}
	// Whoever entered first must leave before the other enters: the
	// critical sections may not interleave.
	if order[0][0] != order[1][0] || order[2][0] != order[3][0] {
		t.Fatalf("critical sections interleaved: %v", order)
	}
}

// TestTASAwaitWakesOnAdd: a decrement that brings the word to zero (the
// Release fast path uses Add) also wakes awaiters.
func TestTASAwaitWakesOnAdd(t *testing.T) {
	// Pin the schedule so the holder takes the lock first: candidate 0 is
	// always the lowest-ID (first-spawned) thread.
	k := NewKernel(Config{
		Procs:    2,
		MaxSteps: 10_000,
		Choose:   func(prev *T, cands []*T) int { return 0 },
	})
	var lock Word
	done := false
	k.Spawn("holder", func(e *Env) {
		if e.TAS(&lock) != 0 {
			t.Error("initial TAS should win")
		}
		e.Work(5)
		e.Add(&lock, ^uint64(0)) // 1 + (-1) = 0: must wake the awaiter
	})
	k.Spawn("waiter", func(e *Env) {
		e.TASAwait(&lock)
		done = true
		e.Store(&lock, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("awaiter never acquired the word")
	}
}

// TestTASAwaitNoThinAirWakeup: a waiter that lost a wakeup race re-blocks
// cleanly, and deregistered waiters are not woken by later clears.
func TestTASAwaitManyWaiters(t *testing.T) {
	k := NewKernel(Config{Procs: 4, MaxSteps: 100_000})
	var lock Word
	var acquired int
	for _, name := range []string{"a", "b", "c", "d"} {
		k.Spawn(name, func(e *Env) {
			for i := 0; i < 3; i++ {
				e.TASAwait(&lock)
				acquired++
				e.Work(2)
				e.Store(&lock, 0)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if acquired != 12 {
		t.Fatalf("acquired %d times, want 12", acquired)
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
