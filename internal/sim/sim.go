// Package sim is a deterministic multiprocessor simulator standing in for
// the Firefly workstation the paper's implementation ran on.
//
// The Firefly is a symmetric multiprocessor: several processors addressing
// one shared memory, with an atomic test-and-set instruction, on which the
// Taos Nub runs a ready pool, a priority-based scheduling algorithm and a
// time-slicing algorithm (SRC Report 20, §Implementation). The simulator
// provides exactly those facilities:
//
//   - P simulated processors executing simulated threads;
//   - shared memory Words with Load, Store and test-and-set, each costing a
//     configurable number of instructions (the MicroVAX II profile makes an
//     uncontended Acquire-Release pair cost 5 instructions / 10 µs, the
//     paper's figure);
//   - a ready pool ordered by priority with FIFO tie-break, time slicing
//     with a configurable quantum, and voluntary descheduling — the
//     substrate internal/simthreads builds the synchronization Nub on;
//   - a scheduling policy that is either time-faithful (least-clock-first,
//     for performance experiments) or adversarially random (for race
//     exploration), both driven by a seed so every run is reproducible.
//
// Execution is interleaving-based: threads run as coroutines that yield to
// the kernel at every shared-memory access, so exactly one thread executes
// between yield points and a run is a deterministic function of (program,
// config, seed). Local computation between accesses is free unless the
// thread declares it with Work(n); this matches the usual operational model
// for shared-memory algorithms, where only the shared accesses order.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"threads/internal/queue"
)

// Policy selects how the kernel chooses the next processor to advance.
type Policy int

const (
	// PolicyLeastClock advances the processor with the smallest local
	// clock (random tie-break). This approximates true parallel execution:
	// the makespan of a run is the maximum processor clock.
	PolicyLeastClock Policy = iota
	// PolicyRandom advances a uniformly random runnable processor. Clocks
	// still advance, but the interleaving is adversarial; use it to hunt
	// races across seeds.
	PolicyRandom
)

// Config parameterizes a Kernel.
type Config struct {
	// Procs is the number of processors (default 1; the Firefly of the
	// paper had several MicroVAX II processors — the benchmarks use 5).
	Procs int
	// Quantum is the time-slice length in cost units; 0 disables
	// time slicing.
	Quantum uint64
	// Seed drives all scheduling randomness; runs with equal
	// (program, Config) are identical.
	Seed int64
	// Policy selects the scheduling policy (default PolicyLeastClock).
	Policy Policy
	// Cost is the instruction-cost profile (default MicroVAXII if zero).
	Cost CostProfile
	// MaxSteps aborts the run after this many instructions (0 = no
	// limit). A livelocked program (for example a spin lock whose holder
	// was preempted forever) hits this instead of hanging the test.
	MaxSteps uint64
	// Trace, if non-nil, receives every Event the run produces.
	Trace func(Event)
	// Choose, if non-nil, replaces Policy entirely with an external
	// scheduling decision: whenever more than one thread could execute its
	// next instruction, the kernel calls Choose with the thread that
	// executed the previous instruction (nil before the first) and the
	// runnable candidates in ascending thread-ID order, and advances the
	// candidate whose index Choose returns. Every shared-memory access is
	// a yield point, so Choose sees — and controls — every interleaving
	// decision of the run; internal/explore drives it to enumerate
	// schedule spaces. With Choose set the Seed is never consulted.
	Choose func(prev *T, cands []*T) int
	// OnStep, if non-nil, receives the footprint of every executed step
	// (the access the thread had declared, with Sched forced true when the
	// step's window woke or created a thread or changed a priority). The
	// explorer accumulates these into per-edge footprints for its
	// partial-order reduction.
	OnStep func(t *T, fp Footprint)
}

// CostProfile gives the instruction cost of each simulated operation.
type CostProfile struct {
	Load  uint64 // read a shared word
	Store uint64 // write a shared word
	TAS   uint64 // test-and-set a shared word
	Unit  uint64 // one unit of Work(n)
	// MicrosPerInstr converts instruction counts to microseconds in
	// reports (MicroVAX II: an Acquire-Release pair is 5 instructions and
	// 10 µs, so 2 µs per instruction).
	MicrosPerInstr float64
}

// MicroVAXII is the cost profile calibrated to the paper's numbers.
func MicroVAXII() CostProfile {
	return CostProfile{Load: 1, Store: 1, TAS: 1, Unit: 1, MicrosPerInstr: 2}
}

func (c CostProfile) orDefault() CostProfile {
	if c.Load == 0 && c.Store == 0 && c.TAS == 0 && c.Unit == 0 {
		return MicroVAXII()
	}
	return c
}

// Errors returned by Run.
var (
	// ErrStepLimit reports that MaxSteps was exhausted.
	ErrStepLimit = errors.New("sim: step limit exceeded")
)

// DeadlockError reports that no thread could run: every live thread was
// descheduled and nothing remained to wake one.
type DeadlockError struct {
	// Blocked lists the descheduled threads and their block reasons.
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return "sim: deadlock: all live threads blocked: " + strings.Join(e.Blocked, "; ")
}

// threadState is the lifecycle of a simulated thread.
type threadState int

const (
	stateReady threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

// T is a simulated thread.
type T struct {
	id   int
	name string
	k    *Kernel

	state       threadState
	proc        int // processor index while running
	item        *queue.PItem[*T]
	grant       chan struct{}
	env         Env
	fn          func(*Env)
	instret     uint64 // instructions executed by this thread
	pendingOp   opKind
	pendingCost uint64
	blockReason string
	wakePending bool // MakeReady arrived before the Deschedule
	preemptible bool
	// fp is the footprint of the access declared at the last yield point —
	// exactly what the thread will execute when next granted. resumeFP is
	// installed as fp when an opBlock is processed, so a woken thread's
	// next step is labelled with the scope its blocking site declared.
	fp       Footprint
	resumeFP Footprint
	// obs is the thread's observation hash: every value its shared reads
	// returned, folded in order (see obsMix).
	obs uint64
	// stepSched is set when the current window wakes/creates a thread or
	// changes a priority; the kernel folds it into the step's footprint.
	stepSched bool
}

// ID returns the thread's kernel-unique id.
func (t *T) ID() int { return t.id }

// Name returns the thread's name.
func (t *T) Name() string { return t.name }

// String implements fmt.Stringer.
func (t *T) String() string { return t.name }

// Instret returns the number of instructions the thread has executed.
func (t *T) Instret() uint64 { return t.instret }

// Priority returns the thread's current scheduling priority.
func (t *T) Priority() int { return int(t.item.Priority) }

type opKind int

const (
	opNone opKind = iota
	opInstr
	opBlock
	opExit
)

type proc struct {
	id          int
	cur         *T
	clock       uint64
	busy        uint64 // cycles actually executing (clock minus idle catch-ups)
	quantumLeft uint64
}

// simAbort unwinds a thread goroutine when the kernel stops early.
type simAbort struct{}

// Kernel owns the simulated machine: processors, threads, ready pool,
// clocks and the scheduling loop.
type Kernel struct {
	cfg     Config
	cost    CostProfile
	rng     *rand.Rand
	procs   []*proc
	threads []*T
	ready   *queue.PriorityQueue[*T]
	yield   chan *T
	stop    chan struct{}
	wg      sync.WaitGroup
	steps   uint64
	lastEvt uint64 // clock of the most recent instruction, for idle procs
	seq     uint64
	stopped bool
	// lastRun is the thread that executed the previous instruction; the
	// Choose hook uses it to tell voluntary switches from preemptions.
	lastRun *T
	// awaiting maps a Word to the threads blocked in TASAwait on it.
	awaiting map[*Word][]*T
	// watchers maps a Word to the threads blocked in AwaitChange on it.
	watchers map[*Word][]*watcher
	// words and wordIDs register every shared word in first-access order;
	// wordScope carries the emission-scope masks (see footprint.go).
	words     []*Word
	wordIDs   map[*Word]uint32
	wordScope map[*Word]uint64
	digesters []func(*Hash128)
	aborted   bool
}

// NewKernel builds a machine from cfg.
func NewKernel(cfg Config) *Kernel {
	if cfg.Procs <= 0 {
		cfg.Procs = 1
	}
	k := &Kernel{
		cfg:   cfg,
		cost:  cfg.Cost.orDefault(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		ready: queue.NewPriorityQueue[*T](),
		yield: make(chan *T),
		stop:  make(chan struct{}),
	}
	for i := 0; i < cfg.Procs; i++ {
		k.procs = append(k.procs, &proc{id: i})
	}
	return k
}

// Spawn creates a thread at priority 0 that will run fn. It may be called
// before Run or from inside running thread code (the Nub's thread
// creation); the thread enters the ready pool immediately.
func (k *Kernel) Spawn(name string, fn func(*Env)) *T {
	return k.SpawnPri(name, 0, fn)
}

// SpawnPri is Spawn with an explicit priority (larger = more urgent).
func (k *Kernel) SpawnPri(name string, pri int, fn func(*Env)) *T {
	t := &T{
		id:          len(k.threads),
		name:        name,
		k:           k,
		grant:       make(chan struct{}),
		fn:          fn,
		preemptible: true,
	}
	if t.name == "" {
		t.name = fmt.Sprintf("t%d", t.id)
	}
	t.env = Env{t: t, k: k}
	t.item = queue.NewPItem(t, queue.Priority(pri))
	k.threads = append(k.threads, t)
	k.ready.Push(t.item)
	k.wg.Add(1)
	go t.main()
	return t
}

func (t *T) main() {
	defer t.k.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(simAbort); ok {
				return // kernel stopped the run; unwind quietly
			}
			panic(r)
		}
	}()
	// Wait for the first grant, which starts execution.
	select {
	case <-t.grant:
	case <-t.k.stop:
		panic(simAbort{})
	}
	t.fn(&t.env)
	t.pendingOp = opExit
	select {
	case t.k.yield <- t:
	case <-t.k.stop:
		panic(simAbort{})
	}
}

// Run executes the machine until every thread is done. It returns nil on
// normal completion, a *DeadlockError if live threads remain but none can
// run, or ErrStepLimit. Run may be called once per Kernel.
func (k *Kernel) Run() error {
	defer func() {
		if !k.stopped {
			k.stopped = true
			close(k.stop)
		}
		k.wg.Wait()
	}()
	for {
		// Assign ready threads to idle processors. An idle processor's
		// clock catches up to the event that made work available.
		for _, p := range k.procs {
			if p.cur != nil {
				continue
			}
			it := k.ready.Pop()
			if it == nil {
				break
			}
			t := it.Value
			t.state = stateRunning
			t.proc = p.id
			if p.clock < k.lastEvt {
				p.clock = k.lastEvt
			}
			p.quantumLeft = k.cfg.Quantum
			p.cur = t
		}
		// Collect runnable processors.
		var cand []*proc
		for _, p := range k.procs {
			if p.cur != nil {
				cand = append(cand, p)
			}
		}
		if len(cand) == 0 {
			live := k.blockedThreads()
			if len(live) == 0 {
				return nil // all threads done
			}
			return &DeadlockError{Blocked: live}
		}
		p := k.pick(cand)
		if k.aborted {
			// A Choose/OnStep hook cut the run short (state-cache prune).
			return ErrAborted
		}
		t := p.cur
		k.lastRun = t
		// The access executing in this step is the one t declared at its
		// last yield; save it before the window overwrites t.fp with the
		// next declaration.
		exec := t.fp

		// Let the thread run from its current yield point to the next.
		// Only granted threads send on k.yield and none is running now,
		// so the handshake cannot mix threads up.
		t.grant <- struct{}{}
		got := <-k.yield
		if got != t {
			panic(fmt.Sprintf("sim: yield from %s while %s was running", got, t))
		}

		if k.cfg.OnStep != nil {
			exec.Sched = exec.Sched || t.stepSched
			k.cfg.OnStep(t, exec)
		}
		t.stepSched = false

		switch t.pendingOp {
		case opExit:
			t.state = stateDone
			p.cur = nil
		case opBlock:
			// Whether the block sticks or a pending wakeup consumes it,
			// the next granted step is the resume window.
			t.fp = t.resumeFP
			if t.fp.Kind == AccessNone {
				t.fp.Kind = AccessResume
			}
			t.resumeFP = Footprint{}
			if t.wakePending {
				// A wakeup raced ahead of the deschedule; consume it
				// and keep running (the sleep/wakeup discipline of the
				// Nub).
				t.wakePending = false
				continue
			}
			t.state = stateBlocked
			p.cur = nil
		case opInstr:
			cost := t.pendingCost
			p.clock += cost
			p.busy += cost
			t.instret += cost
			k.steps += cost
			if p.clock > k.lastEvt {
				k.lastEvt = p.clock
			}
			if k.cfg.MaxSteps > 0 && k.steps > k.cfg.MaxSteps {
				return ErrStepLimit
			}
			// Time slicing: at quantum expiry a preemptible thread goes
			// back to the ready pool if anyone is waiting to run.
			if k.cfg.Quantum > 0 && t.preemptible {
				if cost >= p.quantumLeft {
					p.quantumLeft = 0
				} else {
					p.quantumLeft -= cost
				}
				if p.quantumLeft == 0 && !k.ready.Empty() {
					t.state = stateReady
					k.ready.Push(t.item)
					p.cur = nil
				}
			}
		default:
			panic("sim: thread yielded with no pending operation")
		}
	}
}

func (k *Kernel) pick(cand []*proc) *proc {
	if len(cand) == 1 {
		return cand[0]
	}
	if k.cfg.Choose != nil {
		// Canonical order: ascending thread ID, so a decision index means
		// the same thread on every run with the same prefix of choices.
		sort.Slice(cand, func(i, j int) bool { return cand[i].cur.id < cand[j].cur.id })
		ts := make([]*T, len(cand))
		for i, p := range cand {
			ts[i] = p.cur
		}
		i := k.cfg.Choose(k.lastRun, ts)
		if i < 0 || i >= len(cand) {
			panic(fmt.Sprintf("sim: Choose returned index %d with %d candidates", i, len(cand)))
		}
		return cand[i]
	}
	if k.cfg.Policy == PolicyRandom {
		return cand[k.rng.Intn(len(cand))]
	}
	// Least clock first, random tie-break.
	min := cand[0].clock
	for _, p := range cand[1:] {
		if p.clock < min {
			min = p.clock
		}
	}
	var tied []*proc
	for _, p := range cand {
		if p.clock == min {
			tied = append(tied, p)
		}
	}
	return tied[k.rng.Intn(len(tied))]
}

func (k *Kernel) blockedThreads() []string {
	var out []string
	for _, t := range k.threads {
		if t.state == stateBlocked {
			out = append(out, fmt.Sprintf("%s (%s)", t.name, t.blockReason))
		}
	}
	sort.Strings(out)
	return out
}

// Steps returns the number of instruction units executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Makespan returns the maximum processor clock — the parallel running time
// of the run in cost units.
func (k *Kernel) Makespan() uint64 {
	var m uint64
	for _, p := range k.procs {
		if p.clock > m {
			m = p.clock
		}
	}
	return m
}

// MakespanMicros converts Makespan to microseconds via the cost profile.
func (k *Kernel) MakespanMicros() float64 {
	return float64(k.Makespan()) * k.cost.MicrosPerInstr
}

// Threads returns all threads ever spawned on this kernel.
func (k *Kernel) Threads() []*T { return k.threads }

// Utilization returns, per processor, the fraction of the makespan it spent
// executing instructions (as opposed to idling with no assigned thread).
func (k *Kernel) Utilization() []float64 {
	span := k.Makespan()
	out := make([]float64, len(k.procs))
	if span == 0 {
		return out
	}
	for i, p := range k.procs {
		out[i] = float64(p.busy) / float64(span)
	}
	return out
}
