package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestSingleThreadRuns(t *testing.T) {
	k := NewKernel(Config{})
	ran := false
	k.Spawn("solo", func(e *Env) {
		e.Work(3)
		ran = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("thread body did not run")
	}
	if k.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", k.Steps())
	}
}

func TestLoadStoreTAS(t *testing.T) {
	k := NewKernel(Config{})
	var w Word
	var got [3]uint64
	k.Spawn("t", func(e *Env) {
		e.Store(&w, 7)
		got[0] = e.Load(&w)
		got[1] = e.TAS(&w) // returns old (7), sets 1
		got[2] = e.Load(&w)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != [3]uint64{7, 7, 1} {
		t.Fatalf("got %v, want [7 7 1]", got)
	}
	if w.Peek() != 1 {
		t.Fatalf("final word = %d, want 1", w.Peek())
	}
}

func TestTASIsAtomicUnderInterleaving(t *testing.T) {
	// Two threads race TAS on the same word; exactly one may win,
	// regardless of seed.
	for seed := int64(0); seed < 50; seed++ {
		k := NewKernel(Config{Procs: 2, Seed: seed, Policy: PolicyRandom})
		var lock Word
		wins := 0
		for i := 0; i < 2; i++ {
			k.Spawn("", func(e *Env) {
				if e.TAS(&lock) == 0 {
					wins++
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if wins != 1 {
			t.Fatalf("seed %d: %d TAS winners, want exactly 1", seed, wins)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		k := NewKernel(Config{Procs: 3, Seed: seed, Policy: PolicyRandom})
		var order []int
		var w Word
		for i := 0; i < 5; i++ {
			i := i
			k.Spawn("", func(e *Env) {
				e.TAS(&w)
				order = append(order, i)
				e.Work(uint64(i + 1))
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := run(42)
	b := run(42)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("runs recorded %d and %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
	// A different seed should (for this program) produce some different
	// interleaving at least once across a few tries.
	diff := false
	for seed := int64(43); seed < 53 && !diff; seed++ {
		c := run(seed)
		for i := range a {
			if c[i] != a[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Log("note: 10 different seeds produced identical schedules (possible but unlikely)")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel(Config{})
	k.Spawn("sleeper", func(e *Env) {
		e.Deschedule("waiting for godot")
	})
	err := k.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "sleeper (waiting for godot)" {
		t.Fatalf("blocked report = %v", de.Blocked)
	}
}

func TestDescheduleMakeReady(t *testing.T) {
	k := NewKernel(Config{Procs: 2})
	var sleeper *T
	sequence := ""
	sleeper = k.Spawn("sleeper", func(e *Env) {
		sequence += "a"
		e.Deschedule("nap")
		sequence += "c"
	})
	k.Spawn("waker", func(e *Env) {
		// Burn enough instructions that the sleeper has blocked.
		e.Work(10)
		sequence += "b"
		e.MakeReady(sleeper)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sequence != "abc" {
		t.Fatalf("sequence = %q, want abc", sequence)
	}
}

func TestWakeupBeforeDescheduleIsNotLost(t *testing.T) {
	// MakeReady before the target's Deschedule must leave a pending wake.
	for seed := int64(0); seed < 20; seed++ {
		k := NewKernel(Config{Procs: 2, Seed: seed, Policy: PolicyRandom})
		var target *T
		target = k.Spawn("target", func(e *Env) {
			e.Work(5)
			e.Deschedule("race window")
		})
		k.Spawn("waker", func(e *Env) {
			e.MakeReady(target) // may arrive before or after the block
		})
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v (wakeup lost)", seed, err)
		}
	}
}

func TestForkFromThread(t *testing.T) {
	k := NewKernel(Config{Procs: 2})
	total := 0
	k.Spawn("parent", func(e *Env) {
		for i := 0; i < 3; i++ {
			e.Fork("child", func(e *Env) {
				e.Work(1)
				total++
			})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("children ran %d times, want 3", total)
	}
}

func TestInstructionAccounting(t *testing.T) {
	k := NewKernel(Config{})
	var w Word
	var before, after uint64
	k.Spawn("t", func(e *Env) {
		e.Work(10)
		before = e.Instret()
		e.TAS(&w)      // 1
		e.Store(&w, 0) // 1
		e.Load(&w)     // 1
		after = e.Instret()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if after-before != 3 {
		t.Fatalf("instruction delta = %d, want 3", after-before)
	}
}

func TestStepLimit(t *testing.T) {
	k := NewKernel(Config{MaxSteps: 100})
	k.Spawn("spinner", func(e *Env) {
		var w Word
		for {
			e.TAS(&w) // never terminates on its own
		}
	})
	if err := k.Run(); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("Run = %v, want ErrStepLimit", err)
	}
}

func TestTimeSlicingPreempts(t *testing.T) {
	// One processor, two compute-bound threads: without time slicing the
	// first runs to completion; with a quantum they interleave.
	k := NewKernel(Config{Procs: 1, Quantum: 5})
	var order []string
	spin := func(name string) func(*Env) {
		return func(e *Env) {
			for i := 0; i < 4; i++ {
				e.Work(3)
				order = append(order, name)
			}
		}
	}
	k.Spawn("A", spin("A"))
	k.Spawn("B", spin("B"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// With quantum 5 and 3-unit slices, A cannot emit all four marks
	// before B emits one.
	sawBBeforeAEnd := false
	aCount := 0
	for _, s := range order {
		if s == "A" {
			aCount++
		}
		if s == "B" && aCount < 4 {
			sawBBeforeAEnd = true
		}
	}
	if !sawBBeforeAEnd {
		t.Fatalf("no interleaving under time slicing: %v", order)
	}
}

func TestNonPreemptibleSection(t *testing.T) {
	k := NewKernel(Config{Procs: 1, Quantum: 2})
	var order []string
	k.Spawn("A", func(e *Env) {
		e.SetPreemptible(false)
		for i := 0; i < 5; i++ {
			e.Work(1)
			order = append(order, "A")
		}
		e.SetPreemptible(true)
	})
	k.Spawn("B", func(e *Env) {
		e.Work(1)
		order = append(order, "B")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// A spawned first and non-preemptible: all its marks precede B's.
	for i, s := range order {
		if s == "B" && i != len(order)-1 {
			t.Fatalf("non-preemptible thread was preempted: %v", order)
		}
	}
}

func TestPriorityScheduling(t *testing.T) {
	// One processor; the high-priority thread, spawned last, should still
	// be picked from the ready pool before the low-priority ones.
	k := NewKernel(Config{Procs: 1})
	var order []string
	body := func(name string) func(*Env) {
		return func(e *Env) {
			e.Work(1)
			order = append(order, name)
		}
	}
	k.SpawnPri("low1", 1, body("low1"))
	k.SpawnPri("low2", 1, body("low2"))
	k.SpawnPri("high", 9, body("high"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// low1 occupies the processor first (it was assigned when the only
	// candidate), but high must run before low2.
	posHigh, posLow2 := -1, -1
	for i, s := range order {
		switch s {
		case "high":
			posHigh = i
		case "low2":
			posLow2 = i
		}
	}
	if posHigh == -1 || posLow2 == -1 || posHigh > posLow2 {
		t.Fatalf("priority not respected: %v", order)
	}
}

func TestMakespanParallelism(t *testing.T) {
	// Two independent 100-unit threads: on one processor the makespan is
	// ~200, on two it is ~100.
	measure := func(procs int) uint64 {
		k := NewKernel(Config{Procs: procs})
		for i := 0; i < 2; i++ {
			k.Spawn("", func(e *Env) { e.Work(100) })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Makespan()
	}
	m1, m2 := measure(1), measure(2)
	if m1 != 200 {
		t.Fatalf("1-proc makespan = %d, want 200", m1)
	}
	if m2 != 100 {
		t.Fatalf("2-proc makespan = %d, want 100", m2)
	}
}

func TestEmitTrace(t *testing.T) {
	var events []Event
	k := NewKernel(Config{Trace: func(ev Event) { events = append(events, ev) }})
	k.Spawn("t", func(e *Env) {
		e.Work(2)
		e.Emit("first")
		e.Work(3)
		e.Emit("second")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("traced %d events, want 2", len(events))
	}
	if events[0].Payload != "first" || events[1].Payload != "second" {
		t.Fatalf("payloads wrong: %+v", events)
	}
	if events[0].Seq >= events[1].Seq {
		t.Fatal("event sequence numbers not increasing")
	}
	if events[0].Clock != 2 || events[1].Clock != 5 {
		t.Fatalf("event clocks = %d,%d want 2,5", events[0].Clock, events[1].Clock)
	}
}

func TestSpinLockOnSimulator(t *testing.T) {
	// The primitive pattern the Nub uses: mutual exclusion via TAS spin
	// lock, checked across seeds and processor counts.
	for seed := int64(0); seed < 10; seed++ {
		k := NewKernel(Config{Procs: 4, Seed: seed, Policy: PolicyRandom, MaxSteps: 1_000_000})
		var lock, counter Word
		for i := 0; i < 4; i++ {
			k.Spawn("", func(e *Env) {
				for n := 0; n < 50; n++ {
					for e.TAS(&lock) != 0 {
					}
					v := e.Load(&counter)
					e.Store(&counter, v+1)
					e.Store(&lock, 0)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if counter.Peek() != 200 {
			t.Fatalf("seed %d: counter = %d, want 200 (TAS not atomic?)", seed, counter.Peek())
		}
	}
}

func TestUtilization(t *testing.T) {
	// One busy thread on two processors: the second processor idles.
	k := NewKernel(Config{Procs: 2})
	k.Spawn("busy", func(e *Env) { e.Work(100) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	u := k.Utilization()
	if u[0] != 1.0 {
		t.Fatalf("proc 0 utilization = %v, want 1.0", u[0])
	}
	if u[1] != 0.0 {
		t.Fatalf("proc 1 utilization = %v, want 0.0", u[1])
	}
	// Two equal threads on two processors: both fully busy.
	k2 := NewKernel(Config{Procs: 2})
	for i := 0; i < 2; i++ {
		k2.Spawn("", func(e *Env) { e.Work(100) })
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range k2.Utilization() {
		if v != 1.0 {
			t.Fatalf("proc %d utilization = %v, want 1.0", i, v)
		}
	}
}

// TestEnvAccessors covers the small observational API surface.
func TestEnvAccessors(t *testing.T) {
	k := NewKernel(Config{Procs: 2})
	var w Word
	w.Poke(9)
	if w.Peek() != 9 {
		t.Fatal("Poke/Peek round trip failed")
	}
	var self *T
	var nowAfter, instret uint64
	var added uint64
	spawned := k.SpawnPri("parent", 3, func(e *Env) {
		self = e.Self()
		e.Work(4)
		added = e.Add(&w, 1) // 9 + 1
		nowAfter = e.Now()
		instret = e.Instret()
		e.SetPriority(5)
		e.ForkPri("kid", 1, func(e *Env) { e.Work(1) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if self != spawned {
		t.Fatal("Self did not return the spawned thread")
	}
	if spawned.ID() != 0 || spawned.Name() != "parent" || spawned.String() != "parent" {
		t.Fatalf("identity accessors wrong: %d %q", spawned.ID(), spawned.Name())
	}
	if added != 10 || w.Peek() != 10 {
		t.Fatalf("Add = %d, word = %d", added, w.Peek())
	}
	if nowAfter != 5 || instret != 5 || spawned.Instret() != 5 {
		t.Fatalf("clock accounting: now=%d instret=%d thread=%d, want 5 each",
			nowAfter, instret, spawned.Instret())
	}
	if len(k.Threads()) != 2 {
		t.Fatalf("Threads() = %d, want 2", len(k.Threads()))
	}
	if got := k.MakespanMicros(); got != float64(k.Makespan())*2 {
		t.Fatalf("MakespanMicros = %v with makespan %d", got, k.Makespan())
	}
}

// TestDeadlockErrorMessage covers the error rendering.
func TestDeadlockErrorMessage(t *testing.T) {
	k := NewKernel(Config{})
	k.Spawn("a", func(e *Env) { e.Deschedule("x") })
	k.Spawn("b", func(e *Env) { e.Deschedule("y") })
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock")
	}
	msg := err.Error()
	for _, frag := range []string{"deadlock", "a (x)", "b (y)"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("error %q missing %q", msg, frag)
		}
	}
}

// TestCostProfileDefaulting: a zero profile defaults to MicroVAX II; a
// custom one is preserved.
func TestCostProfileDefaulting(t *testing.T) {
	k := NewKernel(Config{})
	var w Word
	k.Spawn("t", func(e *Env) { e.Load(&w) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Steps() != 1 {
		t.Fatalf("default Load cost = %d, want 1", k.Steps())
	}
	k2 := NewKernel(Config{Cost: CostProfile{Load: 3, Store: 1, TAS: 1, Unit: 1, MicrosPerInstr: 1}})
	k2.Spawn("t", func(e *Env) { e.Load(&w) })
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if k2.Steps() != 3 {
		t.Fatalf("custom Load cost = %d, want 3", k2.Steps())
	}
}
