package sim

import (
	"errors"
	"math/bits"
	"sort"
)

// This file gives the simulator the two introspection surfaces the schedule
// explorer's optimisations need (internal/explore):
//
//   - step footprints: before every yield point a thread declares which
//     shared Word its next instruction touches and how (read/write), plus a
//     conservative "scheduling" bit for steps whose atomic window may mutate
//     scheduler state (ready pool, wakeups, thread flags). The explorer's
//     partial-order reduction derives an independence relation from these.
//   - state fingerprints: a 128-bit hash of the canonical machine state
//     (threads, registered words, await/watch sets, plus client-registered
//     digesters for state the kernel cannot see) taken at decision points.
//     The explorer's state cache prunes subtrees whose fingerprint was
//     already explored with at least as much preemption budget.
//
// Soundness of the footprint story rests on a discipline the simthreads
// layer keeps (documented in DESIGN.md): every mutation of scheduler-visible
// state that happens *inside* an atomic window — MakeReady, thread-queue and
// thread-state updates — occurs either under the Nub spin lock (entered via
// TASAwait, or running non-preemptible) or in a resume window whose scope
// the blocking site declared via DescheduleScope. Declared footprints
// therefore over-approximate window effects: any step that could touch
// scheduler state carries Sched=true or a Scope covering the objects whose
// events its window may emit.

// AccessKind classifies the shared-memory access a step declared.
type AccessKind uint8

const (
	// AccessNone is a step with no shared access (Work, thread start).
	AccessNone AccessKind = iota
	// AccessRead reads the declared word(s).
	AccessRead
	// AccessWrite reads and/or writes the declared word.
	AccessWrite
	// AccessResume is the window a thread runs right after waking from a
	// block: it has no declared word access of its own, but may complete a
	// protocol (e.g. emit a stashed hand-off event) within the scope its
	// blocking site declared.
	AccessResume
)

// Footprint is the declared effect of one scheduling step: the access the
// thread will execute when next granted, plus conservative bits for
// everything else its atomic window may do.
type Footprint struct {
	// Words holds the IDs of the declared shared words (0 = unused slot).
	// Single-word accesses use Words[0]; AwaitChange declares up to two.
	Words [2]uint32
	// Kind classifies the access.
	Kind AccessKind
	// Sched marks steps whose window may mutate scheduler state (wake a
	// thread, push/pop thread queues): TASAwait steps and any step declared
	// while non-preemptible (i.e. inside a Nub critical section).
	Sched bool
	// Scope is the emission-scope mask of the touched words: a bitmask of
	// the spec-level objects whose trace events may be emitted from this
	// step's window (see Kernel.SetWordScope). Two steps with intersecting
	// scopes may emit events the conformance checker orders, so the
	// explorer must not commute them.
	Scope uint64
}

// PendingFootprint returns the footprint of the access the thread declared
// at its last yield point — what it will execute when next granted. This
// is the candidate's "next step" signature the explorer's partial-order
// reduction compares at decision points.
func (t *T) PendingFootprint() Footprint { return t.fp }

// ErrAborted is returned by Run when Kernel.Abort cut the run short (the
// explorer's state cache does this when it recognises an already-explored
// state). An aborted run's trace is a prefix of a full run's trace.
var ErrAborted = errors.New("sim: run aborted")

// Abort makes Run return ErrAborted before granting the next step. Safe to
// call from inside a Choose or OnStep hook.
func (k *Kernel) Abort() { k.aborted = true }

// wordID returns w's stable ID, assigning the next free one on first use.
// IDs are assigned in first-declared-access order, which is deterministic
// for a fixed program along a fixed schedule prefix — the only place the
// explorer compares them.
func (k *Kernel) wordID(w *Word) uint32 {
	if id, ok := k.wordIDs[w]; ok {
		return id
	}
	if k.wordIDs == nil {
		k.wordIDs = make(map[*Word]uint32)
	}
	k.words = append(k.words, w)
	id := uint32(len(k.words)) // IDs start at 1; 0 means "no word"
	k.wordIDs[w] = id
	return id
}

// SetWordScope associates an emission-scope mask with w: the set of
// spec-level objects whose trace events can be emitted from an atomic
// window that accesses w. simthreads registers a bit per gate/condition
// (see World scope registration); words never named in emissions keep
// scope 0. Accessing a word never registered is fine — its scope is 0.
func (k *Kernel) SetWordScope(w *Word, scope uint64) {
	if k.wordScope == nil {
		k.wordScope = make(map[*Word]uint64)
	}
	k.wordScope[w] = scope
	k.wordID(w) // register now so fingerprints include it from the start
}

// AddDigester registers fn to be called by Fingerprint so layers above the
// kernel (thread queues, per-thread Nub state) can fold their state into
// the hash. Digesters must write a deterministic function of that state.
func (k *Kernel) AddDigester(fn func(*Hash128)) {
	k.digesters = append(k.digesters, fn)
}

// Fingerprint hashes the canonical machine state: every thread's lifecycle
// state, scheduling flags, observation history and declared next access;
// every registered word's value; the await and watch sets; and whatever
// the registered digesters contribute. Two runs of the same program that
// reach equal fingerprints at decision points are (up to hash collision)
// in identical states: thread code position and locals are determined by
// the observation history, because thread functions are deterministic
// functions of the values their shared reads returned.
func (k *Kernel) Fingerprint() (uint64, uint64) {
	h := NewHash128()
	h.Add(uint64(len(k.threads)))
	for _, t := range k.threads {
		h.Add(uint64(t.state)<<32 | uint64(uint32(t.item.Priority)))
		var flags uint64
		if t.preemptible {
			flags |= 1
		}
		if t.wakePending {
			flags |= 2
		}
		if t.fp.Sched {
			flags |= 4
		}
		flags |= uint64(t.fp.Kind) << 8
		h.Add(flags)
		h.Add(uint64(t.fp.Words[0])<<32 | uint64(t.fp.Words[1]))
		h.Add(t.fp.Scope)
		h.Add(t.instret)
		h.Add(t.obs)
	}
	h.Add(0x9e3779b97f4a7c15) // section separator
	for _, w := range k.words {
		h.Add(w.v)
	}
	k.hashWaitMaps(&h)
	if k.lastRun != nil {
		h.Add(uint64(k.lastRun.id) + 1)
	} else {
		h.Add(0)
	}
	for _, fn := range k.digesters {
		fn(&h)
	}
	return h.Hi, h.Lo
}

// hashWaitMaps folds the awaiting and watcher registrations into h in
// word-ID order (map iteration order must not leak into the hash).
func (k *Kernel) hashWaitMaps(h *Hash128) {
	if len(k.awaiting) > 0 {
		ids := make([]int, 0, len(k.awaiting))
		byID := make(map[int]*Word, len(k.awaiting))
		for w := range k.awaiting {
			id := int(k.wordID(w))
			ids = append(ids, id)
			byID[id] = w
		}
		sort.Ints(ids)
		for _, id := range ids {
			h.Add(uint64(id) | 1<<40)
			for _, t := range k.awaiting[byID[id]] {
				h.Add(uint64(t.id))
			}
		}
	}
	if len(k.watchers) > 0 {
		ids := make([]int, 0, len(k.watchers))
		byID := make(map[int]*Word, len(k.watchers))
		for w := range k.watchers {
			id := int(k.wordID(w))
			ids = append(ids, id)
			byID[id] = w
		}
		sort.Ints(ids)
		for _, id := range ids {
			h.Add(uint64(id) | 1<<41)
			for _, wr := range k.watchers[byID[id]] {
				h.Add(uint64(wr.t.id))
			}
		}
	}
}

// Hash128 is an incremental 128-bit FNV-1a-style hash over 64-bit values
// (the standard FNV-128 prime and offset basis, absorbed a word at a time
// rather than a byte at a time — fingerprints hash whole machine words and
// only equality matters). It must be stable across processes: the state
// cache persists fingerprints to disk between nightly runs.
type Hash128 struct {
	Hi, Lo uint64
}

// FNV-128 offset basis and prime (2^88 + 2^8 + 0x3b).
const (
	fnvBasisHi = 0x6c62272e07bb0142
	fnvBasisLo = 0x62b821756295c58d
	fnvPrimeHi = 1 << 24
	fnvPrimeLo = 0x13b
)

// NewHash128 returns a hash initialized to the FNV-128 offset basis.
func NewHash128() Hash128 {
	return Hash128{Hi: fnvBasisHi, Lo: fnvBasisLo}
}

// Add absorbs one 64-bit value.
func (h *Hash128) Add(x uint64) {
	h.Lo ^= x
	// Multiply (Hi,Lo) by the FNV-128 prime modulo 2^128.
	hi, lo := bits.Mul64(h.Lo, fnvPrimeLo)
	hi += h.Hi*fnvPrimeLo + h.Lo*fnvPrimeHi
	h.Hi, h.Lo = hi, lo
}

// obsMix folds a value read from shared memory into a thread's observation
// hash (FNV-1a 64). The sequence of values a thread has read determines
// its control flow and locals, so this hash stands in for "program counter
// plus registers" in state fingerprints.
func obsMix(h, v uint64) uint64 {
	if h == 0 {
		h = 0xcbf29ce484222325
	}
	return (h ^ v) * 0x100000001b3
}
