package sim

import "threads/internal/queue"

// Word is a cell of simulated shared memory. All access goes through an
// Env, which charges instruction costs and yields to the kernel so the
// access is an interleaving point. The zero value is a Word containing 0.
type Word struct {
	v uint64
}

// Peek reads the word without simulating an access. For assertions and
// reporting after Run returns; simulated threads must use Env.Load.
func (w *Word) Peek() uint64 { return w.v }

// Poke writes the word without simulating an access (test setup only).
func (w *Word) Poke(v uint64) { w.v = v }

// Env is a simulated thread's view of the machine: its instruction set
// (shared-memory access, local work) and its system calls (fork,
// deschedule, wake, priority control). An Env is valid only inside the
// thread function it was passed to.
type Env struct {
	t *T
	k *Kernel
}

// yieldPoint parks the thread until the kernel grants it the next
// instruction, then lets it proceed to execute that instruction. The
// footprint fp declares what that instruction will touch (footprint.go);
// it is what the Choose hook sees as the candidate's next step.
func (e *Env) yieldPoint(op opKind, cost uint64, fp Footprint) {
	t := e.t
	t.pendingOp = op
	t.pendingCost = cost
	t.fp = fp
	select {
	case t.k.yield <- t:
	case <-t.k.stop:
		panic(simAbort{})
	}
	select {
	case <-t.grant:
	case <-t.k.stop:
		panic(simAbort{})
	}
}

// declare builds the footprint for an access to w: its word ID, scope
// mask, and a Sched bit whenever the thread runs non-preemptible (the Nub
// critical sections — whose windows may wake threads and mutate thread
// queues — run non-preemptible, so this conservatively marks every step
// with hidden scheduler effects).
func (e *Env) declare(w *Word, kind AccessKind) Footprint {
	return Footprint{
		Words: [2]uint32{e.k.wordID(w), 0},
		Kind:  kind,
		Sched: !e.t.preemptible,
		Scope: e.k.wordScope[w],
	}
}

// Load reads a shared word (one Load-cost instruction).
func (e *Env) Load(w *Word) uint64 {
	e.yieldPoint(opInstr, e.k.cost.Load, e.declare(w, AccessRead))
	e.t.obs = obsMix(e.t.obs, w.v)
	return w.v
}

// Store writes a shared word (one Store-cost instruction).
func (e *Env) Store(w *Word, v uint64) {
	e.yieldPoint(opInstr, e.k.cost.Store, e.declare(w, AccessWrite))
	w.v = v
	if v == 0 {
		e.wakeAwaiters(w)
	}
	e.notifyWatchers(w)
}

// TAS is the hardware test-and-set: atomically sets the word to 1 and
// returns its previous value. The atomicity of the Threads primitives is
// ultimately ensured by the atomicity of this instruction.
func (e *Env) TAS(w *Word) uint64 {
	e.yieldPoint(opInstr, e.k.cost.TAS, e.declare(w, AccessWrite))
	old := w.v
	w.v = 1
	e.t.obs = obsMix(e.t.obs, old)
	e.notifyWatchers(w)
	return old
}

// Add atomically adds d to the word and returns the new value (an
// interlocked instruction; the VAX family provided several).
func (e *Env) Add(w *Word, d uint64) uint64 {
	e.yieldPoint(opInstr, e.k.cost.Store, e.declare(w, AccessWrite))
	w.v += d
	if w.v == 0 {
		e.wakeAwaiters(w)
	}
	e.notifyWatchers(w)
	e.t.obs = obsMix(e.t.obs, w.v)
	return w.v
}

// TASAwait is TAS that blocks instead of busy-waiting: if the word is set,
// the calling thread deschedules until some thread stores (or adds) zero to
// it, then retries. Semantically it is the WHEN-guarded atomic action a
// test-and-set spin loop implements — the thread makes no progress and
// touches nothing until the word clears — but because the waiting is
// blocking rather than spinning, a controlled scheduler (Config.Choose)
// sees a finite decision tree instead of an unbounded spin. Instruction
// accounting differs from an explicit spin loop (the retries are not
// charged), so performance experiments should keep the spin.
func (e *Env) TASAwait(w *Word) {
	// TASAwait steps always carry Sched=true: a successful acquisition of
	// the Nub lock opens a critical section whose windows mutate scheduler
	// state, and the explorer must never commute two of them.
	fp := e.declare(w, AccessWrite)
	fp.Sched = true
	for {
		e.yieldPoint(opInstr, e.k.cost.TAS, fp)
		if w.v == 0 {
			w.v = 1
			e.t.obs = obsMix(e.t.obs, 0)
			return
		}
		e.t.obs = obsMix(e.t.obs, w.v)
		if e.k.awaiting == nil {
			e.k.awaiting = make(map[*Word][]*T)
		}
		e.k.awaiting[w] = append(e.k.awaiting[w], e.t)
		e.t.blockReason = "awaiting word clear"
		e.t.resumeFP = fp
		e.yieldPoint(opBlock, 0, fp)
		e.t.blockReason = ""
		// Deregister in case the deschedule was consumed by a pending
		// wakeup that arrived for another reason; a stale registration
		// would later wake us out of thin air.
		e.unawait(w)
	}
}

// WordVal pairs a word with the value the caller last observed in it, for
// AwaitChange.
type WordVal struct {
	W   *Word
	Old uint64
}

// AwaitChange blocks until any of the listed words holds a value different
// from its paired Old, then returns. If some word already differs it
// returns immediately (the check and the registration are one atomic
// step, so no change can slip between them). Like TASAwait, it is the
// blocking form of a busy-wait — semantically the schedules it admits are
// the spin loop's minus the unfair ones where the spinner is scheduled
// forever without the awaited write ever landing — and exists so that
// algorithms that spin on shared words (Peterson's entry protocol, for
// example) have a finite decision tree under a controlled scheduler.
// Callers must re-check their predicate after it returns and loop.
func (e *Env) AwaitChange(wv ...WordVal) {
	fp := Footprint{Kind: AccessRead, Sched: !e.t.preemptible}
	for i, p := range wv {
		if i < len(fp.Words) {
			fp.Words[i] = e.k.wordID(p.W)
		} else {
			// More words than footprint slots: go conservative.
			fp.Scope = ^uint64(0)
		}
		fp.Scope |= e.k.wordScope[p.W]
	}
	for {
		e.yieldPoint(opInstr, e.k.cost.Load*uint64(len(wv)), fp)
		for _, p := range wv {
			if p.W.v != p.Old {
				e.t.obs = obsMix(e.t.obs, p.W.v)
				return
			}
		}
		if e.k.watchers == nil {
			e.k.watchers = make(map[*Word][]*watcher)
		}
		wr := &watcher{t: e.t, wv: wv}
		for _, p := range wv {
			e.k.watchers[p.W] = append(e.k.watchers[p.W], wr)
		}
		e.t.blockReason = "awaiting word change"
		e.t.resumeFP = fp
		e.yieldPoint(opBlock, 0, fp)
		e.t.blockReason = ""
		e.unwatch(wr)
	}
}

// watcher is one AwaitChange registration.
type watcher struct {
	t  *T
	wv []WordVal
}

// notifyWatchers wakes every AwaitChange watcher of w whose predicate now
// holds (some watched word changed from its recorded value).
func (e *Env) notifyWatchers(w *Word) {
	ws := e.k.watchers[w]
	if len(ws) == 0 {
		return
	}
	var woken []*watcher
	for _, wr := range ws {
		for _, p := range wr.wv {
			if p.W.v != p.Old {
				woken = append(woken, wr)
				break
			}
		}
	}
	for _, wr := range woken {
		e.unwatch(wr)
		e.MakeReady(wr.t)
	}
}

// unwatch removes wr from every watch list it is registered on.
func (e *Env) unwatch(wr *watcher) {
	for _, p := range wr.wv {
		ws := e.k.watchers[p.W]
		for i, x := range ws {
			if x == wr {
				e.k.watchers[p.W] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(e.k.watchers[p.W]) == 0 {
			delete(e.k.watchers, p.W)
		}
	}
}

// wakeAwaiters readies every thread blocked in TASAwait on w.
func (e *Env) wakeAwaiters(w *Word) {
	ts := e.k.awaiting[w]
	if len(ts) == 0 {
		return
	}
	delete(e.k.awaiting, w)
	for _, t := range ts {
		e.MakeReady(t)
	}
}

// unawait removes the calling thread from w's await list if still present.
func (e *Env) unawait(w *Word) {
	ts := e.k.awaiting[w]
	for i, t := range ts {
		if t == e.t {
			e.k.awaiting[w] = append(ts[:i], ts[i+1:]...)
			return
		}
	}
}

// Work charges n units of local computation without touching shared
// memory. It models the instructions between shared accesses (register
// moves, branches, call overhead) so instruction counts can be calibrated.
func (e *Env) Work(n uint64) {
	if n == 0 {
		return
	}
	e.yieldPoint(opInstr, n*e.k.cost.Unit, Footprint{Kind: AccessNone, Sched: !e.t.preemptible})
}

// Fork creates a new simulated thread at priority 0. The paper's interface
// creates "a virtually unlimited number of threads"; the kernel places the
// new thread in the ready pool and runs it when a processor is free.
func (e *Env) Fork(name string, fn func(*Env)) *T {
	e.t.stepSched = true
	return e.k.Spawn(name, fn)
}

// ForkPri is Fork with an explicit priority.
func (e *Env) ForkPri(name string, pri int, fn func(*Env)) *T {
	e.t.stepSched = true
	return e.k.SpawnPri(name, pri, fn)
}

// Deschedule removes the calling thread from its processor until another
// thread calls MakeReady on it. If a MakeReady raced ahead, Deschedule
// consumes it and returns immediately (the sleep/wakeup discipline). The
// reason string appears in deadlock reports.
func (e *Env) Deschedule(reason string) {
	e.DescheduleScope(reason, 0)
}

// DescheduleScope is Deschedule with a declared emission scope for the
// resume window: if the code that runs after the wakeup may emit trace
// events naming some object (a hand-off completion, an alert raise), the
// blocking site passes that object's scope mask so the explorer treats the
// resume step as conflicting with other steps on the same object.
func (e *Env) DescheduleScope(reason string, scope uint64) {
	e.t.blockReason = reason
	e.t.resumeFP = Footprint{Kind: AccessResume, Scope: scope}
	e.yieldPoint(opBlock, 0, Footprint{Kind: AccessNone})
	e.t.blockReason = ""
}

// MakeReady moves t to the ready pool if it is descheduled, or records a
// pending wakeup if it has not descheduled yet. Calling it on a ready,
// running or finished thread with no deschedule in flight leaves a pending
// wakeup that its next Deschedule will consume.
func (e *Env) MakeReady(t *T) {
	e.t.stepSched = true
	if t.state == stateBlocked {
		t.state = stateReady
		t.wakePending = false
		e.k.ready.Push(t.item)
		return
	}
	if t.state != stateDone {
		t.wakePending = true
	}
}

// SetPreemptible controls whether the time-slicer may preempt the calling
// thread at quantum expiry. The Nub runs its spin-lock critical sections
// non-preemptible, as kernel code effectively did on the Firefly; a
// preempted spin-lock holder would livelock every spinner.
func (e *Env) SetPreemptible(on bool) {
	e.t.preemptible = on
}

// SetPriority changes the calling thread's scheduling priority.
func (e *Env) SetPriority(pri int) {
	e.t.stepSched = true
	e.t.item.Priority = queue.Priority(pri)
	// If the thread is on the ready pool the heap is fixed up; if it is
	// running the new priority takes effect at its next preemption.
	e.k.ready.Fix(e.t.item)
}

// SetPriorityOf changes another thread's scheduling priority — the Nub
// facility priority inheritance needs (a donor boosting a mutex holder). It
// is not an instruction: the caller is inside a Nub critical section whose
// surrounding accesses are the yield points, so the change is part of the
// current step (marked scheduler-relevant for the explorer).
func (e *Env) SetPriorityOf(t *T, pri int) {
	e.t.stepSched = true
	t.item.Priority = queue.Priority(pri)
	e.k.ready.Fix(t.item)
}

// Self returns the calling thread.
func (e *Env) Self() *T { return e.t }

// Now returns the calling processor's clock in cost units.
func (e *Env) Now() uint64 { return e.k.procs[e.t.proc].clock }

// Instret returns the instructions executed by the calling thread so far;
// differences around an operation measure its instruction cost (E1).
func (e *Env) Instret() uint64 { return e.t.instret }

// Emit records an Event carrying payload at the current time. Emission is
// free (no instruction cost): it is observation, not computation, like a
// logic analyzer on the simulated bus.
func (e *Env) Emit(payload any) {
	if e.k.cfg.Trace == nil {
		return
	}
	e.k.seq++
	e.k.cfg.Trace(Event{
		Seq:     e.k.seq,
		Clock:   e.k.procs[e.t.proc].clock,
		Proc:    e.t.proc,
		Thread:  e.t,
		Payload: payload,
	})
}

// Event is one traced occurrence in a run.
type Event struct {
	Seq     uint64 // global order of emission
	Clock   uint64 // emitting processor's clock
	Proc    int    // processor index
	Thread  *T     // emitting thread
	Payload any
}
