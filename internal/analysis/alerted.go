package analysis

import (
	"go/ast"
)

// Alerted enforces the client half of the alerting contract: AlertWait and
// AlertP exist only because they can return Alerted instead of the normal
// resumption ("EXCEPTION Alerted" in the specification), and TestAlert's
// whole effect is its boolean. Discarding these results turns an alertable
// wait into a plain wait whose abort path silently vanishes — the timeout
// or abort the alert was supposed to deliver never reaches the caller.
//
// The deadline variants (AlertWaitDeadline, AlertPDeadline,
// AcquireDeadline) are held to the same rule for their error result: a
// discarded DeadlineExceeded means the caller proceeds as if the wait were
// satisfied when it was not — for AcquireDeadline, as if it held a mutex it
// never acquired.
//
// A call used in any expression context counts as handled; assigning to
// the blank identifier (`_ = s.AlertP()`) is accepted as an explicit,
// visible decision to discard.
var Alerted = &Analyzer{
	Name: "alerted",
	Doc: "check that the Alerted result of AlertWait/AlertP/TestAlert and the " +
		"error of the *Deadline variants is not discarded (paper, Alerts: " +
		"EXCEPTION Alerted is the operation's point)",
	Run: runAlerted,
}

func runAlerted(pass *Pass) error {
	for _, site := range pass.Calls {
		deadline := false
		switch site.Op {
		case OpAlertWait, OpAlertP, OpTestAlert:
		case OpAlertWaitDeadline, OpAlertPDeadline, OpAcquireDeadline:
			deadline = true
		default:
			continue
		}
		// Climb through parens to the node that consumes the call's value.
		n := ast.Node(site.Call)
		parent := pass.Parent(n)
		for {
			if pe, ok := parent.(*ast.ParenExpr); ok {
				n, parent = pe, pass.Parent(pe)
				continue
			}
			break
		}
		switch parent.(type) {
		case *ast.ExprStmt:
			if deadline {
				pass.Reportf(site.Call.Pos(),
					"error of %s is discarded: it reports DeadlineExceeded or Alerted, and "+
						"ignoring it means proceeding as if the wait were satisfied; handle it, "+
						"or assign to _ to discard explicitly", callLabel(site))
			} else {
				pass.Reportf(site.Call.Pos(),
					"result of %s is discarded: it reports whether the wait was alerted "+
						"(the specification's EXCEPTION Alerted); handle it, or assign to _ "+
						"to discard explicitly", callLabel(site))
			}
		case *ast.GoStmt, *ast.DeferStmt:
			pass.Reportf(site.Call.Pos(),
				"result of %s is unobservable in go/defer position: the Alerted outcome "+
					"(specification EXCEPTION Alerted) is lost", callLabel(site))
		}
	}
	return nil
}
