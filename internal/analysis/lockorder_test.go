package analysis

import "testing"

func TestLockOrder(t *testing.T) {
	runFixture(t, "lockorder", LockOrder, nil)
}

func TestLockOrderInterprocedural(t *testing.T) {
	runFixture(t, "lockorder_inter", LockOrder,
		map[string]string{"lockorder.interprocedural": "true"})
}

// Without the interprocedural option the x → y edge (closed only through
// the call to lockY) must not exist, so the same fixture is clean.
func TestLockOrderIntraMissesCallEdges(t *testing.T) {
	pkg := loadFixture(t, "lockorder_inter")
	d := &Driver{Analyzers: []*Analyzer{LockOrder}}
	findings, err := d.Run(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected intraprocedural finding: %s", f)
	}
}
