package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural engine behind the cross-package modes of
// lockpair, lockorder, nubdiscipline and the whole guardedby analyzer. It
// computes, per function declared anywhere in the Program:
//
//   - a bottom-up effect summary (FuncSummary): which lock classes the
//     function still holds at every return (NetHeld), which it releases on
//     its caller's behalf (Releases), and which it acquires anywhere inside,
//     transitively (Acquires). The seqwalk walker consults these at every
//     untracked call, so `mon.Enter()` makes the monitor's mutex held in
//     the caller and `defer mon.Exit()` discharges it.
//
//   - a top-down entry-held set: the lock classes every caller holds at
//     every call site (intersected over the call graph to a fixed point),
//     so a helper that is only ever called under q.mu may touch q's guarded
//     fields without a finding.
//
//   - flat site records (calls, guarded-field accesses, Wait sites,
//     stale-local reads) that the guardedby analyzer turns into findings
//     and inference.
//
// Identity across packages is by name, not object: functions key by
// FuncKeyOf and locks by universalKey, because the Loader type-checks each
// target package separately and *types.Func/*types.Var pointers do not
// survive the package boundary. Functions outside the Program summarize
// nil: every analysis degrades to false negatives at the horizon, never
// false positives.

// extRelease prefixes holds.ext entries recording lock classes a path
// released without a prior acquire (the function releases them on its
// caller's behalf).
const extRelease = "xrel:"

// extLoad prefixes holds.ext entries recording locals loaded from guarded
// fields, for the stale-read-across-Wait check.
const extLoad = "load:"

// refInfo describes one lock class in a summary. Comparable, so ext
// entries join by equality across paths.
type refInfo struct {
	Display string
	Face    Face
	Op      Op
}

// FuncSummary is the externally visible lock effect of calling a function.
type FuncSummary struct {
	Key string
	// NetHeld: lock classes (universal keys) definitely held at every exit
	// and not discharged by a defer — calling this function leaves them
	// held in the caller.
	NetHeld map[string]refInfo
	// Releases: classes released on every path without a prior acquire —
	// calling this function releases the caller's lock.
	Releases map[string]refInfo
	// Acquires: every mutex class acquired anywhere inside, transitively
	// (class-keyed like direct lockorder edges).
	Acquires map[string]refInfo
}

// loadVal tracks one local loaded from a guarded field. Comparable.
type loadVal struct {
	guardUni  string
	guardDisp string
	fieldDisp string
	stale     token.Pos // Wait site that invalidated it; 0 while fresh
}

// sameSource reports whether two loads describe the same field under the
// same guard, regardless of staleness.
func (lv loadVal) sameSource(o loadVal) bool {
	return lv.guardUni == o.guardUni && lv.guardDisp == o.guardDisp && lv.fieldDisp == o.fieldDisp
}

// callRec is one static module-local call site: callee key plus the lock
// classes held at the site in the caller.
type callRec struct {
	caller string // enclosing context key; "" inside another-thread literals
	callee string
	held   map[string]bool
}

// accessRec is one read or write of a guard-relevant struct field or
// package variable.
type accessRec struct {
	fieldKey string // "(pkg.T).f" or "pkg.v"
	display  string // source-like rendering at this site
	pos      token.Pos
	pkg      string // import path of the accessing package
	funcKey  string // entry-held context; "" inside another-thread literals
	write    bool
	held     map[string]bool // universal keys held at the site
	baseUni  string          // universal key of the selector base; "" for package vars
}

// waitRec is a Condition.Wait-family site whose mutex was not locally held.
type waitRec struct {
	pos      token.Pos
	pkg      string
	funcKey  string
	mutexUni string
	display  string
	op       Op
}

// staleRec is a use of a local loaded from a guarded field before a Wait on
// its guard: Wait released and re-acquired the lock, so the value may be
// stale.
type staleRec struct {
	pos       token.Pos
	pkg       string
	varName   string
	fieldDisp string
	guardDisp string
	waitPos   token.Pos
}

// entrySet is one function's entry-held set during and after the fixpoint.
type entrySet struct {
	top bool // not yet constrained by any resolved call site
	set map[string]bool
}

// Summaries is the per-Program interprocedural engine. Not safe for
// concurrent use; the driver runs analyzers sequentially.
type Summaries struct {
	prog *Program

	memo map[string]*FuncSummary
	busy map[string]bool

	bad     map[string]*badOp
	badBusy map[string]bool

	final    bool
	calls    []callRec
	accesses []accessRec
	waits    []waitRec
	stales   []staleRec
	entry    map[string]*entrySet

	inferred map[string]*inference
}

func newSummaries(prog *Program) *Summaries {
	return &Summaries{
		prog:    prog,
		memo:    make(map[string]*FuncSummary),
		busy:    make(map[string]bool),
		bad:     make(map[string]*badOp),
		badBusy: make(map[string]bool),
	}
}

// effects returns fn's summary, or nil when fn is not declared in the
// Program (or is currently on the computation stack — recursion
// contributes nothing, the false-negative direction).
func (s *Summaries) effects(fn *types.Func) *FuncSummary {
	key := FuncKeyOf(fn)
	if key == "" {
		return nil
	}
	return s.summary(key)
}

func (s *Summaries) summary(key string) *FuncSummary {
	if sum, ok := s.memo[key]; ok {
		return sum
	}
	if s.busy[key] {
		return nil
	}
	d := s.prog.decls[key]
	if d == nil || d.decl.Body == nil {
		s.memo[key] = nil
		return nil
	}
	s.busy[key] = true
	sum := s.computeSummary(key, d)
	delete(s.busy, key)
	s.memo[key] = sum
	return sum
}

func (s *Summaries) computeSummary(key string, d *declSite) *FuncSummary {
	pass := s.prog.pass(d.ctx)
	info := pass.Pkg.Info

	type exitSnap struct {
		held map[string]refInfo
		rels map[string]refInfo
	}
	var exits []exitSnap
	acquires := make(map[string]refInfo)
	depth := 0

	w := &seqWalker{pass: pass, sums: s}
	w.client = seqClient{
		enterFunc: func(ast.Node, bool) { depth++ },
		leaveFunc: func(ast.Node) { depth-- },
		call: func(site *CallSite, ref lockRef, st *holds) {
			if !ref.ok {
				return
			}
			switch site.Op {
			case OpAcquire, OpLock:
				if ref.classKey != "" {
					acquires[ref.classKey] = refInfo{Display: ref.display, Face: site.Face, Op: site.Op}
				}
			case OpRelease, OpSpinUnlock:
				if ref.uniKey == "" {
					break
				}
				// A deferred release fires at exit, not here: walkDefer marks
				// the hold instead.
				if _, isDefer := pass.Parent(site.Call).(*ast.DeferStmt); isDefer {
					break
				}
				_, defHeld := st.def[ref.key]
				_, maybeHeld := st.maybe[ref.key]
				if !defHeld && !maybeHeld && !hasClassHeld(st, ref.uniKey) {
					st.setExt(extRelease+ref.uniKey, refInfo{Display: ref.display, Face: site.Face, Op: site.Op})
				}
			}
		},
		node: func(n ast.Node, st *holds) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, tracked := pass.Site(call); tracked {
				return true
			}
			if fn, ok := Callee(info, call).(*types.Func); ok {
				if sub := s.effects(fn); sub != nil {
					for ck, ri := range sub.Acquires {
						acquires[ck] = ri
					}
				}
			}
			return true
		},
		exit: func(pos token.Pos, st *holds) {
			if depth != 1 {
				return // a nested literal's exit, not the function's
			}
			snap := exitSnap{held: make(map[string]refInfo), rels: make(map[string]refInfo)}
			for _, h := range st.def {
				if h.deferred || h.ref.uniKey == "" {
					continue
				}
				op := OpAcquire
				if h.site.Face == FaceSpin {
					op = OpSpinLock
				}
				snap.held[h.ref.uniKey] = refInfo{Display: h.ref.display, Face: h.site.Face, Op: op}
			}
			for k, v := range st.ext {
				if ck, ok := strings.CutPrefix(k, extRelease); ok {
					if ri, ok := v.(refInfo); ok {
						snap.rels[ck] = ri
					}
				}
			}
			exits = append(exits, snap)
		},
	}
	w.walkFunc(d.decl)

	sum := &FuncSummary{Key: key}
	if len(acquires) > 0 {
		sum.Acquires = acquires
	}
	for i, snap := range exits {
		if i == 0 {
			sum.NetHeld = snap.held
			sum.Releases = snap.rels
			continue
		}
		intersectRefs(sum.NetHeld, snap.held)
		intersectRefs(sum.Releases, snap.rels)
	}
	if len(sum.NetHeld) == 0 {
		sum.NetHeld = nil
	}
	if len(sum.Releases) == 0 {
		sum.Releases = nil
	}
	if sum.NetHeld == nil && sum.Releases == nil && sum.Acquires == nil {
		return nil // effect-free: callers skip the lookup entirely
	}
	return sum
}

func intersectRefs(into, other map[string]refInfo) {
	for k := range into {
		if _, ok := other[k]; !ok {
			delete(into, k)
		}
	}
}

// badOf is the cross-package nubdiscipline summary: the first Nub-invariant
// violation anywhere in fn's body (transitively), or nil. The position is
// resolvable in any Program package: the Loader shares one FileSet.
func (s *Summaries) badOf(fn *types.Func) *badOp {
	key := FuncKeyOf(fn)
	if key == "" {
		return nil
	}
	if got, ok := s.bad[key]; ok {
		return got
	}
	if s.badBusy[key] {
		return nil
	}
	d := s.prog.decls[key]
	if d == nil || d.decl.Body == nil {
		s.bad[key] = nil
		return nil
	}
	s.badBusy[key] = true
	defer delete(s.badBusy, key)

	pass := s.prog.pass(d.ctx)
	var found *badOp
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		// A function that locks a spin lock itself is analyzed at its own
		// sites; nested spin sections do not make the *caller* bad. Only
		// operations that would run under the caller's lock count, which
		// conservatively is the whole body (paths are not tracked here).
		if kind, what, origin := classifyBadOp(pass, s.badOf, n); kind != badNone {
			if !origin.IsValid() {
				origin = n.Pos()
			}
			found = &badOp{kind: kind, what: what, pos: n.Pos(), origin: origin}
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // closures already flagged as allocation
		}
		return true
	})
	s.bad[key] = found
	return found
}

// finalize runs the whole-program site pass (call records, guarded-field
// accesses, Wait sites, stale-local reads) and solves the entry-held
// fixpoint. Idempotent.
func (s *Summaries) finalize() {
	if s.final {
		return
	}
	s.final = true
	s.entry = make(map[string]*entrySet)

	guards := s.prog.Guards()
	keys := make([]string, 0, len(s.prog.decls))
	for key := range s.prog.decls {
		keys = append(keys, key)
	}
	sort.Strings(keys) // deterministic record order
	for _, key := range keys {
		s.walkSites(key, s.prog.decls[key], guards)
	}
	s.solveEntry()
}

// heldUniversalSet snapshots the universal keys of every held lock.
func heldUniversalSet(st *holds) map[string]bool {
	out := make(map[string]bool)
	for _, h := range st.def {
		if h.ref.uniKey != "" {
			out[h.ref.uniKey] = true
		}
	}
	for _, h := range st.maybe {
		if h.ref.uniKey != "" {
			out[h.ref.uniKey] = true
		}
	}
	return out
}

// walkSites walks one declaration recording interprocedural facts.
func (s *Summaries) walkSites(key string, d *declSite, guards *GuardTable) {
	pass := s.prog.pass(d.ctx)
	info := pass.Pkg.Info
	pkgPath := pass.Pkg.ImportPath

	// ctxStack tracks the entry-held context: the declaration's key, carried
	// into same-thread literals, cleared ("") in literals that run on
	// another thread.
	var ctxStack []string
	cur := func() string {
		if len(ctxStack) == 0 {
			return ""
		}
		return ctxStack[len(ctxStack)-1]
	}
	freshVars := make(map[types.Object]bool) // locals holding freshly allocated, unshared objects
	skipIdent := make(map[token.Pos]bool)    // assignment targets: not reads

	w := &seqWalker{pass: pass, sums: s}
	w.client = seqClient{
		enterFunc: func(fn ast.Node, fresh bool) {
			switch fn.(type) {
			case *ast.FuncDecl:
				ctxStack = append(ctxStack, key)
			default:
				if fresh {
					ctxStack = append(ctxStack, "")
				} else {
					ctxStack = append(ctxStack, cur())
				}
			}
		},
		leaveFunc: func(ast.Node) { ctxStack = ctxStack[:len(ctxStack)-1] },
		call: func(site *CallSite, ref lockRef, st *holds) {
			switch site.Op {
			case OpWait, OpAlertWait, OpAlertWaitDeadline:
				if !ref.ok || ref.uniKey == "" {
					return
				}
				_, defHeld := st.def[ref.key]
				_, maybeHeld := st.maybe[ref.key]
				if !defHeld && !maybeHeld && !hasClassHeld(st, ref.uniKey) {
					s.waits = append(s.waits, waitRec{
						pos: site.Call.Pos(), pkg: pkgPath, funcKey: cur(),
						mutexUni: ref.uniKey, display: ref.display, op: site.Op,
					})
				}
				// Wait atomically releases and re-acquires the mutex: locals
				// loaded from fields it guards are stale afterwards.
				for k, v := range st.ext {
					if lv, ok := v.(loadVal); ok && strings.HasPrefix(k, extLoad) &&
						lv.guardUni == ref.uniKey && lv.stale == 0 {
						lv.stale = site.Call.Pos()
						st.ext[k] = lv
					}
				}
			}
		},
		node: func(n ast.Node, st *holds) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				s.trackAssign(pass, guards, n, st, freshVars, skipIdent)
			case *ast.CallExpr:
				if _, tracked := pass.Site(n); tracked {
					return true
				}
				if fn, ok := Callee(info, n).(*types.Func); ok {
					if ckey := FuncKeyOf(fn); ckey != "" && s.prog.decls[ckey] != nil {
						s.calls = append(s.calls, callRec{
							caller: cur(), callee: ckey, held: heldUniversalSet(st),
						})
					}
				}
			case *ast.SelectorExpr:
				s.recordSelector(pass, guards, n, st, cur(), freshVars)
			case *ast.Ident:
				s.recordIdent(pass, guards, n, st, cur(), skipIdent)
			}
			return true
		},
	}
	w.walkFunc(d.decl)
}

// trackAssign maintains the fresh-allocation and guarded-load tables at an
// assignment: `q := &Q{}` makes q exempt from guard checking (unshared),
// `n := q.count` records a guarded load for the stale-across-Wait check,
// any other assignment to a tracked local clears its state.
func (s *Summaries) trackAssign(pass *Pass, guards *GuardTable, n *ast.AssignStmt, st *holds, freshVars map[types.Object]bool, skipIdent map[token.Pos]bool) {
	info := pass.Pkg.Info
	if len(n.Lhs) != len(n.Rhs) {
		// n, ok := f(): the targets are no longer fresh allocations or
		// guarded loads, whatever they were before.
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				skipIdent[id.Pos()] = true
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					delete(freshVars, v)
					delete(st.ext, extLoad+localVarKey(v, pass.Fset))
				}
			}
		}
		return
	}
	for i := range n.Lhs {
		id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		skipIdent[id.Pos()] = true
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || id.Name == "_" {
			continue
		}
		rhs := ast.Unparen(n.Rhs[i])
		if isFreshAlloc(info, rhs) {
			freshVars[v] = true
			continue
		}
		delete(freshVars, v)
		vk := extLoad + localVarKey(v, pass.Fset)
		delete(st.ext, vk)
		if sel, ok := rhs.(*ast.SelectorExpr); ok {
			if fieldKey, baseUni, disp, ok := s.fieldOf(pass, sel); ok {
				if spec := guards.specs[fieldKey]; spec != nil {
					if req, reqDisp, ok := spec.requirement(baseUni); ok {
						st.setExt(vk, loadVal{guardUni: req, guardDisp: reqDisp, fieldDisp: disp})
					}
				}
			}
		}
	}
}

// isFreshAlloc reports expressions that yield a brand-new object no other
// thread can see yet: &T{…}, T{…}, new(T).
func isFreshAlloc(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if b, ok := Callee(info, x).(*types.Builtin); ok {
			return b.Name() == "new"
		}
	}
	return false
}

func localVarKey(v *types.Var, fset *token.FileSet) string {
	return v.Name() + "@" + fset.Position(v.Pos()).String()
}

// fieldOf resolves a selector to a guard-relevant field of a Program-local
// struct: its cross-package field key, the universal key of the base, and
// a display string. Promoted (embedded) fields are skipped.
func (s *Summaries) fieldOf(pass *Pass, sel *ast.SelectorExpr) (fieldKey, baseUni, display string, ok bool) {
	info := pass.Pkg.Info
	selection, isSel := info.Selections[sel]
	if !isSel || selection.Kind() != types.FieldVal || len(selection.Index()) != 1 {
		return "", "", "", false
	}
	recv := selection.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || s.prog.byPath[named.Obj().Pkg().Path()] == nil {
		return "", "", "", false
	}
	baseUni, ok = universalKey(info, sel.X)
	if !ok {
		return "", "", "", false
	}
	_, bdisp, _ := RefKey(info, pass.Fset, sel.X, nil)
	if bdisp == "" {
		bdisp = "x"
	}
	return "(" + normalizedTypeName(recv) + ")." + sel.Sel.Name, baseUni, bdisp + "." + sel.Sel.Name, true
}

// recordSelector records accesses to guard-relevant struct fields and to
// annotated package variables referenced as pkg.Var.
func (s *Summaries) recordSelector(pass *Pass, guards *GuardTable, sel *ast.SelectorExpr, st *holds, funcKey string, freshVars map[types.Object]bool) {
	info := pass.Pkg.Info
	if fieldKey, baseUni, disp, ok := s.fieldOf(pass, sel); ok {
		if guards.specs[fieldKey] == nil && guards.fields[fieldKey] == nil {
			return
		}
		if root := rootObject(info, sel.X); root != nil && freshVars[root] {
			return // freshly allocated, unshared: constructor-style access
		}
		s.accesses = append(s.accesses, accessRec{
			fieldKey: fieldKey, display: disp, pos: sel.Sel.Pos(), pkg: pass.Pkg.ImportPath,
			funcKey: funcKey, write: isWriteTarget(pass, sel),
			held: heldUniversalSet(st), baseUni: baseUni,
		})
		return
	}
	// pkg.Var reference to an annotated package variable.
	if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			if v, isVar := info.Uses[sel.Sel].(*types.Var); isVar {
				s.recordPkgVar(pass, guards, v, sel.Sel.Name, sel.Sel.Pos(), sel, st, funcKey)
			}
		}
	}
}

// recordIdent records same-package references to annotated package
// variables and uses of stale guarded loads.
func (s *Summaries) recordIdent(pass *Pass, guards *GuardTable, id *ast.Ident, st *holds, funcKey string, skipIdent map[token.Pos]bool) {
	info := pass.Pkg.Info
	if parent, ok := pass.Parent(id).(*ast.SelectorExpr); ok && parent.Sel == id {
		return // the Sel of a selector: handled by recordSelector
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		s.recordPkgVar(pass, guards, v, id.Name, id.Pos(), id, st, funcKey)
		return
	}
	if skipIdent[id.Pos()] {
		return
	}
	vk := extLoad + localVarKey(v, pass.Fset)
	if lv, ok := st.ext[vk].(loadVal); ok && lv.stale != 0 {
		s.stales = append(s.stales, staleRec{
			pos: id.Pos(), pkg: pass.Pkg.ImportPath, varName: id.Name,
			fieldDisp: lv.fieldDisp, guardDisp: lv.guardDisp, waitPos: lv.stale,
		})
		lv.stale = 0 // one finding per load, not per use
		st.ext[vk] = lv
	}
}

func (s *Summaries) recordPkgVar(pass *Pass, guards *GuardTable, v *types.Var, name string, pos token.Pos, e ast.Expr, st *holds, funcKey string) {
	uni, ok := universalRootKey(v)
	if !ok || guards.specs[uni] == nil {
		return
	}
	s.accesses = append(s.accesses, accessRec{
		fieldKey: uni, display: name, pos: pos, pkg: pass.Pkg.ImportPath,
		funcKey: funcKey, write: isWriteTarget(pass, e),
		held: heldUniversalSet(st),
	})
}

// rootObject finds the root variable of a selector base (q in q.buf[i]),
// or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isWriteTarget reports whether e is assigned to (possibly through
// indexing/dereference): `q.f = v`, `q.f += v`, `q.f++`, `q.buf[i] = v`.
func isWriteTarget(pass *Pass, e ast.Expr) bool {
	var n ast.Node = e
	for {
		switch p := pass.Parent(n).(type) {
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == n {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == n
		case *ast.IndexExpr:
			if p.X != n {
				return false
			}
			n = p
		case *ast.StarExpr:
			n = p
		case *ast.ParenExpr:
			n = p
		default:
			return false
		}
	}
}

// solveEntry computes entry-held sets: EntryHeld(f) = ∩ over static call
// sites of (held at site ∪ EntryHeld(caller)). Functions never seen as a
// callee stay absent (∅): exported entry points assume nothing.
func (s *Summaries) solveEntry() {
	for _, rec := range s.calls {
		if s.entry[rec.callee] == nil {
			s.entry[rec.callee] = &entrySet{top: true}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, rec := range s.calls {
			es := s.entry[rec.callee]
			caller := s.entry[rec.caller] // nil: uncalled caller or "" context → ∅
			if caller != nil && caller.top {
				continue // unresolved caller constrains nothing yet
			}
			incoming := make(map[string]bool, len(rec.held))
			for k := range rec.held {
				incoming[k] = true
			}
			if caller != nil {
				for k := range caller.set {
					incoming[k] = true
				}
			}
			if es.top {
				es.top = false
				es.set = incoming
				changed = true
				continue
			}
			for k := range es.set {
				if !incoming[k] {
					delete(es.set, k)
					changed = true
				}
			}
		}
	}
	// Pure call cycles never reached from a resolved site: assume nothing.
	for _, es := range s.entry {
		if es.top {
			es.top = false
			es.set = nil
		}
	}
}

// entryHolds reports whether every caller of funcKey holds the lock class.
func (s *Summaries) entryHolds(funcKey, uni string) bool {
	if funcKey == "" || uni == "" {
		return false
	}
	es := s.entry[funcKey]
	return es != nil && es.set[uni]
}

// covered reports whether an access site is protected by the given lock
// class: held locally or by every caller.
func (s *Summaries) covered(rec accessRec, uni string) bool {
	return rec.held[uni] || s.entryHolds(rec.funcKey, uni)
}

// universalKey is RefKey with every named-type root keyed by its type: the
// fully class-level identity summaries and guard checks speak, stable
// across functions and packages ("(threads/derived.Ring).mu",
// "threads/internal/workload.tableMu").
func universalKey(info *types.Info, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return universalKey(info, x.X)
		}
	case *ast.StarExpr:
		return universalKey(info, x.X)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return universalRootKey(v)
		}
	case *ast.SelectorExpr:
		if sel, isSel := info.Selections[x]; isSel && sel.Kind() == types.FieldVal {
			base, ok := universalKey(info, x.X)
			if !ok {
				return "", false
			}
			return base + "." + x.Sel.Name, true
		}
		if id, isID := ast.Unparen(x.X).(*ast.Ident); isID {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, isVar := info.Uses[x.Sel].(*types.Var); isVar {
					return universalRootKey(v)
				}
			}
		}
	}
	return "", false
}

// universalRootKey keys package-level variables by path.name and named-type
// roots by their type. Roots of unnamed type have no cross-function
// identity.
func universalRootKey(v *types.Var) (string, bool) {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name(), true
	}
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.(*types.Named); ok {
		return "(" + normalizedTypeName(t) + ")", true
	}
	return "", false
}
