package analysis

import "testing"

func TestPriorityDiscipline(t *testing.T) {
	runFixture(t, "prioritydiscipline", PriorityDiscipline, nil)
}
