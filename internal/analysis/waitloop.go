package analysis

import (
	"go/ast"
	"go/types"
)

// WaitLoop enforces the paper's central caveat about condition variables:
// "the return of a thread from a call of Wait does not give any guarantees
// about the state" — return from Wait is only a hint, so every Wait and
// AlertWait must sit inside a for loop that re-tests the guarding
// predicate. Guarding a Wait with `if` instead of `for` is the classic
// Mesa-monitor bug: the predicate may already be false again by the time
// the waiter reacquires the mutex (another thread won the race, or Signal
// unblocked more than one waiter, both of which the specification permits).
var WaitLoop = &Analyzer{
	Name: "waitloop",
	Doc: "check that every Condition.Wait/AlertWait is re-tested in a loop " +
		"(paper, Condition Variables: return from Wait is only a hint)",
	Run: runWaitLoop,
}

func runWaitLoop(pass *Pass) error {
	for _, site := range pass.Calls {
		if site.Op != OpWait && site.Op != OpAlertWait && site.Op != OpAlertWaitDeadline {
			continue
		}
		var guardIf *ast.IfStmt
		inLoop := false
	climb:
		for n := ast.Node(site.Call); n != nil; n = pass.Parent(n) {
			switch p := pass.Parent(n).(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
				break climb
			case *ast.IfStmt:
				if guardIf == nil {
					guardIf = p
				}
			case *ast.FuncDecl, *ast.FuncLit:
				// Loops outside the enclosing function (or closure) cannot
				// re-test this call's predicate.
				break climb
			}
		}
		if inLoop {
			continue
		}
		what := callLabel(site)
		if guardIf != nil {
			pass.Reportf(site.Call.Pos(),
				"%s is guarded by if, not re-tested in a loop: return from Wait is only a hint "+
					"(paper, Condition Variables), so the predicate may already be false again; "+
					"replace the if with `for !predicate { %s }`", what, what)
		} else {
			pass.Reportf(site.Call.Pos(),
				"%s is not inside a for loop: return from Wait is only a hint "+
					"(paper, Condition Variables); wrap it as `for !predicate { %s }`", what, what)
		}
	}
	// A Wait captured as a method value escapes the syntactic check
	// entirely; report it so the discipline cannot be silently bypassed.
	for _, mv := range pass.MethodVals {
		if name := mv.Method.Name(); name == "Wait" || name == "AlertWait" || name == "AlertWaitDeadline" {
			pass.Reportf(mv.Sel.Pos(),
				"%s is captured as a method value: the wait-in-a-loop discipline cannot be "+
					"checked statically at its eventual call sites; call it directly inside "+
					"a predicate loop instead", mv.Method.FullName())
		}
	}
	return nil
}

// callLabel renders a call site compactly for diagnostics: "c.Wait" /
// "r.reply.AlertWait".
func callLabel(site *CallSite) string {
	name := site.Op.String()
	if sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + name
	}
	return name
}
