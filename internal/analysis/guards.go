package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Guarded-by annotations bind shared state to the lock that protects it,
// in source comments the guardedby analyzer enforces:
//
//	type queue struct {
//		mu    threads.Mutex
//		items []int //threads:guardedby mu
//	}
//
// or, equivalently, from the lock's side:
//
//	mu threads.Mutex //threads:guards items,count
//
// Package-level variables annotate the same way, naming a package-level
// lock. The directive sits in the field's or variable's doc comment or on
// its line. Unannotated fields of lock-owning structs are inference
// candidates: the analyzer proposes the lock held at the majority of their
// write sites (see guardedby.go).
const (
	GuardedByDirective = "threads:guardedby"
	GuardsDirective    = "threads:guards"
)

// guardSpec is one resolved annotation: fieldKey is guarded by a sibling
// field or a package-level lock.
type guardSpec struct {
	fieldKey  string // "(pkg.T).f" or "pkg.v"
	fieldName string
	pkg       string         // owning package import path
	pos       token.Position // the annotation, for related-position reporting
	sibling   string         // guard is this sibling field of the same struct
	global    string         // guard is this package-level lock (universal key)
	guardDisp string
}

// requirement renders the spec as a universal lock key for an access whose
// base has the given universal key.
func (g *guardSpec) requirement(baseUni string) (uni, disp string, ok bool) {
	if g.global != "" {
		return g.global, g.guardDisp, true
	}
	if g.sibling != "" && baseUni != "" {
		return baseUni + "." + g.sibling, g.guardDisp, true
	}
	return "", "", false
}

// fieldInfo is one inference candidate: a data field of a struct that also
// has a named lock field.
type fieldInfo struct {
	key        string
	name       string
	pkg        string
	structName string
	pos        token.Position // the field name, for related-position links
	posTok     token.Pos      // the same position, for suggestion anchors
	siblings   []string       // the struct's named lock fields
}

// guardErr is a malformed annotation, reported by the guardedby analyzer
// in the owning package.
type guardErr struct {
	pkg string
	pos token.Pos
	msg string
}

// GuardTable is the Program's parsed annotation set.
type GuardTable struct {
	specs  map[string]*guardSpec
	fields map[string]*fieldInfo
	errs   []guardErr
}

// parseGuards scans every Program package's struct and var declarations
// for guard annotations and inference candidates.
func parseGuards(prog *Program) *GuardTable {
	t := &GuardTable{
		specs:  make(map[string]*guardSpec),
		fields: make(map[string]*fieldInfo),
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				switch gd.Tok {
				case token.TYPE:
					for _, spec := range gd.Specs {
						if ts, ok := spec.(*ast.TypeSpec); ok {
							if st, ok := ts.Type.(*ast.StructType); ok {
								t.parseStruct(pkg, ts.Name.Name, st)
							}
						}
					}
				case token.VAR:
					t.parseVars(pkg, gd)
				}
			}
		}
	}
	return t
}

// directiveIn finds a guard directive in the comment groups, returning the
// directive name, its argument and its position.
func directiveIn(groups ...*ast.CommentGroup) (name, arg string, pos token.Pos, ok bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			for _, d := range []string{GuardedByDirective, GuardsDirective} {
				if rest, found := strings.CutPrefix(c.Text, "//"+d); found {
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // //threads:guardsomethingelse
					}
					return d, strings.TrimSpace(rest), c.Pos(), true
				}
			}
		}
	}
	return "", "", token.NoPos, false
}

// lockFieldType reports whether t is a lock usable as a guard: the module's
// Mutex faces, the spin lock, or sync.Mutex/RWMutex.
func lockFieldType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	switch named.Obj().Pkg().Path() {
	case pkgThreads, pkgCore, pkgSim:
		return name == "Mutex"
	case pkgSpinlock:
		return name == "Lock"
	case "sync":
		return name == "Mutex" || name == "RWMutex"
	}
	return false
}

// syncObjectType reports types excluded from guard checking and inference:
// locks themselves plus the signalling primitives accessed through their
// own methods.
func syncObjectType(t types.Type) bool {
	if lockFieldType(t) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	switch named.Obj().Pkg().Path() {
	case pkgThreads, pkgCore, pkgSim:
		return name == "Condition" || name == "Semaphore" || name == "Alert"
	case "sync":
		return name == "Cond" || name == "WaitGroup" || name == "Once"
	}
	return false
}

func (t *GuardTable) errf(pkg *Package, pos token.Pos, msg string) {
	t.errs = append(t.errs, guardErr{pkg: pkg.ImportPath, pos: pos, msg: msg})
}

// parseStruct registers a struct's lock fields, inference candidates and
// annotations.
func (t *GuardTable) parseStruct(pkg *Package, typeName string, st *ast.StructType) {
	if st.Fields == nil {
		return
	}
	keyOf := func(field string) string {
		return "(" + pkg.ImportPath + "." + typeName + ")." + field
	}
	var locks []string
	dataFields := make(map[string]*ast.Ident)
	fieldType := func(id *ast.Ident) types.Type {
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			return v.Type()
		}
		return nil
	}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			ft := fieldType(name)
			if ft == nil {
				continue
			}
			if lockFieldType(ft) {
				locks = append(locks, name.Name)
			} else if !syncObjectType(ft) {
				dataFields[name.Name] = name
			}
		}
	}
	known := func(field string) bool {
		if dataFields[field] != nil {
			return true
		}
		for _, l := range locks {
			if l == field {
				return true
			}
		}
		return false
	}
	isLock := func(field string) bool {
		for _, l := range locks {
			if l == field {
				return true
			}
		}
		return false
	}

	// Inference candidates: every data field of a lock-owning struct.
	if len(locks) > 0 {
		for name, id := range dataFields {
			t.fields[keyOf(name)] = &fieldInfo{
				key: keyOf(name), name: name, pkg: pkg.ImportPath, structName: typeName,
				pos: pkg.Fset.Position(id.Pos()), posTok: id.Pos(), siblings: locks,
			}
		}
	}

	addSpec := func(field, guard string, pos token.Pos) {
		key := keyOf(field)
		if prev := t.specs[key]; prev != nil {
			if prev.sibling != guard {
				t.errf(pkg, pos, "conflicting guard annotations for "+typeName+"."+field+
					" (already guarded by "+prev.guardDisp+")")
			}
			return
		}
		t.specs[key] = &guardSpec{
			fieldKey: key, fieldName: field, pkg: pkg.ImportPath,
			pos: pkg.Fset.Position(pos), sibling: guard, guardDisp: guard,
		}
	}

	for _, f := range st.Fields.List {
		dir, arg, pos, ok := directiveIn(f.Doc, f.Comment)
		if !ok {
			continue
		}
		if len(f.Names) == 0 {
			t.errf(pkg, pos, "guard annotation on an embedded field is not supported")
			continue
		}
		switch dir {
		case GuardedByDirective:
			if arg == "" || strings.ContainsAny(arg, ", \t") {
				t.errf(pkg, pos, "malformed annotation: want //"+GuardedByDirective+" lockField")
				continue
			}
			if !isLock(arg) {
				t.errf(pkg, pos, "guard "+arg+" is not a lock field of "+typeName)
				continue
			}
			for _, name := range f.Names {
				addSpec(name.Name, arg, pos)
			}
		case GuardsDirective:
			if len(f.Names) != 1 || !isLock(f.Names[0].Name) {
				t.errf(pkg, pos, "//"+GuardsDirective+" belongs on a lock field")
				continue
			}
			lock := f.Names[0].Name
			if arg == "" {
				t.errf(pkg, pos, "malformed annotation: want //"+GuardsDirective+" field[,field]")
				continue
			}
			for _, field := range strings.Split(arg, ",") {
				field = strings.TrimSpace(field)
				if field == "" {
					continue
				}
				if !known(field) || isLock(field) {
					t.errf(pkg, pos, "//"+GuardsDirective+" names "+field+", which is not a data field of "+typeName)
					continue
				}
				addSpec(field, lock, pos)
			}
		}
	}
}

// parseVars registers annotated package-level variables.
func (t *GuardTable) parseVars(pkg *Package, gd *ast.GenDecl) {
	pkgLevelLock := func(name string) bool {
		obj := pkg.Types.Scope().Lookup(name)
		v, ok := obj.(*types.Var)
		return ok && lockFieldType(v.Type())
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		doc := vs.Doc
		if doc == nil && len(gd.Specs) == 1 {
			doc = gd.Doc
		}
		dir, arg, pos, ok := directiveIn(doc, vs.Comment)
		if !ok {
			continue
		}
		names := make([]string, 0, len(vs.Names))
		for _, n := range vs.Names {
			names = append(names, n.Name)
		}
		switch dir {
		case GuardedByDirective:
			if arg == "" || strings.ContainsAny(arg, ", \t") {
				t.errf(pkg, pos, "malformed annotation: want //"+GuardedByDirective+" lockVar")
				continue
			}
			if !pkgLevelLock(arg) {
				t.errf(pkg, pos, "guard "+arg+" is not a package-level lock in "+pkg.ImportPath)
				continue
			}
			for _, name := range names {
				key := pkg.ImportPath + "." + name
				t.specs[key] = &guardSpec{
					fieldKey: key, fieldName: name, pkg: pkg.ImportPath,
					pos:    pkg.Fset.Position(pos),
					global: pkg.ImportPath + "." + arg, guardDisp: arg,
				}
			}
		case GuardsDirective:
			if len(names) != 1 || !pkgLevelLock(names[0]) {
				t.errf(pkg, pos, "//"+GuardsDirective+" belongs on a package-level lock variable")
				continue
			}
			if arg == "" {
				t.errf(pkg, pos, "malformed annotation: want //"+GuardsDirective+" var[,var]")
				continue
			}
			for _, field := range strings.Split(arg, ",") {
				field = strings.TrimSpace(field)
				if field == "" {
					continue
				}
				if _, ok := pkg.Types.Scope().Lookup(field).(*types.Var); !ok {
					t.errf(pkg, pos, "//"+GuardsDirective+" names "+field+", which is not a package-level variable")
					continue
				}
				key := pkg.ImportPath + "." + field
				t.specs[key] = &guardSpec{
					fieldKey: key, fieldName: field, pkg: pkg.ImportPath,
					pos:    pkg.Fset.Position(pos),
					global: pkg.ImportPath + "." + names[0], guardDisp: names[0],
				}
			}
		}
	}
}
