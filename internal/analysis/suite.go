package analysis

// All returns the full threadsvet suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		WaitLoop,
		CondMutex,
		LockPair,
		Alerted,
		LockOrder,
		NubDiscipline,
		PriorityDiscipline,
		GuardedBy,
	}
}

// ByName resolves analyzer names (comma-separated lists come from the CLI).
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
