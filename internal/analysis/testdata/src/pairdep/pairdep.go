// Dependency fixture for cross-package lockpair checking: Grab returns
// holding Mu and Drop releases it, so the bracket can only be judged at
// call sites in other packages via this package's summaries.
package pairdepfix

import "threads"

var Mu threads.Mutex

// Grab acquires Mu on behalf of the caller.
func Grab() {
	Mu.Acquire() // want "not matched by a Release on the path leaving the function"
}

// Drop releases the caller's hold on Mu.
func Drop() {
	Mu.Release() // want "Release of Mu which this path has not acquired"
}
