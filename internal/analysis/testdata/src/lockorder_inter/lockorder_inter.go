// Fixture for the lockorder analyzer's interprocedural mode: the x → y
// edge exists only through the call to lockY, so the cycle is invisible to
// the intraprocedural analysis (lockorder_test.go checks both modes).
package lockorderinterfix

import "threads"

var (
	x threads.Mutex
	y threads.Mutex
)

func touch() {}

func lockY() {
	y.Acquire()
	touch()
	y.Release()
}

func xThenCallY() {
	x.Acquire()
	lockY() // want "potential deadlock: lock-acquisition cycle"
	x.Release()
}

func yThenX() {
	y.Acquire()
	x.Acquire()
	touch()
	x.Release()
	y.Release()
}

// Transitive summary: callsLockY acquires y through lockY, two frames
// deep, and is itself clean.
func callsLockY() {
	lockY()
}
