// Fixture for cross-package lockpair checking: the acquire and release
// happen inside pairdep helpers, so only their summaries reveal that leak
// returns holding Mu. A same-package run of this package alone reports
// nothing (lockpair_test.go pins that miss).
package pairusefix

import dep "threads/internal/analysis/testdata/src/pairdep"

func leak() {
	dep.Grab() // want "this call returns holding Mu, which no path leaving the function"
}

func ok() {
	dep.Grab()
	dep.Drop()
}
