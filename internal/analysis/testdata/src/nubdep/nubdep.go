// Dependency fixture for cross-package nubdiscipline checking: Grow
// allocates, which is only a violation when a spin-locked caller in
// another package reaches it. This package does not import the spin lock,
// so nothing is reported here.
package nubdepfix

// Grow appends, which may allocate.
func Grow(s []int) []int {
	return append(s, 1)
}
