// Fixture for cross-package lockorder checking: the A → B edge is closed
// only through orderdep.LockB, so the cycle is invisible both to the
// intraprocedural analysis and to a same-package interprocedural run of
// this package alone (lockorder_test.go pins both misses).
package orderusefix

import dep "threads/internal/analysis/testdata/src/orderdep"

func aThenB() {
	dep.A.Acquire()
	dep.LockB() // want "potential deadlock: lock-acquisition cycle"
	dep.UnlockB()
	dep.A.Release()
}

func bThenA() {
	dep.B.Acquire()
	dep.A.Acquire()
	dep.A.Release()
	dep.B.Release()
}
