// Dependency fixture for cross-package lockorder checking: the locks and
// the helper that acquires one of them live here; the inconsistent
// acquisition orders live in the importing package.
package orderdepfix

import "threads"

var (
	A threads.Mutex
	B threads.Mutex
)

// LockB acquires B; paired with UnlockB by callers.
func LockB() {
	B.Acquire()
}

// UnlockB undoes LockB.
func UnlockB() {
	B.Release()
}
