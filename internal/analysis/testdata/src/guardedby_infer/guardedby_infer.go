// Fixture for the guardedby analyzer's inference mode: unannotated fields
// whose writes dominantly hold one sibling lock. A strong majority with a
// deviation is a likely missing guard; full consistency becomes an
// advisory annotation suggestion under -guardedby.suggest.
package guardedbyinferfix

import "threads"

// tally: 4 of 5 writes hold mu, so the fifth is flagged.
type tally struct {
	mu threads.Mutex
	c  int
}

func (t *tally) add() {
	t.mu.Acquire()
	t.c++
	t.mu.Release()
}

func (t *tally) sub() {
	t.mu.Acquire()
	t.c--
	t.mu.Release()
}

func (t *tally) reset() {
	t.mu.Acquire()
	t.c = 0
	t.mu.Release()
}

func (t *tally) double() {
	t.mu.Acquire()
	t.c *= 2
	t.mu.Release()
}

func (t *tally) rogue() {
	t.c = 9 // want "write of t.c without mu held, but 4 of 5 writes hold it"
}

// clean: every write holds mu, so the field earns a suggestion.
type clean struct {
	mu threads.Mutex
	v  int // want "suggestion: all 2 writes of clean.v hold mu"
}

func (c *clean) set(x int) {
	c.mu.Acquire()
	c.v = x
	c.mu.Release()
}

func (c *clean) clear() {
	c.mu.Acquire()
	c.v = 0
	c.mu.Release()
}

// loner has a single unguarded write: too little evidence either way.
type loner struct {
	mu threads.Mutex
	w  int
}

func (l *loner) poke() {
	l.w++
}
