// Dependency fixture for cross-package guardedby checking: the annotation
// lives here; violations are reported in the importing package.
package guardedbydepfix

import "threads"

// Box exports both the lock and the guarded field.
type Box struct {
	Mu threads.Mutex
	N  int //threads:guardedby Mu
}

// New returns an empty box.
func New() *Box { return &Box{} }

// Lock acquires the box's mutex on behalf of the caller, who must
// eventually release it.
func Lock(b *Box) {
	b.Mu.Acquire()
}
