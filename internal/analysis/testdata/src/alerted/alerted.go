// Fixture for the alerted analyzer.
package alertedfix

import (
	"time"

	"threads"
)

var (
	mu   threads.Mutex
	cond threads.Condition
	sem  threads.Semaphore

	ready bool
)

func discardedWait() {
	mu.Acquire()
	defer mu.Release()
	for !ready {
		cond.AlertWait(&mu) // want "result of cond.AlertWait is discarded"
	}
}

func discardedP() {
	sem.AlertP() // want "result of sem.AlertP is discarded"
}

func discardedTest() {
	threads.TestAlert() // want "result of threads.TestAlert is discarded"
}

func discardedParens() {
	(threads.TestAlert()) // want "result of threads.TestAlert is discarded"
}

func unobservableGo() {
	go sem.AlertP() // want "result of sem.AlertP is unobservable in go/defer position"
}

func handledWait() error {
	mu.Acquire()
	defer mu.Release()
	for !ready {
		if err := cond.AlertWait(&mu); err != nil {
			return err
		}
	}
	return nil
}

func handledP() error {
	return sem.AlertP()
}

func handledTest() {
	if threads.TestAlert() {
		ready = true
	}
}

func explicitDiscard() {
	_ = threads.TestAlert()
}

// The deadline variants return an error whose DeadlineExceeded/Alerted
// outcomes are the operations' point; discarding it is the same hazard.

func discardedWaitDeadline(deadline time.Time) {
	mu.Acquire()
	defer mu.Release()
	for !ready {
		cond.AlertWaitDeadline(&mu, deadline) // want "error of cond.AlertWaitDeadline is discarded"
	}
}

func discardedPDeadline(deadline time.Time) {
	sem.AlertPDeadline(deadline) // want "error of sem.AlertPDeadline is discarded"
}

func discardedAcquireDeadline(deadline time.Time) {
	mu.AcquireDeadline(deadline) // want "error of mu.AcquireDeadline is discarded"
	mu.Release()
}

func unobservableDeferDeadline(deadline time.Time) {
	defer sem.AlertPDeadline(deadline) // want "result of sem.AlertPDeadline is unobservable in go/defer position"
}

func handledWaitDeadline(deadline time.Time) error {
	mu.Acquire()
	defer mu.Release()
	for !ready {
		if err := cond.AlertWaitDeadline(&mu, deadline); err != nil {
			return err
		}
	}
	return nil
}

func handledAcquireDeadline(deadline time.Time) error {
	if err := mu.AcquireDeadline(deadline); err != nil {
		return err
	}
	mu.Release()
	return nil
}

func explicitDiscardDeadline(deadline time.Time) {
	_ = sem.AlertPDeadline(deadline)
}
