// Fixture for the alerted analyzer.
package alertedfix

import "threads"

var (
	mu   threads.Mutex
	cond threads.Condition
	sem  threads.Semaphore

	ready bool
)

func discardedWait() {
	mu.Acquire()
	defer mu.Release()
	for !ready {
		cond.AlertWait(&mu) // want "result of cond.AlertWait is discarded"
	}
}

func discardedP() {
	sem.AlertP() // want "result of sem.AlertP is discarded"
}

func discardedTest() {
	threads.TestAlert() // want "result of threads.TestAlert is discarded"
}

func discardedParens() {
	(threads.TestAlert()) // want "result of threads.TestAlert is discarded"
}

func unobservableGo() {
	go sem.AlertP() // want "result of sem.AlertP is unobservable in go/defer position"
}

func handledWait() error {
	mu.Acquire()
	defer mu.Release()
	for !ready {
		if err := cond.AlertWait(&mu); err != nil {
			return err
		}
	}
	return nil
}

func handledP() error {
	return sem.AlertP()
}

func handledTest() {
	if threads.TestAlert() {
		ready = true
	}
}

func explicitDiscard() {
	_ = threads.TestAlert()
}
