// Fixture for the prioritydiscipline analyzer: priority-API calls while an
// internal/spinlock lock is held.
package priofix

import (
	"threads"
	"threads/internal/core"
	"threads/internal/spinlock"
)

type sched struct {
	lock spinlock.Lock
	t    *threads.Thread
	m    *core.Mutex
}

func setUnderLock(s *sched) {
	s.lock.Lock()
	s.t.SetPriority(3) // want "Thread.SetPriority call while spin lock s.lock is held"
	s.lock.Unlock()
}

func setAfterUnlock(s *sched) {
	s.lock.Lock()
	s.lock.Unlock()
	s.t.SetPriority(3) // clean: the lock is no longer held
}

func inheritUnderLock(s *sched) {
	s.lock.Lock()
	s.m.SetPriorityInheritance(true) // want "Mutex.SetPriorityInheritance call while spin lock s.lock is held"
	s.lock.Unlock()
}

func forkPriUnderLock(s *sched) {
	s.lock.Lock()
	threads.ForkPri(2, noop) // want "ForkPri call while spin lock s.lock is held"
	s.lock.Unlock()
}

func forkNamedPriUnderLock(s *sched) {
	s.lock.Lock()
	core.ForkNamedPri("t", 2, noop) // want "ForkNamedPri call while spin lock s.lock is held"
	s.lock.Unlock()
}

func noop() {}

func boost(s *sched) {
	s.t.SetPriority(5)
}

func indirectBoost(s *sched) {
	boost(s)
}

func callBoostUnderLock(s *sched) {
	s.lock.Lock()
	boost(s) // want "call to boost, which performs Thread.SetPriority call"
	s.lock.Unlock()
}

func callIndirectBoostUnderLock(s *sched) {
	s.lock.Lock()
	indirectBoost(s) // want "call to indirectBoost, which performs Thread.SetPriority call"
	s.lock.Unlock()
}

func forkPlainUnderLock(s *sched) {
	s.lock.Lock()
	// Plain Fork carries no priority; nubdiscipline owns the general
	// no-allocation rule, so prioritydiscipline stays quiet here.
	threads.Fork(noop)
	s.lock.Unlock()
}
