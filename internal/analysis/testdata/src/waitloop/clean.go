// Fixture for the waitloop analyzer: clean cases.
package waitloopfix

func cleanFor(b *box) {
	b.mu.Acquire()
	for !b.done {
		b.cond.Wait(&b.mu)
	}
	b.mu.Release()
}

func cleanInfiniteFor(b *box) {
	b.mu.Acquire()
	defer b.mu.Release()
	for {
		if b.done {
			return
		}
		if err := b.cond.AlertWait(&b.mu); err != nil {
			return
		}
	}
}

func cleanIfInsideFor(b *box) {
	b.mu.Acquire()
	for !b.done {
		if b.done {
			continue
		}
		b.cond.Wait(&b.mu)
	}
	b.mu.Release()
}
