// Fixture for the waitloop analyzer: flagged cases.
package waitloopfix

import (
	"time"

	"threads"
)

type box struct {
	mu   threads.Mutex
	cond threads.Condition
	done bool
}

func bare(b *box) {
	b.mu.Acquire()
	defer b.mu.Release()
	b.cond.Wait(&b.mu) // want "is not inside a for loop"
}

func ifGuarded(b *box) {
	b.mu.Acquire()
	defer b.mu.Release()
	if !b.done {
		b.cond.Wait(&b.mu) // want "guarded by if, not re-tested in a loop"
	}
}

func alertNoLoop(b *box) error {
	b.mu.Acquire()
	defer b.mu.Release()
	err := b.cond.AlertWait(&b.mu) // want "is not inside a for loop"
	return err
}

func methodValue(b *box) {
	w := b.cond.Wait // want "captured as a method value"
	b.mu.Acquire()
	for !b.done {
		w(&b.mu)
	}
	b.mu.Release()
}

// A deadline does not excuse the loop: return from AlertWaitDeadline with
// a nil error is still only a hint.
func deadlineNoLoop(b *box, deadline time.Time) error {
	b.mu.Acquire()
	defer b.mu.Release()
	err := b.cond.AlertWaitDeadline(&b.mu, deadline) // want "is not inside a for loop"
	return err
}

func deadlineLooped(b *box, deadline time.Time) error {
	b.mu.Acquire()
	defer b.mu.Release()
	for !b.done {
		if err := b.cond.AlertWaitDeadline(&b.mu, deadline); err != nil {
			return err
		}
	}
	return nil
}

// A loop in the caller does not excuse a wait in a closure: the closure
// body is the unit the discipline applies to.
func closureNoLoop(b *box) {
	for i := 0; i < 3; i++ {
		func() {
			b.mu.Acquire()
			defer b.mu.Release()
			b.cond.Wait(&b.mu) // want "is not inside a for loop"
		}()
	}
}
