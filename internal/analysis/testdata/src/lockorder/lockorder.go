// Fixture for the lockorder analyzer (intraprocedural mode).
package lockorderfix

import "threads"

var (
	a threads.Mutex
	b threads.Mutex

	// c and d are only ever taken in one order: no cycle.
	c threads.Mutex
	d threads.Mutex
)

func work() {}

func abOrder() {
	a.Acquire()
	b.Acquire() // want "potential deadlock: lock-acquisition cycle"
	work()
	b.Release()
	a.Release()
}

func baOrder() {
	b.Acquire()
	a.Acquire()
	work()
	a.Release()
	b.Release()
}

func cdOrderOne() {
	c.Acquire()
	d.Acquire()
	work()
	d.Release()
	c.Release()
}

func cdOrderTwo() {
	threads.Lock(&c, func() {
		threads.Lock(&d, work)
	})
}

// Receiver fields are keyed class-wide: every *node pairs inner under
// outer, consistently, so no cycle.
type node struct {
	outer threads.Mutex
	inner threads.Mutex
}

func (n *node) nest() {
	n.outer.Acquire()
	n.inner.Acquire()
	n.inner.Release()
	n.outer.Release()
}
