// Fixture for the nubdiscipline analyzer: clean cases.
package nubfix

func cleanAtomic(n *nub) {
	n.lock.Lock()
	n.count.Add(1)
	n.buf[0] = 2
	n.lock.Unlock()
}

func cleanAfterUnlock(n *nub) {
	n.lock.Lock()
	n.count.Add(1)
	n.lock.Unlock()
	n.buf = append(n.buf, 1)
	n.ch <- 1
	n.cb()
}

func cleanTryLock(n *nub) {
	if n.lock.TryLock() {
		n.count.Add(1)
		n.lock.Unlock()
	}
	n.buf = make([]int, 3)
}

func cleanStraightCalls(n *nub) {
	grow(n)
	n.lock.Lock()
	n.count.Store(0)
	n.lock.Unlock()
}

type event struct{ seq uint64 }

// A value composite literal does not heap-allocate; only &literal is
// flagged.
func cleanValueLiteral(n *nub) event {
	n.lock.Lock()
	ev := event{seq: n.count.Load()}
	n.lock.Unlock()
	return ev
}
