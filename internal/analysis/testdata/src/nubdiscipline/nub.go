// Fixture for the nubdiscipline analyzer: discipline violations while an
// internal/spinlock lock is held.
package nubfix

import (
	"fmt"
	"sync/atomic"

	"threads/internal/spinlock"
)

type nub struct {
	lock  spinlock.Lock
	count atomic.Uint64
	buf   []int
	ch    chan int
	cb    func()
	name  string
}

func appendUnderLock(n *nub) {
	n.lock.Lock()
	n.buf = append(n.buf, 1) // want "allocation \(append may grow\) while spin lock n.lock is held"
	n.lock.Unlock()
}

func makeUnderLock(n *nub) {
	n.lock.Lock()
	n.buf = make([]int, 4) // want "allocation \(make\) while spin lock n.lock is held"
	n.lock.Unlock()
}

func sendUnderLock(n *nub) {
	n.lock.Lock()
	n.ch <- 1 // want "channel send while spin lock n.lock is held"
	n.lock.Unlock()
}

func receiveUnderLock(n *nub) int {
	n.lock.Lock()
	v := <-n.ch // want "channel receive while spin lock n.lock is held"
	n.lock.Unlock()
	return v
}

func callbackUnderLock(n *nub) {
	n.lock.Lock()
	n.cb() // want "indirect call through a function value \(callback\) while spin lock n.lock is held"
	n.lock.Unlock()
}

func closureUnderLock(n *nub) {
	n.lock.Lock()
	f := func() {} // want "allocation \(closure\) while spin lock n.lock is held"
	_ = f
	n.lock.Unlock()
}

func printUnderLock(n *nub) {
	n.lock.Lock()
	fmt.Println(n.name) // want "fmt.Println call \(I/O\) while spin lock n.lock is held"
	n.lock.Unlock()
}

func concatUnderLock(n *nub) {
	n.lock.Lock()
	n.name = n.name + "!" // want "allocation \(string concatenation\) while spin lock n.lock is held"
	n.lock.Unlock()
}

func grow(n *nub) {
	n.buf = append(n.buf, 0)
}

func indirectGrow(n *nub) {
	grow(n)
}

func callGrowUnderLock(n *nub) {
	n.lock.Lock()
	grow(n) // want "call to grow, which performs allocation \(append may grow\)"
	n.lock.Unlock()
}

func callIndirectGrowUnderLock(n *nub) {
	n.lock.Lock()
	indirectGrow(n) // want "call to indirectGrow, which performs"
	n.lock.Unlock()
}
