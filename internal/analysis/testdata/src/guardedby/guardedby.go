// Fixture for the guardedby analyzer's annotated mode: //threads:guardedby
// on fields and package variables, //threads:guards on locks, TryAcquire
// path sensitivity, deferred Release, fresh allocations, and the
// stale-across-Wait window.
package guardedbyfix

import "threads"

// counter annotates the data field.
type counter struct {
	mu threads.Mutex
	n  int //threads:guardedby mu
}

func (c *counter) inc() {
	c.mu.Acquire()
	c.n++
	c.mu.Release()
}

// deferred Release keeps the guard held to every exit.
func (c *counter) incDefer() {
	c.mu.Acquire()
	defer c.mu.Release()
	c.n++
}

func (c *counter) badRead() int {
	return c.n // want "read of c.n without mu held"
}

// TryAcquire: the lock is held only on the success branch.
func (c *counter) tryInc() bool {
	if c.mu.TryAcquire() {
		c.n++
		c.mu.Release()
		return true
	}
	return false
}

// On the failure branch the guard is not held.
func (c *counter) badTryInc() {
	if !c.mu.TryAcquire() {
		c.n = 0 // want "write of c.n without mu held"
		return
	}
	c.n++
	c.mu.Release()
}

// A brand-new object is unshared: initialization needs no lock.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// gauge annotates from the lock side.
type gauge struct {
	mu    threads.Mutex //threads:guards level
	low   threads.Condition
	level int
}

func (g *gauge) set(v int) {
	g.mu.Acquire()
	g.level = v
	g.mu.Release()
}

func (g *gauge) badPeek() int {
	return g.level // want "read of g.level without mu held"
}

// cell exercises the Wait window: a local loaded from a guarded field
// before Wait may be stale after Wait returns.
type cell struct {
	mu    threads.Mutex
	ready threads.Condition
	val   int //threads:guardedby mu
}

func (c *cell) waitStale() int {
	c.mu.Acquire()
	v := c.val
	for v == 0 {
		c.ready.Wait(&c.mu)
	}
	c.mu.Release()
	return v // want "use of v, loaded from c.val before Wait released mu"
}

// The correct shape: re-examine the field itself after Wait.
func (c *cell) waitFresh() int {
	c.mu.Acquire()
	for c.val == 0 {
		c.ready.Wait(&c.mu)
	}
	v := c.val
	c.mu.Release()
	return v
}

// Wait on a mutex that guards annotated data, without holding it.
func (c *cell) badWait() {
	c.ready.Wait(&c.mu) // want "Wait with mutex c.mu not held"
}

// Package-level variables bind to a package-level lock.
var (
	gmu  threads.Mutex
	hits int //threads:guardedby gmu
)

func bump() {
	gmu.Acquire()
	hits++
	gmu.Release()
}

func badBump() {
	hits++ // want "write of hits without gmu held"
}
