// Fixture for the //threadsvet:ignore directive: suppression on the same
// line and on the line above, plus the malformed / unknown-analyzer /
// unused cases, which are themselves findings.
package ignorefix

import "threads"

var (
	mu   threads.Mutex
	cond threads.Condition
	busy bool
)

func suppressedSameLine() {
	mu.Acquire()
	defer mu.Release()
	cond.Wait(&mu) //threadsvet:ignore waitloop: adapter method; callers loop (fixture)
}

func suppressedAbove() {
	mu.Acquire()
	defer mu.Release()
	//threadsvet:ignore waitloop: single-shot litmus; hint semantics exercised deliberately (fixture)
	cond.Wait(&mu)
}

func notSuppressed() {
	mu.Acquire()
	defer mu.Release()
	cond.Wait(&mu) // want "is not inside a for loop"
}

func malformedNoReason() {
	mu.Acquire()
	defer mu.Release()
	cond.Wait(&mu) //threadsvet:ignore waitloop // want "malformed ignore directive" "is not inside a for loop"
}

func unknownAnalyzer() {
	mu.Acquire()
	defer mu.Release()
	cond.Wait(&mu) //threadsvet:ignore nosuchcheck: whatever // want "unknown analyzer" "is not inside a for loop"
}

func unusedDirective() {
	mu.Acquire()
	for busy {
		//threadsvet:ignore waitloop: nothing to suppress here // want "suppresses nothing"
		cond.Wait(&mu)
	}
	mu.Release()
}
