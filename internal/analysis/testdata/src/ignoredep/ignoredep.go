// Dependency fixture for the cross-package ignore-directive regression:
// the directive below justifies a violation that is only ever reported in
// the importing package (this package holds no spin lock itself). The
// driver must count it as used — not stale — because the finding it
// suppresses carries this origin as a related position.
package ignoredepfix

// Grow appends, which may allocate; callers run it under a spin lock on
// purpose in this fixture.
func Grow(s []int) []int {
	//threadsvet:ignore nubdiscipline: fixture justification; the append is deliberate
	return append(s, 1)
}
