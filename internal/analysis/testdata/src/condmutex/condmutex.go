// Fixture for the condmutex analyzer.
package condmutexfix

import (
	"time"

	"threads"
)

var (
	muA threads.Mutex
	muB threads.Mutex
	c   threads.Condition

	state int
)

func waitA() {
	muA.Acquire()
	for state == 0 {
		c.Wait(&muA)
	}
	muA.Release()
}

func waitB() {
	muB.Acquire()
	for state == 0 {
		c.Wait(&muB) // want "condition c is waited on with mutex muB here but with mutex muA"
	}
	muB.Release()
}

// Receiver fields unify across methods of the same type: both sites pair
// p.cv with p.mu, so this is clean.
type pair struct {
	mu threads.Mutex
	cv threads.Condition
	ok bool
}

func (p *pair) one() {
	p.mu.Acquire()
	for !p.ok {
		p.cv.Wait(&p.mu)
	}
	p.mu.Release()
}

func (p *pair) two() {
	p.mu.Acquire()
	for !p.ok {
		if err := p.cv.AlertWait(&p.mu); err != nil {
			break
		}
	}
	p.mu.Release()
}

// A second mutex against a receiver-field condition is caught across
// methods.
type broken struct {
	mu    threads.Mutex
	other threads.Mutex
	cv    threads.Condition
	ok    bool
}

func (b *broken) good() {
	b.mu.Acquire()
	for !b.ok {
		b.cv.Wait(&b.mu)
	}
	b.mu.Release()
}

func (b *broken) bad() {
	b.other.Acquire()
	for !b.ok {
		b.cv.Wait(&b.other) // want "condition b.cv is waited on with mutex b.other here but with mutex b.mu"
	}
	b.other.Release()
}

// Deadline waits are pairing sites too: an AlertWaitDeadline naming a
// different mutex than the condition's established one is the same bug.
func waitDeadlineB(deadline time.Time) {
	muB.Acquire()
	for state == 0 {
		if err := c.AlertWaitDeadline(&muB, deadline); err != nil { // want "condition c is waited on with mutex muB here but with mutex muA"
			break
		}
	}
	muB.Release()
}

func source() *threads.Condition { return &c }

// A condition with no stable identity cannot be checked: conservatively
// reported, not passed.
func unanalyzable(m *threads.Mutex) {
	m.Acquire()
	for state == 0 {
		source().Wait(m) // want "cannot statically resolve the condition/mutex pair"
	}
	m.Release()
}
