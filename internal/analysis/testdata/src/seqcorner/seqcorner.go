// Fixture pinning seqwalk corner cases for lockpair: defer-Release inside
// loops, early return after TryAcquire failure, and method-value call
// sites crossing package boundaries.
package seqcornerfix

import (
	"threads"

	dep "threads/internal/analysis/testdata/src/seqcornerdep"
)

// Deferred releases inside a loop run at function exit, one per
// iteration: every acquire is covered, so the walker (which treats loop
// bodies as may-execute) reports nothing.
func deferInLoop(ms []*threads.Mutex) {
	for _, m := range ms {
		m.Acquire()
		defer m.Release()
	}
}

// A deferred Release covers early returns.
func deferEarly(m *threads.Mutex, c bool) {
	m.Acquire()
	defer m.Release()
	if c {
		return
	}
}

// TryAcquire failure exits without the lock: clean.
func tryEarly(m *threads.Mutex) bool {
	if !m.TryAcquire() {
		return false
	}
	m.Release()
	return true
}

// TryAcquire success that never releases leaks on the success path only.
func tryLeak(m *threads.Mutex) {
	if m.TryAcquire() { // want "TryAcquire of m succeeded on this path but no Release matches"
		return
	}
}

// A direct cross-package call applies the callee's summary: Enter returns
// holding the guard's mutex, and nothing here releases it.
func directLeak(g *dep.Guard) {
	g.Enter() // want "this call returns holding"
}

// Bracketed helpers are clean through their summaries.
func directBracket(g *dep.Guard) {
	g.Enter()
	g.Exit()
}

// A method value erases the callee: the call is opaque to the summary
// engine (the resolver tracks method values of the threads API only), so
// neither the leak nor the bracket is modeled. Pinned as the documented
// approximation.
func methodValueOpaque(g *dep.Guard) {
	enter := g.Enter
	enter()
}
