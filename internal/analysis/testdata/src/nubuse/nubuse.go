// Fixture for cross-package nubdiscipline checking: the allocation is
// inside nubdep.Grow, reachable only through its summary. A same-package
// run of this package alone reports nothing (nubdiscipline_test.go pins
// that miss).
package nubusefix

import (
	dep "threads/internal/analysis/testdata/src/nubdep"
	"threads/internal/spinlock"
)

var (
	lk  spinlock.Lock
	buf []int
)

func bad() {
	lk.Lock()
	buf = dep.Grow(buf) // want "call to Grow, which performs allocation"
	lk.Unlock()
}

func good() {
	lk.Lock()
	buf[0] = 1
	lk.Unlock()
	buf = dep.Grow(buf)
}
