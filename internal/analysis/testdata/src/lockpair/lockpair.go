// Fixture for the lockpair analyzer: flagged cases.
package lockpairfix

import (
	"time"

	"threads"
)

var mu threads.Mutex

func work() {}

func leakOnEarlyReturn(x bool) {
	mu.Acquire() // want "not matched by a Release on the path leaving the function"
	if x {
		return
	}
	mu.Release()
}

func leakNoRelease() {
	mu.Acquire() // want "not matched by a Release on the path leaving the function"
	work()
}

func releaseWithoutHold() {
	mu.Release() // want "Release of mu which this path has not acquired"
}

func doubleRelease() {
	mu.Acquire()
	mu.Release()
	mu.Release() // want "Release of mu which this path has not acquired"
}

func doubleAcquire() {
	mu.Acquire()
	mu.Acquire() // want "second Acquire of mu while already held"
	mu.Release()
}

// AcquireDeadline acquires only when it returns nil, so the walker treats
// the mutex as maybe-held: the Release on the success path is not flagged,
// and neither is the error path that never acquired.
func deadlineAcquire(deadline time.Time) error {
	if err := mu.AcquireDeadline(deadline); err != nil {
		return err
	}
	mu.Release()
	return nil
}

type guarded struct {
	mu threads.Mutex
	n  int
}

func (g *guarded) leakField(x bool) {
	g.mu.Acquire() // want "not matched by a Release on the path leaving the function"
	if x {
		g.n++
		return
	}
	g.n--
	g.mu.Release()
}
