// Fixture for the lockpair analyzer: clean cases the path-sensitive walk
// must not flag.
package lockpairfix

import "threads"

func cleanStraight() {
	mu.Acquire()
	work()
	mu.Release()
}

func cleanDefer() {
	mu.Acquire()
	defer mu.Release()
	work()
}

func cleanDeferredClosure() {
	mu.Acquire()
	defer func() {
		work()
		mu.Release()
	}()
	work()
}

func cleanBranches(x bool) {
	mu.Acquire()
	if x {
		mu.Release()
		return
	}
	work()
	mu.Release()
}

func cleanLexical() {
	threads.Lock(&mu, func() {
		work()
	})
}

func cleanTryAcquire() {
	if mu.TryAcquire() {
		work()
		mu.Release()
	}
}

func cleanTryAcquireNegated() {
	if !mu.TryAcquire() {
		return
	}
	work()
	mu.Release()
}

// After the if/else join the lock is held on every path; the Release
// matches on both.
func cleanJoin(x bool) {
	if x {
		mu.Acquire()
	} else {
		mu.Acquire()
	}
	mu.Release()
}

// Held on only one arm: "maybe held" after the join, so neither the
// Release (maybe-held is accepted) nor the exit (maybe is never a leak)
// is reported — false negatives over path-insensitive noise.
func maybeHeld(x bool) {
	if x {
		mu.Acquire()
	}
	if x {
		mu.Release()
	}
}

func cleanPanicPath(x bool) {
	mu.Acquire()
	if x {
		mu.Release()
		panic("give up")
	}
	mu.Release()
}
