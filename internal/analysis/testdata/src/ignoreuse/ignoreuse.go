// Fixture for the cross-package ignore-directive regression: the
// spin-locked call reaches ignoredep.Grow's append, and the origin-side
// directive there suppresses the finding reported here.
package ignoreusefix

import (
	dep "threads/internal/analysis/testdata/src/ignoredep"
	"threads/internal/spinlock"
)

var (
	lk  spinlock.Lock
	buf []int
)

func covered() {
	lk.Lock()
	buf = dep.Grow(buf)
	lk.Unlock()
}
