// Fixture for call-site resolution: dot import.
package resolverfix

import . "threads"

var (
	dotMu   Mutex
	dotCond Condition
	dotDone bool
)

func dotWait() {
	dotMu.Acquire()
	for !dotDone {
		dotCond.Wait(&dotMu)
	}
	dotMu.Release()
	Lock(&dotMu, func() {
		dotDone = false
	})
	_ = TestAlert()
}
