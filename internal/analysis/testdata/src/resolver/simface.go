// Fixture for call-site resolution: the simulator face, whose methods take
// a *sim.Env first, shifting the mutex argument of Wait/AlertWait to
// position one.
package resolverfix

import (
	"threads/internal/sim"
	"threads/internal/simthreads"
)

var simReady bool

func simWait(w *simthreads.World, e *sim.Env, m *simthreads.Mutex, c *simthreads.Condition) {
	m.Acquire(e)
	for !simReady {
		c.Wait(e, m)
	}
	m.Release(e)
}
