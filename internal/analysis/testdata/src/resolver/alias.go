// Fixture for call-site resolution: aliased import.
package resolverfix

import th "threads"

var (
	aliasMu    th.Mutex
	aliasCond  th.Condition
	aliasSem   th.Semaphore
	aliasReady bool
)

func aliasWait() {
	aliasMu.Acquire()
	for !aliasReady {
		if err := aliasCond.AlertWait(&aliasMu); err != nil {
			break
		}
	}
	aliasMu.Release()
	aliasSem.V()
}
