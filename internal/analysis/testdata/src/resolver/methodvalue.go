// Fixture for call-site resolution: a tracked method captured as a method
// value. The call through w is not statically resolvable; the capture
// itself must surface in Pass.MethodVals so analyzers can report the
// discipline as unanalyzable instead of silently passing it.
package resolverfix

import "threads"

func methodVal(c *threads.Condition, m *threads.Mutex, ok *bool) {
	w := c.AlertWait // want "captured as a method value"
	m.Acquire()
	for !*ok {
		if err := w(m); err != nil {
			break
		}
	}
	m.Release()
}
