// Dependency fixture for the seqwalk corner cases: a type whose methods
// acquire and release on the caller's behalf, referenced from seqcorner
// both as direct calls (summaries apply) and as method values (opaque).
package seqcornerdepfix

import "threads"

// Guard wraps a mutex behind enter/exit methods.
type Guard struct {
	Mu threads.Mutex
}

// Enter acquires the guard's mutex on behalf of the caller.
func (g *Guard) Enter() {
	g.Mu.Acquire() // want "not matched by a Release on the path leaving the function"
}

// Exit releases the caller's hold.
func (g *Guard) Exit() {
	g.Mu.Release() // want "Release of g.Mu which this path has not acquired"
}
