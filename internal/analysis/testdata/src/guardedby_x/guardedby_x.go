// Fixture for cross-package guardedby checking: the guarded field and its
// annotation are declared in guardedby_dep; this package's accesses are
// checked against it. Coverage is interprocedural in both directions — a
// callee that returns holding the guard covers accesses after the call,
// and a helper whose every caller holds the guard is covered at entry.
package guardedbyxfix

import dep "threads/internal/analysis/testdata/src/guardedby_dep"

func good(b *dep.Box) {
	b.Mu.Acquire()
	b.N++
	b.Mu.Release()
}

func bad(b *dep.Box) int {
	return b.N // want "read of b.N without Mu held"
}

// viaHelper is covered by dep.Lock's summary: the call returns holding Mu.
func viaHelper(b *dep.Box) {
	dep.Lock(b)
	b.N = 7
	b.Mu.Release()
}

// addLocked's only caller holds Mu at the call site, so the entry-held
// fixpoint covers the unlocked-looking access.
func addLocked(b *dep.Box) {
	b.N++
}

func caller(b *dep.Box) {
	b.Mu.Acquire()
	addLocked(b)
	b.Mu.Release()
}
