package analysis

import "testing"

func TestAlerted(t *testing.T) {
	runFixture(t, "alerted", Alerted, nil)
}
