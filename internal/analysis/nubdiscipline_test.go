package analysis

import "testing"

func TestNubDiscipline(t *testing.T) {
	runFixture(t, "nubdiscipline", NubDiscipline, nil)
}
