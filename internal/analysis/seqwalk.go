package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the sequential abstract interpreter shared by the
// lockpair, lockorder and nubdiscipline analyzers: an execution-order walk
// over a function body that tracks which mutexes and spin locks are held
// along each path. Branches fork the state and join it back as the
// intersection of definitely-held locks (locks held on only some incoming
// paths degrade to "maybe held", about which the analyzers stay silent —
// path-insensitivity must produce false negatives, never false positives).
// Loop bodies are walked once with a forked state and do not leak lock-state
// changes past the loop.

// lockRef is the walker's resolution of the lock or condition a call site
// operates on.
type lockRef struct {
	key      string // object-identity key (RefKey with nil typeRoots)
	classKey string // type-rooted key (receiver/params) for same-class matching
	uniKey   string // fully type-rooted key (universalKey) for cross-package matching
	display  string // source-like rendering for diagnostics
	ok       bool
}

// holdInfo describes one held lock.
type holdInfo struct {
	site     *CallSite
	ref      lockRef
	deferred bool // a deferred Release/Unlock covers this lock
}

// holds is the per-path lock state.
type holds struct {
	def   map[string]holdInfo // definitely held
	maybe map[string]holdInfo // held on some, not all, joined paths
	// ext is opaque per-path client state (the guardedby analyzer tracks
	// values loaded from guarded fields here, the summary engine tracks
	// releases of locks the function never acquired). Cloned on path fork;
	// joined by intersection — an entry survives a join only when both
	// sides carry the same (comparable) value, the def-like degradation.
	ext map[string]any
}

func newHolds() *holds {
	return &holds{def: map[string]holdInfo{}, maybe: map[string]holdInfo{}}
}

func (h *holds) clone() *holds {
	c := newHolds()
	for k, v := range h.def {
		c.def[k] = v
	}
	for k, v := range h.maybe {
		c.maybe[k] = v
	}
	if h.ext != nil {
		c.ext = make(map[string]any, len(h.ext))
		for k, v := range h.ext {
			c.ext[k] = v
		}
	}
	return c
}

// setExt records client state on the current path.
func (h *holds) setExt(key string, v any) {
	if h.ext == nil {
		h.ext = make(map[string]any)
	}
	h.ext[key] = v
}

// join merges two path states: definite stays definite only when held on
// both sides; everything else degrades to maybe.
func join(a, b *holds) *holds {
	j := newHolds()
	for k, v := range a.def {
		if _, ok := b.def[k]; ok {
			j.def[k] = v
		} else {
			j.maybe[k] = v
		}
	}
	for k, v := range b.def {
		if _, ok := a.def[k]; !ok {
			j.maybe[k] = v
		}
	}
	for k, v := range a.maybe {
		j.maybe[k] = v
	}
	for k, v := range b.maybe {
		if _, ok := j.maybe[k]; !ok {
			j.maybe[k] = v
		}
	}
	for k := range j.def {
		delete(j.maybe, k)
	}
	if a.ext != nil && b.ext != nil {
		for k, v := range a.ext {
			bv, ok := b.ext[k]
			if !ok {
				continue
			}
			if bv == v {
				j.setExt(k, v)
				continue
			}
			// A guarded load that went stale on either branch is stale at
			// the join: staleness is a may-property of the Wait window
			// (a loop around Wait joins its zero-iteration path here).
			if av, aok := v.(loadVal); aok {
				if blv, bok := bv.(loadVal); bok && av.sameSource(blv) {
					if av.stale == 0 {
						av.stale = blv.stale
					}
					j.setExt(k, av)
				}
			}
		}
	}
	return j
}

// absorbStale carries loadVal staleness out of a loop body whose lock
// state is otherwise discarded (loops are walked as may-execute): a Wait
// inside the body released and re-acquired the guard, so a local loaded
// before the loop may be stale after it even on the path that iterated.
func absorbStale(st, body *holds) {
	for k, v := range body.ext {
		blv, ok := v.(loadVal)
		if !ok || blv.stale == 0 {
			continue
		}
		if av, ok := st.ext[k].(loadVal); ok && av.sameSource(blv) && av.stale == 0 {
			av.stale = blv.stale
			st.setExt(k, av)
		}
	}
}

// seqClient receives walk events. All hooks are optional (may be nil).
type seqClient struct {
	// call fires for every tracked call site, in execution order, with the
	// state as of the call (before the walker's own transition). ref
	// resolves the subject lock: the receiver for Acquire/Release/spin ops,
	// the mutex argument for Wait/AlertWait/Lock.
	call func(site *CallSite, ref lockRef, st *holds)
	// node fires pre-order for statements and for every expression node
	// evaluated within them (function literal bodies excluded — those are
	// walked as independent functions). Returning false skips children.
	node func(n ast.Node, st *holds) bool
	// exit fires once per path leaving the function: at each return, and at
	// the end of the body if it is reachable. Nested function literals have
	// their own exits; clients that want per-declaration exits track depth
	// with enterFunc/leaveFunc.
	exit func(pos token.Pos, st *holds)
	// enterFunc/leaveFunc bracket each function walked: the declaration
	// itself and every nested literal. fresh reports that the literal runs
	// on another thread (go statement, Fork argument) and so starts with no
	// inherited lock state; other literals inherit the creation site's
	// locks as maybe-held.
	enterFunc func(fn ast.Node, fresh bool)
	leaveFunc func(fn ast.Node)
}

// seqWalker drives seqClient over one function at a time. With sums set,
// calls to module-local functions outside the tracked API apply that
// callee's summary effects (locks held at return appear, locks it releases
// on behalf of the caller disappear) — this is what makes the lockpair,
// nubdiscipline and guardedby walks interprocedural.
type seqWalker struct {
	pass   *Pass
	client seqClient
	sums   *Summaries

	typeRoots map[*types.Var]bool // of the function being walked
	freshLits bool                // literals in scope run on another thread
}

// walkFunc analyzes fn (a *ast.FuncDecl or *ast.FuncLit) as an independent
// function: fresh lock state, own exits. Nested function literals recurse.
func (w *seqWalker) walkFunc(fn ast.Node) {
	w.walkFuncState(fn, newHolds(), true)
}

func (w *seqWalker) walkFuncState(fn ast.Node, st *holds, fresh bool) {
	var body *ast.BlockStmt
	switch d := fn.(type) {
	case *ast.FuncDecl:
		body = d.Body
	case *ast.FuncLit:
		body = d.Body
	}
	if body == nil {
		return
	}
	saved, savedFresh := w.typeRoots, w.freshLits
	w.typeRoots = TypeRoots(w.pass.Pkg.Info, fn)
	w.freshLits = false
	defer func() { w.typeRoots, w.freshLits = saved, savedFresh }()

	if w.client.enterFunc != nil {
		w.client.enterFunc(fn, fresh)
	}
	if w.client.leaveFunc != nil {
		defer w.client.leaveFunc(fn)
	}
	if !w.walkStmts(body.List, st) {
		if w.client.exit != nil {
			w.client.exit(body.Rbrace, st)
		}
	}
}

// litSeed is the lock state a function literal starts from: empty when it
// runs on another thread, otherwise the creation site's locks degraded to
// maybe-held (the literal may run later, when they are no longer held — but
// an immediate call under the lock is common enough that dropping them
// entirely would flag correct code in the guardedby analyzer).
func (w *seqWalker) litSeed(st *holds) *holds {
	if w.freshLits {
		return newHolds()
	}
	seed := newHolds()
	for k, v := range st.def {
		v.deferred = false
		seed.maybe[k] = v
	}
	for k, v := range st.maybe {
		seed.maybe[k] = v
	}
	return seed
}

func (w *seqWalker) walkStmts(list []ast.Stmt, st *holds) (terminated bool) {
	for _, s := range list {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

// walkStmt returns true when the path terminates (return, panic, break…):
// the caller must not treat the fall-through state as reachable.
func (w *seqWalker) walkStmt(s ast.Stmt, st *holds) (terminated bool) {
	if w.client.node != nil {
		w.client.node(s, st)
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.walkExprStmt(s, st)

	case *ast.AssignStmt:
		w.exprs(st, s.Rhs...)
		w.exprs(st, s.Lhs...)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(st, vs.Values...)
				}
			}
		}

	case *ast.IncDecStmt:
		w.exprs(st, s.X)

	case *ast.SendStmt:
		w.exprs(st, s.Chan, s.Value)

	case *ast.DeferStmt:
		w.walkDefer(s, st)

	case *ast.GoStmt:
		// The spawned goroutine holds none of this thread's locks: literals
		// here start from empty state.
		savedFresh := w.freshLits
		w.freshLits = true
		w.exprs(st, s.Call.Fun)
		w.exprs(st, s.Call.Args...)
		w.freshLits = savedFresh

	case *ast.ReturnStmt:
		w.exprs(st, s.Results...)
		if w.client.exit != nil {
			w.client.exit(s.Pos(), st)
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave the current path; joining their state
		// into the enclosing loop's exit is beyond this walker, so the path
		// simply ends (false negatives, never false positives).
		return true

	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.IfStmt:
		return w.walkIf(s, st)

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.exprs(st, s.Cond)
		}
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		absorbStale(st, body)

	case *ast.RangeStmt:
		w.exprs(st, s.X)
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		absorbStale(st, body)

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.exprs(st, s.Tag)
		}
		return w.walkCases(s.Body, st, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		return w.walkCases(s.Body, st, false)

	case *ast.SelectStmt:
		return w.walkCases(s.Body, st, true)
	}
	return false
}

// walkCases forks the state per case clause and joins the survivors. When
// no default clause exists (switch only; a default-less select just blocks),
// the pre-switch state joins in too, since no case may match.
func (w *seqWalker) walkCases(body *ast.BlockStmt, st *holds, isSelect bool) bool {
	var out *holds
	hasDefault := false
	for _, cs := range body.List {
		branch := st.clone()
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			w.exprs(branch, c.List...)
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(c.Comm, branch)
			}
			stmts = c.Body
		}
		if !w.walkStmts(stmts, branch) {
			if out == nil {
				out = branch
			} else {
				out = join(out, branch)
			}
		}
	}
	if !hasDefault && !isSelect {
		if out == nil {
			out = st.clone()
		} else {
			out = join(out, st)
		}
	}
	if out == nil {
		return true // every branch terminated
	}
	*st = *out
	return false
}

// walkIf handles the TryAcquire/TryLock conditional-acquire idioms:
//
//	if m.TryAcquire() { …held… }
//	if !m.TryAcquire() { return }; …held…
func (w *seqWalker) walkIf(s *ast.IfStmt, st *holds) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, st)
	}
	w.exprs(st, s.Cond)

	thenSt, elseSt := st.clone(), st.clone()
	cond := ast.Unparen(s.Cond)
	negated := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond, negated = ast.Unparen(u.X), true
	}
	if call, ok := cond.(*ast.CallExpr); ok {
		if site, ok := w.pass.Site(call); ok && (site.Op == OpTryAcquire || site.Op == OpSpinTryLock || site.Op == OpTryP) {
			if ref := w.refOf(site); ref.ok {
				target := thenSt
				if negated {
					target = elseSt
				}
				target.def[ref.key] = holdInfo{site: site, ref: ref}
				delete(target.maybe, ref.key)
			}
		}
	}

	termThen := w.walkStmts(s.Body.List, thenSt)
	termElse := false
	if s.Else != nil {
		termElse = w.walkStmt(s.Else, elseSt)
	}
	switch {
	case termThen && termElse:
		return true
	case termThen:
		*st = *elseSt
	case termElse:
		*st = *thenSt
	default:
		*st = *join(thenSt, elseSt)
	}
	return false
}

// walkExprStmt applies lock-state transitions for statement-level calls.
func (w *seqWalker) walkExprStmt(s *ast.ExprStmt, st *holds) bool {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		w.exprs(st, s.X)
		return false
	}
	if site, ok := w.pass.Site(call); ok {
		switch site.Op {
		case OpAcquire, OpSpinLock:
			w.exprs(st, s.X)
			if ref := w.refOf(site); ref.ok {
				st.def[ref.key] = holdInfo{site: site, ref: ref}
				delete(st.maybe, ref.key)
			}
			return false
		case OpRelease, OpSpinUnlock:
			w.exprs(st, s.X)
			if ref := w.refOf(site); ref.ok {
				delete(st.def, ref.key)
				delete(st.maybe, ref.key)
				// A direct release also discharges a hold acquired through a
				// callee (summary effects key by lock class).
				if ref.uniKey != "" {
					delete(st.def, effKey(ref.uniKey))
					delete(st.maybe, effKey(ref.uniKey))
				}
			}
			return false
		case OpLock:
			// threads.Lock(&m, func(){…}): the body runs holding m and the
			// pairing is the construct's own (panic-safe) responsibility.
			w.exprs(st, site.MutexArg)
			ref := w.refOf(site)
			if w.client.call != nil {
				w.client.call(site, ref, st)
			}
			if lit, ok := ast.Unparen(site.BodyArg).(*ast.FuncLit); ok {
				inner := st.clone()
				if ref.ok {
					inner.def[ref.key] = holdInfo{site: site, ref: ref}
					delete(inner.maybe, ref.key)
				}
				w.walkStmts(lit.Body.List, inner)
			} else if site.BodyArg != nil {
				w.exprs(st, site.BodyArg)
			}
			return false
		}
	}
	w.exprs(st, s.X)
	// A statement-level call that cannot return terminates the path.
	return terminatesPath(w.pass.Pkg.Info, call)
}

// walkDefer records deferred releases: `defer m.Release()` directly,
// releases inside a deferred closure, or a deferred call to a module-local
// function whose summary says it releases the lock (defer mon.Exit()).
func (w *seqWalker) walkDefer(s *ast.DeferStmt, st *holds) {
	markDeferred := func(site *CallSite) {
		if ref := w.refOf(site); ref.ok {
			if h, ok := st.def[ref.key]; ok {
				h.deferred = true
				st.def[ref.key] = h
			}
			if ref.uniKey != "" {
				markDeferredClass(st, ref.uniKey)
			}
		}
	}
	markSummaryReleases := func(call *ast.CallExpr) {
		if w.sums == nil {
			return
		}
		fn, ok := Callee(w.pass.Pkg.Info, call).(*types.Func)
		if !ok {
			return
		}
		if sum := w.sums.effects(fn); sum != nil {
			for ck := range sum.Releases {
				markDeferredClass(st, ck)
			}
		}
	}
	if site, ok := w.pass.Site(s.Call); ok {
		if w.client.call != nil {
			w.client.call(site, w.refOf(site), st)
		}
		if site.Op == OpRelease || site.Op == OpSpinUnlock {
			markDeferred(site)
		}
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		// Deferred closure: runs at function exit with the exit-time state,
		// so scan it for releases rather than walking it as a fresh path.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if site, ok := w.pass.Site(call); ok {
					if site.Op == OpRelease || site.Op == OpSpinUnlock {
						markDeferred(site)
					}
				} else {
					markSummaryReleases(call)
				}
			}
			return true
		})
		return
	}
	markSummaryReleases(s.Call)
	w.exprs(st, s.Call.Args...)
}

// effKey keys a hold acquired through a callee's summary rather than a
// direct tracked call: there is no object-identity key at the caller, only
// the lock class (summaries speak universal keys).
func effKey(uniKey string) string { return "eff:" + uniKey }

// hasClassHeld reports whether any held entry (def or maybe) is of the
// given lock class (universal key).
func hasClassHeld(st *holds, uniKey string) bool {
	if uniKey == "" {
		return false
	}
	for _, h := range st.def {
		if h.ref.uniKey == uniKey {
			return true
		}
	}
	for _, h := range st.maybe {
		if h.ref.uniKey == uniKey {
			return true
		}
	}
	return false
}

func releaseClass(st *holds, uniKey string) {
	for k, h := range st.def {
		if h.ref.uniKey == uniKey {
			delete(st.def, k)
		}
	}
	for k, h := range st.maybe {
		if h.ref.uniKey == uniKey {
			delete(st.maybe, k)
		}
	}
}

func markDeferredClass(st *holds, uniKey string) {
	for k, h := range st.def {
		if h.ref.uniKey == uniKey {
			h.deferred = true
			st.def[k] = h
		}
	}
}

// applyCallEffects applies the lock-state effects of an untracked call to a
// module-local function, per its interprocedural summary: locks the callee
// still holds at return join the caller's definitely-held set (keyed by
// class, reported against this call site), and locks the callee releases
// on the caller's behalf leave it. A release of a lock the caller does not
// hold is remembered in ext so the caller's own summary propagates it
// further up.
func (w *seqWalker) applyCallEffects(call *ast.CallExpr, st *holds) {
	if w.sums == nil {
		return
	}
	fn, ok := Callee(w.pass.Pkg.Info, call).(*types.Func)
	if !ok {
		return
	}
	sum := w.sums.effects(fn)
	if sum == nil {
		return
	}
	for ck, ri := range sum.Releases {
		if hasClassHeld(st, ck) {
			releaseClass(st, ck)
		} else {
			st.setExt(extRelease+ck, ri)
		}
	}
	for ck, ri := range sum.NetHeld {
		if hasClassHeld(st, ck) {
			continue
		}
		key := effKey(ck)
		st.def[key] = holdInfo{
			site: &CallSite{Call: call, Op: ri.Op, Face: ri.Face},
			ref:  lockRef{key: key, classKey: ck, uniKey: ck, display: ri.Display, ok: true},
		}
		delete(st.maybe, key)
	}
}

// exprs fires client events over expression trees: call events for tracked
// call sites, node events for everything else. Function literals are
// reported as nodes, then walked as independent functions.
func (w *seqWalker) exprs(st *holds, list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if w.client.node != nil {
					w.client.node(n, st)
				}
				w.walkFuncState(n, w.litSeed(st), w.freshLits)
				return false
			case *ast.CallExpr:
				if site, ok := w.pass.Site(n); ok {
					if w.client.call != nil {
						w.client.call(site, w.refOf(site), st)
					}
					// AcquireDeadline acquires only when it returns nil, and
					// the walker does not track error branches, so the mutex
					// degrades straight to maybe-held: a Release on the
					// success path is not noise, and a leak on it is a false
					// negative the path-insensitivity contract accepts.
					if site.Op == OpAcquireDeadline {
						if ref := w.refOf(site); ref.ok {
							if _, held := st.def[ref.key]; !held {
								st.maybe[ref.key] = holdInfo{site: site, ref: ref}
							}
						}
					}
					if site.Op == OpFork {
						// Fork's function argument runs on the new thread:
						// literal arguments start from empty lock state.
						keep := true
						if w.client.node != nil {
							keep = w.client.node(n, st)
						}
						if keep {
							savedFresh := w.freshLits
							w.freshLits = true
							w.exprs(st, n.Fun)
							w.exprs(st, n.Args...)
							w.freshLits = savedFresh
						}
						return false
					}
					if w.client.node != nil {
						return w.client.node(n, st)
					}
					return true
				}
				keep := true
				if w.client.node != nil {
					keep = w.client.node(n, st)
				}
				w.applyCallEffects(n, st)
				return keep
			default:
				if n != nil && w.client.node != nil {
					return w.client.node(n, st)
				}
				return true
			}
		})
	}
}

// refOf resolves the subject lock of a call site.
func (w *seqWalker) refOf(site *CallSite) lockRef {
	var subject ast.Expr
	switch site.Op {
	case OpWait, OpAlertWait, OpAlertWaitDeadline, OpLock:
		subject = site.MutexArg
	default:
		subject = site.Recv
	}
	if subject == nil {
		return lockRef{}
	}
	info, fset := w.pass.Pkg.Info, w.pass.Fset
	key, display, ok := RefKey(info, fset, subject, nil)
	if !ok {
		return lockRef{}
	}
	classKey, _, _ := RefKey(info, fset, subject, w.typeRoots)
	uniKey, _ := universalKey(info, subject)
	return lockRef{key: key, classKey: classKey, uniKey: uniKey, display: display, ok: true}
}

// terminatesPath reports whether a call never returns: panic, os.Exit,
// runtime.Goexit, (*testing.common).Fatal*, log.Fatal*.
func terminatesPath(info *types.Info, call *ast.CallExpr) bool {
	switch obj := Callee(info, call).(type) {
	case *types.Builtin:
		return obj.Name() == "panic"
	case *types.Func:
		if obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "os":
			return obj.Name() == "Exit"
		case "runtime":
			return obj.Name() == "Goexit"
		case "log":
			return obj.Name() == "Fatal" || obj.Name() == "Fatalf" || obj.Name() == "Fatalln"
		case "testing":
			switch obj.Name() {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
				return true
			}
		}
	}
	return false
}
