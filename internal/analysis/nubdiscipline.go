package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NubDiscipline is the self-check for the Nub layer (internal/core): no
// blocking calls, no heap allocation and no indirect calls (callbacks)
// while a spin lock from internal/spinlock is held. The paper's Firefly
// implementation keeps Nub critical sections to a handful of straight-line
// instructions — the spin lock is only tolerable because nothing inside it
// can wait, allocate (and hence trigger GC or grow the stack) or run
// arbitrary code; DESIGN.md states the invariant in prose and this
// analyzer makes it a build failure.
//
// Flagged while a spin lock is held:
//
//   - blocking operations: channel send/receive/select/range, go
//     statements, time.Sleep, runtime.Gosched, sync primitives (sync/atomic
//     excepted), fmt/os/log I/O, and any blocking threads-API call;
//   - allocation: make/new/append, &composite literals, closures, string
//     concatenation;
//   - indirect calls through function values (callbacks: arbitrary code
//     under the Nub lock);
//   - calls to functions declared anywhere in the analyzed program that
//     transitively do any of the above (summaries are propagated over the
//     cross-package call graph by the Program's summary engine).
//
// The analyzer runs only on packages that import internal/spinlock, and
// not on internal/spinlock itself.
var NubDiscipline = &Analyzer{
	Name: "nubdiscipline",
	Doc: "check that nothing blocks, allocates or calls back while an " +
		"internal/spinlock lock is held (DESIGN.md Nub invariant; paper, " +
		"Implementation: Nub critical sections are a few instructions)",
	Run: runNubDiscipline,
}

func runNubDiscipline(pass *Pass) error {
	if pass.Pkg.ImportPath == pkgSpinlock {
		return nil // the lock's own implementation operates on itself
	}
	imports := false
	for _, imp := range pass.Pkg.Types.Imports() {
		if imp.Path() == pkgSpinlock {
			imports = true
			break
		}
	}
	if !imports {
		return nil
	}

	lookup := pass.Prog.Summaries().badOf
	reported := make(map[token.Pos]bool)
	report := func(pos, origin token.Pos, lock string, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		msg := fmt.Sprintf(format, args...)
		d := Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("%s while spin lock %s is held: the Nub invariant permits no "+
				"blocking, allocation or callbacks inside spin-locked sections "+
				"(DESIGN.md; paper, Implementation)", msg, lock),
		}
		if origin.IsValid() {
			// The transitive origin of the violation: an ignore directive
			// there covers every call site that reaches it.
			d.Related = []token.Position{pass.Fset.Position(origin)}
		}
		pass.Report(d)
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			w := &seqWalker{pass: pass}
			w.client = seqClient{
				call: func(site *CallSite, ref lockRef, st *holds) {
					lock, held := spinHeld(st)
					if !held {
						return
					}
					if site.Op.Blocking() {
						report(site.Call.Pos(), token.NoPos, lock, "blocking call %s(…)", callLabel(site))
					}
				},
				node: func(n ast.Node, st *holds) bool {
					lock, held := spinHeld(st)
					if !held {
						return true
					}
					if kind, what, origin := classifyBadOp(pass, lookup, n); kind != badNone {
						report(n.Pos(), origin, lock, "%s", what)
						return false
					}
					return true
				},
			}
			w.walkFunc(fd)
		}
	}
	return nil
}

func spinHeld(st *holds) (string, bool) {
	for _, h := range st.def {
		if h.site.Face == FaceSpin {
			return h.ref.display, true
		}
	}
	return "", false
}

type badKind int

const (
	badNone badKind = iota
	badBlock
	badAlloc
	badIndirect
)

// classifyBadOp decides whether a single node violates the Nub discipline,
// consulting lookup (the Program's cross-package badOf summary) for static
// calls to functions declared anywhere in the program. The returned
// position, when valid, is the transitive origin of the violation in a
// callee (possibly in another package); findings attach it as a related
// position so one ignore directive at the origin covers every caller.
func classifyBadOp(pass *Pass, lookup func(*types.Func) *badOp, n ast.Node) (badKind, string, token.Pos) {
	info := pass.Pkg.Info
	switch n := n.(type) {
	case *ast.SendStmt:
		return badBlock, "channel send", token.NoPos
	case *ast.SelectStmt:
		return badBlock, "select", token.NoPos
	case *ast.GoStmt:
		return badAlloc, "go statement (spawns a goroutine)", token.NoPos
	case *ast.RangeStmt:
		if t, ok := info.Types[n.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				return badBlock, "range over channel", token.NoPos
			}
		}
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			return badBlock, "channel receive", token.NoPos
		case token.AND:
			if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
				return badAlloc, "allocation (&composite literal)", token.NoPos
			}
		}
	case *ast.FuncLit:
		return badAlloc, "allocation (closure)", token.NoPos
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t, ok := info.Types[n.X]; ok {
				if b, isBasic := t.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
					return badAlloc, "allocation (string concatenation)", token.NoPos
				}
			}
		}
	case *ast.CallExpr:
		return classifyBadCall(pass, lookup, n)
	}
	return badNone, "", token.NoPos
}

func classifyBadCall(pass *Pass, lookup func(*types.Func) *badOp, call *ast.CallExpr) (badKind, string, token.Pos) {
	info := pass.Pkg.Info
	// Type conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return badNone, "", token.NoPos
	}
	switch obj := Callee(info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make", "new":
			return badAlloc, fmt.Sprintf("allocation (%s)", obj.Name()), token.NoPos
		case "append":
			return badAlloc, "allocation (append may grow)", token.NoPos
		}
		return badNone, "", token.NoPos
	case *types.Func:
		pkg := obj.Pkg()
		if pkg == nil {
			return badNone, "", token.NoPos
		}
		switch pkg.Path() {
		case "sync/atomic", pkgSpinlock, "unsafe":
			return badNone, "", token.NoPos
		case "sync":
			return badBlock, fmt.Sprintf("sync.%s call (may block or schedule)", obj.Name()), token.NoPos
		case "time":
			if obj.Name() == "Sleep" || obj.Name() == "After" || obj.Name() == "Tick" {
				return badBlock, "time." + obj.Name() + " call", token.NoPos
			}
		case "runtime":
			if obj.Name() == "Gosched" {
				return badBlock, "runtime.Gosched call (yields the processor)", token.NoPos
			}
		case "fmt", "os", "log", "io":
			return badBlock, fmt.Sprintf("%s.%s call (I/O)", pkg.Path(), obj.Name()), token.NoPos
		}
		if lookup != nil {
			if bad := lookup(obj); bad != nil {
				return bad.kind, fmt.Sprintf("call to %s, which performs %s at %s",
					obj.Name(), bad.what, pass.Fset.Position(bad.pos)), bad.origin
			}
		}
		return badNone, "", token.NoPos
	default:
		// No static *types.Func callee: a call through a function value,
		// field or parameter (Callee yields nil or the *types.Var) —
		// arbitrary code under the spin lock.
		return badIndirect, "indirect call through a function value (callback)", token.NoPos
	}
}

// badOp is the first discipline violation found in a function body,
// described for interprocedural reporting. Computed per program function by
// Summaries.badOf; functions without a body (assembly, linkname) summarize
// clean: the runtime-facing helpers they bind are the mechanism the Nub is
// built on.
type badOp struct {
	kind   badKind
	what   string
	pos    token.Pos // the violating node in the summarized function
	origin token.Pos // the transitive origin, through further callees
}
