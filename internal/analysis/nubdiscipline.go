package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NubDiscipline is the self-check for the Nub layer (internal/core): no
// blocking calls, no heap allocation and no indirect calls (callbacks)
// while a spin lock from internal/spinlock is held. The paper's Firefly
// implementation keeps Nub critical sections to a handful of straight-line
// instructions — the spin lock is only tolerable because nothing inside it
// can wait, allocate (and hence trigger GC or grow the stack) or run
// arbitrary code; DESIGN.md states the invariant in prose and this
// analyzer makes it a build failure.
//
// Flagged while a spin lock is held:
//
//   - blocking operations: channel send/receive/select/range, go
//     statements, time.Sleep, runtime.Gosched, sync primitives (sync/atomic
//     excepted), fmt/os/log I/O, and any blocking threads-API call;
//   - allocation: make/new/append, &composite literals, closures, string
//     concatenation;
//   - indirect calls through function values (callbacks: arbitrary code
//     under the Nub lock);
//   - calls to same-package functions that transitively do any of the
//     above (summaries are propagated over the package call graph).
//
// The analyzer runs only on packages that import internal/spinlock, and
// not on internal/spinlock itself.
var NubDiscipline = &Analyzer{
	Name: "nubdiscipline",
	Doc: "check that nothing blocks, allocates or calls back while an " +
		"internal/spinlock lock is held (DESIGN.md Nub invariant; paper, " +
		"Implementation: Nub critical sections are a few instructions)",
	Run: runNubDiscipline,
}

func runNubDiscipline(pass *Pass) error {
	if pass.Pkg.ImportPath == pkgSpinlock {
		return nil // the lock's own implementation operates on itself
	}
	imports := false
	for _, imp := range pass.Pkg.Types.Imports() {
		if imp.Path() == pkgSpinlock {
			imports = true
			break
		}
	}
	if !imports {
		return nil
	}

	sums := newBadOpSummaries(pass)
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, lock string, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		msg := fmt.Sprintf(format, args...)
		pass.Reportf(pos, "%s while spin lock %s is held: the Nub invariant permits no "+
			"blocking, allocation or callbacks inside spin-locked sections "+
			"(DESIGN.md; paper, Implementation)", msg, lock)
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			w := &seqWalker{pass: pass}
			w.client = seqClient{
				call: func(site *CallSite, ref lockRef, st *holds) {
					lock, held := spinHeld(st)
					if !held {
						return
					}
					if site.Op.Blocking() {
						report(site.Call.Pos(), lock, "blocking call %s(…)", callLabel(site))
					}
				},
				node: func(n ast.Node, st *holds) bool {
					lock, held := spinHeld(st)
					if !held {
						return true
					}
					if kind, what := classifyBadOp(pass, sums, n); kind != badNone {
						report(n.Pos(), lock, "%s", what)
						return false
					}
					return true
				},
			}
			w.walkFunc(fd)
		}
	}
	return nil
}

func spinHeld(st *holds) (string, bool) {
	for _, h := range st.def {
		if h.site.Face == FaceSpin {
			return h.ref.display, true
		}
	}
	return "", false
}

type badKind int

const (
	badNone badKind = iota
	badBlock
	badAlloc
	badIndirect
)

// classifyBadOp decides whether a single node violates the Nub discipline,
// consulting call-graph summaries for same-package static calls.
func classifyBadOp(pass *Pass, sums *badOpSummaries, n ast.Node) (badKind, string) {
	info := pass.Pkg.Info
	switch n := n.(type) {
	case *ast.SendStmt:
		return badBlock, "channel send"
	case *ast.SelectStmt:
		return badBlock, "select"
	case *ast.GoStmt:
		return badAlloc, "go statement (spawns a goroutine)"
	case *ast.RangeStmt:
		if t, ok := info.Types[n.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				return badBlock, "range over channel"
			}
		}
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			return badBlock, "channel receive"
		case token.AND:
			if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
				return badAlloc, "allocation (&composite literal)"
			}
		}
	case *ast.FuncLit:
		return badAlloc, "allocation (closure)"
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t, ok := info.Types[n.X]; ok {
				if b, isBasic := t.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
					return badAlloc, "allocation (string concatenation)"
				}
			}
		}
	case *ast.CallExpr:
		return classifyBadCall(pass, sums, n)
	}
	return badNone, ""
}

func classifyBadCall(pass *Pass, sums *badOpSummaries, call *ast.CallExpr) (badKind, string) {
	info := pass.Pkg.Info
	// Type conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return badNone, ""
	}
	switch obj := Callee(info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make", "new":
			return badAlloc, fmt.Sprintf("allocation (%s)", obj.Name())
		case "append":
			return badAlloc, "allocation (append may grow)"
		}
		return badNone, ""
	case *types.Func:
		pkg := obj.Pkg()
		if pkg == nil {
			return badNone, ""
		}
		switch pkg.Path() {
		case "sync/atomic", pkgSpinlock, "unsafe":
			return badNone, ""
		case "sync":
			return badBlock, fmt.Sprintf("sync.%s call (may block or schedule)", obj.Name())
		case "time":
			if obj.Name() == "Sleep" || obj.Name() == "After" || obj.Name() == "Tick" {
				return badBlock, "time." + obj.Name() + " call"
			}
		case "runtime":
			if obj.Name() == "Gosched" {
				return badBlock, "runtime.Gosched call (yields the processor)"
			}
		case "fmt", "os", "log", "io":
			return badBlock, fmt.Sprintf("%s.%s call (I/O)", pkg.Path(), obj.Name())
		}
		if pkg.Path() == pass.Pkg.ImportPath {
			if bad := sums.lookup(obj); bad != nil {
				return bad.kind, fmt.Sprintf("call to %s, which performs %s at %s",
					obj.Name(), bad.what, pass.Fset.Position(bad.pos))
			}
		}
		return badNone, ""
	default:
		// No static *types.Func callee: a call through a function value,
		// field or parameter (Callee yields nil or the *types.Var) —
		// arbitrary code under the spin lock.
		return badIndirect, "indirect call through a function value (callback)"
	}
}

// badOp is the first discipline violation found in a function body,
// described for interprocedural reporting.
type badOp struct {
	kind badKind
	what string
	pos  token.Pos
}

// badOpSummaries lazily computes, per same-package function, whether its
// body (transitively) violates the discipline.
type badOpSummaries struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]*badOp
	stack map[*types.Func]bool
}

func newBadOpSummaries(pass *Pass) *badOpSummaries {
	s := &badOpSummaries{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func]*badOp),
		stack: make(map[*types.Func]bool),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name != nil {
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					s.decls[fn] = fd
				}
			}
		}
	}
	return s
}

// lookup returns the first transitive violation in fn's body, or nil.
// Functions without a body (assembly, linkname) summarize clean: the
// runtime-facing helpers they bind are the mechanism the Nub is built on.
func (s *badOpSummaries) lookup(fn *types.Func) *badOp {
	if got, ok := s.memo[fn]; ok {
		return got
	}
	if s.stack[fn] {
		return nil
	}
	decl, ok := s.decls[fn]
	if !ok || decl.Body == nil {
		s.memo[fn] = nil
		return nil
	}
	s.stack[fn] = true
	defer delete(s.stack, fn)

	var found *badOp
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		// A function that locks a spin lock itself is analyzed at its own
		// sites; nested spin sections do not make the *caller* bad. Only
		// operations that would run under the caller's lock count, which
		// conservatively is the whole body (paths are not tracked here).
		if kind, what := classifyBadOp(s.pass, s, n); kind != badNone {
			found = &badOp{kind: kind, what: what, pos: n.Pos()}
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // closures already flagged as allocation
		}
		return true
	})
	s.memo[fn] = found
	return found
}
