package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// This file is the fixture harness, modeled on
// golang.org/x/tools/go/analysis/analysistest: fixture packages live under
// testdata/src/<name>, and every line that should be flagged carries a
//
//	// want "regexp"
//
// comment (several regexps for several diagnostics on one line). runFixture
// loads the fixture, runs one analyzer, and requires the diagnostics and
// expectations to match exactly — a missing diagnostic and an unexpected
// diagnostic are both test failures, so fixtures pin both the flagged and
// the clean cases.

var (
	loaderOnce sync.Once
	loaderInst *Loader
	loaderErr  error
)

// sharedLoader caches one Loader per test binary: dependency type-checking
// (the threads packages plus their stdlib closure, from source) dominates
// fixture cost and is identical across fixtures.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderInst, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderInst
}

// loadFixture type-checks testdata/src/<fixture>.
func loadFixture(t *testing.T, fixture string) *Package {
	t.Helper()
	loader := sharedLoader(t)
	dir := filepath.Join(loader.ModuleRoot, "internal", "analysis", "testdata", "src", fixture)
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	return pkg
}

// runFixture runs one analyzer (or, with a nil analyzer, the whole suite)
// over a fixture and checks its diagnostics against the want comments.
// Suppressed findings are not matched against wants: suppression fixtures
// assert over the returned findings directly.
func runFixture(t *testing.T, fixture string, a *Analyzer, opts map[string]string) []Finding {
	t.Helper()
	return runFixturePkgs(t, []string{fixture}, a, opts)
}

// runFixturePkgs is runFixture over a multi-package program: every fixture
// is loaded as an analysis target and they are analyzed together, so
// cross-package summaries, annotations and suppressions are in play. The
// want comments of all packages are checked against the combined findings.
func runFixturePkgs(t *testing.T, fixtures []string, a *Analyzer, opts map[string]string) []Finding {
	t.Helper()
	pkgs := make([]*Package, len(fixtures))
	for i, fixture := range fixtures {
		pkgs[i] = loadFixture(t, fixture)
	}
	analyzers := All()
	if a != nil {
		analyzers = []*Analyzer{a}
	}
	d := &Driver{Analyzers: analyzers, Options: opts}
	findings, err := d.RunProgram(NewProgram(pkgs))
	if err != nil {
		t.Fatalf("running on %v: %v", fixtures, err)
	}
	checkWants(t, pkgs, findings)
	return findings
}

// checkWants requires the unsuppressed findings and the fixtures' want
// comments to match exactly, both directions.
func checkWants(t *testing.T, pkgs []*Package, findings []Finding) {
	t.Helper()
	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	expected := make(map[string][]*expectation) // "file:line" → expectations
	wantRE := regexp.MustCompile(`// want (.*)$`)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range splitQuoted(t, m[1], pos) {
						re, err := regexp.Compile(q)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", posKey(pos), q, err)
						}
						expected[posKey(pos)] = append(expected[posKey(pos)], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		key := posKey(f.Pos)
		var hit *expectation
		for _, exp := range expected[key] {
			if !exp.matched && exp.re.MatchString(f.Message) {
				hit = exp
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", key, f.Message, f.Analyzer)
			continue
		}
		hit.matched = true
	}
	for key, exps := range expected {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// splitQuoted parses the quoted regexps of a want comment: `"a" "b"`.
func splitQuoted(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want comment near %q", posKey(pos), s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want regexp", posKey(pos))
		}
		out = append(out, strings.ReplaceAll(s[1:end], `\"`, `"`))
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
