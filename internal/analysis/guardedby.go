package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// GuardedBy enforces the data-protection discipline the paper's mutex
// specification exists for: shared variables are accessed only while the
// mutex that protects them is held (paper, The Mutex and Condition types —
// a mutex "is used to protect shared data"). The binding of data to lock
// is declared with //threads:guardedby and //threads:guards annotations
// (guards.go) or inferred from the majority held-lock set across a field's
// write sites, and enforcement is interprocedural: an access is covered if
// the guard is held locally, held by a function this one (transitively)
// called that returns holding it, or held by every caller on every path to
// this function (the Program's entry-held fixpoint).
//
// Also modeled, because the specification calls them out:
//
//   - Condition.Wait's release-and-reacquire window: a local loaded from a
//     guarded field before Wait on its guard may be stale after Wait
//     returns (return from Wait is only a hint; the state must be
//     re-examined);
//   - TryAcquire: the lock is held only on the success branch, so accesses
//     on the failure path are unprotected (path sensitivity comes from the
//     seqwalk walker);
//   - deferred Release: `defer m.Release()` keeps the guard held to every
//     exit.
//
// With -guardedby.suggest, unannotated fields whose writes are
// consistently covered by one sibling lock get an advisory ready-to-paste
// annotation suggestion.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "check that annotated (or inferred) guarded fields are accessed " +
		"only with their mutex held, across package boundaries (paper, The " +
		"Mutex and Condition types: a mutex protects shared data; return " +
		"from Wait is a hint, not a guarantee)",
	Run: runGuardedBy,
}

// inference is the result of guessing an unannotated candidate field's
// guard from its write sites: the sibling lock covering the most writes.
type inference struct {
	field     *fieldInfo
	guard     string // winning sibling lock field name
	writes    int    // total write sites observed
	covered   int    // writes with the winning guard held
	uncovered []accessRec
}

// inferGuards computes (once per Program) the best-guess guard for every
// unannotated candidate field with at least one recorded write.
func (s *Summaries) inferGuards(guards *GuardTable) map[string]*inference {
	if s.inferred != nil {
		return s.inferred
	}
	s.finalize()
	s.inferred = make(map[string]*inference)
	byField := make(map[string][]accessRec)
	for _, rec := range s.accesses {
		if !rec.write || guards.specs[rec.fieldKey] != nil || guards.fields[rec.fieldKey] == nil {
			continue
		}
		byField[rec.fieldKey] = append(byField[rec.fieldKey], rec)
	}
	for key, recs := range byField {
		fi := guards.fields[key]
		var best *inference
		for _, lock := range fi.siblings {
			inf := &inference{field: fi, guard: lock, writes: len(recs)}
			for _, rec := range recs {
				if rec.baseUni != "" && s.covered(rec, rec.baseUni+"."+lock) {
					inf.covered++
				} else {
					inf.uncovered = append(inf.uncovered, rec)
				}
			}
			if best == nil || inf.covered > best.covered {
				best = inf
			}
		}
		if best != nil {
			s.inferred[key] = best
		}
	}
	return s.inferred
}

func runGuardedBy(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	sums := prog.Summaries()
	guards := prog.Guards()
	sums.finalize()
	path := pass.Pkg.ImportPath

	// Malformed annotations, reported where they are written.
	for _, e := range guards.errs {
		if e.pkg == path {
			pass.Reportf(e.pos, "%s", e.msg)
		}
	}

	// Annotated accesses: every read or write of a guarded field reachable
	// without its guard held.
	for _, rec := range sums.accesses {
		if rec.pkg != path {
			continue
		}
		spec := guards.specs[rec.fieldKey]
		if spec == nil {
			continue
		}
		req, reqDisp, ok := spec.requirement(rec.baseUni)
		if !ok || sums.covered(rec, req) {
			continue
		}
		action := "read"
		if rec.write {
			action = "write"
		}
		pass.Report(Diagnostic{
			Pos: rec.pos,
			Message: fmt.Sprintf("%s of %s without %s held: the field is annotated //%s %s",
				action, rec.display, reqDisp, GuardedByDirective, spec.guardDisp),
			Related: []token.Position{spec.pos},
		})
	}

	// Wait sites whose mutex guards annotated data but is not held: the
	// release-and-reacquire window (and Wait's own precondition) runs
	// unprotected.
	guardClasses := make(map[string]bool)
	for _, spec := range guards.specs {
		if spec.global != "" {
			guardClasses[spec.global] = true
		} else if i := strings.LastIndex(spec.fieldKey, "."); i > 0 {
			guardClasses[spec.fieldKey[:i]+"."+spec.sibling] = true
		}
	}
	for _, rec := range sums.waits {
		if rec.pkg != path || !guardClasses[rec.mutexUni] {
			continue
		}
		if sums.entryHolds(rec.funcKey, rec.mutexUni) {
			continue
		}
		pass.Reportf(rec.pos, "Wait with mutex %s not held: %s guards annotated fields and Wait "+
			"requires (then releases and re-acquires) it", rec.display, rec.display)
	}

	// Locals carried across the Wait window: the guard was released and
	// re-acquired in between, so the loaded value may no longer describe
	// the state.
	for _, rec := range sums.stales {
		if rec.pkg != path {
			continue
		}
		pass.Report(Diagnostic{
			Pos: rec.pos,
			Message: fmt.Sprintf("use of %s, loaded from %s before Wait released %s: return from Wait "+
				"is only a hint and the value may be stale — reload it after Wait", rec.varName, rec.fieldDisp, rec.guardDisp),
			Related: []token.Position{pass.Fset.Position(rec.waitPos)},
		})
	}

	// Inference: unannotated fields whose writes are dominantly covered by
	// one sibling lock. Deviations from a strong majority are findings;
	// consistent fields become advisory annotation suggestions.
	inferred := sums.inferGuards(guards)
	keys := make([]string, 0, len(inferred))
	for key := range inferred {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	suggest := pass.Options["guardedby.suggest"] == "true"
	for _, key := range keys {
		inf := inferred[key]
		if inf.writes >= 4 && inf.covered < inf.writes && inf.covered*4 >= inf.writes*3 {
			for _, rec := range inf.uncovered {
				if rec.pkg != path {
					continue
				}
				pass.Report(Diagnostic{
					Pos: rec.pos,
					Message: fmt.Sprintf("write of %s without %s held, but %d of %d writes hold it: "+
						"likely missing guard (annotate the field //%s %s to enforce)",
						rec.display, inf.guard, inf.covered, inf.writes, GuardedByDirective, inf.guard),
					Related: []token.Position{inf.field.pos},
				})
			}
		}
		if suggest && inf.field.pkg == path && inf.writes >= 2 && inf.covered == inf.writes {
			pass.Report(Diagnostic{
				Pos:  inf.field.posTok,
				Info: true,
				Message: fmt.Sprintf("suggestion: all %d writes of %s.%s hold %s — annotate it "+
					"//%s %s", inf.writes, inf.field.structName, inf.field.name, inf.guard,
					GuardedByDirective, inf.guard),
			})
		}
	}
	return nil
}
