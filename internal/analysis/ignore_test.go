package analysis

import (
	"strings"
	"testing"
)

func TestIgnoreDirectives(t *testing.T) {
	findings := runFixture(t, "ignore", WaitLoop, nil)

	var suppressed []Finding
	for _, f := range findings {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		}
	}
	if len(suppressed) != 2 {
		t.Fatalf("suppressed findings = %d, want 2: %v", len(suppressed), suppressed)
	}
	for _, f := range suppressed {
		if f.Reason == "" {
			t.Errorf("suppressed finding without a recorded reason: %s", f)
		}
		if f.Analyzer != "waitloop" {
			t.Errorf("suppressed finding from %s, want waitloop: %s", f.Analyzer, f)
		}
	}
	// One directive sits on the flagged line, one on the line above.
	if suppressed[0].Pos.Line+0 == suppressed[1].Pos.Line {
		t.Errorf("expected two distinct suppression sites, got %v", suppressed)
	}
	if !strings.Contains(suppressed[0].Reason, "adapter method") {
		t.Errorf("reason not carried through: %q", suppressed[0].Reason)
	}
}
