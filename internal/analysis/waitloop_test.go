package analysis

import "testing"

func TestWaitLoop(t *testing.T) {
	runFixture(t, "waitloop", WaitLoop, nil)
}
