package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockPair enforces the Acquire/Release bracketing discipline the mutex
// specification assumes. Release REQUIRES m = SELF — releasing a mutex the
// caller does not hold is a precondition violation the spec leaves
// undefined — and Acquire's WHEN m = NIL guard means a second Acquire by
// the holder blocks forever (the paper's mutexes are not recursive). The
// analyzer walks each function path-sensitively (see seqwalk.go) and
// reports:
//
//   - an Acquire still held on some path out of the function with no
//     Release and no deferred Release covering it (the leak that motivates
//     the LOCK … DO … END construct, threads.Lock here);
//   - Release of a mutex not held on the current path;
//   - a straight-line second Acquire of a held mutex (self-deadlock).
//
// The walk is interprocedural via the Program's function summaries: a call
// to a helper that returns holding a mutex (mon.Enter()) makes the mutex
// held here — and leaks here if no path releases it — and a helper that
// releases on the caller's behalf (mon.Exit(), wrapped unlocks in another
// package) discharges the hold.
//
// Locks that degrade to "maybe held" at a path join are never reported:
// the analysis trades false negatives for zero path-insensitive noise.
var LockPair = &Analyzer{
	Name: "lockpair",
	Doc: "check Acquire/Release pairing per function path (paper, Mutexes: " +
		"Release REQUIRES m = SELF; Acquire WHEN m = NIL is non-recursive); " +
		"prefer threads.Lock for lexical bracketing",
	Run: runLockPair,
}

func runLockPair(pass *Pass) error {
	reportedLeak := make(map[token.Pos]bool) // acquire site → already reported

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			w := &seqWalker{pass: pass}
			if pass.Prog != nil {
				w.sums = pass.Prog.Summaries()
			}
			w.client = seqClient{
				call: func(site *CallSite, ref lockRef, st *holds) {
					if !ref.ok {
						return
					}
					switch site.Op {
					case OpAcquire:
						if held, dup := st.def[ref.key]; dup {
							pass.Reportf(site.Call.Pos(),
								"second Acquire of %s while already held (acquired at %s): "+
									"Acquire's WHEN m = NIL can never fire for the holder, "+
									"so this self-deadlocks (paper, Mutexes)",
								ref.display, pass.Fset.Position(held.site.Call.Pos()))
						}
					case OpRelease:
						_, held := st.def[ref.key]
						_, maybeHeld := st.maybe[ref.key]
						if !held && !maybeHeld && !hasClassHeld(st, ref.uniKey) {
							pass.Reportf(site.Call.Pos(),
								"Release of %s which this path has not acquired: "+
									"Release REQUIRES m = SELF (paper, Mutexes); "+
									"only the holder may release",
								ref.display)
						}
					}
				},
				exit: func(pos token.Pos, st *holds) {
					for _, h := range st.def {
						if h.deferred || (h.site.Op != OpAcquire && h.site.Op != OpTryAcquire) {
							continue
						}
						acqPos := h.site.Call.Pos()
						if reportedLeak[acqPos] {
							continue
						}
						reportedLeak[acqPos] = true
						if h.site.Op == OpTryAcquire {
							// The walker injects this hold only on the branch
							// where TryAcquire reported success.
							pass.Reportf(acqPos,
								"TryAcquire of %s succeeded on this path but no Release matches "+
									"before the function returns at %s: the mutex stays held "+
									"forever (paper, Mutexes: bracket critical sections)",
								h.ref.display, pass.Fset.Position(pos))
							continue
						}
						if strings.HasPrefix(h.ref.key, "eff:") {
							// Synthetic hold: a callee's summary says this call
							// returns holding the mutex.
							pass.Reportf(acqPos,
								"this call returns holding %s, which no path leaving the "+
									"function at %s releases: the mutex stays held forever "+
									"(paper, Mutexes: bracket critical sections)",
								h.ref.display, pass.Fset.Position(pos))
							continue
						}
						pass.Reportf(acqPos,
							"%s.Acquire() is not matched by a Release on the path leaving the "+
								"function at %s: the mutex stays held forever (paper, Mutexes: "+
								"bracket critical sections); release on every path, defer the "+
								"Release, or use threads.Lock",
							h.ref.display, pass.Fset.Position(pos))
					}
				},
			}
			w.walkFunc(fd)
		}
	}
	return nil
}
