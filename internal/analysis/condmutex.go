package analysis

import (
	"go/ast"
	"go/token"
)

// CondMutex enforces the pairing invariant the specification builds into a
// condition variable's meaning: Wait(m, c) atomically releases m and later
// reacquires it, so a Condition is meaningful only when every Wait and
// AlertWait on it names the same Mutex — the mutex that protects the
// predicate. Waiting on one condition with two different mutexes means two
// "critical sections" that do not exclude each other are both presumed to
// protect the same state.
//
// Identity is resolved through types.Object chains (see RefKey): receiver
// fields unify across methods of the same type, package-level variables
// unify everywhere, and sites whose condition or mutex has no stable
// identity are conservatively reported as unanalyzable rather than passed.
var CondMutex = &Analyzer{
	Name: "condmutex",
	Doc: "check that each Condition is paired with exactly one Mutex across " +
		"all its Wait/AlertWait sites (paper, Wait(m, c): m protects the predicate)",
	Run: runCondMutex,
}

func runCondMutex(pass *Pass) error {
	type pairing struct {
		mutexKey  string
		mutexDisp string
		pos       token.Pos
	}
	first := make(map[string]pairing) // condition key → first observed pairing

	for _, site := range pass.Calls {
		if site.Op != OpWait && site.Op != OpAlertWait && site.Op != OpAlertWaitDeadline {
			continue
		}
		if site.Recv == nil || site.MutexArg == nil {
			continue
		}
		roots := TypeRoots(pass.Pkg.Info, enclosingFunc(pass, site.Call))
		condKey, condDisp, condOK := RefKey(pass.Pkg.Info, pass.Fset, site.Recv, roots)
		mutexKey, mutexDisp, mutexOK := RefKey(pass.Pkg.Info, pass.Fset, site.MutexArg, roots)
		if !condOK || !mutexOK {
			pass.Reportf(site.Call.Pos(),
				"cannot statically resolve the condition/mutex pair of this %s: "+
					"the one-mutex-per-condition invariant is unanalyzable here; "+
					"name the condition and mutex directly (variable or field chain)",
				callLabel(site))
			continue
		}
		prev, seen := first[condKey]
		if !seen {
			first[condKey] = pairing{mutexKey: mutexKey, mutexDisp: mutexDisp, pos: site.Call.Pos()}
			continue
		}
		if prev.mutexKey != mutexKey {
			pass.Reportf(site.Call.Pos(),
				"condition %s is waited on with mutex %s here but with mutex %s at %s: "+
					"a Condition must be protected by exactly one Mutex "+
					"(paper, Wait(m, c): the mutex guards the waited-for predicate)",
				condDisp, mutexDisp, prev.mutexDisp, pass.Fset.Position(prev.pos))
		}
	}
	return nil
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n, or
// nil at file scope.
func enclosingFunc(pass *Pass, n ast.Node) ast.Node {
	for cur := pass.Parent(n); cur != nil; cur = pass.Parent(cur) {
		switch cur.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return cur
		}
	}
	return nil
}
