package analysis

import (
	"strings"
	"testing"
)

// requireNoFindings runs the analyzer over one fixture package alone — the
// old same-package engine's view — and requires silence, proving the
// cross-package finding genuinely needs the multi-package program.
func requireNoFindings(t *testing.T, fixture string, a *Analyzer, opts map[string]string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	d := &Driver{Analyzers: []*Analyzer{a}, Options: opts}
	findings, err := d.Run(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !f.Suppressed {
			t.Errorf("same-package run of %s found %s: %s — the cross-package fixture no longer proves a miss",
				fixture, f.Analyzer, f.Message)
		}
	}
}

// The acquire and release live in pairdep; only its summaries reveal that
// pairuse.leak returns holding Mu.
func TestLockPairCrossPackage(t *testing.T) {
	runFixturePkgs(t, []string{"pairdep", "pairuse"}, LockPair, nil)
	requireNoFindings(t, "pairuse", LockPair, nil)
}

// The A → B edge is closed only through orderdep.LockB.
func TestLockOrderCrossPackage(t *testing.T) {
	opts := map[string]string{"lockorder.interprocedural": "true"}
	runFixturePkgs(t, []string{"orderdep", "orderuse"}, LockOrder, opts)
	requireNoFindings(t, "orderuse", LockOrder, opts)
}

// The allocation is inside nubdep.Grow, reachable only through its
// summary.
func TestNubDisciplineCrossPackage(t *testing.T) {
	runFixturePkgs(t, []string{"nubdep", "nubuse"}, NubDiscipline, nil)
	requireNoFindings(t, "nubuse", NubDiscipline, nil)
}

// A directive at the violation's origin suppresses the finding reported in
// the importing package and must count as used, not stale.
func TestIgnoreDirectiveCrossPackage(t *testing.T) {
	findings := runFixturePkgs(t, []string{"ignoredep", "ignoreuse"}, NubDiscipline, nil)
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			continue
		}
		if strings.Contains(f.Message, "suppresses nothing") {
			t.Errorf("cross-package directive reported stale: %s", f.Message)
		} else {
			t.Errorf("unexpected finding: %s", f.Message)
		}
	}
	if suppressed != 1 {
		t.Errorf("got %d suppressed findings, want 1 (the spin-locked call to Grow)", suppressed)
	}
}

// Corner cases of the sequential walker, pinned under lockpair.
func TestSeqwalkCorners(t *testing.T) {
	runFixturePkgs(t, []string{"seqcornerdep", "seqcorner"}, LockPair, nil)
}
