package analysis

import "testing"

func TestCondMutex(t *testing.T) {
	runFixture(t, "condmutex", CondMutex, nil)
}
