package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestExpandPatterns(t *testing.T) {
	l := sharedLoader(t)
	dirs, err := l.ExpandPatterns(l.ModuleRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	rels := make(map[string]bool)
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		rels[rel] = true
		if strings.Contains(rel, "testdata") {
			t.Errorf("pattern expansion descended into testdata: %s", rel)
		}
	}
	for _, want := range []string{".", "internal/core", "internal/analysis", "examples/timeout"} {
		if !rels[want] {
			t.Errorf("./... did not include %s (got %v)", want, dirs)
		}
	}

	one, err := l.ExpandPatterns(l.ModuleRoot, []string{"./internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || filepath.ToSlash(one[0]) != filepath.ToSlash(filepath.Join(l.ModuleRoot, "internal/core")) {
		t.Errorf("plain pattern expansion = %v", one)
	}
}

// TestLoadRepo type-checks a real repo package through the stdlib-only
// loader (the threads package itself, pulling in internal/core and friends).
func TestLoadRepo(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.Load(l.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "threads" {
		t.Errorf("loaded package %q, want threads", pkg.Name)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Errorf("incomplete package: %+v", pkg)
	}
}
