package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a static per-package lock-acquisition graph and reports
// cycles as potential deadlocks. The specification gives Acquire a blocking
// WHEN m = NIL guard and no ordering discipline of its own, so the classic
// two-thread interleaving — thread 1 holds A and blocks on B, thread 2
// holds B and blocks on A — leaves both WHEN guards false forever. Every
// site that acquires a lock while another is held (nested Acquire,
// threads.Lock bodies) contributes an edge held → acquired, with locks
// named class-wide (receiver fields unify across methods, package-level
// mutexes globally; see RefKey). A cycle in the graph is a lock-order
// inversion some schedule can turn into deadlock.
//
// With Pass.Options["lockorder.interprocedural"] set, acquiring a lock
// inside a callee — declared in this package or any other package of the
// analyzed program — also closes edges from locks held at the call site:
// the Program's function summaries record which class-keyed locks each
// function acquires transitively over the cross-package call graph. This
// is the slower mode CI runs nightly.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "report cycles in the static lock-acquisition order as potential " +
		"deadlocks (paper, Mutexes: Acquire WHEN m = NIL blocks until the " +
		"holder releases — a cycle blocks forever)",
	Run: runLockOrder,
}

// lockEdge is one held → acquired observation.
type lockEdge struct {
	to      string
	toDisp  string
	fromPos token.Pos // where `from` was acquired is not retained; pos is this edge's site
	detail  string    // "" for direct edges, "via call to f" interprocedurally
}

func runLockOrder(pass *Pass) error {
	// adj[from][to] = first edge observed; disp[key] = display name.
	adj := make(map[string]map[string]lockEdge)
	disp := make(map[string]string)

	addEdge := func(from, fromDisp, to, toDisp string, pos token.Pos, detail string) {
		if from == "" || to == "" || from == to {
			return
		}
		disp[from], disp[to] = fromDisp, toDisp
		m, ok := adj[from]
		if !ok {
			m = make(map[string]lockEdge)
			adj[from] = m
		}
		if _, dup := m[to]; !dup {
			m[to] = lockEdge{to: to, toDisp: toDisp, fromPos: pos, detail: detail}
		}
	}

	inter := pass.Options["lockorder.interprocedural"] == "true"
	var sums *Summaries
	if inter && pass.Prog != nil {
		sums = pass.Prog.Summaries()
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			w := &seqWalker{pass: pass}
			w.client = seqClient{
				call: func(site *CallSite, ref lockRef, st *holds) {
					if site.Op != OpAcquire && site.Op != OpLock {
						return
					}
					if !ref.ok || ref.classKey == "" {
						return
					}
					for _, h := range heldLocks(st) {
						addEdge(h.ref.classKey, h.ref.display, ref.classKey, ref.display,
							site.Call.Pos(), "")
					}
				},
				node: func(n ast.Node, st *holds) bool {
					if sums == nil {
						return true
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if _, tracked := pass.Site(call); tracked {
						return true // direct edges already cover it
					}
					fn, ok := Callee(pass.Pkg.Info, call).(*types.Func)
					if !ok {
						return true
					}
					if sub := sums.effects(fn); sub != nil {
						for to, ri := range sub.Acquires {
							for _, h := range heldLocks(st) {
								addEdge(h.ref.classKey, h.ref.display, to, ri.Display,
									call.Pos(), fmt.Sprintf("via call to %s", fn.Name()))
							}
						}
					}
					return true
				},
			}
			w.walkFunc(fd)
		}
	}

	reportLockCycles(pass, adj, disp)
	return nil
}

func heldLocks(st *holds) []holdInfo {
	var out []holdInfo
	for _, h := range st.def {
		if h.ref.ok && h.ref.classKey != "" && h.site.Face != FaceSpin {
			out = append(out, h)
		}
	}
	for _, h := range st.maybe {
		if h.ref.ok && h.ref.classKey != "" && h.site.Face != FaceSpin {
			out = append(out, h)
		}
	}
	return out
}

// reportLockCycles finds cycles in the acquisition graph and reports each
// once, printed edge by edge with the site that created each edge.
func reportLockCycles(pass *Pass, adj map[string]map[string]lockEdge, disp map[string]string) {
	nodes := make([]string, 0, len(adj))
	for k := range adj {
		nodes = append(nodes, k)
	}
	sort.Strings(nodes)

	reported := make(map[string]bool) // canonical cycle id → done
	var stack []string
	onStack := make(map[string]int)
	var visit func(string)
	visited := make(map[string]bool)

	visit = func(n string) {
		if idx, ok := onStack[n]; ok {
			cycle := append([]string{}, stack[idx:]...)
			id := canonicalCycle(cycle)
			if reported[id] {
				return
			}
			reported[id] = true
			reportCycle(pass, cycle, adj, disp)
			return
		}
		if visited[n] {
			return
		}
		visited[n] = true
		onStack[n] = len(stack)
		stack = append(stack, n)
		tos := make([]string, 0, len(adj[n]))
		for to := range adj[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			visit(to)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
	}
	for _, n := range nodes {
		visit(n)
	}
}

func canonicalCycle(cycle []string) string {
	// Rotate so the lexically smallest key leads; the id is then unique per
	// cyclic sequence.
	min := 0
	for i := range cycle {
		if cycle[i] < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string{}, cycle[min:]...), cycle[:min]...)
	return strings.Join(rotated, "→")
}

func reportCycle(pass *Pass, cycle []string, adj map[string]map[string]lockEdge, disp map[string]string) {
	var b strings.Builder
	var firstPos token.Pos
	for i := range cycle {
		from := cycle[i]
		to := cycle[(i+1)%len(cycle)]
		e := adj[from][to]
		if i == 0 {
			firstPos = e.fromPos
			fmt.Fprintf(&b, "%s", disp[from])
		}
		fmt.Fprintf(&b, " → %s (%s", disp[to], pass.Fset.Position(e.fromPos))
		if e.detail != "" {
			fmt.Fprintf(&b, ", %s", e.detail)
		}
		b.WriteString(")")
	}
	pass.Reportf(firstPos,
		"potential deadlock: lock-acquisition cycle %s: two threads acquiring "+
			"around the cycle block on each other's WHEN m = NIL forever "+
			"(paper, Mutexes); acquire these locks in one global order", b.String())
}
