package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Program is a set of packages analyzed together. Analyzers see one package
// at a time (a Pass), but the Program gives them whole-program context: the
// cross-package function summaries of interproc.go, the guarded-by
// annotation table of guards.go, and per-package resolved call sites, so
// that lockorder, nubdiscipline, lockpair and guardedby can reason through
// calls into other packages of the module. Packages outside the program
// (a subset run, the standard library) summarize empty — the analyses
// degrade to false negatives, never false positives, exactly as at every
// other analysis horizon.
type Program struct {
	Packages []*Package

	byPath map[string]*Package
	ctx    map[*Package]*pkgContext
	decls  map[string]*declSite // FuncKey → declaring package + decl

	summaries *Summaries
	guards    *GuardTable
}

// pkgContext is the once-per-package resolution work shared by every
// analyzer pass and by the summary engine.
type pkgContext struct {
	pkg        *Package
	parents    map[ast.Node]ast.Node
	calls      []*CallSite
	sites      map[*ast.CallExpr]*CallSite
	methodVals []*MethodValue
}

// declSite locates a function declaration inside the program.
type declSite struct {
	ctx  *pkgContext
	decl *ast.FuncDecl
}

// NewProgram resolves each package's call sites and indexes every function
// declaration by its cross-package key.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		byPath: make(map[string]*Package, len(pkgs)),
		ctx:    make(map[*Package]*pkgContext, len(pkgs)),
		decls:  make(map[string]*declSite),
	}
	for _, pkg := range pkgs {
		if _, dup := prog.byPath[pkg.ImportPath]; dup {
			continue
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[pkg.ImportPath] = pkg
		parents := buildParents(pkg.Files)
		calls, sites, methodVals := Resolve(pkg, parents)
		ctx := &pkgContext{pkg: pkg, parents: parents, calls: calls, sites: sites, methodVals: methodVals}
		prog.ctx[pkg] = ctx
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if key := FuncKeyOf(fn); key != "" {
					if _, dup := prog.decls[key]; !dup {
						prog.decls[key] = &declSite{ctx: ctx, decl: fd}
					}
				}
			}
		}
	}
	return prog
}

// PackageByPath returns the program package with the given import path, or
// nil — the test for "can this call be followed".
func (prog *Program) PackageByPath(path string) *Package { return prog.byPath[path] }

// Summaries returns the program's lazily built cross-package summary
// engine.
func (prog *Program) Summaries() *Summaries {
	if prog.summaries == nil {
		prog.summaries = newSummaries(prog)
	}
	return prog.summaries
}

// Guards returns the program's lazily parsed guarded-by annotation table.
func (prog *Program) Guards() *GuardTable {
	if prog.guards == nil {
		prog.guards = parseGuards(prog)
	}
	return prog.guards
}

// pass builds a bare Pass (no analyzer, no reporter) over pkg for internal
// walks: the summary engine drives seqWalker through it.
func (prog *Program) pass(ctx *pkgContext) *Pass {
	return &Pass{
		Fset:       ctx.pkg.Fset,
		Files:      ctx.pkg.Files,
		Pkg:        ctx.pkg,
		Prog:       prog,
		Calls:      ctx.calls,
		MethodVals: ctx.methodVals,
		sites:      ctx.sites,
		parents:    ctx.parents,
	}
}

// FuncKeyOf returns the cross-package identity of a function or method:
// "pkg/path.Name" for package functions, "(pkg/path.Type).Name" for
// methods, with pointer receivers folded onto value receivers and generic
// instantiations folded onto the generic type (Ring[int] and Ring[T] are
// the same declaration). Functions without a package (builtins, universe
// scope) key as "".
func FuncKeyOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		return "(" + normalizedTypeName(recv.Type()) + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// normalizedTypeName renders a receiver type for cross-package keys:
// pointer stripped, type arguments (and the declaration's type parameters)
// cut, so every instantiation of a generic type shares one key.
func normalizedTypeName(t types.Type) string {
	s := strings.TrimPrefix(types.TypeString(t, nil), "*")
	if i := strings.IndexByte(s, '['); i > 0 {
		s = s[:i]
	}
	return s
}

// declOf finds fn's declaration inside the program, or nil.
func (prog *Program) declOf(fn *types.Func) *declSite {
	key := FuncKeyOf(fn)
	if key == "" {
		return nil
	}
	return prog.decls[key]
}
