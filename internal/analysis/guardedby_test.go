package analysis

import (
	"strings"
	"testing"
)

func TestGuardedByAnnotated(t *testing.T) {
	runFixture(t, "guardedby", GuardedBy, nil)
}

func TestGuardedByInference(t *testing.T) {
	runFixture(t, "guardedby_infer", GuardedBy, map[string]string{"guardedby.suggest": "true"})
}

// Without the option the deviation is still a finding but the advisory
// suggestion is not emitted.
func TestGuardedByInferenceNoSuggest(t *testing.T) {
	pkg := loadFixture(t, "guardedby_infer")
	d := &Driver{Analyzers: []*Analyzer{GuardedBy}}
	findings, err := d.Run(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Info {
			t.Errorf("suggestion emitted without guardedby.suggest: %s", f.Message)
		}
		if !strings.Contains(f.Message, "likely missing guard") {
			t.Errorf("unexpected finding: %s", f.Message)
		}
	}
}

// The annotation lives in guardedby_dep; the violation and the
// summary-covered accesses live in guardedby_x.
func TestGuardedByCrossPackage(t *testing.T) {
	findings := runFixturePkgs(t, []string{"guardedby_dep", "guardedby_x"}, GuardedBy, nil)
	unsuppressed := 0
	for _, f := range findings {
		if !f.Suppressed {
			unsuppressed++
		}
	}
	if unsuppressed != 1 {
		t.Errorf("got %d unsuppressed findings, want exactly the annotated bad read", unsuppressed)
	}
}
