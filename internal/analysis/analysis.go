// Package analysis statically enforces the usage discipline the paper's
// specification assumes of client code. The specification is sound only
// under obligations it states in prose — return from Wait is only a hint,
// a Condition is protected by exactly one Mutex, Release is called only by
// the holder, AlertWait callers must handle Alerted — and the dynamic
// checkers (internal/checker, internal/trace, internal/explore) verify them
// only on schedules that actually execute. The analyzers here turn each
// obligation into a compile-time diagnostic over `threads` call sites, in
// the spirit of golang.org/x/tools/go/analysis.
//
// The framework mirrors the x/tools Analyzer/Pass shape but is built
// entirely on the standard library (go/ast, go/types, and the source
// importer), so it needs no module dependencies; see Loader. The analyzers
// could be ported to real go/analysis Analyzers (and run under
// `go vet -vettool`) by swapping the driver, which is deliberately thin.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one usage rule. Doc cites the paper clause the rule
// encodes.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax, types and pre-resolved threads-API
// call sites to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *Package

	// Calls lists every resolved call to the threads API (all faces) in
	// source order. Sites returns the per-CallExpr index.
	Calls []*CallSite
	// MethodVals lists references to tracked methods as method values
	// (w := c.Wait): uses the resolver cannot follow.
	MethodVals []*MethodValue

	// Options carries driver flags ("lockorder.interprocedural": "true").
	Options map[string]string

	sites   map[*ast.CallExpr]*CallSite
	parents map[ast.Node]ast.Node
	report  func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Site returns the resolved call site for call, if it is a threads-API
// call.
func (p *Pass) Site(call *ast.CallExpr) (*CallSite, bool) {
	s, ok := p.sites[call]
	return s, ok
}

// Parent returns the syntactic parent of n within its file, or nil.
func (p *Pass) Parent(n ast.Node) ast.Node { return p.parents[n] }

// Finding is a driver-level diagnostic: an analyzer finding plus its
// suppression state.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool   // silenced by a //threadsvet:ignore directive
	Reason     string // the directive's justification, when suppressed
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Driver runs a set of analyzers over packages and applies the
// //threadsvet:ignore directives.
type Driver struct {
	Analyzers []*Analyzer
	Options   map[string]string
}

// IgnoreDirective is the suppression syntax the driver parses:
//
//	//threadsvet:ignore analyzer[,analyzer]: reason
//
// placed on the flagged line or on the line directly above it. The reason
// is mandatory: an unjustified or malformed directive is itself reported.
const IgnoreDirective = "threadsvet:ignore"

type ignoreEntry struct {
	analyzers map[string]bool
	reason    string
	line      int
	used      bool
}

// Run analyzes one package and returns its findings (suppressed ones
// included, marked) sorted by position.
func (d *Driver) Run(pkg *Package) ([]Finding, error) {
	ignores, bad := d.parseIgnores(pkg)
	findings := bad

	parents := buildParents(pkg.Files)
	calls, sites, methodVals := Resolve(pkg, parents)

	for _, a := range d.Analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg,
			Calls:      calls,
			MethodVals: methodVals,
			Options:    d.Options,
			sites:      sites,
			parents:    parents,
		}
		pass.report = func(diag Diagnostic) {
			pos := pkg.Fset.Position(diag.Pos)
			f := Finding{Analyzer: a.Name, Pos: pos, Message: diag.Message}
			if ent := matchIgnore(ignores, pos, a.Name); ent != nil {
				ent.used = true
				f.Suppressed = true
				f.Reason = ent.reason
			}
			findings = append(findings, f)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}

	// An ignore directive that suppressed nothing is stale: report it so
	// directives cannot silently outlive the code they excused.
	for file, ents := range ignores {
		for _, ent := range ents {
			if !ent.used {
				findings = append(findings, Finding{
					Analyzer: "threadsvet",
					Pos:      token.Position{Filename: file, Line: ent.line},
					Message:  fmt.Sprintf("ignore directive suppresses nothing (analyzers %s)", keys(ent.analyzers)),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// parseIgnores scans comments for ignore directives. Malformed directives
// (no reason, unknown analyzer) are returned as findings.
func (d *Driver) parseIgnores(pkg *Package) (map[string][]*ignoreEntry, []Finding) {
	known := make(map[string]bool)
	for _, a := range d.Analyzers {
		known[a.Name] = true
	}
	for _, a := range All() { // directives may name analyzers not in this run
		known[a.Name] = true
	}
	ignores := make(map[string][]*ignoreEntry)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+IgnoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names, reason, ok := strings.Cut(strings.TrimSpace(text), ":")
				reason = strings.TrimSpace(reason)
				if !ok || reason == "" {
					bad = append(bad, Finding{
						Analyzer: "threadsvet",
						Pos:      pos,
						Message:  "malformed ignore directive: want //threadsvet:ignore analyzer[,analyzer]: reason",
					})
					continue
				}
				ent := &ignoreEntry{analyzers: make(map[string]bool), reason: reason, line: pos.Line}
				valid := true
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if !known[name] {
						bad = append(bad, Finding{
							Analyzer: "threadsvet",
							Pos:      pos,
							Message:  fmt.Sprintf("ignore directive names unknown analyzer %q", name),
						})
						valid = false
						continue
					}
					ent.analyzers[name] = true
				}
				if valid {
					ignores[pos.Filename] = append(ignores[pos.Filename], ent)
				}
			}
		}
	}
	return ignores, bad
}

// matchIgnore finds a directive covering pos for analyzer name: one on the
// same line or on the line directly above.
func matchIgnore(ignores map[string][]*ignoreEntry, pos token.Position, name string) *ignoreEntry {
	for _, ent := range ignores[pos.Filename] {
		if ent.analyzers[name] && (ent.line == pos.Line || ent.line == pos.Line-1) {
			return ent
		}
	}
	return nil
}

func buildParents(files []*ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

func keys(m map[string]bool) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
