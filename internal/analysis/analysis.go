// Package analysis statically enforces the usage discipline the paper's
// specification assumes of client code. The specification is sound only
// under obligations it states in prose — return from Wait is only a hint,
// a Condition is protected by exactly one Mutex, Release is called only by
// the holder, AlertWait callers must handle Alerted — and the dynamic
// checkers (internal/checker, internal/trace, internal/explore) verify them
// only on schedules that actually execute. The analyzers here turn each
// obligation into a compile-time diagnostic over `threads` call sites, in
// the spirit of golang.org/x/tools/go/analysis.
//
// The framework mirrors the x/tools Analyzer/Pass shape but is built
// entirely on the standard library (go/ast, go/types, and the source
// importer), so it needs no module dependencies; see Loader. The analyzers
// could be ported to real go/analysis Analyzers (and run under
// `go vet -vettool`) by swapping the driver, which is deliberately thin.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one usage rule. Doc cites the paper clause the rule
// encodes.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax, types and pre-resolved threads-API
// call sites to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *Package

	// Prog is the whole program this package was analyzed within. Always
	// non-nil under the driver; Prog.Summaries() and Prog.Guards() are the
	// cross-package facts shared by the interprocedural analyzers.
	Prog *Program

	// Calls lists every resolved call to the threads API (all faces) in
	// source order. Sites returns the per-CallExpr index.
	Calls []*CallSite
	// MethodVals lists references to tracked methods as method values
	// (w := c.Wait): uses the resolver cannot follow.
	MethodVals []*MethodValue

	// Options carries driver flags ("lockorder.interprocedural": "true").
	Options map[string]string

	sites   map[*ast.CallExpr]*CallSite
	parents map[ast.Node]ast.Node
	report  func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Related positions elsewhere in the program (the annotation a guarded
	// access violates, the callee acquire behind a leak). An ignore
	// directive at any related position also suppresses the finding.
	Related []token.Position
	// Info marks an advisory finding (a -guardedby.suggest proposal): shown,
	// never counted as failure.
	Info bool
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully built diagnostic (related positions, advisory
// flag).
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Site returns the resolved call site for call, if it is a threads-API
// call.
func (p *Pass) Site(call *ast.CallExpr) (*CallSite, bool) {
	s, ok := p.sites[call]
	return s, ok
}

// Parent returns the syntactic parent of n within its file, or nil.
func (p *Pass) Parent(n ast.Node) ast.Node { return p.parents[n] }

// Finding is a driver-level diagnostic: an analyzer finding plus its
// suppression state.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Related    []token.Position // cross-references (annotation site, callee)
	Info       bool             // advisory: reported but never a failure
	Suppressed bool             // silenced by a //threadsvet:ignore directive
	Reason     string           // the directive's justification, when suppressed
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Driver runs a set of analyzers over packages and applies the
// //threadsvet:ignore directives.
type Driver struct {
	Analyzers []*Analyzer
	Options   map[string]string
}

// IgnoreDirective is the suppression syntax the driver parses:
//
//	//threadsvet:ignore analyzer[,analyzer]: reason
//
// placed on the flagged line or on the line directly above it. The reason
// is mandatory: an unjustified or malformed directive is itself reported.
const IgnoreDirective = "threadsvet:ignore"

type ignoreEntry struct {
	analyzers map[string]bool
	reason    string
	line      int
	used      bool
}

// Run analyzes one package, as a single-package program, and returns its
// findings (suppressed ones included, marked) sorted by position.
func (d *Driver) Run(pkg *Package) ([]Finding, error) {
	return d.RunProgram(NewProgram([]*Package{pkg}))
}

// RunProgram analyzes every package of the program and returns the
// combined findings sorted by position. Ignore directives are accounted
// globally: a directive is stale only if it suppressed nothing anywhere in
// the program, so a justification next to an annotation in one package can
// cover findings reported against it from another.
func (d *Driver) RunProgram(prog *Program) ([]Finding, error) {
	ignores := make(map[string][]*ignoreEntry)
	var findings []Finding
	for _, pkg := range prog.Packages {
		ign, bad := d.parseIgnores(pkg)
		for file, ents := range ign {
			ignores[file] = append(ignores[file], ents...)
		}
		findings = append(findings, bad...)
	}

	for _, pkg := range prog.Packages {
		ctx := prog.ctx[pkg]
		for _, a := range d.Analyzers {
			a := a
			pass := prog.pass(ctx)
			pass.Analyzer = a
			pass.Options = d.Options
			pass.report = func(diag Diagnostic) {
				pos := pass.Fset.Position(diag.Pos)
				f := Finding{
					Analyzer: a.Name,
					Pos:      pos,
					Message:  diag.Message,
					Related:  diag.Related,
					Info:     diag.Info,
				}
				if ent := matchIgnore(ignores, pos, diag.Related, a.Name); ent != nil {
					ent.used = true
					f.Suppressed = true
					f.Reason = ent.reason
				}
				findings = append(findings, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}

	// An ignore directive that suppressed nothing anywhere in the program is
	// stale: report it so directives cannot silently outlive the code they
	// excused.
	for file, ents := range ignores {
		for _, ent := range ents {
			if !ent.used {
				findings = append(findings, Finding{
					Analyzer: "threadsvet",
					Pos:      token.Position{Filename: file, Line: ent.line},
					Message:  fmt.Sprintf("ignore directive suppresses nothing (analyzers %s)", keys(ent.analyzers)),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// parseIgnores scans comments for ignore directives. Malformed directives
// (no reason, unknown analyzer) are returned as findings.
func (d *Driver) parseIgnores(pkg *Package) (map[string][]*ignoreEntry, []Finding) {
	known := make(map[string]bool)
	for _, a := range d.Analyzers {
		known[a.Name] = true
	}
	for _, a := range All() { // directives may name analyzers not in this run
		known[a.Name] = true
	}
	ignores := make(map[string][]*ignoreEntry)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+IgnoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names, reason, ok := strings.Cut(strings.TrimSpace(text), ":")
				reason = strings.TrimSpace(reason)
				if !ok || reason == "" {
					bad = append(bad, Finding{
						Analyzer: "threadsvet",
						Pos:      pos,
						Message:  "malformed ignore directive: want //threadsvet:ignore analyzer[,analyzer]: reason",
					})
					continue
				}
				ent := &ignoreEntry{analyzers: make(map[string]bool), reason: reason, line: pos.Line}
				valid := true
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if !known[name] {
						bad = append(bad, Finding{
							Analyzer: "threadsvet",
							Pos:      pos,
							Message:  fmt.Sprintf("ignore directive names unknown analyzer %q", name),
						})
						valid = false
						continue
					}
					ent.analyzers[name] = true
				}
				if valid {
					ignores[pos.Filename] = append(ignores[pos.Filename], ent)
				}
			}
		}
	}
	return ignores, bad
}

// matchIgnore finds a directive covering the finding for analyzer name:
// one on the same line as the position or on the line directly above —
// either at the finding itself or at any of its related positions (so a
// guarded-by violation can be excused where the annotation lives).
func matchIgnore(ignores map[string][]*ignoreEntry, pos token.Position, related []token.Position, name string) *ignoreEntry {
	at := func(p token.Position) *ignoreEntry {
		for _, ent := range ignores[p.Filename] {
			if ent.analyzers[name] && (ent.line == p.Line || ent.line == p.Line-1) {
				return ent
			}
		}
		return nil
	}
	if ent := at(pos); ent != nil {
		return ent
	}
	for _, p := range related {
		if ent := at(p); ent != nil {
			return ent
		}
	}
	return nil
}

func buildParents(files []*ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

func keys(m map[string]bool) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
