package analysis

import (
	"go/ast"
	"testing"
)

// TestResolver pins the call-site resolution rules on the resolver fixture:
// dot imports, aliased imports, the simulator face's shifted mutex
// argument, and method-value captures.
func TestResolver(t *testing.T) {
	pkg := loadFixture(t, "resolver")
	parents := buildParents(pkg.Files)
	calls, sites, methodVals := Resolve(pkg, parents)

	if len(calls) != len(sites) {
		t.Errorf("calls (%d) and sites (%d) disagree", len(calls), len(sites))
	}

	got := make(map[Op]int)
	faces := make(map[Face]int)
	for _, site := range calls {
		got[site.Op]++
		faces[site.Face]++
	}
	wantOps := map[Op]int{
		OpAcquire:   4, // dot, alias, sim, methodvalue
		OpRelease:   4,
		OpWait:      2, // dot (core face) + sim face
		OpAlertWait: 1, // alias
		OpLock:      1, // dot
		OpTestAlert: 1, // dot
		OpV:         1, // alias
	}
	for op, want := range wantOps {
		if got[op] != want {
			t.Errorf("resolved %d %s calls, want %d", got[op], op, want)
		}
	}
	for op, n := range got {
		if wantOps[op] == 0 {
			t.Errorf("unexpected op %s resolved %d times", op, n)
		}
	}
	if faces[FaceSim] != 3 {
		t.Errorf("resolved %d sim-face calls, want 3 (Acquire/Wait/Release)", faces[FaceSim])
	}

	// The sim face passes *sim.Env first: Wait's mutex is argument one.
	for _, site := range calls {
		if site.Op != OpWait && site.Op != OpAlertWait && site.Op != OpLock {
			continue
		}
		if site.MutexArg == nil {
			t.Errorf("%s: no mutex argument resolved", pkg.Fset.Position(site.Call.Pos()))
			continue
		}
		if site.Face == FaceSim {
			if id, ok := ast.Unparen(site.MutexArg).(*ast.Ident); !ok || id.Name != "m" {
				t.Errorf("sim-face %s resolved mutex arg %v, want ident m",
					site.Op, site.MutexArg)
			}
		}
	}

	// w := c.AlertWait is not a call; it must surface as a method value so
	// the discipline is reported unanalyzable rather than silently passed.
	if len(methodVals) != 1 {
		t.Fatalf("method values = %d, want 1", len(methodVals))
	}
	if name := methodVals[0].Method.Name(); name != "AlertWait" {
		t.Errorf("method value resolved to %s, want AlertWait", name)
	}

	// The indirect call through w stays untracked — conservatively
	// unanalyzable, never misclassified.
	for _, site := range calls {
		if id, ok := site.Call.Fun.(*ast.Ident); ok && id.Name == "w" {
			t.Errorf("call through method value w wrongly tracked as %s", site.Op)
		}
	}

	// waitloop turns the capture into a diagnostic.
	runFixture(t, "resolver", WaitLoop, nil)
}
