package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis: syntax, type
// information and the file set they were parsed into.
type Package struct {
	Dir        string
	ImportPath string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of the enclosing module without
// any dependency beyond the standard library: module-local import paths are
// resolved against the module root and everything else is type-checked from
// GOROOT source via the stdlib source importer. (The usual driver for a
// go/analysis suite is golang.org/x/tools/go/packages; this loader is the
// offline stand-in, sufficient because the module has no external
// dependencies.)
type Loader struct {
	ModuleRoot   string
	ModulePath   string
	IncludeTests bool // also parse in-package _test.go files

	Fset *token.FileSet
	std  types.ImporterFrom
	deps map[string]*types.Package
}

// NewLoader returns a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: path,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		deps:       make(map[string]*types.Package),
	}, nil
}

func findModule(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer for dependency resolution during type
// checking of a target package.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom resolves module-local paths against the module root and
// delegates the rest (the standard library) to the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.check(filepath.Join(l.ModuleRoot, filepath.FromSlash(sub)), path, false, nil)
		if err != nil {
			return nil, err
		}
		l.deps[path] = pkg
		return pkg, nil
	}
	p, err := l.std.ImportFrom(path, dir, mode)
	if err == nil {
		l.deps[path] = p
	}
	return p, err
}

// Load parses and type-checks the package in dir as an analysis target,
// retaining syntax and full type information.
func (l *Loader) Load(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath := l.importPathFor(dir)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var files []*ast.File
	tpkg, err := l.check(dir, importPath, l.IncludeTests, func(fs []*ast.File, ti *types.Info) {
		files = fs
		*ti = *info // share the maps so check fills our info
	})
	if err != nil {
		return nil, err
	}
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// check parses the buildable files of dir and type-checks them. hook, when
// non-nil, receives the parsed files and the Info the checker will fill
// (targets want them, plain imports do not).
func (l *Loader) check(dir, importPath string, includeTests bool, hook func([]*ast.File, *types.Info)) (*types.Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); !noGo || !includeTests {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
	}
	names := append([]string{}, bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{}
	if hook != nil {
		hook(files, info)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return pkg, nil
}

// ExpandPatterns resolves go-tool style package patterns ("./...",
// "./internal/...", "./derived") relative to base into package directories,
// skipping testdata, hidden directories and directories without buildable
// Go files.
func (l *Loader) ExpandPatterns(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] && l.hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(base, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(base, filepath.FromSlash(pat)))
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return dirs, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return l.IncludeTests && len(bp.TestGoFiles) > 0
	}
	return len(bp.GoFiles) > 0 || (l.IncludeTests && len(bp.TestGoFiles) > 0)
}
