package analysis

import "testing"

func TestLockPair(t *testing.T) {
	runFixture(t, "lockpair", LockPair, nil)
}
