package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PriorityDiscipline checks that no scheduling priority is changed — and no
// priority-carrying thread forked — while a spin lock from internal/spinlock
// is held. Thread.SetPriority and Mutex.SetPriorityInheritance take the
// target thread's donation lock, which by the core lock order is the DEEPEST
// lock in the system (gate spin lock → donation lock, never the reverse);
// calling them with any spin lock held either inverts that order or extends
// a Nub critical section by a full donation-table recalculation plus trace
// emission. ForkPri/ForkNamedPri additionally allocate and spawn. The
// nubdiscipline analyzer catches generic blocking and allocation; this one
// names the priority API specifically, because Thread.SetPriority is
// spin-lock-free in isolation and would otherwise pass.
//
// Flagged while a spin lock is held:
//
//   - Thread.SetPriority and Mutex.SetPriorityInheritance (donation-lock
//     order violation);
//   - ForkPri / ForkNamedPri (allocation and scheduler entry with a
//     priority in hand);
//   - calls to same-package functions that transitively do any of the above.
//
// The analyzer runs only on packages that import internal/spinlock, and not
// on internal/spinlock itself.
var PriorityDiscipline = &Analyzer{
	Name: "prioritydiscipline",
	Doc: "check that no priority is set and no priority-carrying thread is " +
		"forked while an internal/spinlock lock is held (the donation lock " +
		"is the deepest lock; see DESIGN.md on priority inheritance)",
	Run: runPriorityDiscipline,
}

func runPriorityDiscipline(pass *Pass) error {
	if pass.Pkg.ImportPath == pkgSpinlock {
		return nil
	}
	imports := false
	for _, imp := range pass.Pkg.Types.Imports() {
		if imp.Path() == pkgSpinlock {
			imports = true
			break
		}
	}
	if !imports {
		return nil
	}

	sums := newPriorityCallSummaries(pass)
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, lock, what string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, "%s while spin lock %s is held: priority changes take the "+
			"donation lock, the deepest lock in the core lock order (DESIGN.md)", what, lock)
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			w := &seqWalker{pass: pass}
			w.client = seqClient{
				node: func(n ast.Node, st *holds) bool {
					lock, held := spinHeld(st)
					if !held {
						return true
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if what := classifyPriorityCall(pass, sums, call); what != "" {
						report(call.Pos(), lock, what)
						return false
					}
					return true
				},
			}
			w.walkFunc(fd)
		}
	}
	return nil
}

// classifyPriorityCall returns a description if call reaches the priority
// API (directly, or transitively through a same-package function), else "".
func classifyPriorityCall(pass *Pass, sums *priorityCallSummaries, call *ast.CallExpr) string {
	fn, ok := Callee(pass.Pkg.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if what := priorityAPICall(fn); what != "" {
		return what
	}
	if fn.Pkg().Path() == pass.Pkg.ImportPath {
		if hit := sums.lookup(fn); hit != nil {
			return fmt.Sprintf("call to %s, which performs %s at %s",
				fn.Name(), hit.what, pass.Fset.Position(hit.pos))
		}
	}
	return ""
}

// priorityAPICall names the priority-mutating entry points of the threads
// facade and internal/core (the facade is type aliases onto core, so both
// resolve to core objects).
func priorityAPICall(fn *types.Func) string {
	switch fn.Pkg().Path() {
	case pkgThreads, pkgCore:
	default:
		return ""
	}
	switch recvTypeName(fn) {
	case "Thread":
		if fn.Name() == "SetPriority" {
			return "Thread.SetPriority call"
		}
	case "Mutex":
		if fn.Name() == "SetPriorityInheritance" {
			return "Mutex.SetPriorityInheritance call"
		}
	case "":
		switch fn.Name() {
		case "ForkPri", "ForkNamedPri":
			return fn.Name() + " call"
		}
	}
	return ""
}

// priorityHit is the first priority-API call found in a function body.
type priorityHit struct {
	what string
	pos  token.Pos
}

// priorityCallSummaries lazily computes, per same-package function, whether
// its body (transitively) calls the priority API.
type priorityCallSummaries struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]*priorityHit
	stack map[*types.Func]bool
}

func newPriorityCallSummaries(pass *Pass) *priorityCallSummaries {
	s := &priorityCallSummaries{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func]*priorityHit),
		stack: make(map[*types.Func]bool),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name != nil {
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					s.decls[fn] = fd
				}
			}
		}
	}
	return s
}

func (s *priorityCallSummaries) lookup(fn *types.Func) *priorityHit {
	if got, ok := s.memo[fn]; ok {
		return got
	}
	if s.stack[fn] {
		return nil
	}
	decl, ok := s.decls[fn]
	if !ok || decl.Body == nil {
		s.memo[fn] = nil
		return nil
	}
	s.stack[fn] = true
	defer delete(s.stack, fn)

	var found *priorityHit
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := Callee(s.pass.Pkg.Info, call).(*types.Func)
		if !ok || callee.Pkg() == nil {
			return true
		}
		if what := priorityAPICall(callee); what != "" {
			found = &priorityHit{what: what, pos: call.Pos()}
			return false
		}
		if callee.Pkg().Path() == s.pass.Pkg.ImportPath {
			if hit := s.lookup(callee); hit != nil {
				found = &priorityHit{what: hit.what, pos: hit.pos}
				return false
			}
		}
		return true
	})
	s.memo[fn] = found
	return found
}
