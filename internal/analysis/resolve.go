package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Face says which implementation surface a call site belongs to: the real
// runtime (package threads or internal/core — the former is type aliases
// onto the latter, so both resolve to core objects), the simulator face
// (internal/simthreads, whose methods take a *sim.Env first), or the Nub's
// spin lock (internal/spinlock, tracked for the nubdiscipline analyzer).
type Face int

const (
	FaceNone Face = iota
	FaceCore
	FaceSim
	FaceSpin
)

// Op is the operation a resolved call performs.
type Op int

const (
	OpNone Op = iota
	OpAcquire
	OpTryAcquire
	OpRelease
	OpLock // threads.Lock / core.Lock(m, body)
	OpWait
	OpAlertWait
	OpAlertWaitDeadline
	OpSignal
	OpBroadcast
	OpP
	OpTryP
	OpV
	OpAlertP
	OpAlertPDeadline
	OpAcquireDeadline
	OpAlert
	OpTestAlert
	OpFork
	OpJoin
	OpSpinLock
	OpSpinTryLock
	OpSpinUnlock
)

var opNames = map[Op]string{
	OpAcquire: "Acquire", OpTryAcquire: "TryAcquire", OpRelease: "Release",
	OpLock: "Lock", OpWait: "Wait", OpAlertWait: "AlertWait",
	OpAlertWaitDeadline: "AlertWaitDeadline", OpAcquireDeadline: "AcquireDeadline",
	OpSignal: "Signal", OpBroadcast: "Broadcast",
	OpP: "P", OpTryP: "TryP", OpV: "V", OpAlertP: "AlertP",
	OpAlertPDeadline: "AlertPDeadline",
	OpAlert:          "Alert", OpTestAlert: "TestAlert", OpFork: "Fork", OpJoin: "Join",
	OpSpinLock: "Lock", OpSpinTryLock: "TryLock", OpSpinUnlock: "Unlock",
}

func (o Op) String() string { return opNames[o] }

// Blocking reports whether the operation can suspend the calling thread.
func (o Op) Blocking() bool {
	switch o {
	case OpAcquire, OpAcquireDeadline, OpLock, OpWait, OpAlertWait,
		OpAlertWaitDeadline, OpP, OpAlertP, OpAlertPDeadline, OpJoin:
		return true
	}
	return false
}

// The packages whose call sites the suite resolves.
const (
	pkgThreads  = "threads"
	pkgCore     = "threads/internal/core"
	pkgSim      = "threads/internal/simthreads"
	pkgSpinlock = "threads/internal/spinlock"
)

// CallSite is one resolved call to the tracked API.
type CallSite struct {
	Call *ast.CallExpr
	Op   Op
	Face Face

	// Recv is the receiver expression for method calls (c in c.Wait(&mu)),
	// nil for package functions.
	Recv ast.Expr
	// MutexArg is the mutex the call operates on beyond its receiver: the
	// m of Wait/AlertWait (argument 0 on the core face, 1 on the sim face)
	// and of Lock(m, body).
	MutexArg ast.Expr
	// BodyArg is Lock's critical-section closure argument.
	BodyArg ast.Expr
}

// MethodValue is a reference to a tracked method outside call position
// (w := c.Wait). The resolver cannot follow the eventual call, so analyzers
// report these sites as unanalyzable rather than silently passing them.
type MethodValue struct {
	Sel    *ast.SelectorExpr
	Method *types.Func
}

// Resolve classifies every tracked call site and method-value reference in
// the package, in source order.
func Resolve(pkg *Package, parents map[ast.Node]ast.Node) ([]*CallSite, map[*ast.CallExpr]*CallSite, []*MethodValue) {
	var calls []*CallSite
	sites := make(map[*ast.CallExpr]*CallSite)
	var methodVals []*MethodValue

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if site := classify(pkg.Info, call); site != nil {
					calls = append(calls, site)
					sites[call] = site
				}
			}
			return true
		})
	}

	// Method values: tracked methods referenced but not called directly.
	for sel, selection := range pkg.Info.Selections {
		if selection.Kind() != types.MethodVal {
			continue
		}
		fn, ok := selection.Obj().(*types.Func)
		if !ok || !trackedMethod(fn) {
			continue
		}
		if call, ok := parents[sel].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			continue // ordinary method call, already classified
		}
		methodVals = append(methodVals, &MethodValue{Sel: sel, Method: fn})
	}

	sort.Slice(calls, func(i, j int) bool { return calls[i].Call.Pos() < calls[j].Call.Pos() })
	sort.Slice(methodVals, func(i, j int) bool { return methodVals[i].Sel.Pos() < methodVals[j].Sel.Pos() })
	return calls, sites, methodVals
}

// Callee resolves the called function or method object, seeing through
// aliased and dot imports (both resolve through types.Info.Uses). Indirect
// calls — through a variable, field or parameter of function type — return
// nil.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func classify(info *types.Info, call *ast.CallExpr) *CallSite {
	fn, ok := Callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	face, op := classifyFunc(fn)
	if op == OpNone {
		return nil
	}
	site := &CallSite{Call: call, Op: op, Face: face}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := info.Selections[sel]; isMethod {
			site.Recv = sel.X
		}
	}
	switch op {
	case OpWait, OpAlertWait, OpAlertWaitDeadline:
		idx := 0
		if face == FaceSim {
			idx = 1 // (e *sim.Env, m *Mutex)
		}
		if len(call.Args) > idx {
			site.MutexArg = call.Args[idx]
		}
	case OpLock:
		if len(call.Args) == 2 {
			site.MutexArg = call.Args[0]
			site.BodyArg = call.Args[1]
		}
	}
	return site
}

// classifyFunc maps a function object to its face and operation, keyed on
// the defining package, receiver type and name.
func classifyFunc(fn *types.Func) (Face, Op) {
	if fn.Pkg() == nil {
		return FaceNone, OpNone // universe-scope methods (error.Error)
	}
	switch fn.Pkg().Path() {
	case pkgThreads, pkgCore:
		switch recvTypeName(fn) {
		case "Mutex":
			switch fn.Name() {
			case "Acquire":
				return FaceCore, OpAcquire
			case "TryAcquire":
				return FaceCore, OpTryAcquire
			case "Release":
				return FaceCore, OpRelease
			case "AcquireDeadline":
				return FaceCore, OpAcquireDeadline
			}
		case "Condition":
			switch fn.Name() {
			case "Wait":
				return FaceCore, OpWait
			case "AlertWait":
				return FaceCore, OpAlertWait
			case "AlertWaitDeadline":
				return FaceCore, OpAlertWaitDeadline
			case "Signal":
				return FaceCore, OpSignal
			case "Broadcast":
				return FaceCore, OpBroadcast
			}
		case "Semaphore":
			switch fn.Name() {
			case "P":
				return FaceCore, OpP
			case "TryP":
				return FaceCore, OpTryP
			case "V":
				return FaceCore, OpV
			case "AlertP":
				return FaceCore, OpAlertP
			case "AlertPDeadline":
				return FaceCore, OpAlertPDeadline
			}
		case "":
			switch fn.Name() {
			case "Lock":
				return FaceCore, OpLock
			case "Alert":
				return FaceCore, OpAlert
			case "TestAlert":
				return FaceCore, OpTestAlert
			case "Fork", "ForkNamed":
				return FaceCore, OpFork
			case "Join":
				return FaceCore, OpJoin
			}
		}
	case pkgSim:
		switch recvTypeName(fn) {
		case "Mutex":
			switch fn.Name() {
			case "Acquire":
				return FaceSim, OpAcquire
			case "Release":
				return FaceSim, OpRelease
			}
		case "Condition":
			switch fn.Name() {
			case "Wait":
				return FaceSim, OpWait
			case "AlertWait":
				return FaceSim, OpAlertWait
			case "Signal":
				return FaceSim, OpSignal
			case "Broadcast":
				return FaceSim, OpBroadcast
			}
		case "Semaphore":
			switch fn.Name() {
			case "P":
				return FaceSim, OpP
			case "V":
				return FaceSim, OpV
			case "AlertP":
				return FaceSim, OpAlertP
			}
		case "World":
			switch fn.Name() {
			case "Alert":
				return FaceSim, OpAlert
			case "TestAlert":
				return FaceSim, OpTestAlert
			}
		}
	case pkgSpinlock:
		if recvTypeName(fn) == "Lock" {
			switch fn.Name() {
			case "Lock":
				return FaceSpin, OpSpinLock
			case "TryLock":
				return FaceSpin, OpSpinTryLock
			case "Unlock":
				return FaceSpin, OpSpinUnlock
			}
		}
	}
	return FaceNone, OpNone
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func trackedMethod(fn *types.Func) bool {
	_, op := classifyFunc(fn)
	switch op {
	case OpWait, OpAlertWait, OpAlertWaitDeadline, OpAcquire, OpAcquireDeadline,
		OpRelease, OpP, OpV, OpAlertP, OpAlertPDeadline:
		return true
	}
	return false
}

// RefKey returns a stable per-package identity for a lock- or
// condition-valued expression, so that `&l.mu`, `l.mu` and `(l.mu)` at
// different sites compare equal. The key is built from the root object
// (package-level variable, local, parameter or receiver) plus the selected
// field path. Expressions with no such stable root (function calls, index
// expressions, channel receives, …) report ok=false: callers must treat
// those sites as unanalyzable, not as distinct.
//
// typeRoots, when non-nil, lists variables (typically the enclosing
// function's receiver and parameters) whose key should be their type
// rather than their identity, so that `l.mu` unifies across methods of the
// same type; the condmutex and lockorder analyzers use this to relate
// sites in different functions. Package-level roots always key by their
// import path and name.
func RefKey(info *types.Info, fset *token.FileSet, e ast.Expr, typeRoots map[*types.Var]bool) (key, display string, ok bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return RefKey(info, fset, x.X, typeRoots)
		}
	case *ast.StarExpr:
		return RefKey(info, fset, x.X, typeRoots)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, isVar := obj.(*types.Var)
		if !isVar {
			return "", "", false
		}
		return rootKey(v, fset, typeRoots), x.Name, true
	case *ast.SelectorExpr:
		// Field selection: root.path.field. Method selections and
		// package-qualified idents resolve differently.
		if sel, isSel := info.Selections[x]; isSel && sel.Kind() == types.FieldVal {
			base, bdisp, bok := RefKey(info, fset, x.X, typeRoots)
			if !bok {
				return "", "", false
			}
			return base + "." + x.Sel.Name, bdisp + "." + x.Sel.Name, true
		}
		if id, isID := ast.Unparen(x.X).(*ast.Ident); isID {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				// pkg.Var
				if v, isVar := info.Uses[x.Sel].(*types.Var); isVar {
					return rootKey(v, fset, typeRoots), x.Sel.Name, true
				}
			}
		}
	}
	return "", "", false
}

// TypeRoots collects the receiver and parameters of fn (a *ast.FuncDecl or
// *ast.FuncLit), for use as RefKey's typeRoots set.
func TypeRoots(info *types.Info, fn ast.Node) map[*types.Var]bool {
	roots := make(map[*types.Var]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					roots[v] = true
				}
			}
		}
	}
	switch d := fn.(type) {
	case *ast.FuncDecl:
		addFields(d.Recv)
		addFields(d.Type.Params)
	case *ast.FuncLit:
		addFields(d.Type.Params)
	}
	return roots
}

func rootKey(v *types.Var, fset *token.FileSet, typeRoots map[*types.Var]bool) string {
	if typeRoots[v] {
		// Receiver or parameter: key by type, folding pointer and value
		// receivers together (and generic instantiations onto the generic
		// declaration), so the same field chain unifies across functions on
		// the same type.
		return "(" + normalizedTypeName(v.Type()) + ")"
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name()
	}
	// Local: position of the declaration is unique per object.
	return fmt.Sprintf("%s@%s", v.Name(), fset.Position(v.Pos()))
}
