// Package workload provides the parameterized workloads the experiments
// run: bounded-buffer producer/consumer, readers-writers, and raw mutex
// contention — each over any baselines.Monitor (the paper's primitives,
// Hoare monitors, semaphore condvars or native Go sync), plus simulator
// variants over internal/simthreads for instruction-accurate sweeps.
package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"threads/internal/baselines"
	"threads/internal/core"
)

// PCConfig parameterizes the bounded-buffer workload.
type PCConfig struct {
	Producers, Consumers int
	ItemsPerProducer     int
	Capacity             int
	// Work spins this many iterations outside the critical section per
	// item, modelling real processing.
	Work int
}

// PCResult reports a producer-consumer run.
type PCResult struct {
	Items   int
	Elapsed time.Duration
	// Waits counts Wait calls; SpuriousResumes counts returns from Wait
	// that found the predicate still false (Mesa wakeups that had to loop
	// — zero under Hoare semantics, experiment E6).
	Waits           uint64
	SpuriousResumes uint64
}

// ItemsPerSec returns throughput.
func (r PCResult) ItemsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds()
}

// SpuriousRate returns the fraction of Wait returns with a false predicate.
func (r PCResult) SpuriousRate() float64 {
	if r.Waits == 0 {
		return 0
	}
	return float64(r.SpuriousResumes) / float64(r.Waits)
}

// ProducerConsumer runs the canonical bounded-buffer monitor program on m.
func ProducerConsumer(m baselines.Monitor, cfg PCConfig) PCResult {
	nonEmpty := m.NewCond()
	nonFull := m.NewCond()
	var (
		queue    int
		waits    uint64
		spurious uint64
	)
	total := cfg.Producers * cfg.ItemsPerProducer
	var consumed int64
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(cfg.Producers + cfg.Consumers)
	for p := 0; p < cfg.Producers; p++ {
		go func() {
			defer wg.Done()
			// These workers are raw goroutines; when m is the paper's
			// runtime, any primitive path that needs SELF (checking mode,
			// conformance tracing, alertable waits) adopts them into the
			// goroutine→Thread registry, so they must detach on exit or a
			// long experiment sweep leaks one registry entry per worker.
			defer core.Detach()
			for i := 0; i < cfg.ItemsPerProducer; i++ {
				busy(cfg.Work)
				m.Acquire()
				for queue == cfg.Capacity {
					atomic.AddUint64(&waits, 1)
					nonFull.Wait()
					if queue == cfg.Capacity {
						atomic.AddUint64(&spurious, 1)
					}
				}
				queue++
				// Signal while holding the monitor: every implementation
				// permits it, and Hoare signalling requires it (the
				// hand-off transfers ownership to the waiter).
				nonEmpty.Signal()
				m.Release()
			}
		}()
	}
	for c := 0; c < cfg.Consumers; c++ {
		go func() {
			defer wg.Done()
			defer core.Detach()
			for {
				m.Acquire()
				for queue == 0 {
					if int(atomic.LoadInt64(&consumed)) >= total {
						nonEmpty.Broadcast()
						m.Release()
						return
					}
					atomic.AddUint64(&waits, 1)
					nonEmpty.Wait()
					if queue == 0 && int(atomic.LoadInt64(&consumed)) < total {
						// Only count a false predicate during operation:
						// the shutdown Broadcast wakes blocked consumers
						// to an empty queue by design, on every
						// implementation — including Hoare's, whose
						// guarantee is about Signal hand-offs.
						atomic.AddUint64(&spurious, 1)
					}
				}
				queue--
				n := atomic.AddInt64(&consumed, 1)
				nonFull.Signal()
				last := int(n) >= total
				if last {
					nonEmpty.Broadcast()
				}
				m.Release()
				busy(cfg.Work)
				if last {
					return
				}
			}
		}()
	}
	wg.Wait()
	return PCResult{
		Items:           total,
		Elapsed:         time.Since(start),
		Waits:           atomic.LoadUint64(&waits),
		SpuriousResumes: atomic.LoadUint64(&spurious),
	}
}

// busy spins for roughly n units of CPU work.
func busy(n int) {
	x := 0
	for i := 0; i < n; i++ {
		x += i
	}
	atomic.StoreInt64(&busySink, int64(x))
}

var busySink int64

// busyYield is busy with scheduling points, so sections overlap logically
// even on a single processor (the read sections of ReadersWriters must be
// interleavable for Broadcast's effect to be observable under GOMAXPROCS=1).
func busyYield(n int) {
	const chunk = 1000
	for n > 0 {
		c := chunk
		if n < c {
			c = n
		}
		busy(c)
		n -= c
		runtime.Gosched()
	}
}

// ContentionConfig parameterizes raw mutex contention.
type ContentionConfig struct {
	Threads int
	Iters   int // critical sections per thread
	CSWork  int // work units inside the critical section
	Think   int // work units outside
}

// ContentionResult reports a contention run.
type ContentionResult struct {
	Ops     int
	Elapsed time.Duration
}

// OpsPerSec returns lock-acquisition throughput.
func (r ContentionResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MutexContention hammers a single Monitor's lock from cfg.Threads
// goroutines.
func MutexContention(m baselines.Monitor, cfg ContentionConfig) ContentionResult {
	var wg sync.WaitGroup
	wg.Add(cfg.Threads)
	start := time.Now()
	for i := 0; i < cfg.Threads; i++ {
		go func() {
			defer wg.Done()
			defer core.Detach() // see ProducerConsumer: adopted by tracing/checking paths
			for j := 0; j < cfg.Iters; j++ {
				m.Acquire()
				busy(cfg.CSWork)
				m.Release()
				busy(cfg.Think)
			}
		}()
	}
	wg.Wait()
	return ContentionResult{Ops: cfg.Threads * cfg.Iters, Elapsed: time.Since(start)}
}

// RWConfig parameterizes the readers-writers workload (the paper's
// motivating Broadcast example: releasing a writer lock permits all readers
// to resume).
type RWConfig struct {
	Readers, Writers int
	OpsPerThread     int
	ReadWork         int
	WriteWork        int
}

// RWResult reports a readers-writers run.
type RWResult struct {
	Ops     int
	Elapsed time.Duration
	// MaxConcR is the peak number of threads simultaneously holding the
	// read lock (the logical concurrency Broadcast enables; it does not
	// require physical parallelism to exceed 1).
	MaxConcR int
}

// OpsPerSec returns combined read+write throughput.
func (r RWResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// ReadersWriters runs a writer-priority readers-writer lock built from m
// and one condition variable, using Broadcast to release readers en masse.
func ReadersWriters(m baselines.Monitor, cfg RWConfig) RWResult {
	c := m.NewCond()
	var (
		readers  int
		writing  bool
		maxConcR int
	)
	var wg sync.WaitGroup
	wg.Add(cfg.Readers + cfg.Writers)
	start := time.Now()
	for i := 0; i < cfg.Readers; i++ {
		go func() {
			defer wg.Done()
			defer core.Detach() // see ProducerConsumer: adopted by tracing/checking paths
			for j := 0; j < cfg.OpsPerThread; j++ {
				m.Acquire()
				for writing {
					c.Wait()
				}
				readers++
				if readers > maxConcR {
					maxConcR = readers // under the monitor: race-free
				}
				m.Release()

				busyYield(cfg.ReadWork)

				m.Acquire()
				readers--
				if readers == 0 {
					c.Broadcast() // a waiting writer may proceed
				}
				m.Release()
			}
		}()
	}
	for i := 0; i < cfg.Writers; i++ {
		go func() {
			defer wg.Done()
			defer core.Detach() // see ProducerConsumer: adopted by tracing/checking paths
			for j := 0; j < cfg.OpsPerThread; j++ {
				m.Acquire()
				for writing || readers > 0 {
					c.Wait()
				}
				writing = true
				m.Release()

				busyYield(cfg.WriteWork)

				m.Acquire()
				writing = false
				// Releasing a "writer" lock might permit all "readers"
				// to resume: Broadcast is necessary for correctness
				// (issued while holding, so Hoare monitors work too).
				c.Broadcast()
				m.Release()
			}
		}()
	}
	wg.Wait()
	return RWResult{
		Ops:      (cfg.Readers + cfg.Writers) * cfg.OpsPerThread,
		Elapsed:  time.Since(start),
		MaxConcR: maxConcR,
	}
}
