package workload

import (
	"testing"

	"threads/internal/baselines"
)

func TestProducerConsumerAllMonitors(t *testing.T) {
	for _, m := range []baselines.Monitor{
		baselines.NewThreadsMonitor(),
		baselines.NewHoareMonitor(),
		baselines.NewNativeMonitor(),
		baselines.NewSemCondMonitor(),
	} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res := ProducerConsumer(m, PCConfig{
				Producers: 2, Consumers: 2, ItemsPerProducer: 500, Capacity: 4,
			})
			if res.Items != 1000 {
				t.Fatalf("items = %d", res.Items)
			}
			if res.Elapsed <= 0 {
				t.Fatal("no elapsed time measured")
			}
		})
	}
}

func TestHoareHasNoSpuriousResumes(t *testing.T) {
	res := ProducerConsumer(baselines.NewHoareMonitor(), PCConfig{
		Producers: 2, Consumers: 2, ItemsPerProducer: 1000, Capacity: 2,
	})
	// Hoare handoff: predicate guaranteed, so a resumed waiter never finds
	// it false. (The consumers' shutdown Broadcast can wake waiters to a
	// false predicate legitimately — but those re-check consumed and exit,
	// and the counter only increments when the waiter loops on a false
	// predicate mid-run; with direct handoff that cannot happen for
	// Signal-driven wakeups, so the rate should be essentially zero.)
	if res.SpuriousRate() > 0.01 {
		t.Fatalf("Hoare spurious rate = %.4f, want ~0", res.SpuriousRate())
	}
}

func TestMutexContention(t *testing.T) {
	res := MutexContention(baselines.NewThreadsMonitor(), ContentionConfig{
		Threads: 4, Iters: 2000, CSWork: 5, Think: 5,
	})
	if res.Ops != 8000 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.OpsPerSec() <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestReadersWriters(t *testing.T) {
	for _, m := range []baselines.Monitor{
		baselines.NewThreadsMonitor(),
		baselines.NewNativeMonitor(),
	} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res := ReadersWriters(m, RWConfig{
				Readers: 6, Writers: 2, OpsPerThread: 300, ReadWork: 20000, WriteWork: 2000,
			})
			if res.Ops != 8*300 {
				t.Fatalf("ops = %d", res.Ops)
			}
			// Broadcast should have enabled genuine read concurrency.
			if res.MaxConcR < 2 {
				t.Fatalf("max concurrent readers = %d; Broadcast not releasing readers together", res.MaxConcR)
			}
		})
	}
}

func TestSimMutexContention(t *testing.T) {
	res, err := SimMutexContention(SimContentionConfig{
		Procs: 1, Threads: 1, Iters: 100, CSWork: 0, Think: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uncontended: all fast path, and the makespan is exactly 100 pairs
	// at 5 instructions each.
	if res.FastPathRate() != 1 {
		t.Fatalf("uncontended fast-path rate = %v", res.FastPathRate())
	}
	if res.Makespan != 500 {
		t.Fatalf("makespan = %d instructions, want 500 (100 pairs × 5)", res.Makespan)
	}
	// Contended: fast-path rate must drop.
	res2, err := SimMutexContention(SimContentionConfig{
		Procs: 4, Threads: 8, Iters: 50, CSWork: 50, Think: 0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FastPathRate() >= 0.99 {
		t.Fatalf("contended fast-path rate = %v, expected real contention", res2.FastPathRate())
	}
}

func TestSimProducerConsumer(t *testing.T) {
	res, err := SimProducerConsumer(SimPCConfig{
		Procs: 2, Producers: 2, Consumers: 2, ItemsPerProducer: 50, Capacity: 4, Work: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != 100 || res.Makespan == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.ItemsPerSecond() <= 0 {
		t.Fatal("throughput not computed")
	}
}

// TestLostWakeupTrials (E4): the eventcount implementation never loses a
// wakeup; the naive one does, on some seeds.
func TestLostWakeupTrials(t *testing.T) {
	naiveLost, ecLost := 0, 0
	const seeds = 100
	for seed := int64(0); seed < seeds; seed++ {
		if RunLostWakeupTrial(LostWakeupTrial{Seed: seed, Procs: 2, Waiters: 2, UseEventcount: false}) {
			naiveLost++
		}
		if RunLostWakeupTrial(LostWakeupTrial{Seed: seed, Procs: 2, Waiters: 2, UseEventcount: true}) {
			ecLost++
		}
	}
	if ecLost != 0 {
		t.Fatalf("eventcount implementation lost %d wakeups", ecLost)
	}
	if naiveLost == 0 {
		t.Fatalf("naive implementation lost no wakeups in %d seeds", seeds)
	}
	t.Logf("E4: naive lost %d/%d, eventcount lost %d/%d", naiveLost, seeds, ecLost, seeds)
}
