package workload

import (
	"threads/internal/baselines"
	"threads/internal/sim"
	"threads/internal/simthreads"
)

// SimContentionConfig parameterizes an instruction-accurate contention run
// on the simulated Firefly.
type SimContentionConfig struct {
	Procs   int
	Threads int
	Iters   int // critical sections per thread
	CSWork  int // instructions inside the critical section
	Think   int // instructions outside
	Seed    int64
}

// SimContentionResult reports a simulated contention run.
type SimContentionResult struct {
	Stats    simthreads.Stats
	Makespan uint64 // parallel running time in instructions
	Micros   float64
	Steps    uint64 // total instructions executed
	// Utilization is each processor's busy fraction of the makespan.
	Utilization []float64
}

// FastPathRate returns the fraction of Acquires that stayed in user code
// (no Nub call) — experiment E2's dependent variable.
func (r SimContentionResult) FastPathRate() float64 {
	total := r.Stats.AcquireFast + r.Stats.AcquireNub
	if total == 0 {
		return 1
	}
	return float64(r.Stats.AcquireFast) / float64(total)
}

// PairMicros returns the mean cost in microseconds of one
// Acquire-CS-Release-think cycle across the run.
func (r SimContentionResult) PairMicros(cfg SimContentionConfig) float64 {
	ops := cfg.Threads * cfg.Iters
	if ops == 0 {
		return 0
	}
	return r.Micros / float64(ops)
}

// SimMutexContention runs the contention workload on the simulator and
// returns instruction-level statistics.
func SimMutexContention(cfg SimContentionConfig) (SimContentionResult, error) {
	w, k := simthreads.NewWorld(sim.Config{
		Procs:    cfg.Procs,
		Seed:     cfg.Seed,
		Quantum:  10_000,
		MaxSteps: 200_000_000,
	})
	m := w.NewMutex()
	for i := 0; i < cfg.Threads; i++ {
		k.Spawn("", func(e *sim.Env) {
			for n := 0; n < cfg.Iters; n++ {
				m.Acquire(e)
				e.Work(uint64(cfg.CSWork))
				m.Release(e)
				e.Work(uint64(cfg.Think))
			}
		})
	}
	if err := k.Run(); err != nil {
		return SimContentionResult{}, err
	}
	return SimContentionResult{
		Stats:       w.Stats,
		Makespan:    k.Makespan(),
		Micros:      k.MakespanMicros(),
		Steps:       k.Steps(),
		Utilization: k.Utilization(),
	}, nil
}

// SimPCConfig parameterizes the simulated bounded-buffer workload.
type SimPCConfig struct {
	Procs            int
	Producers        int
	Consumers        int
	ItemsPerProducer int
	Capacity         int
	Work             int // instructions per item outside the monitor
	Seed             int64
}

// SimPCResult reports a simulated producer-consumer run.
type SimPCResult struct {
	Stats    simthreads.Stats
	Makespan uint64
	Micros   float64
	Items    int
}

// ItemsPerSecond converts to items per simulated second.
func (r SimPCResult) ItemsPerSecond() float64 {
	if r.Micros <= 0 {
		return 0
	}
	return float64(r.Items) / (r.Micros / 1e6)
}

// SimProducerConsumer runs the bounded-buffer workload on the simulator.
func SimProducerConsumer(cfg SimPCConfig) (SimPCResult, error) {
	w, k := simthreads.NewWorld(sim.Config{
		Procs:    cfg.Procs,
		Seed:     cfg.Seed,
		Quantum:  10_000,
		MaxSteps: 500_000_000,
	})
	m := w.NewMutex()
	nonEmpty := w.NewCondition()
	nonFull := w.NewCondition()
	var queue, consumed sim.Word
	total := cfg.Producers * cfg.ItemsPerProducer
	for i := 0; i < cfg.Producers; i++ {
		k.Spawn("producer", func(e *sim.Env) {
			for n := 0; n < cfg.ItemsPerProducer; n++ {
				e.Work(uint64(cfg.Work))
				m.Acquire(e)
				for e.Load(&queue) == uint64(cfg.Capacity) {
					nonFull.Wait(e, m)
				}
				e.Add(&queue, 1)
				m.Release(e)
				nonEmpty.Signal(e)
			}
		})
	}
	for i := 0; i < cfg.Consumers; i++ {
		k.Spawn("consumer", func(e *sim.Env) {
			for {
				m.Acquire(e)
				for e.Load(&queue) == 0 {
					if e.Load(&consumed) >= uint64(total) {
						m.Release(e)
						nonEmpty.Broadcast(e)
						return
					}
					nonEmpty.Wait(e, m)
				}
				e.Add(&queue, ^uint64(0))
				n := e.Add(&consumed, 1)
				m.Release(e)
				nonFull.Signal(e)
				e.Work(uint64(cfg.Work))
				if n >= uint64(total) {
					nonEmpty.Broadcast(e)
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		return SimPCResult{}, err
	}
	return SimPCResult{
		Stats:    w.Stats,
		Makespan: k.Makespan(),
		Micros:   k.MakespanMicros(),
		Items:    total,
	}, nil
}

// LostWakeupTrial parameterizes one seeded wakeup-race handshake with
// either the paper's eventcount condition variable (UseEventcount=true) or
// the naive racy one. Experiment E4 sweeps seeds over both and counts lost
// wakeups.
type LostWakeupTrial struct {
	Seed          int64
	Procs         int
	UseEventcount bool
	Waiters       int // racing waiters; all must wake
}

// RunLostWakeupTrial runs the trial and reports whether any wakeup was lost
// (the run deadlocked with a waiter still blocked).
func RunLostWakeupTrial(tr LostWakeupTrial) bool {
	w, k := simthreads.NewWorld(sim.Config{
		Procs:    tr.Procs,
		Seed:     tr.Seed,
		Policy:   sim.PolicyRandom,
		MaxSteps: 2_000_000,
	})
	m := w.NewMutex()
	var ready sim.Word
	var cond *simthreads.Condition
	var naive *baselines.NaiveSimCond
	if tr.UseEventcount {
		cond = w.NewCondition()
	} else {
		naive = baselines.NewNaiveSimCond()
	}
	wait := func(e *sim.Env) {
		if cond != nil {
			//threadsvet:ignore waitloop: nil-dispatch helper; every caller loops `for e.Load(&ready) == 0 { wait(e) }`
			cond.Wait(e, m)
		} else {
			naive.Wait(e, m)
		}
	}
	for i := 0; i < tr.Waiters; i++ {
		k.Spawn("waiter", func(e *sim.Env) {
			m.Acquire(e)
			for e.Load(&ready) == 0 {
				wait(e)
			}
			m.Release(e)
		})
	}
	k.Spawn("signaller", func(e *sim.Env) {
		m.Acquire(e)
		e.Store(&ready, 1)
		m.Release(e)
		// One broadcast, exactly when the predicate became true — the
		// protocol every correct condition variable must survive.
		if cond != nil {
			cond.Broadcast(e)
		} else {
			naive.Broadcast(e)
		}
	})
	return k.Run() != nil
}
