package workload

import "testing"

// TestSimPriorityTailInheritanceHelps is E19's claim as a test: with the
// medium band loading both processors, priority inheritance must cut the
// high-priority band's p99 acquire latency, by a wide margin.
func TestSimPriorityTailInheritanceHelps(t *testing.T) {
	off, err := SimPriorityTail(DefaultPriorityConfig(false))
	if err != nil {
		t.Fatalf("inheritance off: %v", err)
	}
	on, err := SimPriorityTail(DefaultPriorityConfig(true))
	if err != nil {
		t.Fatalf("inheritance on: %v", err)
	}
	wantSamples := DefaultPriorityConfig(false).Iters
	if off.Samples != wantSamples || on.Samples != wantSamples {
		t.Fatalf("samples: off %d, on %d, want %d", off.Samples, on.Samples, wantSamples)
	}
	t.Logf("inheritance off: p50=%d p99=%d p999=%d max=%d makespan=%d",
		off.P50, off.P99, off.P999, off.Max, off.Makespan)
	t.Logf("inheritance on:  p50=%d p99=%d p999=%d max=%d makespan=%d",
		on.P50, on.P99, on.P999, on.Max, on.Makespan)
	if on.P99 >= off.P99 {
		t.Errorf("p99 did not improve: on %d >= off %d", on.P99, off.P99)
	}
	// The inversion is worth an order of magnitude here, not a rounding
	// error: the unboosted holder eats the medium band's whole burst.
	if off.P99 < 2*on.P99 {
		t.Errorf("p99 improvement below 2x: off %d, on %d", off.P99, on.P99)
	}
}

// TestSimPriorityTailDeterministic: same config, same distribution —
// the percentiles are usable as stable regression metrics.
func TestSimPriorityTailDeterministic(t *testing.T) {
	a, err := SimPriorityTail(DefaultPriorityConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimPriorityTail(DefaultPriorityConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
