package workload

import (
	"runtime"
	"sync/atomic"
	"time"

	"threads/internal/core"
)

// AlertStormConfig parameterizes the alert-storm workload: victim threads
// blocking alertably (alternating AlertP on a drained semaphore and
// AlertWait on a condition) while stormer threads pepper them with Alert
// and a churn thread delivers normal wakeups (V, Signal), so alerted and
// non-alerted completions race on every primitive the alerting facility
// touches. This is the adversarial counterpart to ProducerConsumer for the
// runtime conformance runs: it drives exactly the claim races (Alert vs
// Signal vs V on a reused waiter) that the generation-stamped wake protocol
// exists to resolve.
type AlertStormConfig struct {
	Victims  int // alertably blocking threads
	Stormers int // threads calling Alert
	Episodes int // Alerted deliveries each victim must accumulate
}

// AlertStormResult reports an alert-storm run.
type AlertStormResult struct {
	Alerts  uint64 // Alert calls issued
	Raised  uint64 // Alerted returns observed by victims
	Normal  uint64 // non-alerted completions (P succeeded / Wait signalled)
	Elapsed time.Duration
}

// AlertStorm runs the workload on the real runtime until every victim has
// observed cfg.Episodes Alerted returns, then stops the stormers and churn
// and joins everything; on return the primitives are quiescent (required
// between tracing episodes).
func AlertStorm(cfg AlertStormConfig) AlertStormResult {
	if cfg.Victims < 1 {
		cfg.Victims = 1
	}
	if cfg.Stormers < 1 {
		cfg.Stormers = 1
	}
	if cfg.Episodes < 1 {
		cfg.Episodes = 1
	}

	var (
		sem  core.Semaphore
		mu   core.Mutex
		cond core.Condition

		alerts, raised, normal atomic.Uint64
	)
	sem.P() // drain the initial availability so AlertP blocks

	done := make([]atomic.Bool, cfg.Victims)
	var remaining atomic.Int64
	remaining.Store(int64(cfg.Victims))

	start := time.Now()
	victims := make([]*core.Thread, cfg.Victims)
	for i := 0; i < cfg.Victims; i++ {
		i := i
		victims[i] = core.ForkNamed("victim", func() {
			got := 0
			for got < cfg.Episodes {
				if i%2 == 0 {
					if sem.AlertP() != nil {
						raised.Add(1)
						got++
					} else {
						// Acquired a churn token for real. Consume it —
						// handing it straight back would keep the
						// semaphore available, and a victim with a
						// pending alert would then livelock on AlertP's
						// available fast path (both WHEN clauses enabled;
						// the implementation picks the normal return).
						normal.Add(1)
					}
				} else {
					mu.Acquire()
					if cond.AlertWait(&mu) != nil {
						raised.Add(1)
						got++
					} else {
						normal.Add(1)
					}
					mu.Release()
				}
			}
			done[i].Store(true)
			remaining.Add(-1)
			// Consume any alert that landed after the final episode, so a
			// victim never exits with a pending flag the next run's Self()
			// could never see (threads are per-run, but tidiness is free).
			_ = core.TestAlert()
		})
	}

	stormers := make([]*core.Thread, cfg.Stormers)
	for s := 0; s < cfg.Stormers; s++ {
		s := s
		stormers[s] = core.ForkNamed("stormer", func() {
			for remaining.Load() > 0 {
				for i, t := range victims {
					// Victims are partitioned across stormers so every
					// victim has a dedicated alerter (no lost victims),
					// while distinct stormers still race on the shared
					// alert machinery via the churn and done flags. A
					// victim whose previous alert is still pending is
					// skipped: alerts form a set, so re-alerting is a
					// no-op, and skipping keeps the Alert count (and the
					// recorded trace) proportional to deliveries instead
					// of to the stormers' spin rate.
					if i%cfg.Stormers == s && !done[i].Load() && !core.AlertPending(t) {
						core.Alert(t)
						alerts.Add(1)
					}
				}
				runtime.Gosched()
			}
		})
	}

	churn := core.ForkNamed("churn", func() {
		// Normal wakeups raced against the alerts, bounded so the events
		// they record stay proportional to the episode count rather than
		// the spin rate (the storm terminates on alerts alone).
		maxChurn := cfg.Victims * cfg.Episodes
		for n := 0; n < maxChurn && remaining.Load() > 0; n++ {
			sem.V() // may complete an AlertP normally
			mu.Acquire()
			cond.Signal() // may complete an AlertWait normally
			mu.Release()
			runtime.Gosched()
		}
	})

	for _, t := range victims {
		core.Join(t)
	}
	for _, t := range stormers {
		core.Join(t)
	}
	core.Join(churn)
	return AlertStormResult{
		Alerts:  alerts.Load(),
		Raised:  raised.Load(),
		Normal:  normal.Load(),
		Elapsed: time.Since(start),
	}
}
