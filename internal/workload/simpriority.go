package workload

import (
	"fmt"
	"sort"

	"threads/internal/sim"
	"threads/internal/simthreads"
)

// SimPriorityConfig parameterizes the mixed-priority tail-latency workload
// (experiment E19). One low-priority thread (priority 1) and one
// high-priority thread (priority 3) share a mutex; a band of
// medium-priority compute threads (priority 2) applies processor pressure.
// Each iteration the low thread takes the lock and signals both bands: the
// high thread wakes and blocks on the held mutex, the mediums wake and
// burn a bounded burst of compute. The low thread's critical section spans
// several quanta, so the time slicer preempts it mid-section — and without
// priority inheritance the medium band then outranks it on every dispatch,
// starving the holder while the high-priority thread waits: the Mars
// Pathfinder shape, once per iteration. With inheritance the blocked
// Acquire boosts the holder past the band and the tail collapses to
// roughly the critical section itself.
type SimPriorityConfig struct {
	Procs   int
	Med     int // medium-priority compute threads
	Iters   int // measured high-priority acquisitions
	CSWork  int // critical-section instructions; > Quantum so the slicer hits it
	Think   int // low-thread instructions between acquisitions
	Burst   int // medium-band instructions per iteration (the starvation window)
	Quantum uint64
	// Inheritance enables priority inheritance on the mutex
	// (simthreads.WorldOptions.PriorityInheritance) — E19's independent
	// variable.
	Inheritance bool
	Seed        int64
}

// SimPriorityResult reports the high-priority thread's acquire-latency
// distribution, in simulated instructions. Deterministic for a fixed
// config: the simulator has no wall-clock noise.
type SimPriorityResult struct {
	Stats    simthreads.Stats
	Makespan uint64
	Samples  int    // high-priority acquisitions measured
	P50      uint64 // median high-priority acquire latency
	P99      uint64
	P999     uint64
	Max      uint64
}

// workChunked charges total instructions of compute in small slices. A
// single Work(n) lands its whole cost on the proc clock at once, which
// both defeats the time slicer (the quantum can only expire between
// yield points) and teleports the global event clock n units forward,
// distorting every latency measured against it. Chunking keeps the
// simulated clocks honest.
func workChunked(e *sim.Env, total, chunk int) {
	for done := 0; done < total; done += chunk {
		n := chunk
		if total-done < n {
			n = total - done
		}
		e.Work(uint64(n))
	}
}

// percentile returns the p-th quantile (0 < p <= 1) of sorted latencies.
func percentile(sorted []uint64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// SimPriorityTail runs the mixed-priority workload and reports the
// high-priority thread's lock-acquire latency tail.
func SimPriorityTail(cfg SimPriorityConfig) (SimPriorityResult, error) {
	w, k := simthreads.NewWorldOpts(sim.Config{
		Procs:    cfg.Procs,
		Seed:     cfg.Seed,
		Quantum:  cfg.Quantum,
		MaxSteps: 500_000_000,
	}, simthreads.WorldOptions{PriorityInheritance: cfg.Inheritance})
	m := w.NewMutex()
	// Per-iteration start signals (set by the holder) and completion
	// counters (set by the bands): the low thread runs the iterations in
	// lockstep, so the starvation window recurs on every single
	// acquisition instead of drifting apart after the first.
	var hiGo, medGo, hiDone, medDone sim.Word

	// workChunk is the compute slice size: well under the quantum, so
	// expiry lands between slices and clocks advance smoothly.
	const workChunk = 100

	var lats []uint64 // sim goroutines run serialized; plain append is fine
	k.SpawnPri("low", 1, func(e *sim.Env) {
		for n := 0; n < cfg.Iters; n++ {
			// Deterministic per-iteration jitter: shifts where the quantum
			// expiry lands inside the critical section, so the latency
			// samples form a distribution instead of one repeated value.
			e.Work(uint64(n*613%1024 + 1))
			m.Acquire(e)
			// Wake the high-priority client first so it blocks on the
			// held mutex, then unleash the medium band; the quantum then
			// expires inside the long critical section below.
			e.Store(&hiGo, uint64(n+1))
			e.Store(&medGo, uint64(n+1))
			workChunked(e, cfg.CSWork+n*401%1024, workChunk)
			m.Release(e)
			e.Work(uint64(cfg.Think))
			for e.Load(&hiDone) != uint64(n+1) {
				e.AwaitChange(sim.WordVal{W: &hiDone, Old: uint64(n)})
			}
			for e.Load(&medDone) != uint64((n+1)*cfg.Med) {
				e.AwaitChange(sim.WordVal{W: &medDone, Old: e.Load(&medDone)})
			}
		}
	})
	k.SpawnPri("high", 3, func(e *sim.Env) {
		for n := 0; n < cfg.Iters; n++ {
			e.AwaitChange(sim.WordVal{W: &hiGo, Old: uint64(n)})
			before := e.Now()
			m.Acquire(e)
			after := e.Now()
			lat := uint64(0)
			if after > before { // proc clocks can skew across a migration
				lat = after - before
			}
			lats = append(lats, lat)
			m.Release(e)
			e.Store(&hiDone, uint64(n+1))
		}
	})
	for i := 0; i < cfg.Med; i++ {
		k.SpawnPri(fmt.Sprintf("med%d", i), 2, func(e *sim.Env) {
			// One bounded burst per iteration: enough pressure to starve
			// an unboosted holder for the whole window, but finite, so
			// the inheritance-off run still terminates.
			for n := 0; n < cfg.Iters; n++ {
				e.AwaitChange(sim.WordVal{W: &medGo, Old: uint64(n)})
				workChunked(e, cfg.Burst, workChunk)
				e.Add(&medDone, 1)
			}
		})
	}
	if err := k.Run(); err != nil {
		return SimPriorityResult{}, err
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res := SimPriorityResult{
		Stats:    w.Stats,
		Makespan: k.Makespan(),
		Samples:  len(lats),
		P50:      percentile(lats, 0.50),
		P99:      percentile(lats, 0.99),
		P999:     percentile(lats, 0.999),
	}
	if len(lats) > 0 {
		res.Max = lats[len(lats)-1]
	}
	return res, nil
}

// DefaultPriorityConfig is E19's fixed shape: two processors, a two-thread
// medium band that exactly covers them, a critical section three quanta
// long. Deterministic, so the derived percentiles are stable regression
// metrics.
func DefaultPriorityConfig(inheritance bool) SimPriorityConfig {
	return SimPriorityConfig{
		Procs:       2,
		Med:         2,
		Iters:       200,
		CSWork:      3_000,
		Think:       500,
		Burst:       20_000,
		Quantum:     1_000,
		Inheritance: inheritance,
		Seed:        19,
	}
}
