package queue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPriorityOrder(t *testing.T) {
	pq := NewPriorityQueue[string]()
	pq.Push(NewPItem("low", 1))
	pq.Push(NewPItem("high", 10))
	pq.Push(NewPItem("mid", 5))
	want := []string{"high", "mid", "low"}
	for _, w := range want {
		it := pq.Pop()
		if it == nil || it.Value != w {
			t.Fatalf("Pop = %v, want %q", it, w)
		}
		if it.Queued() {
			t.Fatal("popped item still reports Queued")
		}
	}
	if pq.Pop() != nil {
		t.Fatal("Pop on empty priority queue should return nil")
	}
}

func TestPriorityFIFOTiebreak(t *testing.T) {
	pq := NewPriorityQueue[int]()
	for i := 0; i < 8; i++ {
		pq.Push(NewPItem(i, 3))
	}
	for i := 0; i < 8; i++ {
		it := pq.Pop()
		if it.Value != i {
			t.Fatalf("equal-priority Pop #%d = %d, want FIFO order", i, it.Value)
		}
	}
}

func TestPriorityRemove(t *testing.T) {
	pq := NewPriorityQueue[int]()
	items := make([]*PItem[int], 6)
	for i := range items {
		items[i] = NewPItem(i, Priority(i%3))
		pq.Push(items[i])
	}
	if !pq.Remove(items[4]) {
		t.Fatal("Remove of queued item failed")
	}
	if pq.Remove(items[4]) {
		t.Fatal("second Remove should report false")
	}
	if pq.Len() != 5 {
		t.Fatalf("Len = %d, want 5", pq.Len())
	}
	seen := map[int]bool{}
	for it := pq.Pop(); it != nil; it = pq.Pop() {
		seen[it.Value] = true
	}
	if seen[4] {
		t.Fatal("removed item was popped")
	}
}

func TestPriorityFix(t *testing.T) {
	pq := NewPriorityQueue[string]()
	a := NewPItem("a", 1)
	b := NewPItem("b", 2)
	pq.Push(a)
	pq.Push(b)
	a.Priority = 9
	pq.Fix(a)
	if it := pq.Pop(); it != a {
		t.Fatalf("after Fix, Pop = %v, want a", it.Value)
	}
}

func TestPriorityDoublePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pushing a queued item should panic")
		}
	}()
	pq := NewPriorityQueue[int]()
	it := NewPItem(1, 1)
	pq.Push(it)
	pq.Push(it)
}

func TestPriorityZeroValueItem(t *testing.T) {
	pq := NewPriorityQueue[int]()
	var it PItem[int]
	if it.Queued() {
		t.Fatal("zero-value item reports Queued")
	}
	pq.Push(&it)
	if got := pq.Pop(); got != &it {
		t.Fatal("zero-value item round-trip failed")
	}
}

// TestPriorityQuickModel property-tests the heap against a sorted-slice
// model: pops must come out in (priority desc, insertion order) sequence.
func TestPriorityQuickModel(t *testing.T) {
	type rec struct {
		pri Priority
		seq int
		it  *PItem[int]
	}
	check := func(pris []int8) bool {
		pq := NewPriorityQueue[int]()
		var model []rec
		for i, p := range pris {
			it := NewPItem(i, Priority(p))
			pq.Push(it)
			model = append(model, rec{Priority(p), i, it})
		}
		sort.SliceStable(model, func(a, b int) bool {
			if model[a].pri != model[b].pri {
				return model[a].pri > model[b].pri
			}
			return model[a].seq < model[b].seq
		})
		for _, want := range model {
			got := pq.Pop()
			if got != want.it {
				return false
			}
		}
		return pq.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// TestPriorityInterleavedContention property-tests the wakeup-selection
// contract under contention: enqueues and dequeues interleave (as waiters
// arrive while releases are draining), and every dequeue must return the
// highest-priority item then queued, FIFO within that band. The ops stream
// is random but the oracle is exact: a stable-sorted model replayed op by
// op.
func TestPriorityInterleavedContention(t *testing.T) {
	type rec struct {
		pri Priority
		seq int
		it  *PItem[int]
	}
	check := func(ops []uint16) bool {
		pq := NewPriorityQueue[int]()
		var model []rec
		next := 0
		for _, op := range ops {
			if op%3 != 0 || len(model) == 0 {
				// Enqueue at a priority drawn from the op itself.
				pri := Priority(op % 5)
				it := NewPItem(next, pri)
				pq.Push(it)
				model = append(model, rec{pri, next, it})
				next++
				continue
			}
			// Dequeue: the model's winner is max priority, then lowest seq.
			best := 0
			for i, r := range model[1:] {
				if r.pri > model[best].pri || (r.pri == model[best].pri && r.seq < model[best].seq) {
					best = i + 1
				}
			}
			got := pq.Pop()
			if got != model[best].it {
				return false
			}
			model = append(model[:best], model[best+1:]...)
		}
		// Drain the rest; order must remain priority-then-FIFO.
		sort.SliceStable(model, func(a, b int) bool {
			if model[a].pri != model[b].pri {
				return model[a].pri > model[b].pri
			}
			return model[a].seq < model[b].seq
		})
		for _, want := range model {
			if pq.Pop() != want.it {
				return false
			}
		}
		return pq.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestPriorityNoStarvationOnceBandsDrain is the starvation regression for
// the wakeup path: an already-enqueued low-priority waiter must surface as
// soon as the high band drains, no matter how many high-priority arrivals
// overtook it in between — its FIFO seq must not be disturbed by later
// traffic. (The queue is strict-priority by design, so the guarantee under
// *continuous* high load is the scheduler's quantum, not the queue's; what
// the queue owes the low waiter is exactly this drain-time delivery.)
func TestPriorityNoStarvationOnceBandsDrain(t *testing.T) {
	pq := NewPriorityQueue[string]()
	low := NewPItem("low", 0)
	pq.Push(low)
	// Waves of high-priority arrivals, each wave partially drained before
	// the next arrives — the low item survives every wave at the bottom.
	for wave := 0; wave < 50; wave++ {
		for i := 0; i < 4; i++ {
			pq.Push(NewPItem("high", 7))
		}
		for i := 0; i < 3; i++ {
			if it := pq.Pop(); it.Value != "high" {
				t.Fatalf("wave %d: popped %q while the high band was non-empty", wave, it.Value)
			}
		}
	}
	// Drain the leftover high items (one per wave); the very next pop must
	// be the low waiter enqueued before any of them.
	for pq.Len() > 1 {
		if it := pq.Pop(); it.Value != "high" {
			t.Fatalf("popped %q while the high band was non-empty", it.Value)
		}
	}
	if it := pq.Pop(); it != low {
		t.Fatalf("after bands drained, Pop = %v, want the stranded low waiter", it)
	}
}

// TestPriorityDrain checks Drain pops in priority-then-FIFO order, empties
// the queue, and tolerates fn pushing items onto another queue (the wait-
// morphing pattern).
func TestPriorityDrain(t *testing.T) {
	src := NewPriorityQueue[int]()
	dst := NewPriorityQueue[int]()
	for i := 0; i < 6; i++ {
		src.Push(NewPItem(i, Priority(i%2)))
	}
	var order []int
	src.Drain(func(it *PItem[int]) {
		order = append(order, it.Value)
		dst.Push(it)
	})
	want := []int{1, 3, 5, 0, 2, 4}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
	if !src.Empty() || dst.Len() != 6 {
		t.Fatalf("after drain: src len %d, dst len %d", src.Len(), dst.Len())
	}
}

// TestPriorityQuickRemove interleaves random removals with pops and checks
// consistency with a model.
func TestPriorityQuickRemove(t *testing.T) {
	check := func(pris []uint8, removeMask uint32) bool {
		pq := NewPriorityQueue[int]()
		items := make([]*PItem[int], len(pris))
		for i, p := range pris {
			items[i] = NewPItem(i, Priority(p%8))
			pq.Push(items[i])
		}
		removed := map[int]bool{}
		for i := range items {
			if removeMask&(1<<(uint(i)%32)) != 0 && i%2 == 0 {
				if !pq.Remove(items[i]) {
					return false
				}
				removed[i] = true
			}
		}
		var lastPri Priority = 1 << 20
		count := 0
		for it := pq.Pop(); it != nil; it = pq.Pop() {
			if removed[it.Value] {
				return false
			}
			if it.Priority > lastPri {
				return false
			}
			lastPri = it.Priority
			count++
		}
		return count == len(items)-len(removed)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
