package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 10; i++ {
		q.Push(&Node[int]{Value: i})
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := 0; i < 10; i++ {
		n := q.Pop()
		if n == nil || n.Value != i {
			t.Fatalf("Pop #%d = %v, want node %d", i, n, i)
		}
		if n.InQueue() {
			t.Fatal("popped node still reports InQueue")
		}
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue should return nil")
	}
}

func TestFIFOEmpty(t *testing.T) {
	var q FIFO[int]
	if !q.Empty() || q.Len() != 0 || q.Peek() != nil {
		t.Fatal("zero-value FIFO should be empty")
	}
	n := &Node[int]{Value: 1}
	q.Push(n)
	if q.Empty() || q.Peek() != n {
		t.Fatal("queue with one node misreports state")
	}
	q.Pop()
	if !q.Empty() {
		t.Fatal("queue should be empty after popping its only node")
	}
}

func TestFIFORemove(t *testing.T) {
	var q FIFO[int]
	nodes := make([]*Node[int], 5)
	for i := range nodes {
		nodes[i] = &Node[int]{Value: i}
		q.Push(nodes[i])
	}
	// Remove from middle, head, and tail.
	for _, i := range []int{2, 0, 4} {
		if !q.Remove(nodes[i]) {
			t.Fatalf("Remove(node %d) = false, want true", i)
		}
		if nodes[i].InQueue() {
			t.Fatalf("node %d still InQueue after Remove", i)
		}
	}
	if q.Remove(nodes[2]) {
		t.Fatal("second Remove of same node should report false")
	}
	want := []int{1, 3}
	for _, w := range want {
		n := q.Pop()
		if n == nil || n.Value != w {
			t.Fatalf("after removals Pop = %v, want %d", n, w)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestFIFORemoveFromWrongQueue(t *testing.T) {
	var q1, q2 FIFO[int]
	n := &Node[int]{Value: 7}
	q1.Push(n)
	if q2.Remove(n) {
		t.Fatal("Remove from a queue the node is not on should report false")
	}
	if !q1.Remove(n) {
		t.Fatal("Remove from owning queue should succeed")
	}
}

func TestFIFODoublePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pushing a queued node should panic")
		}
	}()
	var q FIFO[int]
	n := &Node[int]{}
	q.Push(n)
	q.Push(n)
}

func TestFIFOPopAll(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 6; i++ {
		q.Push(&Node[int]{Value: i})
	}
	all := q.PopAll()
	if len(all) != 6 {
		t.Fatalf("PopAll returned %d nodes, want 6", len(all))
	}
	for i, n := range all {
		if n.Value != i {
			t.Fatalf("PopAll[%d] = %d, want %d (FIFO order)", i, n.Value, i)
		}
		if n.InQueue() {
			t.Fatal("PopAll left a node marked queued")
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty after PopAll")
	}
	if q.PopAll() != nil {
		t.Fatal("PopAll on empty queue should return nil")
	}
}

func TestFIFODrainAndEach(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 4; i++ {
		q.Push(&Node[int]{Value: i})
	}
	var seen []int
	q.Each(func(n *Node[int]) { seen = append(seen, n.Value) })
	if len(seen) != 4 || q.Len() != 4 {
		t.Fatalf("Each visited %v and left Len=%d", seen, q.Len())
	}
	seen = seen[:0]
	q.Drain(func(n *Node[int]) { seen = append(seen, n.Value) })
	if len(seen) != 4 || !q.Empty() {
		t.Fatalf("Drain visited %v, Empty=%v", seen, q.Empty())
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("Drain order %v not FIFO", seen)
		}
	}
}

// TestFIFOQuickModel property-tests the FIFO against a slice model under
// random Push/Pop/Remove sequences.
func TestFIFOQuickModel(t *testing.T) {
	check := func(ops []uint8) bool {
		var q FIFO[int]
		var model []*Node[int]
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				n := &Node[int]{Value: next}
				next++
				q.Push(n)
				model = append(model, n)
			case 1: // pop
				n := q.Pop()
				if len(model) == 0 {
					if n != nil {
						return false
					}
					continue
				}
				if n != model[0] {
					return false
				}
				model = model[1:]
			case 2: // remove a pseudo-random element
				if len(model) == 0 {
					continue
				}
				i := int(op) % len(model)
				if !q.Remove(model[i]) {
					return false
				}
				model = append(model[:i], model[i+1:]...)
			}
			if q.Len() != len(model) {
				return false
			}
		}
		// Drain and compare full order.
		for _, want := range model {
			if got := q.Pop(); got != want {
				return false
			}
		}
		return q.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
