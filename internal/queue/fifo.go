// Package queue provides the thread queues the Nub maintains: FIFO queues
// of blocked threads (per mutex, per condition variable, per semaphore) and
// a priority queue used by the ready pool.
//
// The queues are intrusive — callers embed a Node in their waiter records —
// so enqueueing a blocking thread allocates nothing, which matters because
// every blocked Acquire/Wait/P passes through here.
package queue

// Node is an intrusive doubly-linked list node carrying a value of type T.
// A Node may be on at most one FIFO at a time.
type Node[T any] struct {
	prev, next *Node[T]
	owner      *FIFO[T]
	Value      T
}

// InQueue reports whether the node is currently linked into a FIFO.
func (n *Node[T]) InQueue() bool { return n.owner != nil }

// FIFO is a first-in-first-out queue of Nodes with O(1) push, pop and
// remove. The zero value is an empty queue. FIFO performs no locking; the
// caller serializes access (in the implementation, under the Nub spin lock).
type FIFO[T any] struct {
	head, tail *Node[T]
	size       int
}

// Len returns the number of queued nodes.
func (q *FIFO[T]) Len() int { return q.size }

// Empty reports whether the queue has no nodes.
func (q *FIFO[T]) Empty() bool { return q.size == 0 }

// Push appends n to the tail of the queue. It panics if n is already on a
// queue: a thread cannot be blocked in two places at once.
func (q *FIFO[T]) Push(n *Node[T]) {
	if n.owner != nil {
		panic("queue: node pushed while already on a queue")
	}
	n.owner = q
	n.prev = q.tail
	n.next = nil
	if q.tail != nil {
		q.tail.next = n
	} else {
		q.head = n
	}
	q.tail = n
	q.size++
}

// Pop removes and returns the head of the queue, or nil if the queue is
// empty.
func (q *FIFO[T]) Pop() *Node[T] {
	n := q.head
	if n == nil {
		return nil
	}
	q.unlink(n)
	return n
}

// Peek returns the head of the queue without removing it, or nil.
func (q *FIFO[T]) Peek() *Node[T] { return q.head }

// Remove unlinks n from the queue if it is currently queued and reports
// whether it was. Removing a node that was already popped (for example by a
// racing Signal) is a no-op; this is how an alerted waiter leaves a
// condition queue without double-accounting.
func (q *FIFO[T]) Remove(n *Node[T]) bool {
	if n.owner != q {
		return false
	}
	q.unlink(n)
	return true
}

func (q *FIFO[T]) unlink(n *Node[T]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	n.prev, n.next, n.owner = nil, nil, nil
	q.size--
}

// PopAll removes every node from the queue and returns them in FIFO order.
// Used by Broadcast, which moves all waiters to the ready pool at once.
func (q *FIFO[T]) PopAll() []*Node[T] {
	if q.size == 0 {
		return nil
	}
	out := make([]*Node[T], 0, q.size)
	for n := q.head; n != nil; {
		next := n.next
		n.prev, n.next, n.owner = nil, nil, nil
		out = append(out, n)
		n = next
	}
	q.head, q.tail, q.size = nil, nil, 0
	return out
}

// Drain calls fn on each node in FIFO order while removing it. Unlike
// PopAll it does not allocate.
func (q *FIFO[T]) Drain(fn func(*Node[T])) {
	for n := q.head; n != nil; {
		next := n.next
		n.prev, n.next, n.owner = nil, nil, nil
		fn(n)
		n = next
	}
	q.head, q.tail, q.size = nil, nil, 0
}

// Each calls fn on each queued node in FIFO order without removing any.
func (q *FIFO[T]) Each(fn func(*Node[T])) {
	for n := q.head; n != nil; n = n.next {
		fn(n)
	}
}
