package queue

// Priority is a scheduling priority. Larger values are more urgent. The
// paper's Threads package "includes facilities for affecting the assignment
// of threads to real processors (for example, a simple priority scheme)";
// the ready pool uses this queue to realize that scheme.
type Priority int

// PItem is an element of a PriorityQueue. The zero value (priority 0) is
// ready to Push.
type PItem[T any] struct {
	Value    T
	Priority Priority
	seq      uint64 // FIFO tiebreak among equal priorities
	index    int    // heap index, valid only while queued
	queued   bool
}

// Queued reports whether the item is currently in a PriorityQueue.
func (it *PItem[T]) Queued() bool { return it.queued }

// PriorityQueue orders items by descending Priority, breaking ties in FIFO
// order of insertion, so equal-priority scheduling is fair. The zero value
// is an empty queue, ready to use; NewPriorityQueue exists for symmetry
// with callers that want a pointer. PriorityQueue performs no locking; the
// caller serializes access (in the implementation, under the Nub spin
// lock).
type PriorityQueue[T any] struct {
	heap []*PItem[T]
	seq  uint64
}

// NewPriorityQueue returns an empty priority queue.
func NewPriorityQueue[T any]() *PriorityQueue[T] {
	return &PriorityQueue[T]{}
}

// Len returns the number of queued items.
func (pq *PriorityQueue[T]) Len() int { return len(pq.heap) }

// Empty reports whether the queue is empty.
func (pq *PriorityQueue[T]) Empty() bool { return len(pq.heap) == 0 }

// Push inserts the item. It panics if the item is already queued.
func (pq *PriorityQueue[T]) Push(it *PItem[T]) {
	if it.queued {
		panic("queue: item pushed while already on a priority queue")
	}
	pq.seq++
	it.seq = pq.seq
	it.queued = true
	it.index = len(pq.heap)
	// The Nub pushes waiters under its spin lock, so this append runs inside
	// spin-locked sections program-wide. Growth is amortized and bounded by
	// the peak number of simultaneously queued threads: the slice reaches
	// steady-state capacity after the first few waves of waiters and then
	// never reallocates, which is the same preallocation bet the paper's
	// Firefly implementation makes for its per-processor queues.
	//threadsvet:ignore nubdiscipline: amortized append; heap capacity reaches steady state at peak waiter count and no further allocation occurs under the spin lock
	pq.heap = append(pq.heap, it)
	pq.up(it.index)
}

// Pop removes and returns the highest-priority item, or nil if empty.
func (pq *PriorityQueue[T]) Pop() *PItem[T] {
	if len(pq.heap) == 0 {
		return nil
	}
	top := pq.heap[0]
	last := len(pq.heap) - 1
	pq.swap(0, last)
	pq.heap[last] = nil
	pq.heap = pq.heap[:last]
	if last > 0 {
		pq.down(0)
	}
	top.queued = false
	return top
}

// Peek returns the highest-priority item without removing it, or nil.
func (pq *PriorityQueue[T]) Peek() *PItem[T] {
	if len(pq.heap) == 0 {
		return nil
	}
	return pq.heap[0]
}

// Remove unlinks the item if queued and reports whether it was.
func (pq *PriorityQueue[T]) Remove(it *PItem[T]) bool {
	if !it.queued {
		return false
	}
	i := it.index
	if i >= len(pq.heap) || pq.heap[i] != it {
		return false
	}
	last := len(pq.heap) - 1
	pq.swap(i, last)
	pq.heap[last] = nil
	pq.heap = pq.heap[:last]
	if i < last {
		pq.down(i)
		pq.up(i)
	}
	it.queued = false
	return true
}

// Fix re-establishes heap order after the item's Priority field changed.
func (pq *PriorityQueue[T]) Fix(it *PItem[T]) {
	if !it.queued {
		return
	}
	i := it.index
	if i >= len(pq.heap) || pq.heap[i] != it {
		return
	}
	pq.down(i)
	pq.up(i)
}

// less orders by higher priority first, then lower sequence (earlier push).
func (pq *PriorityQueue[T]) less(i, j int) bool {
	a, b := pq.heap[i], pq.heap[j]
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

func (pq *PriorityQueue[T]) swap(i, j int) {
	pq.heap[i], pq.heap[j] = pq.heap[j], pq.heap[i]
	pq.heap[i].index = i
	pq.heap[j].index = j
}

func (pq *PriorityQueue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !pq.less(i, parent) {
			break
		}
		pq.swap(i, parent)
		i = parent
	}
}

func (pq *PriorityQueue[T]) down(i int) {
	n := len(pq.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && pq.less(right, left) {
			best = right
		}
		if !pq.less(best, i) {
			break
		}
		pq.swap(i, best)
		i = best
	}
}

// Drain calls fn on each item in (priority desc, FIFO) order while
// removing it, mirroring FIFO.Drain. fn may push the item onto another
// queue (wait morphing moves drained condition waiters onto a mutex gate
// queue); it must not touch this queue.
func (pq *PriorityQueue[T]) Drain(fn func(*PItem[T])) {
	for it := pq.Pop(); it != nil; it = pq.Pop() {
		fn(it)
	}
}

// NewPItem returns an item ready for Push, carrying v at priority p.
func NewPItem[T any](v T, p Priority) *PItem[T] {
	return &PItem[T]{Value: v, Priority: p}
}
