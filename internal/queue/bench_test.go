package queue

import (
	"testing"

	"threads/internal/spinlock"
)

// Contended benchmarks for both queue variants, exercised the way the Nub
// exercises them: short push/pop critical sections under a spin lock, many
// goroutines. The FIFO is what the gates use today; the priority queue is
// shipped for the upcoming priority-scheduling work, and this benchmark is
// its baseline so that PR can see what the heap costs under contention.

// BenchmarkFIFOContended bounces nodes through one shared FIFO: each
// iteration pushes the node the goroutine holds and pops the current head
// (usually another goroutine's node), so the queue stays near steady-state
// length and every operation touches the shared head/tail links.
func BenchmarkFIFOContended(b *testing.B) {
	var (
		l spinlock.Lock
		q FIFO[int]
	)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		n := &Node[int]{}
		for pb.Next() {
			l.Lock()
			q.Push(n)
			n = q.Pop()
			l.Unlock()
		}
	})
	// Drain so a reuse of the benchmark state starts clean.
	for q.Pop() != nil {
	}
}

// BenchmarkPriorityContended is the same traffic shape through the heap:
// push the held item, pop the maximum. Items carry distinct priorities so
// the heap actually reorders instead of degenerating to a stack.
func BenchmarkPriorityContended(b *testing.B) {
	var l spinlock.Lock
	q := NewPriorityQueue[int]()
	var id int
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		l.Lock()
		id++
		it := NewPItem(id, Priority(id%8))
		l.Unlock()
		for pb.Next() {
			l.Lock()
			q.Push(it)
			it = q.Pop()
			// Rotate the popped item's priority so the heap keeps moving.
			it.Priority = (it.Priority + 3) % 8
			l.Unlock()
		}
	})
	for q.Pop() != nil {
	}
}

// BenchmarkPriorityContendedMCS is BenchmarkPriorityContended under the MCS
// queued spin lock, so the two lock algorithms can be compared on the same
// protected workload (see the E16 sweep for the gate-level comparison).
func BenchmarkPriorityContendedMCS(b *testing.B) {
	prev := spinlock.SetQueued(true)
	defer spinlock.SetQueued(prev)
	BenchmarkPriorityContended(b)
}
