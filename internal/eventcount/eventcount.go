// Package eventcount implements eventcounts and sequencers in the style of
// Reed & Kanodia (SOSP 1977), the substrate the paper's condition-variable
// implementation is built on.
//
// An eventcount is "an atomically-readable, monotonically-increasing
// integer variable" (SRC Report 20, §Implementation: condition variables).
// The Threads implementation represents a condition variable as a pair
// (Eventcount, Queue); Wait reads the count before releasing the mutex and
// the Nub's Block(c, i) compares it again under the spin lock, which closes
// the wakeup-waiting race for any number of racing waiters — the property
// a single semaphore bit cannot provide for Broadcast.
//
// This package provides the raw counters; internal/core and
// internal/simthreads supply the queues, spin locks and scheduling around
// them. A Sequencer is included for completeness of the Reed-Kanodia pair:
// together with Await it supports ticket-style total ordering of events.
package eventcount

import "sync/atomic"

// Count is an eventcount. The zero value is a Count at zero.
// A Count must not be copied after first use.
type Count struct {
	n atomic.Uint64
}

// Read atomically returns the current value.
func (c *Count) Read() uint64 { return c.n.Load() }

// Advance atomically increments the count by one and returns the new value.
// Advancing is how Signal and Broadcast record "an event has occurred" so
// that a thread racing between its Read and its Block sees the change.
func (c *Count) Advance() uint64 { return c.n.Add(1) }

// AdvancedSince reports whether the count has moved past the value v that
// the caller read earlier. This is exactly the test the Nub's Block
// subroutine performs before descheduling the calling thread.
func (c *Count) AdvancedSince(v uint64) bool { return c.n.Load() != v }

// Sequencer issues strictly increasing tickets, starting at 1. Paired with
// an eventcount it totally orders concurrent events (Reed & Kanodia's
// Ticket/Await discipline).
type Sequencer struct {
	n atomic.Uint64
}

// Ticket returns the next ticket. Distinct calls, even concurrent ones,
// receive distinct, strictly increasing values.
func (s *Sequencer) Ticket() uint64 { return s.n.Add(1) }

// Current returns the most recently issued ticket (0 if none).
func (s *Sequencer) Current() uint64 { return s.n.Load() }
