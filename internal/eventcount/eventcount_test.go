package eventcount

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var c Count
	if c.Read() != 0 {
		t.Fatalf("zero-value Count reads %d, want 0", c.Read())
	}
	if c.AdvancedSince(0) {
		t.Fatal("fresh Count should not have advanced since 0")
	}
}

func TestAdvance(t *testing.T) {
	var c Count
	for i := uint64(1); i <= 5; i++ {
		if got := c.Advance(); got != i {
			t.Fatalf("Advance #%d = %d", i, got)
		}
		if c.Read() != i {
			t.Fatalf("Read after Advance = %d, want %d", c.Read(), i)
		}
	}
	if !c.AdvancedSince(3) {
		t.Fatal("AdvancedSince(3) should be true at count 5")
	}
	if c.AdvancedSince(5) {
		t.Fatal("AdvancedSince(5) should be false at count 5")
	}
}

// TestWakeupWaitingWindow models the Wait protocol: a reader snapshots the
// count, an intervening Advance must be visible to AdvancedSince.
func TestWakeupWaitingWindow(t *testing.T) {
	var c Count
	i := c.Read()
	c.Advance() // the Signal that races into the window
	if !c.AdvancedSince(i) {
		t.Fatal("an Advance between Read and the Block test was lost")
	}
}

// TestConcurrentAdvance checks monotonicity and that no increments are lost
// under concurrency.
func TestConcurrentAdvance(t *testing.T) {
	const (
		goroutines = 8
		iters      = 10000
	)
	var c Count
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < iters; i++ {
				v := c.Advance()
				if v <= last {
					t.Error("Advance returned non-increasing value to one caller")
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	if c.Read() != goroutines*iters {
		t.Fatalf("final count %d, want %d", c.Read(), goroutines*iters)
	}
}

func TestSequencerDistinctTickets(t *testing.T) {
	const (
		goroutines = 8
		iters      = 5000
	)
	var s Sequencer
	tickets := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tickets[g] = append(tickets[g], s.Ticket())
			}
		}()
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*iters)
	for g := range tickets {
		for _, v := range tickets[g] {
			if seen[v] {
				t.Fatalf("duplicate ticket %d", v)
			}
			seen[v] = true
		}
	}
	if s.Current() != goroutines*iters {
		t.Fatalf("Current = %d, want %d", s.Current(), goroutines*iters)
	}
}

// TestQuickMonotonic property-tests that any interleaving of Reads and
// Advances yields non-decreasing reads.
func TestQuickMonotonic(t *testing.T) {
	check := func(ops []bool) bool {
		var c Count
		var lastRead uint64
		var advances uint64
		for _, adv := range ops {
			if adv {
				c.Advance()
				advances++
			} else {
				r := c.Read()
				if r < lastRead || r != advances {
					return false
				}
				lastRead = r
			}
		}
		return c.Read() == advances
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
