// Contended-path workload drivers for experiments E11–E13 and the
// benchmark-regression harness. The root bench_test.go wraps these in
// testing.B loops; CollectRegressionMetrics times them directly so
// cmd/threadsbench -json can emit a baseline without the testing package.
package bench

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"threads/internal/core"
)

// RunLadder performs total Acquire/Release pairs on one shared mutex,
// split across n goroutines (E11). The critical section is empty: the
// benchmark isolates the synchronization cost itself, which is where
// adaptive spinning and zero-allocation parking show up.
func RunLadder(n, total int) {
	var m core.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(n)
	for i := 0; i < n; i++ {
		per := total / n
		if i < total%n {
			per++
		}
		go func(per int) {
			defer wg.Done()
			<-start
			for j := 0; j < per; j++ {
				m.Acquire()
				m.Release()
			}
		}(per)
	}
	close(start)
	wg.Wait()
}

// RunCSemLadder performs total P/V pairs on one counting semaphore built
// with the given shard count, split across n goroutines holding n tokens
// (E16b). With a token always available nobody parks, so the measurement
// isolates the counter traffic itself — the cache-line behavior the
// sharding exists to fix.
func RunCSemLadder(n, shards, total int) {
	c := core.NewCountingSemaphoreShards(n, shards)
	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(n)
	for i := 0; i < n; i++ {
		per := total / n
		if i < total%n {
			per++
		}
		go func(per int) {
			defer wg.Done()
			<-start
			for j := 0; j < per; j++ {
				c.P()
				c.V()
			}
		}(per)
	}
	close(start)
	wg.Wait()
}

// RunSignalStorm drives rounds generations of a Signal/Broadcast storm at
// a population of waiters (E12). Every round advances a monitored
// generation counter and fires one Broadcast plus one Signal — the
// Broadcast guarantees progress, the extra Signal exercises the claim
// races and the committed-count fast path.
func RunSignalStorm(waiters, rounds int) {
	var (
		m    core.Mutex
		c    core.Condition
		gen  int
		stop bool
		wg   sync.WaitGroup
	)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			m.Acquire()
			last := gen
			for !stop {
				for gen == last && !stop {
					c.Wait(&m)
				}
				last = gen
			}
			m.Release()
		}()
	}
	for r := 0; r < rounds; r++ {
		m.Acquire()
		gen++
		m.Release()
		c.Signal()
		c.Broadcast()
	}
	m.Acquire()
	stop = true
	m.Release()
	c.Broadcast()
	wg.Wait()
}

// RunAlertPStorm performs total AlertP/V rounds on one shared binary
// semaphore across workers Fork-created threads while a driver goroutine
// sprays Alerts at random workers (E13). The holder keeps the semaphore
// across a scheduling point, so the other workers really block — and a
// blocked AlertP is exactly what Alert must be able to claim. It returns
// how many rounds ended in Alerted — the mix of the two WHEN clauses
// actually taken.
func RunAlertPStorm(workers, total int) (alerted uint64) {
	var (
		s     core.Semaphore
		ops   int64
		raise uint64
		wg    sync.WaitGroup
	)
	ths := make([]*core.Thread, workers)
	wg.Add(workers)
	for i := range ths {
		ths[i] = core.Fork(func() {
			defer wg.Done()
			for atomic.AddInt64(&ops, 1) <= int64(total) {
				if err := s.AlertP(); err != nil {
					atomic.AddUint64(&raise, 1)
					continue
				}
				runtime.Gosched() // hold s across a scheduling point
				s.V()
			}
		})
	}
	stop := make(chan struct{})
	alerterDone := make(chan struct{})
	go func() {
		defer close(alerterDone)
		r := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
				core.Alert(ths[r.Intn(workers)])
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-alerterDone
	return atomic.LoadUint64(&raise)
}
