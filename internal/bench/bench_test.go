package bench

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "E0",
		Title:   "demo",
		Note:    "a note",
		Headers: []string{"col", "value"},
	}
	tbl.Add("a", 1)
	tbl.Add("bbbb", 2.5)
	out := tbl.String()
	for _, want := range []string{"E0 — demo", "a note", "col", "bbbb", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 13 {
		t.Fatalf("registered %d experiments, want 13", len(exps))
	}
	for i, e := range exps {
		if e.ID == "" || e.Name == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
	}
}

// The following run each experiment in Quick mode and assert the *shape* of
// the paper's result, not absolute numbers.

func TestE1Shape(t *testing.T) {
	tables := E1(Options{Quick: true})
	tbl := tables[0]
	if tbl.Rows[0][1] != "5" {
		t.Fatalf("E1 mutex pair = %s instructions, want 5", tbl.Rows[0][1])
	}
	if tbl.Rows[0][2] != "10.0" {
		t.Fatalf("E1 mutex pair = %s µs, want 10.0", tbl.Rows[0][2])
	}
	if tbl.Rows[1][1] != "5" {
		t.Fatalf("E1 semaphore pair = %s instructions, want 5", tbl.Rows[1][1])
	}
}

func TestE2Shape(t *testing.T) {
	tbl := E2(Options{Quick: true})[0]
	// First row is 1 proc / 1 thread: 100% fast path. High-contention rows
	// must be strictly lower.
	if tbl.Rows[0][2] != "100.0%" {
		t.Fatalf("uncontended fast-path rate = %s, want 100.0%%", tbl.Rows[0][2])
	}
	last := tbl.Rows[len(tbl.Rows)-1][2]
	if last == "100.0%" {
		t.Fatalf("high-contention fast-path rate = %s; expected degradation", last)
	}
}

func TestE3Shape(t *testing.T) {
	tbl := E3(Options{Quick: true})[0]
	sawMulti := false
	for _, row := range tbl.Rows {
		if row[2] != "0" {
			sawMulti = true
		}
	}
	if !sawMulti {
		t.Fatal("E3 observed no multi-unblock Signal in any configuration")
	}
}

func TestE4Shape(t *testing.T) {
	tbl := E4(Options{Quick: true})[0]
	naiveLost, ecLost := 0, 0
	for _, row := range tbl.Rows {
		if row[0] == "naive" && row[4] != "0" {
			naiveLost++
		}
		if row[0] == "eventcount" && row[4] != "0" {
			ecLost++
		}
	}
	if ecLost != 0 {
		t.Fatal("eventcount implementation lost wakeups")
	}
	if naiveLost == 0 {
		t.Fatal("naive implementation lost no wakeups anywhere")
	}
}

func TestE5Shape(t *testing.T) {
	tbl := E5(Options{Quick: true})[0]
	semStranded, threadsStranded := 0, 0
	for _, row := range tbl.Rows {
		if row[0] == "semcond" && row[3] != "0" {
			semStranded++
		}
		if row[0] == "threads" && row[3] != "0" {
			threadsStranded++
		}
	}
	if threadsStranded != 0 {
		t.Fatal("Threads Broadcast stranded waiters")
	}
	if semStranded == 0 {
		t.Fatal("semaphore Broadcast stranded nobody; expected the paper's failure")
	}
}

func TestE6Shape(t *testing.T) {
	tbl := E6(Options{Quick: true})[0]
	for _, row := range tbl.Rows {
		if row[0] == "hoare" && row[4] != "0.0%" {
			t.Fatalf("Hoare spurious rate = %s, want 0.0%%", row[4])
		}
	}
}

func TestE7Shape(t *testing.T) {
	tbl := E7(Options{})[0]
	verdicts := map[[2]string]string{}
	for _, row := range tbl.Rows {
		verdicts[[2]string{row[0], row[1]}] = row[2]
	}
	if !strings.HasPrefix(verdicts[[2]string{"no-m-nil", "mutual exclusion"}], "VIOLATED") {
		t.Fatal("no-m-nil variant should violate mutual exclusion")
	}
	if verdicts[[2]string{"final", "mutual exclusion"}] != "holds" {
		t.Fatal("final variant should preserve mutual exclusion")
	}
	if !strings.HasPrefix(verdicts[[2]string{"unchanged-c", "no absorbed signal"}], "VIOLATED") {
		t.Fatal("unchanged-c variant should exhibit the absorbed signal")
	}
	if verdicts[[2]string{"final", "no absorbed signal"}] != "holds" {
		t.Fatal("final variant should never absorb a signal")
	}
}

func TestE8Shape(t *testing.T) {
	tbl := E8(Options{Quick: true})[0]
	// The checker row must show both outcomes reachable.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[2] != "1" || last[3] != "1" {
		t.Fatalf("checker overlap row = %v; both outcomes must be reachable", last)
	}
}

func TestE9Shape(t *testing.T) {
	tbl := E9(Options{Quick: true})[0]
	for _, row := range tbl.Rows {
		if row[3] != "0" {
			t.Fatalf("conformance violations in %s: %s", row[0], row[3])
		}
		if row[2] == "0" {
			t.Fatalf("no events checked for %s", row[0])
		}
	}
}

func TestE10Shape(t *testing.T) {
	tables := E10(Options{Quick: true})
	if len(tables) != 2 {
		t.Fatalf("E10 produced %d tables, want 2", len(tables))
	}
	simT := tables[1]
	// More processors must not slow the simulated workload down
	// (monotone non-increasing makespan up to scheduling noise; check the
	// 4-proc row beats 1-proc).
	if len(simT.Rows) < 3 {
		t.Fatal("sim scaling table too small")
	}
	var speedup4 string
	for _, row := range simT.Rows {
		if row[0] == "4" {
			speedup4 = row[4]
		}
	}
	if speedup4 == "" || speedup4 == "1.00" {
		t.Fatalf("4-proc speedup = %q; expected > 1", speedup4)
	}
}

func TestEAShape(t *testing.T) {
	tbl := EA(Options{Quick: true})[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("EA rows = %d, want 4", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "5" {
		t.Fatalf("paper configuration pair = %s, want 5", tbl.Rows[0][1])
	}
	if tbl.Rows[1][1] == "5" {
		t.Fatal("removing the user fast path should cost more than 5 instructions")
	}
	if tbl.Rows[2][2] == tbl.Rows[0][2] {
		t.Fatal("removing the Signal fast path should cost on empty Signals")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		ID:      "E0",
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.Add("plain", 1)
	tbl.Add(`with "quotes", and commas`, 2)
	csv := tbl.CSV()
	want := "name,value\nplain,1\n\"with \"\"quotes\"\", and commas\",2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
