package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"threads/internal/baselines"
	"threads/internal/checker"
	"threads/internal/core"
	"threads/internal/sim"
	"threads/internal/simthreads"
	"threads/internal/spec"
	"threads/internal/trace"
	"threads/internal/workload"
)

// Options scales the experiments: Quick runs small sweeps (for tests and
// testing.B), full mode runs the sizes the committed EXPERIMENTS.md numbers
// came from.
type Options struct {
	Quick bool
}

func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(Options) []*Table
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"e1", "uncontended fast path (5 instructions / 10 µs)", E1},
		{"e2", "fast-path hit rate vs contention", E2},
		{"e3", "Signal may unblock more than one thread", E3},
		{"e4", "wakeup-waiting race: eventcount vs naive", E4},
		{"e5", "semaphore-based Broadcast strands waiters", E5},
		{"e6", "Mesa hints vs Hoare guarantees", E6},
		{"e7", "model-checking the published spec bugs", E7},
		{"e8", "AlertP/AlertWait non-determinism", E8},
		{"e9", "implementation conformance to the specification", E9},
		{"e10", "throughput scaling vs baselines", E10},
		{"e16", "scaling walls: core-count sweep, before/after the fixes", E16},
		{"e19", "priority inversion: tail latency with and without inheritance", E19},
		{"ea", "ablations: remove the paper's optimizations", EA},
	}
}

// ---------------------------------------------------------------------------
// E1 — "an Acquire-Release pair executes a total of 5 instructions, taking
// 10 microseconds on a MicroVAX II" (§Implementation).
// ---------------------------------------------------------------------------

// E1 measures the uncontended fast paths.
func E1(o Options) []*Table {
	t := &Table{
		ID:    "E1",
		Title: "uncontended synchronization cost",
		Note: `paper: "In this case an Acquire-Release pair executes a total of 5
instructions, taking 10 microseconds on a MicroVAX II."`,
		Headers: []string{"operation pair", "sim instructions", "sim µs (MicroVAX II)", "paper", "Go runtime ns/op"},
	}
	measureSim := func(build func(w *simthreads.World) (func(e *sim.Env), func(e *sim.Env))) uint64 {
		w, k := simthreads.NewWorld(sim.Config{Procs: 1})
		enter, leave := build(w)
		var pair uint64
		k.Spawn("solo", func(e *sim.Env) {
			before := e.Instret()
			enter(e)
			leave(e)
			pair = e.Instret() - before
		})
		if err := k.Run(); err != nil {
			panic(err)
		}
		return pair
	}
	mutexPair := measureSim(func(w *simthreads.World) (func(e *sim.Env), func(e *sim.Env)) {
		m := w.NewMutex()
		return m.Acquire, m.Release
	})
	semPair := measureSim(func(w *simthreads.World) (func(e *sim.Env), func(e *sim.Env)) {
		s := w.NewSemaphore()
		return s.P, s.V
	})

	iters := o.pick(200_000, 2_000_000)
	goPair := func(enter, leave func()) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			enter()
			leave()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	var m core.Mutex
	mutexNs := goPair(m.Acquire, m.Release)
	var s core.Semaphore
	semNs := goPair(s.P, s.V)
	micros := sim.MicroVAXII().MicrosPerInstr

	t.Add("Acquire+Release", mutexPair, F(float64(mutexPair)*micros, 1), "5 instr / 10 µs", F(mutexNs, 1))
	t.Add("P+V", semPair, F(float64(semPair)*micros, 1), "same as mutex", F(semNs, 1))
	return []*Table{t}
}

// ---------------------------------------------------------------------------
// E2 — the user code avoids Nub calls; how often, as contention grows.
// ---------------------------------------------------------------------------

// E2 sweeps threads × processors on the simulator and reports the fraction
// of Acquires satisfied entirely in user code.
func E2(o Options) []*Table {
	t := &Table{
		ID:    "E2",
		Title: "fast-path (no Nub call) rate under contention — simulated Firefly",
		Note: `paper: "The purpose of having code in the user space is to optimize most
cases where the synchronization action will not cause the thread to block" —
uncontended ops never enter the Nub; the rate degrades with threads/processor.`,
		Headers: []string{"procs", "threads", "fast-path rate", "parks/op", "µs/op"},
	}
	iters := o.pick(100, 400)
	for _, procs := range []int{1, 2, 5, 8} {
		for _, threads := range []int{1, 2, 4, 8, 16} {
			res, err := workload.SimMutexContention(workload.SimContentionConfig{
				Procs: procs, Threads: threads, Iters: iters,
				CSWork: 20, Think: 200, Seed: int64(procs*100 + threads),
			})
			if err != nil {
				panic(err)
			}
			ops := float64(threads * iters)
			t.Add(procs, threads,
				Pct(res.FastPathRate()),
				F(float64(res.Stats.AcquirePark)/ops, 3),
				F(res.Micros/ops, 2))
		}
	}
	return []*Table{t}
}

// ---------------------------------------------------------------------------
// E3 — Signal may unblock more than one thread.
// ---------------------------------------------------------------------------

// E3 counts, across seeds, runs in which fewer Signals than waiters
// sufficed: some Signal's eventcount advance released several threads
// racing in the Enqueue→Block window.
func E3(o Options) []*Table {
	t := &Table{
		ID:    "E3",
		Title: "one Signal releasing several threads (why ENSURES can't be strengthened)",
		Note: `paper: "although our implementation of Signal usually unblocks just one
waiting thread, it may unblock more" — every thread between its eventcount
read and Block when Signal advances the count is released with the popped one.`,
		Headers: []string{"waiters", "seeds", "runs w/ multi-unblock", "max extra released", "elided blocks total"},
	}
	seeds := o.pick(120, 600)
	for _, waiters := range []int{2, 4, 8} {
		multi, maxExtra, elidedTotal := 0, 0, uint64(0)
		for seed := 0; seed < seeds; seed++ {
			w, k := simthreads.NewWorld(sim.Config{
				Procs: 4, Seed: int64(seed), Policy: sim.PolicyRandom, MaxSteps: 3_000_000,
			})
			m := w.NewMutex()
			c := w.NewCondition()
			var ready, done sim.Word
			for i := 0; i < waiters; i++ {
				k.Spawn("waiter", func(e *sim.Env) {
					m.Acquire(e)
					for e.Load(&ready) == 0 {
						c.Wait(e, m)
					}
					m.Release(e)
					e.Add(&done, 1)
				})
			}
			signals := 0
			k.Spawn("driver", func(e *sim.Env) {
				e.Work(50)
				m.Acquire(e)
				e.Store(&ready, 1)
				m.Release(e)
				for e.Load(&done) != uint64(waiters) {
					c.Signal(e)
					signals++
					e.Work(100)
				}
			})
			if err := k.Run(); err != nil {
				panic(fmt.Sprintf("seed %d: %v", seed, err))
			}
			if signals < waiters {
				multi++
				if extra := waiters - signals; extra > maxExtra {
					maxExtra = extra
				}
			}
			elidedTotal += w.Stats.WaitElided
		}
		t.Add(waiters, seeds, multi, maxExtra, elidedTotal)
	}
	return []*Table{t}
}

// ---------------------------------------------------------------------------
// E4 — the wakeup-waiting race.
// ---------------------------------------------------------------------------

// E4 sweeps seeds over a signal/wait handshake for the naive (separate
// release-then-sleep) condition variable and for the paper's eventcount
// implementation.
func E4(o Options) []*Table {
	t := &Table{
		ID:    "E4",
		Title: "lost wakeups: naive condition variable vs eventcount (Block(c, i))",
		Note: `paper: "The two things that Wait(m, c) must do first ... must be in one
atomic action relative to any call of Signal ... no signals are lost between
these two actions." The eventcount closes the race the naive code loses.`,
		Headers: []string{"impl", "procs", "waiters", "seeds", "lost wakeups", "loss rate"},
	}
	seeds := o.pick(120, 1000)
	for _, impl := range []struct {
		name string
		ec   bool
	}{{"naive", false}, {"eventcount", true}} {
		for _, procs := range []int{2, 4} {
			for _, waiters := range []int{1, 4} {
				lost := 0
				for seed := 0; seed < seeds; seed++ {
					if workload.RunLostWakeupTrial(workload.LostWakeupTrial{
						Seed: int64(seed), Procs: procs, Waiters: waiters, UseEventcount: impl.ec,
					}) {
						lost++
					}
				}
				t.Add(impl.name, procs, waiters, seeds, lost, Pct(float64(lost)/float64(seeds)))
			}
		}
	}
	return []*Table{t}
}

// ---------------------------------------------------------------------------
// E5 — Broadcast over a binary semaphore strands waiters.
// ---------------------------------------------------------------------------

// E5 broadcasts to racing waiters using the semaphore-based condition
// variable and the Threads one, and counts strandees.
func E5(o Options) []*Table {
	t := &Table{
		ID:    "E5",
		Title: "Broadcast: eventcount condition variable vs semaphore-based",
		Note: `paper: "Unfortunately, this implementation does not generalize to
Broadcast(c) ... there might be arbitrarily many threads in the race ... and
the implementation of Broadcast would have no way of indicating that they
should all resume."`,
		Headers: []string{"impl", "waiters", "rounds", "stranded (total)", "stranded/round"},
	}
	rounds := o.pick(15, 60)
	for _, waiters := range []int{2, 4, 8, 16} {
		for _, impl := range []string{"threads", "semcond"} {
			stranded := 0
			for round := 0; round < rounds; round++ {
				stranded += broadcastStrandTrial(impl, waiters)
			}
			t.Add(impl, waiters, rounds, stranded, F(float64(stranded)/float64(rounds), 2))
		}
	}
	return []*Table{t}
}

// broadcastStrandTrial blocks `waiters` threads, flips the predicate, does
// one Broadcast and reports how many stayed blocked.
//
// The trial pins the paper's wake-and-retry protocol: under direct
// hand-off (HandoffAdaptive, the shipping default) every V in the naive
// Broadcast loop transfers the token to a distinct *parked* waiter instead
// of setting the one semaphore bit, so the coalescing this experiment
// demonstrates never happens once all waiters are asleep. That rescue is
// an artifact of everyone being parked — the race-window stranding (a
// waiter between Release(m) and P) is mode-independent — but the paper's
// claim is about its 1987 implementation, so measure that one.
func broadcastStrandTrial(impl string, waiters int) int {
	prev := core.SetHandoffMode(core.HandoffOff)
	defer core.SetHandoffMode(prev)
	var mu core.Mutex
	var tc core.Condition
	var sc *baselines.SemCond
	if impl == "semcond" {
		sc = baselines.NewSemCond(&mu)
	}
	gate := false
	var resumed int32
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		core.Fork(func() {
			defer wg.Done()
			mu.Acquire()
			for !gate {
				if sc != nil {
					sc.Wait()
				} else {
					tc.Wait(&mu)
				}
			}
			atomic.AddInt32(&resumed, 1)
			mu.Release()
		})
	}
	time.Sleep(10 * time.Millisecond) // let them block
	mu.Acquire()
	gate = true
	mu.Release()
	if sc != nil {
		sc.Broadcast()
	} else {
		tc.Broadcast()
	}
	time.Sleep(30 * time.Millisecond)
	got := int(atomic.LoadInt32(&resumed))
	// Rescue strandees so the goroutines exit (repeated singles always
	// work on both implementations).
	for int(atomic.LoadInt32(&resumed)) < waiters {
		if sc != nil {
			sc.Signal()
		} else {
			tc.Broadcast()
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	return waiters - got
}

// ---------------------------------------------------------------------------
// E6 — Mesa hints vs Hoare guarantees.
// ---------------------------------------------------------------------------

// E6 compares the Threads (Mesa) monitor against Hoare signalling on the
// bounded buffer: spurious-resume rate and throughput.
func E6(o Options) []*Table {
	t := &Table{
		ID:    "E6",
		Title: "hint semantics (Threads/Mesa) vs guaranteed predicates (Hoare)",
		Note: `paper: "Return from Wait is only a hint ... Our looser specification
reduces the obligations of the signalling thread and leads to a more
efficient implementation on our multiprocessor." Hoare waiters never re-loop;
Threads waiters sometimes must; Threads signallers never block.`,
		Headers: []string{"impl", "prod", "cons", "items", "spurious rate", "items/ms"},
	}
	items := o.pick(2000, 20000)
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {4, 4}} {
		for _, mk := range []func() baselines.Monitor{
			func() baselines.Monitor { return baselines.NewThreadsMonitor() },
			func() baselines.Monitor { return baselines.NewHoareMonitor() },
			func() baselines.Monitor { return baselines.NewNativeMonitor() },
		} {
			m := mk()
			res := workload.ProducerConsumer(m, workload.PCConfig{
				Producers: shape[0], Consumers: shape[1],
				ItemsPerProducer: items / shape[0], Capacity: 4, Work: 50,
			})
			t.Add(m.Name(), shape[0], shape[1], res.Items,
				Pct(res.SpuriousRate()), F(res.ItemsPerSec()/1000, 1))
		}
	}

	steal := &Table{
		ID:    "E6b",
		Title: "predicate stolen between Signal and resume: hint vs guarantee",
		Note: `paper: "Even if threads take care to call Signal only when the predicate is
true, it may become false before a waiting thread resumes execution. Some
other thread may enter a critical section first and invalidate the
predicate." A thief steals the signalled token; Mesa waiters observe a false
predicate and re-Wait, Hoare waiters never can.`,
		Headers: []string{"impl", "tokens delivered", "spurious resumes", "spurious/token"},
	}
	rounds := o.pick(1500, 10000)
	for _, mk := range []func() baselines.Monitor{
		func() baselines.Monitor { return baselines.NewThreadsMonitor() },
		func() baselines.Monitor { return baselines.NewHoareMonitor() },
		func() baselines.Monitor { return baselines.NewNativeMonitor() },
	} {
		m := mk()
		stolen := stealTrial(m, rounds)
		steal.Add(m.Name(), rounds, stolen, F(float64(stolen)/float64(rounds), 2))
	}
	return []*Table{t, steal}
}

// stealTrial delivers `rounds` tokens to a consumer; after each Signal the
// producer immediately tries to steal the token back. Under Mesa semantics
// the monitor is open between the Signal and the waiter's reacquire, so the
// thief often wins and the waiter resumes to a false predicate (counted);
// under Hoare handoff the waiter is guaranteed the token and the thief
// never sees one.
func stealTrial(m baselines.Monitor, rounds int) int {
	c := m.NewCond()
	tokens := 0
	spurious := 0
	consumedOne := make(chan struct{})
	done := make(chan struct{})
	go func() { // the consumer/waiter
		defer close(done)
		for got := 0; got < rounds; got++ {
			m.Acquire()
			for tokens == 0 {
				c.Wait()
				if tokens == 0 {
					spurious++ // resumed to a stolen token: the hint was stale
				}
			}
			tokens--
			m.Release()
			consumedOne <- struct{}{}
		}
	}()
	for i := 0; i < rounds; i++ {
		delivered := false
		for attempt := 0; !delivered; attempt++ {
			m.Acquire()
			tokens++
			c.Signal() // Hoare: the monitor passes to the waiter right here
			m.Release()
			m.Acquire()
			stole := false
			if tokens > 0 && attempt < 8 {
				tokens-- // stolen before the waiter resumed
				stole = true
			} else {
				delivered = true // consumed already, or give up stealing
			}
			m.Release()
			if stole {
				// Let the signalled waiter run and observe the theft.
				runtime.Gosched()
			}
		}
		<-consumedOne
	}
	<-done
	return spurious
}

// ---------------------------------------------------------------------------
// E7 — the two published specification bugs, rediscovered mechanically.
// ---------------------------------------------------------------------------

// E7 model-checks the AlertWait litmus scenarios against all three
// historical specification variants.
func E7(Options) []*Table {
	t := &Table{
		ID:    "E7",
		Title: "model-checking the AlertWait specification variants",
		Note: `paper (Discussion): the first release lacked "m = NIL &" (found in under
an hour); the next kept UNCHANGED [c] on the Alerted path (found after more
than a year, by Greg Nelson: a Signal could choose the departed thread and
wake nobody). The final text has both fixes.`,
		Headers: []string{"variant", "property", "verdict", "states", "transitions", "trace len"},
	}
	variants := []spec.Variant{spec.VariantNoMNil, spec.VariantUnchangedC, spec.VariantFinal}
	for _, v := range variants {
		res := checker.Run(checker.AlertSeizesHeldMutex(v))
		verdict := "holds"
		traceLen := 0
		if res.Violation != nil {
			verdict = "VIOLATED: " + res.Violation.Kind
			traceLen = len(res.Violation.Trace)
		}
		t.Add(v.String(), "mutual exclusion", verdict, res.States, res.Transitions, traceLen)
	}
	for _, v := range variants {
		res := checker.Run(checker.SignalAbsorbedByDepartedThread(v))
		verdict := "holds"
		traceLen := 0
		if res.Violation != nil {
			verdict = "VIOLATED: signal absorbed"
			traceLen = len(res.Violation.Trace)
		}
		t.Add(v.String(), "no absorbed signal", verdict, res.States, res.Transitions, traceLen)
	}
	return []*Table{t}
}

// ---------------------------------------------------------------------------
// E8 — the deliberate non-determinism of AlertP/AlertWait.
// ---------------------------------------------------------------------------

// E8 races Signal against Alert on a blocked AlertWait and counts outcomes;
// it also reports the checker's view (both outcomes reachable).
func E8(o Options) []*Table {
	t := &Table{
		ID:    "E8",
		Title: "overlapping RETURNS/RAISES WHEN clauses: observed outcomes",
		Note: `paper: "the WHEN clauses of the normal (RETURNS) and exceptional (RAISES)
cases are not mutually exclusive; this gives their implementations the right
to make arbitrary choices ... sometimes it raised the exception and sometimes
it didn't."`,
		Headers: []string{"experiment", "rounds", "normal returns", "alerted raises"},
	}
	rounds := o.pick(150, 1000)
	normal, alerted := 0, 0
	for i := 0; i < rounds; i++ {
		if signalAlertRaceTrial(i%2 == 0) {
			alerted++
		} else {
			normal++
		}
	}
	t.Add("Signal vs Alert race on AlertWait (Go runtime)", rounds, normal, alerted)

	cfg, outcomes := checker.AlertPOverlap()
	checker.Run(cfg)
	ret, rai := 0, 0
	if (*outcomes)["AlertP.Return"] {
		ret = 1
	}
	if (*outcomes)["AlertP.Raise"] {
		rai = 1
	}
	t.Add("AlertP overlap state (model checker, reachable?)", 2, ret, rai)
	return []*Table{t}
}

// signalAlertRaceTrial blocks one thread in AlertWait, fires Signal and
// Alert concurrently (in either launch order, since the implementation is
// free to resolve the overlap either way and the Go scheduler runs the most
// recently created goroutine first on an idle processor), and reports
// whether the Alerted path was taken.
func signalAlertRaceTrial(signalFirst bool) bool {
	var (
		m core.Mutex
		c core.Condition
	)
	errCh := make(chan error, 1)
	th := core.Fork(func() {
		m.Acquire()
		//threadsvet:ignore waitloop: race trial performs exactly one AlertWait to observe which way the Signal/Alert overlap resolves
		err := c.AlertWait(&m)
		m.Release()
		errCh <- err
	})
	for c.Waiters() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	ops := []func(){func() { c.Signal() }, func() { core.Alert(th) }}
	if signalFirst {
		ops[0], ops[1] = ops[1], ops[0]
	}
	for _, op := range ops {
		op := op
		go func() { defer wg.Done(); op() }()
	}
	wg.Wait()
	err := <-errCh
	core.Join(th)
	return err != nil
}

// ---------------------------------------------------------------------------
// E9 — conformance: traced implementation runs replay through the spec.
// ---------------------------------------------------------------------------

// E9 runs traced simulator workloads across seeds and replays every emitted
// action through the specification state machine.
func E9(o Options) []*Table {
	t := &Table{
		ID:    "E9",
		Title: "trace conformance: simulated implementation vs formal specification",
		Note: `every operation emits its atomic action at the linearization point (inside
the Nub spin lock); the serialized action sequence must satisfy every
REQUIRES / WHEN / ENSURES clause. Violations found: must be zero.`,
		Headers: []string{"workload", "seeds", "events checked", "violations"},
	}
	seeds := o.pick(15, 100)
	for _, wl := range []struct {
		name  string
		build func(w *simthreads.World, k *simthreads.Kernel)
	}{
		{"mutex contention (4 threads)", buildContention},
		{"producer-consumer (2+2)", buildPC},
		{"alerts + semaphores", buildAlerts},
	} {
		events, violations := 0, 0
		for seed := 0; seed < seeds; seed++ {
			var evs []trace.Event
			cfg := sim.Config{
				Procs: 4, Seed: int64(seed), Policy: sim.PolicyRandom, MaxSteps: 5_000_000,
				Trace: func(ev sim.Event) {
					if a, ok := ev.Payload.(spec.Action); ok {
						evs = append(evs, trace.Event{Seq: ev.Seq, Thread: ev.Thread.Name(), Action: a})
					}
				},
			}
			w, k := simthreads.NewWorld(cfg)
			wl.build(w, k)
			if err := k.Run(); err != nil {
				panic(fmt.Sprintf("%s seed %d: %v", wl.name, seed, err))
			}
			n, err := trace.CheckAll(evs)
			events += n
			if err != nil {
				violations++
			}
		}
		t.Add(wl.name, seeds, events, violations)
	}
	return []*Table{t}
}

func buildContention(w *simthreads.World, k *simthreads.Kernel) {
	m := w.NewMutex()
	for i := 0; i < 4; i++ {
		k.Spawn("", func(e *sim.Env) {
			for n := 0; n < 25; n++ {
				m.Acquire(e)
				e.Work(3)
				m.Release(e)
			}
		})
	}
}

func buildPC(w *simthreads.World, k *simthreads.Kernel) {
	m := w.NewMutex()
	nonEmpty := w.NewCondition()
	nonFull := w.NewCondition()
	var queue, consumed sim.Word
	const total, capacity = 40, 3
	for i := 0; i < 2; i++ {
		k.Spawn("producer", func(e *sim.Env) {
			for n := 0; n < total/2; n++ {
				m.Acquire(e)
				for e.Load(&queue) == capacity {
					nonFull.Wait(e, m)
				}
				e.Add(&queue, 1)
				m.Release(e)
				nonEmpty.Signal(e)
			}
		})
	}
	for i := 0; i < 2; i++ {
		k.Spawn("consumer", func(e *sim.Env) {
			for {
				m.Acquire(e)
				for e.Load(&queue) == 0 {
					if e.Load(&consumed) >= total {
						m.Release(e)
						nonEmpty.Broadcast(e)
						return
					}
					nonEmpty.Wait(e, m)
				}
				e.Add(&queue, ^uint64(0))
				n := e.Add(&consumed, 1)
				m.Release(e)
				nonFull.Signal(e)
				if n >= total {
					nonEmpty.Broadcast(e)
					return
				}
			}
		})
	}
}

func buildAlerts(w *simthreads.World, k *simthreads.Kernel) {
	m := w.NewMutex()
	c := w.NewCondition()
	s := w.NewSemaphore()
	var stop sim.Word
	alertee := k.Spawn("alertee", func(e *sim.Env) {
		m.Acquire(e)
		for e.Load(&stop) == 0 {
			if c.AlertWait(e, m) {
				break
			}
		}
		m.Release(e)
	})
	semW := k.Spawn("sem-waiter", func(e *sim.Env) {
		s.P(e)
		if !s.AlertP(e) {
			s.V(e)
		}
		s.V(e)
	})
	k.Spawn("live", func(e *sim.Env) {
		m.Acquire(e)
		for e.Load(&stop) == 0 {
			c.Wait(e, m)
		}
		m.Release(e)
	})
	k.Spawn("driver", func(e *sim.Env) {
		e.Work(300)
		w.Alert(e, alertee)
		w.Alert(e, semW)
		e.Work(300)
		m.Acquire(e)
		e.Store(&stop, 1)
		m.Release(e)
		for i := 0; i < 20; i++ {
			c.Broadcast(e)
			e.Work(100)
		}
		_ = w.TestAlert(e)
	})
}

// ---------------------------------------------------------------------------
// E10 — throughput scaling vs baselines.
// ---------------------------------------------------------------------------

// E10 measures producer-consumer and contention throughput of the Threads
// implementation against Hoare and native-sync baselines on the Go runtime,
// and bounded-buffer makespan scaling on the simulated Firefly.
func E10(o Options) []*Table {
	real := &Table{
		ID:    "E10a",
		Title: "Go-runtime throughput: Threads vs Hoare vs native sync",
		Note: `the shape to reproduce: Threads ~ native (both Mesa-style with user-space
fast paths) and both well above Hoare signalling, whose hand-offs serialize
the monitor through every signalled waiter.`,
		Headers: []string{"workload", "impl", "threads", "ops/ms"},
	}
	iters := o.pick(3000, 30000)
	for _, threads := range []int{2, 4, 8} {
		for _, mk := range []func() baselines.Monitor{
			func() baselines.Monitor { return baselines.NewThreadsMonitor() },
			func() baselines.Monitor { return baselines.NewHoareMonitor() },
			func() baselines.Monitor { return baselines.NewNativeMonitor() },
		} {
			m := mk()
			res := workload.MutexContention(m, workload.ContentionConfig{
				Threads: threads, Iters: iters / threads, CSWork: 20, Think: 100,
			})
			real.Add("contention", m.Name(), threads, F(res.OpsPerSec()/1000, 1))
		}
	}
	for _, shape := range [][2]int{{2, 2}, {4, 4}} {
		for _, mk := range []func() baselines.Monitor{
			func() baselines.Monitor { return baselines.NewThreadsMonitor() },
			func() baselines.Monitor { return baselines.NewHoareMonitor() },
			func() baselines.Monitor { return baselines.NewNativeMonitor() },
		} {
			m := mk()
			res := workload.ProducerConsumer(m, workload.PCConfig{
				Producers: shape[0], Consumers: shape[1],
				ItemsPerProducer: iters / shape[0], Capacity: 8, Work: 30,
			})
			real.Add(fmt.Sprintf("prod-cons %dx%d", shape[0], shape[1]),
				m.Name(), shape[0]+shape[1], F(res.ItemsPerSec()/1000, 1))
		}
	}

	simT := &Table{
		ID:    "E10b",
		Title: "simulated Firefly: bounded-buffer makespan vs processors",
		Note: `adding processors shortens the makespan until the monitor serializes the
workload (the critical section becomes the bottleneck).`,
		Headers: []string{"procs", "threads", "items", "makespan µs", "speedup vs 1 proc"},
	}
	items := o.pick(60, 300)
	var base float64
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := workload.SimProducerConsumer(workload.SimPCConfig{
			Procs: procs, Producers: 4, Consumers: 4,
			ItemsPerProducer: items / 4, Capacity: 8, Work: 400, Seed: int64(procs),
		})
		if err != nil {
			panic(err)
		}
		if procs == 1 {
			base = res.Micros
		}
		simT.Add(procs, 8, res.Items, F(res.Micros, 0), F(base/res.Micros, 2))
	}
	return []*Table{real, simT}
}

// ---------------------------------------------------------------------------
// EA — ablations of the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

// EA measures the cost of removing each optimization the paper's
// implementation section motivates: the user-space fast path and the
// no-waiter Signal short-circuit.
func EA(o Options) []*Table {
	t := &Table{
		ID:    "EA",
		Title: "ablations on the simulated Firefly",
		Note: `each row removes one optimization from §Implementation and re-measures;
the paper's design decisions are exactly the deltas.`,
		Headers: []string{"configuration", "uncontended pair (instr)", "100 empty Signals (instr)", "contended µs/op (5p×8t)"},
	}
	iters := o.pick(100, 400)
	measure := func(opts simthreads.WorldOptions) (pair, signals uint64, contended float64) {
		w, k := simthreads.NewWorldOpts(sim.Config{Procs: 1}, opts)
		m := w.NewMutex()
		c := w.NewCondition()
		k.Spawn("solo", func(e *sim.Env) {
			before := e.Instret()
			m.Acquire(e)
			m.Release(e)
			pair = e.Instret() - before
			before = e.Instret()
			for i := 0; i < 100; i++ {
				c.Signal(e)
			}
			signals = e.Instret() - before
		})
		if err := k.Run(); err != nil {
			panic(err)
		}
		w2, k2 := simthreads.NewWorldOpts(sim.Config{
			Procs: 5, Seed: 7, Quantum: 10_000, MaxSteps: 200_000_000,
		}, opts)
		m2 := w2.NewMutex()
		const threads = 8
		for i := 0; i < threads; i++ {
			k2.Spawn("", func(e *sim.Env) {
				for n := 0; n < iters; n++ {
					m2.Acquire(e)
					e.Work(20)
					m2.Release(e)
					e.Work(200)
				}
			})
		}
		if err := k2.Run(); err != nil {
			panic(err)
		}
		contended = k2.MakespanMicros() / float64(threads*iters)
		return
	}
	for _, cfg := range []struct {
		name string
		opts simthreads.WorldOptions
	}{
		{"paper (both optimizations)", simthreads.WorldOptions{}},
		{"no user-space fast path", simthreads.WorldOptions{NoUserFastPath: true}},
		{"no Signal fast path", simthreads.WorldOptions{NoSignalFastPath: true}},
		{"neither", simthreads.WorldOptions{NoUserFastPath: true, NoSignalFastPath: true}},
	} {
		pair, signals, contended := measure(cfg.opts)
		t.Add(cfg.name, pair, signals, F(contended, 2))
	}
	return []*Table{t}
}

// ---------------------------------------------------------------------------
// E19 — priority inversion: the Nub "does priority scheduling and time
// slicing" (§Implementation); inheritance keeps a preempted lock holder
// from being starved by the medium band.
// ---------------------------------------------------------------------------

// E19 runs the mixed-priority workload (workload.SimPriorityTail) with
// priority inheritance off and on, and reports the high-priority thread's
// lock-acquire latency distribution. The workload is deterministic, so the
// rows are exact — the same numbers the regression baseline pins.
func E19(Options) []*Table {
	t := &Table{
		ID:    "E19",
		Title: "mixed-priority tail latency (sim instructions)",
		Note: `one low-priority lock holder, one high-priority client, a medium-priority
compute band covering every processor; the holder's critical section spans
several quanta, so the slicer preempts it mid-section. Without inheritance
the medium band then starves the holder — the Mars Pathfinder shape — and
the high-priority client eats the band's whole burst as lock latency.`,
		Headers: []string{"inheritance", "p50", "p99", "p999", "max", "makespan"},
	}
	for _, pi := range []bool{false, true} {
		res, err := workload.SimPriorityTail(workload.DefaultPriorityConfig(pi))
		if err != nil {
			panic(err)
		}
		name := "off"
		if pi {
			name = "on"
		}
		t.Add(name, res.P50, res.P99, res.P999, res.Max, res.Makespan)
	}
	return []*Table{t}
}
