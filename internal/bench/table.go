// Package bench is the experiment harness: it runs the reproductions
// E1–E10 catalogued in EXPERIMENTS.md and renders their results as aligned
// text tables. cmd/threadsbench is a thin CLI over this package; the
// root-level benchmarks reuse the same drivers.
package bench

import (
	"fmt"
	"strings"
)

// Table is a titled grid of results.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Note    string // paper quote or expectation the table reproduces
	Headers []string
	Rows    [][]string
}

// Add appends a row; cells are formatted with %v (floats with %.3g via F).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// F formats a float for a cell with the given precision.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("  ")
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (header row first). The
// experiment id and title are not embedded — callers name the file or
// stream instead — so the output loads directly into analysis tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
