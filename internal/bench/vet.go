package bench

import (
	"threads/internal/analysis"
)

// RunThreadsvetRepo loads every package of the enclosing module and runs
// the full threadsvet suite over them as one cross-package program,
// returning the package count and the number of unsuppressed,
// non-advisory findings. It is the engine behind the e20.vet_ms
// regression metric and BenchmarkThreadsvetRepo: the whole-program
// analysis (summaries, entry-held fixpoint, guard inference) has to stay
// fast enough to sit in the per-commit CI path.
func RunThreadsvetRepo() (packages, findings int, err error) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return 0, 0, err
	}
	dirs, err := loader.ExpandPatterns(loader.ModuleRoot, []string{"./..."})
	if err != nil {
		return 0, 0, err
	}
	pkgs := make([]*analysis.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return 0, 0, err
		}
		pkgs = append(pkgs, pkg)
	}
	d := &analysis.Driver{Analyzers: analysis.All()}
	fs, err := d.RunProgram(analysis.NewProgram(pkgs))
	if err != nil {
		return 0, 0, err
	}
	for _, f := range fs {
		if !f.Suppressed && !f.Info {
			findings++
		}
	}
	return len(pkgs), findings, nil
}
