// Benchmark-regression harness: metric collection, JSON baselines, and the
// comparator that fails when a metric regresses past tolerance versus the
// committed baseline (BENCH_<n>.json at the repository root).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"threads/internal/checker"
	"threads/internal/core"
	"threads/internal/explore"
	"threads/internal/sim"
	"threads/internal/simthreads"
	"threads/internal/workload"
)

// Metric is one measured quantity in a baseline.
//
// Stable metrics are machine-independent — simulator instruction counts,
// deterministic-seed fast-path fractions, allocations per operation — and
// are enforced by default; timed metrics (wall-clock ns/op) vary across
// hosts and are enforced only on demand (threadsbench -timed), since a
// committed baseline is usually replayed on different hardware.
type Metric struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Better string  `json:"better"` // "lower" or "higher"
	Stable bool    `json:"stable"`
	// Slack is an absolute allowance added on top of the relative
	// tolerance, for metrics whose baseline is at or near zero (e.g.
	// allocs/op 0, where any relative tolerance is vacuous).
	Slack float64 `json:"slack,omitempty"`
}

// Baseline is a named set of metrics, serialized as BENCH_<n>.json.
//
// Schema 1 carries scalar metrics only; schema 2 adds per-core-count
// scaling curves (see sweep.go). A schema-1 file read by schema-2 code
// simply has no curves, and unknown fields are ignored on the way back, so
// the two schemas interoperate in both directions.
type Baseline struct {
	Schema  int      `json:"schema"`
	Note    string   `json:"note,omitempty"`
	Metrics []Metric `json:"metrics"`
	Curves  []Curve  `json:"curves,omitempty"`
}

// Regression describes one metric that got worse than tolerance allows.
type Regression struct {
	Name      string
	Base, Cur float64
	Better    string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: baseline %.4g, current %.4g (%s is better)",
		r.Name, r.Base, r.Cur, r.Better)
}

// Compare checks cur against base and returns every metric that regressed
// by more than tol (a fraction: 0.10 = 10%) plus the metric's absolute
// slack. Metrics present in base but missing from cur are regressions.
// Timed (non-stable) metrics are compared only when timed is true.
func Compare(base, cur Baseline, tol float64, timed bool) []Regression {
	byName := make(map[string]Metric, len(cur.Metrics))
	for _, m := range cur.Metrics {
		byName[m.Name] = m
	}
	var regs []Regression
	for _, b := range base.Metrics {
		if !b.Stable && !timed {
			continue
		}
		c, ok := byName[b.Name]
		if !ok {
			regs = append(regs, Regression{Name: b.Name + " (missing)", Base: b.Value, Cur: 0, Better: b.Better})
			continue
		}
		worse := false
		switch b.Better {
		case "higher":
			worse = c.Value < b.Value*(1-tol)-b.Slack
		default: // "lower"
			worse = c.Value > b.Value*(1+tol)+b.Slack
		}
		if worse {
			regs = append(regs, Regression{Name: b.Name, Base: b.Value, Cur: c.Value, Better: b.Better})
		}
	}
	return regs
}

// WriteBaseline writes b to path as indented JSON.
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline written by WriteBaseline.
func ReadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// timeAndAllocs runs f(total) once after a warmup call and reports
// wall-clock nanoseconds and heap allocations per operation. Mallocs are
// process-global, so concurrent background work would pollute the count —
// the collectors below run their workloads one at a time.
func timeAndAllocs(total int, f func(int)) (nsPerOp, allocsPerOp float64) {
	f(total / 10) // warm up pools, registries and the scheduler
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f(total)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(total),
		float64(after.Mallocs-before.Mallocs) / float64(total)
}

// CollectRegressionMetrics measures the current build's metrics for the
// regression baseline. Stable metrics use fixed sizes and seeds regardless
// of quick so the values stay comparable across collections; quick only
// shrinks the timed sweeps.
func CollectRegressionMetrics(quick bool) Baseline {
	o := Options{Quick: quick}
	b := Baseline{
		Schema: 1,
		Note: "threadsbench regression baseline; stable metrics are " +
			"machine-independent, timed metrics are enforced only with -timed",
	}
	add := func(name string, v float64, better string, stable bool, slack float64) {
		b.Metrics = append(b.Metrics, Metric{Name: name, Value: v, Better: better, Stable: stable, Slack: slack})
	}

	// E1: the uncontended pair on the simulated Firefly — the paper's
	// 5-instruction claim, exactly reproducible.
	w, k := simthreads.NewWorld(sim.Config{Procs: 1})
	m := w.NewMutex()
	var pair uint64
	k.Spawn("solo", func(e *sim.Env) {
		before := e.Instret()
		m.Acquire(e)
		m.Release(e)
		pair = e.Instret() - before
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	add("e1.sim_instr_pair", float64(pair), "lower", true, 0)

	// E2: simulated fast-path rate at 5 processors × 8 threads, fixed
	// seed and size — deterministic.
	res, err := workload.SimMutexContention(workload.SimContentionConfig{
		Procs: 5, Threads: 8, Iters: 100, CSWork: 20, Think: 200, Seed: 508,
	})
	if err != nil {
		panic(err)
	}
	add("e2.sim_fastpath_frac_5p8t", res.FastPathRate(), "higher", true, 0.02)

	// E11: contended Acquire/Release ladder at 8 goroutines.
	ladderTotal := o.pick(200_000, 1_000_000)
	ns, allocs := timeAndAllocs(ladderTotal, func(n int) { RunLadder(8, n) })
	add("e11.ladder8_ns_per_op", ns, "lower", false, 0)
	add("e11.ladder8_allocs_per_op", allocs, "lower", true, 0.05)

	// E12: Signal/Broadcast storm at 8 waiters.
	stormRounds := o.pick(20_000, 100_000)
	ns, allocs = timeAndAllocs(stormRounds, func(n int) { RunSignalStorm(8, n) })
	add("e12.storm8_ns_per_round", ns, "lower", false, 0)
	add("e12.storm8_allocs_per_round", allocs, "lower", true, 0.10)

	// E13: AlertP under contention at 8 workers.
	alertTotal := o.pick(50_000, 200_000)
	ns, allocs = timeAndAllocs(alertTotal, func(n int) { RunAlertPStorm(8, n) })
	add("e13.alertp8_ns_per_op", ns, "lower", false, 0)
	add("e13.alertp8_allocs_per_op", allocs, "lower", true, 0.10)

	// E17: schedule-exploration throughput and the sleep-set reduction's
	// pruning fraction, on the mutex litmus at k<=2 with POR on (serial,
	// no cache, so the run is exactly deterministic). The prune fraction
	// is a pure function of the decision tree and the independence
	// relation — stable across machines; throughput is wall-clock and
	// enforced only with -timed.
	mlit := checker.LitmusByName("mutex")
	expStart := time.Now()
	expRep := explore.Explore(mlit, explore.Options{MaxPreemptions: 2, POR: explore.PORSleepSets})
	expElapsed := time.Since(expStart).Seconds()
	if expRep.Violation != nil || expRep.Partial {
		panic(fmt.Sprintf("mutex exploration did not complete cleanly: %+v", expRep))
	}
	sched := 0
	for _, ks := range expRep.PerK {
		sched += ks.Schedules
	}
	add("e17.explore_sched_per_sec", float64(sched)/expElapsed, "higher", false, 0)
	add("e17.por_prune_frac", float64(expRep.Pruned)/float64(sched+expRep.Pruned), "higher", true, 0.02)

	// E18: the deadline cancel path — arm a timer-wheel entry, take the
	// uncontended mutex, cancel-and-drain on the way out. Steady-state
	// allocations must be zero (the timer entry is cached per thread;
	// that is the stable metric); the wall-clock cost is dominated by
	// SELF recovery, shared with every alertable operation, and enforced
	// only with -timed.
	dlTotal := o.pick(20_000, 100_000)
	var dm core.Mutex
	dlFar := time.Now().Add(time.Hour)
	ns, allocs = timeAndAllocs(dlTotal, func(n int) {
		for i := 0; i < n; i++ {
			if err := dm.AcquireDeadline(dlFar); err != nil {
				panic(err)
			}
			dm.Release()
		}
	})
	add("e18.acquire_deadline_ns", ns, "lower", false, 0)
	add("e18.arm_cancel_allocs", allocs, "lower", true, 0.05)

	// Park-path allocations, measured directly: one Fork thread blocking
	// repeatedly on a semaphore. Zero-allocation parking is the headline
	// property; the cached waiter makes this exactly 0 in steady state,
	// the slack absorbs runtime noise (timer and scheduler allocations).
	parks := 20_000
	nsPark, allocsPark := timeAndAllocs(parks, runParkPingPong)
	add("park.ns_per_park", nsPark, "lower", false, 0)
	add("park.allocs_per_park", allocsPark, "lower", true, 0.05)

	// E19: mixed-priority tail latency. Both runs are deterministic
	// simulator workloads (fixed seed, no wall clock), so the percentiles
	// are exact and the stable tolerance guards the priority-inheritance
	// machinery: if a scheduler change reintroduces the inversion, the
	// with-inheritance p99 blows up by the medium band's burst length.
	piOff, err := workload.SimPriorityTail(workload.DefaultPriorityConfig(false))
	if err != nil {
		panic(err)
	}
	piOn, err := workload.SimPriorityTail(workload.DefaultPriorityConfig(true))
	if err != nil {
		panic(err)
	}
	add("e19.hi_p99_instr_pi_on", float64(piOn.P99), "lower", true, 0)
	add("e19.hi_p999_instr_pi_on", float64(piOn.P999), "lower", true, 0)
	// The off/on ratio is the size of the inversion itself; it shrinking
	// toward 1 means inheritance stopped mattering (either the boost broke
	// or the workload no longer creates the hazard).
	add("e19.hi_p99_ratio_off_over_on", float64(piOff.P99)/float64(piOn.P99), "higher", true, 0)

	// E20: the static-analysis gate itself — full-repo threadsvet, all
	// analyzers over one cross-package program (summaries, entry-held
	// fixpoint, guard inference). Wall-clock, so enforced only with
	// -timed; the metric keeps the vet step cheap enough for the
	// per-commit CI path as the analysis and the repo both grow. A clean
	// repo is a precondition for collecting a baseline at all.
	vetStart := time.Now()
	vetPkgs, vetFindings, err := RunThreadsvetRepo()
	if err != nil {
		panic(err)
	}
	if vetFindings != 0 {
		panic(fmt.Sprintf("threadsvet reported %d findings over %d packages during baseline collection; fix or justify them first", vetFindings, vetPkgs))
	}
	add("e20.vet_ms", time.Since(vetStart).Seconds()*1e3, "lower", false, 0)

	return b
}

// runParkPingPong forces total real parks: two Fork threads alternating
// through a pair of semaphores, so every P (after the first) blocks and
// every episode goes through the full park/wake round-trip.
func runParkPingPong(total int) {
	var a, b core.Semaphore
	b.P()
	rounds := total / 2
	if rounds == 0 {
		rounds = 1
	}
	done := make(chan struct{})
	core.Fork(func() {
		for i := 0; i < rounds; i++ {
			a.P()
			b.V()
		}
	})
	t2 := core.Fork(func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			b.P()
			a.V()
		}
	})
	<-done
	_ = t2
}
