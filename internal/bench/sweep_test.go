package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func curve(name, better string, stable bool, slack float64, pts ...Point) Curve {
	return Curve{Name: name, Better: better, Stable: stable, Slack: slack, Points: pts}
}

func pt(cores int, v float64) Point { return Point{Cores: cores, Value: v} }

func TestCompareCurvesDetectsRegressions(t *testing.T) {
	base := []Curve{
		curve("ladder_allocs", "lower", true, 0.05, pt(1, 1.0), pt(2, 1.0), pt(4, 1.0)),
		curve("ladder_ns", "lower", false, 0, pt(1, 100), pt(2, 120), pt(4, 150)),
	}

	t.Run("identical passes", func(t *testing.T) {
		if regs := CompareCurves(base, base, nil, 0.10, true); len(regs) != 0 {
			t.Fatalf("self-compare regressed: %v", regs)
		}
	})

	t.Run("missing curve is loud", func(t *testing.T) {
		regs := CompareCurves(base, base[1:], nil, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "ladder_allocs (missing curve)" {
			t.Fatalf("want the dropped curve reported, got %v", regs)
		}
	})

	t.Run("missing point is loud", func(t *testing.T) {
		cur := []Curve{
			curve("ladder_allocs", "lower", true, 0.05, pt(1, 1.0), pt(2, 1.0)),
			base[1],
		}
		regs := CompareCurves(base, cur, nil, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "ladder_allocs@4c (missing point)" {
			t.Fatalf("want the dropped point reported, got %v", regs)
		}
	})

	t.Run("cores restricts the comparison", func(t *testing.T) {
		cur := []Curve{
			curve("ladder_allocs", "lower", true, 0.05, pt(1, 1.0), pt(2, 1.0)),
			curve("ladder_ns", "lower", false, 0, pt(1, 100), pt(2, 120)),
		}
		// A {1,2} smoke run compared on its prefix: no regressions...
		if regs := CompareCurves(base, cur, []int{1, 2}, 0.10, true); len(regs) != 0 {
			t.Fatalf("prefix compare regressed: %v", regs)
		}
		// ...but a requested core count the run failed to produce is loud.
		regs := CompareCurves(base, cur, []int{1, 2, 4}, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "ladder_allocs@4c (missing point)" {
			t.Fatalf("want the requested-but-absent point reported, got %v", regs)
		}
	})

	t.Run("stable pointwise regression caught", func(t *testing.T) {
		cur := []Curve{
			curve("ladder_allocs", "lower", true, 0.05, pt(1, 1.0), pt(2, 1.0), pt(4, 1.5)),
			base[1],
		}
		regs := CompareCurves(base, cur, nil, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "ladder_allocs@4c" {
			t.Fatalf("want exactly the 4-core point to regress, got %v", regs)
		}
	})

	t.Run("knee caught even when every point is within scalar tolerance", func(t *testing.T) {
		// Every point improved or held, so the pointwise check passes — but
		// the curve now rises 1.0 -> 1.67x by 4 cores where the baseline
		// was flat: a knee appeared.
		cur := []Curve{
			curve("ladder_allocs", "lower", true, 0.05, pt(1, 0.6), pt(2, 0.6), pt(4, 1.0)),
			base[1],
		}
		regs := CompareCurves(base, cur, nil, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "ladder_allocs@4c (knee)" {
			t.Fatalf("want the knee flagged, got %v", regs)
		}
	})

	t.Run("timed curves skipped unless requested", func(t *testing.T) {
		cur := []Curve{
			base[0],
			curve("ladder_ns", "lower", false, 0, pt(1, 100), pt(2, 500), pt(4, 900)),
		}
		if regs := CompareCurves(base, cur, nil, 0.10, false); len(regs) != 0 {
			t.Fatalf("timed curve enforced without timed=true: %v", regs)
		}
		if regs := CompareCurves(base, cur, nil, 0.10, true); len(regs) != 2 {
			t.Fatalf("want both degraded points flagged with timed=true, got %v", regs)
		}
	})

	t.Run("timed compares shape, not absolute speed", func(t *testing.T) {
		// Uniformly 3x slower — a different machine — but the same shape:
		// passes even with timed=true.
		cur := []Curve{
			base[0],
			curve("ladder_ns", "lower", false, 0, pt(1, 300), pt(2, 360), pt(4, 450)),
		}
		if regs := CompareCurves(base, cur, nil, 0.10, true); len(regs) != 0 {
			t.Fatalf("uniform slowdown flagged as shape regression: %v", regs)
		}
		// Same 1-core speed, collapsing scaling: flagged.
		cur[1] = curve("ladder_ns", "lower", false, 0, pt(1, 100), pt(2, 120), pt(4, 400))
		regs := CompareCurves(base, cur, nil, 0.10, true)
		if len(regs) != 1 || regs[0].Name != "ladder_ns@4c (shape)" {
			t.Fatalf("want the scaling collapse flagged, got %v", regs)
		}
	})
}

func TestSweepBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	want := Baseline{Schema: 2, Note: "round trip", Metrics: []Metric{
		metric("a", 1.5, "lower", true, 0.1),
	}, Curves: []Curve{
		curve("c1", "lower", true, 0.05, pt(1, 1), pt(2, 2)),
		curve("c2", "lower", false, 0.75, pt(1, 100), pt(2, 140)),
	}}
	if err := WriteBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != 2 || len(got.Curves) != 2 {
		t.Fatalf("schema/curves lost: %+v", got)
	}
	for i, c := range want.Curves {
		g := got.Curves[i]
		if g.Name != c.Name || g.Better != c.Better || g.Stable != c.Stable || g.Slack != c.Slack || len(g.Points) != len(c.Points) {
			t.Fatalf("curve %d mismatch: %+v vs %+v", i, g, c)
		}
		for j := range c.Points {
			if g.Points[j] != c.Points[j] {
				t.Fatalf("curve %d point %d mismatch: %+v vs %+v", i, j, g.Points[j], c.Points[j])
			}
		}
	}
}

// TestSchemaOneBackwardCompatible pins the interop promise: a schema-1 file
// (no curves key) reads cleanly, and comparing against its empty curve set
// enforces nothing.
func TestSchemaOneBackwardCompatible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	data := `{"schema": 1, "metrics": [{"name": "x", "value": 1, "better": "lower", "stable": true}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Curves != nil {
		t.Fatalf("schema-1 file grew curves: %+v", b.Curves)
	}
	cur := []Curve{curve("anything", "lower", true, 0, pt(1, 99))}
	if regs := CompareCurves(b.Curves, cur, nil, 0.10, true); len(regs) != 0 {
		t.Fatalf("empty baseline produced regressions: %v", regs)
	}
}

// TestCollectSweepShape runs a tiny sweep end to end and checks the curve
// structure: two curves per workload, one point per requested core count,
// in order, with sane values.
func TestCollectSweepShape(t *testing.T) {
	ws := []sweepWorkload{{
		id: "tiny.ladder2", run: func(n int) { RunLadder(2, n) },
		quickN: 2_000, fullN: 2_000, allocSlack: 0.05, timedSlack: 0.75,
	}}
	cores := []int{1, 2}
	curves := collectSweep(ws, cores, 2, true)
	if len(curves) != 2 {
		t.Fatalf("want 2 curves (ns, allocs), got %d", len(curves))
	}
	if curves[0].Name != "tiny.ladder2_ns_per_op" || curves[0].Stable {
		t.Fatalf("first curve should be the timed ns curve: %+v", curves[0])
	}
	if curves[1].Name != "tiny.ladder2_allocs_per_op" || !curves[1].Stable {
		t.Fatalf("second curve should be the stable allocs curve: %+v", curves[1])
	}
	for _, c := range curves {
		if len(c.Points) != len(cores) {
			t.Fatalf("%s: want %d points, got %+v", c.Name, len(cores), c.Points)
		}
		for i, p := range c.Points {
			if p.Cores != cores[i] {
				t.Fatalf("%s: point %d at %d cores, want %d", c.Name, i, p.Cores, cores[i])
			}
			if p.Value < 0 {
				t.Fatalf("%s: negative value %v", c.Name, p.Value)
			}
		}
	}
	if curves[0].Points[0].Value == 0 {
		t.Fatal("ns/op of a real workload measured as zero")
	}
}

// TestCommittedSweepBaseline is the committed-curve gate, mirroring the CI
// sweep-smoke job: a quick 2-core-count sweep of the current build must
// hold the stable curves of BENCH_2.json on the compared prefix — and an
// injected regression on those same curves must be caught (the acceptance
// test that the comparator cannot silently pass).
func TestCommittedSweepBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("collection is slow; run without -short")
	}
	path := filepath.Join("..", "..", "BENCH_2.json")
	if _, err := os.Stat(path); err != nil {
		t.Skip("no committed BENCH_2.json")
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Schema != 2 || len(base.Curves) == 0 {
		t.Fatalf("BENCH_2.json is not a schema-2 curve baseline: schema=%d curves=%d", base.Schema, len(base.Curves))
	}
	cores := []int{1, 2}
	cur := CollectSweep(cores, 1, true)
	if regs := CompareCurves(base.Curves, cur, cores, 0.10, false); len(regs) != 0 {
		for _, r := range regs {
			t.Errorf("sweep regression: %s", r)
		}
	}

	// Injected regression: quadruple one stable curve's high-core point in
	// the collected data and require the comparator to flag it.
	injected := make([]Curve, len(cur))
	copy(injected, cur)
	found := false
	for i, c := range injected {
		if !c.Stable {
			continue
		}
		pts := make([]Point, len(c.Points))
		copy(pts, c.Points)
		last := &pts[len(pts)-1]
		last.Value = last.Value*4 + 10 // past any tolerance and slack
		injected[i].Points = pts
		found = true
		break
	}
	if !found {
		t.Fatal("no stable curve collected to inject into")
	}
	if regs := CompareCurves(base.Curves, injected, cores, 0.10, false); len(regs) == 0 {
		t.Fatal("injected regression passed the curve comparator")
	}
}
