// Core-count scaling sweep: the E11–E13 contended workloads measured across
// GOMAXPROCS values, producing per-core-count curves (schema-2 baselines),
// plus the curve comparator that fails when the *shape* of a curve
// regresses — a knee appearing at a lower core count — even when every
// individual point is still within scalar tolerance. Experiment E16 uses
// the same machinery to measure the scalability fixes (sharded semaphore
// counters, direct hand-off, the MCS queued spin lock) before and after.
package bench

import (
	"fmt"
	"runtime"
	"strings"

	"threads/internal/core"
	"threads/internal/spinlock"
)

// Point is one measurement of a scaling curve: the metric's value with
// GOMAXPROCS set to Cores.
type Point struct {
	Cores int     `json:"cores"`
	Value float64 `json:"value"`
}

// Curve is a metric measured across core counts. Better, Stable and Slack
// mean what they mean on Metric; the comparator additionally enforces the
// curve's shape (CompareCurves).
type Curve struct {
	Name   string  `json:"name"`
	Better string  `json:"better"` // "lower" or "higher"
	Stable bool    `json:"stable"`
	Slack  float64 `json:"slack,omitempty"`
	Points []Point `json:"points"`
}

// value returns the point at the given core count.
func (c Curve) value(cores int) (float64, bool) {
	for _, p := range c.Points {
		if p.Cores == cores {
			return p.Value, true
		}
	}
	return 0, false
}

// DefaultSweepCores returns the core counts a sweep measures by default:
// doubling from 1 up to NumCPU, always ending at NumCPU itself (so a
// 6-core machine sweeps 1, 2, 4, 6).
func DefaultSweepCores() []int {
	n := runtime.NumCPU()
	var cores []int
	for k := 1; k < n; k *= 2 {
		cores = append(cores, k)
	}
	return append(cores, n)
}

// sweepWorkload is one contended workload the sweep runs at every core
// count. Each yields two curves: <id>_ns_per_op (timed) and
// <id>_allocs_per_op (stable).
type sweepWorkload struct {
	id         string
	run        func(total int)
	quickN     int
	fullN      int
	allocSlack float64 // absolute slack for the allocs/op curve
	timedSlack float64 // normalized-shape slack for the ns/op curve
}

// sweepWorkloads are the E11–E13 contended drivers, the same ones the
// scalar regression metrics time at default GOMAXPROCS.
func sweepWorkloads() []sweepWorkload {
	return []sweepWorkload{
		{"e11.ladder8", func(n int) { RunLadder(8, n) }, 100_000, 500_000, 0.05, 0.75},
		{"e12.storm8", func(n int) { RunSignalStorm(8, n) }, 10_000, 50_000, 0.10, 0.75},
		{"e13.alertp8", func(n int) { _ = RunAlertPStorm(8, n) }, 25_000, 100_000, 0.10, 0.75},
	}
}

// CollectSweep measures the E11–E13 scaling curves at each of the given
// core counts, taking the best of samples runs per point (minimum for
// lower-is-better metrics: the least-disturbed run is the measurement, the
// rest is scheduler noise). GOMAXPROCS is restored before returning.
// Values above runtime.NumCPU() oversubscribe the machine; the curve is
// still meaningful (it measures contention behavior, not parallel
// speedup), and BENCH_2.json documents the host it was collected on.
func CollectSweep(cores []int, samples int, quick bool) []Curve {
	return collectSweep(sweepWorkloads(), cores, samples, quick)
}

func collectSweep(ws []sweepWorkload, cores []int, samples int, quick bool) []Curve {
	if samples < 1 {
		samples = 1
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var curves []Curve
	for _, w := range ws {
		total := w.fullN
		if quick {
			total = w.quickN
		}
		ns := Curve{Name: w.id + "_ns_per_op", Better: "lower", Stable: false, Slack: w.timedSlack}
		al := Curve{Name: w.id + "_allocs_per_op", Better: "lower", Stable: true, Slack: w.allocSlack}
		for _, k := range cores {
			runtime.GOMAXPROCS(k)
			bestNs, bestAl := 0.0, 0.0
			for s := 0; s < samples; s++ {
				n, a := timeAndAllocs(total, w.run)
				if s == 0 || n < bestNs {
					bestNs = n
				}
				if s == 0 || a < bestAl {
					bestAl = a
				}
			}
			ns.Points = append(ns.Points, Point{Cores: k, Value: bestNs})
			al.Points = append(al.Points, Point{Cores: k, Value: bestAl})
		}
		curves = append(curves, ns, al)
	}
	return curves
}

// CompareCurves checks cur's scaling curves against base's and returns
// every violation. cores restricts the comparison to those core counts
// (nil: every core count base has) — a smoke sweep at {1,2} is compared
// only on its prefix, but a core count that was requested and is absent
// from the current run fails loudly, exactly like a missing scalar metric.
//
// Rules, per base curve:
//
//   - Curve present in base but absent from cur: regression ("missing
//     curve"). Base point at a compared core count with no current point:
//     regression ("missing point"). Silent drops would let a scaling
//     collapse slide.
//   - Stable curves are compared pointwise like scalar metrics (relative
//     tol plus absolute Slack), and then by shape: each point's rise over
//     the curve's own best value at <= that core count must not exceed the
//     baseline's rise at the same core count by more than tol. A curve
//     that was flat to 8 cores and now knees at 4 fails the shape check
//     even if every point is individually within scalar tolerance.
//   - Timed curves are compared only when timed is true, and then on
//     normalized shape, not absolute value: both curves are divided by
//     their own first-point value and the normalized points compared with
//     tol plus Slack. Absolute ns/op varies across hosts; how it scales
//     with core count is the property worth holding, with generous slack
//     (the committed timedSlack) because even shape is noisy on shared CI
//     machines.
func CompareCurves(base, cur []Curve, cores []int, tol float64, timed bool) []Regression {
	byName := make(map[string]Curve, len(cur))
	for _, c := range cur {
		byName[c.Name] = c
	}
	want := func(k int) bool {
		if cores == nil {
			return true
		}
		for _, c := range cores {
			if c == k {
				return true
			}
		}
		return false
	}
	var regs []Regression
	for _, b := range base {
		if !b.Stable && !timed {
			continue
		}
		c, ok := byName[b.Name]
		if !ok {
			regs = append(regs, Regression{Name: b.Name + " (missing curve)", Base: float64(len(b.Points)), Cur: 0, Better: b.Better})
			continue
		}
		// The compared subset of base points, in base (ascending) order.
		var pts []Point
		for _, p := range b.Points {
			if want(p.Cores) {
				pts = append(pts, p)
			}
		}
		if len(pts) == 0 {
			continue
		}
		missing := false
		for _, p := range pts {
			if _, ok := c.value(p.Cores); !ok {
				regs = append(regs, Regression{Name: fmt.Sprintf("%s@%dc (missing point)", b.Name, p.Cores), Base: p.Value, Cur: 0, Better: b.Better})
				missing = true
			}
		}
		if missing {
			continue // the shape checks below need every compared point
		}
		if b.Stable {
			pw := comparePointwise(b, c, pts, tol)
			regs = append(regs, pw...)
			// A point the scalar rule already flagged would knee trivially;
			// report each core count once.
			flagged := make(map[string]bool, len(pw))
			for _, r := range pw {
				flagged[r.Name] = true
			}
			for _, r := range compareKnees(b, c, pts, tol) {
				if !flagged[strings.TrimSuffix(r.Name, " (knee)")] {
					regs = append(regs, r)
				}
			}
		} else {
			regs = append(regs, compareNormalized(b, c, pts, tol)...)
		}
	}
	return regs
}

// comparePointwise applies the scalar-metric rule at every compared core
// count of a stable curve.
func comparePointwise(b, c Curve, pts []Point, tol float64) []Regression {
	var regs []Regression
	for _, p := range pts {
		v, _ := c.value(p.Cores)
		worse := false
		switch b.Better {
		case "higher":
			worse = v < p.Value*(1-tol)-b.Slack
		default:
			worse = v > p.Value*(1+tol)+b.Slack
		}
		if worse {
			regs = append(regs, Regression{Name: fmt.Sprintf("%s@%dc", b.Name, p.Cores), Base: p.Value, Cur: v, Better: b.Better})
		}
	}
	return regs
}

// compareKnees is the shape check on a stable curve: the rise of each point
// over the running best (minimum for lower-is-better) at <= its core count,
// current vs baseline. Points whose running best sits inside the curve's
// absolute Slack are skipped — down there the ratio is noise, and the
// pointwise check already bounds the values.
func compareKnees(b, c Curve, pts []Point, tol float64) []Regression {
	var regs []Regression
	lower := b.Better != "higher"
	envB, envC := 0.0, 0.0
	for i, p := range pts {
		v, _ := c.value(p.Cores)
		if i == 0 {
			envB, envC = p.Value, v
			continue
		}
		if lower {
			envB, envC = min(envB, p.Value), min(envC, v)
		} else {
			envB, envC = max(envB, p.Value), max(envC, v)
		}
		if envB <= b.Slack || envC <= b.Slack || envB <= 0 || envC <= 0 {
			continue
		}
		riseB, riseC := p.Value/envB, v/envC
		if !lower {
			riseB, riseC = envB/p.Value, envC/v
		}
		if riseC > riseB*(1+tol) {
			regs = append(regs, Regression{Name: fmt.Sprintf("%s@%dc (knee)", b.Name, p.Cores), Base: riseB, Cur: riseC, Better: "lower"})
		}
	}
	return regs
}

// compareNormalized is the timed-curve rule: both curves normalized by
// their own value at the first compared core count, then compared with tol
// plus the curve's Slack.
func compareNormalized(b, c Curve, pts []Point, tol float64) []Regression {
	ref := pts[0]
	refC, _ := c.value(ref.Cores)
	if ref.Value <= 0 || refC <= 0 {
		return nil
	}
	var regs []Regression
	for _, p := range pts[1:] {
		v, _ := c.value(p.Cores)
		normB, normC := p.Value/ref.Value, v/refC
		worse := false
		switch b.Better {
		case "higher":
			worse = normC < normB*(1-tol)-b.Slack
		default:
			worse = normC > normB*(1+tol)+b.Slack
		}
		if worse {
			regs = append(regs, Regression{Name: fmt.Sprintf("%s@%dc (shape)", b.Name, p.Cores), Base: normB, Cur: normC, Better: b.Better})
		}
	}
	return regs
}

// ---------------------------------------------------------------------------
// E16 — the scalability walls, before and after the fixes.
// ---------------------------------------------------------------------------

// E16 sweeps the contended workloads across core counts with the three
// scalability fixes switched off (the paper-faithful configuration every
// earlier experiment measured) and on, and reports the sharded-counter
// scaling of the counting semaphore separately.
func E16(o Options) []*Table {
	t := &Table{
		ID:    "E16",
		Title: "scaling walls: paper-faithful vs scalability fixes (direct hand-off + MCS Nub lock)",
		Note: `"paper" is the protocol of SRC Report 20 exactly: TAS Nub spin lock,
Release clears the bit and wakes a waiter to retry (barging allowed).
"shipping" adds the adaptive direct hand-off (core.HandoffAdaptive, the
default: Release gifts the gate to a waiter only once it has waited past the
starvation threshold). "queued" additionally selects the MCS Nub lock.
Values are ns/op, best of 2 samples; the knee is the first core count where
ns/op exceeds twice the curve's minimum. Core counts above NumCPU
oversubscribe the host — they expose convoy behavior (FIFO hand-off to a
preempted waiter stalls everyone behind the scheduler), not the cache-line
storm MCS exists to fix, which needs truly parallel waiters.`,
		Headers: []string{"workload", "config", "cores", "ns/op", "vs best", "knee@"},
	}
	// Sweep to at least 8 "cores" even on smaller hosts: GOMAXPROCS above
	// NumCPU oversubscribes the scheduler, which still exposes the
	// contention walls (that is what a wall is — more runnable lock users
	// than the lock can serve).
	cores := DefaultSweepCores()
	for k := cores[len(cores)-1] * 2; k <= 8; k *= 2 {
		cores = append(cores, k)
	}
	if o.Quick {
		cores = cores[:min(2, len(cores))]
	}
	samples := 2
	configs := []struct {
		name    string
		queued  bool
		handoff core.HandoffMode
	}{
		{"paper (TAS, wake-retry)", false, core.HandoffOff},
		{"shipping (TAS, adaptive hand-off)", false, core.HandoffAdaptive},
		{"queued (MCS, adaptive hand-off)", true, core.HandoffAdaptive},
	}
	prevQ := spinlock.Queued()
	prevH := core.CurrentHandoffMode()
	defer func() {
		spinlock.SetQueued(prevQ)
		core.SetHandoffMode(prevH)
	}()
	for _, w := range sweepWorkloads() {
		for _, cfg := range configs {
			spinlock.SetQueued(cfg.queued)
			core.SetHandoffMode(cfg.handoff)
			curves := collectSweep([]sweepWorkload{w}, cores, samples, o.Quick)
			ns := curves[0]
			best := ns.Points[0].Value
			for _, p := range ns.Points {
				best = min(best, p.Value)
			}
			knee := "-"
			for _, p := range ns.Points {
				if p.Value > 2*best {
					knee = fmt.Sprintf("%dc", p.Cores)
					break
				}
			}
			for _, p := range ns.Points {
				t.Add(w.id, cfg.name, p.Cores, F(p.Value, 1), F(p.Value/best, 2), knee)
			}
		}
	}
	spinlock.SetQueued(prevQ)
	core.SetHandoffMode(prevH)

	shards := &Table{
		ID:    "E16b",
		Title: "sharded semaphore counters: uncontended-token P/V ladder",
		Note: `8 goroutines P/V a counting semaphore holding 8 tokens — nobody blocks, so
the measurement is pure counter traffic: one shard is a single contended
cache line, per-core shards spread it. ns/op, best of 2 samples.`,
		Headers: []string{"shards", "cores", "ns/op", "vs 1 shard"},
	}
	ladderTotal := o.pick(100_000, 500_000)
	kMax := cores[len(cores)-1]
	shardCores := []int{1, kMax}
	if kMax == 1 {
		shardCores = []int{1}
	}
	base := map[int]float64{}
	for _, nshards := range []int{1, 4, 16} {
		run := func(n int) { RunCSemLadder(8, nshards, n) }
		curves := collectSweep([]sweepWorkload{{
			id: "csem", run: run, quickN: ladderTotal, fullN: ladderTotal,
		}}, shardCores, samples, o.Quick)
		for _, p := range curves[0].Points {
			if nshards == 1 {
				base[p.Cores] = p.Value
			}
			shards.Add(nshards, p.Cores, F(p.Value, 1), F(p.Value/base[p.Cores], 2))
		}
	}
	return []*Table{t, shards}
}
