package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func metric(name string, v float64, better string, stable bool, slack float64) Metric {
	return Metric{Name: name, Value: v, Better: better, Stable: stable, Slack: slack}
}

func TestCompareDetectsRegressions(t *testing.T) {
	base := Baseline{Schema: 1, Metrics: []Metric{
		metric("instr", 5, "lower", true, 0),
		metric("fastpath", 0.90, "higher", true, 0.02),
		metric("allocs", 0, "lower", true, 0.05),
		metric("ns", 100, "lower", false, 0),
	}}

	t.Run("identical passes", func(t *testing.T) {
		if regs := Compare(base, base, 0.10, true); len(regs) != 0 {
			t.Fatalf("self-compare regressed: %v", regs)
		}
	})

	t.Run("within tolerance passes", func(t *testing.T) {
		cur := Baseline{Metrics: []Metric{
			metric("instr", 5, "lower", true, 0),
			metric("fastpath", 0.89, "higher", true, 0), // 0.90*(1-0.10)=0.81 < 0.89
			metric("allocs", 0.04, "lower", true, 0),    // 0*(1.10)+0.05 slack
			metric("ns", 109, "lower", false, 0),
		}}
		if regs := Compare(base, cur, 0.10, true); len(regs) != 0 {
			t.Fatalf("in-tolerance compare regressed: %v", regs)
		}
	})

	t.Run("lower-better regression caught", func(t *testing.T) {
		cur := Baseline{Metrics: []Metric{
			metric("instr", 6, "lower", true, 0), // 5*1.10=5.5 < 6
			metric("fastpath", 0.90, "higher", true, 0),
			metric("allocs", 0, "lower", true, 0),
			metric("ns", 100, "lower", false, 0),
		}}
		regs := Compare(base, cur, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "instr" {
			t.Fatalf("want exactly instr to regress, got %v", regs)
		}
	})

	t.Run("higher-better regression caught", func(t *testing.T) {
		cur := Baseline{Metrics: []Metric{
			metric("instr", 5, "lower", true, 0),
			metric("fastpath", 0.70, "higher", true, 0), // < 0.81-0.02
			metric("allocs", 0, "lower", true, 0),
			metric("ns", 100, "lower", false, 0),
		}}
		regs := Compare(base, cur, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "fastpath" {
			t.Fatalf("want exactly fastpath to regress, got %v", regs)
		}
	})

	t.Run("slack shields a zero baseline", func(t *testing.T) {
		cur := Baseline{Metrics: []Metric{
			metric("instr", 5, "lower", true, 0),
			metric("fastpath", 0.90, "higher", true, 0),
			metric("allocs", 0.06, "lower", true, 0), // above the 0.05 slack
			metric("ns", 100, "lower", false, 0),
		}}
		regs := Compare(base, cur, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "allocs" {
			t.Fatalf("want exactly allocs to regress, got %v", regs)
		}
	})

	t.Run("missing metric is a regression", func(t *testing.T) {
		cur := Baseline{Metrics: []Metric{
			metric("instr", 5, "lower", true, 0),
			metric("fastpath", 0.90, "higher", true, 0),
			metric("ns", 100, "lower", false, 0),
		}}
		regs := Compare(base, cur, 0.10, false)
		if len(regs) != 1 || regs[0].Name != "allocs (missing)" {
			t.Fatalf("want allocs reported missing, got %v", regs)
		}
	})

	t.Run("timed metrics skipped unless requested", func(t *testing.T) {
		cur := Baseline{Metrics: []Metric{
			metric("instr", 5, "lower", true, 0),
			metric("fastpath", 0.90, "higher", true, 0),
			metric("allocs", 0, "lower", true, 0),
			metric("ns", 500, "lower", false, 0), // 5x slower
		}}
		if regs := Compare(base, cur, 0.10, false); len(regs) != 0 {
			t.Fatalf("timed metric enforced without -timed: %v", regs)
		}
		regs := Compare(base, cur, 0.10, true)
		if len(regs) != 1 || regs[0].Name != "ns" {
			t.Fatalf("want ns to regress with timed=true, got %v", regs)
		}
	})
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := Baseline{Schema: 1, Note: "round trip", Metrics: []Metric{
		metric("a", 1.5, "lower", true, 0.1),
		metric("b", 2, "higher", false, 0),
	}}
	if err := WriteBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != want.Schema || got.Note != want.Note || len(got.Metrics) != len(want.Metrics) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Metrics {
		if got.Metrics[i] != want.Metrics[i] {
			t.Fatalf("metric %d mismatch: %+v vs %+v", i, got.Metrics[i], want.Metrics[i])
		}
	}
}

// TestCommittedBaseline checks the current build against the committed
// BENCH_1.json on stable (machine-independent) metrics only — the check
// cmd/threadsbench -baseline runs, wired into go test so it cannot be
// forgotten. Skipped if no baseline is committed yet.
func TestCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("collection is slow; run without -short")
	}
	path := filepath.Join("..", "..", "BENCH_1.json")
	if _, err := os.Stat(path); err != nil {
		t.Skip("no committed BENCH_1.json")
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	cur := CollectRegressionMetrics(true)
	if regs := Compare(base, cur, 0.10, false); len(regs) != 0 {
		for _, r := range regs {
			t.Errorf("regression: %s", r)
		}
	}
}
