package baselines

import (
	"threads/internal/sim"
	"threads/internal/simthreads"
)

// NaiveSimCond is the condition variable with the wakeup-waiting race — the
// design the paper's specification of Wait's atomic Enqueue action rules
// out. Its Wait releases the mutex and then, as a separate step, queues and
// suspends the caller; its Signal wakes a queued thread or does nothing.
//
// The incorrect sequence the paper describes (§Informal Description) is
// then possible: "one thread leaves its critical section; then another
// thread enters a critical section, modifies the shared variables, and
// calls Signal (which finds nothing to be unblocked); and then the first
// thread suspends execution." The signal is lost and the waiter sleeps
// forever — the "wakeup-waiting race" (Saltzer 66).
//
// It runs on the simulator so experiment E4 can count, over seeded
// schedules, how often the race actually bites, against the eventcount
// implementation's zero.
type NaiveSimCond struct {
	lock sim.Word // private spin lock guarding q
	q    []*sim.T
}

// NewNaiveSimCond returns an empty condition variable.
func NewNaiveSimCond() *NaiveSimCond { return &NaiveSimCond{} }

func (c *NaiveSimCond) spinLock(e *sim.Env) {
	for e.TAS(&c.lock) != 0 {
	}
	e.SetPreemptible(false)
}

func (c *NaiveSimCond) spinUnlock(e *sim.Env) {
	e.SetPreemptible(true)
	e.Store(&c.lock, 0)
}

// Wait releases m, then — fatally, in a separate step — enqueues and
// suspends the caller, then reacquires m.
func (c *NaiveSimCond) Wait(e *sim.Env, m *simthreads.Mutex) {
	m.Release(e) //threadsvet:ignore lockpair: Wait operates on the caller-held mutex; this baseline reimplements the primitive
	// The race window is here: a Signal between the Release above and
	// the enqueue below finds nothing to unblock.
	c.spinLock(e)
	c.q = append(c.q, e.Self())
	c.spinUnlock(e)
	e.Deschedule("naive Wait")
	m.Acquire(e) //threadsvet:ignore lockpair: reacquire-on-return half of Wait; the caller holds the mutex across the call
}

// Signal wakes the first queued thread, if any; a signal with no queued
// thread is forgotten.
func (c *NaiveSimCond) Signal(e *sim.Env) {
	c.spinLock(e)
	var t *sim.T
	if len(c.q) > 0 {
		t = c.q[0]
		c.q = c.q[1:]
	}
	c.spinUnlock(e)
	if t != nil {
		e.MakeReady(t)
	}
}

// Broadcast wakes every queued thread (it shares Signal's race: threads in
// the window are missed).
func (c *NaiveSimCond) Broadcast(e *sim.Env) {
	c.spinLock(e)
	ts := c.q
	c.q = nil
	c.spinUnlock(e)
	for _, t := range ts {
		e.MakeReady(t)
	}
}
