// Package baselines implements the alternative designs the paper compares
// against or warns about, so the benchmarks can reproduce each comparison:
//
//   - Hoare-style monitors (Hoare 74): Signal hands the monitor directly to
//     one waiter, so the waiter's predicate is guaranteed on resume — the
//     stronger semantics the paper's Mesa-style "return from Wait is only a
//     hint" deliberately weakens for efficiency (experiment E6).
//
//   - Semaphore-based condition variables: Wait(m, c) = Release(m); P(c);
//     Acquire(m), Signal(c) = V(c). The paper notes this is a correct
//     implementation of Wait and Signal ("the one bit in the semaphore c
//     would cover the wakeup-waiting race") but that it "does not
//     generalize to Broadcast": arbitrarily many threads can be racing at
//     the semicolon and a binary semaphore cannot release them all
//     (experiment E5).
//
//   - Native Go sync.Mutex/sync.Cond monitors, as the modern-runtime
//     reference point for the throughput comparisons (experiment E10).
//
// All three expose the same Monitor interface so the workload generators in
// internal/workload can drive any of them interchangeably.
package baselines

import (
	"sync"

	"threads/internal/core"
)

// Monitor is the common shape of a mutex plus condition-variable factory.
type Monitor interface {
	// Acquire enters the monitor; Release leaves it.
	Acquire()
	Release()
	// NewCond creates a condition variable tied to this monitor.
	NewCond() Cond
	// Name identifies the implementation in benchmark tables.
	Name() string
}

// Cond is a condition variable bound to its Monitor's lock.
//
// Signal and Broadcast must be called while holding the monitor: every
// implementation permits that, and Hoare signalling requires it (the
// hand-off transfers the caller's ownership to the waiter). The Threads and
// native implementations additionally allow signalling after Release — the
// optimization the paper mentions — but portable workload code signals
// while holding.
type Cond interface {
	// Wait suspends the caller (which must hold the monitor) until a
	// Signal or Broadcast; on return the caller holds the monitor again.
	// Guaranteed reports whether the implementation guarantees the
	// signalled predicate still holds on return (Hoare) or only hints it
	// (Mesa/Threads).
	Wait()
	Signal()
	Broadcast()
	Guaranteed() bool
}

// ---------------------------------------------------------------------------
// Threads (the paper's primitives, package core) as a Monitor.
// ---------------------------------------------------------------------------

// ThreadsMonitor adapts core.Mutex/core.Condition to the Monitor interface.
type ThreadsMonitor struct {
	mu core.Mutex
}

// NewThreadsMonitor returns a monitor over the paper's primitives.
func NewThreadsMonitor() *ThreadsMonitor { return &ThreadsMonitor{} }

// Acquire enters the monitor.
func (m *ThreadsMonitor) Acquire() { m.mu.Acquire() } //threadsvet:ignore lockpair: Monitor adapter; Acquire/Release bracket in the benchmark harness, not here

// Release leaves the monitor.
func (m *ThreadsMonitor) Release() { m.mu.Release() } //threadsvet:ignore lockpair: Monitor adapter; the matching Acquire is behind the same interface

// Name identifies the implementation.
func (m *ThreadsMonitor) Name() string { return "threads" }

// NewCond creates a Mesa-style condition variable.
func (m *ThreadsMonitor) NewCond() Cond {
	return &threadsCond{m: m, c: &core.Condition{}}
}

type threadsCond struct {
	m *ThreadsMonitor
	c *core.Condition
}

func (c *threadsCond) Wait()            { c.c.Wait(&c.m.mu) } //threadsvet:ignore waitloop: Cond adapter; the predicate loop is in the monitor benchmark driver
func (c *threadsCond) Signal()          { c.c.Signal() }
func (c *threadsCond) Broadcast()       { c.c.Broadcast() }
func (c *threadsCond) Guaranteed() bool { return false }

// ---------------------------------------------------------------------------
// Native Go sync as a Monitor.
// ---------------------------------------------------------------------------

// NativeMonitor adapts sync.Mutex/sync.Cond.
type NativeMonitor struct {
	mu sync.Mutex
}

// NewNativeMonitor returns a monitor over the Go runtime's primitives.
func NewNativeMonitor() *NativeMonitor { return &NativeMonitor{} }

// Acquire enters the monitor.
func (m *NativeMonitor) Acquire() { m.mu.Lock() }

// Release leaves the monitor.
func (m *NativeMonitor) Release() { m.mu.Unlock() }

// Name identifies the implementation.
func (m *NativeMonitor) Name() string { return "go-sync" }

// NewCond creates a sync.Cond (Mesa-style, like the paper's).
func (m *NativeMonitor) NewCond() Cond {
	return &nativeCond{c: sync.NewCond(&m.mu)}
}

type nativeCond struct {
	c *sync.Cond
}

func (c *nativeCond) Wait()            { c.c.Wait() }
func (c *nativeCond) Signal()          { c.c.Signal() }
func (c *nativeCond) Broadcast()       { c.c.Broadcast() }
func (c *nativeCond) Guaranteed() bool { return false }
