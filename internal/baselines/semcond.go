package baselines

import (
	"sync/atomic"

	"threads/internal/core"
)

// SemCond is the semaphore-based condition variable the paper sketches and
// rejects (§Implementation: condition variables):
//
//	"The semantics of Wait and Signal could be achieved by representing
//	each condition variable as a semaphore, and implementing Wait(m, c) as
//	Release(m); P(c); Acquire(m) and Signal(c) as V(c). The one bit in the
//	semaphore c would cover the wakeup-waiting race. Unfortunately, this
//	implementation does not generalize to Broadcast(c)."
//
// Wait and Signal are correct: a Signal that lands in a waiter's
// release-to-P window leaves the semaphore available, so the P returns
// immediately — one bit of wakeup memory. Broadcast is the failure:
// arbitrarily many threads may be racing at the semicolon, and however many
// times V is called, a binary semaphore holds at most one pending wakeup,
// so all but one racer (and any not-yet-released waiters beyond those the
// loop manages to feed one at a time) can be stranded. Experiment E5 counts
// the stranded threads.
type SemCond struct {
	m *core.Mutex
	s core.Semaphore
	// waiters approximates the number of threads inside Wait, so
	// Broadcast knows how many Vs to attempt.
	waiters atomic.Int32
}

// NewSemCond returns a semaphore-based condition variable tied to m. The
// backing semaphore is drained (INITIALLY available → unavailable) so the
// first Wait blocks.
func NewSemCond(m *core.Mutex) *SemCond {
	sc := &SemCond{m: m}
	sc.s.P()
	return sc
}

// Wait is Release(m); P(c); Acquire(m). The caller must hold m; returns
// holding m. Like the Threads Wait, return is only a hint.
func (sc *SemCond) Wait() {
	sc.waiters.Add(1)
	sc.m.Release() //threadsvet:ignore lockpair: Wait is Release(m); P(c); Acquire(m) on the caller-held mutex
	sc.s.P()
	sc.waiters.Add(-1)
	sc.m.Acquire() //threadsvet:ignore lockpair: reacquire-on-return half of the semaphore-based Wait
}

// Signal is V(c): it wakes one waiter, or — if none is committed yet — the
// single semaphore bit remembers the wakeup for the next Wait. This is
// correct for one-at-a-time signalling.
func (sc *SemCond) Signal() {
	sc.s.V()
}

// Broadcast attempts to release every waiter by calling V once per waiter
// it can see. It is fundamentally broken — the paper's point — because
// consecutive Vs coalesce in the binary semaphore: a V performed before the
// previous wakeup was consumed is lost, so racing waiters are stranded.
// Callers measuring E5 count the threads that remain blocked.
func (sc *SemCond) Broadcast() {
	n := int(sc.waiters.Load())
	for i := 0; i < n; i++ {
		sc.s.V()
	}
}

// Guaranteed reports Mesa-style hint semantics.
func (sc *SemCond) Guaranteed() bool { return false }

// Stranded reports how many threads are currently blocked inside Wait
// (advisory; used by experiment E5 after a Broadcast to count strandees).
func (sc *SemCond) Stranded() int {
	// Threads counted in waiters but not blocked on the semaphore are
	// mid-window; after quiescence the remainder are stranded on P.
	return sc.s.Waiters()
}

// SemCondMonitor packages a mutex with SemCond conditions behind the
// Monitor interface (Signal-only workloads; Broadcast is the known
// failure).
type SemCondMonitor struct {
	mu core.Mutex
}

// NewSemCondMonitor returns a monitor whose condition variables are
// semaphore-based.
func NewSemCondMonitor() *SemCondMonitor { return &SemCondMonitor{} }

// Acquire enters the monitor.
func (m *SemCondMonitor) Acquire() { m.mu.Acquire() } //threadsvet:ignore lockpair: Monitor adapter; Acquire/Release bracket in the benchmark harness, not here

// Release leaves the monitor.
func (m *SemCondMonitor) Release() { m.mu.Release() } //threadsvet:ignore lockpair: Monitor adapter; the matching Acquire is behind the same interface

// Name identifies the implementation.
func (m *SemCondMonitor) Name() string { return "semcond" }

// NewCond creates a semaphore-based condition variable.
func (m *SemCondMonitor) NewCond() Cond { return NewSemCond(&m.mu) }
