package baselines

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threads/internal/core"
	"threads/internal/sim"
	"threads/internal/simthreads"
)

func monitors() []Monitor {
	return []Monitor{NewThreadsMonitor(), NewHoareMonitor(), NewNativeMonitor(), NewSemCondMonitor()}
}

// TestMonitorsMutualExclusion: every Monitor implementation serializes its
// critical sections.
func TestMonitorsMutualExclusion(t *testing.T) {
	for _, m := range monitors() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			var counter int
			var wg sync.WaitGroup
			wg.Add(4)
			for i := 0; i < 4; i++ {
				go func() {
					defer wg.Done()
					for j := 0; j < 2000; j++ {
						m.Acquire()
						counter++
						m.Release()
					}
				}()
			}
			wg.Wait()
			if counter != 8000 {
				t.Fatalf("counter = %d, want 8000", counter)
			}
		})
	}
}

// TestMonitorsProducerConsumer: the common bounded-buffer protocol works on
// every implementation (SemCondMonitor included — Signal-only use is the
// case the paper says is fine).
func TestMonitorsProducerConsumer(t *testing.T) {
	for _, m := range monitors() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			nonEmpty := m.NewCond()
			nonFull := m.NewCond()
			const total, capacity = 500, 4
			queue := 0
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < total; i++ {
					m.Acquire()
					for queue == capacity {
						nonFull.Wait()
					}
					queue++
					nonEmpty.Signal() // while holding: required for Hoare
					m.Release()
				}
			}()
			consumed := 0
			for consumed < total {
				m.Acquire()
				for queue == 0 {
					nonEmpty.Wait()
				}
				queue--
				consumed++
				nonFull.Signal()
				m.Release()
			}
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("producer never finished")
			}
		})
	}
}

// TestHoarePredicateGuaranteed: with Hoare signalling, a waiter observes
// the predicate exactly as the signaller left it — a barging thread cannot
// invalidate it first. We hammer the handoff and verify the waiter never
// needs to re-check.
func TestHoarePredicateGuaranteed(t *testing.T) {
	m := NewHoareMonitor()
	c := m.NewCond()
	if !c.Guaranteed() {
		t.Fatal("Hoare cond must report guaranteed semantics")
	}
	var tokens int
	var violations int32
	const rounds = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	// Waiter: predicate must hold on EVERY return from Wait, no loop.
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m.Acquire()
			if tokens == 0 {
				c.Wait()
			}
			if tokens == 0 {
				atomic.AddInt32(&violations, 1)
			} else {
				tokens--
			}
			m.Release()
		}
	}()
	// A thief that constantly tries to steal tokens — under Hoare
	// handoff it can never slip between Signal and the waiter's resume.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Acquire()
			if tokens > 0 {
				tokens--
				// Put it back so the count works out; the point is the
				// acquire attempt itself.
				tokens++
			}
			m.Release()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m.Acquire()
			tokens++
			c.Signal() // hands the monitor straight to the waiter
			m.Release()
		}
	}()
	wg.Wait()
	close(stop)
	if violations != 0 {
		t.Fatalf("predicate false on %d of %d Hoare wakeups", violations, rounds)
	}
}

// TestSemCondSignalCoversWakeupRace: the single semaphore bit covers the
// release-to-P window for one waiter, as the paper says.
func TestSemCondSignalCoversWakeupRace(t *testing.T) {
	for round := 0; round < 200; round++ {
		var mu core.Mutex
		sc := NewSemCond(&mu)
		ready := false
		done := make(chan struct{})
		go func() {
			defer close(done)
			mu.Acquire()
			for !ready {
				sc.Wait()
			}
			mu.Release()
		}()
		mu.Acquire()
		ready = true
		mu.Release()
		sc.Signal()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: signal lost (the one-bit memory failed?)", round)
		}
	}
}

// TestSemCondBroadcastStrandsWaiters is E5's core observation: Broadcast
// over a binary semaphore cannot release all racing waiters. It pins the
// paper's wake-and-retry protocol: direct hand-off (the shipping default)
// gifts each V of the Broadcast loop to a distinct parked waiter, masking
// the V-coalescing this test demonstrates (the race-window stranding is
// mode-independent, but parked waiters dominate this construction).
func TestSemCondBroadcastStrandsWaiters(t *testing.T) {
	prev := core.SetHandoffMode(core.HandoffOff)
	defer core.SetHandoffMode(prev)
	var stranded int
	const waiters = 8
	for round := 0; round < 30; round++ {
		var mu core.Mutex
		sc := NewSemCond(&mu)
		var resumed int32
		gate := false
		var wg sync.WaitGroup
		wg.Add(waiters)
		for i := 0; i < waiters; i++ {
			go func() {
				defer wg.Done()
				mu.Acquire()
				for !gate {
					sc.Wait()
					if gate {
						break
					}
				}
				atomic.AddInt32(&resumed, 1)
				mu.Release()
			}()
		}
		// Let them block, flip the predicate, then Broadcast once.
		time.Sleep(20 * time.Millisecond)
		mu.Acquire()
		gate = true
		mu.Release()
		sc.Broadcast()
		time.Sleep(50 * time.Millisecond)
		got := int(atomic.LoadInt32(&resumed))
		stranded += waiters - got
		// Rescue the stranded threads so goroutines don't leak: repeated
		// singles always work.
		for int(atomic.LoadInt32(&resumed)) < waiters {
			sc.Signal()
			time.Sleep(time.Millisecond)
		}
		wg.Wait()
	}
	if stranded == 0 {
		t.Fatal("semaphore Broadcast stranded no waiters in 30 rounds; expected the paper's failure mode")
	}
	t.Logf("semaphore-based Broadcast stranded %d waiters across 30 rounds of %d", stranded, waiters)
}

// TestNaiveSimCondLosesWakeups is E4: across seeds, the no-eventcount
// condition variable loses signals (deadlock), while the paper's
// implementation on identical schedules never does.
func TestNaiveSimCondLosesWakeups(t *testing.T) {
	lost := 0
	const seeds = 150
	for seed := int64(0); seed < seeds; seed++ {
		w, kk := simthreads.NewWorld(sim.Config{
			Procs: 2, Seed: seed, Policy: sim.PolicyRandom, MaxSteps: 200_000,
		})
		m := w.NewMutex()
		c := NewNaiveSimCond()
		var ready sim.Word
		kk.Spawn("waiter", func(e *sim.Env) {
			m.Acquire(e)
			for e.Load(&ready) == 0 {
				c.Wait(e, m)
			}
			m.Release(e)
		})
		kk.Spawn("signaller", func(e *sim.Env) {
			m.Acquire(e)
			e.Store(&ready, 1)
			m.Release(e)
			c.Signal(e)
		})
		if err := kk.Run(); err != nil {
			lost++
		}
	}
	if lost == 0 {
		t.Fatalf("naive condvar lost no wakeups in %d seeds; the race should bite", seeds)
	}
	t.Logf("naive condvar lost wakeups on %d/%d seeds", lost, seeds)
}
