package baselines

// HoareMonitor implements monitors with Hoare's original signalling
// discipline (Hoare 74): Signal transfers the monitor *directly* to one
// waiting thread and the signaller steps aside onto an "urgent" queue,
// reclaiming the monitor when the signalled thread leaves. Because the
// monitor never becomes free between the Signal and the waiter's resume, no
// third thread can barge in and invalidate the predicate: a waiter is
// GUARANTEED its predicate on return from Wait.
//
// The paper contrasts this with the Threads semantics: "with Hoare's
// condition variables threads are guaranteed that the predicate is true on
// return from Wait. Our looser specification reduces the obligations of the
// signalling thread and leads to a more efficient implementation on our
// multiprocessor." Experiment E6 measures that trade: Hoare signalling
// costs two context switches per hand-off and blocks the signaller, Mesa
// signalling is a cheap "hint" but waiters must re-check.
//
// The implementation uses direct channel hand-offs, which realize Hoare's
// transfer exactly: the receiver of the token is chosen by the sender, and
// the token never rests.
type HoareMonitor struct {
	// token carries the monitor's ownership: buffered size 1; a value in
	// the channel means the monitor is free.
	token chan struct{}
	// urgent holds signallers waiting to reclaim the monitor; LIFO per
	// Hoare's description (the most recent signaller resumes first).
	// Guarded by holding the monitor.
	urgent []chan struct{}
}

// NewHoareMonitor returns a free monitor.
func NewHoareMonitor() *HoareMonitor {
	m := &HoareMonitor{token: make(chan struct{}, 1)}
	m.token <- struct{}{}
	return m
}

// Acquire enters the monitor.
func (m *HoareMonitor) Acquire() { <-m.token }

// Release leaves the monitor: ownership passes to the most recent signaller
// if any is waiting, otherwise the monitor becomes free.
func (m *HoareMonitor) Release() {
	if n := len(m.urgent); n > 0 {
		ch := m.urgent[n-1]
		m.urgent = m.urgent[:n-1]
		ch <- struct{}{} // direct hand-off to the signaller
		return
	}
	m.token <- struct{}{}
}

// Name identifies the implementation.
func (m *HoareMonitor) Name() string { return "hoare" }

// NewCond creates a Hoare condition variable on this monitor.
func (m *HoareMonitor) NewCond() Cond {
	return &hoareCond{m: m}
}

type hoareCond struct {
	m *HoareMonitor
	// waiters, FIFO; each receives the monitor token directly from its
	// signaller. Guarded by holding the monitor.
	waiters []chan struct{}
}

// Wait suspends the caller until signalled; ownership of the monitor is
// handed to it directly, so the predicate established by the signaller
// still holds.
func (c *hoareCond) Wait() {
	ch := make(chan struct{})
	c.waiters = append(c.waiters, ch)
	c.m.Release() // may hand off to an urgent signaller
	<-ch          // resumed holding the monitor: direct transfer
}

// Signal hands the monitor to the first waiter and suspends the caller on
// the urgent queue until the monitor returns to it. With no waiters it is a
// no-op (unlike V on a semaphore, a Hoare signal is not remembered).
func (c *hoareCond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	ch := c.waiters[0]
	c.waiters = c.waiters[1:]
	resume := make(chan struct{})
	c.m.urgent = append(c.m.urgent, resume)
	ch <- struct{}{} // monitor passes to the waiter...
	<-resume         // ...and comes back when it leaves
}

// Broadcast signals until no waiters remain. Each hand-off round-trips the
// monitor through one waiter — the cost the Threads Broadcast avoids by
// moving every waiter to the ready pool at once.
func (c *hoareCond) Broadcast() {
	for len(c.waiters) > 0 {
		c.Signal()
	}
}

// Guaranteed reports Hoare semantics: predicate true on return from Wait.
func (c *hoareCond) Guaranteed() bool { return true }
