package spec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInitialState(t *testing.T) {
	s := NewState()
	if s.Mutex(1) != NIL {
		t.Fatal("mutex not INITIALLY NIL")
	}
	if !s.Cond(1).Empty() {
		t.Fatal("condition not INITIALLY {}")
	}
	if !s.SemAvailable(1) {
		t.Fatal("semaphore not INITIALLY available")
	}
	if !s.Alerts.Empty() {
		t.Fatal("alerts not INITIALLY {}")
	}
	if s.Key() != "" {
		t.Fatalf("initial state key = %q, want empty", s.Key())
	}
}

func TestAcquireReleaseRoundTrip(t *testing.T) {
	s := NewState()
	acq := Acquire{T: 1, M: 1}
	if !acq.When(s) {
		t.Fatal("Acquire not enabled on NIL mutex")
	}
	acq.Apply(s)
	if s.Mutex(1) != 1 {
		t.Fatal("ENSURES m' = SELF violated")
	}
	// A second Acquire is disabled until Release.
	if (Acquire{T: 2, M: 1}).When(s) {
		t.Fatal("Acquire enabled on held mutex (WHEN m = NIL violated)")
	}
	rel := Release{T: 1, M: 1}
	if err := rel.Requires(s); err != nil {
		t.Fatalf("Release by holder: %v", err)
	}
	rel.Apply(s)
	if s.Mutex(1) != NIL {
		t.Fatal("ENSURES m' = NIL violated")
	}
}

func TestReleaseRequiresHolder(t *testing.T) {
	s := NewState()
	Acquire{T: 1, M: 1}.Apply(s)
	if err := (Release{T: 2, M: 1}).Requires(s); err == nil {
		t.Fatal("Release by non-holder did not violate REQUIRES")
	}
	if err := (Release{T: 2, M: 2}).Requires(s); err == nil {
		t.Fatal("Release of NIL mutex did not violate REQUIRES")
	}
}

func TestWaitComposition(t *testing.T) {
	s := NewState()
	Acquire{T: 1, M: 1}.Apply(s)
	enq := Enqueue{T: 1, M: 1, C: 1}
	if err := enq.Requires(s); err != nil {
		t.Fatal(err)
	}
	enq.Apply(s)
	if s.Mutex(1) != NIL || !s.CondHas(1, 1) {
		t.Fatal("Enqueue ENSURES (c' = insert(c, SELF)) & (m' = NIL) violated")
	}
	res := Resume{T: 1, M: 1, C: 1}
	if res.When(s) {
		t.Fatal("Resume enabled while SELF IN c")
	}
	Signal{T: 2, C: 1, Removed: []ThreadID{1}}.Apply(s)
	if !res.When(s) {
		t.Fatal("Resume not enabled after removal with free mutex")
	}
	// But not with the mutex held.
	Acquire{T: 2, M: 1}.Apply(s)
	if res.When(s) {
		t.Fatal("Resume enabled while m != NIL")
	}
	Release{T: 2, M: 1}.Apply(s)
	res.Apply(s)
	if s.Mutex(1) != 1 {
		t.Fatal("Resume ENSURES m' = SELF violated")
	}
}

func TestSignalOutcomesAreSubsets(t *testing.T) {
	s := NewState()
	for _, tid := range []ThreadID{1, 2, 3} {
		s.Cond(1).Insert(tid)
	}
	pre := s.Cond(1).Clone()
	outs := (Signal{T: 9, C: 1}).Outcomes(s)
	// 1 no-removal + 3 single + 1 empty = 5 outcomes.
	if len(outs) != 5 {
		t.Fatalf("Signal enumerated %d outcomes, want 5", len(outs))
	}
	sawEmpty, sawUnchanged := false, false
	for _, post := range outs {
		c := post.Cond(1)
		if !c.SubsetOf(pre) {
			t.Fatalf("outcome %s not a subset of %s", c, pre)
		}
		if c.Empty() {
			sawEmpty = true
		}
		if c.Equal(pre) {
			sawUnchanged = true
		}
	}
	if !sawEmpty || !sawUnchanged {
		t.Fatal("Signal outcomes must include c' = {} and c' = c")
	}
}

func TestSignalCheckEnsures(t *testing.T) {
	s := NewState()
	s.Cond(1).Insert(1)
	if err := (Signal{T: 9, C: 1, Removed: []ThreadID{1}}).CheckEnsures(s); err != nil {
		t.Fatalf("valid removal rejected: %v", err)
	}
	if err := (Signal{T: 9, C: 1, Removed: []ThreadID{2}}).CheckEnsures(s); err == nil {
		t.Fatal("removal of non-member accepted")
	}
}

func TestBroadcastEmpties(t *testing.T) {
	s := NewState()
	s.Cond(1).Insert(1)
	s.Cond(1).Insert(2)
	Broadcast{T: 9, C: 1}.Apply(s)
	if !s.Cond(1).Empty() {
		t.Fatal("Broadcast ENSURES c' = {} violated")
	}
}

func TestSemaphorePV(t *testing.T) {
	s := NewState()
	p := P{T: 1, S: 1}
	if !p.When(s) {
		t.Fatal("P not enabled on available semaphore")
	}
	p.Apply(s)
	if s.SemAvailable(1) {
		t.Fatal("P ENSURES s' = unavailable violated")
	}
	if p.When(s) {
		t.Fatal("P enabled on unavailable semaphore")
	}
	// V is enabled regardless and has no REQUIRES.
	v := V{T: 2, S: 1}
	if !v.When(s) || v.Requires(s) != nil {
		t.Fatal("V must be unconditional")
	}
	v.Apply(s)
	if !s.SemAvailable(1) {
		t.Fatal("V ENSURES s' = available violated")
	}
	// V on an available semaphore keeps it available (binary).
	v.Apply(s)
	if !s.SemAvailable(1) {
		t.Fatal("V on available semaphore broke it")
	}
}

func TestAlertAndTestAlert(t *testing.T) {
	s := NewState()
	Alert{T: 1, Target: 2}.Apply(s)
	if !s.Alerts.Contains(2) {
		t.Fatal("Alert ENSURES alerts' = insert(alerts, t) violated")
	}
	ta := TestAlert{T: 2, Result: true}
	if err := ta.CheckEnsures(s); err != nil {
		t.Fatal(err)
	}
	ta.Apply(s)
	if s.Alerts.Contains(2) {
		t.Fatal("TestAlert did not delete SELF from alerts")
	}
	// Second TestAlert must return false.
	if err := (TestAlert{T: 2, Result: true}).CheckEnsures(s); err == nil {
		t.Fatal("TestAlert true accepted with no pending alert")
	}
	if err := (TestAlert{T: 2, Result: false}).CheckEnsures(s); err != nil {
		t.Fatal(err)
	}
}

func TestAlertPOverlap(t *testing.T) {
	// With s available AND SELF alerted, both WHEN clauses hold: the
	// specification's deliberate non-determinism (E8).
	s := NewState()
	s.Alerts.Insert(1)
	ret := AlertPReturn{T: 1, S: 1}
	rai := AlertPRaise{T: 1, S: 1}
	if !ret.When(s) || !rai.When(s) {
		t.Fatal("overlap case: both AlertP outcomes should be enabled")
	}
	// Return path: s consumed, alert survives.
	s1 := s.Clone()
	ret.Apply(s1)
	if s1.SemAvailable(1) || !s1.Alerts.Contains(1) {
		t.Fatal("AlertP.Return ENSURES violated")
	}
	// Raise path: alert consumed, s untouched.
	s2 := s.Clone()
	rai.Apply(s2)
	if !s2.SemAvailable(1) || s2.Alerts.Contains(1) {
		t.Fatal("AlertP.Raise ENSURES violated")
	}
}

func TestAlertResumeVariants(t *testing.T) {
	// Pre-state: t1 enqueued on c1, alerted, mutex HELD by t2.
	mk := func() *State {
		s := NewState()
		s.Cond(1).Insert(1)
		s.Alerts.Insert(1)
		s.SetMutex(1, 2)
		return s
	}
	// Final and UnchangedC: disabled while m != NIL.
	for _, v := range []Variant{VariantFinal, VariantUnchangedC} {
		a := AlertResumeRaise{T: 1, M: 1, C: 1, Variant: v}
		if a.When(mk()) {
			t.Fatalf("variant %s: AlertResume.Raise enabled while mutex held", v)
		}
	}
	// NoMNil: enabled — the bug that was found in under an hour. Applying
	// it seizes a held mutex.
	bug := AlertResumeRaise{T: 1, M: 1, C: 1, Variant: VariantNoMNil}
	s := mk()
	if !bug.When(s) {
		t.Fatal("variant no-m-nil: Raise should (wrongly) be enabled")
	}
	bug.Apply(s)
	if s.Mutex(1) != 1 {
		t.Fatal("buggy Raise did not exhibit the double-holder transition")
	}

	// With the mutex free: Final deletes SELF from c; UnchangedC leaves a
	// ghost member — the year-long bug.
	mkFree := func() *State {
		s := mk()
		s.SetMutex(1, NIL)
		return s
	}
	sFinal := mkFree()
	AlertResumeRaise{T: 1, M: 1, C: 1, Variant: VariantFinal}.Apply(sFinal)
	if sFinal.CondHas(1, 1) {
		t.Fatal("final variant: SELF not deleted from c")
	}
	if sFinal.Alerts.Contains(1) || sFinal.Mutex(1) != 1 {
		t.Fatal("final variant: alerts/mutex ENSURES violated")
	}
	sBug := mkFree()
	AlertResumeRaise{T: 1, M: 1, C: 1, Variant: VariantUnchangedC}.Apply(sBug)
	if !sBug.CondHas(1, 1) {
		t.Fatal("unchanged-c variant should leave the ghost member in c")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewState()
	s.SetMutex(1, 1)
	s.Cond(1).Insert(1)
	s.SetSemAvailable(1, false)
	s.Alerts.Insert(3)
	c := s.Clone()
	c.SetMutex(1, NIL)
	c.Cond(1).Delete(1)
	c.SetSemAvailable(1, true)
	c.Alerts.Delete(3)
	if s.Mutex(1) != 1 || !s.CondHas(1, 1) || s.SemAvailable(1) || !s.Alerts.Contains(3) {
		t.Fatal("mutating a clone changed the original")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := NewState()
	b := NewState()
	// Materialize empty entries in one but not the other.
	a.Cond(5)
	a.Mutexes[3] = NIL
	if a.Key() != b.Key() {
		t.Fatalf("default-valued entries changed the key: %q vs %q", a.Key(), b.Key())
	}
	a.SetMutex(1, 2)
	if a.Key() == b.Key() {
		t.Fatal("distinct states share a key")
	}
}

// TestQuickKeyEquality property-tests that Key() is a sound equality:
// states built by the same random action sequence have equal keys, and
// applying one extra mutating action changes the key.
func TestQuickKeyEquality(t *testing.T) {
	build := func(ops []uint8) *State {
		s := NewState()
		for i, op := range ops {
			tid := ThreadID(int(op)%3 + 1)
			switch op % 5 {
			case 0:
				if (Acquire{T: tid, M: 1}).When(s) {
					Acquire{T: tid, M: 1}.Apply(s)
				}
			case 1:
				if s.Mutex(1) == tid {
					Release{T: tid, M: 1}.Apply(s)
				}
			case 2:
				s.Cond(CondID(i % 2)).Insert(tid)
			case 3:
				Alert{T: tid, Target: ThreadID(int(op)%4 + 1)}.Apply(s)
			case 4:
				s.SetSemAvailable(1, op%2 == 0)
			}
		}
		return s
	}
	check := func(ops []uint8) bool {
		return build(ops).Key() == build(ops).Key()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSignalSubsetInvariant property-tests Signal's ENSURES clause
// over random waiting sets: every enumerated outcome satisfies
// (c' = {}) | (c' ⊆ c).
func TestQuickSignalSubsetInvariant(t *testing.T) {
	check := func(membersRaw []uint8) bool {
		s := NewState()
		for _, m := range membersRaw {
			s.Cond(1).Insert(ThreadID(int(m)%8 + 1))
		}
		pre := s.Cond(1).Clone()
		for _, post := range (Signal{T: 99, C: 1}).Outcomes(s) {
			if !post.Cond(1).SubsetOf(pre) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
