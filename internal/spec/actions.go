package spec

import "fmt"

// Variant selects which historical version of the AlertWait specification
// the actions obey. The paper's Discussion section records three:
//
//   - VariantNoMNil: the first released specification, whose AlertResume
//     RAISES clause lacked "m = NIL &" — found to be wrong "in less than an
//     hour by someone with no prior knowledge of either the interface or
//     the specification technique" (it lets an alerted thread seize a held
//     mutex).
//   - VariantUnchangedC: the next version, which required UNCHANGED [c]
//     when AlertWait raised Alerted. It survived "more than a year of use"
//     until Greg Nelson observed that c could then contain threads no
//     longer blocked on it, so a Signal could choose a departed thread and
//     wake nobody.
//   - VariantFinal: the specification as printed, with c' = delete(c, SELF)
//     on the Alerted path.
type Variant int

const (
	VariantFinal Variant = iota
	VariantNoMNil
	VariantUnchangedC
)

func (v Variant) String() string {
	switch v {
	case VariantFinal:
		return "final"
	case VariantNoMNil:
		return "no-m-nil"
	case VariantUnchangedC:
		return "unchanged-c"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Action is one ATOMIC PROCEDURE or ATOMIC ACTION of the interface.
type Action interface {
	// Kind is the action's name in the specification.
	Kind() string
	// Self is the executing thread (the specification's SELF).
	Self() ThreadID
	// Requires checks the REQUIRES clause; a non-nil error means the
	// caller violated its obligation and the specification constrains
	// nothing.
	Requires(s *State) error
	// When reports whether the WHEN clause holds (the action is enabled).
	When(s *State) bool
	// Apply performs the ENSURES transition in place. Callers must have
	// checked Requires and When. Non-deterministic choices are resolved
	// by fields on the concrete action.
	Apply(s *State)
	// Outcomes enumerates the post-states the ENSURES clause admits from
	// s (each an independent clone), covering every resolution of the
	// action's non-determinism. Empty if the action is not enabled.
	Outcomes(s *State) []*State
	fmt.Stringer
}

// deterministic wraps the common case: one enabled outcome.
func deterministicOutcomes(a Action, s *State) []*State {
	if !a.When(s) {
		return nil
	}
	post := s.Clone()
	a.Apply(post)
	return []*State{post}
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

// Acquire: WHEN m = NIL ENSURES m' = SELF.
type Acquire struct {
	T ThreadID
	M MutexID
}

func (a Acquire) Kind() string               { return "Acquire" }
func (a Acquire) Self() ThreadID             { return a.T }
func (a Acquire) Requires(*State) error      { return nil }
func (a Acquire) When(s *State) bool         { return s.Mutex(a.M) == NIL }
func (a Acquire) Apply(s *State)             { s.SetMutex(a.M, a.T) }
func (a Acquire) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a Acquire) String() string             { return fmt.Sprintf("Acquire(t%d, m%d)", a.T, a.M) }

// Release: REQUIRES m = SELF ENSURES m' = NIL.
type Release struct {
	T ThreadID
	M MutexID
}

func (a Release) Kind() string   { return "Release" }
func (a Release) Self() ThreadID { return a.T }
func (a Release) Requires(s *State) error {
	if h := s.Mutex(a.M); h != a.T {
		return fmt.Errorf("Release REQUIRES m = SELF: m%d = %d, SELF = %d", a.M, h, a.T)
	}
	return nil
}
func (a Release) When(*State) bool           { return true }
func (a Release) Apply(s *State)             { s.SetMutex(a.M, NIL) }
func (a Release) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a Release) String() string             { return fmt.Sprintf("Release(t%d, m%d)", a.T, a.M) }

// ---------------------------------------------------------------------------
// Condition: Wait = COMPOSITION OF Enqueue; Resume
// ---------------------------------------------------------------------------

// Enqueue: REQUIRES m = SELF ENSURES (c' = insert(c, SELF)) & (m' = NIL).
// (For AlertWait's Enqueue, additionally UNCHANGED [alerts] — which Apply
// preserves trivially.)
type Enqueue struct {
	T ThreadID
	M MutexID
	C CondID
}

func (a Enqueue) Kind() string   { return "Enqueue" }
func (a Enqueue) Self() ThreadID { return a.T }
func (a Enqueue) Requires(s *State) error {
	if h := s.Mutex(a.M); h != a.T {
		return fmt.Errorf("Enqueue (Wait) REQUIRES m = SELF: m%d = %d, SELF = %d", a.M, h, a.T)
	}
	return nil
}
func (a Enqueue) When(*State) bool { return true }
func (a Enqueue) Apply(s *State) {
	s.Cond(a.C).Insert(a.T)
	s.SetMutex(a.M, NIL)
}
func (a Enqueue) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a Enqueue) String() string             { return fmt.Sprintf("Enqueue(t%d, m%d, c%d)", a.T, a.M, a.C) }

// Resume: WHEN (m = NIL) & NOT (SELF IN c) ENSURES m' = SELF & UNCHANGED [c].
type Resume struct {
	T ThreadID
	M MutexID
	C CondID
}

func (a Resume) Kind() string          { return "Resume" }
func (a Resume) Self() ThreadID        { return a.T }
func (a Resume) Requires(*State) error { return nil }
func (a Resume) When(s *State) bool {
	return s.Mutex(a.M) == NIL && !s.CondHas(a.C, a.T)
}
func (a Resume) Apply(s *State)             { s.SetMutex(a.M, a.T) }
func (a Resume) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a Resume) String() string             { return fmt.Sprintf("Resume(t%d, m%d, c%d)", a.T, a.M, a.C) }

// Signal: ENSURES (c' = {}) | (c' ⊆ c). The Removed field resolves the
// non-determinism when replaying a concrete execution; Outcomes enumerates
// the interesting resolutions (remove nothing, remove any single member,
// remove everything), which suffice for the safety analyses here because
// any subset removal is a composition of single removals and Signal is
// always enabled.
type Signal struct {
	T       ThreadID
	C       CondID
	Removed []ThreadID
}

func (a Signal) Kind() string          { return "Signal" }
func (a Signal) Self() ThreadID        { return a.T }
func (a Signal) Requires(*State) error { return nil }
func (a Signal) When(*State) bool      { return true }
func (a Signal) Apply(s *State) {
	set := s.Cond(a.C)
	for _, t := range a.Removed {
		set.Delete(t)
	}
}

// CheckEnsures verifies that applying this Signal's resolution to pre gives
// a post-state permitted by ENSURES (c' = {}) | (c' ⊆ c); it reports an
// error if Removed contains a thread that was not in c (such a "removal"
// would make c' ⊄ c meaningless — the resolution must be a subset choice).
func (a Signal) CheckEnsures(pre *State) error {
	set := pre.Conds[a.C]
	for _, t := range a.Removed {
		if !set.Contains(t) {
			return fmt.Errorf("Signal removed t%d which was not in c%d = %s", t, a.C, set)
		}
	}
	return nil
}

func (a Signal) Outcomes(s *State) []*State {
	members := s.Conds[a.C].Members()
	// Remove nothing (c' = c is a subset of c).
	out := []*State{s.Clone()}
	// Remove any single member.
	for _, t := range members {
		post := s.Clone()
		post.Cond(a.C).Delete(t)
		out = append(out, post)
	}
	// Remove everything (c' = {}), when that differs from the above.
	if len(members) > 1 {
		post := s.Clone()
		for _, t := range members {
			post.Cond(a.C).Delete(t)
		}
		out = append(out, post)
	}
	return out
}
func (a Signal) String() string {
	return fmt.Sprintf("Signal(t%d, c%d, removed=%v)", a.T, a.C, a.Removed)
}

// Broadcast: ENSURES c' = {}.
type Broadcast struct {
	T ThreadID
	C CondID
}

func (a Broadcast) Kind() string               { return "Broadcast" }
func (a Broadcast) Self() ThreadID             { return a.T }
func (a Broadcast) Requires(*State) error      { return nil }
func (a Broadcast) When(*State) bool           { return true }
func (a Broadcast) Apply(s *State)             { delete(s.Conds, a.C) }
func (a Broadcast) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a Broadcast) String() string             { return fmt.Sprintf("Broadcast(t%d, c%d)", a.T, a.C) }

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

// P: WHEN s = available ENSURES s' = unavailable.
type P struct {
	T ThreadID
	S SemID
}

func (a P) Kind() string               { return "P" }
func (a P) Self() ThreadID             { return a.T }
func (a P) Requires(*State) error      { return nil }
func (a P) When(s *State) bool         { return s.SemAvailable(a.S) }
func (a P) Apply(s *State)             { s.SetSemAvailable(a.S, false) }
func (a P) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a P) String() string             { return fmt.Sprintf("P(t%d, s%d)", a.T, a.S) }

// V: ENSURES s' = available.
type V struct {
	T ThreadID
	S SemID
}

func (a V) Kind() string               { return "V" }
func (a V) Self() ThreadID             { return a.T }
func (a V) Requires(*State) error      { return nil }
func (a V) When(*State) bool           { return true }
func (a V) Apply(s *State)             { s.SetSemAvailable(a.S, true) }
func (a V) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a V) String() string             { return fmt.Sprintf("V(t%d, s%d)", a.T, a.S) }

// ---------------------------------------------------------------------------
// Alerts
// ---------------------------------------------------------------------------

// Alert: ENSURES alerts' = insert(alerts, t).
type Alert struct {
	T      ThreadID // caller
	Target ThreadID
}

func (a Alert) Kind() string               { return "Alert" }
func (a Alert) Self() ThreadID             { return a.T }
func (a Alert) Requires(*State) error      { return nil }
func (a Alert) When(*State) bool           { return true }
func (a Alert) Apply(s *State)             { s.Alerts.Insert(a.Target) }
func (a Alert) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a Alert) String() string             { return fmt.Sprintf("Alert(t%d -> t%d)", a.T, a.Target) }

// TestAlert: ENSURES (b = (SELF IN alerts)) & (alerts' = delete(alerts, SELF)).
// The Result field records the value returned by a concrete execution;
// CheckEnsures validates it against the pre-state.
type TestAlert struct {
	T      ThreadID
	Result bool
}

func (a TestAlert) Kind() string          { return "TestAlert" }
func (a TestAlert) Self() ThreadID        { return a.T }
func (a TestAlert) Requires(*State) error { return nil }
func (a TestAlert) When(*State) bool      { return true }
func (a TestAlert) Apply(s *State)        { s.Alerts.Delete(a.T) }

// CheckEnsures verifies b = (SELF IN alerts) against the pre-state.
func (a TestAlert) CheckEnsures(pre *State) error {
	if want := pre.Alerts.Contains(a.T); a.Result != want {
		return fmt.Errorf("TestAlert(t%d) returned %v but SELF IN alerts = %v", a.T, a.Result, want)
	}
	return nil
}
func (a TestAlert) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a TestAlert) String() string {
	return fmt.Sprintf("TestAlert(t%d) = %v", a.T, a.Result)
}

// AlertPReturn is AlertP's normal case:
// RETURNS WHEN s = available ENSURES (s' = unavailable) & UNCHANGED [alerts].
type AlertPReturn struct {
	T ThreadID
	S SemID
}

func (a AlertPReturn) Kind() string               { return "AlertP.Return" }
func (a AlertPReturn) Self() ThreadID             { return a.T }
func (a AlertPReturn) Requires(*State) error      { return nil }
func (a AlertPReturn) When(s *State) bool         { return s.SemAvailable(a.S) }
func (a AlertPReturn) Apply(s *State)             { s.SetSemAvailable(a.S, false) }
func (a AlertPReturn) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a AlertPReturn) String() string             { return fmt.Sprintf("AlertP.Return(t%d, s%d)", a.T, a.S) }

// AlertPRaise is AlertP's exceptional case:
// RAISES Alerted WHEN SELF IN alerts
// ENSURES (alerts' = delete(alerts, SELF)) & UNCHANGED [s].
type AlertPRaise struct {
	T ThreadID
	S SemID
}

func (a AlertPRaise) Kind() string               { return "AlertP.Raise" }
func (a AlertPRaise) Self() ThreadID             { return a.T }
func (a AlertPRaise) Requires(*State) error      { return nil }
func (a AlertPRaise) When(s *State) bool         { return s.Alerts.Contains(a.T) }
func (a AlertPRaise) Apply(s *State)             { s.Alerts.Delete(a.T) }
func (a AlertPRaise) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a AlertPRaise) String() string             { return fmt.Sprintf("AlertP.Raise(t%d, s%d)", a.T, a.S) }

// ---------------------------------------------------------------------------
// AlertWait = COMPOSITION OF Enqueue; AlertResume — with variants.
// ---------------------------------------------------------------------------

// AlertResumeReturn is AlertResume's normal case, identical in every
// variant: RETURNS WHEN (m = NIL) & NOT (SELF IN c)
// ENSURES (m' = SELF) & UNCHANGED [c, alerts].
type AlertResumeReturn struct {
	T ThreadID
	M MutexID
	C CondID
}

func (a AlertResumeReturn) Kind() string          { return "AlertResume.Return" }
func (a AlertResumeReturn) Self() ThreadID        { return a.T }
func (a AlertResumeReturn) Requires(*State) error { return nil }
func (a AlertResumeReturn) When(s *State) bool {
	return s.Mutex(a.M) == NIL && !s.CondHas(a.C, a.T)
}
func (a AlertResumeReturn) Apply(s *State)             { s.SetMutex(a.M, a.T) }
func (a AlertResumeReturn) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a AlertResumeReturn) String() string {
	return fmt.Sprintf("AlertResume.Return(t%d, m%d, c%d)", a.T, a.M, a.C)
}

// AlertResumeRaise is AlertResume's exceptional case; its WHEN and ENSURES
// depend on the specification Variant:
//
//	VariantFinal:      WHEN (m = NIL) & (SELF IN alerts)
//	                   ENSURES (m' = SELF) & (c' = delete(c, SELF)) &
//	                           (alerts' = delete(alerts, SELF))
//	VariantNoMNil:     WHEN (SELF IN alerts)            — the missing guard
//	                   ENSURES as VariantUnchangedC
//	VariantUnchangedC: WHEN (m = NIL) & (SELF IN alerts)
//	                   ENSURES (m' = SELF) & UNCHANGED [c] &
//	                           (alerts' = delete(alerts, SELF)) — the bug
type AlertResumeRaise struct {
	T       ThreadID
	M       MutexID
	C       CondID
	Variant Variant
}

func (a AlertResumeRaise) Kind() string          { return "AlertResume.Raise" }
func (a AlertResumeRaise) Self() ThreadID        { return a.T }
func (a AlertResumeRaise) Requires(*State) error { return nil }
func (a AlertResumeRaise) When(s *State) bool {
	if !s.Alerts.Contains(a.T) {
		return false
	}
	if a.Variant == VariantNoMNil {
		return true // the missing "m = NIL &"
	}
	return s.Mutex(a.M) == NIL
}
func (a AlertResumeRaise) Apply(s *State) {
	s.SetMutex(a.M, a.T)
	s.Alerts.Delete(a.T)
	if a.Variant == VariantFinal {
		s.Cond(a.C).Delete(a.T)
	}
	// VariantUnchangedC and VariantNoMNil leave c unchanged — the thread
	// departs but remains a ghost member of the condition variable.
}
func (a AlertResumeRaise) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a AlertResumeRaise) String() string {
	return fmt.Sprintf("AlertResume.Raise[%s](t%d, m%d, c%d)", a.Variant, a.T, a.M, a.C)
}
