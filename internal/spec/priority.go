package spec

import "fmt"

// Priority scheduling extension. The printed interface has no priority
// procedures — the paper only records that the Nub "does priority
// scheduling and time slicing" — so this file specifies the small state the
// implementation's priority mechanism exposes, in the same style:
//
//	VAR pris : Thread -> Int INITIALLY 0
//
// pris[t] is t's *effective* scheduling priority: the maximum of its base
// priority and any priorities donated to it by priority inheritance. Two
// actions change it, and their REQUIRES clauses are the conformance face of
// the boost/restore protocol:
//
//	ATOMIC ACTION PriBoost(t: Thread; old, new: Int)
//	  REQUIRES (old = pris[t]) & (new > old)
//	  MODIFIES AT MOST [pris]  ENSURES pris'[t] = new
//	ATOMIC ACTION PriRestore(t: Thread; old, new: Int)
//	  REQUIRES (old = pris[t]) & (new < old)
//	  MODIFIES AT MOST [pris]  ENSURES pris'[t] = new
//
// A boost strictly raises and a restore strictly lowers: the implementation
// only emits a record when the effective priority actually changes, and the
// direction names the event. The REQUIRES old = pris[t] clause is what makes
// the pair a real protocol rather than two unrelated setters — replayed in
// stamp order, every transition must start from the value the previous one
// left, so a lost, duplicated or misordered boost/restore surfaces as a
// conformance violation.

// PriBoost raises thread T's effective priority from Old to New.
type PriBoost struct {
	T   ThreadID
	Old int
	New int
}

func (a PriBoost) Kind() string   { return "PriBoost" }
func (a PriBoost) Self() ThreadID { return a.T }
func (a PriBoost) Requires(s *State) error {
	if cur := s.Pri(a.T); cur != a.Old {
		return fmt.Errorf("PriBoost REQUIRES old = pris[t]: pris[t%d] = %d, old = %d", a.T, cur, a.Old)
	}
	if a.New <= a.Old {
		return fmt.Errorf("PriBoost REQUIRES new > old: old = %d, new = %d", a.Old, a.New)
	}
	return nil
}
func (a PriBoost) When(*State) bool           { return true }
func (a PriBoost) Apply(s *State)             { s.SetPri(a.T, a.New) }
func (a PriBoost) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a PriBoost) String() string {
	return fmt.Sprintf("PriBoost(t%d, %d -> %d)", a.T, a.Old, a.New)
}

// PriRestore lowers thread T's effective priority from Old to New.
type PriRestore struct {
	T   ThreadID
	Old int
	New int
}

func (a PriRestore) Kind() string   { return "PriRestore" }
func (a PriRestore) Self() ThreadID { return a.T }
func (a PriRestore) Requires(s *State) error {
	if cur := s.Pri(a.T); cur != a.Old {
		return fmt.Errorf("PriRestore REQUIRES old = pris[t]: pris[t%d] = %d, old = %d", a.T, cur, a.Old)
	}
	if a.New >= a.Old {
		return fmt.Errorf("PriRestore REQUIRES new < old: old = %d, new = %d", a.Old, a.New)
	}
	return nil
}
func (a PriRestore) When(*State) bool           { return true }
func (a PriRestore) Apply(s *State)             { s.SetPri(a.T, a.New) }
func (a PriRestore) Outcomes(s *State) []*State { return deterministicOutcomes(a, s) }
func (a PriRestore) String() string {
	return fmt.Sprintf("PriRestore(t%d, %d -> %d)", a.T, a.Old, a.New)
}
