package spec

import (
	"strings"
	"testing"
)

// TestActionSurface exercises every Action's full method set uniformly:
// Kind and String are non-empty and consistent, Self returns the executing
// thread, Requires/When behave on both an empty and a populated state, and
// Outcomes agrees with When (enabled ⇒ ≥1 outcome; disabled ⇒ none).
func TestActionSurface(t *testing.T) {
	// A populated state: m1 held by t1, c1 = {t1}, s1 unavailable,
	// alerts = {t1}.
	populated := NewState()
	populated.SetMutex(1, 1)
	populated.Cond(1).Insert(1)
	populated.SetSemAvailable(1, false)
	populated.Alerts.Insert(1)

	cases := []struct {
		action        Action
		kind          string
		self          ThreadID
		whenEmpty     bool // When on the initial state
		whenPopulated bool // When on the populated state
		reqEmptyOK    bool // Requires passes on the initial state
		reqPopOK      bool // Requires passes on the populated state
	}{
		{Acquire{T: 1, M: 1}, "Acquire", 1, true, false, true, true},
		{Release{T: 1, M: 1}, "Release", 1, true, true, false, true},
		{Release{T: 2, M: 1}, "Release", 2, true, true, false, false},
		{Enqueue{T: 1, M: 1, C: 1}, "Enqueue", 1, true, true, false, true},
		{Resume{T: 1, M: 1, C: 1}, "Resume", 1, true, false, true, true},
		{Resume{T: 2, M: 2, C: 1}, "Resume", 2, true, true, true, true},
		{Signal{T: 2, C: 1}, "Signal", 2, true, true, true, true},
		{Broadcast{T: 2, C: 1}, "Broadcast", 2, true, true, true, true},
		{P{T: 1, S: 1}, "P", 1, true, false, true, true},
		{V{T: 1, S: 1}, "V", 1, true, true, true, true},
		{Alert{T: 1, Target: 2}, "Alert", 1, true, true, true, true},
		{TestAlert{T: 1, Result: false}, "TestAlert", 1, true, true, true, true},
		{AlertPReturn{T: 1, S: 1}, "AlertP.Return", 1, true, false, true, true},
		{AlertPRaise{T: 1, S: 1}, "AlertP.Raise", 1, false, true, true, true},
		{AlertResumeReturn{T: 1, M: 1, C: 1}, "AlertResume.Return", 1, true, false, true, true},
		{AlertResumeRaise{T: 1, M: 1, C: 1, Variant: VariantFinal}, "AlertResume.Raise", 1, false, false, true, true},
		{AlertResumeRaise{T: 1, M: 2, C: 1, Variant: VariantFinal}, "AlertResume.Raise", 1, false, true, true, true},
		{AlertResumeRaise{T: 1, M: 1, C: 1, Variant: VariantNoMNil}, "AlertResume.Raise", 1, false, true, true, true},
		{AlertResumeRaise{T: 1, M: 1, C: 1, Variant: VariantUnchangedC}, "AlertResume.Raise", 1, false, false, true, true},
	}
	for _, tc := range cases {
		a := tc.action
		name := a.String()
		if name == "" || !strings.Contains(name, "(") {
			t.Errorf("%T: String() = %q", a, name)
		}
		if a.Kind() != tc.kind {
			t.Errorf("%s: Kind() = %q, want %q", name, a.Kind(), tc.kind)
		}
		if a.Self() != tc.self {
			t.Errorf("%s: Self() = %d, want %d", name, a.Self(), tc.self)
		}
		empty := NewState()
		if got := a.When(empty); got != tc.whenEmpty {
			t.Errorf("%s: When(empty) = %v, want %v", name, got, tc.whenEmpty)
		}
		if got := a.When(populated); got != tc.whenPopulated {
			t.Errorf("%s: When(populated) = %v, want %v", name, got, tc.whenPopulated)
		}
		if got := a.Requires(empty) == nil; got != tc.reqEmptyOK {
			t.Errorf("%s: Requires(empty) ok = %v, want %v", name, got, tc.reqEmptyOK)
		}
		if got := a.Requires(populated) == nil; got != tc.reqPopOK {
			t.Errorf("%s: Requires(populated) ok = %v, want %v", name, got, tc.reqPopOK)
		}
		// Outcomes ⇔ When, on both states.
		for _, s := range []*State{empty, populated} {
			outs := a.Outcomes(s)
			if a.When(s) && len(outs) == 0 {
				t.Errorf("%s: enabled but no outcomes", name)
			}
			if !a.When(s) && len(outs) != 0 {
				t.Errorf("%s: disabled but %d outcomes", name, len(outs))
			}
			// Outcomes must not alias the input state.
			for _, post := range outs {
				if post == s {
					t.Errorf("%s: outcome aliases the pre-state", name)
				}
			}
		}
	}
}

// TestVariantStrings covers the Variant stringer including the unknown
// branch.
func TestVariantStrings(t *testing.T) {
	for v, want := range map[Variant]string{
		VariantFinal:      "final",
		VariantNoMNil:     "no-m-nil",
		VariantUnchangedC: "unchanged-c",
		Variant(99):       "variant(99)",
	} {
		if v.String() != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

// TestStateStringForms covers State and ThreadSet string rendering.
func TestStateStringForms(t *testing.T) {
	s := NewState()
	if s.String() != "(initial)" {
		t.Fatalf("initial state String = %q", s.String())
	}
	s.SetMutex(2, 7)
	s.Cond(1).Insert(3).Insert(1)
	s.SetSemAvailable(4, false)
	s.Alerts.Insert(5)
	str := s.String()
	for _, frag := range []string{"m2=7", "c1={1,3}", "s4=U", "a={5}"} {
		if !strings.Contains(str, frag) {
			t.Errorf("state string %q missing %q", str, frag)
		}
	}
}

// TestTestAlertCheckEnsuresSurface covers both branches.
func TestTestAlertCheckEnsuresSurface(t *testing.T) {
	s := NewState()
	s.Alerts.Insert(1)
	if err := (TestAlert{T: 1, Result: true}).CheckEnsures(s); err != nil {
		t.Fatal(err)
	}
	if err := (TestAlert{T: 1, Result: false}).CheckEnsures(s); err == nil {
		t.Fatal("wrong result accepted")
	}
}
